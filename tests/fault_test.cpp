/** @file Fault-injection and forensics tests: the delay-only fault
 *  campaign (outputs bit-identical under any FaultPlan, in every
 *  scheduler mode), the undersized-FIFO DeadlockReport, hardened
 *  SOFF_* environment parsing, OpenCL status-code mapping, and the
 *  Parallel->Reference graceful-degradation retry. */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "benchsuite/suite.hpp"
#include "runtime/runtime.hpp"
#include "sim/fault.hpp"
#include "sim/forensics.hpp"
#include "sim/simulator.hpp"

namespace soff
{
namespace
{

sim::NDRange
range1d(uint64_t global, uint64_t local)
{
    sim::NDRange nd;
    nd.globalSize[0] = global;
    nd.localSize[0] = local;
    return nd;
}

/** Sets (or clears, when value is nullptr) an environment variable for
 *  the current scope and restores the previous state on destruction. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        if (value != nullptr)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            setenv(name_.c_str(), old_.c_str(), 1);
        else
            unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string old_;
    bool had_ = false;
};

// --- FaultConfig grammar -----------------------------------------------

TEST(FaultConfig, BareIntegerIsSeed)
{
    sim::FaultConfig cfg = sim::FaultConfig::parse("42");
    EXPECT_EQ(cfg.seed, 42u);
    EXPECT_TRUE(cfg.enabled());
    EXPECT_FALSE(cfg.checkInvariants);
}

TEST(FaultConfig, KeyValueList)
{
    sim::FaultConfig cfg = sim::FaultConfig::parse(
        "seed=7,stall=0.5,memstall=0.25,stallmax=3,dramevery=2,"
        "dramspike=10,dramjitter=1,slack=1,check=1,trip=99");
    EXPECT_EQ(cfg.seed, 7u);
    EXPECT_DOUBLE_EQ(cfg.stallProb, 0.5);
    EXPECT_DOUBLE_EQ(cfg.memStallProb, 0.25);
    EXPECT_EQ(cfg.stallMax, 3);
    EXPECT_EQ(cfg.dramSpikeEvery, 2);
    EXPECT_EQ(cfg.dramSpikeCycles, 10);
    EXPECT_EQ(cfg.dramJitterMax, 1);
    EXPECT_EQ(cfg.fifoSlackCut, 1);
    EXPECT_TRUE(cfg.checkInvariants);
    EXPECT_EQ(cfg.tripCycle, 99u);
}

TEST(FaultConfig, RejectsBadInput)
{
    EXPECT_THROW(sim::FaultConfig::parse("abc"), RuntimeError);
    EXPECT_THROW(sim::FaultConfig::parse("seed=abc"), RuntimeError);
    EXPECT_THROW(sim::FaultConfig::parse("bogus=1"), RuntimeError);
    EXPECT_THROW(sim::FaultConfig::parse("seed=1,stall=1.5"),
                 RuntimeError);
    EXPECT_THROW(sim::FaultConfig::parse("seed=1,stallmax=0"),
                 RuntimeError);
    EXPECT_THROW(sim::FaultConfig::parse("seed=-3"), RuntimeError);
    EXPECT_THROW(sim::FaultConfig::parse(""), RuntimeError);
}

// --- Delay-only fault campaign over the benchmark suite ----------------

/** Benchmark apps x fault seeds, in CrossCheck mode: the runtime runs
 *  reference, event-driven, and sharded parallel circuits under the
 *  same FaultPlan and throws unless results, stats, and final global
 *  memory are bit-identical; the host oracle then verifies the
 *  outputs. Delay-only faults must change neither. */
class FaultCampaign
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>>
{};

TEST_P(FaultCampaign, BitIdenticalAcrossSchedulersUnderFaults)
{
    const auto &[app_name, seed] = GetParam();
    const benchsuite::App *app = benchsuite::findApp(app_name);
    ASSERT_NE(app, nullptr);
    benchsuite::BenchContext ctx(benchsuite::Engine::SoffSim);
    sim::PlatformConfig platform;
    platform.scheduler = sim::SchedulerMode::CrossCheck;
    platform.faults.seed = seed;
    ctx.setPlatformConfig(platform);
    EXPECT_TRUE(benchsuite::runApp(*app, ctx)) << app->name;
}

INSTANTIATE_TEST_SUITE_P(
    Apps, FaultCampaign,
    ::testing::Combine(
        ::testing::Values("103.stencil", "110.fft", "112.spmv",
                          "116.histo", "120.kmeans", "123.nw",
                          "124.hotspot", "127.srad"),
        ::testing::Values(1ull, 7ull, 42ull, 1234ull, 0xD00Dull)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, uint64_t>>
           &info) {
        std::string name = std::get<0>(info.param) + "_s" +
                           std::to_string(std::get<1>(info.param));
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

// --- Faulted runs match the clean run byte-for-byte --------------------

const char *kMixKernel = R"CL(
__kernel void mix(__global const int *A, __global const int *B,
                  __global int *C)
{
    int i = get_global_id(0);
    int acc = 0;
    for (int k = 0; k < 8; ++k)
        acc = acc * 3 + A[(i + k) % 256] - B[(i * 2 + k) % 256];
    C[i] = acc;
}
)CL";

std::vector<int32_t>
runMix(const sim::PlatformConfig &platform)
{
    rt::Context ctx;
    rt::Program program = ctx.buildProgram(kMixKernel);
    rt::KernelHandle kernel = program.createKernel("mix");
    std::vector<int32_t> a(256), b(256);
    for (int i = 0; i < 256; ++i) {
        a[static_cast<size_t>(i)] = i * 37 - 1000;
        b[static_cast<size_t>(i)] = 9000 - i * 13;
    }
    rt::Buffer ba = ctx.createBuffer(a.size() * 4);
    rt::Buffer bb = ctx.createBuffer(b.size() * 4);
    rt::Buffer bc = ctx.createBuffer(256 * 4);
    ctx.writeBuffer(ba, a.data(), a.size() * 4);
    ctx.writeBuffer(bb, b.data(), b.size() * 4);
    kernel.setArg(0, ba);
    kernel.setArg(1, bb);
    kernel.setArg(2, bc);
    ctx.enqueueNDRange(kernel, range1d(256, 64),
                       rt::ExecutionMode::Simulate, platform);
    std::vector<int32_t> c(256);
    ctx.readBuffer(bc, c.data(), c.size() * 4);
    return c;
}

TEST(FaultEquivalence, FaultedOutputMatchesCleanInEveryMode)
{
    ScopedEnv sched("SOFF_SCHEDULER", nullptr);
    ScopedEnv env_faults("SOFF_FAULTS", nullptr);
    sim::PlatformConfig clean;
    std::vector<int32_t> golden = runMix(clean);
    const sim::SchedulerMode modes[] = {
        sim::SchedulerMode::Reference, sim::SchedulerMode::EventDriven,
        sim::SchedulerMode::Parallel};
    for (sim::SchedulerMode mode : modes) {
        for (uint64_t seed : {1ull, 42ull, 0xBEEFull}) {
            sim::PlatformConfig plat;
            plat.scheduler = mode;
            plat.faults.seed = seed;
            plat.faults.stallProb = 0.2; // aggressive, still delay-only
            plat.faults.memStallProb = 0.2;
            EXPECT_EQ(runMix(plat), golden)
                << "mode " << static_cast<int>(mode) << " seed " << seed;
        }
    }
}

// --- Local-memory slot exclusivity under perturbed timing --------------

/** Local atomics + barriers across many work-groups. Regression for a
 *  bug the fault harness exposed: the dispatcher used to admit two
 *  resident work-groups whose ids collide modulo the local-memory slot
 *  count, so delay faults (which skew group lifetimes) made the groups
 *  alias each other's local bins. The clean schedule never spaced
 *  groups that way, so only faulted runs corrupted the histogram. */
const char *kLocalHistKernel = R"CL(
__kernel void lhist(__global const int *data, __global int *bins)
{
    __local int local_bins[16];
    int lid = get_local_id(0);
    int gid = get_global_id(0);
    if (lid < 16)
        local_bins[lid] = 0;
    barrier(CLK_LOCAL_MEM_FENCE);
    atomic_add(&local_bins[data[gid] & 15], 1);
    barrier(CLK_LOCAL_MEM_FENCE);
    if (lid < 16)
        atomic_add(&bins[lid], local_bins[lid]);
}
)CL";

std::vector<int32_t>
runLocalHist(const sim::PlatformConfig &platform)
{
    rt::Context ctx;
    rt::Program program = ctx.buildProgram(kLocalHistKernel);
    rt::KernelHandle kernel = program.createKernel("lhist");
    const size_t n = 1024;
    std::vector<int32_t> data(n);
    for (size_t i = 0; i < n; ++i)
        data[i] = static_cast<int32_t>((i * 2654435761u) >> 7);
    rt::Buffer bd = ctx.createBuffer(n * 4);
    rt::Buffer bb = ctx.createBuffer(16 * 4);
    std::vector<int32_t> zero(16, 0);
    ctx.writeBuffer(bd, data.data(), n * 4);
    ctx.writeBuffer(bb, zero.data(), 16 * 4);
    kernel.setArg(0, bd);
    kernel.setArg(1, bb);
    ctx.enqueueNDRange(kernel, range1d(n, 64),
                       rt::ExecutionMode::Simulate, platform);
    std::vector<int32_t> bins(16);
    ctx.readBuffer(bb, bins.data(), 16 * 4);
    return bins;
}

TEST(FaultEquivalence, LocalAtomicHistogramSurvivesStallFaults)
{
    ScopedEnv sched("SOFF_SCHEDULER", nullptr);
    ScopedEnv env_faults("SOFF_FAULTS", nullptr);
    sim::PlatformConfig clean;
    std::vector<int32_t> golden = runLocalHist(clean);
    int64_t total = 0;
    for (int32_t b : golden)
        total += b;
    ASSERT_EQ(total, 1024); // the clean run itself must not drop counts
    for (uint64_t seed : {1ull, 42ull, 0xD00Dull}) {
        sim::PlatformConfig plat;
        plat.faults.seed = seed;
        plat.faults.stallProb = 0.15; // the class that skews group lifetimes
        EXPECT_EQ(runLocalHist(plat), golden) << "seed " << seed;
    }
}

// --- Undersized response window: forensic deadlock report --------------

/** The skewed second operand keeps one load unit far behind the other;
 *  with the §V-A response window forced below L_F and the balancing
 *  slack removed, the circuit wedges in a genuine cyclic wait. */
const char *kSkewKernel = R"CL(
__kernel void skew(__global const int *A, __global int *C)
{
    int i = get_global_id(0);
    C[i] = A[i] + A[(i * i * 3 + i) % 64];
}
)CL";

TEST(Forensics, UndersizedResponseWindowYieldsDeadlockReport)
{
    ScopedEnv sched("SOFF_SCHEDULER", nullptr);
    ScopedEnv env_faults("SOFF_FAULTS", nullptr);
    rt::Context ctx;
    rt::Program program = ctx.buildProgram(kSkewKernel);
    rt::KernelHandle kernel = program.createKernel("skew");
    std::vector<int32_t> a(64);
    for (int i = 0; i < 64; ++i)
        a[static_cast<size_t>(i)] = i + 1;
    rt::Buffer ba = ctx.createBuffer(a.size() * 4);
    rt::Buffer bc = ctx.createBuffer(64 * 4);
    ctx.writeBuffer(ba, a.data(), a.size() * 4);
    kernel.setArg(0, ba);
    kernel.setArg(1, bc);
    sim::PlatformConfig plat;
    plat.scheduler = sim::SchedulerMode::EventDriven;
    plat.memRespWindowOverride = 1; // below L_F + 1: breaks Theorem V-A
    plat.balanceFifoCap = 0;
    try {
        ctx.enqueueNDRange(kernel, range1d(64, 64),
                           rt::ExecutionMode::Simulate, plat, 1);
        FAIL() << "expected the undersized response window to deadlock";
    } catch (const rt::OpenClError &e) {
        EXPECT_EQ(e.status(), ClStatus::OutOfResources);
        EXPECT_STREQ(e.statusName(), "CL_OUT_OF_RESOURCES");
        EXPECT_NE(std::string(e.what()).find("deadlocked"),
                  std::string::npos)
            << e.what();
        ASSERT_NE(e.report(), nullptr);
        const sim::DeadlockReport &report = *e.report();
        EXPECT_EQ(report.kind, sim::HangKind::Deadlock);
        EXPECT_FALSE(report.waits.empty());
        EXPECT_FALSE(report.waitCycle.empty())
            << "a genuine circuit deadlock must have a wait cycle:\n"
            << report.render();
        bool names_load = false;
        for (const auto &w : report.waits)
            names_load |= w.component.find("load") != std::string::npos;
        EXPECT_TRUE(names_load)
            << "report must name the offending load unit:\n"
            << report.render();
    }
}

TEST(Forensics, InvariantCheckerFlagsUndersizedWindowAsInternalBug)
{
    ScopedEnv sched("SOFF_SCHEDULER", nullptr);
    rt::Context ctx;
    rt::Program program = ctx.buildProgram(kSkewKernel);
    rt::KernelHandle kernel = program.createKernel("skew");
    std::vector<int32_t> a(64, 3);
    rt::Buffer ba = ctx.createBuffer(a.size() * 4);
    rt::Buffer bc = ctx.createBuffer(64 * 4);
    ctx.writeBuffer(ba, a.data(), a.size() * 4);
    kernel.setArg(0, ba);
    kernel.setArg(1, bc);
    sim::PlatformConfig plat;
    plat.scheduler = sim::SchedulerMode::EventDriven;
    plat.memRespWindowOverride = 1;
    plat.balanceFifoCap = 0;
    plat.faults.checkInvariants = true;
    try {
        ctx.enqueueNDRange(kernel, range1d(64, 64),
                           rt::ExecutionMode::Simulate, plat, 1);
        FAIL() << "expected a deadlock or invariant violation";
    } catch (const rt::OpenClError &e) {
        ASSERT_NE(e.report(), nullptr);
        EXPECT_TRUE(e.report()->internalBug())
            << "the L_F guard must fire on an undersized window:\n"
            << e.report()->render();
        bool mentions_guard = false;
        for (const std::string &inv : e.report()->invariants)
            mentions_guard |= inv.find("L_F") != std::string::npos;
        EXPECT_TRUE(mentions_guard) << e.report()->render();
    }
}

/** The §V-A sizing itself (no override) must run the same kernel to
 *  completion: the deadlock above is the undersizing, not the kernel. */
TEST(Forensics, ProperlySizedWindowCompletes)
{
    ScopedEnv sched("SOFF_SCHEDULER", nullptr);
    ScopedEnv env_faults("SOFF_FAULTS", nullptr);
    rt::Context ctx;
    rt::Program program = ctx.buildProgram(kSkewKernel);
    rt::KernelHandle kernel = program.createKernel("skew");
    std::vector<int32_t> a(64);
    for (int i = 0; i < 64; ++i)
        a[static_cast<size_t>(i)] = i + 1;
    rt::Buffer ba = ctx.createBuffer(a.size() * 4);
    rt::Buffer bc = ctx.createBuffer(64 * 4);
    ctx.writeBuffer(ba, a.data(), a.size() * 4);
    kernel.setArg(0, ba);
    kernel.setArg(1, bc);
    sim::PlatformConfig plat;
    plat.scheduler = sim::SchedulerMode::EventDriven;
    plat.balanceFifoCap = 0; // starved FIFOs alone must not deadlock
    EXPECT_NO_THROW(ctx.enqueueNDRange(kernel, range1d(64, 64),
                                       rt::ExecutionMode::Simulate, plat,
                                       1));
    std::vector<int32_t> c(64);
    ctx.readBuffer(bc, c.data(), c.size() * 4);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(c[static_cast<size_t>(i)],
                  (i + 1) + ((i * i * 3 + i) % 64 + 1))
            << "i=" << i;
}

// --- Raw-simulator forensics: a hand-built mutual wait -----------------

/** Waits for a token on `in` before producing one on `out`. Two of
 *  these back-to-back form the canonical two-node wait cycle. */
class HandshakeUnit : public sim::Component
{
  public:
    HandshakeUnit(const std::string &name, sim::Channel<int> *in,
                  sim::Channel<int> *out)
        : Component(name), in_(in), out_(out)
    {
        watch(in);
        watch(out);
    }
    void
    step(sim::Cycle) override
    {
        if (in_->canPop() && out_->canPush())
            out_->push(in_->pop() + 1);
    }
    void
    describeBlockage(sim::BlockageProbe &probe) const override
    {
        probe.waitPop(in_);
        probe.waitPush(out_);
    }

  private:
    sim::Channel<int> *in_;
    sim::Channel<int> *out_;
};

TEST(Forensics, MutualWaitCycleIsExtracted)
{
    sim::Simulator sim(sim::SchedulerMode::EventDriven);
    auto *ab = sim.channel<int>(2);
    auto *ba = sim.channel<int>(2);
    sim.add<HandshakeUnit>("alpha", ba, ab);
    sim.add<HandshakeUnit>("beta", ab, ba);
    sim::Simulator::RunResult result = sim.run(nullptr, 10000);
    ASSERT_TRUE(result.deadlock);
    ASSERT_NE(result.report, nullptr);
    EXPECT_EQ(result.report->kind, sim::HangKind::Deadlock);
    ASSERT_EQ(result.report->waits.size(), 2u);
    ASSERT_FALSE(result.report->waitCycle.empty());
    std::string joined;
    for (const std::string &hop : result.report->waitCycle)
        joined += hop + "\n";
    EXPECT_NE(joined.find("alpha"), std::string::npos) << joined;
    EXPECT_NE(joined.find("beta"), std::string::npos) << joined;
    EXPECT_FALSE(result.report->internalBug());
    EXPECT_NE(result.report->render().find("deadlock"),
              std::string::npos);
}

// --- Hardened SOFF_* environment parsing -------------------------------

class EnvParsing : public ::testing::Test
{
  protected:
    void
    launchTrivial()
    {
        rt::Context ctx;
        rt::Program program = ctx.buildProgram(
            "__kernel void t(__global int *X) "
            "{ X[get_global_id(0)] = 1; }");
        rt::KernelHandle kernel = program.createKernel("t");
        rt::Buffer b = ctx.createBuffer(64 * 4);
        kernel.setArg(0, b);
        ctx.enqueueNDRange(kernel, range1d(64, 64));
    }
};

TEST_F(EnvParsing, RejectsMalformedThreadCounts)
{
    ScopedEnv sched("SOFF_SCHEDULER", nullptr);
    ScopedEnv faults("SOFF_FAULTS", nullptr);
    for (const char *bad :
         {"abc", "0", "-3", "8x", "  4", "99999999999999999999"}) {
        ScopedEnv threads("SOFF_THREADS", bad);
        try {
            launchTrivial();
            FAIL() << "SOFF_THREADS='" << bad << "' must be rejected";
        } catch (const rt::OpenClError &e) {
            EXPECT_EQ(e.status(), ClStatus::InvalidValue) << bad;
            EXPECT_NE(std::string(e.what()).find("SOFF_THREADS"),
                      std::string::npos)
                << e.what();
            EXPECT_NE(std::string(e.what()).find("between 1 and 1024"),
                      std::string::npos)
                << "the error must list the valid values: " << e.what();
        }
    }
}

TEST_F(EnvParsing, AcceptsValidThreadCount)
{
    ScopedEnv sched("SOFF_SCHEDULER", nullptr);
    ScopedEnv faults("SOFF_FAULTS", nullptr);
    ScopedEnv threads("SOFF_THREADS", "2");
    EXPECT_NO_THROW(launchTrivial());
}

TEST_F(EnvParsing, RejectsUnknownScheduler)
{
    ScopedEnv faults("SOFF_FAULTS", nullptr);
    ScopedEnv threads("SOFF_THREADS", nullptr);
    ScopedEnv sched("SOFF_SCHEDULER", "bogus");
    try {
        launchTrivial();
        FAIL() << "SOFF_SCHEDULER=bogus must be rejected";
    } catch (const rt::OpenClError &e) {
        EXPECT_EQ(e.status(), ClStatus::InvalidValue);
        EXPECT_NE(std::string(e.what()).find(
                      "reference, event-driven, parallel, compiled, "
                      "cross-check"),
                  std::string::npos)
            << "the error must list the valid values: " << e.what();
    }
}

TEST_F(EnvParsing, RejectsMalformedFaultPlans)
{
    ScopedEnv sched("SOFF_SCHEDULER", nullptr);
    ScopedEnv threads("SOFF_THREADS", nullptr);
    for (const char *bad : {"xyz", "seed=", "wibble=3"}) {
        ScopedEnv faults("SOFF_FAULTS", bad);
        try {
            launchTrivial();
            FAIL() << "SOFF_FAULTS='" << bad << "' must be rejected";
        } catch (const rt::OpenClError &e) {
            EXPECT_EQ(e.status(), ClStatus::InvalidValue) << bad;
            EXPECT_NE(std::string(e.what()).find("SOFF_FAULTS"),
                      std::string::npos)
                << e.what();
        }
    }
}

TEST_F(EnvParsing, AcceptsFaultSeedFromEnvironment)
{
    ScopedEnv sched("SOFF_SCHEDULER", nullptr);
    ScopedEnv threads("SOFF_THREADS", nullptr);
    ScopedEnv faults("SOFF_FAULTS", "42");
    EXPECT_NO_THROW(launchTrivial());
}

// --- OpenCL status-code mapping ----------------------------------------

TEST(ClStatusMapping, ApiErrorsCarryMatchingStatusCodes)
{
    rt::Context ctx(datapath::FpgaSpec::arria10(), 1 << 20);
    try {
        ctx.createBuffer(64ull << 20);
        FAIL();
    } catch (const rt::OpenClError &e) {
        EXPECT_EQ(e.status(), ClStatus::MemObjectAllocationFailure);
        EXPECT_STREQ(e.statusName(),
                     "CL_MEM_OBJECT_ALLOCATION_FAILURE");
    }
    rt::Program program = ctx.buildProgram(
        "__kernel void t(__global int *X, int v) "
        "{ X[get_global_id(0)] = v; }");
    try {
        program.createKernel("nope");
        FAIL();
    } catch (const rt::OpenClError &e) {
        EXPECT_EQ(e.status(), ClStatus::InvalidKernelName);
    }
    rt::KernelHandle kernel = program.createKernel("t");
    rt::Buffer buffer = ctx.createBuffer(256);
    try {
        kernel.setArg(7, int32_t{1});
        FAIL();
    } catch (const rt::OpenClError &e) {
        EXPECT_EQ(e.status(), ClStatus::InvalidArgIndex);
    }
    try {
        kernel.setArg(0, int32_t{1}); // buffer slot given a scalar
        FAIL();
    } catch (const rt::OpenClError &e) {
        EXPECT_EQ(e.status(), ClStatus::InvalidArgValue);
    }
    kernel.setArg(0, buffer);
    try {
        ctx.enqueueNDRange(kernel, range1d(64, 64)); // arg 1 unset
        FAIL();
    } catch (const rt::OpenClError &e) {
        EXPECT_EQ(e.status(), ClStatus::InvalidKernelArgs);
    }
    kernel.setArg(1, int32_t{5});
    try {
        ctx.enqueueNDRange(kernel, range1d(65, 64));
        FAIL();
    } catch (const rt::OpenClError &e) {
        EXPECT_EQ(e.status(), ClStatus::InvalidWorkGroupSize);
        EXPECT_STREQ(e.statusName(), "CL_INVALID_WORK_GROUP_SIZE");
    }
    try {
        rt::Device device(datapath::FpgaSpec::arria10(), 1 << 20);
        device.release(12345);
        FAIL();
    } catch (const rt::OpenClError &e) {
        EXPECT_EQ(e.status(), ClStatus::InvalidValue);
    }
}

// --- Graceful degradation: Parallel falls back to Reference ------------

TEST(GracefulDegradation, ParallelFaultRetriesOnReferenceScheduler)
{
    ScopedEnv sched("SOFF_SCHEDULER", nullptr);
    ScopedEnv env_faults("SOFF_FAULTS", nullptr);
    sim::PlatformConfig plat;
    plat.scheduler = sim::SchedulerMode::Parallel;
    plat.faults.seed = 1;
    plat.faults.tripCycle = 200; // parallel-only injected failure
    std::vector<int32_t> out = runMix(plat);
    sim::PlatformConfig clean;
    EXPECT_EQ(out, runMix(clean))
        << "the reference-scheduler retry must produce the correct "
           "result after the parallel scheduler trips";
}

TEST(GracefulDegradation, NonParallelTripStillSucceeds)
{
    // The trip knob only fires inside the parallel scheduler; other
    // modes must be unaffected by it.
    ScopedEnv sched("SOFF_SCHEDULER", nullptr);
    ScopedEnv env_faults("SOFF_FAULTS", nullptr);
    sim::PlatformConfig plat;
    plat.scheduler = sim::SchedulerMode::EventDriven;
    plat.faults.seed = 1;
    plat.faults.tripCycle = 200;
    sim::PlatformConfig clean;
    EXPECT_EQ(runMix(plat), runMix(clean));
}

} // namespace
} // namespace soff
