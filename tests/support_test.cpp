/** @file Unit tests for the support module. */
#include <gtest/gtest.h>

#include "support/diagnostics.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace soff
{
namespace
{

TEST(Strings, Format)
{
    EXPECT_EQ(strFormat("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(strFormat("%s", "hello"), "hello");
    EXPECT_EQ(strFormat("%.2f", 3.14159), "3.14");
}

TEST(Strings, Join)
{
    EXPECT_EQ(strJoin({}, ", "), "");
    EXPECT_EQ(strJoin({"a"}, ", "), "a");
    EXPECT_EQ(strJoin({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Strings, StartsWith)
{
    EXPECT_TRUE(strStartsWith("atomic_add", "atomic_"));
    EXPECT_FALSE(strStartsWith("atom", "atomic_"));
    EXPECT_TRUE(strStartsWith("x", ""));
}

TEST(Diagnostics, CollectsAndRenders)
{
    DiagnosticEngine diags;
    EXPECT_FALSE(diags.hasErrors());
    diags.warning({1, 2}, "w");
    EXPECT_FALSE(diags.hasErrors());
    diags.error({3, 4}, "boom");
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_EQ(diags.numErrors(), 1);
    std::string report = diags.report();
    EXPECT_NE(report.find("3:4: error: boom"), std::string::npos);
    EXPECT_NE(report.find("1:2: warning: w"), std::string::npos);
    EXPECT_THROW(diags.checkNoErrors(), CompileError);
}

TEST(Diagnostics, NoThrowWhenClean)
{
    DiagnosticEngine diags;
    diags.note({1, 1}, "info");
    EXPECT_NO_THROW(diags.checkNoErrors());
}

TEST(Rng, Deterministic)
{
    SplitMix64 a(42);
    SplitMix64 b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, Ranges)
{
    SplitMix64 rng(7);
    for (int i = 0; i < 1000; ++i) {
        int32_t v = rng.nextInt(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
        float f = rng.nextFloat();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

} // namespace
} // namespace soff
