/** @file Scheduler-equivalence tests: the event-driven kernel must be
 *  bit- and cycle-identical to the synchronous reference on every
 *  benchmark application (cross-check mode), detect deadlocks at the
 *  exact quiescence cycle, and honor timer wakeups across clock
 *  jumps. */
#include <gtest/gtest.h>

#include <vector>

#include "benchsuite/suite.hpp"
#include "runtime/runtime.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace soff
{
namespace
{

sim::NDRange
range1d(uint64_t global, uint64_t local)
{
    sim::NDRange nd;
    nd.globalSize[0] = global;
    nd.localSize[0] = local;
    return nd;
}

// --- Cross-check over the full benchmark suite -------------------------

/** Every runnable application, executed in CrossCheck mode: the runtime
 *  runs one circuit per scheduler and throws unless RunResult,
 *  CircuitStats, and final global memory are bit-identical. */
class CrossCheckRun : public ::testing::TestWithParam<std::string>
{};

TEST_P(CrossCheckRun, EventDrivenMatchesReference)
{
    const benchsuite::App *app = benchsuite::findApp(GetParam());
    ASSERT_NE(app, nullptr);
    benchsuite::BenchContext ctx(benchsuite::Engine::SoffSim);
    sim::PlatformConfig platform;
    platform.scheduler = sim::SchedulerMode::CrossCheck;
    ctx.setPlatformConfig(platform);
    if (app->expectInsufficientResources) {
        EXPECT_THROW(benchsuite::runApp(*app, ctx), RuntimeError);
        return;
    }
    EXPECT_TRUE(benchsuite::runApp(*app, ctx)) << app->name;
}

std::vector<std::string>
allAppNames()
{
    std::vector<std::string> names;
    for (const benchsuite::App &app : benchsuite::allApps())
        names.push_back(app.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, CrossCheckRun, ::testing::ValuesIn(allAppNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

// --- Randomized cross-mode equivalence on small kernels ----------------

/** Runs one kernel launch under both schedulers from identical initial
 *  memory and compares cycle counts, stats, and output bytes. */
class RandomizedEquivalence : public ::testing::TestWithParam<int>
{};

TEST_P(RandomizedEquivalence, IdenticalCyclesStatsAndMemory)
{
    const char *src =
        "__kernel void mix(__global int* A, __global int* B, int n) {\n"
        "  int i = get_global_id(0);\n"
        "  int acc = 0;\n"
        "  for (int k = 0; k <= i % 7; k++) acc += A[(i + k) % n];\n"
        "  if (acc % 3 == 0) atomic_add(&B[i % 16], acc);\n"
        "  else B[16 + i % 16] = acc;\n"
        "}\n";
    SplitMix64 rng(static_cast<uint64_t>(GetParam()));
    const uint64_t local = 1ull << (1 + rng.next() % 4); // 2..16
    const uint64_t n = local * (1 + rng.next() % 8);
    std::vector<int32_t> a(n);
    for (auto &v : a)
        v = static_cast<int32_t>(rng.next() % 1000);

    rt::LaunchResult results[2];
    std::vector<int32_t> out[2];
    const sim::SchedulerMode modes[2] = {sim::SchedulerMode::Reference,
                                         sim::SchedulerMode::EventDriven};
    for (int m = 0; m < 2; ++m) {
        rt::Context ctx;
        rt::Program prog = ctx.buildProgram(src);
        auto kernel = prog.createKernel("mix");
        rt::Buffer ba = ctx.createBuffer(n * 4);
        rt::Buffer bb = ctx.createBuffer(32 * 4);
        std::vector<int32_t> zeros(32, 0);
        ctx.writeBuffer(ba, a.data(), n * 4);
        ctx.writeBuffer(bb, zeros.data(), 32 * 4);
        kernel.setArg(0, ba);
        kernel.setArg(1, bb);
        kernel.setArg(2, static_cast<int32_t>(n));
        sim::PlatformConfig platform;
        platform.scheduler = modes[m];
        results[m] = ctx.enqueueNDRange(kernel, range1d(n, local),
                                        rt::ExecutionMode::Simulate,
                                        platform);
        out[m].resize(32);
        ctx.readBuffer(bb, out[m].data(), 32 * 4);
    }
    EXPECT_EQ(results[0].cycles, results[1].cycles);
    EXPECT_EQ(results[0].stats.cacheHits, results[1].stats.cacheHits);
    EXPECT_EQ(results[0].stats.cacheMisses,
              results[1].stats.cacheMisses);
    EXPECT_EQ(results[0].stats.dramTransfers,
              results[1].stats.dramTransfers);
    EXPECT_EQ(results[0].stats.localBankConflicts,
              results[1].stats.localBankConflicts);
    EXPECT_EQ(out[0], out[1]);
    // The event-driven scheduler must not do *more* work than the
    // reference, which steps every component every cycle.
    EXPECT_LE(results[1].sched.componentSteps,
              results[0].sched.componentSteps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedEquivalence,
                         ::testing::Range(1, 9));

// --- Exact deadlock detection ------------------------------------------

/** Produces into a bounded channel; stalls for good once it fills. */
class StallingProducer : public sim::Component
{
  public:
    explicit StallingProducer(sim::Channel<int> *out)
        : Component("producer"), out_(out)
    {
        watch(out);
    }
    void
    step(sim::Cycle) override
    {
        if (out_->canPush())
            out_->push(1);
    }

  private:
    sim::Channel<int> *out_;
};

/** Watches its input but never consumes: the §IV-E deadlock. */
class NonConsumer : public sim::Component
{
  public:
    explicit NonConsumer(sim::Channel<int> *in)
        : Component("blackhole"), in_(in)
    {
        watch(in);
    }
    void step(sim::Cycle) override { (void)in_; }

  private:
    sim::Channel<int> *in_;
};

TEST(EventDriven, DeadlockDetectedAtExactQuiescenceCycle)
{
    auto runOnce = [] {
        sim::Simulator sim(sim::SchedulerMode::EventDriven);
        auto *ch = sim.channel<int>(2);
        sim.add<StallingProducer>(ch);
        sim.add<NonConsumer>(ch);
        return sim.run(nullptr, 1000000);
    };
    sim::Simulator::RunResult first = runOnce();
    EXPECT_TRUE(first.deadlock);
    EXPECT_FALSE(first.completed);
    // Quiescence is reached as soon as the channel fills: no heuristic
    // idle window, so detection is immediate and deterministic.
    EXPECT_LT(first.cycles, 10u);
    sim::Simulator::RunResult second = runOnce();
    EXPECT_EQ(first.cycles, second.cycles) << "exact, not heuristic";

    // The reference scheduler needs its idle-window heuristic and
    // reports the deadlock only after the window expires.
    sim::Simulator ref(sim::SchedulerMode::Reference);
    auto *ch = ref.channel<int>(2);
    ref.add<StallingProducer>(ch);
    ref.add<NonConsumer>(ch);
    sim::Simulator::RunResult heuristic = ref.run(nullptr, 1000000, 500);
    EXPECT_TRUE(heuristic.deadlock);
    EXPECT_GT(heuristic.cycles, first.cycles);
}

// --- Timer wakeups across clock jumps ----------------------------------

/** A component with no channels: it re-arms a far-future timer each
 *  step, so the scheduler must jump the clock across the idle gap. */
class SparseTicker : public sim::Component
{
  public:
    SparseTicker(std::vector<sim::Cycle> *ticks, bool *done)
        : Component("ticker"), ticks_(ticks), done_(done)
    {}
    void
    step(sim::Cycle now) override
    {
        if (now < next_) // timer guard: reference steps every cycle
            return;
        ticks_->push_back(now);
        if (ticks_->size() >= 5) {
            *done_ = true;
        } else {
            next_ = now + 1000;
            wakeAt(next_);
        }
    }

  private:
    std::vector<sim::Cycle> *ticks_;
    bool *done_;
    sim::Cycle next_ = 0;
};

TEST(EventDriven, TimerWakeupsAcrossClockJumps)
{
    sim::Simulator sim(sim::SchedulerMode::EventDriven);
    std::vector<sim::Cycle> ticks;
    bool done = false;
    sim.add<SparseTicker>(&ticks, &done);
    sim::Simulator::RunResult result = sim.run(&done, 1000000);
    EXPECT_TRUE(result.completed);
    ASSERT_EQ(ticks.size(), 5u);
    for (size_t i = 0; i < ticks.size(); ++i)
        EXPECT_EQ(ticks[i], i * 1000) << "tick " << i;
    EXPECT_GT(result.cycles, 4000u);
    // Only the five tick cycles were processed; the ~4000 idle cycles
    // in between were jumped over.
    EXPECT_LE(sim.schedulerStats().cyclesActive, 6u);
    EXPECT_EQ(sim.schedulerStats().componentSteps, 5u);
}

/** Same circuit under the reference scheduler: identical ticks, but
 *  every idle cycle is processed. */
TEST(Reference, TimerCircuitMatchesButProcessesEveryCycle)
{
    sim::Simulator sim(sim::SchedulerMode::Reference);
    std::vector<sim::Cycle> ticks;
    bool done = false;
    sim.add<SparseTicker>(&ticks, &done);
    sim::Simulator::RunResult result = sim.run(&done, 1000000);
    EXPECT_TRUE(result.completed);
    ASSERT_EQ(ticks.size(), 5u);
    for (size_t i = 0; i < ticks.size(); ++i)
        EXPECT_EQ(ticks[i], i * 1000) << "tick " << i;
    EXPECT_GE(sim.schedulerStats().componentSteps, 4000u);
}

} // namespace
} // namespace soff
