/** @file Scheduler-equivalence tests: the event-driven and sharded
 *  parallel kernels must be bit- and cycle-identical to the
 *  synchronous reference on every benchmark application (cross-check
 *  mode, at several worker-thread counts), detect deadlocks at the
 *  exact quiescence cycle, and honor timer wakeups across clock
 *  jumps. */
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "benchsuite/suite.hpp"
#include "runtime/runtime.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace soff
{
namespace
{

sim::NDRange
range1d(uint64_t global, uint64_t local)
{
    sim::NDRange nd;
    nd.globalSize[0] = global;
    nd.localSize[0] = local;
    return nd;
}

// --- Cross-check over the full benchmark suite -------------------------

/** Every runnable application, executed in CrossCheck mode at a given
 *  parallel worker count: the runtime runs one circuit per scheduler
 *  (reference, event-driven, and sharded parallel, concurrently) and
 *  throws unless RunResult, CircuitStats, retired work-item counts,
 *  and final global memory are bit-identical — and unless parallel and
 *  event-driven agree on componentSteps. */
class CrossCheckRun
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{};

TEST_P(CrossCheckRun, AllSchedulersMatchReference)
{
    const auto &[app_name, threads] = GetParam();
    const benchsuite::App *app = benchsuite::findApp(app_name);
    ASSERT_NE(app, nullptr);
    benchsuite::BenchContext ctx(benchsuite::Engine::SoffSim);
    sim::PlatformConfig platform;
    platform.scheduler = sim::SchedulerMode::CrossCheck;
    platform.threads = threads;
    ctx.setPlatformConfig(platform);
    if (app->expectInsufficientResources) {
        EXPECT_THROW(benchsuite::runApp(*app, ctx), RuntimeError);
        return;
    }
    EXPECT_TRUE(benchsuite::runApp(*app, ctx)) << app->name;
}

std::vector<std::string>
allAppNames()
{
    std::vector<std::string> names;
    for (const benchsuite::App &app : benchsuite::allApps())
        names.push_back(app.name);
    return names;
}

/** 1, 2, and hardware_concurrency() parallel workers, deduplicated. */
std::vector<int>
threadCounts()
{
    std::vector<int> counts = {
        1, 2, static_cast<int>(std::thread::hardware_concurrency())};
    std::sort(counts.begin(), counts.end());
    counts.erase(std::unique(counts.begin(), counts.end()),
                 counts.end());
    counts.erase(std::remove_if(counts.begin(), counts.end(),
                                [](int c) { return c < 1; }),
                 counts.end());
    return counts;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, CrossCheckRun,
    ::testing::Combine(::testing::ValuesIn(allAppNames()),
                       ::testing::ValuesIn(threadCounts())),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>>
           &info) {
        std::string name = std::get<0>(info.param) + "_t" +
                           std::to_string(std::get<1>(info.param));
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

/** The degenerate sharding case: a single datapath instance still
 *  yields two shards (shared + instance), exceeding a 1-thread worker
 *  budget, so the pool must degrade gracefully to serial phases. */
TEST(CrossCheckDegenerate, OneInstanceMoreShardsThanThreads)
{
    const benchsuite::App *app = benchsuite::findApp("103.stencil");
    ASSERT_NE(app, nullptr);
    benchsuite::BenchContext ctx(benchsuite::Engine::SoffSim);
    sim::PlatformConfig platform;
    platform.scheduler = sim::SchedulerMode::CrossCheck;
    platform.threads = 1;
    ctx.setPlatformConfig(platform);
    ctx.setInstanceOverride(1);
    EXPECT_TRUE(benchsuite::runApp(*app, ctx));
}

// --- Compiled mode over the full suite, with and without faults --------

/** Every runnable application under SchedulerMode::Compiled × fault
 *  seeds. Seed 0 disables injection (the pure specialized step loop);
 *  nonzero seeds install a fault plan, which must force the compiled
 *  plan back to the generic event-driven sweep (the fault-retry path
 *  needs the generic sweep cursor) while still verifying. */
class CompiledModeRun
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>>
{};

TEST_P(CompiledModeRun, VerifiesUnderFaultSeeds)
{
    const auto &[app_name, fault_seed] = GetParam();
    const benchsuite::App *app = benchsuite::findApp(app_name);
    ASSERT_NE(app, nullptr);
    benchsuite::BenchContext ctx(benchsuite::Engine::SoffSim);
    sim::PlatformConfig platform;
    platform.scheduler = sim::SchedulerMode::Compiled;
    platform.faults.seed = fault_seed;
    ctx.setPlatformConfig(platform);
    if (app->expectInsufficientResources) {
        EXPECT_THROW(benchsuite::runApp(*app, ctx), RuntimeError);
        return;
    }
    EXPECT_TRUE(benchsuite::runApp(*app, ctx)) << app->name;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, CompiledModeRun,
    ::testing::Combine(::testing::ValuesIn(allAppNames()),
                       ::testing::Values(uint64_t{0}, uint64_t{42},
                                         uint64_t{1337})),
    [](const ::testing::TestParamInfo<std::tuple<std::string, uint64_t>>
           &info) {
        std::string name = std::get<0>(info.param) + "_f" +
                           std::to_string(std::get<1>(info.param));
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

// --- Randomized cross-mode equivalence on small kernels ----------------

/** Runs one kernel launch under both schedulers from identical initial
 *  memory and compares cycle counts, stats, and output bytes. */
class RandomizedEquivalence : public ::testing::TestWithParam<int>
{};

TEST_P(RandomizedEquivalence, IdenticalCyclesStatsAndMemory)
{
    const char *src =
        "__kernel void mix(__global int* A, __global int* B, int n) {\n"
        "  int i = get_global_id(0);\n"
        "  int acc = 0;\n"
        "  for (int k = 0; k <= i % 7; k++) acc += A[(i + k) % n];\n"
        "  if (acc % 3 == 0) atomic_add(&B[i % 16], acc);\n"
        "  else B[16 + i % 16] = acc;\n"
        "}\n";
    SplitMix64 rng(static_cast<uint64_t>(GetParam()));
    const uint64_t local = 1ull << (1 + rng.next() % 4); // 2..16
    const uint64_t n = local * (1 + rng.next() % 8);
    std::vector<int32_t> a(n);
    for (auto &v : a)
        v = static_cast<int32_t>(rng.next() % 1000);

    rt::LaunchResult results[4];
    std::vector<int32_t> out[4];
    // The "mix" kernel uses atomic_add, so the parallel run exercises
    // the collapsed single-shard fallback (a lock table shared across
    // instances cannot be sharded).
    const sim::SchedulerMode modes[4] = {sim::SchedulerMode::Reference,
                                         sim::SchedulerMode::EventDriven,
                                         sim::SchedulerMode::Parallel,
                                         sim::SchedulerMode::Compiled};
    for (int m = 0; m < 4; ++m) {
        rt::Context ctx;
        rt::Program prog = ctx.buildProgram(src);
        auto kernel = prog.createKernel("mix");
        rt::Buffer ba = ctx.createBuffer(n * 4);
        rt::Buffer bb = ctx.createBuffer(32 * 4);
        std::vector<int32_t> zeros(32, 0);
        ctx.writeBuffer(ba, a.data(), n * 4);
        ctx.writeBuffer(bb, zeros.data(), 32 * 4);
        kernel.setArg(0, ba);
        kernel.setArg(1, bb);
        kernel.setArg(2, static_cast<int32_t>(n));
        sim::PlatformConfig platform;
        platform.scheduler = modes[m];
        results[m] = ctx.enqueueNDRange(kernel, range1d(n, local),
                                        rt::ExecutionMode::Simulate,
                                        platform);
        out[m].resize(32);
        ctx.readBuffer(bb, out[m].data(), 32 * 4);
    }
    for (int m = 1; m < 4; ++m) {
        EXPECT_EQ(results[0].cycles, results[m].cycles) << m;
        EXPECT_EQ(results[0].stats.cacheHits,
                  results[m].stats.cacheHits) << m;
        EXPECT_EQ(results[0].stats.cacheMisses,
                  results[m].stats.cacheMisses) << m;
        EXPECT_EQ(results[0].stats.dramTransfers,
                  results[m].stats.dramTransfers) << m;
        EXPECT_EQ(results[0].stats.localBankConflicts,
                  results[m].stats.localBankConflicts) << m;
        EXPECT_EQ(out[0], out[m]) << m;
        // The event-driven schedulers must not do *more* work than the
        // reference, which steps every component every cycle.
        EXPECT_LE(results[m].sched.componentSteps,
                  results[0].sched.componentSteps) << m;
    }
    // The sharded scheduler's union of per-shard wake lists is
    // cycle-for-cycle the event-driven wake list.
    EXPECT_EQ(results[1].sched.componentSteps,
              results[2].sched.componentSteps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedEquivalence,
                         ::testing::Range(1, 9));

// --- Exact deadlock detection ------------------------------------------

/** Produces into a bounded channel; stalls for good once it fills. */
class StallingProducer : public sim::Component
{
  public:
    explicit StallingProducer(sim::Channel<int> *out)
        : Component("producer"), out_(out)
    {
        watch(out);
    }
    void
    step(sim::Cycle) override
    {
        if (out_->canPush())
            out_->push(1);
    }

  private:
    sim::Channel<int> *out_;
};

/** Watches its input but never consumes: the §IV-E deadlock. */
class NonConsumer : public sim::Component
{
  public:
    explicit NonConsumer(sim::Channel<int> *in)
        : Component("blackhole"), in_(in)
    {
        watch(in);
    }
    void step(sim::Cycle) override { (void)in_; }

  private:
    sim::Channel<int> *in_;
};

TEST(EventDriven, DeadlockDetectedAtExactQuiescenceCycle)
{
    auto runOnce = [] {
        sim::Simulator sim(sim::SchedulerMode::EventDriven);
        auto *ch = sim.channel<int>(2);
        sim.add<StallingProducer>(ch);
        sim.add<NonConsumer>(ch);
        return sim.run(nullptr, 1000000);
    };
    sim::Simulator::RunResult first = runOnce();
    EXPECT_TRUE(first.deadlock);
    EXPECT_FALSE(first.completed);
    // Quiescence is reached as soon as the channel fills: no heuristic
    // idle window, so detection is immediate and deterministic.
    EXPECT_LT(first.cycles, 10u);
    sim::Simulator::RunResult second = runOnce();
    EXPECT_EQ(first.cycles, second.cycles) << "exact, not heuristic";

    // The reference scheduler needs its idle-window heuristic and
    // reports the deadlock only after the window expires.
    sim::Simulator ref(sim::SchedulerMode::Reference);
    auto *ch = ref.channel<int>(2);
    ref.add<StallingProducer>(ch);
    ref.add<NonConsumer>(ch);
    sim::Simulator::RunResult heuristic = ref.run(nullptr, 1000000, 500);
    EXPECT_TRUE(heuristic.deadlock);
    EXPECT_GT(heuristic.cycles, first.cycles);
}

// --- Timer wakeups across clock jumps ----------------------------------

/** A component with no channels: it re-arms a far-future timer each
 *  step, so the scheduler must jump the clock across the idle gap. */
class SparseTicker : public sim::Component
{
  public:
    SparseTicker(std::vector<sim::Cycle> *ticks, bool *done)
        : Component("ticker"), ticks_(ticks), done_(done)
    {}
    void
    step(sim::Cycle now) override
    {
        if (now < next_) // timer guard: reference steps every cycle
            return;
        ticks_->push_back(now);
        if (ticks_->size() >= 5) {
            *done_ = true;
        } else {
            next_ = now + 1000;
            wakeAt(next_);
        }
    }

  private:
    std::vector<sim::Cycle> *ticks_;
    bool *done_;
    sim::Cycle next_ = 0;
};

TEST(EventDriven, TimerWakeupsAcrossClockJumps)
{
    sim::Simulator sim(sim::SchedulerMode::EventDriven);
    std::vector<sim::Cycle> ticks;
    bool done = false;
    sim.add<SparseTicker>(&ticks, &done);
    sim::Simulator::RunResult result = sim.run(&done, 1000000);
    EXPECT_TRUE(result.completed);
    ASSERT_EQ(ticks.size(), 5u);
    for (size_t i = 0; i < ticks.size(); ++i)
        EXPECT_EQ(ticks[i], i * 1000) << "tick " << i;
    EXPECT_GT(result.cycles, 4000u);
    // Only the five tick cycles were processed; the ~4000 idle cycles
    // in between were jumped over.
    EXPECT_LE(sim.schedulerStats().cyclesActive, 6u);
    EXPECT_EQ(sim.schedulerStats().componentSteps, 5u);
}

/** Same circuit under the reference scheduler: identical ticks, but
 *  every idle cycle is processed. */
TEST(Reference, TimerCircuitMatchesButProcessesEveryCycle)
{
    sim::Simulator sim(sim::SchedulerMode::Reference);
    std::vector<sim::Cycle> ticks;
    bool done = false;
    sim.add<SparseTicker>(&ticks, &done);
    sim::Simulator::RunResult result = sim.run(&done, 1000000);
    EXPECT_TRUE(result.completed);
    ASSERT_EQ(ticks.size(), 5u);
    for (size_t i = 0; i < ticks.size(); ++i)
        EXPECT_EQ(ticks[i], i * 1000) << "tick " << i;
    EXPECT_GE(sim.schedulerStats().componentSteps, 4000u);
}

} // namespace
} // namespace soff
