/** @file Unit tests for the OpenCL C frontend (lexer, parser, irgen). */
#include <gtest/gtest.h>

#include "frontend/irgen.hpp"
#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "support/error.hpp"

namespace soff::fe
{
namespace
{

std::vector<Token>
lex(const std::string &src)
{
    DiagnosticEngine diags;
    Lexer lexer(src, diags);
    auto toks = lexer.lex();
    EXPECT_FALSE(diags.hasErrors()) << diags.report();
    return toks;
}

TEST(Lexer, BasicTokens)
{
    auto toks = lex("int x = 42 + y;");
    ASSERT_EQ(toks.size(), 8u); // int x = 42 + y ; <eof>
    EXPECT_TRUE(toks[0].isKeyword("int"));
    EXPECT_EQ(toks[1].kind, TokKind::Identifier);
    EXPECT_EQ(toks[3].kind, TokKind::IntLiteral);
    EXPECT_EQ(toks[3].intValue, 42u);
}

TEST(Lexer, FloatLiterals)
{
    auto toks = lex("1.5f 2.0 3e2 0.5e-1f");
    EXPECT_EQ(toks[0].kind, TokKind::FloatLiteral);
    EXPECT_FALSE(toks[0].floatIsDouble);
    EXPECT_FLOAT_EQ(static_cast<float>(toks[0].floatValue), 1.5f);
    EXPECT_TRUE(toks[1].floatIsDouble);
    EXPECT_DOUBLE_EQ(toks[2].floatValue, 300.0);
    EXPECT_FALSE(toks[3].floatIsDouble);
}

TEST(Lexer, HexAndSuffixes)
{
    auto toks = lex("0xff 10u 10UL");
    EXPECT_EQ(toks[0].intValue, 255u);
    EXPECT_TRUE(toks[1].intIsUnsigned);
    EXPECT_TRUE(toks[2].intIsUnsigned);
    EXPECT_TRUE(toks[2].intIsLong);
}

TEST(Lexer, CommentsAndOperators)
{
    auto toks = lex("a /* x */ >>= b // end\n << c");
    EXPECT_EQ(toks[0].kind, TokKind::Identifier);
    EXPECT_EQ(toks[1].kind, TokKind::ShrAssign);
    EXPECT_EQ(toks[3].kind, TokKind::Shl);
}

TEST(Lexer, ObjectMacros)
{
    auto toks = lex("#define N 64\nint a = N * N;");
    // N expands to 64 twice.
    int count = 0;
    for (const Token &t : toks) {
        if (t.kind == TokKind::IntLiteral && t.intValue == 64)
            ++count;
    }
    EXPECT_EQ(count, 2);
}

TEST(Lexer, BarrierFlagMacrosPredefined)
{
    auto toks = lex("barrier(CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE)");
    bool saw1 = false, saw2 = false;
    for (const Token &t : toks) {
        if (t.kind == TokKind::IntLiteral && t.intValue == 1)
            saw1 = true;
        if (t.kind == TokKind::IntLiteral && t.intValue == 2)
            saw2 = true;
    }
    EXPECT_TRUE(saw1 && saw2);
}

TEST(Lexer, FunctionLikeMacroRejected)
{
    DiagnosticEngine diags;
    Lexer lexer("#define F(x) (x)\n", diags);
    lexer.lex();
    EXPECT_TRUE(diags.hasErrors());
}

// --- Parser ---

TranslationUnit
parseOk(const std::string &src)
{
    DiagnosticEngine diags;
    TranslationUnit tu = parseSource(src, diags);
    EXPECT_FALSE(diags.hasErrors()) << diags.report();
    return tu;
}

TEST(Parser, KernelSignature)
{
    auto tu = parseOk(
        "__kernel void f(__global float* A, __global const float* B, "
        "int n) {}");
    ASSERT_EQ(tu.functions.size(), 1u);
    const FunctionDecl &fn = *tu.functions[0];
    EXPECT_TRUE(fn.isKernel);
    EXPECT_EQ(fn.name, "f");
    ASSERT_EQ(fn.params.size(), 3u);
    EXPECT_EQ(fn.params[0].type.ptrs.size(), 1u);
    EXPECT_EQ(fn.params[0].type.ptrs[0], ir::AddrSpace::Global);
    EXPECT_TRUE(fn.params[2].type.ptrs.empty());
}

TEST(Parser, PointerToPointer)
{
    auto tu = parseOk("__kernel void f(__global int** p) {}");
    EXPECT_EQ(tu.functions[0]->params[0].type.ptrs.size(), 2u);
}

TEST(Parser, ControlFlowStatements)
{
    auto tu = parseOk(
        "void helper(int a) {}\n"
        "__kernel void f(__global int* A, int n) {\n"
        "  for (int i = 0; i < n; i++) {\n"
        "    if (A[i] > 0) continue; else A[i] = -A[i];\n"
        "  }\n"
        "  int j = 0;\n"
        "  while (j < n) { j += 2; if (j == 8) break; }\n"
        "  do { j--; } while (j > 0);\n"
        "}");
    EXPECT_EQ(tu.functions.size(), 2u);
}

TEST(Parser, ArraySizeConstantFolding)
{
    auto tu = parseOk(
        "#define TILE 8\n"
        "__kernel void f() { __local float t[TILE * TILE + 1]; }");
    const Stmt &body = *tu.functions[0]->body;
    ASSERT_EQ(body.body.size(), 1u);
    EXPECT_EQ(body.body[0]->declarators[0].arrayDims[0], 65u);
}

TEST(Parser, RejectsStructs)
{
    DiagnosticEngine diags;
    parseSource("struct S { int x; };", diags);
    EXPECT_TRUE(diags.hasErrors());
}

// --- IR generation ---

std::unique_ptr<ir::Module>
compile(const std::string &src)
{
    auto module = compileToIR(src, "test");
    auto errors = ir::verifyModule(*module);
    EXPECT_TRUE(errors.empty())
        << (errors.empty() ? "" : errors[0]) << "\n"
        << ir::printModule(*module);
    return module;
}

TEST(IRGen, VectorAdd)
{
    auto m = compile(
        "__kernel void vadd(__global float* A, __global float* B,\n"
        "                   __global float* C) {\n"
        "  int i = get_global_id(0);\n"
        "  C[i] = A[i] + B[i];\n"
        "}");
    ir::Kernel *k = m->findKernel("vadd");
    ASSERT_NE(k, nullptr);
    EXPECT_EQ(k->numArguments(), 3u);
    std::string text = ir::printKernel(*k);
    EXPECT_NE(text.find("wiinfo global_id"), std::string::npos);
    EXPECT_NE(text.find("fadd"), std::string::npos);
}

TEST(IRGen, ImplicitConversions)
{
    auto m = compile(
        "__kernel void f(__global float* A, int n) {\n"
        "  int i = get_global_id(0);\n"
        "  A[i] = i * 2 + n / 3.0f;\n"
        "}");
    std::string text = ir::printKernel(*m->kernel(0));
    EXPECT_NE(text.find("sitofp"), std::string::npos);
}

TEST(IRGen, ShortCircuitCreatesControlFlow)
{
    auto m = compile(
        "__kernel void f(__global int* A, int n) {\n"
        "  int i = get_global_id(0);\n"
        "  if (i < n && A[i] > 0) A[i] = 0;\n"
        "}");
    // Short-circuit means more than 3 blocks.
    EXPECT_GT(m->kernel(0)->numBlocks(), 3u);
}

TEST(IRGen, PrivateArrayBecomesSlot)
{
    auto m = compile(
        "__kernel void f(__global float* A) {\n"
        "  float acc[4];\n"
        "  for (int k = 0; k < 4; k++) acc[k] = 0.0f;\n"
        "  A[get_global_id(0)] = acc[0] + acc[3];\n"
        "}");
    std::string text = ir::printKernel(*m->kernel(0));
    EXPECT_NE(text.find("arrayextract"), std::string::npos);
    EXPECT_NE(text.find("arrayinsert"), std::string::npos);
}

TEST(IRGen, LocalArrayUsesLocalMemory)
{
    auto m = compile(
        "__kernel void f(__global float* A) {\n"
        "  __local float tile[16];\n"
        "  int l = get_local_id(0);\n"
        "  tile[l] = A[get_global_id(0)];\n"
        "  barrier(CLK_LOCAL_MEM_FENCE);\n"
        "  A[get_global_id(0)] = tile[15 - l];\n"
        "}");
    ir::Kernel *k = m->kernel(0);
    EXPECT_EQ(k->numLocalVars(), 1u);
    std::string text = ir::printKernel(*k);
    EXPECT_NE(text.find("localaddr"), std::string::npos);
    EXPECT_NE(text.find("barrier"), std::string::npos);
}

TEST(IRGen, Atomics)
{
    auto m = compile(
        "__kernel void f(__global int* H, __global int* D, int n) {\n"
        "  int i = get_global_id(0);\n"
        "  atomic_add(&H[D[i] % n], 1);\n"
        "  atomic_inc(&H[0]);\n"
        "  atom_max(&H[1], i);\n"
        "}");
    std::string text = ir::printKernel(*m->kernel(0));
    EXPECT_NE(text.find("atomicrmw add"), std::string::npos);
    EXPECT_NE(text.find("atomicrmw smax"), std::string::npos);
}

TEST(IRGen, MathBuiltinsOverloadBySignedness)
{
    auto m = compile(
        "__kernel void f(__global float* A, __global int* B,\n"
        "                __global uint* C) {\n"
        "  int i = get_global_id(0);\n"
        "  A[i] = sqrt(fabs(A[i])) + fmax(A[i], 1.0f);\n"
        "  B[i] = max(B[i], 3);\n"
        "  C[i] = min(C[i], 7u);\n"
        "}");
    std::string text = ir::printKernel(*m->kernel(0));
    EXPECT_NE(text.find("mathcall sqrt"), std::string::npos);
    EXPECT_NE(text.find("mathcall smax"), std::string::npos);
    EXPECT_NE(text.find("mathcall umin"), std::string::npos);
}

TEST(IRGen, UserFunctionCall)
{
    auto m = compile(
        "float square(float x) { return x * x; }\n"
        "__kernel void f(__global float* A) {\n"
        "  int i = get_global_id(0);\n"
        "  A[i] = square(A[i]);\n"
        "}");
    EXPECT_EQ(m->numKernels(), 2u); // helper + kernel, pre-inline
    std::string text = ir::printKernel(*m->findKernel("f"));
    EXPECT_NE(text.find("call @square"), std::string::npos);
}

TEST(IRGen, TernaryAndSelect)
{
    auto m = compile(
        "__kernel void f(__global int* A) {\n"
        "  int i = get_global_id(0);\n"
        "  A[i] = (A[i] > 0) ? A[i] : -A[i];\n"
        "}");
    EXPECT_GE(m->kernel(0)->numBlocks(), 4u);
}

TEST(IRGen, AddressOfPrivateRejected)
{
    EXPECT_THROW(compileToIR(
        "__kernel void f(__global int* A) {\n"
        "  int x = 1;\n"
        "  int* p = &x;\n"
        "  A[0] = *p;\n"
        "}", "t"), CompileError);
}

TEST(IRGen, UnknownFunctionRejected)
{
    EXPECT_THROW(compileToIR(
        "__kernel void f() { frobnicate(1); }", "t"), CompileError);
}

TEST(IRGen, KernelMustReturnVoid)
{
    EXPECT_THROW(compileToIR("__kernel int f() { return 1; }", "t"),
                 CompileError);
}

TEST(IRGen, MultiDimLocalArray)
{
    auto m = compile(
        "__kernel void f(__global float* A) {\n"
        "  __local float tile[4][8];\n"
        "  int l = get_local_id(0);\n"
        "  tile[l / 8][l % 8] = A[l];\n"
        "  barrier(CLK_LOCAL_MEM_FENCE);\n"
        "  A[l] = tile[0][l % 8];\n"
        "}");
    ir::Kernel *k = m->kernel(0);
    ASSERT_EQ(k->numLocalVars(), 1u);
    EXPECT_EQ(k->localVar(0)->type()->count(), 32u);
}

TEST(IRGen, SizeofAndCasts)
{
    auto m = compile(
        "__kernel void f(__global float* A, __global int* B) {\n"
        "  int i = get_global_id(0);\n"
        "  B[i] = (int)(A[i] * 10.0f) + (int)sizeof(float);\n"
        "}");
    std::string text = ir::printKernel(*m->kernel(0));
    EXPECT_NE(text.find("fptosi"), std::string::npos);
}

} // namespace
} // namespace soff::fe
