/** @file Tests for the DFG builder (paper §III-C, Fig. 4) and the
 *  Verilog backend (paper Fig. 3). */
#include <gtest/gtest.h>

#include "analysis/liveness.hpp"
#include "datapath/plan.hpp"
#include "dfg/dfg.hpp"
#include "frontend/irgen.hpp"
#include "transform/passes.hpp"
#include "verilog/emit.hpp"

namespace soff
{
namespace
{

std::unique_ptr<ir::Module>
lower(const std::string &src)
{
    auto module = fe::compileToIR(src, "t");
    transform::runStandardPipeline(*module);
    return module;
}

struct BlockDfg
{
    std::unique_ptr<ir::Module> module;
    std::unique_ptr<analysis::CfgInfo> cfg;
    std::unique_ptr<analysis::Liveness> live;
    std::unique_ptr<analysis::PointerAnalysis> pa;
    std::unique_ptr<dfg::Dfg> graph;
};

BlockDfg
buildFor(const std::string &src, size_t block_index = 0)
{
    BlockDfg out;
    out.module = lower(src);
    const ir::Kernel &k = *out.module->kernel(0);
    out.cfg = std::make_unique<analysis::CfgInfo>(k);
    out.live = std::make_unique<analysis::Liveness>(*out.cfg);
    out.pa = std::make_unique<analysis::PointerAnalysis>(k);
    const ir::BasicBlock *bb = k.block(block_index);
    out.graph = std::make_unique<dfg::Dfg>(
        bb, out.live->orderedLiveIn(bb), out.live->orderedLiveOut(bb),
        *out.pa);
    return out;
}

TEST(Dfg, SourceAndSinkExist)
{
    auto b = buildFor(
        "__kernel void f(__global float* A) {\n"
        "  int i = get_global_id(0);\n"
        "  A[i] = A[i] + 1.0f;\n"
        "}");
    EXPECT_EQ(b.graph->nodes().front().kind, dfg::DfgNode::Kind::Source);
    EXPECT_EQ(b.graph->nodes().back().kind, dfg::DfgNode::Kind::Sink);
    EXPECT_GT(b.graph->nodes().size(), 4u);
}

TEST(Dfg, AntiDependenceEdgeBetweenAliasingAccesses)
{
    // Paper Fig. 4(d): load A[y] then store A[y+C]: same buffer ->
    // ordering edge from the load to the store.
    auto b = buildFor(
        "__kernel void f(__global float* A, int C) {\n"
        "  int y = get_global_id(0);\n"
        "  float t = A[y];\n"
        "  A[y + C] = t;\n"
        "}");
    int load_id = -1, store_id = -1;
    for (const dfg::DfgNode &n : b.graph->nodes()) {
        if (n.kind != dfg::DfgNode::Kind::Instruction)
            continue;
        if (n.inst->op() == ir::Opcode::Load)
            load_id = n.id;
        if (n.inst->op() == ir::Opcode::Store)
            store_id = n.id;
    }
    ASSERT_GE(load_id, 0);
    ASSERT_GE(store_id, 0);
    bool ordered = false;
    for (const dfg::DfgEdge &e : b.graph->edges()) {
        if (e.from == load_id && e.to == store_id)
            ordered = true;
    }
    EXPECT_TRUE(ordered);
}

TEST(Dfg, NoOrderingEdgeBetweenDistinctBuffers)
{
    auto b = buildFor(
        "__kernel void f(__global float* A, __global float* B) {\n"
        "  int i = get_global_id(0);\n"
        "  B[i] = A[i];\n"
        "}");
    // load(A) feeds store(B) by value; there must be no *extra*
    // ordering edge (distinct buffers never alias, §V-A).
    int ordering_edges = 0;
    for (const dfg::DfgEdge &e : b.graph->edges()) {
        const auto &from = b.graph->nodes()[static_cast<size_t>(e.from)];
        const auto &to = b.graph->nodes()[static_cast<size_t>(e.to)];
        if (e.ordering() &&
            from.kind == dfg::DfgNode::Kind::Instruction &&
            to.kind == dfg::DfgNode::Kind::Instruction &&
            from.inst->isMemoryAccess() && to.inst->isMemoryAccess()) {
            ++ordering_edges;
        }
    }
    EXPECT_EQ(ordering_edges, 0);
}

TEST(Dfg, StoresConnectToSink)
{
    auto b = buildFor(
        "__kernel void f(__global float* A) {\n"
        "  A[get_global_id(0)] = 1.0f;\n"
        "}");
    int store_id = -1;
    for (const dfg::DfgNode &n : b.graph->nodes()) {
        if (n.kind == dfg::DfgNode::Kind::Instruction &&
            n.inst->op() == ir::Opcode::Store) {
            store_id = n.id;
        }
    }
    ASSERT_GE(store_id, 0);
    bool to_sink = false;
    for (const dfg::DfgEdge &e : b.graph->edges()) {
        if (e.from == store_id && e.to == b.graph->sinkId())
            to_sink = true;
    }
    EXPECT_TRUE(to_sink) << "§III-C: ensure completion before exit";
}

TEST(Dfg, TopoOrderIsValid)
{
    auto b = buildFor(
        "__kernel void f(__global float* A, __global float* B) {\n"
        "  int i = get_global_id(0);\n"
        "  B[i] = sqrt(A[i]) * A[i] + 2.0f;\n"
        "}");
    auto order = b.graph->topoOrder();
    std::map<int, size_t> position;
    for (size_t i = 0; i < order.size(); ++i)
        position[order[i]] = i;
    for (const dfg::DfgEdge &e : b.graph->edges())
        EXPECT_LT(position.at(e.from), position.at(e.to));
}

// --- Verilog backend ---------------------------------------------------

TEST(Verilog, EmitsTopLevelStructure)
{
    auto module = lower(
        "__kernel void vadd(__global float* A, __global float* B,\n"
        "                   __global float* C) {\n"
        "  int i = get_global_id(0);\n"
        "  C[i] = A[i] + B[i];\n"
        "}");
    auto plan = datapath::planKernel(*module->kernel(0), {});
    std::string rtl = verilog::emitTop(*plan, 4);
    // The Fig. 2 skeleton: CSRs, dispatcher, counter, caches,
    // datapath instances.
    EXPECT_NE(rtl.find("module soff_top_vadd"), std::string::npos);
    EXPECT_NE(rtl.find("trigger_reg"), std::string::npos);
    EXPECT_NE(rtl.find("completion_reg"), std::string::npos);
    EXPECT_NE(rtl.find("soff_dispatcher"), std::string::npos);
    EXPECT_NE(rtl.find("soff_wi_counter"), std::string::npos);
    EXPECT_NE(rtl.find("soff_cache"), std::string::npos);
    // 4 instances requested.
    EXPECT_NE(rtl.find("dp3"), std::string::npos);
    EXPECT_EQ(rtl.find("dp4 "), std::string::npos);
    // One IP core per functional-unit family appears.
    EXPECT_NE(rtl.find("soff_fp_addsub"), std::string::npos);
    EXPECT_NE(rtl.find("soff_mem_load"), std::string::npos);
    EXPECT_NE(rtl.find("soff_mem_store"), std::string::npos);
}

TEST(Verilog, LoopKernelsEmitLoopGates)
{
    auto module = lower(
        "__kernel void f(__global float* A, int n) {\n"
        "  float acc = 0.0f;\n"
        "  for (int k = 0; k < n; k++) acc += A[k];\n"
        "  A[get_global_id(0)] = acc;\n"
        "}");
    auto plan = datapath::planKernel(*module->kernel(0), {});
    std::string rtl = verilog::emitKernel(*plan, 1);
    EXPECT_NE(rtl.find("soff_loop_gate"), std::string::npos);
    EXPECT_NE(rtl.find("soff_fifo"), std::string::npos) << "back edge";
    EXPECT_NE(rtl.find("soff_select"), std::string::npos);
}

TEST(Verilog, BarrierKernelsEmitBarrierCore)
{
    auto module = lower(
        "__kernel void f(__global float* A) {\n"
        "  __local float t[8];\n"
        "  int l = get_local_id(0);\n"
        "  t[l] = A[l];\n"
        "  barrier(CLK_LOCAL_MEM_FENCE);\n"
        "  A[l] = t[7 - l];\n"
        "}");
    auto plan = datapath::planKernel(*module->kernel(0), {});
    std::string rtl = verilog::emitTop(*plan, 1);
    EXPECT_NE(rtl.find("soff_barrier"), std::string::npos);
    EXPECT_NE(rtl.find("soff_local_block"), std::string::npos);
}

TEST(Verilog, DeterministicOutput)
{
    auto module = lower(
        "__kernel void f(__global int* A) {\n"
        "  A[get_global_id(0)] = 1;\n"
        "}");
    auto p1 = datapath::planKernel(*module->kernel(0), {});
    auto p2 = datapath::planKernel(*module->kernel(0), {});
    EXPECT_EQ(verilog::emitTop(*p1, 2), verilog::emitTop(*p2, 2));
}

} // namespace
} // namespace soff
