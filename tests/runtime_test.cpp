/** @file Unit tests for the runtime: device allocator, buffer DMA,
 *  argument validation, partial reconfiguration, baselines, and the
 *  Table II compatibility rules. */
#include <gtest/gtest.h>

#include "baseline/compat.hpp"
#include "baseline/static_pipeline.hpp"
#include "runtime/runtime.hpp"
#include "support/error.hpp"

namespace soff::rt
{
namespace
{

TEST(Device, AllocatorReusesFreedBlocks)
{
    Device device(datapath::FpgaSpec::arria10(), 1 << 20);
    uint64_t a = device.allocate(1000);
    uint64_t b = device.allocate(2000);
    EXPECT_NE(a, b);
    EXPECT_NE(a, 0u);
    device.release(a);
    uint64_t c = device.allocate(500);
    EXPECT_EQ(c, a) << "first-fit reuse of the freed block";
    device.release(b);
    device.release(c);
    // Coalesced: a large allocation fits again.
    uint64_t d = device.allocate((1 << 20) - 4096);
    EXPECT_NE(d, 0u);
}

TEST(Device, ExhaustionThrows)
{
    Device device(datapath::FpgaSpec::arria10(), 1 << 12);
    EXPECT_THROW(device.allocate(1 << 20), RuntimeError);
}

TEST(Device, AllocationsAreLineAligned)
{
    Device device(datapath::FpgaSpec::arria10(), 1 << 20);
    for (int i = 0; i < 5; ++i) {
        uint64_t addr = device.allocate(i * 7 + 3);
        EXPECT_EQ(addr % 64, 0u) << "64-byte alignment (cache lines)";
    }
}

TEST(Context, BufferRoundTrip)
{
    Context ctx;
    std::vector<int32_t> data = {1, 2, 3, 4, 5};
    Buffer buffer = ctx.createBuffer(data.size() * 4);
    ctx.writeBuffer(buffer, data.data(), data.size() * 4);
    std::vector<int32_t> out(data.size());
    ctx.readBuffer(buffer, out.data(), out.size() * 4);
    EXPECT_EQ(out, data);
    ctx.releaseBuffer(buffer);
    EXPECT_FALSE(buffer.valid());
}

const char *kTwoKernels = R"CL(
__kernel void a(__global int* X) { X[get_global_id(0)] = 1; }
__kernel void b(__global int* X, int v) { X[get_global_id(0)] = v; }
)CL";

TEST(Program, KernelLookup)
{
    Context ctx;
    Program program = ctx.buildProgram(kTwoKernels);
    EXPECT_NO_THROW(program.createKernel("a"));
    EXPECT_NO_THROW(program.createKernel("b"));
    EXPECT_THROW(program.createKernel("missing"), RuntimeError);
}

TEST(KernelHandle, ArgumentValidation)
{
    Context ctx;
    Program program = ctx.buildProgram(kTwoKernels);
    KernelHandle kernel = program.createKernel("b");
    Buffer buffer = ctx.createBuffer(256);
    EXPECT_THROW(kernel.setArg(0, int32_t{1}), RuntimeError)
        << "buffer arg given a scalar";
    EXPECT_THROW(kernel.setArg(1, buffer), RuntimeError)
        << "scalar arg given a buffer";
    EXPECT_THROW(kernel.setArg(2, int32_t{1}), RuntimeError)
        << "index out of range";
    kernel.setArg(0, buffer);
    sim::NDRange nd;
    nd.globalSize[0] = 64;
    nd.localSize[0] = 64;
    EXPECT_THROW(ctx.enqueueNDRange(kernel, nd), RuntimeError)
        << "arg 1 never set";
    kernel.setArg(1, int32_t{9});
    EXPECT_NO_THROW(ctx.enqueueNDRange(kernel, nd));
}

TEST(Context, RejectsIndivisibleNDRange)
{
    Context ctx;
    Program program = ctx.buildProgram(kTwoKernels);
    KernelHandle kernel = program.createKernel("a");
    kernel.setArg(0, ctx.createBuffer(4096));
    sim::NDRange nd;
    nd.globalSize[0] = 100;
    nd.localSize[0] = 64; // 100 % 64 != 0
    EXPECT_THROW(ctx.enqueueNDRange(kernel, nd), RuntimeError);
}

TEST(Context, ReferenceAndSimulateAgree)
{
    std::vector<int32_t> sim_out(128), ref_out(128);
    for (int mode = 0; mode < 2; ++mode) {
        Context ctx;
        Program program = ctx.buildProgram(kTwoKernels);
        KernelHandle kernel = program.createKernel("b");
        Buffer buffer = ctx.createBuffer(128 * 4);
        kernel.setArg(0, buffer);
        kernel.setArg(1, int32_t{41});
        sim::NDRange nd;
        nd.globalSize[0] = 128;
        nd.localSize[0] = 32;
        ctx.enqueueNDRange(kernel, nd,
                           mode == 0 ? ExecutionMode::Simulate
                                     : ExecutionMode::Reference);
        ctx.readBuffer(buffer, (mode == 0 ? sim_out : ref_out).data(),
                       128 * 4);
    }
    EXPECT_EQ(sim_out, ref_out);
}

// --- Compatibility rules (Table II machinery) ---------------------------

TEST(Compat, OutcomeCodesMatchTableII)
{
    using baseline::Outcome;
    EXPECT_STREQ(baseline::outcomeCode(Outcome::OK), "");
    EXPECT_STREQ(baseline::outcomeCode(Outcome::CompileError), "CE");
    EXPECT_STREQ(baseline::outcomeCode(Outcome::IncorrectAnswer), "IA");
    EXPECT_STREQ(baseline::outcomeCode(Outcome::RuntimeError), "RE");
    EXPECT_STREQ(baseline::outcomeCode(Outcome::Hang), "H");
    EXPECT_STREQ(baseline::outcomeCode(Outcome::InsufficientResources),
                 "IR");
}

TEST(Compat, XilinxRejectsAtomicsIndirectAndLocalInBranch)
{
    analysis::KernelFeatures f;
    EXPECT_EQ(baseline::xilinxLikeOutcome(f), baseline::Outcome::OK);
    f.usesAtomics = true;
    EXPECT_EQ(baseline::xilinxLikeOutcome(f),
              baseline::Outcome::CompileError);
    f = {};
    f.usesIndirectPointers = true;
    EXPECT_EQ(baseline::xilinxLikeOutcome(f),
              baseline::Outcome::CompileError);
    f = {};
    f.localAccessInBranch = true;
    EXPECT_EQ(baseline::xilinxLikeOutcome(f),
              baseline::Outcome::CompileError);
}

TEST(Compat, IntelFailsOnAtomicBarrierLocalCombination)
{
    analysis::KernelFeatures f;
    f.usesAtomics = true;
    f.usesBarrier = true;
    f.usesLocalMemory = true;
    EXPECT_NE(baseline::intelLikeOutcome(f), baseline::Outcome::OK);
    analysis::KernelFeatures plain;
    EXPECT_EQ(baseline::intelLikeOutcome(plain), baseline::Outcome::OK);
}

// --- Static-pipeline baseline machinery ---------------------------------

TEST(StaticPipeline, RecurrenceBoundII)
{
    // A float accumulation loop: the baseline pays the FADD latency
    // per iteration; an integer loop does not.
    Context ctx;
    auto program = ctx.buildProgram(R"CL(
__kernel void facc(__global float* A, int n) {
  float acc = 0.0f;
  for (int k = 0; k < n; k++) acc += A[k];
  A[get_global_id(0)] = acc;
}
__kernel void iacc(__global int* A, int n) {
  int acc = 0;
  for (int k = 0; k < n; k++) acc += A[k];
  A[get_global_id(0)] = acc;
}
)CL");
    auto run = [&](const char *name) {
        KernelHandle kernel = program.createKernel(name);
        Buffer buffer = ctx.createBuffer(4096);
        kernel.setArg(0, buffer);
        kernel.setArg(1, int32_t{64});
        sim::LaunchContext launch;
        launch.ndrange.globalSize[0] = 64;
        launch.ndrange.localSize[0] = 16;
        launch.args = kernel.argValues();
        auto cfg = baseline::StaticPipelineConfig::intelLike(1);
        return baseline::runStaticPipeline(
            *kernel.compiled().kernel, launch,
            ctx.device().globalMemory(), cfg);
    };
    auto fp = run("facc");
    auto ip = run("iacc");
    EXPECT_GT(fp.cycles, ip.cycles)
        << "loop-carried FADD recurrence must cost the baseline";
}

} // namespace
} // namespace soff::rt
