/** @file Unit tests for the runtime: device allocator, buffer DMA,
 *  argument validation, partial reconfiguration, command queues and
 *  events, the circuit-template pool, baselines, and the Table II
 *  compatibility rules. */
#include <array>
#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "baseline/compat.hpp"
#include "baseline/static_pipeline.hpp"
#include "runtime/runtime.hpp"
#include "support/error.hpp"

namespace soff::rt
{
namespace
{

TEST(Device, AllocatorReusesFreedBlocks)
{
    Device device(datapath::FpgaSpec::arria10(), 1 << 20);
    uint64_t a = device.allocate(1000);
    uint64_t b = device.allocate(2000);
    EXPECT_NE(a, b);
    EXPECT_NE(a, 0u);
    device.release(a);
    uint64_t c = device.allocate(500);
    EXPECT_EQ(c, a) << "first-fit reuse of the freed block";
    device.release(b);
    device.release(c);
    // Coalesced: a large allocation fits again.
    uint64_t d = device.allocate((1 << 20) - 4096);
    EXPECT_NE(d, 0u);
}

TEST(Device, ExhaustionThrows)
{
    Device device(datapath::FpgaSpec::arria10(), 1 << 12);
    EXPECT_THROW(device.allocate(1 << 20), RuntimeError);
}

TEST(Device, AllocationsAreLineAligned)
{
    Device device(datapath::FpgaSpec::arria10(), 1 << 20);
    for (int i = 0; i < 5; ++i) {
        uint64_t addr = device.allocate(i * 7 + 3);
        EXPECT_EQ(addr % 64, 0u) << "64-byte alignment (cache lines)";
    }
}

TEST(Context, BufferRoundTrip)
{
    Context ctx;
    std::vector<int32_t> data = {1, 2, 3, 4, 5};
    Buffer buffer = ctx.createBuffer(data.size() * 4);
    ctx.writeBuffer(buffer, data.data(), data.size() * 4);
    std::vector<int32_t> out(data.size());
    ctx.readBuffer(buffer, out.data(), out.size() * 4);
    EXPECT_EQ(out, data);
    ctx.releaseBuffer(buffer);
    EXPECT_FALSE(buffer.valid());
}

const char *kTwoKernels = R"CL(
__kernel void a(__global int* X) { X[get_global_id(0)] = 1; }
__kernel void b(__global int* X, int v) { X[get_global_id(0)] = v; }
)CL";

TEST(Program, KernelLookup)
{
    Context ctx;
    Program program = ctx.buildProgram(kTwoKernels);
    EXPECT_NO_THROW(program.createKernel("a"));
    EXPECT_NO_THROW(program.createKernel("b"));
    EXPECT_THROW(program.createKernel("missing"), RuntimeError);
}

TEST(KernelHandle, ArgumentValidation)
{
    Context ctx;
    Program program = ctx.buildProgram(kTwoKernels);
    KernelHandle kernel = program.createKernel("b");
    Buffer buffer = ctx.createBuffer(256);
    EXPECT_THROW(kernel.setArg(0, int32_t{1}), RuntimeError)
        << "buffer arg given a scalar";
    EXPECT_THROW(kernel.setArg(1, buffer), RuntimeError)
        << "scalar arg given a buffer";
    EXPECT_THROW(kernel.setArg(2, int32_t{1}), RuntimeError)
        << "index out of range";
    kernel.setArg(0, buffer);
    sim::NDRange nd;
    nd.globalSize[0] = 64;
    nd.localSize[0] = 64;
    EXPECT_THROW(ctx.enqueueNDRange(kernel, nd), RuntimeError)
        << "arg 1 never set";
    kernel.setArg(1, int32_t{9});
    EXPECT_NO_THROW(ctx.enqueueNDRange(kernel, nd));
}

TEST(Context, RejectsIndivisibleNDRange)
{
    Context ctx;
    Program program = ctx.buildProgram(kTwoKernels);
    KernelHandle kernel = program.createKernel("a");
    kernel.setArg(0, ctx.createBuffer(4096));
    sim::NDRange nd;
    nd.globalSize[0] = 100;
    nd.localSize[0] = 64; // 100 % 64 != 0
    EXPECT_THROW(ctx.enqueueNDRange(kernel, nd), RuntimeError);
}

TEST(Context, ReferenceAndSimulateAgree)
{
    std::vector<int32_t> sim_out(128), ref_out(128);
    for (int mode = 0; mode < 2; ++mode) {
        Context ctx;
        Program program = ctx.buildProgram(kTwoKernels);
        KernelHandle kernel = program.createKernel("b");
        Buffer buffer = ctx.createBuffer(128 * 4);
        kernel.setArg(0, buffer);
        kernel.setArg(1, int32_t{41});
        sim::NDRange nd;
        nd.globalSize[0] = 128;
        nd.localSize[0] = 32;
        ctx.enqueueNDRange(kernel, nd,
                           mode == 0 ? ExecutionMode::Simulate
                                     : ExecutionMode::Reference);
        ctx.readBuffer(buffer, (mode == 0 ? sim_out : ref_out).data(),
                       128 * 4);
    }
    EXPECT_EQ(sim_out, ref_out);
}

// --- Circuit-template memoization ---------------------------------------

/** Barrier + local memory + loop: exercises every relaunch reset path
 *  (barrier buckets, local-memory slots, caches, loop gates). */
const char *kCacheKernel = R"CL(
__kernel void smooth(__global float* A, __global float* B, int iters) {
  __local float tile[16];
  int l = get_local_id(0);
  int g = get_global_id(0);
  tile[l] = A[g];
  for (int t = 0; t < iters; t++) {
    barrier(CLK_LOCAL_MEM_FENCE);
    float left = tile[l == 0 ? 0 : l - 1];
    float right = tile[l == 15 ? 15 : l + 1];
    barrier(CLK_LOCAL_MEM_FENCE);
    tile[l] = 0.5f * tile[l] + 0.25f * (left + right);
  }
  B[g] = tile[l];
}
)CL";

struct CacheLaunch
{
    uint64_t cycles = 0;
    std::vector<float> out;
    std::shared_ptr<const sim::StatsReport> stats;
};

/** Runs `launches` in one Context (later ones hit the circuit cache)
 *  and returns the outcome of the last launch. */
CacheLaunch
runLaunchLoop(const std::vector<std::pair<uint64_t, int32_t>> &launches)
{
    Context ctx;
    Program program = ctx.buildProgram(kCacheKernel);
    KernelHandle kernel = program.createKernel("smooth");
    Buffer a = ctx.createBuffer(256 * 4);
    Buffer b = ctx.createBuffer(256 * 4);
    kernel.setArg(0, a);
    kernel.setArg(1, b);
    CacheLaunch last;
    for (const auto &[n, iters] : launches) {
        std::vector<float> in(n);
        for (uint64_t i = 0; i < n; ++i)
            in[i] = static_cast<float>(i % 13) * 0.5f +
                    static_cast<float>(iters);
        ctx.writeBuffer(a, in.data(), n * 4);
        kernel.setArg(2, iters);
        sim::NDRange nd;
        nd.globalSize[0] = n;
        nd.localSize[0] = 16;
        Event event;
        LaunchResult r = ctx.enqueueNDRange(
            kernel, nd, ExecutionMode::Simulate, {}, 0, &event);
        last.cycles = r.cycles;
        last.out.assign(n, 0.0f);
        ctx.readBuffer(b, last.out.data(), n * 4);
        last.stats = soffGetKernelStats(event);
    }
    EXPECT_EQ(program.circuitCacheSize(), 1u)
        << "one circuit template parked per (plan, instances, platform)";
    return last;
}

TEST(CircuitCache, RelaunchMatchesColdBuild)
{
    // Warm path: three launches with different NDRanges and arguments,
    // the later ones rearming the memoized circuit. Cold path: a fresh
    // context running only the final launch. Cycle counts, results,
    // and the full architectural StatsReport must be bit-identical.
    CacheLaunch warm = runLaunchLoop({{64, 1}, {128, 3}, {96, 2}});
    CacheLaunch cold = runLaunchLoop({{96, 2}});
    EXPECT_EQ(warm.cycles, cold.cycles);
    EXPECT_EQ(warm.out, cold.out);
    ASSERT_NE(warm.stats, nullptr);
    ASSERT_NE(cold.stats, nullptr);
    EXPECT_EQ(sim::diffStatsReports(*warm.stats, *cold.stats), "")
        << "relaunch must reproduce the cold build's counters exactly";
}

TEST(CircuitCache, CacheDiesWithProgram)
{
    // Regression: the cache entry holds raw pointers into the plan's
    // IR, so it must live in the Program, not the Context. Rebuilding
    // the same source yields a fresh plan that may reuse the old
    // plan's address — a context-scoped cache would serve the stale
    // circuit (use-after-free). Two build/launch rounds in one context
    // must behave exactly like two cold builds.
    Context ctx;
    sim::NDRange nd;
    nd.globalSize[0] = 64;
    nd.localSize[0] = 16;
    std::array<uint64_t, 2> cycles{};
    for (int round = 0; round < 2; ++round) {
        Program program = ctx.buildProgram(kTwoKernels);
        KernelHandle kernel = program.createKernel("a");
        kernel.setArg(0, ctx.createBuffer(4096));
        cycles[static_cast<size_t>(round)] =
            ctx.enqueueNDRange(kernel, nd).cycles;
        EXPECT_EQ(program.circuitCacheSize(), 1u);
    } // ~Program drops the parked circuit with the plan it references.
    EXPECT_EQ(cycles[0], cycles[1]);
}

TEST(CircuitCache, EnvKnobDisablesCaching)
{
    setenv("SOFF_CIRCUIT_CACHE", "0", 1);
    Context ctx;
    Program program = ctx.buildProgram(kTwoKernels);
    KernelHandle kernel = program.createKernel("a");
    kernel.setArg(0, ctx.createBuffer(4096));
    sim::NDRange nd;
    nd.globalSize[0] = 64;
    nd.localSize[0] = 16;
    ctx.enqueueNDRange(kernel, nd);
    ctx.enqueueNDRange(kernel, nd);
    EXPECT_EQ(program.circuitCacheSize(), 0u);
    unsetenv("SOFF_CIRCUIT_CACHE");
    ctx.enqueueNDRange(kernel, nd);
    EXPECT_EQ(program.circuitCacheSize(), 1u);
}

// --- Device thread-safety ------------------------------------------------

TEST(Device, ConcurrentAllocDmaRelease)
{
    // The allocator block list and the DMA engine share one board
    // mutex; hammering them from several threads must neither corrupt
    // the free list nor tear any transfer. (Run under TSan in CI.)
    Device device(datapath::FpgaSpec::arria10(), 8 << 20);
    constexpr int kThreads = 8;
    constexpr int kRounds = 200;
    std::vector<std::thread> threads;
    std::atomic<int> torn{0};
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&device, &torn, t] {
            std::vector<uint32_t> in(64), out(64);
            for (int r = 0; r < kRounds; ++r) {
                uint64_t addr = device.allocate(64 * 4);
                uint32_t tag = static_cast<uint32_t>(t * kRounds + r);
                for (size_t i = 0; i < in.size(); ++i)
                    in[i] = tag ^ static_cast<uint32_t>(i);
                device.dmaWrite(addr, 64 * 4, in.data());
                device.dmaRead(addr, 64 * 4, out.data());
                if (out != in)
                    ++torn;
                device.release(addr);
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(torn.load(), 0) << "torn or misrouted DMA transfer";
    // Every block released: the full arena allocates again.
    uint64_t all = device.allocate((8 << 20) - 4096);
    EXPECT_NE(all, 0u) << "allocator free list corrupted";
}

TEST(Device, DmaRejectsOversizedTransfer)
{
    // GlobalMemory's block API is 32-bit sized; a transfer over 4 GiB
    // must be rejected up front, not silently truncated to the low 32
    // bits of its length. The size check precedes any memory access,
    // so a null host pointer never gets dereferenced here.
    Device device(datapath::FpgaSpec::arria10(), 8 << 20);
    uint64_t addr = device.allocate(4096);
    try {
        device.dmaWrite(addr, (1ull << 32) + 64, nullptr);
        FAIL() << "oversized dmaWrite must throw";
    } catch (const OpenClError &e) {
        EXPECT_EQ(e.status(), ClStatus::InvalidValue);
    }
    try {
        device.dmaRead(addr, (1ull << 32) + 64, nullptr);
        FAIL() << "oversized dmaRead must throw";
    } catch (const OpenClError &e) {
        EXPECT_EQ(e.status(), ClStatus::InvalidValue);
    }
    device.release(addr);
}

// --- Command queues and events -------------------------------------------

/** Enqueues one tiny launch of kernel `a` and returns its event. */
Event
queueOneLaunch(Context &ctx, CommandQueue &queue, KernelHandle &kernel,
               const std::vector<Event> &wait_list = {})
{
    sim::NDRange nd;
    nd.globalSize[0] = 64;
    nd.localSize[0] = 16;
    Event event;
    queue.enqueueNDRange(kernel, nd, wait_list, &event);
    return event;
}

TEST(Queue, WaitListRejectsUnattachedEvent)
{
    Context ctx;
    Program program = ctx.buildProgram(kTwoKernels);
    KernelHandle kernel = program.createKernel("a");
    kernel.setArg(0, ctx.createBuffer(4096));
    CommandQueue queue(ctx, {.outOfOrder = true});
    // An unattached event can never complete — waiting on it is the
    // one expressible dependency cycle (e.g. a command waiting on its
    // own out-event). Rejected eagerly, on the enqueue thread.
    Event unattached;
    try {
        queueOneLaunch(ctx, queue, kernel, {unattached});
        FAIL() << "unattached wait-list entry must be rejected";
    } catch (const OpenClError &e) {
        EXPECT_EQ(e.status(), ClStatus::InvalidEventWaitList);
    }
    // Self-wait: the out-event is unattached at enqueue time.
    Event self;
    sim::NDRange nd;
    nd.globalSize[0] = 64;
    nd.localSize[0] = 16;
    EXPECT_THROW(queue.enqueueNDRange(kernel, nd, {self}, &self),
                 OpenClError);
    queue.finish();
}

TEST(Queue, CompletionFollowsEnqueueOrder)
{
    // Out-of-order queue, several independent launches: execution may
    // interleave on any worker, but commands retire — complete their
    // events, fire callbacks — in enqueue order.
    Context ctx;
    Program program = ctx.buildProgram(kTwoKernels);
    KernelHandle kernel = program.createKernel("b");
    constexpr int kLaunches = 8;
    std::vector<Buffer> buffers;
    for (int i = 0; i < kLaunches; ++i)
        buffers.push_back(ctx.createBuffer(4096));
    CommandQueue queue(ctx, {.outOfOrder = true, .workers = 4});
    std::mutex order_m;
    std::vector<int> order;
    std::vector<Event> events;
    for (int i = 0; i < kLaunches; ++i) {
        kernel.setArg(0, buffers[static_cast<size_t>(i)]);
        kernel.setArg(1, int32_t{i});
        Event event = queueOneLaunch(ctx, queue, kernel);
        event.onComplete([&order_m, &order, i] {
            std::lock_guard<std::mutex> lock(order_m);
            order.push_back(i);
        });
        events.push_back(event);
    }
    queue.finish();
    std::vector<int> expected;
    for (int i = 0; i < kLaunches; ++i)
        expected.push_back(i);
    EXPECT_EQ(order, expected) << "retirement must follow enqueue order";
    for (const Event &e : events) {
        EXPECT_TRUE(e.isComplete());
        EXPECT_EQ(e.status(), CommandStatus::Complete);
    }
}

TEST(Queue, FinishImpliesEventsCompleteAndCallbacksFired)
{
    // finish() must not return while a worker is still mid-retirement:
    // once it returns, every event is Complete and every callback has
    // fired, and destroying the queue immediately afterwards (as each
    // round of this loop does) is safe. The TSan/ASan CI legs turn any
    // residual drain race in this loop into a hard failure.
    Context ctx;
    Program program = ctx.buildProgram(kTwoKernels);
    KernelHandle kernel = program.createKernel("a");
    constexpr int kLaunches = 4;
    std::vector<Buffer> buffers;
    for (int i = 0; i < kLaunches; ++i)
        buffers.push_back(ctx.createBuffer(4096));
    for (int round = 0; round < 50; ++round) {
        CommandQueue queue(ctx, {.outOfOrder = true, .workers = 4});
        std::atomic<int> fired{0};
        std::vector<Event> events;
        for (int i = 0; i < kLaunches; ++i) {
            kernel.setArg(0, buffers[static_cast<size_t>(i)]);
            Event event = queueOneLaunch(ctx, queue, kernel);
            event.onComplete([&fired] { ++fired; });
            events.push_back(event);
        }
        queue.finish();
        ASSERT_EQ(fired.load(), kLaunches)
            << "finish() returned before every callback fired";
        for (const Event &e : events)
            ASSERT_TRUE(e.isComplete())
                << "finish() returned with an incomplete event";
    }
}

TEST(Queue, ProfilingTimestampsMonotonicAndTiled)
{
    // Per-queue device timeline: commands tile it without overlap, in
    // enqueue order, regardless of which worker executed them.
    Context ctx;
    Program program = ctx.buildProgram(kTwoKernels);
    KernelHandle kernel = program.createKernel("a");
    constexpr int kLaunches = 4;
    std::vector<Buffer> buffers;
    for (int i = 0; i < kLaunches; ++i)
        buffers.push_back(ctx.createBuffer(4096));
    CommandQueue queue(ctx, {.outOfOrder = true, .workers = 2});
    std::vector<Event> events;
    for (int i = 0; i < kLaunches; ++i) {
        kernel.setArg(0, buffers[static_cast<size_t>(i)]);
        events.push_back(queueOneLaunch(ctx, queue, kernel));
    }
    queue.finish();
    uint64_t prev_end = 0;
    for (const Event &e : events) {
        ASSERT_TRUE(e.valid());
        EXPECT_EQ(e.queuedNs(), prev_end)
            << "commands tile the per-queue timeline";
        EXPECT_LE(e.queuedNs(), e.submitNs());
        EXPECT_LE(e.submitNs(), e.startNs());
        EXPECT_LT(e.startNs(), e.endNs());
        prev_end = e.endNs();
    }
}

TEST(Queue, ProfilingUnavailableBeforeCompletion)
{
    // CL_PROFILING_INFO_NOT_AVAILABLE until the command retires: gate
    // a launch behind a user event and probe while it is stuck Queued.
    Context ctx;
    Program program = ctx.buildProgram(kTwoKernels);
    KernelHandle kernel = program.createKernel("a");
    kernel.setArg(0, ctx.createBuffer(4096));
    CommandQueue queue(ctx, {.outOfOrder = true});
    Event gate = ctx.createUserEvent();
    Event event = queueOneLaunch(ctx, queue, kernel, {gate});
    EXPECT_FALSE(event.isComplete());
    EXPECT_FALSE(event.valid());
    try {
        event.profilingInfo(ClProfilingInfo::CommandStart);
        FAIL() << "profiling an unfinished command must throw";
    } catch (const OpenClError &e) {
        EXPECT_EQ(e.status(), ClStatus::ProfilingInfoNotAvailable);
    }
    gate.setComplete();
    event.wait();
    EXPECT_TRUE(event.valid());
    queue.finish();
}

TEST(Queue, UserEventGatesAndCompletesOnce)
{
    Context ctx;
    Program program = ctx.buildProgram(kTwoKernels);
    KernelHandle kernel = program.createKernel("b");
    Buffer buffer = ctx.createBuffer(4096);
    kernel.setArg(0, buffer);
    kernel.setArg(1, int32_t{7});
    CommandQueue queue(ctx, {.outOfOrder = true});
    Event gate = ctx.createUserEvent();
    EXPECT_EQ(gate.status(), CommandStatus::Submitted);
    Event event = queueOneLaunch(ctx, queue, kernel, {gate});
    EXPECT_FALSE(event.isComplete())
        << "command must not run before its user-event gate";
    gate.setComplete();
    event.wait();
    std::vector<int32_t> out(64);
    ctx.readBuffer(buffer, out.data(), 64 * 4);
    EXPECT_EQ(out[0], 7);
    // Completing twice is CL_INVALID_OPERATION; completing a queue
    // event from the host is CL_INVALID_EVENT.
    try {
        gate.setComplete();
        FAIL() << "double setComplete must throw";
    } catch (const OpenClError &e) {
        EXPECT_EQ(e.status(), ClStatus::InvalidOperation);
    }
    try {
        event.setComplete();
        FAIL() << "setComplete on a queue event must throw";
    } catch (const OpenClError &e) {
        EXPECT_EQ(e.status(), ClStatus::InvalidEvent);
    }
    queue.finish();
}

TEST(Queue, InOrderQueueChainsImplicitly)
{
    // An in-order queue needs no wait lists: each command implicitly
    // depends on its predecessor, so write -> launch -> read with
    // shared buffers is well ordered even with many workers.
    Context ctx;
    Program program = ctx.buildProgram(kTwoKernels);
    KernelHandle kernel = program.createKernel("b");
    Buffer buffer = ctx.createBuffer(64 * 4);
    kernel.setArg(0, buffer);
    kernel.setArg(1, int32_t{3});
    CommandQueue queue(ctx, {.workers = 4});
    std::vector<int32_t> zeros(64, 0), out(64, -1);
    sim::NDRange nd;
    nd.globalSize[0] = 64;
    nd.localSize[0] = 16;
    queue.enqueueWrite(buffer, zeros.data(), 64 * 4);
    queue.enqueueNDRange(kernel, nd);
    queue.enqueueRead(buffer, out.data(), 64 * 4);
    queue.finish();
    EXPECT_EQ(out, std::vector<int32_t>(64, 3));
}

TEST(Queue, StrictEnvParsing)
{
    // SOFF_QUEUE_WORKERS is parsed when the first queue creates the
    // context's engine; SOFF_TEMPLATE_POOL at every cacheable enqueue.
    // Malformed values are CL_INVALID_VALUE, never silently 0.
    for (const char *bad : {"abc", "0", "-2", "3x", " 4", "99999"}) {
        setenv("SOFF_QUEUE_WORKERS", bad, 1);
        Context ctx;
        try {
            CommandQueue queue(ctx);
            FAIL() << "SOFF_QUEUE_WORKERS='" << bad << "' must throw";
        } catch (const OpenClError &e) {
            EXPECT_EQ(e.status(), ClStatus::InvalidValue) << bad;
        }
    }
    unsetenv("SOFF_QUEUE_WORKERS");
    for (const char *bad : {"abc", "0", "-1", "2x", "9999"}) {
        setenv("SOFF_TEMPLATE_POOL", bad, 1);
        Context ctx;
        Program program = ctx.buildProgram(kTwoKernels);
        KernelHandle kernel = program.createKernel("a");
        kernel.setArg(0, ctx.createBuffer(4096));
        sim::NDRange nd;
        nd.globalSize[0] = 64;
        nd.localSize[0] = 16;
        try {
            ctx.enqueueNDRange(kernel, nd);
            FAIL() << "SOFF_TEMPLATE_POOL='" << bad << "' must throw";
        } catch (const OpenClError &e) {
            EXPECT_EQ(e.status(), ClStatus::InvalidValue) << bad;
        }
    }
    unsetenv("SOFF_TEMPLATE_POOL");
}

// --- Circuit-template pool -----------------------------------------------

TEST(TemplatePool, SerialLaunchLoopCounters)
{
    Context ctx;
    Program program = ctx.buildProgram(kTwoKernels);
    KernelHandle kernel = program.createKernel("a");
    kernel.setArg(0, ctx.createBuffer(4096));
    sim::NDRange nd;
    nd.globalSize[0] = 64;
    nd.localSize[0] = 16;
    constexpr uint64_t kLaunches = 5;
    for (uint64_t i = 0; i < kLaunches; ++i)
        ctx.enqueueNDRange(kernel, nd);
    TemplatePoolStats stats = program.templatePoolStats();
    EXPECT_EQ(stats.misses, 1u) << "first launch builds the template";
    EXPECT_EQ(stats.hits, kLaunches - 1) << "later launches rearm it";
    EXPECT_EQ(stats.steals, 0u) << "serial: never checked out twice";
    EXPECT_EQ(stats.returns, kLaunches);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_EQ(program.circuitCacheSize(), 1u);
}

TEST(TemplatePool, ConcurrentCheckoutInvariants)
{
    // Many concurrent launches of one kernel against a capacity-1
    // pool: checkouts that find the key empty are steals (a duplicate
    // template is built), returns beyond capacity evict. Exact counts
    // depend on interleaving; the accounting invariants do not.
    setenv("SOFF_TEMPLATE_POOL", "1", 1);
    Context ctx;
    Program program = ctx.buildProgram(kTwoKernels);
    KernelHandle kernel = program.createKernel("b");
    constexpr uint64_t kLaunches = 12;
    std::vector<Buffer> buffers;
    for (uint64_t i = 0; i < kLaunches; ++i)
        buffers.push_back(ctx.createBuffer(4096));
    CommandQueue queue(ctx, {.outOfOrder = true, .workers = 4});
    sim::NDRange nd;
    nd.globalSize[0] = 64;
    nd.localSize[0] = 16;
    for (uint64_t i = 0; i < kLaunches; ++i) {
        kernel.setArg(0, buffers[i]);
        kernel.setArg(1, int32_t{1});
        queue.enqueueNDRange(kernel, nd);
    }
    queue.finish();
    TemplatePoolStats stats = program.templatePoolStats();
    EXPECT_EQ(stats.hits + stats.misses + stats.steals, kLaunches)
        << "every launch checks the pool exactly once";
    EXPECT_EQ(stats.misses, 1u) << "the key is built once";
    EXPECT_EQ(stats.returns, kLaunches) << "every launch succeeded";
    EXPECT_EQ(stats.returns - stats.hits - stats.evictions,
              program.circuitCacheSize())
        << "parked = returned - checked out (hits) - evicted";
    EXPECT_LE(program.circuitCacheSize(), 1u) << "capacity enforced";
    unsetenv("SOFF_TEMPLATE_POOL");
}

TEST(TemplatePool, CapacityBoundsParkedTemplates)
{
    // Capacity 2 with sequential launches still parks at most... one
    // template (checkout/return pairs never overlap serially); the
    // knob only matters under concurrency, but it must parse and the
    // pool must never exceed it.
    setenv("SOFF_TEMPLATE_POOL", "2", 1);
    Context ctx;
    Program program = ctx.buildProgram(kTwoKernels);
    KernelHandle kernel = program.createKernel("a");
    kernel.setArg(0, ctx.createBuffer(4096));
    sim::NDRange nd;
    nd.globalSize[0] = 64;
    nd.localSize[0] = 16;
    for (int i = 0; i < 4; ++i)
        ctx.enqueueNDRange(kernel, nd);
    EXPECT_LE(program.circuitCacheSize(), 2u);
    unsetenv("SOFF_TEMPLATE_POOL");
}

// --- Compatibility rules (Table II machinery) ---------------------------

TEST(Compat, OutcomeCodesMatchTableII)
{
    using baseline::Outcome;
    EXPECT_STREQ(baseline::outcomeCode(Outcome::OK), "");
    EXPECT_STREQ(baseline::outcomeCode(Outcome::CompileError), "CE");
    EXPECT_STREQ(baseline::outcomeCode(Outcome::IncorrectAnswer), "IA");
    EXPECT_STREQ(baseline::outcomeCode(Outcome::RuntimeError), "RE");
    EXPECT_STREQ(baseline::outcomeCode(Outcome::Hang), "H");
    EXPECT_STREQ(baseline::outcomeCode(Outcome::InsufficientResources),
                 "IR");
}

TEST(Compat, XilinxRejectsAtomicsIndirectAndLocalInBranch)
{
    analysis::KernelFeatures f;
    EXPECT_EQ(baseline::xilinxLikeOutcome(f), baseline::Outcome::OK);
    f.usesAtomics = true;
    EXPECT_EQ(baseline::xilinxLikeOutcome(f),
              baseline::Outcome::CompileError);
    f = {};
    f.usesIndirectPointers = true;
    EXPECT_EQ(baseline::xilinxLikeOutcome(f),
              baseline::Outcome::CompileError);
    f = {};
    f.localAccessInBranch = true;
    EXPECT_EQ(baseline::xilinxLikeOutcome(f),
              baseline::Outcome::CompileError);
}

TEST(Compat, IntelFailsOnAtomicBarrierLocalCombination)
{
    analysis::KernelFeatures f;
    f.usesAtomics = true;
    f.usesBarrier = true;
    f.usesLocalMemory = true;
    EXPECT_NE(baseline::intelLikeOutcome(f), baseline::Outcome::OK);
    analysis::KernelFeatures plain;
    EXPECT_EQ(baseline::intelLikeOutcome(plain), baseline::Outcome::OK);
}

// --- Static-pipeline baseline machinery ---------------------------------

TEST(StaticPipeline, RecurrenceBoundII)
{
    // A float accumulation loop: the baseline pays the FADD latency
    // per iteration; an integer loop does not.
    Context ctx;
    auto program = ctx.buildProgram(R"CL(
__kernel void facc(__global float* A, int n) {
  float acc = 0.0f;
  for (int k = 0; k < n; k++) acc += A[k];
  A[get_global_id(0)] = acc;
}
__kernel void iacc(__global int* A, int n) {
  int acc = 0;
  for (int k = 0; k < n; k++) acc += A[k];
  A[get_global_id(0)] = acc;
}
)CL");
    auto run = [&](const char *name) {
        KernelHandle kernel = program.createKernel(name);
        Buffer buffer = ctx.createBuffer(4096);
        kernel.setArg(0, buffer);
        kernel.setArg(1, int32_t{64});
        sim::LaunchContext launch;
        launch.ndrange.globalSize[0] = 64;
        launch.ndrange.localSize[0] = 16;
        launch.args = kernel.argValues();
        auto cfg = baseline::StaticPipelineConfig::intelLike(1);
        return baseline::runStaticPipeline(
            *kernel.compiled().kernel, launch,
            ctx.device().globalMemory(), cfg);
    };
    auto fp = run("facc");
    auto ip = run("iacc");
    EXPECT_GT(fp.cycles, ip.cycles)
        << "loop-carried FADD recurrence must cost the baseline";
}

} // namespace
} // namespace soff::rt
