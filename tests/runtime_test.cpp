/** @file Unit tests for the runtime: device allocator, buffer DMA,
 *  argument validation, partial reconfiguration, baselines, and the
 *  Table II compatibility rules. */
#include <array>

#include <gtest/gtest.h>

#include "baseline/compat.hpp"
#include "baseline/static_pipeline.hpp"
#include "runtime/runtime.hpp"
#include "support/error.hpp"

namespace soff::rt
{
namespace
{

TEST(Device, AllocatorReusesFreedBlocks)
{
    Device device(datapath::FpgaSpec::arria10(), 1 << 20);
    uint64_t a = device.allocate(1000);
    uint64_t b = device.allocate(2000);
    EXPECT_NE(a, b);
    EXPECT_NE(a, 0u);
    device.release(a);
    uint64_t c = device.allocate(500);
    EXPECT_EQ(c, a) << "first-fit reuse of the freed block";
    device.release(b);
    device.release(c);
    // Coalesced: a large allocation fits again.
    uint64_t d = device.allocate((1 << 20) - 4096);
    EXPECT_NE(d, 0u);
}

TEST(Device, ExhaustionThrows)
{
    Device device(datapath::FpgaSpec::arria10(), 1 << 12);
    EXPECT_THROW(device.allocate(1 << 20), RuntimeError);
}

TEST(Device, AllocationsAreLineAligned)
{
    Device device(datapath::FpgaSpec::arria10(), 1 << 20);
    for (int i = 0; i < 5; ++i) {
        uint64_t addr = device.allocate(i * 7 + 3);
        EXPECT_EQ(addr % 64, 0u) << "64-byte alignment (cache lines)";
    }
}

TEST(Context, BufferRoundTrip)
{
    Context ctx;
    std::vector<int32_t> data = {1, 2, 3, 4, 5};
    Buffer buffer = ctx.createBuffer(data.size() * 4);
    ctx.writeBuffer(buffer, data.data(), data.size() * 4);
    std::vector<int32_t> out(data.size());
    ctx.readBuffer(buffer, out.data(), out.size() * 4);
    EXPECT_EQ(out, data);
    ctx.releaseBuffer(buffer);
    EXPECT_FALSE(buffer.valid());
}

const char *kTwoKernels = R"CL(
__kernel void a(__global int* X) { X[get_global_id(0)] = 1; }
__kernel void b(__global int* X, int v) { X[get_global_id(0)] = v; }
)CL";

TEST(Program, KernelLookup)
{
    Context ctx;
    Program program = ctx.buildProgram(kTwoKernels);
    EXPECT_NO_THROW(program.createKernel("a"));
    EXPECT_NO_THROW(program.createKernel("b"));
    EXPECT_THROW(program.createKernel("missing"), RuntimeError);
}

TEST(KernelHandle, ArgumentValidation)
{
    Context ctx;
    Program program = ctx.buildProgram(kTwoKernels);
    KernelHandle kernel = program.createKernel("b");
    Buffer buffer = ctx.createBuffer(256);
    EXPECT_THROW(kernel.setArg(0, int32_t{1}), RuntimeError)
        << "buffer arg given a scalar";
    EXPECT_THROW(kernel.setArg(1, buffer), RuntimeError)
        << "scalar arg given a buffer";
    EXPECT_THROW(kernel.setArg(2, int32_t{1}), RuntimeError)
        << "index out of range";
    kernel.setArg(0, buffer);
    sim::NDRange nd;
    nd.globalSize[0] = 64;
    nd.localSize[0] = 64;
    EXPECT_THROW(ctx.enqueueNDRange(kernel, nd), RuntimeError)
        << "arg 1 never set";
    kernel.setArg(1, int32_t{9});
    EXPECT_NO_THROW(ctx.enqueueNDRange(kernel, nd));
}

TEST(Context, RejectsIndivisibleNDRange)
{
    Context ctx;
    Program program = ctx.buildProgram(kTwoKernels);
    KernelHandle kernel = program.createKernel("a");
    kernel.setArg(0, ctx.createBuffer(4096));
    sim::NDRange nd;
    nd.globalSize[0] = 100;
    nd.localSize[0] = 64; // 100 % 64 != 0
    EXPECT_THROW(ctx.enqueueNDRange(kernel, nd), RuntimeError);
}

TEST(Context, ReferenceAndSimulateAgree)
{
    std::vector<int32_t> sim_out(128), ref_out(128);
    for (int mode = 0; mode < 2; ++mode) {
        Context ctx;
        Program program = ctx.buildProgram(kTwoKernels);
        KernelHandle kernel = program.createKernel("b");
        Buffer buffer = ctx.createBuffer(128 * 4);
        kernel.setArg(0, buffer);
        kernel.setArg(1, int32_t{41});
        sim::NDRange nd;
        nd.globalSize[0] = 128;
        nd.localSize[0] = 32;
        ctx.enqueueNDRange(kernel, nd,
                           mode == 0 ? ExecutionMode::Simulate
                                     : ExecutionMode::Reference);
        ctx.readBuffer(buffer, (mode == 0 ? sim_out : ref_out).data(),
                       128 * 4);
    }
    EXPECT_EQ(sim_out, ref_out);
}

// --- Circuit-template memoization ---------------------------------------

/** Barrier + local memory + loop: exercises every relaunch reset path
 *  (barrier buckets, local-memory slots, caches, loop gates). */
const char *kCacheKernel = R"CL(
__kernel void smooth(__global float* A, __global float* B, int iters) {
  __local float tile[16];
  int l = get_local_id(0);
  int g = get_global_id(0);
  tile[l] = A[g];
  for (int t = 0; t < iters; t++) {
    barrier(CLK_LOCAL_MEM_FENCE);
    float left = tile[l == 0 ? 0 : l - 1];
    float right = tile[l == 15 ? 15 : l + 1];
    barrier(CLK_LOCAL_MEM_FENCE);
    tile[l] = 0.5f * tile[l] + 0.25f * (left + right);
  }
  B[g] = tile[l];
}
)CL";

struct CacheLaunch
{
    uint64_t cycles = 0;
    std::vector<float> out;
    std::shared_ptr<const sim::StatsReport> stats;
};

/** Runs `launches` in one Context (later ones hit the circuit cache)
 *  and returns the outcome of the last launch. */
CacheLaunch
runLaunchLoop(const std::vector<std::pair<uint64_t, int32_t>> &launches)
{
    Context ctx;
    Program program = ctx.buildProgram(kCacheKernel);
    KernelHandle kernel = program.createKernel("smooth");
    Buffer a = ctx.createBuffer(256 * 4);
    Buffer b = ctx.createBuffer(256 * 4);
    kernel.setArg(0, a);
    kernel.setArg(1, b);
    CacheLaunch last;
    for (const auto &[n, iters] : launches) {
        std::vector<float> in(n);
        for (uint64_t i = 0; i < n; ++i)
            in[i] = static_cast<float>(i % 13) * 0.5f +
                    static_cast<float>(iters);
        ctx.writeBuffer(a, in.data(), n * 4);
        kernel.setArg(2, iters);
        sim::NDRange nd;
        nd.globalSize[0] = n;
        nd.localSize[0] = 16;
        Event event;
        LaunchResult r = ctx.enqueueNDRange(
            kernel, nd, ExecutionMode::Simulate, {}, 0, &event);
        last.cycles = r.cycles;
        last.out.assign(n, 0.0f);
        ctx.readBuffer(b, last.out.data(), n * 4);
        last.stats = soffGetKernelStats(event);
    }
    EXPECT_EQ(program.circuitCacheSize(), 1u)
        << "one circuit template parked per (plan, instances, platform)";
    return last;
}

TEST(CircuitCache, RelaunchMatchesColdBuild)
{
    // Warm path: three launches with different NDRanges and arguments,
    // the later ones rearming the memoized circuit. Cold path: a fresh
    // context running only the final launch. Cycle counts, results,
    // and the full architectural StatsReport must be bit-identical.
    CacheLaunch warm = runLaunchLoop({{64, 1}, {128, 3}, {96, 2}});
    CacheLaunch cold = runLaunchLoop({{96, 2}});
    EXPECT_EQ(warm.cycles, cold.cycles);
    EXPECT_EQ(warm.out, cold.out);
    ASSERT_NE(warm.stats, nullptr);
    ASSERT_NE(cold.stats, nullptr);
    EXPECT_EQ(sim::diffStatsReports(*warm.stats, *cold.stats), "")
        << "relaunch must reproduce the cold build's counters exactly";
}

TEST(CircuitCache, CacheDiesWithProgram)
{
    // Regression: the cache entry holds raw pointers into the plan's
    // IR, so it must live in the Program, not the Context. Rebuilding
    // the same source yields a fresh plan that may reuse the old
    // plan's address — a context-scoped cache would serve the stale
    // circuit (use-after-free). Two build/launch rounds in one context
    // must behave exactly like two cold builds.
    Context ctx;
    sim::NDRange nd;
    nd.globalSize[0] = 64;
    nd.localSize[0] = 16;
    std::array<uint64_t, 2> cycles{};
    for (int round = 0; round < 2; ++round) {
        Program program = ctx.buildProgram(kTwoKernels);
        KernelHandle kernel = program.createKernel("a");
        kernel.setArg(0, ctx.createBuffer(4096));
        cycles[static_cast<size_t>(round)] =
            ctx.enqueueNDRange(kernel, nd).cycles;
        EXPECT_EQ(program.circuitCacheSize(), 1u);
    } // ~Program drops the parked circuit with the plan it references.
    EXPECT_EQ(cycles[0], cycles[1]);
}

TEST(CircuitCache, EnvKnobDisablesCaching)
{
    setenv("SOFF_CIRCUIT_CACHE", "0", 1);
    Context ctx;
    Program program = ctx.buildProgram(kTwoKernels);
    KernelHandle kernel = program.createKernel("a");
    kernel.setArg(0, ctx.createBuffer(4096));
    sim::NDRange nd;
    nd.globalSize[0] = 64;
    nd.localSize[0] = 16;
    ctx.enqueueNDRange(kernel, nd);
    ctx.enqueueNDRange(kernel, nd);
    EXPECT_EQ(program.circuitCacheSize(), 0u);
    unsetenv("SOFF_CIRCUIT_CACHE");
    ctx.enqueueNDRange(kernel, nd);
    EXPECT_EQ(program.circuitCacheSize(), 1u);
}

// --- Compatibility rules (Table II machinery) ---------------------------

TEST(Compat, OutcomeCodesMatchTableII)
{
    using baseline::Outcome;
    EXPECT_STREQ(baseline::outcomeCode(Outcome::OK), "");
    EXPECT_STREQ(baseline::outcomeCode(Outcome::CompileError), "CE");
    EXPECT_STREQ(baseline::outcomeCode(Outcome::IncorrectAnswer), "IA");
    EXPECT_STREQ(baseline::outcomeCode(Outcome::RuntimeError), "RE");
    EXPECT_STREQ(baseline::outcomeCode(Outcome::Hang), "H");
    EXPECT_STREQ(baseline::outcomeCode(Outcome::InsufficientResources),
                 "IR");
}

TEST(Compat, XilinxRejectsAtomicsIndirectAndLocalInBranch)
{
    analysis::KernelFeatures f;
    EXPECT_EQ(baseline::xilinxLikeOutcome(f), baseline::Outcome::OK);
    f.usesAtomics = true;
    EXPECT_EQ(baseline::xilinxLikeOutcome(f),
              baseline::Outcome::CompileError);
    f = {};
    f.usesIndirectPointers = true;
    EXPECT_EQ(baseline::xilinxLikeOutcome(f),
              baseline::Outcome::CompileError);
    f = {};
    f.localAccessInBranch = true;
    EXPECT_EQ(baseline::xilinxLikeOutcome(f),
              baseline::Outcome::CompileError);
}

TEST(Compat, IntelFailsOnAtomicBarrierLocalCombination)
{
    analysis::KernelFeatures f;
    f.usesAtomics = true;
    f.usesBarrier = true;
    f.usesLocalMemory = true;
    EXPECT_NE(baseline::intelLikeOutcome(f), baseline::Outcome::OK);
    analysis::KernelFeatures plain;
    EXPECT_EQ(baseline::intelLikeOutcome(plain), baseline::Outcome::OK);
}

// --- Static-pipeline baseline machinery ---------------------------------

TEST(StaticPipeline, RecurrenceBoundII)
{
    // A float accumulation loop: the baseline pays the FADD latency
    // per iteration; an integer loop does not.
    Context ctx;
    auto program = ctx.buildProgram(R"CL(
__kernel void facc(__global float* A, int n) {
  float acc = 0.0f;
  for (int k = 0; k < n; k++) acc += A[k];
  A[get_global_id(0)] = acc;
}
__kernel void iacc(__global int* A, int n) {
  int acc = 0;
  for (int k = 0; k < n; k++) acc += A[k];
  A[get_global_id(0)] = acc;
}
)CL");
    auto run = [&](const char *name) {
        KernelHandle kernel = program.createKernel(name);
        Buffer buffer = ctx.createBuffer(4096);
        kernel.setArg(0, buffer);
        kernel.setArg(1, int32_t{64});
        sim::LaunchContext launch;
        launch.ndrange.globalSize[0] = 64;
        launch.ndrange.localSize[0] = 16;
        launch.args = kernel.argValues();
        auto cfg = baseline::StaticPipelineConfig::intelLike(1);
        return baseline::runStaticPipeline(
            *kernel.compiled().kernel, launch,
            ctx.device().globalMemory(), cfg);
    };
    auto fp = run("facc");
    auto ip = run("iacc");
    EXPECT_GT(fp.cycles, ip.cycles)
        << "loop-carried FADD recurrence must cost the baseline";
}

} // namespace
} // namespace soff::rt
