/** @file Unit tests for the analysis module: CFG, dominators, liveness,
 *  pointer analysis, control tree, uniformity, feature scan. */
#include <gtest/gtest.h>

#include "analysis/cfg.hpp"
#include "analysis/control_tree.hpp"
#include "analysis/dominators.hpp"
#include "analysis/features.hpp"
#include "analysis/liveness.hpp"
#include "analysis/pointer_analysis.hpp"
#include "analysis/uniformity.hpp"
#include "frontend/irgen.hpp"
#include "ir/printer.hpp"
#include "transform/passes.hpp"

namespace soff::analysis
{
namespace
{

std::unique_ptr<ir::Module>
lower(const std::string &src)
{
    auto module = fe::compileToIR(src, "test");
    transform::runStandardPipeline(*module);
    return module;
}

TEST(Cfg, RpoStartsAtEntry)
{
    auto m = lower(
        "__kernel void f(__global int* A, int n) {\n"
        "  int i = get_global_id(0);\n"
        "  if (i < n) A[i] = 0; else A[i] = 1;\n"
        "}");
    CfgInfo cfg(*m->kernel(0));
    ASSERT_FALSE(cfg.rpo().empty());
    EXPECT_EQ(cfg.rpo()[0], m->kernel(0)->entry());
    EXPECT_TRUE(cfg.preds(m->kernel(0)->entry()).empty());
}

TEST(Dominators, DiamondFrontier)
{
    auto m = lower(
        "__kernel void f(__global int* A, int n) {\n"
        "  int i = get_global_id(0);\n"
        "  int v;\n"
        "  if (i < n) v = 1; else v = 2;\n"
        "  A[i] = v;\n"
        "}");
    const ir::Kernel &k = *m->kernel(0);
    CfgInfo cfg(k);
    DomTree dom(cfg);
    const ir::BasicBlock *entry = k.entry();
    for (const ir::BasicBlock *bb : cfg.rpo())
        EXPECT_TRUE(dom.dominates(entry, bb));
    // The two branch arms have the join in their dominance frontier.
    auto succs = entry->successors();
    if (succs.size() == 2 && succs[0] != succs[1]) {
        auto &f0 = dom.frontier(succs[0]);
        auto &f1 = dom.frontier(succs[1]);
        EXPECT_EQ(f0, f1);
        EXPECT_EQ(f0.size(), 1u);
    }
}

TEST(Liveness, ValuesFlowAcrossLoop)
{
    auto m = lower(
        "__kernel void f(__global float* A, int n) {\n"
        "  int i = get_global_id(0);\n"
        "  float acc = 0.0f;\n"
        "  for (int k = 0; k < n; k++) acc += A[k];\n"
        "  A[i] = acc;\n"
        "}");
    const ir::Kernel &k = *m->kernel(0);
    CfgInfo cfg(k);
    Liveness live(cfg);
    // The accumulator phi is live into the loop header.
    bool found_phi_live = false;
    for (const ir::BasicBlock *bb : cfg.rpo()) {
        for (const ir::Instruction *phi : bb->phis()) {
            if (live.liveIn(bb).count(phi))
                found_phi_live = true;
        }
    }
    EXPECT_TRUE(found_phi_live);
}

TEST(Liveness, OrderedSetsAreDeterministic)
{
    auto m = lower(
        "__kernel void f(__global int* A) {\n"
        "  int i = get_global_id(0);\n"
        "  int a = A[i] + 1, b = A[i] * 2;\n"
        "  if (i > 0) A[i] = a + b;\n"
        "}");
    const ir::Kernel &k = *m->kernel(0);
    CfgInfo cfg(k);
    Liveness live(cfg);
    for (const ir::BasicBlock *bb : cfg.rpo()) {
        auto v1 = live.orderedLiveIn(bb);
        auto v2 = live.orderedLiveIn(bb);
        EXPECT_EQ(v1, v2);
        for (size_t i = 1; i < v1.size(); ++i)
            EXPECT_LT(v1[i - 1]->id(), v1[i]->id());
    }
}

TEST(PointerAnalysis, SeparatesBuffers)
{
    auto m = lower(
        "__kernel void f(__global float* A, __global float* B) {\n"
        "  int i = get_global_id(0);\n"
        "  A[i] = B[i];\n"
        "}");
    const ir::Kernel &k = *m->kernel(0);
    PointerAnalysis pa(k);
    const ir::Instruction *load = nullptr;
    const ir::Instruction *store = nullptr;
    for (const auto &bb : k.blocks()) {
        for (const auto &inst : bb->instructions()) {
            if (inst->op() == ir::Opcode::Load)
                load = inst.get();
            if (inst->op() == ir::Opcode::Store)
                store = inst.get();
        }
    }
    ASSERT_NE(load, nullptr);
    ASSERT_NE(store, nullptr);
    EXPECT_EQ(pa.uniqueBuffer(load)->name(), "B");
    EXPECT_EQ(pa.uniqueBuffer(store)->name(), "A");
    EXPECT_FALSE(pa.mayAlias(load, store));
}

TEST(PointerAnalysis, SameBufferAliases)
{
    auto m = lower(
        "__kernel void f(__global float* A, int C) {\n"
        "  int y = get_global_id(0);\n"
        "  float t = A[y];\n"
        "  A[y + C] = t;\n"
        "}");
    const ir::Kernel &k = *m->kernel(0);
    PointerAnalysis pa(k);
    const ir::Instruction *load = nullptr;
    const ir::Instruction *store = nullptr;
    for (const auto &bb : k.blocks()) {
        for (const auto &inst : bb->instructions()) {
            if (inst->op() == ir::Opcode::Load)
                load = inst.get();
            if (inst->op() == ir::Opcode::Store)
                store = inst.get();
        }
    }
    EXPECT_TRUE(pa.mayAlias(load, store));
}

TEST(PointerAnalysis, IndirectPointerDetected)
{
    auto m = lower(
        "__kernel void f(__global int** T, __global int* O) {\n"
        "  int i = get_global_id(0);\n"
        "  __global int* row = T[i];\n"
        "  O[i] = row[0];\n"
        "}");
    PointerAnalysis pa(*m->kernel(0));
    EXPECT_TRUE(pa.hasIndirectPointers());
}

TEST(ControlTree, StraightLineIsSingleLeafOrSequence)
{
    auto m = lower(
        "__kernel void f(__global int* A) {\n"
        "  A[get_global_id(0)] = 7;\n"
        "}");
    auto ct = buildControlTree(*m->kernel(0));
    EXPECT_EQ(ct->countLeaves(), m->kernel(0)->numBlocks());
}

TEST(ControlTree, IfThenElseRecognized)
{
    auto m = lower(
        "__kernel void f(__global int* A, int n) {\n"
        "  int i = get_global_id(0);\n"
        "  int v;\n"
        "  if (i < n) v = A[i]; else v = -A[i];\n"
        "  A[i] = v;\n"
        "}");
    auto ct = buildControlTree(*m->kernel(0));
    std::string s = ct->str();
    EXPECT_NE(s.find("IfThenElse"), std::string::npos) << s;
}

TEST(ControlTree, WhileLoopRecognized)
{
    auto m = lower(
        "__kernel void f(__global float* A, int n) {\n"
        "  float acc = 0.0f;\n"
        "  for (int k = 0; k < n; k++) acc += A[k];\n"
        "  A[get_global_id(0)] = acc;\n"
        "}");
    auto ct = buildControlTree(*m->kernel(0));
    std::string s = ct->str();
    EXPECT_TRUE(s.find("WhileLoop") != std::string::npos ||
                s.find("SelfLoop") != std::string::npos) << s;
}

TEST(ControlTree, BreakMakesNaturalLoop)
{
    auto m = lower(
        "__kernel void f(__global int* A, int n) {\n"
        "  int i = get_global_id(0);\n"
        "  int sum = 0;\n"
        "  for (int k = 0; k < n; k++) {\n"
        "    if (A[k] == 0) break;\n"
        "    sum += A[k];\n"
        "  }\n"
        "  A[i] = sum;\n"
        "}");
    auto ct = buildControlTree(*m->kernel(0));
    std::string s = ct->str();
    EXPECT_NE(s.find("NaturalLoop"), std::string::npos) << s;
}

TEST(ControlTree, PaperRunningExample)
{
    auto m = lower(
        "__kernel void f(__global float* A, __global float* B, int C,\n"
        "                int D) {\n"
        "  int x, y; float t = 0;\n"
        "  y = get_global_id(0) * D;\n"
        "  for (x = C; x < C + 100; x++) {\n"
        "    A[y] = B[x + y]; y = y + 1;\n"
        "    barrier(CLK_GLOBAL_MEM_FENCE);\n"
        "    if (y >= D)\n"
        "      t += A[y] * A[y - D];\n"
        "  }\n"
        "  B[y] = A[y]; A[y + C] = t;\n"
        "}");
    auto ct = buildControlTree(*m->kernel(0));
    std::string s = ct->str();
    // The paper's Fig. 4(c): a loop containing a sequence with an IfThen.
    EXPECT_TRUE(s.find("WhileLoop") != std::string::npos ||
                s.find("NaturalLoop") != std::string::npos) << s;
    EXPECT_NE(s.find("IfThen"), std::string::npos) << s;
}

TEST(ControlTree, CountsAllBlocksExactlyOnce)
{
    auto m = lower(
        "__kernel void f(__global int* A, int n) {\n"
        "  int i = get_global_id(0);\n"
        "  int s = 0;\n"
        "  for (int k = 0; k < n; k++) {\n"
        "    if (A[k] < 0) continue;\n"
        "    if (A[k] == 999) break;\n"
        "    s += A[k];\n"
        "  }\n"
        "  if (s > 100) s = 100;\n"
        "  A[i] = s;\n"
        "}");
    auto ct = buildControlTree(*m->kernel(0));
    EXPECT_EQ(ct->countLeaves(), m->kernel(0)->numBlocks());
}

TEST(Uniformity, ArgumentsUniformIdsNot)
{
    auto m = lower(
        "__kernel void f(__global int* A, int n) {\n"
        "  int i = get_global_id(0);\n"
        "  int d = n * 2;\n"
        "  A[i] = d + i;\n"
        "}");
    const ir::Kernel &k = *m->kernel(0);
    Uniformity u(k);
    bool saw_uniform_mul = false;
    bool saw_divergent_mul = false;
    for (const auto &bb : k.blocks()) {
        for (const auto &inst : bb->instructions()) {
            if (inst->op() == ir::Opcode::WorkItemInfo &&
                inst->wiQuery() == ir::WorkItemQuery::GlobalId) {
                EXPECT_FALSE(u.isUniform(inst.get()));
            }
            if (inst->op() == ir::Opcode::Mul) {
                // "n * 2" is uniform; the index-scaling multiply that
                // feeds A[i] depends on the global id and is not.
                if (u.isUniform(inst.get()))
                    saw_uniform_mul = true;
                else
                    saw_divergent_mul = true;
            }
        }
    }
    EXPECT_TRUE(saw_uniform_mul);
    EXPECT_TRUE(saw_divergent_mul);
}

TEST(Uniformity, UniformTripCountLoop)
{
    auto m = lower(
        "__kernel void f(__global float* A, int C) {\n"
        "  int y = get_global_id(0);\n"
        "  for (int x = C; x < C + 100; x++) A[y] += (float)x;\n"
        "}");
    const ir::Kernel &k = *m->kernel(0);
    Uniformity u(k);
    // Find the loop header's condbr.
    CfgInfo cfg(k);
    DomTree dom(cfg);
    bool checked = false;
    for (const ir::BasicBlock *bb : cfg.rpo()) {
        const ir::Instruction *term = bb->terminator();
        if (term->op() != ir::Opcode::CondBr)
            continue;
        // Header: it has a back-edge predecessor.
        for (const ir::BasicBlock *p : cfg.preds(bb)) {
            if (dom.dominates(bb, p)) {
                EXPECT_TRUE(u.uniformTripCount(bb, term->operand(0)));
                checked = true;
            }
        }
    }
    EXPECT_TRUE(checked);
}

TEST(Uniformity, DivergentTripCountLoop)
{
    auto m = lower(
        "__kernel void f(__global float* A, __global int* R) {\n"
        "  int i = get_global_id(0);\n"
        "  int n = R[i];\n"
        "  float acc = 0.0f;\n"
        "  for (int k = 0; k < n; k++) acc += A[k];\n"
        "  A[i] = acc;\n"
        "}");
    const ir::Kernel &k = *m->kernel(0);
    Uniformity u(k);
    CfgInfo cfg(k);
    DomTree dom(cfg);
    bool found_divergent = false;
    for (const ir::BasicBlock *bb : cfg.rpo()) {
        const ir::Instruction *term = bb->terminator();
        if (term->op() != ir::Opcode::CondBr)
            continue;
        for (const ir::BasicBlock *p : cfg.preds(bb)) {
            if (dom.dominates(bb, p) &&
                !u.uniformTripCount(bb, term->operand(0))) {
                found_divergent = true;
            }
        }
    }
    EXPECT_TRUE(found_divergent);
}

TEST(Features, DetectsTableIIColumns)
{
    auto m = lower(
        "__kernel void f(__global int* H, __global int* D, int n) {\n"
        "  __local int cache[16];\n"
        "  int l = get_local_id(0);\n"
        "  cache[l] = D[get_global_id(0)];\n"
        "  barrier(CLK_LOCAL_MEM_FENCE);\n"
        "  atomic_add(&H[cache[l] % n], 1);\n"
        "}");
    KernelFeatures f = scanKernelFeatures(*m->kernel(0));
    EXPECT_TRUE(f.usesLocalMemory);
    EXPECT_TRUE(f.usesBarrier);
    EXPECT_TRUE(f.usesAtomics);
    EXPECT_FALSE(f.usesIndirectPointers);
}

TEST(Features, PlainKernelHasNone)
{
    auto m = lower(
        "__kernel void f(__global float* A, __global float* B) {\n"
        "  int i = get_global_id(0);\n"
        "  B[i] = A[i];\n"
        "}");
    KernelFeatures f = scanKernelFeatures(*m->kernel(0));
    EXPECT_FALSE(f.usesLocalMemory);
    EXPECT_FALSE(f.usesBarrier);
    EXPECT_FALSE(f.usesAtomics);
    EXPECT_EQ(f.numLoops, 0);
}

} // namespace
} // namespace soff::analysis
