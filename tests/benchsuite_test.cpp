/** @file Tests for the 34-application benchmark suite: every app must
 *  compile through the SOFF frontend and verify against its host oracle
 *  on the reference engine; a representative subset (covering every
 *  Table II feature column) must also verify on the cycle-level
 *  circuit simulator. */
#include <gtest/gtest.h>

#include "benchsuite/suite.hpp"
#include "support/error.hpp"

namespace soff::benchsuite
{
namespace
{

TEST(Suite, Has34Apps)
{
    EXPECT_EQ(allApps().size(), 34u);
    int spec = 0, poly = 0;
    for (const App &app : allApps()) {
        if (app.suite == "SPEC ACCEL")
            ++spec;
        else if (app.suite == "PolyBench")
            ++poly;
    }
    EXPECT_EQ(spec, 19);
    EXPECT_EQ(poly, 15);
}

TEST(Suite, FindApp)
{
    EXPECT_NE(findApp("112.spmv"), nullptr);
    EXPECT_NE(findApp("gemm"), nullptr);
    EXPECT_EQ(findApp("nonexistent"), nullptr);
}

/** Every application verifies on the reference interpreter. */
class ReferenceRun : public ::testing::TestWithParam<std::string>
{};

TEST_P(ReferenceRun, VerifiesAgainstHostOracle)
{
    const App *app = findApp(GetParam());
    ASSERT_NE(app, nullptr);
    BenchContext ctx(Engine::Reference);
    EXPECT_TRUE(runApp(*app, ctx)) << app->name;
}

std::vector<std::string>
allAppNames()
{
    std::vector<std::string> names;
    for (const App &app : allApps())
        names.push_back(app.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, ReferenceRun, ::testing::ValuesIn(allAppNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

/** Feature-covering subset on the full circuit simulator. */
class SimRun : public ::testing::TestWithParam<std::string>
{};

TEST_P(SimRun, VerifiesOnCircuitSimulator)
{
    const App *app = findApp(GetParam());
    ASSERT_NE(app, nullptr);
    BenchContext ctx(Engine::SoffSim);
    EXPECT_TRUE(runApp(*app, ctx)) << app->name;
    EXPECT_GT(ctx.metrics().cycles, 0u);
    EXPECT_GE(ctx.metrics().instances, 1);
}

INSTANTIATE_TEST_SUITE_P(
    FeatureCover, SimRun,
    ::testing::Values(
        "103.stencil",  // plain stencil
        "112.spmv",     // irregular gathers
        "116.histo",    // atomics + local + barrier
        "117.bfs",      // global atomics, divergent loop
        "121.lavamd",   // local memory + barrier + continue
        "123.nw",       // barrier inside a loop (SWGR)
        "126.ge",       // multi-launch host loop
        "gemm",         // dense uniform loop
        "fdtd-2d"),     // multi-kernel time stepping
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

/** The three oversized applications report insufficient resources on
 *  the Arria 10 (Table II "IR" rows) but are functionally correct. */
class IrRun : public ::testing::TestWithParam<std::string>
{};

TEST_P(IrRun, ExceedsArria10Resources)
{
    const App *app = findApp(GetParam());
    ASSERT_NE(app, nullptr);
    EXPECT_TRUE(app->expectInsufficientResources);
    BenchContext ctx(Engine::SoffSim);
    EXPECT_THROW(runApp(*app, ctx), RuntimeError);
    // ... but the kernels themselves are valid OpenCL:
    BenchContext ref(Engine::Reference);
    EXPECT_TRUE(runApp(*app, ref)) << app->name;
}

INSTANTIATE_TEST_SUITE_P(
    OversizedApps, IrRun,
    ::testing::Values("122.cfd", "128.heartwall", "140.bplustree"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(Baselines, IntelLikeProducesTimingAndResults)
{
    const App *app = findApp("103.stencil");
    ASSERT_NE(app, nullptr);
    BenchContext ctx(Engine::IntelLike);
    EXPECT_TRUE(runApp(*app, ctx));
    EXPECT_GT(ctx.metrics().timeMs, 0.0);
    EXPECT_GT(ctx.metrics().cycles, 0u);
}

TEST(Baselines, XilinxLikeIsSlowerThanIntelLike)
{
    const App *app = findApp("gemm");
    ASSERT_NE(app, nullptr);
    BenchContext intel(Engine::IntelLike);
    EXPECT_TRUE(runApp(*app, intel));
    BenchContext xilinx(Engine::XilinxLike);
    EXPECT_TRUE(runApp(*app, xilinx));
    EXPECT_GT(xilinx.metrics().timeMs, intel.metrics().timeMs);
}

} // namespace
} // namespace soff::benchsuite
