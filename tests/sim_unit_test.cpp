/** @file Unit tests for the simulation kernel: channel handshake
 *  semantics, watchdog deadlock detection (failure injection), NDRange
 *  arithmetic, and barrier/glue components in isolation. */
#include <gtest/gtest.h>

#include "sim/glue.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace soff::sim
{
namespace
{

TEST(Channel, PushVisibleNextCycleOnly)
{
    Channel<int> ch(2);
    EXPECT_TRUE(ch.canPush());
    EXPECT_FALSE(ch.canPop());
    ch.push(42);
    EXPECT_FALSE(ch.canPop()) << "registered handshake: one-cycle delay";
    ch.commit();
    EXPECT_TRUE(ch.canPop());
    EXPECT_EQ(ch.pop(), 42);
    EXPECT_FALSE(ch.canPop()) << "one pop per cycle";
    ch.commit();
    EXPECT_TRUE(ch.empty());
}

TEST(Channel, PopDoesNotFreeSpaceUntilCommit)
{
    Channel<int> ch(1);
    ch.push(1);
    ch.commit();
    EXPECT_FALSE(ch.canPush()) << "capacity 1, occupied";
    ch.pop();
    EXPECT_FALSE(ch.canPush())
        << "the §IV-C stall-release delay: space frees next cycle";
    ch.commit();
    EXPECT_TRUE(ch.canPush());
}

TEST(Channel, Capacity2SustainsFullThroughput)
{
    Channel<int> ch(2);
    int produced = 0, consumed = 0;
    for (int cycle = 0; cycle < 100; ++cycle) {
        if (ch.canPop()) {
            ch.pop();
            ++consumed;
        }
        if (ch.canPush())
            ch.push(produced++);
        ch.commit();
    }
    EXPECT_GE(consumed, 98) << "~one token per cycle";
}

TEST(Channel, CommitReportsActivity)
{
    Channel<int> ch(2);
    EXPECT_FALSE(ch.commit());
    ch.push(1);
    EXPECT_TRUE(ch.commit());
    EXPECT_FALSE(ch.commit());
}

// --- Watchdog / failure injection -------------------------------------

/** A component that deliberately never consumes: the §IV-E deadlock. */
class BlackHole : public Component
{
  public:
    explicit BlackHole(Channel<int> *in)
        : Component("blackhole"), in_(in)
    {}
    void step(Cycle) override { (void)in_; /* never pops */ }

  private:
    Channel<int> *in_;
};

class Producer : public Component
{
  public:
    explicit Producer(Channel<int> *out)
        : Component("producer"), out_(out)
    {}
    void
    step(Cycle) override
    {
        if (out_->canPush())
            out_->push(1);
    }

  private:
    Channel<int> *out_;
};

TEST(Simulator, WatchdogDetectsInjectedDeadlock)
{
    Simulator sim;
    auto *ch = sim.channel<int>(2);
    sim.add<Producer>(ch);
    sim.add<BlackHole>(ch);
    auto result = sim.run(nullptr, 1000000, 500);
    EXPECT_TRUE(result.deadlock);
    EXPECT_LT(result.cycles, 10000u)
        << "stall detected within the watchdog window";
}

TEST(Simulator, CompletionBeatsWatchdog)
{
    Simulator sim;
    auto *ch = sim.channel<int>(2);
    sim.add<Producer>(ch);
    int received = 0;
    bool done = false;
    class Consumer : public Component
    {
      public:
        Consumer(Channel<int> *in, int *count, bool *done)
            : Component("consumer"), in_(in), count_(count), done_(done)
        {}
        void
        step(Cycle) override
        {
            if (in_->canPop()) {
                in_->pop();
                ++*count_;
            }
            *done_ = *count_ >= 50;
        }

      private:
        Channel<int> *in_;
        int *count_;
        bool *done_;
    };
    sim.add<Consumer>(ch, &received, &done);
    auto result = sim.run(&done, 100000, 1000);
    EXPECT_TRUE(result.completed);
    EXPECT_FALSE(result.deadlock);
}

// --- NDRange arithmetic ------------------------------------------------

TEST(NDRange, LinearizationRoundTrip1D)
{
    NDRange nd;
    nd.globalSize[0] = 96;
    nd.localSize[0] = 32;
    for (uint64_t group = 0; group < nd.totalGroups(); ++group) {
        for (uint64_t local = 0; local < nd.groupSize(); ++local) {
            uint64_t gid = nd.gidOf(group, local);
            EXPECT_EQ(nd.groupOf(gid), group);
            ir::WorkItemCtx ctx = nd.ctxOf(gid);
            EXPECT_EQ(ctx.linearLocalId(), local);
        }
    }
}

TEST(NDRange, LinearizationRoundTrip2D)
{
    NDRange nd;
    nd.workDim = 2;
    nd.globalSize[0] = 12;
    nd.globalSize[1] = 8;
    nd.localSize[0] = 4;
    nd.localSize[1] = 2;
    EXPECT_EQ(nd.totalWorkItems(), 96u);
    EXPECT_EQ(nd.totalGroups(), 12u);
    EXPECT_EQ(nd.groupSize(), 8u);
    std::set<uint64_t> seen;
    for (uint64_t group = 0; group < nd.totalGroups(); ++group) {
        for (uint64_t local = 0; local < nd.groupSize(); ++local) {
            uint64_t gid = nd.gidOf(group, local);
            EXPECT_TRUE(seen.insert(gid).second) << "gid must be unique";
            EXPECT_EQ(nd.groupOf(gid), group);
            ir::WorkItemCtx ctx = nd.ctxOf(gid);
            EXPECT_EQ(ctx.linearGroupId(), group);
            EXPECT_EQ(ctx.linearGlobalId(), gid);
        }
    }
    EXPECT_EQ(seen.size(), nd.totalWorkItems());
}

// --- Barrier unit -------------------------------------------------------

TEST(BarrierUnit, ReleasesOnlyCompleteGroups)
{
    Simulator sim;
    LaunchContext launch;
    launch.ndrange.globalSize[0] = 8;
    launch.ndrange.localSize[0] = 4;
    auto *in = sim.channel<WiToken>(16);
    auto *out = sim.channel<WiToken>(16);
    auto *barrier = sim.add<BarrierUnit>("b", in, out, &launch, 4);

    // Feed 3 of 4 work-items of group 0.
    for (uint64_t wi = 0; wi < 3; ++wi)
        in->push({wi, {}});
    for (int cycle = 0; cycle < 20; ++cycle) {
        barrier->step(static_cast<Cycle>(cycle));
        in->commit();
        out->commit();
    }
    EXPECT_FALSE(out->canPop()) << "incomplete group must not release";

    in->push({3, {}});
    int released = 0;
    for (int cycle = 20; cycle < 60; ++cycle) {
        barrier->step(static_cast<Cycle>(cycle));
        in->commit();
        if (out->commit() || out->canPop()) {
            while (out->canPop()) {
                out->pop();
                ++released;
                break; // one pop per cycle
            }
        }
    }
    EXPECT_EQ(released, 4);
}

// --- Loop gate -----------------------------------------------------------

TEST(LoopGate, EnforcesNmax)
{
    Simulator sim;
    LaunchContext launch;
    launch.ndrange.globalSize[0] = 64;
    launch.ndrange.localSize[0] = 8;
    auto *in = sim.channel<WiToken>(64);
    auto *out = sim.channel<WiToken>(64);
    auto state = std::make_shared<LoopGateState>();
    state->nmax = 3;
    auto *gate = sim.add<LoopEntrance>("gate", in, out, state, &launch);
    for (uint64_t wi = 0; wi < 10; ++wi)
        in->push({wi, {}});
    for (int cycle = 0; cycle < 40; ++cycle) {
        gate->step(static_cast<Cycle>(cycle));
        in->commit();
        out->commit();
    }
    EXPECT_EQ(state->count, 3) << "the N_max-th+1 work-item must wait";
    EXPECT_EQ(out->size(), 3u);
}

TEST(LoopGate, SwgrAdmitsOneGroupAtATime)
{
    Simulator sim;
    LaunchContext launch;
    launch.ndrange.globalSize[0] = 8;
    launch.ndrange.localSize[0] = 2; // groups of 2
    auto *in = sim.channel<WiToken>(64);
    auto *mid = sim.channel<WiToken>(64);
    auto *out = sim.channel<WiToken>(64);
    auto state = std::make_shared<LoopGateState>();
    state->swgr = true;
    auto *gate = sim.add<LoopEntrance>("gate", in, mid, state, &launch);
    auto *exit = sim.add<LoopExit>("exit", mid, out, state);
    // Work-items of groups 0 and 1 interleaved at the entrance.
    in->push({0, {}});
    in->push({1, {}});
    in->push({2, {}}); // group 1
    in->push({3, {}});
    int max_inside = 0;
    for (int cycle = 0; cycle < 60; ++cycle) {
        gate->step(static_cast<Cycle>(cycle));
        exit->step(static_cast<Cycle>(cycle));
        in->commit();
        mid->commit();
        out->commit();
        max_inside = std::max(max_inside, state->count);
    }
    EXPECT_EQ(out->size(), 4u) << "everyone eventually passes";
    EXPECT_LE(max_inside, 2) << "only one work-group inside at a time";
}

} // namespace
} // namespace soff::sim
