/** @file Unit + property tests for the datapath planner: the FIFO
 *  balancing ILP, latency model, loop caps, work-group-order strategy,
 *  cache assignment, and the resource model. */
#include <gtest/gtest.h>

#include "datapath/balance.hpp"
#include "datapath/plan.hpp"
#include "datapath/resource.hpp"
#include "frontend/irgen.hpp"
#include "support/rng.hpp"
#include "transform/passes.hpp"

namespace soff::datapath
{
namespace
{

std::unique_ptr<KernelPlan>
plan(const std::string &src, PlanConfig config = {})
{
    auto module = fe::compileToIR(src, "t");
    transform::runStandardPipeline(*module);
    // Keep the module alive with the plan for the test's duration.
    static std::vector<std::unique_ptr<ir::Module>> keep_alive;
    keep_alive.push_back(std::move(module));
    return planKernel(*keep_alive.back()->kernel(0), config);
}

// --- FIFO balancing -------------------------------------------------

TEST(Balance, DiamondGetsSlackOnShortSide)
{
    // 0 -> 1 (lat 10) -> 3 ; 0 -> 2 (lat 1) -> 3: the short side needs
    // 9 slots of slack.
    std::vector<int> lat = {0, 10, 1, 0};
    std::vector<BalanceEdge> edges = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
    auto fifo = balanceFifos(4, lat, edges);
    // Slack must appear on the 0->2 / 2->3 side, total 9.
    EXPECT_EQ(fifo[0], 0);
    EXPECT_EQ(fifo[2], 0);
    EXPECT_EQ(fifo[1] + fifo[3], 9);
}

TEST(Balance, ChainNeedsNoFifos)
{
    std::vector<int> lat = {0, 3, 5, 0};
    std::vector<BalanceEdge> edges = {{0, 1}, {1, 2}, {2, 3}};
    auto fifo = balanceFifos(4, lat, edges);
    for (int f : fifo)
        EXPECT_EQ(f, 0);
}

/** All source-sink paths must have equal total latency after balancing;
 *  checked on random DAGs (the ILP's feasibility invariant). */
TEST(Balance, PropertyAllPathsEqualOnRandomDags)
{
    SplitMix64 rng(1234);
    for (int trial = 0; trial < 50; ++trial) {
        int n = rng.nextInt(4, 10);
        std::vector<int> lat(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i)
            lat[static_cast<size_t>(i)] =
                i == 0 || i == n - 1 ? 0 : rng.nextInt(1, 20);
        std::vector<BalanceEdge> edges;
        // Random DAG on the node order; ensure connectivity via chain.
        for (int i = 0; i + 1 < n; ++i)
            edges.push_back({i, i + 1});
        for (int extra = rng.nextInt(1, 5); extra > 0; --extra) {
            int a = rng.nextInt(0, n - 2);
            int b = rng.nextInt(a + 1, n - 1);
            edges.push_back({a, b});
        }
        auto fifo = balanceFifos(n, lat, edges);
        // Longest-path equality check: depth(v) consistent over edges.
        std::vector<long> depth(static_cast<size_t>(n), -1);
        depth[0] = lat[0] + 1;
        // Relax in topological (index) order.
        for (int v = 1; v < n; ++v) {
            for (size_t e = 0; e < edges.size(); ++e) {
                if (edges[e].to != v)
                    continue;
                long d = depth[static_cast<size_t>(edges[e].from)] +
                         lat[static_cast<size_t>(v)] + 1 + fifo[e];
                if (depth[static_cast<size_t>(v)] < 0) {
                    depth[static_cast<size_t>(v)] = d;
                } else {
                    EXPECT_EQ(depth[static_cast<size_t>(v)], d)
                        << "trial " << trial << " node " << v;
                }
            }
        }
    }
}

/** The heuristic matches brute force on small diamonds. */
TEST(Balance, PropertyMinimalityOnSmallGraphs)
{
    SplitMix64 rng(99);
    for (int trial = 0; trial < 30; ++trial) {
        // Two-arm diamond with random arm latencies.
        int a = rng.nextInt(1, 12);
        int b = rng.nextInt(1, 12);
        std::vector<int> lat = {0, a, b, 0};
        std::vector<BalanceEdge> edges = {{0, 1}, {0, 2}, {1, 3},
                                          {2, 3}};
        auto fifo = balanceFifos(4, lat, edges);
        int total = fifo[0] + fifo[1] + fifo[2] + fifo[3];
        EXPECT_EQ(total, std::abs(a - b)) << "a=" << a << " b=" << b;
    }
}

// --- Latency model ---------------------------------------------------

TEST(Latency, MemoryGetsNearMaxLatency)
{
    auto p = plan(
        "__kernel void f(__global float* A) {\n"
        "  int i = get_global_id(0);\n"
        "  A[i] = A[i] * 2.0f;\n"
        "}");
    bool found_load = false;
    std::function<void(const NodePlan &)> walk =
        [&](const NodePlan &node) {
            if (node.kind == NodePlan::Kind::Region) {
                for (const auto &c : node.children)
                    walk(*c);
                return;
            }
            if (node.kind != NodePlan::Kind::BasicPipeline)
                return;
            for (const FuSpec &fu : node.pipeline->fus) {
                if (fu.kind == FuSpec::Kind::Load) {
                    EXPECT_EQ(fu.latency, 64); // §VI-A default
                    found_load = true;
                }
            }
        };
    walk(*p->root);
    EXPECT_TRUE(found_load);
}

// --- Planner invariants ----------------------------------------------

TEST(Planner, PerBufferCaches)
{
    auto p = plan(
        "__kernel void f(__global float* A, __global float* B,\n"
        "                __global float* C) {\n"
        "  int i = get_global_id(0);\n"
        "  C[i] = A[i] + B[i];\n"
        "}");
    EXPECT_EQ(p->numCaches, 3); // §V-A: one per buffer
}

TEST(Planner, AliasedBuffersShareACache)
{
    auto p = plan(
        "__kernel void f(__global float* A, __global float* B, int s) {\n"
        "  int i = get_global_id(0);\n"
        "  __global float* P = s > 0 ? A : B;\n"
        "  P[i] = 1.0f;\n"
        "}");
    // The select over A/B may touch either buffer: they must share.
    bool shared = false;
    for (const auto &buffers : p->cacheBuffers) {
        if (buffers.size() == 2)
            shared = true;
    }
    EXPECT_TRUE(shared);
}

TEST(Planner, SharedCacheAblationCollapsesToOne)
{
    PlanConfig config;
    config.perBufferCaches = false;
    auto p = plan(
        "__kernel void f(__global float* A, __global float* B) {\n"
        "  int i = get_global_id(0);\n"
        "  B[i] = A[i];\n"
        "}", config);
    EXPECT_EQ(p->numCaches, 1);
}

TEST(Planner, LoopGetsNmaxCap)
{
    auto p = plan(
        "__kernel void f(__global float* A, int n) {\n"
        "  float acc = 0.0f;\n"
        "  for (int k = 0; k < n; k++) acc += A[k];\n"
        "  A[get_global_id(0)] = acc;\n"
        "}");
    std::function<const NodePlan *(const NodePlan &)> find_loop =
        [&](const NodePlan &node) -> const NodePlan * {
        if (node.isLoop)
            return &node;
        for (const auto &c : node.children) {
            if (const NodePlan *hit = find_loop(*c))
                return hit;
        }
        return nullptr;
    };
    const NodePlan *loop = find_loop(*p->root);
    ASSERT_NE(loop, nullptr);
    EXPECT_GT(loop->nmax, 0);
    EXPECT_GE(loop->backEdgeFifo, 1);
    // The loop body contains a global load: N_max must be large enough
    // to keep the 64-cycle unit busy (after §IV-C balancing).
    EXPECT_GT(loop->nmax, 32);
}

TEST(Planner, BarrierInLoopForcesSwgr)
{
    auto p = plan(
        "__kernel void f(__global float* A, __global int* R) {\n"
        "  __local float t[16];\n"
        "  int l = get_local_id(0);\n"
        "  int n = R[get_group_id(0)];\n"
        "  for (int k = 0; k < n; k++) {\n"
        "    t[l] = A[l] + (float)k;\n"
        "    barrier(CLK_LOCAL_MEM_FENCE);\n"
        "    A[l] = t[15 - l];\n"
        "  }\n"
        "}");
    std::function<bool(const NodePlan &)> any_swgr =
        [&](const NodePlan &node) {
            if (node.swgr)
                return true;
            for (const auto &c : node.children) {
                if (any_swgr(*c))
                    return true;
            }
            return false;
        };
    EXPECT_TRUE(any_swgr(*p->root));
}

TEST(Planner, LocalBlockBanking)
{
    auto p = plan(
        "__kernel void f(__global float* A) {\n"
        "  __local float t[32];\n"
        "  int l = get_local_id(0);\n"
        "  t[l] = A[l];\n"
        "  barrier(CLK_LOCAL_MEM_FENCE);\n"
        "  A[l] = t[31 - l] + t[l];\n"
        "}");
    ASSERT_EQ(p->localBlocks.size(), 1u);
    const LocalBlockPlan &lb = p->localBlocks[0];
    EXPECT_EQ(lb.numPorts, 3); // one store + two loads
    EXPECT_EQ(lb.numBanks, 4); // 2^ceil(log2 3), §V-B
}

// --- Resource model --------------------------------------------------

TEST(Resources, SmallKernelFitsManyInstances)
{
    auto p = plan(
        "__kernel void f(__global float* A) {\n"
        "  int i = get_global_id(0);\n"
        "  A[i] = A[i] + 1.0f;\n"
        "}");
    int n = maxInstances(*p, FpgaSpec::arria10());
    EXPECT_GT(n, 4);
    // The bigger Xilinx device hosts at least as many (Table I).
    EXPECT_GE(maxInstances(*p, FpgaSpec::vu9p()), n);
}

TEST(Resources, MonotoneScaling)
{
    auto p = plan(
        "__kernel void f(__global float* A) {\n"
        "  int i = get_global_id(0);\n"
        "  A[i] = sqrt(A[i]);\n"
        "}");
    Resources one = estimateInstance(*p);
    Resources four = one.scaled(4);
    EXPECT_EQ(four.luts, 4 * one.luts);
    EXPECT_TRUE(one.fitsIn(four));
    EXPECT_FALSE(four.fitsIn(one));
}

TEST(Resources, FmaxDegradesWithUtilization)
{
    FpgaSpec fpga = FpgaSpec::arria10();
    Resources low{10000, 10, 100000};
    Resources high{900000, 2000, 50000000};
    EXPECT_GT(estimateFmaxMhz(fpga, low), estimateFmaxMhz(fpga, high));
}

} // namespace
} // namespace soff::datapath
