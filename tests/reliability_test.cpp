/**
 * @file
 * Reliability layer of the launch engine: watchdog cycle budgets,
 * deterministic launch-visible fault injection, retry-with-backoff on
 * pristine memory, error containment across dependency chains,
 * cancellation, queue teardown, and the strict parsing of the new env
 * knobs. See DESIGN.md "Failure semantics".
 *
 * Every test that injects faults pins its own FaultConfig in code with
 * the *timing* fault classes zeroed, so launches stay template-pool
 * eligible and the tests are immune to the CI env legs (SOFF_FAULTS=42
 * injects timing faults only; an in-code config takes precedence).
 * Fault seeds are scanned against the same stateless FaultPlan the
 * runtime consults, so each test knows exactly which attempt of which
 * command fails — no flaky probabilistic assertions.
 */
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/runtime.hpp"
#include "sim/fault.hpp"
#include "support/error.hpp"

namespace soff::rt
{
namespace
{

const char *kKernels = R"CL(
__kernel void vadd(__global float* A, __global float* B,
                   __global float* C) {
  int g = get_global_id(0);
  C[g] = A[g] + B[g];
}
__kernel void smooth(__global float* A, __global float* B, int iters) {
  __local float tile[16];
  int l = get_local_id(0);
  int g = get_global_id(0);
  tile[l] = A[g];
  for (int t = 0; t < iters; t++) {
    barrier(CLK_LOCAL_MEM_FENCE);
    float left = tile[l == 0 ? 0 : l - 1];
    float right = tile[l == 15 ? 15 : l + 1];
    barrier(CLK_LOCAL_MEM_FENCE);
    tile[l] = 0.5f * tile[l] + 0.25f * (left + right);
  }
  B[g] = tile[l];
}
)CL";

constexpr uint32_t kN = 32;

std::vector<float>
inputA()
{
    std::vector<float> a(kN);
    for (uint32_t i = 0; i < kN; ++i)
        a[i] = static_cast<float>(i % 13) * 0.5f;
    return a;
}

std::vector<float>
inputB()
{
    std::vector<float> b(kN);
    for (uint32_t i = 0; i < kN; ++i)
        b[i] = static_cast<float>(i % 9) * 0.25f;
    return b;
}

std::vector<float>
vaddOracle()
{
    std::vector<float> a = inputA(), b = inputB(), c(kN);
    for (uint32_t i = 0; i < kN; ++i)
        c[i] = a[i] + b[i];
    return c;
}

/** A launch-visible-only fault config: every timing class zeroed so
 *  perturbsTiming() is false (pool-eligible, env-leg-immune). */
sim::FaultConfig
launchFaultConfig(uint64_t seed)
{
    sim::FaultConfig fc;
    fc.seed = seed;
    fc.stallProb = 0.0;
    fc.memStallProb = 0.0;
    fc.dramSpikeEvery = 0;
    fc.dramJitterMax = 0;
    fc.fifoSlackCut = 0;
    return fc;
}

/** One simple vadd workload bound to fresh buffers in a context. */
struct VaddSetup
{
    Program program;
    KernelHandle kernel;
    Buffer in0, in1, out;

    explicit VaddSetup(Context &ctx)
        : program(ctx.buildProgram(kKernels)),
          kernel(program.createKernel("vadd")),
          in0(ctx.createBuffer(kN * 4)), in1(ctx.createBuffer(kN * 4)),
          out(ctx.createBuffer(kN * 4))
    {
        std::vector<float> a = inputA(), b = inputB();
        ctx.writeBuffer(in0, a.data(), kN * 4);
        ctx.writeBuffer(in1, b.data(), kN * 4);
    }

    sim::NDRange
    bind()
    {
        kernel.setArg(0, in0);
        kernel.setArg(1, in1);
        kernel.setArg(2, out);
        sim::NDRange nd;
        nd.globalSize[0] = kN;
        nd.localSize[0] = 16;
        return nd;
    }
};

std::vector<float>
readOut(Context &ctx, const Buffer &out)
{
    std::vector<float> c(kN);
    ctx.readBuffer(out, c.data(), kN * 4);
    return c;
}

/** Cycle count of the vadd launch, measured in a side context with the
 *  identical allocation sequence (addresses — and therefore cycle
 *  counts — match the test context's). */
uint64_t
measureVaddCycles()
{
    Context ctx;
    VaddSetup v(ctx);
    sim::NDRange nd = v.bind();
    LaunchResult r = ctx.enqueueNDRange(v.kernel, nd);
    return r.cycles;
}

/** RAII save/restore of one environment variable. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_ = old != nullptr;
        if (had_)
            saved_ = old;
        setenv(name, value, 1);
    }
    ~ScopedEnv()
    {
        if (had_)
            setenv(name_, saved_.c_str(), 1);
        else
            unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_ = false;
    std::string saved_;
};

ClStatus
statusOfFinish(CommandQueue &queue)
{
    try {
        queue.finish();
        return ClStatus::Success;
    } catch (const OpenClError &e) {
        return e.status();
    }
}

// ----------------------------------------------------------------------
// Watchdog
// ----------------------------------------------------------------------
TEST(Watchdog, TinyBudgetTripsWithDistinctStatus)
{
    Context ctx;
    VaddSetup v(ctx);
    QueueOptions opts;
    opts.launchTimeoutCycles = 5; // No kernel completes in 5 cycles.
    CommandQueue queue(ctx, opts);
    Event ev;
    queue.enqueueNDRange(v.kernel, v.bind(), {}, &ev);
    // finish() must *return* (throwing, not wedging) and surface the
    // distinct watchdog status, not the generic CL_OUT_OF_RESOURCES.
    EXPECT_EQ(statusOfFinish(queue), ClStatus::SoffLaunchTimeout);
    EXPECT_TRUE(ev.isComplete());
    EXPECT_EQ(ev.executionStatus(),
              static_cast<int>(ClStatus::SoffLaunchTimeout));
    ReliabilityStats s = queue.reliabilityStats();
    EXPECT_EQ(s.retired, 1u);
    EXPECT_EQ(s.failed, 1u);
    EXPECT_EQ(s.watchdogTrips, 1u);
    // A fresh launch with a generous budget still works: the trip
    // poisoned nothing.
    QueueOptions generous;
    generous.launchTimeoutCycles = 100000000;
    CommandQueue queue2(ctx, generous);
    queue2.enqueueNDRange(v.kernel, v.bind());
    EXPECT_NO_THROW(queue2.finish());
    EXPECT_EQ(readOut(ctx, v.out), vaddOracle());
    EXPECT_EQ(queue2.reliabilityStats().watchdogTrips, 0u);
}

TEST(Watchdog, EnvKnobParsesStrictly)
{
    Context ctx;
    VaddSetup v(ctx);
    CommandQueue queue(ctx);
    for (const char *bad : {"abc", "0", " 5", "5x", "-3", "+7", ""}) {
        if (*bad == '\0')
            continue; // Empty means unset, not invalid.
        ScopedEnv env("SOFF_LAUNCH_TIMEOUT", bad);
        SCOPED_TRACE(testing::Message()
                     << "SOFF_LAUNCH_TIMEOUT='" << bad << "'");
        try {
            queue.enqueueNDRange(v.kernel, v.bind());
            FAIL() << "expected CL_INVALID_VALUE at enqueue";
        } catch (const OpenClError &e) {
            EXPECT_EQ(e.status(), ClStatus::InvalidValue);
        }
    }
    // Errors threw synchronously at enqueue: nothing pending.
    EXPECT_NO_THROW(queue.finish());
    {
        // A valid value is honored: 5 cycles trips the watchdog.
        ScopedEnv env("SOFF_LAUNCH_TIMEOUT", "5");
        queue.enqueueNDRange(v.kernel, v.bind());
        EXPECT_EQ(statusOfFinish(queue), ClStatus::SoffLaunchTimeout);
    }
}

TEST(Watchdog, RetryEnvKnobParsesStrictly)
{
    Context ctx;
    Buffer buf = ctx.createBuffer(64);
    CommandQueue queue(ctx);
    std::vector<uint8_t> bytes(64, 1);
    for (const char *bad : {"abc", "-2", "17", " 1", "2x"}) {
        ScopedEnv env("SOFF_LAUNCH_RETRY", bad);
        SCOPED_TRACE(testing::Message()
                     << "SOFF_LAUNCH_RETRY='" << bad << "'");
        try {
            queue.enqueueWrite(buf, bytes.data(), bytes.size());
            FAIL() << "expected CL_INVALID_VALUE at enqueue";
        } catch (const OpenClError &e) {
            EXPECT_EQ(e.status(), ClStatus::InvalidValue);
        }
    }
    {
        ScopedEnv env("SOFF_LAUNCH_RETRY", "2");
        EXPECT_NO_THROW(
            queue.enqueueWrite(buf, bytes.data(), bytes.size()));
    }
    EXPECT_NO_THROW(queue.finish());
}

// ----------------------------------------------------------------------
// Transient faults and retry
// ----------------------------------------------------------------------
TEST(Retry, InjectedLaunchAbortIsRetriedToSuccess)
{
    // Find a seed where attempt 0 of the launch (enqueue ordinal 0)
    // aborts before the kernel would complete and attempt 1 runs
    // clean — scanned against the same stateless FaultPlan the runtime
    // consults, so the outcome is fully determined.
    uint64_t cycles = measureVaddCycles();
    ASSERT_GT(cycles, 1u);
    uint64_t seed = 0;
    for (uint64_t candidate = 1; candidate < 50000 && seed == 0;
         ++candidate) {
        sim::FaultConfig fc = launchFaultConfig(candidate);
        fc.abortEvery = 2;
        sim::FaultPlan plan(fc);
        uint64_t at0 = 0, at1 = 0;
        if (plan.launchAborts(0, 0, &at0) && at0 < cycles &&
            !plan.launchAborts(0, 1, &at1))
            seed = candidate;
    }
    ASSERT_NE(seed, 0u) << "no abort seed found in the scan range";

    Context ctx;
    VaddSetup v(ctx);
    QueueOptions opts;
    opts.faults = launchFaultConfig(seed);
    opts.faults.abortEvery = 2;
    opts.retry.attempts = 2;
    CommandQueue queue(ctx, opts);
    Event ev;
    queue.enqueueNDRange(v.kernel, v.bind(), {}, &ev);
    EXPECT_NO_THROW(queue.finish());
    EXPECT_EQ(ev.executionStatus(), 0); // CL_COMPLETE
    EXPECT_EQ(readOut(ctx, v.out), vaddOracle());
    EXPECT_TRUE(ev.valid()); // Profiling stamped despite the retry.

    ReliabilityStats s = queue.reliabilityStats();
    EXPECT_EQ(s.retired, 1u);
    EXPECT_EQ(s.failed, 0u);
    EXPECT_EQ(s.retries, 1u);
    EXPECT_EQ(s.faultsInjected, 1u);
    EXPECT_EQ(s.faultsRetriedAway, 1u);
    EXPECT_EQ(s.faultsSurfaced, 0u);
    // Accounting invariant: every injected fault is either retried
    // away or surfaced.
    InjectedFaultCounters inj = ctx.injectedFaults();
    EXPECT_EQ(inj.launchAborts, 1u);
    EXPECT_EQ(inj.total(), s.faultsRetriedAway + s.faultsSurfaced);
}

TEST(Retry, ExhaustedBudgetSurfacesTransientFault)
{
    // poolevery=1 fails *every* checkout attempt (h % 1 == 0): with 2
    // retries the command performs 3 attempts, observes 3 faults, and
    // surfaces SOFF_TRANSIENT_FAULT.
    Context ctx;
    VaddSetup v(ctx);
    QueueOptions opts;
    opts.faults = launchFaultConfig(7);
    opts.faults.poolFailEvery = 1;
    opts.retry.attempts = 2;
    CommandQueue queue(ctx, opts);
    Event ev;
    queue.enqueueNDRange(v.kernel, v.bind(), {}, &ev);
    EXPECT_EQ(statusOfFinish(queue), ClStatus::SoffTransientFault);
    EXPECT_EQ(ev.executionStatus(),
              static_cast<int>(ClStatus::SoffTransientFault));

    ReliabilityStats s = queue.reliabilityStats();
    EXPECT_EQ(s.retired, 1u);
    EXPECT_EQ(s.failed, 1u);
    EXPECT_EQ(s.retries, 2u);
    EXPECT_EQ(s.faultsInjected, 3u);
    EXPECT_EQ(s.faultsRetriedAway, 0u);
    EXPECT_EQ(s.faultsSurfaced, 3u);
    InjectedFaultCounters inj = ctx.injectedFaults();
    EXPECT_EQ(inj.poolCheckouts, 3u);
    EXPECT_EQ(inj.total(), s.faultsRetriedAway + s.faultsSurfaced);
}

TEST(Retry, NoPolicyMeansSingleAttempt)
{
    Context ctx;
    VaddSetup v(ctx);
    QueueOptions opts;
    opts.faults = launchFaultConfig(7);
    opts.faults.poolFailEvery = 1;
    opts.retry.attempts = 0; // Explicitly no retries.
    CommandQueue queue(ctx, opts);
    queue.enqueueNDRange(v.kernel, v.bind());
    EXPECT_EQ(statusOfFinish(queue), ClStatus::SoffTransientFault);
    ReliabilityStats s = queue.reliabilityStats();
    EXPECT_EQ(s.retries, 0u);
    EXPECT_EQ(s.faultsInjected, 1u);
    EXPECT_EQ(s.faultsSurfaced, 1u);
}

TEST(Retry, TransientDmaFaultIsRetried)
{
    // DMA commands draw ordinals from the same context counter: the
    // write below is ordinal 0, the read ordinal 1. Scan for a seed
    // where only the write's first attempt fails.
    uint64_t seed = 0;
    for (uint64_t candidate = 1; candidate < 50000 && seed == 0;
         ++candidate) {
        sim::FaultConfig fc = launchFaultConfig(candidate);
        fc.dmaFailEvery = 2;
        sim::FaultPlan plan(fc);
        if (plan.dmaFails(0, 0) && !plan.dmaFails(0, 1) &&
            !plan.dmaFails(1, 0))
            seed = candidate;
    }
    ASSERT_NE(seed, 0u) << "no DMA-fault seed found in the scan range";

    Context ctx;
    Buffer buf = ctx.createBuffer(256);
    QueueOptions opts;
    opts.faults = launchFaultConfig(seed);
    opts.faults.dmaFailEvery = 2;
    opts.retry.attempts = 2;
    CommandQueue queue(ctx, opts);
    std::vector<uint8_t> src(256);
    for (size_t i = 0; i < src.size(); ++i)
        src[i] = static_cast<uint8_t>(i * 7);
    std::vector<uint8_t> dst(256, 0);
    queue.enqueueWrite(buf, src.data(), src.size());
    queue.enqueueRead(buf, dst.data(), dst.size());
    EXPECT_NO_THROW(queue.finish());
    EXPECT_EQ(dst, src);

    ReliabilityStats s = queue.reliabilityStats();
    EXPECT_EQ(s.retired, 2u);
    EXPECT_EQ(s.failed, 0u);
    EXPECT_EQ(s.retries, 1u);
    EXPECT_EQ(s.faultsRetriedAway, 1u);
    InjectedFaultCounters inj = ctx.injectedFaults();
    EXPECT_EQ(inj.dmaTransfers, 1u);
    EXPECT_EQ(inj.total(), s.faultsRetriedAway + s.faultsSurfaced);
}

TEST(Retry, FaultFreePolicyIsBitIdenticalToSerial)
{
    // A retry policy with no faults to retry must be invisible: the
    // pristine-memory snapshot layer may not change results, stats,
    // or profiling stamps relative to the serial in-order path.
    std::vector<float> serial_out;
    uint64_t serial_end = 0;
    {
        Context ctx;
        VaddSetup v(ctx);
        Event ev;
        ctx.enqueueNDRange(v.kernel, v.bind(), ExecutionMode::Simulate,
                           {}, 0, &ev);
        serial_out = readOut(ctx, v.out);
        serial_end = ev.endNs();
    }
    Context ctx;
    VaddSetup v(ctx);
    QueueOptions opts;
    opts.retry.attempts = 3; // Armed, never exercised.
    CommandQueue queue(ctx, opts);
    Event ev;
    queue.enqueueNDRange(v.kernel, v.bind(), {}, &ev);
    queue.finish();
    EXPECT_EQ(readOut(ctx, v.out), serial_out);
    EXPECT_EQ(ev.endNs(), serial_end);
    ReliabilityStats s = queue.reliabilityStats();
    EXPECT_EQ(s.retries, 0u);
    EXPECT_EQ(s.faultsInjected, 0u);
    EXPECT_EQ(ctx.injectedFaults().total(), 0u);
}

// ----------------------------------------------------------------------
// Containment
// ----------------------------------------------------------------------
TEST(Containment, FailedCommandFailsDependentsAcrossQueues)
{
    Context ctx;
    VaddSetup v(ctx);
    Buffer out2 = ctx.createBuffer(kN * 4);
    std::vector<float> sentinel(kN, -1.0f);
    ctx.writeBuffer(out2, sentinel.data(), kN * 4);

    QueueOptions failing;
    failing.faults = launchFaultConfig(7);
    failing.faults.poolFailEvery = 1;
    CommandQueue queue_a(ctx, failing);
    CommandQueue queue_b(ctx); // No faults.

    Event failed;
    queue_a.enqueueNDRange(v.kernel, v.bind(), {}, &failed);

    // A launch in *another* queue gated on the failed event must be
    // terminated without executing (its output keeps the sentinel),
    // and so must the read chained behind it.
    v.kernel.setArg(0, v.in0);
    v.kernel.setArg(1, v.in1);
    v.kernel.setArg(2, out2);
    sim::NDRange nd;
    nd.globalSize[0] = kN;
    nd.localSize[0] = 16;
    Event dependent;
    queue_b.enqueueNDRange(v.kernel, nd, {failed}, &dependent);
    std::vector<float> host(kN, 0.0f);
    Event read;
    queue_b.enqueueRead(out2, host.data(), kN * 4, {dependent}, &read);

    EXPECT_EQ(statusOfFinish(queue_a), ClStatus::SoffTransientFault);
    EXPECT_EQ(statusOfFinish(queue_b),
              ClStatus::ExecStatusErrorForEventsInWaitList);
    EXPECT_EQ(dependent.executionStatus(),
              static_cast<int>(
                  ClStatus::ExecStatusErrorForEventsInWaitList));
    EXPECT_EQ(read.executionStatus(),
              static_cast<int>(
                  ClStatus::ExecStatusErrorForEventsInWaitList));
    EXPECT_EQ(readOut(ctx, out2), sentinel) << "skipped launch ran";

    ReliabilityStats sb = queue_b.reliabilityStats();
    EXPECT_EQ(sb.retired, 2u);
    EXPECT_EQ(sb.failed, 2u);
    EXPECT_EQ(sb.depSkipped, 2u);
}

TEST(Containment, CancelledUserEventFailsDependents)
{
    Context ctx;
    VaddSetup v(ctx);
    CommandQueue queue(ctx);
    Event gate = ctx.createUserEvent();
    Event dependent;
    queue.enqueueNDRange(v.kernel, v.bind(), {gate}, &dependent);
    gate.cancel();
    EXPECT_EQ(gate.executionStatus(),
              static_cast<int>(ClStatus::SoffCommandCancelled));
    EXPECT_EQ(statusOfFinish(queue),
              ClStatus::ExecStatusErrorForEventsInWaitList);
    EXPECT_EQ(dependent.executionStatus(),
              static_cast<int>(
                  ClStatus::ExecStatusErrorForEventsInWaitList));
    EXPECT_EQ(queue.reliabilityStats().depSkipped, 1u);
}

// ----------------------------------------------------------------------
// Cancellation
// ----------------------------------------------------------------------
TEST(Cancel, PendingGatedCommandDrainsAsCancelled)
{
    Context ctx;
    VaddSetup v(ctx);
    CommandQueue queue(ctx);
    // Gated on a user event that never completes: without cancel the
    // queue would be wedged forever.
    Event gate = ctx.createUserEvent();
    Event ev;
    queue.enqueueNDRange(v.kernel, v.bind(), {gate}, &ev);
    ev.cancel();
    EXPECT_EQ(statusOfFinish(queue), ClStatus::SoffCommandCancelled);
    EXPECT_EQ(ev.executionStatus(),
              static_cast<int>(ClStatus::SoffCommandCancelled));
    EXPECT_EQ(queue.reliabilityStats().cancelled, 1u);
    // Cancelling an already-complete event is a no-op, not an error.
    EXPECT_NO_THROW(ev.cancel());
    gate.setComplete();
}

TEST(Cancel, RunningLaunchStopsCooperatively)
{
    Context ctx;
    Program program = ctx.buildProgram(kKernels);
    KernelHandle kernel = program.createKernel("smooth");
    Buffer in = ctx.createBuffer(16 * 4);
    Buffer out = ctx.createBuffer(16 * 4);
    std::vector<float> a(16, 1.0f);
    ctx.writeBuffer(in, a.data(), 16 * 4);
    kernel.setArg(0, in);
    kernel.setArg(1, out);
    kernel.setArg(2, static_cast<int32_t>(50000)); // Long-running.
    sim::NDRange nd;
    nd.globalSize[0] = 16;
    nd.localSize[0] = 16;
    CommandQueue queue(ctx);
    Event ev;
    queue.enqueueNDRange(kernel, nd, {}, &ev);
    // Wait until the launch is actually executing, then cancel: the
    // simulator must stop at the next cycle boundary.
    while (ev.status() != CommandStatus::Running &&
           ev.status() != CommandStatus::Complete)
        std::this_thread::yield();
    ev.cancel();
    EXPECT_EQ(statusOfFinish(queue), ClStatus::SoffCommandCancelled);
    EXPECT_EQ(ev.executionStatus(),
              static_cast<int>(ClStatus::SoffCommandCancelled));
    EXPECT_EQ(queue.reliabilityStats().cancelled, 1u);
}

TEST(Cancel, CancelAllUnwedgesQueueAndSwallowsErrors)
{
    Context ctx;
    VaddSetup v(ctx);
    CommandQueue queue(ctx); // In-order: the gate wedges everything.
    Event gate = ctx.createUserEvent();
    std::vector<Event> events(4);
    queue.enqueueNDRange(v.kernel, v.bind(), {gate}, &events[0]);
    for (int i = 1; i < 4; ++i)
        queue.enqueueNDRange(v.kernel, v.bind(), {}, &events[i]);
    queue.cancelAll(); // Must return despite the abandoned gate.
    for (const Event &ev : events) {
        EXPECT_TRUE(ev.isComplete());
        int st = ev.executionStatus();
        EXPECT_TRUE(
            st == static_cast<int>(ClStatus::SoffCommandCancelled) ||
            st == static_cast<int>(
                      ClStatus::ExecStatusErrorForEventsInWaitList))
            << "unexpected status " << st;
    }
    // cancelAll swallows the queue-level error: a subsequent finish()
    // (and the destructor) must not rethrow the cancellations.
    EXPECT_NO_THROW(queue.finish());
    ReliabilityStats s = queue.reliabilityStats();
    EXPECT_EQ(s.retired, 4u);
    EXPECT_EQ(s.failed, 4u);
    gate.setComplete();
}

// ----------------------------------------------------------------------
// Callback exception safety
// ----------------------------------------------------------------------
TEST(Callbacks, ThrowingCallbackIsSwallowedAndCounted)
{
    Context ctx;
    VaddSetup v(ctx);
    CommandQueue queue(ctx);
    Event ev;
    queue.enqueueNDRange(v.kernel, v.bind(), {}, &ev);
    ev.onComplete([] { throw std::runtime_error("user callback"); });
    Event ev2; // The drain must survive the throw: this still retires.
    queue.enqueueNDRange(v.kernel, v.bind(), {}, &ev2);
    EXPECT_NO_THROW(queue.finish()); // Command itself succeeded.
    EXPECT_EQ(ev.executionStatus(), 0);
    EXPECT_EQ(ev2.executionStatus(), 0);
    EXPECT_EQ(readOut(ctx, v.out), vaddOracle());
    ReliabilityStats s = queue.reliabilityStats();
    EXPECT_EQ(s.retired, 2u);
    EXPECT_EQ(s.failed, 0u);
    EXPECT_EQ(s.callbackExceptions, 1u);
}

// ----------------------------------------------------------------------
// Teardown
// ----------------------------------------------------------------------
TEST(Teardown, ContextWithFailedRetriedCancelledCommandsLeaksNothing)
{
    // Exercised under AddressSanitizer in CI (detect_leaks=1): a
    // context destroyed with failed, retried, cancelled, and
    // dependency-skipped commands having been in flight must complete
    // every event and free everything.
    std::vector<Event> events;
    {
        Context ctx;
        VaddSetup v(ctx);
        QueueOptions failing;
        failing.faults = launchFaultConfig(7);
        failing.faults.poolFailEvery = 1;
        failing.retry.attempts = 1;
        CommandQueue queue_a(ctx, failing);
        CommandQueue queue_b(ctx);
        Event gate = ctx.createUserEvent();
        for (int i = 0; i < 3; ++i) {
            Event ev;
            queue_a.enqueueNDRange(v.kernel, v.bind(), {}, &ev);
            events.push_back(ev);
        }
        Event gated;
        queue_b.enqueueNDRange(v.kernel, v.bind(), {gate}, &gated);
        events.push_back(gated);
        Event chained;
        queue_b.enqueueNDRange(v.kernel, v.bind(), {gated}, &chained);
        events.push_back(chained);
        Event ok;
        queue_b.enqueueNDRange(v.kernel, v.bind(), {}, &ok);
        events.push_back(ok);
        gated.cancel();
        queue_a.cancelAll();
        queue_b.cancelAll();
        for (const Event &ev : events)
            EXPECT_TRUE(ev.isComplete());
        // Queues and context unwind here with the full mix retired.
    }
    for (const Event &ev : events)
        EXPECT_TRUE(ev.isComplete());
}

} // namespace
} // namespace soff::rt
