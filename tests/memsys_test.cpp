/** @file Unit tests for the memory subsystem: caches (hits, misses,
 *  write-back with byte-dirty merging, flush, atomics), the round-robin
 *  arbiter's response routing, local memory banking, and lock tables. */
#include <gtest/gtest.h>

#include "memsys/arbiter.hpp"
#include "memsys/cache.hpp"
#include "memsys/local_block.hpp"
#include "memsys/locks.hpp"

namespace soff::memsys
{
namespace
{

using sim::Channel;
using sim::MemReq;
using sim::MemResp;

struct CacheRig
{
    sim::Simulator sim;
    GlobalMemory memory{1 << 16};
    DramTiming dram{40, 4};
    Channel<MemReq> *in;
    Channel<MemResp> *out;
    Cache *cache;

    CacheRig()
    {
        in = sim.channel<MemReq>(8);
        out = sim.channel<MemResp>(8);
        cache = sim.add<Cache>("c", memory, dram, 4096, 64, in,
                               out);
    }

    /** Drives the cache until one response arrives. */
    MemResp
    roundTrip(const MemReq &req, int max_cycles = 500)
    {
        in->push(req);
        for (int cycle = 0; cycle < max_cycles; ++cycle) {
            cache->step(static_cast<sim::Cycle>(cycle));
            in->commit();
            out->commit();
            if (out->canPop()) {
                MemResp resp = out->pop();
                out->commit();
                return resp;
            }
        }
        ADD_FAILURE() << "no response";
        return {};
    }
};

MemReq
loadReq(uint64_t addr, uint32_t size = 4)
{
    MemReq req;
    req.op = MemReq::Op::Load;
    req.addr = addr;
    req.size = size;
    return req;
}

MemReq
storeReq(uint64_t addr, uint64_t data, uint32_t size = 4)
{
    MemReq req;
    req.op = MemReq::Op::Store;
    req.addr = addr;
    req.size = size;
    req.data = data;
    return req;
}

TEST(Cache, MissThenHit)
{
    CacheRig rig;
    rig.memory.writeScalar(256, 4, 0xdeadbeef);
    EXPECT_EQ(rig.roundTrip(loadReq(256)).data, 0xdeadbeefull);
    EXPECT_EQ(rig.cache->stats().misses, 1u);
    EXPECT_EQ(rig.roundTrip(loadReq(260)).data, 0u) << "same line";
    EXPECT_EQ(rig.cache->stats().hits, 1u);
}

TEST(Cache, RepeatedAccessHitRateNonZero)
{
    // The counter surfaced through RunResult/StatsReport: repeatedly
    // touching the same lines must produce a nonzero hit rate — one
    // compulsory miss per line, hits for everything after.
    CacheRig rig;
    for (int pass = 0; pass < 4; ++pass) {
        for (uint64_t addr = 0; addr < 512; addr += 64)
            rig.roundTrip(loadReq(addr));
    }
    const CacheStats &stats = rig.cache->stats();
    EXPECT_EQ(stats.misses, 8u) << "one compulsory miss per line";
    EXPECT_EQ(stats.hits, 24u) << "three hit passes over 8 lines";
    double lookups = static_cast<double>(stats.hits + stats.misses);
    EXPECT_GT(static_cast<double>(stats.hits) / lookups, 0.5);
}

TEST(Cache, WriteBackOnEviction)
{
    CacheRig rig;
    rig.roundTrip(storeReq(128, 77));
    // Evict by touching the conflicting line (4096 bytes apart).
    rig.roundTrip(loadReq(128 + 4096));
    EXPECT_EQ(rig.memory.readScalar(128, 4), 77u)
        << "dirty data must reach memory on eviction";
    EXPECT_EQ(rig.cache->stats().evictions, 1u)
        << "replacing a valid line counts as an eviction";
    EXPECT_EQ(rig.cache->stats().writebacks, 1u);
}

TEST(Cache, FlushWritesAllDirtyLines)
{
    CacheRig rig;
    rig.roundTrip(storeReq(64, 11));
    rig.roundTrip(storeReq(192, 22));
    rig.cache->requestFlush();
    for (int cycle = 1000; cycle < 1300; ++cycle)
        rig.cache->step(static_cast<sim::Cycle>(cycle));
    EXPECT_TRUE(rig.cache->flushDone());
    EXPECT_EQ(rig.memory.readScalar(64, 4), 11u);
    EXPECT_EQ(rig.memory.readScalar(192, 4), 22u);
}

TEST(Cache, ByteDirtyMaskMergesDisjointWrites)
{
    // Two caches over the same memory write different words of the
    // same line (the per-datapath-instance scenario of §V-A); byte
    // dirty masks must merge, not clobber.
    sim::Simulator sim;
    GlobalMemory memory(1 << 16);
    DramTiming dram(40, 4);
    auto *in1 = sim.channel<MemReq>(8);
    auto *out1 = sim.channel<MemResp>(8);
    auto *in2 = sim.channel<MemReq>(8);
    auto *out2 = sim.channel<MemResp>(8);
    Cache *c1 = sim.add<Cache>("c1", memory, dram, 4096, 64, in1,
                               out1);
    Cache *c2 = sim.add<Cache>("c2", memory, dram, 4096, 64, in2,
                               out2);
    auto drive = [&](Cache *cache, Channel<MemReq> *in,
                     Channel<MemResp> *out, const MemReq &req) {
        in->push(req);
        for (int cycle = 0; cycle < 500; ++cycle) {
            cache->step(static_cast<sim::Cycle>(cycle));
            in->commit();
            out->commit();
            if (out->canPop()) {
                out->pop();
                out->commit();
                return;
            }
        }
    };
    drive(c1, in1, out1, storeReq(64, 0x1111));  // word 0 of the line
    drive(c2, in2, out2, storeReq(68, 0x2222));  // word 1, same line
    c1->requestFlush();
    c2->requestFlush();
    for (int cycle = 1000; cycle < 1400; ++cycle) {
        c1->step(static_cast<sim::Cycle>(cycle));
        c2->step(static_cast<sim::Cycle>(cycle));
    }
    EXPECT_EQ(memory.readScalar(64, 4), 0x1111u);
    EXPECT_EQ(memory.readScalar(68, 4), 0x2222u);
}

TEST(Cache, AtomicRmwReturnsOldValue)
{
    CacheRig rig;
    ir::TypeContext types;
    rig.memory.writeScalar(512, 4, 10);
    MemReq req;
    req.op = MemReq::Op::AtomicRMW;
    req.addr = 512;
    req.size = 4;
    req.data = 5;
    req.aop = ir::AtomicOp::Add;
    req.type = types.i32();
    EXPECT_EQ(rig.roundTrip(req).data, 10u);
    EXPECT_EQ(rig.roundTrip(loadReq(512)).data, 15u);
}

TEST(Cache, MissLatencyExceedsHitLatency)
{
    CacheRig rig;
    // Miss.
    rig.in->push(loadReq(1024));
    int miss_cycles = 0;
    for (;; ++miss_cycles) {
        rig.cache->step(static_cast<sim::Cycle>(miss_cycles));
        rig.in->commit();
        rig.out->commit();
        if (rig.out->canPop()) {
            rig.out->pop();
            rig.out->commit();
            break;
        }
        ASSERT_LT(miss_cycles, 500);
    }
    // Hit on the same line.
    rig.in->push(loadReq(1028));
    int hit_cycles = 0;
    for (;; ++hit_cycles) {
        rig.cache->step(static_cast<sim::Cycle>(miss_cycles + 1 +
                                                hit_cycles));
        rig.in->commit();
        rig.out->commit();
        if (rig.out->canPop())
            break;
        ASSERT_LT(hit_cycles, 500);
    }
    EXPECT_GT(miss_cycles, hit_cycles);
    EXPECT_GT(miss_cycles, 40) << "misses pay the DRAM latency";
}

// --- Arbiter ------------------------------------------------------------

TEST(Arbiter, RoutesResponsesToOriginInOrder)
{
    sim::Simulator sim;
    GlobalMemory memory(1 << 16);
    DramTiming dram(10, 1);
    auto *creq = sim.channel<MemReq>(4);
    auto *cresp = sim.channel<MemResp>(4);
    Cache *cache = sim.add<Cache>("c", memory, dram, 4096, 64,
                                  creq, cresp);
    auto *arb = sim.add<RRArbiter>("arb", creq, cresp);
    auto *req0 = sim.channel<MemReq>(4);
    auto *resp0 = sim.channel<MemResp>(8);
    auto *req1 = sim.channel<MemReq>(4);
    auto *resp1 = sim.channel<MemResp>(8);
    arb->addPort(req0, resp0);
    arb->addPort(req1, resp1);

    memory.writeScalar(64, 4, 100);
    memory.writeScalar(128, 4, 200);
    req0->push(loadReq(64));
    req1->push(loadReq(128));
    for (int cycle = 0; cycle < 500; ++cycle) {
        arb->step(static_cast<sim::Cycle>(cycle));
        cache->step(static_cast<sim::Cycle>(cycle));
        for (sim::ChannelBase *ch :
             std::initializer_list<sim::ChannelBase *>{
                 creq, cresp, req0, resp0, req1, resp1}) {
            ch->commit();
        }
    }
    ASSERT_TRUE(resp0->canPop());
    ASSERT_TRUE(resp1->canPop());
    EXPECT_EQ(resp0->pop().data, 100u) << "port 0 gets its own data";
    EXPECT_EQ(resp1->pop().data, 200u) << "port 1 gets its own data";
}

// --- Local memory block ---------------------------------------------------

TEST(LocalBlock, SlotsIsolateWorkGroups)
{
    sim::Simulator sim;
    auto *block = sim.add<LocalMemoryBlock>("lmem", 64, 2, 2);
    auto *req = sim.channel<MemReq>(4);
    auto *resp = sim.channel<MemResp>(8);
    block->addPort(req, resp);
    auto drive = [&](const MemReq &r) {
        req->push(r);
        for (int cycle = 0; cycle < 100; ++cycle) {
            block->step(static_cast<sim::Cycle>(cycle));
            req->commit();
            resp->commit();
            if (resp->canPop()) {
                MemResp out = resp->pop();
                resp->commit();
                return out;
            }
        }
        ADD_FAILURE() << "no response";
        return MemResp{};
    };
    MemReq w = storeReq(ir::localPtrEncode(0) + 8, 111);
    w.slot = 0;
    drive(w);
    MemReq r0 = loadReq(ir::localPtrEncode(0) + 8);
    r0.slot = 0;
    MemReq r1 = r0;
    r1.slot = 1;
    EXPECT_EQ(drive(r0).data, 111u);
    EXPECT_EQ(drive(r1).data, 0u) << "other work-group slot untouched";
}

TEST(LocalBlock, BankConflictsSerialize)
{
    sim::Simulator sim;
    auto *block = sim.add<LocalMemoryBlock>("lmem", 256, 2, 1);
    auto *req0 = sim.channel<MemReq>(4);
    auto *resp0 = sim.channel<MemResp>(8);
    auto *req1 = sim.channel<MemReq>(4);
    auto *resp1 = sim.channel<MemResp>(8);
    block->addPort(req0, resp0);
    block->addPort(req1, resp1);
    // Same bank: word addresses 0 and 2 with 2 banks -> bank 0.
    req0->push(loadReq(ir::localPtrEncode(0) + 0));
    req1->push(loadReq(ir::localPtrEncode(0) + 8));
    for (int cycle = 0; cycle < 50; ++cycle) {
        block->step(static_cast<sim::Cycle>(cycle));
        req0->commit();
        resp0->commit();
        req1->commit();
        resp1->commit();
    }
    EXPECT_GE(block->stats().bankConflicts, 1u);
    // Different banks: no new conflicts.
    uint64_t before = block->stats().bankConflicts;
    req0->push(loadReq(ir::localPtrEncode(0) + 0));
    req1->push(loadReq(ir::localPtrEncode(0) + 4));
    for (int cycle = 50; cycle < 100; ++cycle) {
        block->step(static_cast<sim::Cycle>(cycle));
        req0->commit();
        resp0->commit();
        req1->commit();
        resp1->commit();
    }
    EXPECT_EQ(block->stats().bankConflicts, before);
}

// --- Lock table --------------------------------------------------------------

TEST(Locks, SixteenLocksHashedByLineAddress)
{
    LockTable locks;
    int owner_a = 0, owner_b = 0;
    EXPECT_EQ(LockTable::lockIndex(0x40), 1);
    EXPECT_EQ(LockTable::lockIndex(0x40 + 16 * 64), 1)
        << "wraps at 16 lines (§IV-F2)";
    EXPECT_TRUE(locks.tryAcquire(3, &owner_a));
    EXPECT_FALSE(locks.tryAcquire(3, &owner_b)) << "contention";
    EXPECT_TRUE(locks.tryAcquire(4, &owner_b)) << "different lock";
    locks.release(3, &owner_b);
    EXPECT_FALSE(locks.tryAcquire(3, &owner_b))
        << "only the owner may release";
    locks.release(3, &owner_a);
    EXPECT_TRUE(locks.tryAcquire(3, &owner_b));
}

} // namespace
} // namespace soff::memsys
