/** @file End-to-end tests: kernels compiled to datapath plans, executed
 *  on the cycle-level circuit simulator, and checked against both the
 *  reference interpreter and host-computed expectations. */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "runtime/runtime.hpp"
#include "support/rng.hpp"

namespace soff
{
namespace
{

using rt::Buffer;
using rt::Context;
using rt::ExecutionMode;
using rt::Program;

sim::NDRange
range1d(uint64_t global, uint64_t local)
{
    sim::NDRange nd;
    nd.globalSize[0] = global;
    nd.localSize[0] = local;
    return nd;
}

TEST(Sim, VectorAdd)
{
    const char *src =
        "__kernel void vadd(__global float* A, __global float* B,\n"
        "                   __global float* C) {\n"
        "  int i = get_global_id(0);\n"
        "  C[i] = A[i] + B[i];\n"
        "}\n";
    Context ctx;
    Program prog = ctx.buildProgram(src);
    auto kernel = prog.createKernel("vadd");

    const uint64_t n = 256;
    std::vector<float> a(n), b(n), c(n, 0.0f);
    SplitMix64 rng(1);
    for (uint64_t i = 0; i < n; ++i) {
        a[i] = rng.nextFloat();
        b[i] = rng.nextFloat();
    }
    Buffer ba = ctx.createBuffer(n * 4);
    Buffer bb = ctx.createBuffer(n * 4);
    Buffer bc = ctx.createBuffer(n * 4);
    ctx.writeBuffer(ba, a.data(), n * 4);
    ctx.writeBuffer(bb, b.data(), n * 4);
    ctx.writeBuffer(bc, c.data(), n * 4);
    kernel.setArg(0, ba);
    kernel.setArg(1, bb);
    kernel.setArg(2, bc);

    rt::LaunchResult result =
        ctx.enqueueNDRange(kernel, range1d(n, 64));
    EXPECT_GT(result.cycles, n) << "pipelined execution takes cycles";
    EXPECT_GE(result.instances, 1);

    ctx.readBuffer(bc, c.data(), n * 4);
    for (uint64_t i = 0; i < n; ++i)
        EXPECT_FLOAT_EQ(c[i], a[i] + b[i]) << "at " << i;
}

TEST(Sim, LoopReductionMatchesReference)
{
    const char *src =
        "__kernel void rowsum(__global float* M, __global float* S,\n"
        "                     int cols) {\n"
        "  int r = get_global_id(0);\n"
        "  float acc = 0.0f;\n"
        "  for (int c = 0; c < cols; c++) acc += M[r * cols + c];\n"
        "  S[r] = acc;\n"
        "}\n";
    const uint64_t rows = 64;
    const int cols = 17;
    std::vector<float> m(rows * static_cast<uint64_t>(cols));
    SplitMix64 rng(2);
    for (auto &v : m)
        v = rng.nextFloat() - 0.5f;

    // Run in both modes from identical initial memory.
    std::vector<float> sim_out(rows), ref_out(rows);
    for (int mode = 0; mode < 2; ++mode) {
        Context ctx;
        Program prog = ctx.buildProgram(src);
        auto kernel = prog.createKernel("rowsum");
        Buffer bm = ctx.createBuffer(m.size() * 4);
        Buffer bs = ctx.createBuffer(rows * 4);
        ctx.writeBuffer(bm, m.data(), m.size() * 4);
        kernel.setArg(0, bm);
        kernel.setArg(1, bs);
        kernel.setArg(2, cols);
        ctx.enqueueNDRange(kernel, range1d(rows, 16),
                           mode == 0 ? ExecutionMode::Simulate
                                     : ExecutionMode::Reference);
        ctx.readBuffer(bs, (mode == 0 ? sim_out : ref_out).data(),
                       rows * 4);
    }
    for (uint64_t r = 0; r < rows; ++r)
        EXPECT_FLOAT_EQ(sim_out[r], ref_out[r]) << "row " << r;
}

TEST(Sim, BranchDivergence)
{
    const char *src =
        "__kernel void clip(__global int* A, int lo, int hi) {\n"
        "  int i = get_global_id(0);\n"
        "  int v = A[i];\n"
        "  if (v < lo) v = lo;\n"
        "  else if (v > hi) v = hi;\n"
        "  A[i] = v;\n"
        "}\n";
    Context ctx;
    Program prog = ctx.buildProgram(src);
    auto kernel = prog.createKernel("clip");
    const uint64_t n = 128;
    std::vector<int32_t> a(n);
    SplitMix64 rng(3);
    for (auto &v : a)
        v = rng.nextInt(-100, 100);
    Buffer ba = ctx.createBuffer(n * 4);
    ctx.writeBuffer(ba, a.data(), n * 4);
    kernel.setArg(0, ba);
    kernel.setArg(1, int32_t{-10});
    kernel.setArg(2, int32_t{25});
    ctx.enqueueNDRange(kernel, range1d(n, 32));
    std::vector<int32_t> out(n);
    ctx.readBuffer(ba, out.data(), n * 4);
    for (uint64_t i = 0; i < n; ++i) {
        int32_t expect = std::min(std::max(a[i], -10), 25);
        EXPECT_EQ(out[i], expect) << "at " << i;
    }
}

TEST(Sim, BarrierWithLocalMemory)
{
    const char *src =
        "__kernel void rev(__global float* A, __global float* B) {\n"
        "  __local float tile[32];\n"
        "  int l = get_local_id(0);\n"
        "  int base = get_group_id(0) * 32;\n"
        "  tile[l] = A[base + l];\n"
        "  barrier(CLK_LOCAL_MEM_FENCE);\n"
        "  B[base + l] = tile[31 - l];\n"
        "}\n";
    Context ctx;
    Program prog = ctx.buildProgram(src);
    auto kernel = prog.createKernel("rev");
    const uint64_t n = 128;
    std::vector<float> a(n), b(n, 0);
    for (uint64_t i = 0; i < n; ++i)
        a[i] = static_cast<float>(i);
    Buffer ba = ctx.createBuffer(n * 4);
    Buffer bb = ctx.createBuffer(n * 4);
    ctx.writeBuffer(ba, a.data(), n * 4);
    ctx.writeBuffer(bb, b.data(), n * 4);
    kernel.setArg(0, ba);
    kernel.setArg(1, bb);
    ctx.enqueueNDRange(kernel, range1d(n, 32));
    ctx.readBuffer(bb, b.data(), n * 4);
    for (uint64_t g = 0; g < n / 32; ++g) {
        for (uint64_t l = 0; l < 32; ++l)
            EXPECT_FLOAT_EQ(b[g * 32 + l], a[g * 32 + (31 - l)]);
    }
}

TEST(Sim, AtomicsHistogram)
{
    const char *src =
        "__kernel void hist(__global int* D, __global int* H, int bins) {\n"
        "  int i = get_global_id(0);\n"
        "  atomic_add(&H[D[i] % bins], 1);\n"
        "}\n";
    Context ctx;
    Program prog = ctx.buildProgram(src);
    auto kernel = prog.createKernel("hist");
    const uint64_t n = 256;
    const int bins = 16;
    std::vector<int32_t> d(n);
    std::vector<int32_t> h(bins, 0), expect(bins, 0);
    SplitMix64 rng(4);
    for (auto &v : d) {
        v = rng.nextInt(0, 1000);
        ++expect[static_cast<size_t>(v % bins)];
    }
    Buffer bd = ctx.createBuffer(n * 4);
    Buffer bh = ctx.createBuffer(bins * 4);
    ctx.writeBuffer(bd, d.data(), n * 4);
    ctx.writeBuffer(bh, h.data(), bins * 4);
    kernel.setArg(0, bd);
    kernel.setArg(1, bh);
    kernel.setArg(2, bins);
    ctx.enqueueNDRange(kernel, range1d(n, 64));
    ctx.readBuffer(bh, h.data(), bins * 4);
    for (int b = 0; b < bins; ++b)
        EXPECT_EQ(h[b], expect[b]) << "bin " << b;
}

TEST(Sim, PrivateArrayStencil)
{
    const char *src =
        "__kernel void med3(__global float* A, __global float* B, int n) {\n"
        "  int i = get_global_id(0);\n"
        "  float w[3];\n"
        "  for (int k = 0; k < 3; k++) {\n"
        "    int j = i + k - 1;\n"
        "    if (j < 0) j = 0;\n"
        "    if (j >= n) j = n - 1;\n"
        "    w[k] = A[j];\n"
        "  }\n"
        "  B[i] = fmax(fmin(w[0], w[1]),\n"
        "              fmin(fmax(w[0], w[1]), w[2]));\n"
        "}\n";
    Context ctx;
    Program prog = ctx.buildProgram(src);
    auto kernel = prog.createKernel("med3");
    const uint64_t n = 96;
    std::vector<float> a(n), b(n);
    SplitMix64 rng(5);
    for (auto &v : a)
        v = rng.nextFloat();
    Buffer ba = ctx.createBuffer(n * 4);
    Buffer bb = ctx.createBuffer(n * 4);
    ctx.writeBuffer(ba, a.data(), n * 4);
    kernel.setArg(0, ba);
    kernel.setArg(1, bb);
    kernel.setArg(2, static_cast<int32_t>(n));
    ctx.enqueueNDRange(kernel, range1d(n, 32));
    ctx.readBuffer(bb, b.data(), n * 4);
    for (uint64_t i = 0; i < n; ++i) {
        float w0 = a[i == 0 ? 0 : i - 1];
        float w1 = a[i];
        float w2 = a[i + 1 >= n ? n - 1 : i + 1];
        float expect = std::max(std::min(w0, w1),
                                std::min(std::max(w0, w1), w2));
        EXPECT_FLOAT_EQ(b[i], expect) << "at " << i;
    }
}

TEST(Sim, BreakContinueLoop)
{
    const char *src =
        "__kernel void scan(__global int* A, __global int* R, int n) {\n"
        "  int i = get_global_id(0);\n"
        "  int sum = 0;\n"
        "  for (int k = 0; k < n; k++) {\n"
        "    int v = A[(i + k) % n];\n"
        "    if (v < 0) continue;\n"
        "    if (v > 90) break;\n"
        "    sum += v;\n"
        "  }\n"
        "  R[i] = sum;\n"
        "}\n";
    Context ctx;
    Program prog = ctx.buildProgram(src);
    auto kernel = prog.createKernel("scan");
    const int n = 64;
    std::vector<int32_t> a(static_cast<size_t>(n));
    SplitMix64 rng(6);
    for (auto &v : a)
        v = rng.nextInt(-50, 100);
    Buffer ba = ctx.createBuffer(static_cast<uint64_t>(n) * 4);
    Buffer br = ctx.createBuffer(static_cast<uint64_t>(n) * 4);
    ctx.writeBuffer(ba, a.data(), static_cast<uint64_t>(n) * 4);
    kernel.setArg(0, ba);
    kernel.setArg(1, br);
    kernel.setArg(2, n);
    ctx.enqueueNDRange(kernel, range1d(static_cast<uint64_t>(n), 16));
    std::vector<int32_t> r(static_cast<size_t>(n));
    ctx.readBuffer(br, r.data(), static_cast<uint64_t>(n) * 4);
    for (int i = 0; i < n; ++i) {
        int sum = 0;
        for (int k = 0; k < n; ++k) {
            int v = a[static_cast<size_t>((i + k) % n)];
            if (v < 0)
                continue;
            if (v > 90)
                break;
            sum += v;
        }
        EXPECT_EQ(r[static_cast<size_t>(i)], sum) << "wi " << i;
    }
}

TEST(Sim, EarlyReturn)
{
    const char *src =
        "__kernel void guard(__global int* A, int n) {\n"
        "  int i = get_global_id(0);\n"
        "  if (i >= n) return;\n"
        "  A[i] = A[i] * 2 + 1;\n"
        "}\n";
    Context ctx;
    Program prog = ctx.buildProgram(src);
    auto kernel = prog.createKernel("guard");
    const uint64_t n = 100; // NDRange padded to 128
    std::vector<int32_t> a(128);
    for (size_t i = 0; i < a.size(); ++i)
        a[i] = static_cast<int32_t>(i);
    Buffer ba = ctx.createBuffer(128 * 4);
    ctx.writeBuffer(ba, a.data(), 128 * 4);
    kernel.setArg(0, ba);
    kernel.setArg(1, static_cast<int32_t>(n));
    ctx.enqueueNDRange(kernel, range1d(128, 32));
    std::vector<int32_t> out(128);
    ctx.readBuffer(ba, out.data(), 128 * 4);
    for (size_t i = 0; i < 128; ++i) {
        int32_t expect = i < n ? static_cast<int32_t>(i) * 2 + 1
                               : static_cast<int32_t>(i);
        EXPECT_EQ(out[i], expect) << "at " << i;
    }
}

TEST(Sim, BarrierInUniformLoop)
{
    // The paper's running example shape (Fig. 4): a barrier inside a
    // uniform-trip-count loop -> SWGR glues (§IV-F1, Fig. 8(d)).
    const char *src =
        "__kernel void smooth(__global float* A, __global float* B,\n"
        "                     int iters) {\n"
        "  __local float tile[16];\n"
        "  int l = get_local_id(0);\n"
        "  int g = get_global_id(0);\n"
        "  tile[l] = A[g];\n"
        "  for (int t = 0; t < iters; t++) {\n"
        "    barrier(CLK_LOCAL_MEM_FENCE);\n"
        "    float left = tile[l == 0 ? 0 : l - 1];\n"
        "    float right = tile[l == 15 ? 15 : l + 1];\n"
        "    barrier(CLK_LOCAL_MEM_FENCE);\n"
        "    tile[l] = 0.5f * tile[l] + 0.25f * (left + right);\n"
        "  }\n"
        "  barrier(CLK_LOCAL_MEM_FENCE);\n"
        "  B[g] = tile[l];\n"
        "}\n";
    const uint64_t n = 64;
    std::vector<float> a(n);
    SplitMix64 rng(7);
    for (auto &v : a)
        v = rng.nextFloat();

    std::vector<float> sim_out(n), ref_out(n);
    for (int mode = 0; mode < 2; ++mode) {
        Context ctx;
        Program prog = ctx.buildProgram(src);
        auto kernel = prog.createKernel("smooth");
        Buffer ba = ctx.createBuffer(n * 4);
        Buffer bb = ctx.createBuffer(n * 4);
        ctx.writeBuffer(ba, a.data(), n * 4);
        kernel.setArg(0, ba);
        kernel.setArg(1, bb);
        kernel.setArg(2, int32_t{3});
        ctx.enqueueNDRange(kernel, range1d(n, 16),
                           mode == 0 ? ExecutionMode::Simulate
                                     : ExecutionMode::Reference);
        ctx.readBuffer(bb, (mode == 0 ? sim_out : ref_out).data(), n * 4);
    }
    for (uint64_t i = 0; i < n; ++i)
        EXPECT_FLOAT_EQ(sim_out[i], ref_out[i]) << "at " << i;
}

} // namespace
} // namespace soff
