/** @file Unit tests for the transformation passes: inlining, mem2reg,
 *  return unification, barrier splitting, simplify. */
#include <gtest/gtest.h>

#include "frontend/irgen.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "support/error.hpp"
#include "transform/passes.hpp"

namespace soff::transform
{
namespace
{

std::unique_ptr<ir::Module>
compileAndLower(const std::string &src)
{
    auto module = fe::compileToIR(src, "test");
    runStandardPipeline(*module);
    auto errors = ir::verifyModule(*module);
    EXPECT_TRUE(errors.empty())
        << (errors.empty() ? "" : errors[0]) << "\n"
        << ir::printModule(*module);
    return module;
}

bool
containsOpcode(const ir::Kernel &k, ir::Opcode op)
{
    for (const auto &bb : k.blocks()) {
        for (const auto &inst : bb->instructions()) {
            if (inst->op() == op)
                return true;
        }
    }
    return false;
}

TEST(Inliner, RemovesCallsAndHelpers)
{
    auto m = compileAndLower(
        "float square(float x) { return x * x; }\n"
        "float quad(float x) { return square(x) * square(x); }\n"
        "__kernel void f(__global float* A) {\n"
        "  int i = get_global_id(0);\n"
        "  A[i] = quad(A[i]);\n"
        "}");
    EXPECT_EQ(m->numKernels(), 1u);
    EXPECT_FALSE(containsOpcode(*m->kernel(0), ir::Opcode::Call));
}

TEST(Inliner, MultiReturnCalleeGetsPhi)
{
    auto m = compileAndLower(
        "int pick(int a, int b) { if (a > b) return a; return b; }\n"
        "__kernel void f(__global int* A) {\n"
        "  int i = get_global_id(0);\n"
        "  A[i] = pick(A[i], i);\n"
        "}");
    EXPECT_FALSE(containsOpcode(*m->kernel(0), ir::Opcode::Call));
}

TEST(Inliner, RecursionRejected)
{
    auto module = fe::compileToIR(
        "int f(int x) { return x <= 1 ? 1 : f(x - 1); }\n"
        "__kernel void k(__global int* A) { A[0] = f(A[1]); }",
        "test");
    EXPECT_THROW(runStandardPipeline(*module), CompileError);
}

TEST(Mem2Reg, EliminatesAllSlots)
{
    auto m = compileAndLower(
        "__kernel void f(__global float* A, int n) {\n"
        "  int i = get_global_id(0);\n"
        "  float acc = 0.0f;\n"
        "  for (int k = 0; k < n; k++) acc += A[k];\n"
        "  A[i] = acc;\n"
        "}");
    ir::Kernel &k = *m->kernel(0);
    EXPECT_EQ(k.numSlots(), 0u);
    EXPECT_FALSE(containsOpcode(k, ir::Opcode::SlotLoad));
    EXPECT_FALSE(containsOpcode(k, ir::Opcode::SlotStore));
    EXPECT_TRUE(containsOpcode(k, ir::Opcode::Phi));
}

TEST(Mem2Reg, PromotesWholeArraysToSSAValues)
{
    auto m = compileAndLower(
        "__kernel void f(__global float* A) {\n"
        "  float window[3];\n"
        "  int i = get_global_id(0);\n"
        "  for (int k = 0; k < 3; k++) window[k] = A[i + k];\n"
        "  A[i] = window[0] + window[1] + window[2];\n"
        "}");
    ir::Kernel &k = *m->kernel(0);
    EXPECT_EQ(k.numSlots(), 0u);
    EXPECT_TRUE(containsOpcode(k, ir::Opcode::ArrayInsert));
    EXPECT_TRUE(containsOpcode(k, ir::Opcode::ArrayExtract));
}

TEST(UnifyReturns, SingleExitBlock)
{
    auto m = compileAndLower(
        "__kernel void f(__global int* A, int n) {\n"
        "  int i = get_global_id(0);\n"
        "  if (i >= n) return;\n"
        "  A[i] = i;\n"
        "}");
    int rets = 0;
    for (const auto &bb : m->kernel(0)->blocks()) {
        for (const auto &inst : bb->instructions()) {
            if (inst->op() == ir::Opcode::Ret)
                ++rets;
        }
    }
    EXPECT_EQ(rets, 1);
}

TEST(SplitBarriers, BarrierAloneInBlock)
{
    auto m = compileAndLower(
        "__kernel void f(__global float* A) {\n"
        "  __local float t[8];\n"
        "  int l = get_local_id(0);\n"
        "  t[l] = A[l];\n"
        "  barrier(CLK_LOCAL_MEM_FENCE);\n"
        "  A[l] = t[7 - l];\n"
        "}");
    for (const auto &bb : m->kernel(0)->blocks()) {
        for (size_t i = 0; i < bb->size(); ++i) {
            if (bb->inst(i)->op() != ir::Opcode::Barrier)
                continue;
            EXPECT_EQ(i, 0u) << "barrier must lead its block";
            EXPECT_EQ(bb->size(), 2u) << "barrier + Br only";
            EXPECT_EQ(bb->inst(1)->op(), ir::Opcode::Br);
        }
    }
}

TEST(Simplify, FoldsConstants)
{
    auto m = compileAndLower(
        "__kernel void f(__global int* A) {\n"
        "  A[0] = (3 + 4) * 2 - 14;\n"
        "}");
    // (3+4)*2-14 == 0: the arithmetic should be folded away entirely.
    ir::Kernel &k = *m->kernel(0);
    EXPECT_FALSE(containsOpcode(k, ir::Opcode::Mul));
    EXPECT_FALSE(containsOpcode(k, ir::Opcode::Sub));
}

TEST(Simplify, RemovesDeadBranches)
{
    auto m = compileAndLower(
        "__kernel void f(__global int* A) {\n"
        "  int i = get_global_id(0);\n"
        "  if (0) { A[i] = 1; } else { A[i] = 2; }\n"
        "}");
    // Only the else path survives; at most 2 blocks (often 1).
    EXPECT_LE(m->kernel(0)->numBlocks(), 2u);
}

TEST(Simplify, MergesStraightLineBlocks)
{
    auto m = compileAndLower(
        "__kernel void f(__global int* A) {\n"
        "  int i = get_global_id(0);\n"
        "  int a = A[i];\n"
        "  int b = a + 1;\n"
        "  A[i] = b;\n"
        "}");
    EXPECT_EQ(m->kernel(0)->numBlocks(), 1u);
}

TEST(Pipeline, LoopKernelIsWellFormed)
{
    auto m = compileAndLower(
        "__kernel void f(__global float* A, __global float* B, int C,\n"
        "                int D) {\n"
        "  int x, y; float t = 0;\n"
        "  y = get_global_id(0) * D;\n"
        "  for (x = C; x < C + 100; x++) {\n"
        "    A[y] = B[x + y]; y = y + 1;\n"
        "    barrier(CLK_GLOBAL_MEM_FENCE);\n"
        "    if (y >= D)\n"
        "      t += A[y] * A[y - D];\n"
        "  }\n"
        "  B[y] = A[y]; A[y + C] = t;\n"
        "}");
    // The paper's running example (Fig. 4) must survive the pipeline.
    ir::Kernel &k = *m->kernel(0);
    EXPECT_TRUE(containsOpcode(k, ir::Opcode::Barrier));
    EXPECT_TRUE(containsOpcode(k, ir::Opcode::Phi));
    EXPECT_EQ(k.numSlots(), 0u);
}

TEST(Pipeline, BreakAndContinue)
{
    auto m = compileAndLower(
        "__kernel void f(__global int* A, int n) {\n"
        "  int i = get_global_id(0);\n"
        "  int sum = 0;\n"
        "  for (int k = 0; k < n; k++) {\n"
        "    if (A[k] < 0) continue;\n"
        "    if (A[k] == 999) break;\n"
        "    sum += A[k];\n"
        "  }\n"
        "  A[i] = sum;\n"
        "}");
    EXPECT_EQ(m->kernel(0)->numSlots(), 0u);
}

} // namespace
} // namespace soff::transform
