/**
 * @file
 * Multi-tenant launch engine soak tests: a mixed sequence of launches
 * across six kernels pushed through an out-of-order CommandQueue at
 * several worker counts must be *bit-identical* to the same sequence
 * run serially through Context::enqueueNDRange — per-launch output
 * bytes, full architectural StatsReports, and profiling timestamps.
 *
 * The sequences pre-allocate every buffer up-front, in the same order
 * in every context, so buffer addresses (which cycle counts observe
 * through cache indexing) are identical across runs; each launch owns
 * its buffers, so launches are independent and the out-of-order queue
 * may overlap them freely.
 */
#include <array>
#include <cstring>
#include <thread>

#include <gtest/gtest.h>

#include "runtime/runtime.hpp"
#include "sim/stats.hpp"
#include "support/error.hpp"

namespace soff::rt
{
namespace
{

const char *kSoakKernels = R"CL(
__kernel void vadd(__global float* A, __global float* B,
                   __global float* C) {
  int g = get_global_id(0);
  C[g] = A[g] + B[g];
}
__kernel void saxpy(__global float* X, __global float* Y, float a) {
  int g = get_global_id(0);
  Y[g] = a * X[g] + Y[g];
}
__kernel void smooth(__global float* A, __global float* B, int iters) {
  __local float tile[16];
  int l = get_local_id(0);
  int g = get_global_id(0);
  tile[l] = A[g];
  for (int t = 0; t < iters; t++) {
    barrier(CLK_LOCAL_MEM_FENCE);
    float left = tile[l == 0 ? 0 : l - 1];
    float right = tile[l == 15 ? 15 : l + 1];
    barrier(CLK_LOCAL_MEM_FENCE);
    tile[l] = 0.5f * tile[l] + 0.25f * (left + right);
  }
  B[g] = tile[l];
}
__kernel void histo(__global int* A, __global int* H) {
  int g = get_global_id(0);
  atomic_add(&H[A[g] & 15], 1);
}
__kernel void stencil(__global float* A, __global float* C, int n) {
  int g = get_global_id(0);
  float left = g == 0 ? A[0] : A[g - 1];
  float right = g == n - 1 ? A[n - 1] : A[g + 1];
  C[g] = 0.25f * left + 0.5f * A[g] + 0.25f * right;
}
__kernel void reduce(__global float* A, __global float* R, int lsz) {
  __local float sc[32];
  int l = get_local_id(0);
  sc[l] = A[get_global_id(0)];
  barrier(CLK_LOCAL_MEM_FENCE);
  if (l == 0) {
    float s = 0.0f;
    for (int i = 0; i < lsz; i++) s += sc[i];
    R[get_group_id(0)] = s;
  }
}
)CL";

constexpr int kNumApps = 6;
const char *kAppNames[kNumApps] = {"vadd",  "saxpy",   "smooth",
                                   "histo", "stencil", "reduce"};

/** One launch of the soak: which kernel, what shape, what scalar. */
struct LaunchSpec
{
    int app = 0;
    uint32_t n = 0;     ///< Global size.
    uint32_t local = 0; ///< Work-group size.
    int32_t scalar = 0; ///< iters / a / lsz, app-dependent.
    bool chained = false; ///< Waits on the previous launch's event.
};

/** Deterministic mixed workload (LCG; no RNG state shared with sim). */
std::vector<LaunchSpec>
makeSoak(size_t count)
{
    std::vector<LaunchSpec> specs;
    specs.reserve(count);
    uint64_t s = 0x5deece66dull;
    auto next = [&s](uint64_t range) {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return (s >> 33) % range;
    };
    const uint32_t sizes[3] = {16, 32, 64};
    for (size_t i = 0; i < count; ++i) {
        LaunchSpec spec;
        spec.app = static_cast<int>(next(kNumApps));
        spec.n = sizes[next(3)];
        switch (spec.app) {
          case 2: // smooth: __local float tile[16]
            spec.local = 16;
            spec.scalar = static_cast<int32_t>(1 + next(3));
            break;
          case 5: // reduce: __local float sc[32]
            spec.local = spec.n >= 32 ? 32 : 16;
            spec.scalar = static_cast<int32_t>(spec.local);
            break;
          default:
            spec.local = spec.n >= 32 ? 16 : 8;
            spec.scalar = static_cast<int32_t>(1 + next(5));
            break;
        }
        spec.chained = i % 10 == 9;
        specs.push_back(spec);
    }
    return specs;
}

/** Host-side input generators (same values in every run). */
float
inputA(size_t launch, uint32_t i)
{
    return static_cast<float>((launch * 7 + i) % 13) * 0.5f;
}

float
inputB(size_t launch, uint32_t i)
{
    return static_cast<float>((launch * 3 + i) % 9) * 0.25f;
}

/** Expected output bytes of one launch, computed on the host with the
 *  same single-precision operations the kernel performs. */
std::vector<uint8_t>
oracle(const LaunchSpec &spec, size_t launch)
{
    uint32_t n = spec.n;
    std::vector<float> a(n), b(n);
    for (uint32_t i = 0; i < n; ++i) {
        a[i] = inputA(launch, i);
        b[i] = inputB(launch, i);
    }
    std::vector<float> out;
    switch (spec.app) {
      case 0: // vadd
        out.resize(n);
        for (uint32_t i = 0; i < n; ++i)
            out[i] = a[i] + b[i];
        break;
      case 1: // saxpy: Y in/out
        out = b;
        for (uint32_t i = 0; i < n; ++i)
            out[i] = static_cast<float>(spec.scalar) * a[i] + out[i];
        break;
      case 2: { // smooth, per group of 16
        out = a;
        for (uint32_t base = 0; base < n; base += 16) {
            for (int t = 0; t < spec.scalar; ++t) {
                std::array<float, 16> old{};
                for (uint32_t l = 0; l < 16; ++l)
                    old[l] = out[base + l];
                for (uint32_t l = 0; l < 16; ++l) {
                    float left = old[l == 0 ? 0 : l - 1];
                    float right = old[l == 15 ? 15 : l + 1];
                    out[base + l] =
                        0.5f * old[l] + 0.25f * (left + right);
                }
            }
        }
        break;
      }
      case 3: { // histo: 16 int bins
        std::vector<int32_t> bins(16, 0);
        for (uint32_t i = 0; i < n; ++i) {
            int32_t v = static_cast<int32_t>((launch * 7 + i) % 13);
            ++bins[v & 15];
        }
        std::vector<uint8_t> bytes(bins.size() * 4);
        std::memcpy(bytes.data(), bins.data(), bytes.size());
        return bytes;
      }
      case 4: // stencil
        out.resize(n);
        for (uint32_t i = 0; i < n; ++i) {
            float left = i == 0 ? a[0] : a[i - 1];
            float right = i == n - 1 ? a[n - 1] : a[i + 1];
            out[i] = 0.25f * left + 0.5f * a[i] + 0.25f * right;
        }
        break;
      case 5: { // reduce: one sum per group
        uint32_t groups = n / spec.local;
        out.resize(groups);
        for (uint32_t grp = 0; grp < groups; ++grp) {
            float sum = 0.0f;
            for (uint32_t l = 0; l < spec.local; ++l)
                sum += a[grp * spec.local + l];
            out[grp] = sum;
        }
        break;
      }
    }
    std::vector<uint8_t> bytes(out.size() * 4);
    std::memcpy(bytes.data(), out.data(), bytes.size());
    return bytes;
}

/** Per-launch buffers; allocated in spec order in every context so
 *  device addresses are identical across runs. */
struct LaunchBuffers
{
    Buffer in0, in1, out;
    uint64_t outBytes = 0;
};

std::vector<LaunchBuffers>
setupBuffers(Context &ctx, const std::vector<LaunchSpec> &specs)
{
    std::vector<LaunchBuffers> buffers;
    buffers.reserve(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        const LaunchSpec &spec = specs[i];
        uint32_t n = spec.n;
        LaunchBuffers lb;
        std::vector<float> a(n), b(n);
        for (uint32_t j = 0; j < n; ++j) {
            a[j] = inputA(i, j);
            b[j] = inputB(i, j);
        }
        switch (spec.app) {
          case 0: // vadd(A, B, C)
            lb.in0 = ctx.createBuffer(n * 4);
            lb.in1 = ctx.createBuffer(n * 4);
            lb.out = ctx.createBuffer(n * 4);
            ctx.writeBuffer(lb.in0, a.data(), n * 4);
            ctx.writeBuffer(lb.in1, b.data(), n * 4);
            lb.outBytes = n * 4;
            break;
          case 1: // saxpy(X, Y=out, a)
            lb.in0 = ctx.createBuffer(n * 4);
            lb.out = ctx.createBuffer(n * 4);
            ctx.writeBuffer(lb.in0, a.data(), n * 4);
            ctx.writeBuffer(lb.out, b.data(), n * 4);
            lb.outBytes = n * 4;
            break;
          case 2: // smooth(A, B=out, iters)
          case 4: // stencil(A, C=out, n)
            lb.in0 = ctx.createBuffer(n * 4);
            lb.out = ctx.createBuffer(n * 4);
            ctx.writeBuffer(lb.in0, a.data(), n * 4);
            lb.outBytes = n * 4;
            break;
          case 3: { // histo(A, H=out): zeroed 16-bin histogram
            std::vector<int32_t> vals(n);
            for (uint32_t j = 0; j < n; ++j)
                vals[j] = static_cast<int32_t>((i * 7 + j) % 13);
            std::vector<int32_t> zeros(16, 0);
            lb.in0 = ctx.createBuffer(n * 4);
            lb.out = ctx.createBuffer(16 * 4);
            ctx.writeBuffer(lb.in0, vals.data(), n * 4);
            ctx.writeBuffer(lb.out, zeros.data(), 16 * 4);
            lb.outBytes = 16 * 4;
            break;
          }
          case 5: // reduce(A, R=out, lsz)
            lb.in0 = ctx.createBuffer(n * 4);
            lb.out = ctx.createBuffer(n / spec.local * 4);
            ctx.writeBuffer(lb.in0, a.data(), n * 4);
            lb.outBytes = n / spec.local * 4;
            break;
        }
        buffers.push_back(lb);
    }
    return buffers;
}

/** Binds one launch's args and shapes its NDRange. */
sim::NDRange
bindLaunch(const LaunchSpec &spec, const LaunchBuffers &lb,
           KernelHandle &kernel)
{
    switch (spec.app) {
      case 0:
        kernel.setArg(0, lb.in0);
        kernel.setArg(1, lb.in1);
        kernel.setArg(2, lb.out);
        break;
      case 1:
        kernel.setArg(0, lb.in0);
        kernel.setArg(1, lb.out);
        kernel.setArg(2, static_cast<float>(spec.scalar));
        break;
      case 3:
        kernel.setArg(0, lb.in0);
        kernel.setArg(1, lb.out);
        break;
      case 4:
        kernel.setArg(0, lb.in0);
        kernel.setArg(1, lb.out);
        kernel.setArg(2, static_cast<int32_t>(spec.n));
        break;
      default: // smooth / reduce
        kernel.setArg(0, lb.in0);
        kernel.setArg(1, lb.out);
        kernel.setArg(2, spec.scalar);
        break;
    }
    sim::NDRange nd;
    nd.globalSize[0] = spec.n;
    nd.localSize[0] = spec.local;
    return nd;
}

/** Everything observable about one soak run. */
struct SoakOutcome
{
    std::vector<std::vector<uint8_t>> outputs;
    std::vector<std::shared_ptr<const sim::StatsReport>> stats;
    std::vector<std::array<uint64_t, 4>> stamps;
};

SoakOutcome
runSerial(const std::vector<LaunchSpec> &specs)
{
    Context ctx;
    Program program = ctx.buildProgram(kSoakKernels);
    std::vector<KernelHandle> kernels;
    for (const char *name : kAppNames)
        kernels.push_back(program.createKernel(name));
    std::vector<LaunchBuffers> buffers = setupBuffers(ctx, specs);
    SoakOutcome outcome;
    for (size_t i = 0; i < specs.size(); ++i) {
        KernelHandle &kernel =
            kernels[static_cast<size_t>(specs[i].app)];
        sim::NDRange nd = bindLaunch(specs[i], buffers[i], kernel);
        Event event;
        ctx.enqueueNDRange(kernel, nd, ExecutionMode::Simulate, {}, 0,
                           &event);
        std::vector<uint8_t> out(buffers[i].outBytes);
        ctx.readBuffer(buffers[i].out, out.data(), out.size());
        outcome.outputs.push_back(std::move(out));
        outcome.stats.push_back(event.stats());
        outcome.stamps.push_back({event.queuedNs(), event.submitNs(),
                                  event.startNs(), event.endNs()});
    }
    return outcome;
}

SoakOutcome
runQueued(const std::vector<LaunchSpec> &specs, int workers)
{
    Context ctx;
    Program program = ctx.buildProgram(kSoakKernels);
    std::vector<KernelHandle> kernels;
    for (const char *name : kAppNames)
        kernels.push_back(program.createKernel(name));
    std::vector<LaunchBuffers> buffers = setupBuffers(ctx, specs);
    CommandQueue queue(ctx, {.outOfOrder = true, .workers = workers});
    std::vector<Event> events(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        KernelHandle &kernel =
            kernels[static_cast<size_t>(specs[i].app)];
        sim::NDRange nd = bindLaunch(specs[i], buffers[i], kernel);
        std::vector<Event> waits;
        if (specs[i].chained && i > 0)
            waits.push_back(events[i - 1]); // Exercise the DAG.
        queue.enqueueNDRange(kernel, nd, waits, &events[i]);
    }
    queue.finish();
    SoakOutcome outcome;
    for (size_t i = 0; i < specs.size(); ++i) {
        std::vector<uint8_t> out(buffers[i].outBytes);
        ctx.readBuffer(buffers[i].out, out.data(), out.size());
        outcome.outputs.push_back(std::move(out));
        outcome.stats.push_back(events[i].stats());
        outcome.stamps.push_back(
            {events[i].queuedNs(), events[i].submitNs(),
             events[i].startNs(), events[i].endNs()});
    }
    return outcome;
}

/** Queued run vs the serial baseline: bit-identical, launch by launch. */
void
expectIdentical(const std::vector<LaunchSpec> &specs,
                const SoakOutcome &serial, const SoakOutcome &queued,
                int workers)
{
    ASSERT_EQ(serial.outputs.size(), queued.outputs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(testing::Message()
                     << "launch " << i << " ("
                     << kAppNames[specs[i].app] << ", n=" << specs[i].n
                     << ") at " << workers << " worker(s)");
        EXPECT_EQ(serial.outputs[i], queued.outputs[i])
            << "output bytes differ from serial execution";
        ASSERT_NE(serial.stats[i], nullptr);
        ASSERT_NE(queued.stats[i], nullptr);
        EXPECT_EQ(
            sim::diffStatsReports(*serial.stats[i], *queued.stats[i]),
            "")
            << "architectural counters differ from serial execution";
        EXPECT_EQ(serial.stamps[i], queued.stamps[i])
            << "profiling timeline differs from serial execution";
    }
}

TEST(LaunchSoak, DeterministicAcrossWorkerCounts)
{
    // The headline determinism contract: a 1000-launch mixed soak
    // (six apps, varying NDRanges, every tenth launch event-chained)
    // through an out-of-order queue is bit-identical to serial
    // in-order execution at 1, 2, and hardware_concurrency workers.
    std::vector<LaunchSpec> specs = makeSoak(1000);
    SoakOutcome serial = runSerial(specs);
    // The serial baseline itself must match the host oracle.
    for (size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(testing::Message() << "launch " << i);
        EXPECT_EQ(serial.outputs[i], oracle(specs[i], i));
    }
    int hw = std::max(1u, std::thread::hardware_concurrency());
    for (int workers : {1, 2, hw}) {
        SoakOutcome queued = runQueued(specs, workers);
        expectIdentical(specs, serial, queued, workers);
    }
}

TEST(LaunchSoak, ConcurrentStress)
{
    // Smaller, hostile soak for the ThreadSanitizer CI leg: several
    // queues over one context, DMA commands racing launches, user
    // events, implicit in-order chains. Verified against the oracle.
    std::vector<LaunchSpec> specs = makeSoak(120);
    Context ctx;
    Program program = ctx.buildProgram(kSoakKernels);
    std::vector<KernelHandle> kernels;
    for (const char *name : kAppNames)
        kernels.push_back(program.createKernel(name));
    std::vector<LaunchBuffers> buffers = setupBuffers(ctx, specs);
    // 240 commands are enqueued before the gate opens; the admission
    // bound must clear them all or the enqueue loop would block on
    // commands that cannot retire until the gate completes.
    CommandQueue ooo(ctx, {.outOfOrder = true, .workers = 4,
                           .maxInFlight = 256});
    CommandQueue inorder(ctx);
    Event gate = ctx.createUserEvent();
    std::vector<Event> events(specs.size());
    std::vector<std::vector<uint8_t>> outputs(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        KernelHandle &kernel =
            kernels[static_cast<size_t>(specs[i].app)];
        sim::NDRange nd = bindLaunch(specs[i], buffers[i], kernel);
        CommandQueue &queue = i % 3 == 0 ? inorder : ooo;
        std::vector<Event> waits;
        if (i % 17 == 0)
            waits.push_back(gate); // Held back until released below.
        if (specs[i].chained && i > 0)
            waits.push_back(events[i - 1]);
        queue.enqueueNDRange(kernel, nd, waits, &events[i]);
        // Read back through the queue, ordered on the launch's event.
        outputs[i].resize(buffers[i].outBytes);
        queue.enqueueRead(buffers[i].out, outputs[i].data(),
                          outputs[i].size(), {events[i]});
    }
    gate.setComplete();
    ooo.finish();
    inorder.finish();
    for (size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(testing::Message() << "launch " << i);
        EXPECT_EQ(outputs[i], oracle(specs[i], i));
    }
}

} // namespace
} // namespace soff::rt
