/** @file Observability-layer tests: the architectural StatsReport must
 *  be bit-identical across all three scheduler modes and worker-thread
 *  counts, the Chrome trace export must be structurally valid
 *  trace-event JSON, the SOFF_STATS export must parse, event profiling
 *  timestamps must be monotonic, and the SOFF_TRACE window grammar must
 *  reject malformed values. */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "benchsuite/suite.hpp"
#include "runtime/runtime.hpp"
#include "sim/stats.hpp"

namespace soff
{
namespace
{

/** Sets (or clears, when value is nullptr) an environment variable for
 *  the current scope and restores the previous state on destruction. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        if (value != nullptr)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_)
            setenv(name_.c_str(), old_.c_str(), 1);
        else
            unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string old_;
    bool had_ = false;
};

/** Removes a file on scope exit (exports written by the tests). */
class ScopedFile
{
  public:
    explicit ScopedFile(std::string path) : path_(std::move(path)) {}
    ~ScopedFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }
    bool
    exists() const
    {
        std::ifstream in(path_);
        return in.good();
    }
    std::string
    contents() const
    {
        std::ifstream in(path_);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        return buffer.str();
    }

  private:
    std::string path_;
};

/**
 * Minimal recursive-descent JSON syntax checker — enough of RFC 8259
 * to verify our own exports end-to-end (structure, nesting, string
 * escapes, numbers) without depending on an external parser.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool
    valid()
    {
        pos_ = 0;
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // control chars must be escaped
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
                char esc = text_[pos_];
                if (esc == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= text_.size() ||
                            !isxdigit(static_cast<unsigned char>(
                                text_[pos_])))
                            return false;
                    }
                } else if (std::string("\"\\/bfnrt").find(esc) ==
                           std::string::npos) {
                    return false;
                }
            }
            ++pos_;
        }
        return false; // unterminated
    }

    bool
    number()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!digits())
            return false;
        if (peek() == '.') {
            ++pos_;
            if (!digits())
                return false;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!digits())
                return false;
        }
        return pos_ > start;
    }

    bool
    digits()
    {
        size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] >= '0' &&
               text_[pos_] <= '9')
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    const std::string &text_;
    size_t pos_ = 0;
};

sim::NDRange
range1d(uint64_t global, uint64_t local)
{
    sim::NDRange nd;
    nd.globalSize[0] = global;
    nd.localSize[0] = local;
    return nd;
}

/** A small kernel with global loads and stores so the memory counters
 *  and channel occupancy tracks are all exercised. */
constexpr const char *kSmallSrc =
    "__kernel void t(__global int *X, __global int *Y) {\n"
    "  int i = get_global_id(0);\n"
    "  Y[i] = X[i] + X[(i + 1) % get_global_size(0)];\n"
    "}\n";

rt::LaunchResult
launchSmall(const sim::PlatformConfig &platform, rt::Event *event = nullptr,
            rt::Context *reuse = nullptr)
{
    rt::Context local_ctx;
    rt::Context &ctx = reuse != nullptr ? *reuse : local_ctx;
    rt::Program program = ctx.buildProgram(kSmallSrc);
    rt::KernelHandle kernel = program.createKernel("t");
    rt::Buffer x = ctx.createBuffer(64 * 4);
    rt::Buffer y = ctx.createBuffer(64 * 4);
    std::vector<int32_t> init(64, 3);
    ctx.writeBuffer(x, init.data(), 64 * 4);
    kernel.setArg(0, x);
    kernel.setArg(1, y);
    return ctx.enqueueNDRange(kernel, range1d(64, 16),
                              rt::ExecutionMode::Simulate, platform, 0,
                              event);
}

// --- StatsReport bit-identity across schedulers ------------------------

/** 1, 2, and hardware_concurrency() parallel workers, deduplicated. */
std::vector<int>
threadCounts()
{
    std::vector<int> counts = {
        1, 2, static_cast<int>(std::thread::hardware_concurrency())};
    std::sort(counts.begin(), counts.end());
    counts.erase(std::unique(counts.begin(), counts.end()),
                 counts.end());
    counts.erase(std::remove_if(counts.begin(), counts.end(),
                                [](int c) { return c < 1; }),
                 counts.end());
    return counts;
}

/** The first N runnable applications of Table II (IR apps excluded). */
std::vector<std::string>
statsAppNames()
{
    std::vector<std::string> names;
    for (const benchsuite::App &app : benchsuite::allApps()) {
        if (app.expectInsufficientResources)
            continue;
        names.push_back(app.name);
        if (names.size() == 10)
            break;
    }
    return names;
}

std::vector<std::shared_ptr<const sim::StatsReport>>
runForStats(const benchsuite::App &app, sim::SchedulerMode mode,
            int threads)
{
    benchsuite::BenchContext ctx(benchsuite::Engine::SoffSim);
    sim::PlatformConfig platform;
    platform.scheduler = mode;
    platform.threads = threads;
    ctx.setPlatformConfig(platform);
    EXPECT_TRUE(benchsuite::runApp(app, ctx)) << app.name;
    return ctx.metrics().statsReports;
}

/** Every architectural counter — per-component busy/stall cycles and
 *  token counts, channel high-water marks, cache/DRAM/local counters,
 *  per-datapath retirement timing — must be bit-identical whichever
 *  simulation kernel produced it, at any worker-thread count. */
class StatsIdentity : public ::testing::TestWithParam<std::string>
{};

TEST_P(StatsIdentity, BitIdenticalAcrossSchedulersAndThreads)
{
    const benchsuite::App *app = benchsuite::findApp(GetParam());
    ASSERT_NE(app, nullptr);

    auto reference =
        runForStats(*app, sim::SchedulerMode::Reference, 0);
    ASSERT_FALSE(reference.empty()) << "no launches recorded";

    std::vector<std::pair<std::string, std::vector<
        std::shared_ptr<const sim::StatsReport>>>> others;
    others.emplace_back(
        "event-driven",
        runForStats(*app, sim::SchedulerMode::EventDriven, 0));
    for (int threads : threadCounts()) {
        others.emplace_back(
            "parallel x" + std::to_string(threads),
            runForStats(*app, sim::SchedulerMode::Parallel, threads));
    }

    for (const auto &[label, reports] : others) {
        ASSERT_EQ(reports.size(), reference.size()) << label;
        for (size_t i = 0; i < reports.size(); ++i) {
            ASSERT_NE(reports[i], nullptr) << label;
            EXPECT_EQ(sim::diffStatsReports(*reference[i], *reports[i]),
                      "")
                << app->name << " launch " << i << " vs " << label;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Apps, StatsIdentity, ::testing::ValuesIn(statsAppNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

// --- StatsReport contents ----------------------------------------------

TEST(StatsReport, AttachedToLaunchResultWithSaneCounters)
{
    ScopedEnv sched("SOFF_SCHEDULER", nullptr);
    ScopedEnv trace("SOFF_TRACE", nullptr);
    ScopedEnv stats("SOFF_STATS", nullptr);
    rt::LaunchResult result = launchSmall({});
    ASSERT_NE(result.statsReport, nullptr);
    const sim::StatsReport &report = *result.statsReport;
    EXPECT_EQ(report.cycles, result.cycles);
    EXPECT_GT(report.busyCycles, 0u);
    EXPECT_FALSE(report.components.empty());
    EXPECT_FALSE(report.channels.empty());
    // The coarse CircuitStats rollup and the full report must agree.
    EXPECT_EQ(report.cacheHits, result.stats.cacheHits);
    EXPECT_EQ(report.cacheMisses, result.stats.cacheMisses);
    EXPECT_EQ(report.dramTransfers, result.stats.dramTransfers);
    EXPECT_GT(report.cacheHits + report.cacheMisses, 0u)
        << "the kernel loads global memory";
    EXPECT_GT(report.dramBytes, 0u);
    // busy + stalled <= cycles, per component (idle is the remainder).
    for (const sim::ComponentStats &c : report.components) {
        EXPECT_LE(c.busy + c.stalled, report.cycles) << c.name;
    }
    // Every retirement terminal retired work; II is finite.
    ASSERT_FALSE(report.datapaths.empty());
    uint64_t retired = 0;
    for (const sim::DatapathStats &dp : report.datapaths) {
        retired += dp.retired;
        if (dp.retired > 0) {
            EXPECT_LE(dp.firstRetire, dp.lastRetire);
            EXPECT_LT(dp.lastRetire, report.cycles);
        }
    }
    EXPECT_EQ(retired, 64u) << "all work-items retire exactly once";
}

// --- Chrome trace export -----------------------------------------------

TEST(TraceExport, ValidTraceEventJson)
{
    ScopedEnv sched("SOFF_SCHEDULER", nullptr);
    ScopedEnv trace_env("SOFF_TRACE", nullptr);
    ScopedEnv stats_env("SOFF_STATS", nullptr);
    ScopedFile file("stats_test_trace.json");
    sim::PlatformConfig platform;
    platform.tracePath = file.path();
    launchSmall(platform);
    ASSERT_TRUE(file.exists());
    std::string text = file.contents();
    JsonChecker checker(text);
    EXPECT_TRUE(checker.valid()) << "trace must be well-formed JSON";
    // Structural spot checks: the trace-event envelope, thread-name
    // metadata records, complete-event activity spans, and channel
    // occupancy counter records.
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\": \"M\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\": \"C\""), std::string::npos);
    EXPECT_NE(text.find("\"occupancy\""), std::string::npos);
    EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
}

TEST(TraceExport, CycleWindowReducesEventCount)
{
    ScopedEnv sched("SOFF_SCHEDULER", nullptr);
    ScopedEnv trace_env("SOFF_TRACE", nullptr);
    ScopedEnv stats_env("SOFF_STATS", nullptr);
    ScopedFile full("stats_test_trace_full.json");
    ScopedFile windowed("stats_test_trace_window.json");
    sim::PlatformConfig platform;
    platform.tracePath = full.path();
    launchSmall(platform);
    platform.tracePath = windowed.path();
    platform.traceStart = 0;
    platform.traceEnd = 20;
    launchSmall(platform);
    ASSERT_TRUE(full.exists());
    ASSERT_TRUE(windowed.exists());
    std::string windowed_text = windowed.contents();
    EXPECT_TRUE(JsonChecker(windowed_text).valid());
    EXPECT_LT(windowed_text.size(), full.contents().size())
        << "a 20-cycle window must record less than the full run";
}

// --- SOFF_STATS / SOFF_TRACE export through the environment ------------

TEST(StatsExport, ValidStructuredJson)
{
    ScopedEnv sched("SOFF_SCHEDULER", nullptr);
    ScopedEnv trace_env("SOFF_TRACE", nullptr);
    ScopedEnv stats_env("SOFF_STATS", nullptr);
    ScopedFile file("stats_test_stats.json");
    sim::PlatformConfig platform;
    platform.statsPath = file.path();
    launchSmall(platform);
    ASSERT_TRUE(file.exists());
    std::string text = file.contents();
    EXPECT_TRUE(JsonChecker(text).valid())
        << "stats export must be well-formed JSON";
    EXPECT_NE(text.find("\"soff-stats-v1\""), std::string::npos);
    EXPECT_NE(text.find("\"componentKinds\""), std::string::npos);
    EXPECT_NE(text.find("\"datapaths\""), std::string::npos);
    EXPECT_NE(text.find("\"hitRate\""), std::string::npos);
}

TEST(StatsExport, EnvironmentKnobsDriveBothExports)
{
    ScopedEnv sched("SOFF_SCHEDULER", nullptr);
    ScopedFile trace_file("stats_test_env_trace.json");
    ScopedFile stats_file("stats_test_env_stats.json");
    ScopedEnv trace_env("SOFF_TRACE",
                        "stats_test_env_trace.json:0:100");
    ScopedEnv stats_env("SOFF_STATS", "stats_test_env_stats.json");
    launchSmall({});
    ASSERT_TRUE(trace_file.exists());
    ASSERT_TRUE(stats_file.exists());
    EXPECT_TRUE(JsonChecker(trace_file.contents()).valid());
    EXPECT_TRUE(JsonChecker(stats_file.contents()).valid());
}

// --- Event profiling ---------------------------------------------------

TEST(Profiling, TimestampsMonotonicAndTiled)
{
    ScopedEnv sched("SOFF_SCHEDULER", nullptr);
    ScopedEnv trace_env("SOFF_TRACE", nullptr);
    ScopedEnv stats_env("SOFF_STATS", nullptr);
    rt::Context ctx;
    rt::Event first, second;
    rt::LaunchResult r1 = launchSmall({}, &first, &ctx);
    rt::LaunchResult r2 = launchSmall({}, &second, &ctx);
    ASSERT_TRUE(first.valid());
    ASSERT_TRUE(second.valid());

    uint64_t queued =
        first.profilingInfo(rt::ClProfilingInfo::CommandQueued);
    uint64_t submit =
        first.profilingInfo(rt::ClProfilingInfo::CommandSubmit);
    uint64_t start =
        first.profilingInfo(rt::ClProfilingInfo::CommandStart);
    uint64_t end = first.profilingInfo(rt::ClProfilingInfo::CommandEnd);
    EXPECT_LE(queued, submit);
    EXPECT_LE(submit, start);
    EXPECT_LE(start, end);
    EXPECT_LT(start, end) << "a real launch takes nonzero device time";

    // END - START is the cycle count through the fmax estimate.
    double expected_ns =
        static_cast<double>(r1.cycles) * 1000.0 / r1.fmaxMhz;
    double measured_ns = static_cast<double>(end - start);
    EXPECT_NEAR(measured_ns, expected_ns, 1.0);

    // The in-order queue tiles the timeline: the second command is
    // queued exactly where the first one ended.
    EXPECT_EQ(second.queuedNs(), end);
    EXPECT_LE(second.queuedNs(), second.submitNs());
    EXPECT_LE(second.startNs(), second.endNs());

    // soffGetKernelStats: the per-launch report rides on the event.
    auto stats = rt::soffGetKernelStats(first);
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->cycles, r1.cycles);
    EXPECT_EQ(stats.get(), r1.statsReport.get())
        << "same report as the LaunchResult";
    (void)r2;
}

TEST(Profiling, UnattachedEventReportsNotAvailable)
{
    rt::Event event;
    EXPECT_FALSE(event.valid());
    try {
        event.profilingInfo(rt::ClProfilingInfo::CommandStart);
        FAIL() << "profiling an unattached event must throw";
    } catch (const rt::OpenClError &e) {
        EXPECT_EQ(e.status(), ClStatus::ProfilingInfoNotAvailable);
    }
    EXPECT_THROW(rt::soffGetKernelStats(event), rt::OpenClError);
}

TEST(Profiling, UnknownParameterNameRejected)
{
    ScopedEnv sched("SOFF_SCHEDULER", nullptr);
    ScopedEnv trace_env("SOFF_TRACE", nullptr);
    ScopedEnv stats_env("SOFF_STATS", nullptr);
    rt::Event event;
    launchSmall({}, &event);
    ASSERT_TRUE(event.valid());
    try {
        event.profilingInfo(static_cast<rt::ClProfilingInfo>(0x9999));
        FAIL() << "unknown parameter names must be rejected";
    } catch (const rt::OpenClError &e) {
        EXPECT_EQ(e.status(), ClStatus::InvalidValue);
    }
}

// --- Strict SOFF_TRACE parsing -----------------------------------------

class TraceEnvParsing : public ::testing::Test
{
  protected:
    void
    launchTrivial()
    {
        rt::Context ctx;
        rt::Program program = ctx.buildProgram(
            "__kernel void t(__global int *X) "
            "{ X[get_global_id(0)] = 1; }");
        rt::KernelHandle kernel = program.createKernel("t");
        rt::Buffer b = ctx.createBuffer(64 * 4);
        kernel.setArg(0, b);
        ctx.enqueueNDRange(kernel, range1d(64, 64));
    }
};

TEST_F(TraceEnvParsing, RejectsMalformedWindows)
{
    ScopedEnv sched("SOFF_SCHEDULER", nullptr);
    ScopedEnv stats_env("SOFF_STATS", nullptr);
    for (const char *bad :
         {"trace.json:5", "trace.json:a:b", "trace.json:9:3",
          "trace.json:5:5", ":0:5", "trace.json::5", "trace.json:5:",
          "trace.json:-1:5", "trace.json: 1:5",
          "trace.json:99999999999999999999:999999999999999999999"}) {
        ScopedEnv trace_env("SOFF_TRACE", bad);
        try {
            launchTrivial();
            FAIL() << "SOFF_TRACE='" << bad << "' must be rejected";
        } catch (const rt::OpenClError &e) {
            EXPECT_EQ(e.status(), ClStatus::InvalidValue) << bad;
            EXPECT_NE(std::string(e.what()).find("SOFF_TRACE"),
                      std::string::npos)
                << e.what();
        }
        EXPECT_FALSE(std::ifstream("trace.json").good())
            << "a rejected spec must not create '" << bad << "'";
    }
}

TEST_F(TraceEnvParsing, AcceptsPathAndWindowForms)
{
    ScopedEnv sched("SOFF_SCHEDULER", nullptr);
    ScopedEnv stats_env("SOFF_STATS", nullptr);
    {
        ScopedFile file("stats_test_plain.json");
        ScopedEnv trace_env("SOFF_TRACE", "stats_test_plain.json");
        EXPECT_NO_THROW(launchTrivial());
        EXPECT_TRUE(file.exists());
    }
    {
        ScopedFile file("stats_test_win.json");
        ScopedEnv trace_env("SOFF_TRACE", "stats_test_win.json:10:200");
        EXPECT_NO_THROW(launchTrivial());
        EXPECT_TRUE(file.exists());
    }
}

} // namespace
} // namespace soff
