/** @file Unit tests for the IR: types, constants, builder, verifier,
 *  and the shared evaluation semantics. */
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/eval.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

namespace soff::ir
{
namespace
{

TEST(Types, InterningAndProperties)
{
    TypeContext ctx;
    EXPECT_EQ(ctx.i32(), ctx.intTy(32, true));
    EXPECT_NE(ctx.i32(), ctx.u32());
    EXPECT_NE(ctx.i32(), ctx.i64());
    EXPECT_EQ(ctx.f32()->bits(), 32);
    EXPECT_TRUE(ctx.f64()->isFloat());
    EXPECT_EQ(ctx.i32()->sizeBytes(), 4u);
    EXPECT_EQ(ctx.voidTy()->sizeBytes(), 0u);

    const Type *p = ctx.ptrTy(ctx.f32(), AddrSpace::Global);
    EXPECT_EQ(p, ctx.ptrTy(ctx.f32(), AddrSpace::Global));
    EXPECT_NE(p, ctx.ptrTy(ctx.f32(), AddrSpace::Local));
    EXPECT_EQ(p->sizeBytes(), 8u);
    EXPECT_EQ(p->str(), "global f32*");

    const Type *a = ctx.arrayTy(ctx.i32(), 16);
    EXPECT_EQ(a, ctx.arrayTy(ctx.i32(), 16));
    EXPECT_EQ(a->sizeBytes(), 64u);
}

TEST(Constants, InterningAndNormalization)
{
    Module m("t");
    Constant *a = m.constantInt(m.types().i32(), 5);
    Constant *b = m.constantInt(m.types().i32(), 5);
    EXPECT_EQ(a, b);
    // Truncation at interning: 2^32 + 5 == 5 for i32.
    Constant *c = m.constantInt(m.types().i32(), (1ULL << 32) + 5);
    EXPECT_EQ(a, c);
    Constant *neg = m.constantInt(
        m.types().i32(), static_cast<uint64_t>(static_cast<int64_t>(-1)));
    EXPECT_EQ(neg->intSigned(), -1);
    Constant *f = m.constantFloat(m.types().f32(), 2.5);
    EXPECT_EQ(f->fp(), 2.5);
}

/** Builds: kernel f(global f32* A) { A[gid] = A[gid] * 2 + 1; } */
std::unique_ptr<Module>
buildSmallKernel()
{
    auto m = std::make_unique<Module>("t");
    auto &t = m->types();
    Kernel *k = m->addKernel("f", true, t.voidTy());
    Argument *arg_a =
        k->addArgument(t.ptrTy(t.f32(), AddrSpace::Global), "A");
    IRBuilder b(*m);
    BasicBlock *entry = k->addBlock("B1");
    b.setInsertPoint(entry);
    Value *gid = b.createWorkItemInfo(WorkItemQuery::GlobalId,
                                      b.constInt(t.u32(), 0));
    Value *idx = b.createCast(Opcode::Bitcast, gid, t.i64());
    Value *bytes = b.createBinOp(Opcode::Mul, idx, b.constI64(4));
    Value *ptr = b.createPtrAdd(arg_a, bytes);
    Value *v = b.createLoad(ptr);
    Value *two = b.constFloat(t.f32(), 2.0);
    Value *one = b.constFloat(t.f32(), 1.0);
    Value *mul = b.createBinOp(Opcode::FMul, v, two);
    Value *add = b.createBinOp(Opcode::FAdd, mul, one);
    b.createStore(ptr, add);
    b.createRet(nullptr);
    return m;
}

TEST(Builder, ConstructsVerifiableKernel)
{
    auto m = buildSmallKernel();
    auto errors = verifyModule(*m);
    EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0]);
}

TEST(Printer, RendersKernel)
{
    auto m = buildSmallKernel();
    std::string text = printModule(*m);
    EXPECT_NE(text.find("kernel @f(global f32* %A)"), std::string::npos);
    EXPECT_NE(text.find("fmul"), std::string::npos);
    EXPECT_NE(text.find("store"), std::string::npos);
}

TEST(Verifier, CatchesMissingTerminator)
{
    Module m("t");
    Kernel *k = m.addKernel("g", true, m.types().voidTy());
    k->addBlock("B1");
    auto errors = verifyKernel(*k);
    ASSERT_FALSE(errors.empty());
    EXPECT_NE(errors[0].find("not terminated"), std::string::npos);
}

TEST(Verifier, CatchesTypeMismatch)
{
    Module m("t");
    auto &t = m.types();
    Kernel *k = m.addKernel("g", true, t.voidTy());
    BasicBlock *bb = k->addBlock("B1");
    auto bad = std::make_unique<Instruction>(Opcode::Add, t.i32());
    bad->addOperand(m.constantInt(t.i32(), 1));
    bad->addOperand(m.constantInt(t.i64(), 1));
    bb->append(std::move(bad));
    auto ret = std::make_unique<Instruction>(Opcode::Ret, t.voidTy());
    bb->append(std::move(ret));
    auto errors = verifyKernel(*k);
    ASSERT_FALSE(errors.empty());
}

// --- eval semantics ---

WorkItemCtx
dummyWi()
{
    WorkItemCtx wi;
    wi.globalId[0] = 7;
    wi.localId[0] = 3;
    wi.groupId[0] = 1;
    wi.globalSize[0] = 16;
    wi.localSize[0] = 4;
    wi.numGroups[0] = 4;
    return wi;
}

/** Evaluates a freshly built instruction over constant operands. */
RtValue
evalOp(Module & /*m*/, Opcode op, const Type *ty,
       std::initializer_list<Value *> ops,
       std::initializer_list<RtValue> vals)
{
    Instruction inst(op, ty);
    for (Value *v : ops)
        inst.addOperand(v);
    std::vector<RtValue> operands(vals);
    return evalPure(&inst, operands, dummyWi());
}

TEST(Eval, IntegerArithmeticWrapsAtWidth)
{
    Module m("t");
    auto &t = m.types();
    Value *a = m.constantInt(t.i32(), 0x7fffffff);
    Value *b = m.constantInt(t.i32(), 1);
    RtValue r = evalOp(m, Opcode::Add, t.i32(), {a, b},
                       {RtValue::makeInt(0x7fffffff), RtValue::makeInt(1)});
    EXPECT_EQ(r.i, 0x80000000u); // wrapped, normalized to 32 bits
}

TEST(Eval, SignedDivisionAndRemainder)
{
    Module m("t");
    auto &t = m.types();
    uint64_t neg7 = normalizeInt(t.i32(), static_cast<uint64_t>(-7));
    Value *a = m.constantInt(t.i32(), neg7);
    Value *b = m.constantInt(t.i32(), 2);
    RtValue q = evalOp(m, Opcode::SDiv, t.i32(), {a, b},
                       {RtValue::makeInt(neg7), RtValue::makeInt(2)});
    EXPECT_EQ(signedValue(t.i32(), q.i), -3);
    RtValue rem = evalOp(m, Opcode::SRem, t.i32(), {a, b},
                         {RtValue::makeInt(neg7), RtValue::makeInt(2)});
    EXPECT_EQ(signedValue(t.i32(), rem.i), -1);
}

TEST(Eval, DivisionByZeroIsDefined)
{
    Module m("t");
    auto &t = m.types();
    Value *a = m.constantInt(t.i32(), 5);
    Value *b = m.constantInt(t.i32(), 0);
    RtValue q = evalOp(m, Opcode::SDiv, t.i32(), {a, b},
                       {RtValue::makeInt(5), RtValue::makeInt(0)});
    EXPECT_EQ(q.i, 0u);
}

TEST(Eval, FloatRoundsThroughF32)
{
    Module m("t");
    auto &t = m.types();
    Value *a = m.constantFloat(t.f32(), 0.1);
    Value *b = m.constantFloat(t.f32(), 0.2);
    RtValue r = evalOp(m, Opcode::FAdd, t.f32(), {a, b},
                       {RtValue::makeFloat(0.1), RtValue::makeFloat(0.2)});
    EXPECT_EQ(r.f, static_cast<double>(0.1 + 0.2 > 0 ?
              static_cast<float>(0.1 + 0.2) : 0.0f));
}

TEST(Eval, ComparisonsSignedVsUnsigned)
{
    Module m("t");
    auto &t = m.types();
    uint64_t neg1 = normalizeInt(t.i32(), static_cast<uint64_t>(-1));
    Value *a = m.constantInt(t.i32(), neg1);
    Value *b = m.constantInt(t.i32(), 1);
    {
        Instruction cmp(Opcode::ICmp, t.boolTy());
        cmp.setIcmpPred(ICmpPred::SLT);
        cmp.addOperand(a);
        cmp.addOperand(b);
        std::vector<RtValue> ops{RtValue::makeInt(neg1),
                                 RtValue::makeInt(1)};
        EXPECT_EQ(evalPure(&cmp, ops, dummyWi()).i, 1u);
    }
    {
        Instruction cmp(Opcode::ICmp, t.boolTy());
        cmp.setIcmpPred(ICmpPred::ULT);
        Value *ua = m.constantInt(t.u32(), neg1);
        Value *ub = m.constantInt(t.u32(), 1);
        cmp.addOperand(ua);
        cmp.addOperand(ub);
        std::vector<RtValue> ops{RtValue::makeInt(neg1),
                                 RtValue::makeInt(1)};
        EXPECT_EQ(evalPure(&cmp, ops, dummyWi()).i, 0u);
    }
}

TEST(Eval, WorkItemQueries)
{
    Module m("t");
    auto &t = m.types();
    Instruction inst(Opcode::WorkItemInfo, t.u64());
    inst.setWiQuery(WorkItemQuery::GlobalId);
    inst.addOperand(m.constantInt(t.u32(), 0));
    std::vector<RtValue> ops{RtValue::makeInt(0)};
    EXPECT_EQ(evalPure(&inst, ops, dummyWi()).i, 7u);
    inst.setWiQuery(WorkItemQuery::LocalSize);
    EXPECT_EQ(evalPure(&inst, ops, dummyWi()).i, 4u);
}

TEST(Eval, ArrayInsertIsCopyOnWrite)
{
    Module m("t");
    auto &t = m.types();
    const Type *arr_ty = t.arrayTy(t.i32(), 4);
    RtValue arr = RtValue::makeArray(4);
    for (auto &e : *arr.arr)
        e = RtValue::makeInt(0);
    RtValue shared = arr; // simulate another in-flight work-item copy

    Instruction ins(Opcode::ArrayInsert, arr_ty);
    Value *dummy_arr = m.constantInt(t.i64(), 0); // types unused by eval
    ins.addOperand(dummy_arr);
    ins.addOperand(m.constantInt(t.i64(), 2));
    ins.addOperand(m.constantInt(t.i32(), 99));
    std::vector<RtValue> ops{arr, RtValue::makeInt(2),
                             RtValue::makeInt(99)};
    RtValue updated = evalPure(&ins, ops, dummyWi());
    EXPECT_EQ((*updated.arr)[2].i, 99u);
    EXPECT_EQ((*shared.arr)[2].i, 0u) << "COW must not clobber sharers";
}

TEST(Eval, AtomicOps)
{
    Module m("t");
    auto &t = m.types();
    EXPECT_EQ(evalAtomicOp(AtomicOp::Add, t.i32(), 10, 5), 15u);
    EXPECT_EQ(evalAtomicOp(AtomicOp::Sub, t.i32(), 10, 5), 5u);
    EXPECT_EQ(evalAtomicOp(AtomicOp::Xchg, t.i32(), 10, 5), 5u);
    uint64_t neg2 = normalizeInt(t.i32(), static_cast<uint64_t>(-2));
    EXPECT_EQ(evalAtomicOp(AtomicOp::SMin, t.i32(), neg2, 1), neg2);
    EXPECT_EQ(evalAtomicOp(AtomicOp::UMin, t.u32(), neg2, 1), 1u);
    EXPECT_EQ(evalAtomicOp(AtomicOp::SMax, t.i32(), neg2, 1), 1u);
}

TEST(Eval, MathIntegerHelpers)
{
    Module m("t");
    auto &t = m.types();
    Instruction inst(Opcode::MathCall, t.i32());
    inst.setMathFunc(MathFunc::SClamp);
    for (int i = 0; i < 3; ++i)
        inst.addOperand(m.constantInt(t.i32(), 0));
    std::vector<RtValue> ops{RtValue::makeInt(normalizeInt(
                                 t.i32(), static_cast<uint64_t>(-5))),
                             RtValue::makeInt(0), RtValue::makeInt(10)};
    EXPECT_EQ(evalPure(&inst, ops, dummyWi()).i, 0u);
}

} // namespace
} // namespace soff::ir
