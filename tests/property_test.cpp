/** @file Property-based end-to-end tests: randomly generated arithmetic
 *  kernels must produce identical results on the cycle-level circuit
 *  simulator and the reference interpreter (TEST_P sweeps over seeds),
 *  and the interpreter must reject undefined barrier divergence. */
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "baseline/interpreter.hpp"
#include "runtime/runtime.hpp"
#include "sim/simulator.hpp"
#include "sim/specialize.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace soff
{
namespace
{

/**
 * Generates a random straight-line-plus-loop kernel over ints and
 * floats. The expression grammar sticks to operations with defined
 * semantics for every input (no division by arbitrary values).
 */
std::string
randomKernel(uint64_t seed)
{
    SplitMix64 rng(seed);
    std::string body;
    int n_vals = rng.nextInt(2, 5);
    body += "  int i = get_global_id(0);\n";
    body += "  float f0 = A[i];\n";
    body += "  int v0 = B[i];\n";
    for (int k = 1; k < n_vals; ++k) {
        switch (rng.nextInt(0, 5)) {
          case 0:
            body += strFormat("  float f%d = f%d * %d.%df + f0;\n", k,
                              k - 1, rng.nextInt(0, 3),
                              rng.nextInt(1, 9));
            break;
          case 1:
            body += strFormat("  float f%d = fmin(f%d, %d.0f) - "
                              "fabs(f0);\n", k, k - 1,
                              rng.nextInt(1, 5));
            break;
          case 2:
            body += strFormat("  float f%d = f%d + (float)(v0 %% %d);\n",
                              k, k - 1, rng.nextInt(2, 9));
            break;
          case 3:
            body += strFormat("  float f%d = f%d > 0.5f ? f%d * 0.5f : "
                              "f%d + 1.0f;\n", k, k - 1, k - 1, k - 1);
            break;
          case 4:
            body += strFormat(
                "  float f%d = f%d;\n"
                "  for (int t%d = 0; t%d < %d; t%d++) "
                "f%d = f%d * 0.75f + 0.25f;\n",
                k, k - 1, k, k, rng.nextInt(2, 6), k, k, k);
            break;
          default:
            body += strFormat("  float f%d = sqrt(fabs(f%d) + 1.0f);\n",
                              k, k - 1);
            break;
        }
    }
    body += strFormat("  C[i] = f%d;\n", n_vals - 1);
    return "__kernel void p(__global float* A, __global int* B,\n"
           "                __global float* C) {\n" + body + "}\n";
}

class RandomKernelEquivalence
    : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RandomKernelEquivalence, SimulatorMatchesOracle)
{
    uint64_t seed = GetParam();
    std::string source = randomKernel(seed);
    SCOPED_TRACE(source);

    const uint64_t n = 64;
    auto a = std::vector<float>(n);
    auto b = std::vector<int32_t>(n);
    SplitMix64 rng(seed * 7 + 1);
    for (uint64_t i = 0; i < n; ++i) {
        a[i] = rng.nextFloat() * 4.0f - 2.0f;
        b[i] = rng.nextInt(-100, 100);
    }

    std::vector<float> out[2];
    for (int mode = 0; mode < 2; ++mode) {
        rt::Context ctx;
        rt::Program program = ctx.buildProgram(source);
        rt::KernelHandle kernel = program.createKernel("p");
        rt::Buffer ba = ctx.createBuffer(n * 4);
        rt::Buffer bb = ctx.createBuffer(n * 4);
        rt::Buffer bc = ctx.createBuffer(n * 4);
        ctx.writeBuffer(ba, a.data(), n * 4);
        ctx.writeBuffer(bb, b.data(), n * 4);
        kernel.setArg(0, ba);
        kernel.setArg(1, bb);
        kernel.setArg(2, bc);
        sim::NDRange nd;
        nd.globalSize[0] = n;
        nd.localSize[0] = 16;
        ctx.enqueueNDRange(kernel, nd,
                           mode == 0 ? rt::ExecutionMode::Simulate
                                     : rt::ExecutionMode::Reference);
        out[mode].resize(n);
        ctx.readBuffer(bc, out[mode].data(), n * 4);
    }
    for (uint64_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[0][i], out[1][i])
            << "seed " << seed << " index " << i
            << ": circuit and oracle must agree bit-exactly";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKernelEquivalence,
                         ::testing::Range<uint64_t>(1, 21));

// --- Undefined-behavior rejection by the oracle -------------------------

TEST(InterpreterUB, DivergentBarrierIsRejected)
{
    // §II-B3 / §IV-F1: work-items of one group reaching different
    // barriers (or not all reaching one) is undefined; the oracle
    // refuses rather than guessing.
    rt::Context ctx;
    rt::Program program = ctx.buildProgram(R"CL(
__kernel void bad(__global int* A) {
  int l = get_local_id(0);
  if (l < 2) {
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  A[get_global_id(0)] = l;
}
)CL");
    rt::KernelHandle kernel = program.createKernel("bad");
    kernel.setArg(0, ctx.createBuffer(4096));
    sim::NDRange nd;
    nd.globalSize[0] = 16;
    nd.localSize[0] = 4;
    EXPECT_THROW(
        ctx.enqueueNDRange(kernel, nd, rt::ExecutionMode::Reference),
        RuntimeError);
}

TEST(InterpreterUB, UniformBarrierInBranchIsFine)
{
    // All work-items of a group take the same branch: defined.
    rt::Context ctx;
    rt::Program program = ctx.buildProgram(R"CL(
__kernel void good(__global int* A) {
  int g = get_group_id(0);
  if (g == 0) {
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  A[get_global_id(0)] = g;
}
)CL");
    rt::KernelHandle kernel = program.createKernel("good");
    kernel.setArg(0, ctx.createBuffer(4096));
    sim::NDRange nd;
    nd.globalSize[0] = 16;
    nd.localSize[0] = 4;
    EXPECT_NO_THROW(
        ctx.enqueueNDRange(kernel, nd, rt::ExecutionMode::Reference));
}

// --- Channel storage equivalence ------------------------------------------

/**
 * Pure model of the staged handshake-channel semantics: pushes become
 * visible at commit, a pop frees its slot at commit, at most one pop
 * per cycle. Both Channel<T> storage variants must track it exactly.
 */
struct ChannelModel
{
    size_t cap;
    std::vector<uint64_t> committed;
    std::vector<uint64_t> staged;
    bool popped = false;
    uint64_t delivered = 0;
    uint64_t maxOcc = 0;

    explicit ChannelModel(size_t capacity) : cap(capacity) {}
    bool canPush() const { return committed.size() + staged.size() < cap; }
    bool canPop() const { return !committed.empty() && !popped; }
    void push(uint64_t v) { staged.push_back(v); }
    uint64_t
    pop()
    {
        popped = true;
        return committed.front();
    }
    void
    commit()
    {
        if (popped) {
            committed.erase(committed.begin());
            popped = false;
        }
        delivered += staged.size();
        committed.insert(committed.end(), staged.begin(), staged.end());
        staged.clear();
        maxOcc = std::max<uint64_t>(maxOcc, committed.size());
    }
};

/** Heap-carrying payload: exercises the pop-by-move path. */
using Payload = std::vector<uint64_t>;

class ChannelEquivalence : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(ChannelEquivalence, ArenaMatchesStandaloneAndModel)
{
    SplitMix64 rng(GetParam());
    size_t cap = static_cast<size_t>(rng.nextInt(1, 5));
    // Standalone channel (heap ring) vs arena-backed channel (circuit
    // slab ring) vs the pure model, driven by one random op stream.
    sim::Channel<Payload> standalone(cap);
    sim::Simulator simulator;
    sim::Channel<Payload> *arena = simulator.channel<Payload>(cap);
    ChannelModel model(cap);

    uint64_t next = 1;
    for (int cycle = 0; cycle < 2000; ++cycle) {
        // A burst of pushes (capacity edge: often more than fit).
        int pushes = rng.nextInt(0, 3);
        for (int i = 0; i < pushes; ++i) {
            ASSERT_EQ(standalone.canPush(), model.canPush());
            ASSERT_EQ(arena->canPush(), model.canPush());
            if (!model.canPush())
                break;
            Payload v = {next, next * 3};
            standalone.push(v);
            arena->push(v);
            model.push(next);
            ++next;
        }
        ASSERT_EQ(standalone.canPop(), model.canPop());
        ASSERT_EQ(arena->canPop(), model.canPop());
        if (model.canPop() && rng.nextInt(0, 2) != 0) {
            uint64_t want = model.pop();
            Payload a = standalone.pop();
            Payload b = arena->pop();
            ASSERT_EQ(a, (Payload{want, want * 3}));
            ASSERT_EQ(b, a);
            // One pop per cycle: both variants must refuse a second.
            ASSERT_FALSE(standalone.canPop());
            ASSERT_FALSE(arena->canPop());
        }
        if (rng.nextInt(0, 4) != 0) { // occasionally skip the commit
            standalone.commit();
            arena->commit();
            model.commit();
        }
        ASSERT_EQ(standalone.occupancy(), model.committed.size());
        ASSERT_EQ(arena->occupancy(), model.committed.size());
    }
    EXPECT_EQ(standalone.tokensDelivered(), model.delivered);
    EXPECT_EQ(arena->tokensDelivered(), model.delivered);
    EXPECT_EQ(standalone.maxOccupancy(), model.maxOcc);
    EXPECT_EQ(arena->maxOccupancy(), model.maxOcc);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelEquivalence,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77,
                                           88));

// --- Watcher wakes --------------------------------------------------------

namespace chan_wake
{

class Producer : public sim::Component
{
  public:
    Producer(sim::Channel<uint64_t> *out, uint64_t n)
        : Component("producer"), out_(out), n_(n)
    {
        watch(out_);
    }
    void
    step(sim::Cycle) override
    {
        if (sent_ < n_ && out_->canPush())
            out_->push(sent_++);
    }
    bool holdsWork() const override { return sent_ < n_; }

  private:
    sim::Channel<uint64_t> *out_;
    uint64_t n_;
    uint64_t sent_ = 0;
};

class Consumer : public sim::Component
{
  public:
    Consumer(sim::Channel<uint64_t> *in, uint64_t n)
        : Component("consumer"), in_(in), n_(n)
    {
        watch(in_);
    }
    void
    step(sim::Cycle) override
    {
        if (in_->canPop()) {
            sum_ += in_->pop();
            ++got_;
        }
        done_ = got_ >= n_;
    }
    bool holdsWork() const override { return in_->occupancy() > 0; }

    uint64_t sum() const { return sum_; }
    const bool *doneFlag() const { return &done_; }

  private:
    sim::Channel<uint64_t> *in_;
    uint64_t n_;
    uint64_t got_ = 0;
    uint64_t sum_ = 0;
    bool done_ = false;
};

} // namespace chan_wake

TEST(ChannelWatcherWake, EventDrivenMatchesReference)
{
    // The flat watcher spans must wake exactly the endpoints a commit
    // used to wake through the pointer list: a producer/consumer pair
    // over one arena channel finishes in the same cycle with the same
    // data under both schedulers.
    constexpr uint64_t kTokens = 500;
    uint64_t cycles[2], sums[2];
    const sim::SchedulerMode modes[2] = {sim::SchedulerMode::Reference,
                                         sim::SchedulerMode::EventDriven};
    for (int m = 0; m < 2; ++m) {
        sim::Simulator simulator(modes[m]);
        auto *ch = simulator.channel<uint64_t>(2);
        simulator.add<chan_wake::Producer>(ch, kTokens);
        auto *consumer =
            simulator.add<chan_wake::Consumer>(ch, kTokens);
        auto result =
            simulator.run(consumer->doneFlag(), 100000, 1000);
        ASSERT_TRUE(result.completed);
        cycles[m] = result.cycles;
        sums[m] = consumer->sum();
    }
    EXPECT_EQ(cycles[0], cycles[1]);
    EXPECT_EQ(sums[0], sums[1]);
    EXPECT_EQ(sums[0], kTokens * (kTokens - 1) / 2);
}

// --- Compiled-circuit specialization --------------------------------------

namespace compiled_spec
{

/** Eligible-kind chain components: datapath plumbing the compiled
 *  specializer may fold into a levelized segment. */
class ChainHead : public sim::Component
{
  public:
    ChainHead(sim::Channel<uint64_t> *out, uint64_t n)
        : Component("head"), out_(out), n_(n)
    {
        watch(out_, sim::PortDir::Push);
    }
    void
    step(sim::Cycle) override
    {
        if (sent_ < n_ && out_->canPush())
            out_->push(sent_++);
    }
    sim::ComponentKind kind() const override
    {
        return sim::ComponentKind::Source;
    }
    bool holdsWork() const override { return sent_ < n_; }
    void reset() override { sent_ = 0; }

  private:
    sim::Channel<uint64_t> *out_;
    uint64_t n_;
    uint64_t sent_ = 0;
};

class ChainStage : public sim::Component
{
  public:
    ChainStage(sim::Channel<uint64_t> *in, sim::Channel<uint64_t> *out)
        : Component("stage"), in_(in), out_(out)
    {
        watch(in_, sim::PortDir::Pop);
        watch(out_, sim::PortDir::Push);
    }
    void
    step(sim::Cycle) override
    {
        if (in_->canPop() && out_->canPush())
            out_->push(in_->pop() * 3 + 1);
    }
    sim::ComponentKind kind() const override
    {
        return sim::ComponentKind::Compute;
    }
    bool holdsWork() const override { return in_->occupancy() > 0; }

  private:
    sim::Channel<uint64_t> *in_;
    sim::Channel<uint64_t> *out_;
};

class ChainTail : public sim::Component
{
  public:
    ChainTail(sim::Channel<uint64_t> *in, uint64_t n)
        : Component("tail"), in_(in), n_(n)
    {
        watch(in_, sim::PortDir::Pop);
    }
    void
    step(sim::Cycle) override
    {
        if (in_->canPop()) {
            sum_ += in_->pop();
            ++got_;
        }
        done_ = got_ >= n_;
    }
    sim::ComponentKind kind() const override
    {
        return sim::ComponentKind::Sink;
    }
    bool holdsWork() const override { return in_->occupancy() > 0; }
    void
    reset() override
    {
        got_ = 0;
        sum_ = 0;
        done_ = false;
    }

    uint64_t sum() const { return sum_; }
    const bool *doneFlag() const { return &done_; }

  private:
    sim::Channel<uint64_t> *in_;
    uint64_t n_;
    uint64_t got_ = 0;
    uint64_t sum_ = 0;
    bool done_ = false;
};

/** A randomized single-watcher-per-side chain. Components are added in
 *  a seed-shuffled order, so the compiled plan's levelization has to
 *  recover the dataflow order instead of inheriting build order. */
struct Chain
{
    std::vector<sim::Channel<uint64_t> *> channels;
    ChainTail *tail = nullptr;
};

Chain
buildChain(sim::Simulator &simulator, uint64_t seed, uint64_t tokens)
{
    SplitMix64 rng(seed);
    int stages = rng.nextInt(2, 8);
    Chain chain;
    for (int i = 0; i <= stages; ++i) {
        chain.channels.push_back(simulator.channel<uint64_t>(
            static_cast<size_t>(rng.nextInt(1, 3))));
    }
    // Build components in shuffled dataflow position order.
    std::vector<int> pos(static_cast<size_t>(stages) + 2);
    for (size_t i = 0; i < pos.size(); ++i)
        pos[i] = static_cast<int>(i);
    for (size_t i = pos.size(); i > 1; --i)
        std::swap(pos[i - 1],
                  pos[static_cast<size_t>(rng.nextInt(
                      0, static_cast<int>(i) - 1))]);
    for (int p : pos) {
        if (p == 0) {
            simulator.add<ChainHead>(chain.channels.front(), tokens);
        } else if (p == stages + 1) {
            chain.tail = simulator.add<ChainTail>(chain.channels.back(),
                                                  tokens);
        } else {
            simulator.add<ChainStage>(chain.channels[p - 1],
                                      chain.channels[p]);
        }
    }
    return chain;
}

/**
 * Everything observable about a finished multi-lane run: completion
 * cycle, delivered data, per-channel counters, per-component perf
 * counters, and the exact number of component steps (the wake set).
 * Two scheduler configurations are equivalent iff their observations
 * compare equal memberwise.
 */
struct Observation
{
    uint64_t cycles = 0;
    uint64_t componentSteps = 0;
    bool hadPlan = false;
    std::vector<uint64_t> sums;
    std::vector<uint64_t> tokens;
    std::vector<uint64_t> maxOcc;
    /** (busy, stalled, tokensIn, tokensOut) per component. */
    std::vector<std::array<uint64_t, 4>> perf;
};

/**
 * Builds `kLanes` identical seed-shuffled chains side by side — the
 * same component kind at the same dataflow level across lanes, so the
 * compiled plan's (level, thunk) buckets are wide and the batched
 * sweep actually batches replicas — and runs every lane to
 * completion. A non-null fault config installs a fault plan before
 * any channel is created (the real circuit builder's order).
 */
Observation
runLanes(sim::SchedulerMode mode, bool batch, uint64_t seed,
         const sim::FaultConfig *faults = nullptr)
{
    constexpr int kLanes = 6;
    constexpr uint64_t kTokens = 120;
    sim::FaultPlan plan(faults != nullptr ? *faults
                                          : sim::FaultConfig{});
    sim::Simulator simulator(mode);
    simulator.setBatchStep(batch);
    // Mirror KernelCircuit: the plan is installed only when it
    // perturbs timing (a disabled config stays off entirely).
    if (faults != nullptr && plan.config().perturbsTiming())
        simulator.setFaultPlan(&plan);
    std::vector<Chain> lanes;
    for (int l = 0; l < kLanes; ++l)
        lanes.push_back(buildChain(simulator, seed, kTokens));
    Observation obs;
    for (Chain &chain : lanes) {
        auto result =
            simulator.run(chain.tail->doneFlag(), 1000000, 10000);
        EXPECT_TRUE(result.completed);
        obs.cycles = result.cycles;
    }
    simulator.finalizePerfSpans();
    obs.componentSteps = simulator.schedulerStats().componentSteps;
    obs.hadPlan = simulator.compiledPlan() != nullptr;
    for (Chain &chain : lanes) {
        obs.sums.push_back(chain.tail->sum());
        for (sim::ChannelBase *ch : chain.channels) {
            obs.tokens.push_back(ch->tokensDelivered());
            obs.maxOcc.push_back(ch->maxOccupancy());
        }
    }
    sim::StatsReport report;
    simulator.appendPerfStats(report);
    for (const sim::ComponentStats &cs : report.components)
        obs.perf.push_back({cs.busy, cs.stalled, cs.tokensIn,
                            cs.tokensOut});
    return obs;
}

void
expectSameObservation(const Observation &a, const Observation &b,
                      const char *what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.componentSteps, b.componentSteps) << what;
    EXPECT_EQ(a.sums, b.sums) << what;
    EXPECT_EQ(a.tokens, b.tokens) << what;
    EXPECT_EQ(a.maxOcc, b.maxOcc) << what;
    EXPECT_EQ(a.perf, b.perf) << what;
}

} // namespace compiled_spec

class CompiledSpecialization
    : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(CompiledSpecialization, LevelizationIsTopologicalOrder)
{
    // The plan's per-segment step order must be a valid topological
    // order of the fused channel graph: every Push watcher of a fused
    // channel is swept before every Pop watcher.
    constexpr uint64_t kTokens = 64;
    sim::Simulator simulator(sim::SchedulerMode::Compiled);
    compiled_spec::Chain chain =
        compiled_spec::buildChain(simulator, GetParam(), kTokens);
    auto result = simulator.run(chain.tail->doneFlag(), 100000, 1000);
    ASSERT_TRUE(result.completed);

    const sim::CompiledPlan *plan = simulator.compiledPlan();
    ASSERT_NE(plan, nullptr)
        << "an eligible-kind chain must produce a compiled plan";
    ASSERT_FALSE(plan->stepOrder.empty());
    EXPECT_GT(plan->fusedChannels, 0u);
    EXPECT_EQ(plan->demotedChannels, 0u) << "chains are acyclic";
    // Sweep position of every member.
    std::vector<int> position(plan->compSegment.size(), -1);
    for (size_t pos = 0; pos < plan->stepOrder.size(); ++pos)
        position[plan->stepOrder[pos]] = static_cast<int>(pos);
    size_t checkedEdges = 0;
    for (sim::ChannelBase *ch : chain.channels) {
        if (plan->chanSegment[ch->id()] == sim::CompiledPlan::kNoSegment)
            continue;
        const auto &watchers = ch->watchers();
        const auto &dirs = ch->watcherDirs();
        for (size_t a = 0; a < watchers.size(); ++a) {
            if (dirs[a] != sim::PortDir::Push)
                continue;
            for (size_t b = 0; b < watchers.size(); ++b) {
                if (dirs[b] != sim::PortDir::Pop)
                    continue;
                EXPECT_LT(position[watchers[a]->index()],
                          position[watchers[b]->index()])
                    << "producer swept after consumer on channel "
                    << ch->id();
                ++checkedEdges;
            }
        }
    }
    EXPECT_GT(checkedEdges, 0u);
}

TEST_P(CompiledSpecialization, FusedCommitMatchesTwoPhase)
{
    // Fused commit+activate must be observation-equivalent to the
    // generic two-phase step/commit on randomized single-watcher
    // chains: same completion cycle, same data, and bit-identical
    // per-channel token/occupancy counters.
    constexpr uint64_t kTokens = 200;
    const sim::SchedulerMode modes[3] = {sim::SchedulerMode::Reference,
                                         sim::SchedulerMode::EventDriven,
                                         sim::SchedulerMode::Compiled};
    uint64_t cycles[3], sums[3];
    std::vector<uint64_t> tokens[3], maxOcc[3];
    for (int m = 0; m < 3; ++m) {
        sim::Simulator simulator(modes[m]);
        compiled_spec::Chain chain =
            compiled_spec::buildChain(simulator, GetParam(), kTokens);
        auto result =
            simulator.run(chain.tail->doneFlag(), 100000, 1000);
        ASSERT_TRUE(result.completed);
        cycles[m] = result.cycles;
        sums[m] = chain.tail->sum();
        for (sim::ChannelBase *ch : chain.channels) {
            tokens[m].push_back(ch->tokensDelivered());
            maxOcc[m].push_back(ch->maxOccupancy());
        }
    }
    for (int m = 1; m < 3; ++m) {
        EXPECT_EQ(cycles[0], cycles[m]) << schedulerModeName(modes[m]);
        EXPECT_EQ(sums[0], sums[m]) << schedulerModeName(modes[m]);
        EXPECT_EQ(tokens[0], tokens[m]) << schedulerModeName(modes[m]);
        EXPECT_EQ(maxOcc[0], maxOcc[m]) << schedulerModeName(modes[m]);
    }
}

TEST(CompiledSpecialization, FaultsForceGenericFallback)
{
    // Fault injection needs the generic sweep cursor for retry wakes:
    // a compiled-mode simulator with a fault plan must not build a
    // specialization plan (Compiled degrades to plain EventDriven).
    sim::FaultConfig cfg;
    cfg.seed = 42;
    sim::FaultPlan faults(cfg);
    sim::Simulator simulator(sim::SchedulerMode::Compiled);
    simulator.setFaultPlan(&faults);
    compiled_spec::Chain chain =
        compiled_spec::buildChain(simulator, 7, 50);
    auto result = simulator.run(chain.tail->doneFlag(), 100000, 1000);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(simulator.compiledPlan(), nullptr);
}

TEST(CompiledSpecialization, RelaunchReusesThePlan)
{
    // The plan (and its rebound channel dirty lists) must survive
    // resetForRerun: a relaunched compiled circuit produces the same
    // cycle count and keeps sweeping through segments.
    sim::Simulator simulator(sim::SchedulerMode::Compiled);
    compiled_spec::Chain chain =
        compiled_spec::buildChain(simulator, 21, 100);
    auto first = simulator.run(chain.tail->doneFlag(), 100000, 1000);
    ASSERT_TRUE(first.completed);
    ASSERT_NE(simulator.compiledPlan(), nullptr);
    simulator.resetForRerun();
    auto second = simulator.run(chain.tail->doneFlag(), 100000, 1000);
    ASSERT_TRUE(second.completed);
    EXPECT_EQ(first.cycles, second.cycles);
    EXPECT_NE(simulator.compiledPlan(), nullptr);
}

TEST_P(CompiledSpecialization, BatchedStepMatchesPerReplica)
{
    // The batched bucket sweep (one stepMany call over all awake
    // replicas of a (level, thunk) bucket) must be observably
    // identical to the per-replica step sequence (SOFF_BATCH_STEP=0)
    // and to the generic event-driven scheduler: same completion
    // cycle, same delivered data, bit-identical channel and perf
    // counters, and the exact same number of component steps (the
    // wake sets match, not just the results).
    using compiled_spec::runLanes;
    auto batched =
        runLanes(sim::SchedulerMode::Compiled, true, GetParam());
    auto serial =
        runLanes(sim::SchedulerMode::Compiled, false, GetParam());
    auto evt =
        runLanes(sim::SchedulerMode::EventDriven, true, GetParam());
    EXPECT_TRUE(batched.hadPlan);
    EXPECT_TRUE(serial.hadPlan);
    EXPECT_FALSE(evt.hadPlan);
    compiled_spec::expectSameObservation(batched, serial,
                                         "batched vs per-replica");
    compiled_spec::expectSameObservation(batched, evt,
                                         "batched vs event-driven");
}

TEST_P(CompiledSpecialization, BatchedStepFaultSeedsMatch)
{
    // Across fault seeds: seed 0 is a clean run (the plan builds and
    // the batched sweep is active); nonzero seeds install a fault
    // plan, which must force the exact generic fallback — no compiled
    // plan at all — with results still identical across
    // SOFF_BATCH_STEP=0/1 and EventDriven.
    using compiled_spec::runLanes;
    for (uint64_t fault_seed : {uint64_t{0}, uint64_t{42},
                                uint64_t{1337}}) {
        sim::FaultConfig cfg;
        cfg.seed = fault_seed;
        auto batched = runLanes(sim::SchedulerMode::Compiled, true,
                                GetParam(), &cfg);
        auto serial = runLanes(sim::SchedulerMode::Compiled, false,
                               GetParam(), &cfg);
        auto evt = runLanes(sim::SchedulerMode::EventDriven, true,
                            GetParam(), &cfg);
        EXPECT_EQ(batched.hadPlan, fault_seed == 0)
            << "faults must force the generic fallback";
        EXPECT_EQ(serial.hadPlan, fault_seed == 0);
        compiled_spec::expectSameObservation(
            batched, serial, "batched vs per-replica (faults)");
        compiled_spec::expectSameObservation(
            batched, evt, "batched vs event-driven (faults)");
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledSpecialization,
                         ::testing::Values(3, 17, 29, 41, 53, 67, 79,
                                           97));

// --- Determinism ----------------------------------------------------------

TEST(Determinism, SameLaunchSameCycleCount)
{
    uint64_t cycles[2];
    for (int run = 0; run < 2; ++run) {
        rt::Context ctx;
        rt::Program program = ctx.buildProgram(R"CL(
__kernel void k(__global float* A, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; i++) acc += A[i];
  A[get_global_id(0)] = acc;
}
)CL");
        rt::KernelHandle kernel = program.createKernel("k");
        rt::Buffer buffer = ctx.createBuffer(4096);
        std::vector<float> data(256, 1.5f);
        ctx.writeBuffer(buffer, data.data(), 1024);
        kernel.setArg(0, buffer);
        kernel.setArg(1, int32_t{64});
        sim::NDRange nd;
        nd.globalSize[0] = 128;
        nd.localSize[0] = 32;
        cycles[run] = ctx.enqueueNDRange(kernel, nd).cycles;
    }
    EXPECT_EQ(cycles[0], cycles[1])
        << "the circuit simulation must be fully deterministic";
}

} // namespace
} // namespace soff
