#include "dfg/dfg.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "support/error.hpp"

namespace soff::dfg
{

Dfg::Dfg(const ir::BasicBlock *bb,
         const std::vector<const ir::Value *> &live_in,
         const std::vector<const ir::Value *> &sink_values,
         const analysis::PointerAnalysis &pa)
    : bb_(bb)
{
    nodes_.push_back({DfgNode::Kind::Source, nullptr, 0});
    sourceId_ = 0;

    std::map<const ir::Value *, int> def_node;
    std::set<const ir::Value *> live_in_set(live_in.begin(),
                                            live_in.end());

    // One node per executable instruction.
    for (const auto &inst : bb->instructions()) {
        if (inst->op() == ir::Opcode::Phi || inst->isTerminator() ||
            inst->op() == ir::Opcode::Barrier) {
            continue;
        }
        int id = static_cast<int>(nodes_.size());
        nodes_.push_back({DfgNode::Kind::Instruction, inst.get(), id});
        def_node[inst.get()] = id;
    }
    sinkId_ = static_cast<int>(nodes_.size());
    nodes_.push_back({DfgNode::Kind::Sink, nullptr, sinkId_});

    // True dependences.
    std::vector<int> mem_nodes;
    for (const DfgNode &node : nodes_) {
        if (node.kind != DfgNode::Kind::Instruction)
            continue;
        bool has_value_input = false;
        for (const ir::Value *op : node.inst->operands()) {
            auto it = def_node.find(op);
            if (it != def_node.end()) {
                addEdge(it->second, node.id, op);
                has_value_input = true;
            } else if (live_in_set.count(op)) {
                addEdge(sourceId_, node.id, op);
                has_value_input = true;
            }
            // Constants and kernel arguments are immediate operands of
            // the functional unit (the argument register, §III-B).
        }
        if (!has_value_input) {
            // Trigger edge: the unit still fires once per work-item.
            addEdge(sourceId_, node.id, nullptr);
        }
        if (node.inst->isMemoryAccess())
            mem_nodes.push_back(node.id);
    }

    // Memory ordering: anti (load->store), output (store->store), and
    // conservative store->load edges between may-aliasing accesses, in
    // program order.
    for (size_t i = 0; i < mem_nodes.size(); ++i) {
        for (size_t j = i + 1; j < mem_nodes.size(); ++j) {
            const ir::Instruction *a = nodes_[mem_nodes[i]].inst;
            const ir::Instruction *b = nodes_[mem_nodes[j]].inst;
            if (!a->isMemoryWrite() && !b->isMemoryWrite())
                continue;
            if (pa.mayAlias(a, b))
                addEdge(mem_nodes[i], mem_nodes[j], nullptr);
        }
    }

    // Sink edges: every requested sink value plus memory completion.
    std::set<int> to_sink;
    for (const ir::Value *v : sink_values) {
        auto it = def_node.find(v);
        if (it != def_node.end()) {
            addEdge(it->second, sinkId_, v);
            to_sink.insert(it->second);
        } else if (live_in_set.count(v)) {
            addEdge(sourceId_, sinkId_, v); // pass-through live value
        }
        // Constants/arguments are materialized at the consumer.
    }
    for (int m : mem_nodes) {
        // "Every memory access is connected to the sink node to ensure
        // its completion, unless it has a subsequent data-dependent
        // node" — a completion edge also pins program order at exits.
        bool has_consumer = false;
        for (const DfgEdge &e : edges_) {
            if (e.from == m && e.to != sinkId_) {
                has_consumer = true;
                break;
            }
        }
        if (!has_consumer && !to_sink.count(m))
            addEdge(m, sinkId_, nullptr);
    }
    // Nodes with no consumers at all still need their completion
    // observed, or their pipeline would fill silently.
    for (const DfgNode &node : nodes_) {
        if (node.kind != DfgNode::Kind::Instruction)
            continue;
        bool has_consumer = false;
        for (const DfgEdge &e : edges_) {
            if (e.from == node.id) {
                has_consumer = true;
                break;
            }
        }
        if (!has_consumer)
            addEdge(node.id, sinkId_, nullptr);
    }
    // A block with no instructions: still forward work-items.
    bool sink_has_input = false;
    for (const DfgEdge &e : edges_) {
        if (e.to == sinkId_) {
            sink_has_input = true;
            break;
        }
    }
    if (!sink_has_input)
        addEdge(sourceId_, sinkId_, nullptr);
}

void
Dfg::addEdge(int from, int to, const ir::Value *value)
{
    // De-duplicate identical edges (e.g. the same operand used twice --
    // the functional unit reads the flit once per port).
    for (const DfgEdge &e : edges_) {
        if (e.from == from && e.to == to && e.value == value)
            return;
    }
    edges_.push_back({from, to, value});
}

std::vector<const DfgEdge *>
Dfg::inEdges(int node) const
{
    std::vector<const DfgEdge *> out;
    for (const DfgEdge &e : edges_) {
        if (e.to == node)
            out.push_back(&e);
    }
    return out;
}

std::vector<const DfgEdge *>
Dfg::outEdges(int node) const
{
    std::vector<const DfgEdge *> out;
    for (const DfgEdge &e : edges_) {
        if (e.from == node)
            out.push_back(&e);
    }
    return out;
}

std::vector<int>
Dfg::topoOrder() const
{
    std::vector<int> indeg(nodes_.size(), 0);
    for (const DfgEdge &e : edges_)
        ++indeg[static_cast<size_t>(e.to)];
    std::vector<int> ready;
    for (size_t i = 0; i < nodes_.size(); ++i) {
        if (indeg[i] == 0)
            ready.push_back(static_cast<int>(i));
    }
    std::vector<int> order;
    while (!ready.empty()) {
        int n = ready.back();
        ready.pop_back();
        order.push_back(n);
        for (const DfgEdge &e : edges_) {
            if (e.from == n && --indeg[static_cast<size_t>(e.to)] == 0)
                ready.push_back(e.to);
        }
    }
    SOFF_ASSERT(order.size() == nodes_.size(), "DFG has a cycle");
    return order;
}

} // namespace soff::dfg
