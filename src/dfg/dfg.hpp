/**
 * @file
 * Per-basic-block data-flow graphs (paper §III-C, Fig. 4(b)/(d)).
 *
 * "A DFG is an acyclic graph in which every node corresponds to an
 * instruction and every edge corresponds to a data dependence between
 * two instructions. We introduce two arbitrary nodes — a source and a
 * sink. The source produces all live-in SSA variables of the basic
 * block while the sink consumes all live-out variables."
 *
 * Beyond true dependences, the DFG carries:
 *  - anti-/output-dependence edges between may-aliasing memory accesses
 *    (and store->load ordering, conservatively), transferring "data of
 *    no size";
 *  - completion edges from memory accesses to the sink ("to ensure its
 *    completion");
 *  - trigger edges from the source to operand-less instructions, so
 *    every functional unit observes work-item arrival.
 */
#pragma once

#include <vector>

#include "analysis/pointer_analysis.hpp"
#include "ir/basic_block.hpp"

namespace soff::dfg
{

/** A DFG node: source, sink, or one non-phi non-terminator instruction. */
struct DfgNode
{
    enum class Kind { Source, Sink, Instruction };

    Kind kind = Kind::Instruction;
    const ir::Instruction *inst = nullptr;
    int id = 0;
};

/** A DFG edge. Value edges carry one SSA value; ordering edges none. */
struct DfgEdge
{
    int from = 0;
    int to = 0;
    /** The SSA value transferred, or nullptr for ordering edges. */
    const ir::Value *value = nullptr;
    bool ordering() const { return value == nullptr; }
};

/**
 * The data-flow graph of one basic block.
 *
 * Built from the block body (phis and the terminator excluded — phis
 * are resolved by select glue, the terminator by branch glue), the
 * live-in set, and the values the sink must emit (live-outs plus the
 * branch condition).
 */
class Dfg
{
  public:
    Dfg(const ir::BasicBlock *bb,
        const std::vector<const ir::Value *> &live_in,
        const std::vector<const ir::Value *> &sink_values,
        const analysis::PointerAnalysis &pa);

    const ir::BasicBlock *block() const { return bb_; }
    const std::vector<DfgNode> &nodes() const { return nodes_; }
    const std::vector<DfgEdge> &edges() const { return edges_; }
    int sourceId() const { return sourceId_; }
    int sinkId() const { return sinkId_; }

    /** Edges entering / leaving a node. */
    std::vector<const DfgEdge *> inEdges(int node) const;
    std::vector<const DfgEdge *> outEdges(int node) const;

    /** Nodes in a topological order (source first, sink last). */
    std::vector<int> topoOrder() const;

  private:
    void addEdge(int from, int to, const ir::Value *value);

    const ir::BasicBlock *bb_;
    std::vector<DfgNode> nodes_;
    std::vector<DfgEdge> edges_;
    int sourceId_ = 0;
    int sinkId_ = 0;
};

} // namespace soff::dfg
