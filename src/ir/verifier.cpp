#include "ir/verifier.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace soff::ir
{

namespace
{

/** Immediate-dominator computation (simple iterative data-flow). */
std::map<const BasicBlock *, const BasicBlock *>
computeIdom(const Kernel &kernel)
{
    std::map<const BasicBlock *, const BasicBlock *> idom;
    if (kernel.numBlocks() == 0)
        return idom;

    // Reverse post-order.
    std::vector<const BasicBlock *> rpo;
    std::set<const BasicBlock *> visited;
    std::vector<std::pair<const BasicBlock *, size_t>> stack;
    stack.push_back({kernel.entry(), 0});
    visited.insert(kernel.entry());
    while (!stack.empty()) {
        auto &[bb, idx] = stack.back();
        auto succs = bb->successors();
        if (idx < succs.size()) {
            BasicBlock *s = succs[idx++];
            if (visited.insert(s).second)
                stack.push_back({s, 0});
        } else {
            rpo.push_back(bb);
            stack.pop_back();
        }
    }
    std::reverse(rpo.begin(), rpo.end());
    std::map<const BasicBlock *, size_t> rpoIndex;
    for (size_t i = 0; i < rpo.size(); ++i)
        rpoIndex[rpo[i]] = i;

    auto preds = kernel.predecessorMap();
    idom[kernel.entry()] = kernel.entry();
    bool changed = true;
    auto intersect = [&](const BasicBlock *a, const BasicBlock *b) {
        while (a != b) {
            while (rpoIndex.at(a) > rpoIndex.at(b))
                a = idom.at(a);
            while (rpoIndex.at(b) > rpoIndex.at(a))
                b = idom.at(b);
        }
        return a;
    };
    while (changed) {
        changed = false;
        for (const BasicBlock *bb : rpo) {
            if (bb == kernel.entry())
                continue;
            const BasicBlock *new_idom = nullptr;
            for (const BasicBlock *p : preds.at(bb)) {
                if (!idom.count(p))
                    continue;
                new_idom = new_idom == nullptr ? p : intersect(p, new_idom);
            }
            if (new_idom != nullptr && (!idom.count(bb) ||
                                        idom.at(bb) != new_idom)) {
                idom[bb] = new_idom;
                changed = true;
            }
        }
    }
    return idom;
}

bool
dominates(const std::map<const BasicBlock *, const BasicBlock *> &idom,
          const BasicBlock *a, const BasicBlock *b)
{
    // Walks b's dominator chain looking for a.
    const BasicBlock *cur = b;
    while (true) {
        if (cur == a)
            return true;
        auto it = idom.find(cur);
        if (it == idom.end() || it->second == cur)
            return cur == a;
        cur = it->second;
    }
}

class KernelVerifier
{
  public:
    explicit KernelVerifier(const Kernel &kernel) : kernel_(kernel) {}

    std::vector<std::string>
    run()
    {
        if (kernel_.numBlocks() == 0) {
            fail("kernel has no basic blocks");
            return errors_;
        }
        collectValues();
        checkBlocks();
        checkDominance();
        return errors_;
    }

  private:
    void
    fail(const std::string &msg)
    {
        errors_.push_back("[" + kernel_.name() + "] " + msg);
    }

    void
    collectValues()
    {
        for (size_t i = 0; i < kernel_.numArguments(); ++i)
            known_.insert(kernel_.argument(i));
        for (const auto &bb : kernel_.blocks()) {
            for (const auto &inst : bb->instructions()) {
                known_.insert(inst.get());
                defBlock_[inst.get()] = bb.get();
                defIndex_[inst.get()] = 0; // filled below
            }
        }
        for (const auto &bb : kernel_.blocks()) {
            for (size_t i = 0; i < bb->size(); ++i)
                defIndex_[bb->inst(i)] = i;
        }
    }

    void
    checkBlocks()
    {
        auto preds = kernel_.predecessorMap();
        for (const auto &bb : kernel_.blocks()) {
            if (bb->terminator() == nullptr) {
                fail("block " + bb->name() + " is not terminated");
                continue;
            }
            for (size_t i = 0; i < bb->size(); ++i) {
                const Instruction *inst = bb->inst(i);
                if (inst->isTerminator() && i + 1 != bb->size())
                    fail("terminator not last in " + bb->name());
                if (inst->op() == Opcode::Phi && i > bb->firstNonPhi())
                    fail("phi after non-phi in " + bb->name());
                checkInstruction(*bb, *inst, preds.at(bb.get()));
            }
        }
    }

    void
    checkInstruction(const BasicBlock &bb, const Instruction &inst,
                     const std::vector<BasicBlock *> &preds)
    {
        for (const Value *op : inst.operands()) {
            if (op == nullptr) {
                fail("null operand in " + bb.name() + ": " + inst.str());
            } else if (op->isInstruction() || op->isArgument()) {
                if (!known_.count(op))
                    fail("foreign operand in " + inst.str());
            }
        }
        switch (inst.op()) {
          case Opcode::Phi: {
            if (inst.numOperands() != preds.size() ||
                inst.phiBlocks().size() != preds.size()) {
                fail("phi incoming count mismatch in " + bb.name() +
                     ": " + inst.str());
                break;
            }
            std::set<const BasicBlock *> pset(preds.begin(), preds.end());
            for (const BasicBlock *in : inst.phiBlocks()) {
                if (!pset.count(in))
                    fail("phi incoming from non-predecessor in " +
                         bb.name());
            }
            for (const Value *op : inst.operands()) {
                if (op->type() != inst.type())
                    fail("phi operand type mismatch: " + inst.str());
            }
            break;
          }
          case Opcode::CondBr:
            if (!inst.operand(0)->type()->isBool())
                fail("condbr condition not i1: " + inst.str());
            break;
          case Opcode::Load:
            if (!inst.operand(0)->type()->isPointer())
                fail("load pointer operand expected: " + inst.str());
            break;
          case Opcode::Store:
            if (!inst.operand(0)->type()->isPointer() ||
                inst.operand(0)->type()->pointee() !=
                    inst.operand(1)->type()) {
                fail("store type mismatch: " + inst.str());
            }
            break;
          case Opcode::Ret:
            if (kernel_.returnType()->isVoid()) {
                if (inst.numOperands() != 0)
                    fail("ret with value in void function");
            } else if (inst.numOperands() != 1 ||
                       inst.operand(0)->type() != kernel_.returnType()) {
                fail("ret value type mismatch");
            }
            break;
          case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
          case Opcode::SDiv: case Opcode::UDiv: case Opcode::SRem:
          case Opcode::URem: case Opcode::And: case Opcode::Or:
          case Opcode::Xor: case Opcode::Shl: case Opcode::LShr:
          case Opcode::AShr:
            if (inst.operand(0)->type() != inst.operand(1)->type() ||
                inst.type() != inst.operand(0)->type() ||
                !inst.type()->isIntOrBool()) {
                fail("integer binop type mismatch: " + inst.str());
            }
            break;
          case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul:
          case Opcode::FDiv: case Opcode::FRem:
            if (inst.operand(0)->type() != inst.operand(1)->type() ||
                inst.type() != inst.operand(0)->type() ||
                !inst.type()->isFloat()) {
                fail("float binop type mismatch: " + inst.str());
            }
            break;
          default:
            break;
        }
    }

    void
    checkDominance()
    {
        auto idom = computeIdom(kernel_);
        for (const auto &bb : kernel_.blocks()) {
            for (size_t i = 0; i < bb->size(); ++i) {
                const Instruction *inst = bb->inst(i);
                for (size_t k = 0; k < inst->numOperands(); ++k) {
                    const Value *op = inst->operand(k);
                    if (op == nullptr || !op->isInstruction())
                        continue;
                    const auto *def =
                        static_cast<const Instruction *>(op);
                    auto it = defBlock_.find(def);
                    if (it == defBlock_.end())
                        continue;
                    const BasicBlock *db = it->second;
                    const BasicBlock *use_block = bb.get();
                    size_t use_index = i;
                    if (inst->op() == Opcode::Phi) {
                        // Use happens at the end of the incoming block.
                        use_block = inst->phiBlocks()[k];
                        use_index = use_block->size();
                    }
                    if (db == use_block) {
                        if (defIndex_.at(def) >= use_index &&
                            inst->op() != Opcode::Phi) {
                            fail("use before def in " + bb->name() + ": " +
                                 inst->str());
                        }
                    } else if (!dominates(idom, db, use_block)) {
                        fail("def does not dominate use: " + inst->str());
                    }
                }
            }
        }
    }

    const Kernel &kernel_;
    std::vector<std::string> errors_;
    std::set<const Value *> known_;
    std::map<const Instruction *, const BasicBlock *> defBlock_;
    std::map<const Instruction *, size_t> defIndex_;
};

} // namespace

std::vector<std::string>
verifyKernel(const Kernel &kernel)
{
    return KernelVerifier(kernel).run();
}

std::vector<std::string>
verifyModule(const Module &module)
{
    std::vector<std::string> errors;
    for (const auto &k : module.kernels()) {
        auto e = verifyKernel(*k);
        errors.insert(errors.end(), e.begin(), e.end());
    }
    return errors;
}

void
verifyOrThrow(const Module &module)
{
    auto errors = verifyModule(module);
    if (!errors.empty()) {
        throw CompileError("IR verification failed:\n" +
                           strJoin(errors, "\n"));
    }
}

} // namespace soff::ir
