/**
 * @file
 * Basic blocks: ordered instruction lists ending in one terminator.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/instruction.hpp"

namespace soff::ir
{

class Kernel;

/** A basic block. Owns its instructions. */
class BasicBlock
{
  public:
    BasicBlock(int id, const std::string &name) : id_(id), name_(name) {}
    BasicBlock(const BasicBlock &) = delete;
    BasicBlock &operator=(const BasicBlock &) = delete;

    int id() const { return id_; }
    const std::string &name() const { return name_; }
    void setName(const std::string &name) { name_ = name; }

    Kernel *parent() const { return parent_; }
    void setParent(Kernel *k) { parent_ = k; }

    const std::vector<std::unique_ptr<Instruction>> &
    instructions() const
    {
        return insts_;
    }
    size_t size() const { return insts_.size(); }
    bool empty() const { return insts_.empty(); }
    Instruction *inst(size_t i) const { return insts_.at(i).get(); }

    /** Appends and takes ownership; returns the raw pointer. */
    Instruction *
    append(std::unique_ptr<Instruction> inst)
    {
        inst->setParent(this);
        insts_.push_back(std::move(inst));
        return insts_.back().get();
    }

    /** Inserts at position i. */
    Instruction *
    insert(size_t i, std::unique_ptr<Instruction> inst)
    {
        inst->setParent(this);
        insts_.insert(insts_.begin() + static_cast<ptrdiff_t>(i),
                      std::move(inst));
        return insts_[i].get();
    }

    /** Removes the instruction at position i (it must be unused). */
    void
    erase(size_t i)
    {
        insts_.erase(insts_.begin() + static_cast<ptrdiff_t>(i));
    }

    /** Releases the tail of the block starting at position i. */
    std::vector<std::unique_ptr<Instruction>>
    splitOffTail(size_t i)
    {
        std::vector<std::unique_ptr<Instruction>> tail;
        for (size_t j = i; j < insts_.size(); ++j)
            tail.push_back(std::move(insts_[j]));
        insts_.resize(i);
        return tail;
    }

    /** The terminator, or nullptr if the block is not yet terminated. */
    Instruction *
    terminator() const
    {
        if (insts_.empty() || !insts_.back()->isTerminator())
            return nullptr;
        return insts_.back().get();
    }

    /** Successor blocks, from the terminator. */
    std::vector<BasicBlock *>
    successors() const
    {
        std::vector<BasicBlock *> out;
        if (Instruction *t = terminator()) {
            for (size_t i = 0; i < t->numSuccs(); ++i)
                out.push_back(t->succ(i));
        }
        return out;
    }

    /** Phi instructions (always a prefix of the block). */
    std::vector<Instruction *>
    phis() const
    {
        std::vector<Instruction *> out;
        for (const auto &inst : insts_) {
            if (inst->op() != Opcode::Phi)
                break;
            out.push_back(inst.get());
        }
        return out;
    }

    /** Index of the first non-phi instruction. */
    size_t
    firstNonPhi() const
    {
        size_t i = 0;
        while (i < insts_.size() && insts_[i]->op() == Opcode::Phi)
            ++i;
        return i;
    }

  private:
    int id_;
    std::string name_;
    Kernel *parent_ = nullptr;
    std::vector<std::unique_ptr<Instruction>> insts_;
};

} // namespace soff::ir
