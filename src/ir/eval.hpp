/**
 * @file
 * Runtime values and pure-instruction evaluation.
 *
 * Both the reference interpreter (the correctness oracle) and the
 * cycle-level simulator's functional units evaluate instructions through
 * this single implementation, so the two execution engines cannot
 * disagree about arithmetic semantics. Memory accesses and barriers are
 * *not* evaluated here — each engine implements those itself (that is
 * exactly what the paper's architecture is about).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ir/instruction.hpp"

namespace soff::ir
{

/**
 * A dynamic value flowing through an execution engine. Integers, bools,
 * and pointers are stored as a 64-bit pattern normalized to the type
 * width; floats as double; SSA arrays (promoted private arrays, paper
 * §III-C) as a copy-on-write buffer.
 */
struct RtValue
{
    enum class Kind : uint8_t { Empty, Int, Float, Array };

    Kind kind = Kind::Empty;
    uint64_t i = 0;
    double f = 0.0;
    std::shared_ptr<std::vector<RtValue>> arr;

    RtValue() = default;
    static RtValue
    makeInt(uint64_t v)
    {
        RtValue r;
        r.kind = Kind::Int;
        r.i = v;
        return r;
    }
    static RtValue
    makeFloat(double v)
    {
        RtValue r;
        r.kind = Kind::Float;
        r.f = v;
        return r;
    }
    static RtValue makeArray(uint64_t count);

    bool empty() const { return kind == Kind::Empty; }
    bool isInt() const { return kind == Kind::Int; }
    bool isFloat() const { return kind == Kind::Float; }
    bool isArray() const { return kind == Kind::Array; }

    /** Structural equality (for tests). */
    bool equals(const RtValue &other) const;
};

/** Work-item identity, needed to evaluate WorkItemInfo. */
struct WorkItemCtx
{
    uint64_t globalId[3] = {0, 0, 0};
    uint64_t localId[3] = {0, 0, 0};
    uint64_t groupId[3] = {0, 0, 0};
    uint64_t globalSize[3] = {1, 1, 1};
    uint64_t localSize[3] = {1, 1, 1};
    uint64_t numGroups[3] = {1, 1, 1};
    int workDim = 1;

    /** Linearized global id (row-major over dims). */
    uint64_t linearGlobalId() const;
    /** Linearized group id. */
    uint64_t linearGroupId() const;
    /** Linearized local id within the work-group. */
    uint64_t linearLocalId() const;
};

/** Normalizes a 64-bit pattern to the width/signedness of type. */
uint64_t normalizeInt(const Type *type, uint64_t bits);
/** Sign-aware widening of a normalized pattern to int64. */
int64_t signedValue(const Type *type, uint64_t bits);

/** Converts a Constant into an RtValue. */
RtValue constantValue(const Constant *c);

/**
 * Evaluates a side-effect-free instruction given already-evaluated
 * operands. Valid for every opcode except Phi, memory accesses, Barrier,
 * Call, and terminators.
 */
RtValue evalPure(const Instruction *inst,
                 const std::vector<RtValue> &operands,
                 const WorkItemCtx &wi);

/** Applies an AtomicOp to two normalized values of the given type. */
uint64_t evalAtomicOp(AtomicOp op, const Type *type, uint64_t current,
                      uint64_t operand);

/**
 * __local pointers are encoded above the global address space: variable
 * k's block starts at (k+1) << 40. Both execution engines (interpreter
 * and circuit simulator) share this encoding; the circuit routes local
 * accesses to their memory block statically and only uses the offset.
 */
constexpr uint64_t kLocalPtrBase = 1ULL << 40;

inline uint64_t
localPtrEncode(int var_index)
{
    return static_cast<uint64_t>(var_index + 1) * kLocalPtrBase;
}
inline bool isLocalPtr(uint64_t addr) { return addr >= kLocalPtrBase; }
inline int
localPtrVar(uint64_t addr)
{
    return static_cast<int>(addr / kLocalPtrBase) - 1;
}
inline uint64_t localPtrOffset(uint64_t addr)
{
    return addr % kLocalPtrBase;
}

} // namespace soff::ir
