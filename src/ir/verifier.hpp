/**
 * @file
 * IR well-formedness verification.
 *
 * The verifier runs after every transformation pass in debug flows and in
 * tests. It checks structural SSA invariants: single terminator per
 * block, phi/predecessor agreement, type coherence, and that definitions
 * dominate uses.
 */
#pragma once

#include <string>
#include <vector>

#include "ir/kernel.hpp"

namespace soff::ir
{

/** Verifies one kernel; returns a list of violations (empty if OK). */
std::vector<std::string> verifyKernel(const Kernel &kernel);

/** Verifies a module; returns a list of violations (empty if OK). */
std::vector<std::string> verifyModule(const Module &module);

/** Throws CompileError if the module is malformed. */
void verifyOrThrow(const Module &module);

} // namespace soff::ir
