/**
 * @file
 * IR instructions.
 *
 * A single Instruction class with an Opcode discriminator plus a few
 * payload fields keeps the IR compact; the datapath generator only ever
 * switches over opcodes anyway (one functional-unit kind per opcode
 * family, paper §IV-A).
 */
#pragma once

#include <vector>

#include "ir/value.hpp"

namespace soff::ir
{

class BasicBlock;
class Kernel;

/** Instruction opcodes. */
enum class Opcode
{
    // SSA join.
    Phi,
    // Integer arithmetic (operands and result share an int type).
    Add, Sub, Mul, SDiv, UDiv, SRem, URem,
    And, Or, Xor, Shl, LShr, AShr,
    // Floating-point arithmetic.
    FAdd, FSub, FMul, FDiv, FRem,
    // Unary.
    Neg, Not, FNeg,
    // Comparisons (result i1); predicate payload.
    ICmp, FCmp,
    // select(cond, a, b).
    Select,
    // Conversions.
    Trunc, ZExt, SExt, FPTrunc, FPExt,
    FPToSI, FPToUI, SIToFP, UIToFP, Bitcast, PtrToInt, IntToPtr,
    // Address arithmetic: pointer + byte offset (i64).
    PtrAdd,
    // Address of a kernel __local variable; payload localVar.
    LocalAddr,
    // Memory.
    Load,            // (ptr) -> value
    Store,           // (ptr, value) -> void
    AtomicRMW,       // (ptr, operand) -> old value; payload atomicOp
    AtomicCmpXchg,   // (ptr, expected, desired) -> old value
    // SSA aggregates: private arrays promoted to values (paper §III-C).
    ArrayExtract,    // (array, index) -> element
    ArrayInsert,     // (array, index, element) -> array
    ArraySplat,      // (element) -> array with all elements equal
    // Private-slot access (pre-mem2reg only); payload slot.
    SlotLoad,        // () -> slot value (scalar or whole array)
    SlotStore,       // (value) -> void
    // Work-item queries (paper §II-B1); payload wiQuery, operand dim.
    WorkItemInfo,
    // Built-in math; payload mathFunc.
    MathCall,
    // Work-group barrier (paper §II-B3); always a basic block of its own
    // after barrier splitting.
    Barrier,
    // Call of a user-defined function; removed by the inliner.
    Call,
    // Terminators.
    Br, CondBr, Ret,
};

const char *opcodeName(Opcode op);

/** Integer comparison predicates. */
enum class ICmpPred { EQ, NE, SLT, SLE, SGT, SGE, ULT, ULE, UGT, UGE };
/** Ordered floating-point comparison predicates. */
enum class FCmpPred { OEQ, ONE, OLT, OLE, OGT, OGE };
/** Atomic read-modify-write operations. */
enum class AtomicOp { Add, Sub, And, Or, Xor, SMin, SMax, UMin, UMax, Xchg };
/** Work-item ID queries. */
enum class WorkItemQuery
{
    GlobalId, LocalId, GroupId, GlobalSize, LocalSize, NumGroups, WorkDim,
};
/** Built-in math / integer functions. */
enum class MathFunc
{
    Sqrt, Rsqrt, Fabs, Exp, Exp2, Log, Log2, Log10,
    Sin, Cos, Tan, Asin, Acos, Atan, Atan2,
    Pow, Floor, Ceil, Round, Fmin, Fmax, Fmod, Hypot,
    Mad, Fma, Copysign,
    SMin, SMax, UMin, UMax, SAbs, SClamp, UClamp, FClamp,
};

const char *icmpPredName(ICmpPred p);
const char *fcmpPredName(FCmpPred p);
const char *atomicOpName(AtomicOp op);
const char *workItemQueryName(WorkItemQuery q);
const char *mathFuncName(MathFunc f);
/** Number of operands a MathFunc takes (1..3). */
int mathFuncArity(MathFunc f);

/** One IR instruction; also an SSA Value if its type is non-void. */
class Instruction : public Value
{
  public:
    Instruction(Opcode op, const Type *type)
        : Value(ValueKind::Instruction, type), op_(op)
    {}

    Opcode op() const { return op_; }

    const std::vector<Value *> &operands() const { return operands_; }
    Value *operand(size_t i) const { return operands_.at(i); }
    size_t numOperands() const { return operands_.size(); }
    void addOperand(Value *v) { operands_.push_back(v); }
    void setOperand(size_t i, Value *v) { operands_.at(i) = v; }

    BasicBlock *parent() const { return parent_; }
    void setParent(BasicBlock *bb) { parent_ = bb; }

    bool
    isTerminator() const
    {
        return op_ == Opcode::Br || op_ == Opcode::CondBr ||
               op_ == Opcode::Ret;
    }
    bool
    isMemoryAccess() const
    {
        return op_ == Opcode::Load || op_ == Opcode::Store ||
               op_ == Opcode::AtomicRMW || op_ == Opcode::AtomicCmpXchg;
    }
    bool
    isAtomic() const
    {
        return op_ == Opcode::AtomicRMW || op_ == Opcode::AtomicCmpXchg;
    }
    /** The pointer operand of a memory access. */
    Value *
    pointerOperand() const
    {
        return isMemoryAccess() ? operands_.at(0) : nullptr;
    }
    /** True if this memory access may write. */
    bool
    isMemoryWrite() const
    {
        return op_ == Opcode::Store || isAtomic();
    }

    // --- Payload accessors (valid per opcode; see Opcode docs) ---
    ICmpPred icmpPred() const { return icmpPred_; }
    void setIcmpPred(ICmpPred p) { icmpPred_ = p; }
    FCmpPred fcmpPred() const { return fcmpPred_; }
    void setFcmpPred(FCmpPred p) { fcmpPred_ = p; }
    AtomicOp atomicOp() const { return atomicOp_; }
    void setAtomicOp(AtomicOp op) { atomicOp_ = op; }
    WorkItemQuery wiQuery() const { return wiQuery_; }
    void setWiQuery(WorkItemQuery q) { wiQuery_ = q; }
    MathFunc mathFunc() const { return mathFunc_; }
    void setMathFunc(MathFunc f) { mathFunc_ = f; }
    const LocalVar *localVar() const { return localVar_; }
    void setLocalVar(const LocalVar *lv) { localVar_ = lv; }
    const PrivateSlot *slot() const { return slot_; }
    void setSlot(const PrivateSlot *s) { slot_ = s; }
    Kernel *callee() const { return callee_; }
    void setCallee(Kernel *k) { callee_ = k; }

    /** Phi: incoming blocks, parallel to operands. */
    const std::vector<BasicBlock *> &phiBlocks() const { return phiBlocks_; }
    void
    addPhiIncoming(Value *v, BasicBlock *from)
    {
        addOperand(v);
        phiBlocks_.push_back(from);
    }
    void setPhiBlock(size_t i, BasicBlock *bb) { phiBlocks_.at(i) = bb; }
    /** Removes a phi (value, block) pair. */
    void
    removePhiIncoming(size_t i)
    {
        operands_.erase(operands_.begin() + static_cast<ptrdiff_t>(i));
        phiBlocks_.erase(phiBlocks_.begin() + static_cast<ptrdiff_t>(i));
    }

    /** Br: succ(0); CondBr: succ(0)=true target, succ(1)=false target. */
    BasicBlock *succ(size_t i) const { return succs_.at(i); }
    size_t numSuccs() const { return succs_.size(); }
    void addSucc(BasicBlock *bb) { succs_.push_back(bb); }
    void setSucc(size_t i, BasicBlock *bb) { succs_.at(i) = bb; }

    /** Short textual form, e.g. "%5 = add i32 %3, %4". */
    std::string str() const;

  private:
    Opcode op_;
    std::vector<Value *> operands_;
    BasicBlock *parent_ = nullptr;

    ICmpPred icmpPred_ = ICmpPred::EQ;
    FCmpPred fcmpPred_ = FCmpPred::OEQ;
    AtomicOp atomicOp_ = AtomicOp::Add;
    WorkItemQuery wiQuery_ = WorkItemQuery::GlobalId;
    MathFunc mathFunc_ = MathFunc::Sqrt;
    const LocalVar *localVar_ = nullptr;
    const PrivateSlot *slot_ = nullptr;
    Kernel *callee_ = nullptr;
    std::vector<BasicBlock *> phiBlocks_;
    std::vector<BasicBlock *> succs_;
};

} // namespace soff::ir
