/**
 * @file
 * SSA values: the common Value base, constants, kernel arguments, and
 * kernel-scope __local variables.
 */
#pragma once

#include <cstdint>
#include <string>

#include "ir/type.hpp"

namespace soff::ir
{

class BasicBlock;
class Kernel;

/** Discriminator for Value. */
enum class ValueKind
{
    Constant,
    Argument,
    Instruction,
};

/**
 * Base of everything that can appear as an instruction operand.
 *
 * Values are owned by their Kernel (instructions via basic blocks,
 * arguments directly) or by the Module (interned constants); operand
 * lists hold non-owning pointers.
 */
class Value
{
  public:
    virtual ~Value() = default;

    ValueKind valueKind() const { return valueKind_; }
    const Type *type() const { return type_; }

    /** Stable per-kernel numbering assigned at creation; -1 if unset. */
    int id() const { return id_; }
    void setId(int id) { id_ = id; }

    const std::string &name() const { return name_; }
    void setName(const std::string &name) { name_ = name; }

    bool isConstant() const { return valueKind_ == ValueKind::Constant; }
    bool isArgument() const { return valueKind_ == ValueKind::Argument; }
    bool isInstruction() const
    {
        return valueKind_ == ValueKind::Instruction;
    }

  protected:
    Value(ValueKind kind, const Type *type)
        : valueKind_(kind), type_(type)
    {}

  private:
    ValueKind valueKind_;
    const Type *type_;
    int id_ = -1;
    std::string name_;
};

/**
 * A literal constant. Integers/booleans/pointers carry their (possibly
 * truncated) bit pattern in intBits; floats carry the value in fp.
 */
class Constant : public Value
{
  public:
    Constant(const Type *type, uint64_t int_bits, double fp)
        : Value(ValueKind::Constant, type), intBits_(int_bits), fp_(fp)
    {}

    uint64_t intBits() const { return intBits_; }
    double fp() const { return fp_; }

    /** Signed interpretation of the integer payload. */
    int64_t intSigned() const;

    std::string str() const;

  private:
    uint64_t intBits_ = 0;
    double fp_ = 0.0;
};

/** A kernel argument (paper §II-B1: uniform across all work-items). */
class Argument : public Value
{
  public:
    Argument(const Type *type, int index, const std::string &name)
        : Value(ValueKind::Argument, type), index_(index)
    {
        setName(name);
    }

    int index() const { return index_; }

    /** True for pointer arguments into global/constant memory (buffers). */
    bool
    isBuffer() const
    {
        return type()->isPointer() &&
               (type()->addrSpace() == AddrSpace::Global ||
                type()->addrSpace() == AddrSpace::Constant);
    }

  private:
    int index_;
};

/**
 * A __local variable declared inside a kernel (paper §V-B). Each becomes
 * one local memory block in the synthesized memory subsystem.
 */
class LocalVar
{
  public:
    LocalVar(const Type *type, int index, const std::string &name)
        : type_(type), index_(index), name_(name)
    {}

    /** Value type of the variable (scalar or array). */
    const Type *type() const { return type_; }
    int index() const { return index_; }
    const std::string &name() const { return name_; }
    uint64_t sizeBytes() const { return type_->sizeBytes(); }

  private:
    const Type *type_;
    int index_;
    std::string name_;
};

/**
 * A mutable private-memory variable produced by the frontend (a C local,
 * parameter shadow, or private array). Paper §III-C: each such variable
 * — including whole arrays, treated as one big value — is promoted to
 * SSA form by mem2reg unless its address is taken (which the frontend
 * rejects). Slots exist only between IR generation and mem2reg.
 */
class PrivateSlot
{
  public:
    PrivateSlot(const Type *type, int index, const std::string &name)
        : type_(type), index_(index), name_(name)
    {}

    const Type *type() const { return type_; }
    int index() const { return index_; }
    const std::string &name() const { return name_; }

  private:
    const Type *type_;
    int index_;
    std::string name_;
};

} // namespace soff::ir
