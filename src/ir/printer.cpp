#include "ir/printer.hpp"

namespace soff::ir
{

std::string
printKernel(const Kernel &kernel)
{
    std::string out;
    out += kernel.isKernel() ? "kernel @" : "func @";
    out += kernel.name() + "(";
    for (size_t i = 0; i < kernel.numArguments(); ++i) {
        const Argument *a = kernel.argument(i);
        if (i)
            out += ", ";
        out += a->type()->str() + " %" + a->name();
    }
    out += ")";
    if (!kernel.returnType()->isVoid())
        out += " : " + kernel.returnType()->str();
    out += " {\n";
    for (size_t i = 0; i < kernel.numLocalVars(); ++i) {
        const LocalVar *lv = kernel.localVar(i);
        out += "  local @" + lv->name() + " : " + lv->type()->str() + "\n";
    }
    for (size_t i = 0; i < kernel.numBlocks(); ++i) {
        const BasicBlock *bb = kernel.block(i);
        out += bb->name() + ":\n";
        for (const auto &inst : bb->instructions())
            out += "  " + inst->str() + "\n";
    }
    out += "}\n";
    return out;
}

std::string
printModule(const Module &module)
{
    std::string out = "; module " + module.name() + "\n";
    for (const auto &k : module.kernels()) {
        out += "\n";
        out += printKernel(*k);
    }
    return out;
}

} // namespace soff::ir
