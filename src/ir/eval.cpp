#include "ir/eval.hpp"

#include <cmath>

#include "support/error.hpp"

namespace soff::ir
{

RtValue
RtValue::makeArray(uint64_t count)
{
    RtValue r;
    r.kind = Kind::Array;
    r.arr = std::make_shared<std::vector<RtValue>>(count);
    return r;
}

bool
RtValue::equals(const RtValue &other) const
{
    if (kind != other.kind)
        return false;
    switch (kind) {
      case Kind::Empty:
        return true;
      case Kind::Int:
        return i == other.i;
      case Kind::Float:
        return f == other.f || (std::isnan(f) && std::isnan(other.f));
      case Kind::Array: {
        if (arr->size() != other.arr->size())
            return false;
        for (size_t k = 0; k < arr->size(); ++k) {
            if (!(*arr)[k].equals((*other.arr)[k]))
                return false;
        }
        return true;
      }
    }
    return false;
}

uint64_t
WorkItemCtx::linearGlobalId() const
{
    return globalId[0] + globalSize[0] * (globalId[1] +
           globalSize[1] * globalId[2]);
}

uint64_t
WorkItemCtx::linearGroupId() const
{
    return groupId[0] + numGroups[0] * (groupId[1] +
           numGroups[1] * groupId[2]);
}

uint64_t
WorkItemCtx::linearLocalId() const
{
    return localId[0] + localSize[0] * (localId[1] +
           localSize[1] * localId[2]);
}

uint64_t
normalizeInt(const Type *type, uint64_t bits)
{
    if (type->isPointer())
        return bits;
    if (type->isBool())
        return bits & 1;
    SOFF_ASSERT(type->isInt(), "normalizeInt needs int-ish type");
    int w = type->bits();
    if (w >= 64)
        return bits;
    return bits & ((1ULL << w) - 1);
}

int64_t
signedValue(const Type *type, uint64_t bits)
{
    if (type->isBool())
        return static_cast<int64_t>(bits & 1);
    int w = type->isPointer() ? 64 : type->bits();
    if (w >= 64)
        return static_cast<int64_t>(bits);
    uint64_t v = bits & ((1ULL << w) - 1);
    if (v & (1ULL << (w - 1)))
        v |= ~((1ULL << w) - 1);
    return static_cast<int64_t>(v);
}

RtValue
constantValue(const Constant *c)
{
    if (c->type()->isFloat())
        return RtValue::makeFloat(c->fp());
    return RtValue::makeInt(normalizeInt(c->type(), c->intBits()));
}

namespace
{

/** Rounds a double result through float precision for f32 types. */
double
roundToType(const Type *type, double v)
{
    if (type->bits() == 32)
        return static_cast<double>(static_cast<float>(v));
    return v;
}

uint64_t
wiQueryValue(WorkItemQuery q, const WorkItemCtx &wi, uint64_t dim)
{
    uint64_t d = dim < 3 ? dim : 0;
    switch (q) {
      case WorkItemQuery::GlobalId: return wi.globalId[d];
      case WorkItemQuery::LocalId: return wi.localId[d];
      case WorkItemQuery::GroupId: return wi.groupId[d];
      case WorkItemQuery::GlobalSize: return wi.globalSize[d];
      case WorkItemQuery::LocalSize: return wi.localSize[d];
      case WorkItemQuery::NumGroups: return wi.numGroups[d];
      case WorkItemQuery::WorkDim:
        return static_cast<uint64_t>(wi.workDim);
    }
    return 0;
}

double
evalMathF(MathFunc f, double a, double b, double c)
{
    switch (f) {
      case MathFunc::Sqrt: return std::sqrt(a);
      case MathFunc::Rsqrt: return 1.0 / std::sqrt(a);
      case MathFunc::Fabs: return std::fabs(a);
      case MathFunc::Exp: return std::exp(a);
      case MathFunc::Exp2: return std::exp2(a);
      case MathFunc::Log: return std::log(a);
      case MathFunc::Log2: return std::log2(a);
      case MathFunc::Log10: return std::log10(a);
      case MathFunc::Sin: return std::sin(a);
      case MathFunc::Cos: return std::cos(a);
      case MathFunc::Tan: return std::tan(a);
      case MathFunc::Asin: return std::asin(a);
      case MathFunc::Acos: return std::acos(a);
      case MathFunc::Atan: return std::atan(a);
      case MathFunc::Atan2: return std::atan2(a, b);
      case MathFunc::Pow: return std::pow(a, b);
      case MathFunc::Floor: return std::floor(a);
      case MathFunc::Ceil: return std::ceil(a);
      case MathFunc::Round: return std::round(a);
      case MathFunc::Fmin: return std::fmin(a, b);
      case MathFunc::Fmax: return std::fmax(a, b);
      case MathFunc::Fmod: return std::fmod(a, b);
      case MathFunc::Hypot: return std::hypot(a, b);
      case MathFunc::Mad: return a * b + c;
      case MathFunc::Fma: return std::fma(a, b, c);
      case MathFunc::Copysign: return std::copysign(a, b);
      case MathFunc::FClamp: return std::fmin(std::fmax(a, b), c);
      default:
        SOFF_ASSERT(false, "evalMathF: not a float function");
    }
    return 0.0;
}

} // namespace

uint64_t
evalAtomicOp(AtomicOp op, const Type *type, uint64_t current,
             uint64_t operand)
{
    int64_t sc = signedValue(type, current);
    int64_t so = signedValue(type, operand);
    uint64_t result = 0;
    switch (op) {
      case AtomicOp::Add: result = current + operand; break;
      case AtomicOp::Sub: result = current - operand; break;
      case AtomicOp::And: result = current & operand; break;
      case AtomicOp::Or: result = current | operand; break;
      case AtomicOp::Xor: result = current ^ operand; break;
      case AtomicOp::SMin:
        result = static_cast<uint64_t>(sc < so ? sc : so);
        break;
      case AtomicOp::SMax:
        result = static_cast<uint64_t>(sc > so ? sc : so);
        break;
      case AtomicOp::UMin: result = current < operand ? current : operand;
        break;
      case AtomicOp::UMax: result = current > operand ? current : operand;
        break;
      case AtomicOp::Xchg: result = operand; break;
    }
    return normalizeInt(type, result);
}

RtValue
evalPure(const Instruction *inst, const std::vector<RtValue> &ops,
         const WorkItemCtx &wi)
{
    const Type *ty = inst->type();
    auto iv = [&](size_t k) { return ops.at(k).i; };
    auto fv = [&](size_t k) { return ops.at(k).f; };
    // Signed view of operand k, using that operand's static type.
    auto sv = [&](size_t k) {
        return signedValue(inst->operand(k)->type(), ops.at(k).i);
    };
    auto retInt = [&](uint64_t v) {
        return RtValue::makeInt(normalizeInt(ty, v));
    };
    auto retFloat = [&](double v) {
        return RtValue::makeFloat(roundToType(ty, v));
    };

    switch (inst->op()) {
      case Opcode::Add: return retInt(iv(0) + iv(1));
      case Opcode::Sub: return retInt(iv(0) - iv(1));
      case Opcode::Mul: return retInt(iv(0) * iv(1));
      case Opcode::SDiv: {
        int64_t d = sv(1);
        return retInt(d == 0 ? 0 : static_cast<uint64_t>(sv(0) / d));
      }
      case Opcode::UDiv: {
        uint64_t d = iv(1);
        return retInt(d == 0 ? 0 : iv(0) / d);
      }
      case Opcode::SRem: {
        int64_t d = sv(1);
        return retInt(d == 0 ? 0 : static_cast<uint64_t>(sv(0) % d));
      }
      case Opcode::URem: {
        uint64_t d = iv(1);
        return retInt(d == 0 ? 0 : iv(0) % d);
      }
      case Opcode::And: return retInt(iv(0) & iv(1));
      case Opcode::Or: return retInt(iv(0) | iv(1));
      case Opcode::Xor: return retInt(iv(0) ^ iv(1));
      case Opcode::Shl: return retInt(iv(0) << (iv(1) & 63));
      case Opcode::LShr: return retInt(iv(0) >> (iv(1) & 63));
      case Opcode::AShr:
        return retInt(static_cast<uint64_t>(sv(0) >>
                                            static_cast<int>(iv(1) & 63)));
      case Opcode::FAdd: return retFloat(fv(0) + fv(1));
      case Opcode::FSub: return retFloat(fv(0) - fv(1));
      case Opcode::FMul: return retFloat(fv(0) * fv(1));
      case Opcode::FDiv: return retFloat(fv(0) / fv(1));
      case Opcode::FRem: return retFloat(std::fmod(fv(0), fv(1)));
      case Opcode::Neg: return retInt(0 - iv(0));
      case Opcode::Not: return retInt(~iv(0));
      case Opcode::FNeg: return retFloat(-fv(0));
      case Opcode::ICmp: {
        bool r = false;
        switch (inst->icmpPred()) {
          case ICmpPred::EQ: r = iv(0) == iv(1); break;
          case ICmpPred::NE: r = iv(0) != iv(1); break;
          case ICmpPred::SLT: r = sv(0) < sv(1); break;
          case ICmpPred::SLE: r = sv(0) <= sv(1); break;
          case ICmpPred::SGT: r = sv(0) > sv(1); break;
          case ICmpPred::SGE: r = sv(0) >= sv(1); break;
          case ICmpPred::ULT: r = iv(0) < iv(1); break;
          case ICmpPred::ULE: r = iv(0) <= iv(1); break;
          case ICmpPred::UGT: r = iv(0) > iv(1); break;
          case ICmpPred::UGE: r = iv(0) >= iv(1); break;
        }
        return RtValue::makeInt(r ? 1 : 0);
      }
      case Opcode::FCmp: {
        bool r = false;
        switch (inst->fcmpPred()) {
          case FCmpPred::OEQ: r = fv(0) == fv(1); break;
          case FCmpPred::ONE: r = fv(0) != fv(1) &&
              !std::isnan(fv(0)) && !std::isnan(fv(1)); break;
          case FCmpPred::OLT: r = fv(0) < fv(1); break;
          case FCmpPred::OLE: r = fv(0) <= fv(1); break;
          case FCmpPred::OGT: r = fv(0) > fv(1); break;
          case FCmpPred::OGE: r = fv(0) >= fv(1); break;
        }
        return RtValue::makeInt(r ? 1 : 0);
      }
      case Opcode::Select:
        return iv(0) ? ops.at(1) : ops.at(2);
      case Opcode::Trunc:
      case Opcode::ZExt:
        return retInt(iv(0));
      case Opcode::SExt:
        return retInt(static_cast<uint64_t>(sv(0)));
      case Opcode::FPTrunc:
      case Opcode::FPExt:
        return retFloat(fv(0));
      case Opcode::FPToSI:
        return retInt(static_cast<uint64_t>(static_cast<int64_t>(fv(0))));
      case Opcode::FPToUI:
        return retInt(static_cast<uint64_t>(fv(0)));
      case Opcode::SIToFP:
        return retFloat(static_cast<double>(sv(0)));
      case Opcode::UIToFP:
        return retFloat(static_cast<double>(iv(0)));
      case Opcode::Bitcast: {
        // Only int<->float bit reinterpretation of equal width.
        if (ty->isFloat() && ops.at(0).isInt()) {
            if (ty->bits() == 32) {
                float f;
                uint32_t b = static_cast<uint32_t>(iv(0));
                static_assert(sizeof(f) == sizeof(b));
                __builtin_memcpy(&f, &b, sizeof(f));
                return RtValue::makeFloat(f);
            }
            double d;
            uint64_t b = iv(0);
            __builtin_memcpy(&d, &b, sizeof(d));
            return RtValue::makeFloat(d);
        }
        if (ty->isIntOrBool() && ops.at(0).isFloat()) {
            const Type *src = inst->operand(0)->type();
            if (src->bits() == 32) {
                float f = static_cast<float>(fv(0));
                uint32_t b;
                __builtin_memcpy(&b, &f, sizeof(b));
                return retInt(b);
            }
            double d = fv(0);
            uint64_t b;
            __builtin_memcpy(&b, &d, sizeof(b));
            return retInt(b);
        }
        return ops.at(0);
      }
      case Opcode::PtrToInt:
      case Opcode::IntToPtr:
        return retInt(iv(0));
      case Opcode::PtrAdd:
        return RtValue::makeInt(iv(0) + iv(1));
      case Opcode::LocalAddr:
        return RtValue::makeInt(
            localPtrEncode(inst->localVar()->index()));
      case Opcode::ArrayExtract: {
        const auto &a = *ops.at(0).arr;
        uint64_t idx = iv(1);
        SOFF_ASSERT(idx < a.size(), "array extract out of bounds");
        return a[idx];
      }
      case Opcode::ArrayInsert: {
        RtValue a = ops.at(0);
        uint64_t idx = iv(1);
        SOFF_ASSERT(idx < a.arr->size(), "array insert out of bounds");
        if (a.arr.use_count() > 1)
            a.arr = std::make_shared<std::vector<RtValue>>(*a.arr);
        (*a.arr)[idx] = ops.at(2);
        return a;
      }
      case Opcode::ArraySplat: {
        RtValue a = RtValue::makeArray(ty->count());
        for (auto &e : *a.arr)
            e = ops.at(0);
        return a;
      }
      case Opcode::WorkItemInfo: {
        uint64_t dim = ops.empty() ? 0 : iv(0);
        return retInt(wiQueryValue(inst->wiQuery(), wi, dim));
      }
      case Opcode::MathCall: {
        MathFunc f = inst->mathFunc();
        switch (f) {
          case MathFunc::SMin: {
            int64_t a = sv(0), b = sv(1);
            return retInt(static_cast<uint64_t>(a < b ? a : b));
          }
          case MathFunc::SMax: {
            int64_t a = sv(0), b = sv(1);
            return retInt(static_cast<uint64_t>(a > b ? a : b));
          }
          case MathFunc::UMin:
            return retInt(iv(0) < iv(1) ? iv(0) : iv(1));
          case MathFunc::UMax:
            return retInt(iv(0) > iv(1) ? iv(0) : iv(1));
          case MathFunc::SAbs: {
            int64_t a = sv(0);
            return retInt(static_cast<uint64_t>(a < 0 ? -a : a));
          }
          case MathFunc::SClamp: {
            int64_t x = sv(0), lo = sv(1), hi = sv(2);
            int64_t r = x < lo ? lo : (x > hi ? hi : x);
            return retInt(static_cast<uint64_t>(r));
          }
          case MathFunc::UClamp: {
            uint64_t x = iv(0), lo = iv(1), hi = iv(2);
            return retInt(x < lo ? lo : (x > hi ? hi : x));
          }
          default: {
            double a = fv(0);
            double b = ops.size() > 1 && ops[1].isFloat() ? fv(1) : 0.0;
            double c = ops.size() > 2 && ops[2].isFloat() ? fv(2) : 0.0;
            // For f32, evaluate at float precision so the simulator and
            // a host float reference agree.
            if (ty->bits() == 32) {
                return retFloat(evalMathF(
                    f, static_cast<float>(a), static_cast<float>(b),
                    static_cast<float>(c)));
            }
            return retFloat(evalMathF(f, a, b, c));
          }
        }
      }
      default:
        SOFF_ASSERT(false, std::string("evalPure: unsupported opcode ") +
                    opcodeName(inst->op()));
    }
    return RtValue();
}

} // namespace soff::ir
