#include "ir/instruction.hpp"

#include "ir/basic_block.hpp"
#include "ir/kernel.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace soff::ir
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Phi: return "phi";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::SDiv: return "sdiv";
      case Opcode::UDiv: return "udiv";
      case Opcode::SRem: return "srem";
      case Opcode::URem: return "urem";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::LShr: return "lshr";
      case Opcode::AShr: return "ashr";
      case Opcode::FAdd: return "fadd";
      case Opcode::FSub: return "fsub";
      case Opcode::FMul: return "fmul";
      case Opcode::FDiv: return "fdiv";
      case Opcode::FRem: return "frem";
      case Opcode::Neg: return "neg";
      case Opcode::Not: return "not";
      case Opcode::FNeg: return "fneg";
      case Opcode::ICmp: return "icmp";
      case Opcode::FCmp: return "fcmp";
      case Opcode::Select: return "select";
      case Opcode::Trunc: return "trunc";
      case Opcode::ZExt: return "zext";
      case Opcode::SExt: return "sext";
      case Opcode::FPTrunc: return "fptrunc";
      case Opcode::FPExt: return "fpext";
      case Opcode::FPToSI: return "fptosi";
      case Opcode::FPToUI: return "fptoui";
      case Opcode::SIToFP: return "sitofp";
      case Opcode::UIToFP: return "uitofp";
      case Opcode::Bitcast: return "bitcast";
      case Opcode::PtrToInt: return "ptrtoint";
      case Opcode::IntToPtr: return "inttoptr";
      case Opcode::PtrAdd: return "ptradd";
      case Opcode::LocalAddr: return "localaddr";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::AtomicRMW: return "atomicrmw";
      case Opcode::AtomicCmpXchg: return "atomiccmpxchg";
      case Opcode::ArrayExtract: return "arrayextract";
      case Opcode::ArrayInsert: return "arrayinsert";
      case Opcode::ArraySplat: return "arraysplat";
      case Opcode::SlotLoad: return "slotload";
      case Opcode::SlotStore: return "slotstore";
      case Opcode::WorkItemInfo: return "wiinfo";
      case Opcode::MathCall: return "mathcall";
      case Opcode::Barrier: return "barrier";
      case Opcode::Call: return "call";
      case Opcode::Br: return "br";
      case Opcode::CondBr: return "condbr";
      case Opcode::Ret: return "ret";
    }
    return "?";
}

const char *
icmpPredName(ICmpPred p)
{
    switch (p) {
      case ICmpPred::EQ: return "eq";
      case ICmpPred::NE: return "ne";
      case ICmpPred::SLT: return "slt";
      case ICmpPred::SLE: return "sle";
      case ICmpPred::SGT: return "sgt";
      case ICmpPred::SGE: return "sge";
      case ICmpPred::ULT: return "ult";
      case ICmpPred::ULE: return "ule";
      case ICmpPred::UGT: return "ugt";
      case ICmpPred::UGE: return "uge";
    }
    return "?";
}

const char *
fcmpPredName(FCmpPred p)
{
    switch (p) {
      case FCmpPred::OEQ: return "oeq";
      case FCmpPred::ONE: return "one";
      case FCmpPred::OLT: return "olt";
      case FCmpPred::OLE: return "ole";
      case FCmpPred::OGT: return "ogt";
      case FCmpPred::OGE: return "oge";
    }
    return "?";
}

const char *
atomicOpName(AtomicOp op)
{
    switch (op) {
      case AtomicOp::Add: return "add";
      case AtomicOp::Sub: return "sub";
      case AtomicOp::And: return "and";
      case AtomicOp::Or: return "or";
      case AtomicOp::Xor: return "xor";
      case AtomicOp::SMin: return "smin";
      case AtomicOp::SMax: return "smax";
      case AtomicOp::UMin: return "umin";
      case AtomicOp::UMax: return "umax";
      case AtomicOp::Xchg: return "xchg";
    }
    return "?";
}

const char *
workItemQueryName(WorkItemQuery q)
{
    switch (q) {
      case WorkItemQuery::GlobalId: return "global_id";
      case WorkItemQuery::LocalId: return "local_id";
      case WorkItemQuery::GroupId: return "group_id";
      case WorkItemQuery::GlobalSize: return "global_size";
      case WorkItemQuery::LocalSize: return "local_size";
      case WorkItemQuery::NumGroups: return "num_groups";
      case WorkItemQuery::WorkDim: return "work_dim";
    }
    return "?";
}

const char *
mathFuncName(MathFunc f)
{
    switch (f) {
      case MathFunc::Sqrt: return "sqrt";
      case MathFunc::Rsqrt: return "rsqrt";
      case MathFunc::Fabs: return "fabs";
      case MathFunc::Exp: return "exp";
      case MathFunc::Exp2: return "exp2";
      case MathFunc::Log: return "log";
      case MathFunc::Log2: return "log2";
      case MathFunc::Log10: return "log10";
      case MathFunc::Sin: return "sin";
      case MathFunc::Cos: return "cos";
      case MathFunc::Tan: return "tan";
      case MathFunc::Asin: return "asin";
      case MathFunc::Acos: return "acos";
      case MathFunc::Atan: return "atan";
      case MathFunc::Atan2: return "atan2";
      case MathFunc::Pow: return "pow";
      case MathFunc::Floor: return "floor";
      case MathFunc::Ceil: return "ceil";
      case MathFunc::Round: return "round";
      case MathFunc::Fmin: return "fmin";
      case MathFunc::Fmax: return "fmax";
      case MathFunc::Fmod: return "fmod";
      case MathFunc::Hypot: return "hypot";
      case MathFunc::Mad: return "mad";
      case MathFunc::Fma: return "fma";
      case MathFunc::Copysign: return "copysign";
      case MathFunc::SMin: return "smin";
      case MathFunc::SMax: return "smax";
      case MathFunc::UMin: return "umin";
      case MathFunc::UMax: return "umax";
      case MathFunc::SAbs: return "sabs";
      case MathFunc::SClamp: return "sclamp";
      case MathFunc::UClamp: return "uclamp";
      case MathFunc::FClamp: return "fclamp";
    }
    return "?";
}

int
mathFuncArity(MathFunc f)
{
    switch (f) {
      case MathFunc::Atan2:
      case MathFunc::Pow:
      case MathFunc::Fmin:
      case MathFunc::Fmax:
      case MathFunc::Fmod:
      case MathFunc::Hypot:
      case MathFunc::Copysign:
      case MathFunc::SMin:
      case MathFunc::SMax:
      case MathFunc::UMin:
      case MathFunc::UMax:
        return 2;
      case MathFunc::Mad:
      case MathFunc::Fma:
      case MathFunc::SClamp:
      case MathFunc::UClamp:
      case MathFunc::FClamp:
        return 3;
      default:
        return 1;
    }
}

namespace
{

std::string
valueRef(const Value *v)
{
    if (v == nullptr)
        return "<null>";
    if (const auto *c = dynamic_cast<const Constant *>(v))
        return c->str();
    if (!v->name().empty())
        return "%" + v->name();
    return "%" + std::to_string(v->id());
}

} // namespace

std::string
Instruction::str() const
{
    std::string out;
    if (!type()->isVoid())
        out += valueRef(this) + " = ";
    out += opcodeName(op_);
    switch (op_) {
      case Opcode::ICmp:
        out += std::string(" ") + icmpPredName(icmpPred_);
        break;
      case Opcode::FCmp:
        out += std::string(" ") + fcmpPredName(fcmpPred_);
        break;
      case Opcode::AtomicRMW:
        out += std::string(" ") + atomicOpName(atomicOp_);
        break;
      case Opcode::WorkItemInfo:
        out += std::string(" ") + workItemQueryName(wiQuery_);
        break;
      case Opcode::MathCall:
        out += std::string(" ") + mathFuncName(mathFunc_);
        break;
      case Opcode::LocalAddr:
        out += " @" + localVar_->name();
        break;
      case Opcode::SlotLoad:
      case Opcode::SlotStore:
        out += " $" + slot_->name();
        break;
      case Opcode::Call:
        out += " @" + (callee_ ? callee_->name() : std::string("?"));
        break;
      default:
        break;
    }
    for (size_t i = 0; i < operands_.size(); ++i) {
        out += (i == 0 ? " " : ", ");
        out += valueRef(operands_[i]);
        if (op_ == Opcode::Phi && i < phiBlocks_.size())
            out += " [" + phiBlocks_[i]->name() + "]";
    }
    for (size_t i = 0; i < succs_.size(); ++i) {
        out += (operands_.empty() && i == 0 ? " " : ", ");
        out += succs_[i]->name();
    }
    if (!type()->isVoid())
        out += " : " + type()->str();
    return out;
}

std::string
Constant::str() const
{
    if (type()->isFloat())
        return strFormat("%g", fp_);
    if (type()->isPointer())
        return strFormat("ptr:%llu", (unsigned long long)intBits_);
    if (type()->isBool())
        return intBits_ ? "true" : "false";
    if (type()->isSigned())
        return std::to_string(intSigned());
    return std::to_string(intBits_);
}

int64_t
Constant::intSigned() const
{
    int bits = type()->bits();
    if (bits >= 64)
        return static_cast<int64_t>(intBits_);
    uint64_t v = intBits_ & ((1ULL << bits) - 1);
    if (v & (1ULL << (bits - 1)))
        v |= ~((1ULL << bits) - 1);
    return static_cast<int64_t>(v);
}

} // namespace soff::ir
