/**
 * @file
 * Textual IR printing (debugging and golden tests).
 */
#pragma once

#include <string>

#include "ir/kernel.hpp"

namespace soff::ir
{

/** Renders one kernel as text. */
std::string printKernel(const Kernel &kernel);

/** Renders a whole module as text. */
std::string printModule(const Module &module);

} // namespace soff::ir
