/**
 * @file
 * Kernels / functions and the Module that owns them.
 */
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/basic_block.hpp"

namespace soff::ir
{

class Module;

/**
 * A kernel or (pre-inlining) user-defined function. Owns its arguments,
 * __local variables, and basic blocks.
 */
class Kernel
{
  public:
    Kernel(const std::string &name, bool is_kernel, const Type *return_type)
        : name_(name), isKernel_(is_kernel), returnType_(return_type)
    {}
    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    const std::string &name() const { return name_; }
    bool isKernel() const { return isKernel_; }
    const Type *returnType() const { return returnType_; }

    /** The module that owns this kernel. */
    Module *module() const { return module_; }
    void setModule(Module *m) { module_ = m; }

    // --- Arguments ---
    Argument *
    addArgument(const Type *type, const std::string &name)
    {
        args_.push_back(std::make_unique<Argument>(
            type, static_cast<int>(args_.size()), name));
        args_.back()->setId(nextValueId());
        return args_.back().get();
    }
    size_t numArguments() const { return args_.size(); }
    Argument *argument(size_t i) const { return args_.at(i).get(); }

    // --- __local variables ---
    LocalVar *
    addLocalVar(const Type *type, const std::string &name)
    {
        localVars_.push_back(std::make_unique<LocalVar>(
            type, static_cast<int>(localVars_.size()), name));
        return localVars_.back().get();
    }
    size_t numLocalVars() const { return localVars_.size(); }
    LocalVar *localVar(size_t i) const { return localVars_.at(i).get(); }

    // --- Private slots (pre-mem2reg mutable variables) ---
    PrivateSlot *
    addSlot(const Type *type, const std::string &name)
    {
        slots_.push_back(std::make_unique<PrivateSlot>(
            type, static_cast<int>(slots_.size()), name));
        return slots_.back().get();
    }
    size_t numSlots() const { return slots_.size(); }
    PrivateSlot *slot(size_t i) const { return slots_.at(i).get(); }
    void clearSlots() { slots_.clear(); }

    // --- Basic blocks ---
    BasicBlock *
    addBlock(const std::string &name)
    {
        blocks_.push_back(std::make_unique<BasicBlock>(
            nextBlockId_++, name));
        blocks_.back()->setParent(this);
        return blocks_.back().get();
    }
    size_t numBlocks() const { return blocks_.size(); }
    BasicBlock *block(size_t i) const { return blocks_.at(i).get(); }
    BasicBlock *entry() const { return blocks_.empty() ? nullptr
                                                       : blocks_[0].get(); }
    const std::vector<std::unique_ptr<BasicBlock>> &
    blocks() const
    {
        return blocks_;
    }

    /** Removes blocks not reachable from the entry. */
    void removeUnreachableBlocks();

    /** Predecessor map, computed fresh from terminators. */
    std::map<const BasicBlock *, std::vector<BasicBlock *>>
    predecessorMap() const;

    /** Fresh value id for instructions/arguments of this kernel. */
    int nextValueId() { return nextValueId_++; }

    /** Assigns ids to every unnumbered instruction (printer support). */
    void renumber();

  private:
    std::string name_;
    bool isKernel_;
    const Type *returnType_;
    Module *module_ = nullptr;
    std::vector<std::unique_ptr<Argument>> args_;
    std::vector<std::unique_ptr<LocalVar>> localVars_;
    std::vector<std::unique_ptr<PrivateSlot>> slots_;
    std::vector<std::unique_ptr<BasicBlock>> blocks_;
    int nextBlockId_ = 0;
    int nextValueId_ = 0;
};

/**
 * A compilation unit: all kernels and user functions of one OpenCL
 * program, plus the type context and interned constants.
 */
class Module
{
  public:
    explicit Module(const std::string &name) : name_(name) {}
    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;

    const std::string &name() const { return name_; }
    TypeContext &types() { return types_; }
    const TypeContext &types() const { return types_; }

    Kernel *
    addKernel(const std::string &name, bool is_kernel,
              const Type *return_type)
    {
        kernels_.push_back(
            std::make_unique<Kernel>(name, is_kernel, return_type));
        kernels_.back()->setModule(this);
        return kernels_.back().get();
    }
    size_t numKernels() const { return kernels_.size(); }
    Kernel *kernel(size_t i) const { return kernels_.at(i).get(); }
    Kernel *findKernel(const std::string &name) const;
    const std::vector<std::unique_ptr<Kernel>> &kernels() const
    {
        return kernels_;
    }
    /** Removes non-kernel functions (after inlining). */
    void dropFunctions();

    /** Interned integer/bool/pointer-null constant. */
    Constant *constantInt(const Type *type, uint64_t bits);
    /** Interned floating-point constant. */
    Constant *constantFloat(const Type *type, double value);

  private:
    std::string name_;
    TypeContext types_;
    std::vector<std::unique_ptr<Kernel>> kernels_;
    std::map<std::pair<const Type *, uint64_t>, std::unique_ptr<Constant>>
        intConstants_;
    std::map<std::pair<const Type *, double>, std::unique_ptr<Constant>>
        fpConstants_;
};

} // namespace soff::ir
