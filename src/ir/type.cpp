#include "ir/type.hpp"

#include "support/error.hpp"

namespace soff::ir
{

const char *
addrSpaceName(AddrSpace as)
{
    switch (as) {
      case AddrSpace::Private: return "private";
      case AddrSpace::Global: return "global";
      case AddrSpace::Local: return "local";
      case AddrSpace::Constant: return "constant";
    }
    return "?";
}

uint64_t
Type::sizeBytes() const
{
    switch (kind_) {
      case TypeKind::Void:
        return 0;
      case TypeKind::Bool:
        return 1;
      case TypeKind::Int:
      case TypeKind::Float:
        return static_cast<uint64_t>(bits_) / 8;
      case TypeKind::Pointer:
        return 8;
      case TypeKind::Array:
        return element_->sizeBytes() * count_;
    }
    return 0;
}

std::string
Type::str() const
{
    switch (kind_) {
      case TypeKind::Void:
        return "void";
      case TypeKind::Bool:
        return "i1";
      case TypeKind::Int:
        return (isSigned_ ? "i" : "u") + std::to_string(bits_);
      case TypeKind::Float:
        return "f" + std::to_string(bits_);
      case TypeKind::Pointer:
        return std::string(addrSpaceName(addrSpace_)) + " " +
               pointee_->str() + "*";
      case TypeKind::Array:
        return "[" + std::to_string(count_) + " x " + element_->str() + "]";
    }
    return "?";
}

TypeContext::TypeContext()
{
    Type *v = make();
    v->kind_ = TypeKind::Void;
    voidTy_ = v;
    Type *b = make();
    b->kind_ = TypeKind::Bool;
    b->bits_ = 1;
    boolTy_ = b;
}

Type *
TypeContext::make()
{
    types_.push_back(std::unique_ptr<Type>(new Type()));
    return types_.back().get();
}

const Type *
TypeContext::intTy(int bits, bool is_signed)
{
    SOFF_ASSERT(bits == 8 || bits == 16 || bits == 32 || bits == 64,
                "unsupported integer width");
    for (const auto &t : types_) {
        if (t->kind_ == TypeKind::Int && t->bits_ == bits &&
            t->isSigned_ == is_signed) {
            return t.get();
        }
    }
    Type *t = make();
    t->kind_ = TypeKind::Int;
    t->bits_ = bits;
    t->isSigned_ = is_signed;
    return t;
}

const Type *
TypeContext::floatTy(int bits)
{
    SOFF_ASSERT(bits == 32 || bits == 64, "unsupported float width");
    for (const auto &t : types_) {
        if (t->kind_ == TypeKind::Float && t->bits_ == bits)
            return t.get();
    }
    Type *t = make();
    t->kind_ = TypeKind::Float;
    t->bits_ = bits;
    return t;
}

const Type *
TypeContext::ptrTy(const Type *pointee, AddrSpace as)
{
    for (const auto &t : types_) {
        if (t->kind_ == TypeKind::Pointer && t->pointee_ == pointee &&
            t->addrSpace_ == as) {
            return t.get();
        }
    }
    Type *t = make();
    t->kind_ = TypeKind::Pointer;
    t->pointee_ = pointee;
    t->addrSpace_ = as;
    return t;
}

const Type *
TypeContext::arrayTy(const Type *element, uint64_t count)
{
    for (const auto &t : types_) {
        if (t->kind_ == TypeKind::Array && t->element_ == element &&
            t->count_ == count) {
            return t.get();
        }
    }
    Type *t = make();
    t->kind_ = TypeKind::Array;
    t->element_ = element;
    t->count_ = count;
    return t;
}

} // namespace soff::ir
