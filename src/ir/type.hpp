/**
 * @file
 * The SOFF IR type system.
 *
 * Types are interned in a TypeContext and referred to by const pointer;
 * pointer equality is type equality. The type system mirrors the OpenCL C
 * subset SOFF supports: void, bool, integers (8/16/32/64, signed and
 * unsigned), floats (32/64), pointers qualified by an OpenCL address
 * space, and fixed-size arrays (used both for __local variables and for
 * private arrays promoted to SSA values, per paper §III-C).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace soff::ir
{

/** OpenCL address spaces (paper §II-B2). */
enum class AddrSpace
{
    Private,
    Global,
    Local,
    Constant,
};

const char *addrSpaceName(AddrSpace as);

/** Discriminator for Type. */
enum class TypeKind
{
    Void,
    Bool,
    Int,
    Float,
    Pointer,
    Array,
};

/**
 * An interned IR type. Instances are created only by TypeContext and
 * compared by address.
 */
class Type
{
  public:
    TypeKind kind() const { return kind_; }

    bool isVoid() const { return kind_ == TypeKind::Void; }
    bool isBool() const { return kind_ == TypeKind::Bool; }
    bool isInt() const { return kind_ == TypeKind::Int; }
    bool isFloat() const { return kind_ == TypeKind::Float; }
    bool isPointer() const { return kind_ == TypeKind::Pointer; }
    bool isArray() const { return kind_ == TypeKind::Array; }
    bool isScalar() const { return isBool() || isInt() || isFloat(); }
    bool isIntOrBool() const { return isBool() || isInt(); }

    /** Bit width for Bool (1), Int (8..64), and Float (32/64). */
    int bits() const { return bits_; }
    /** Signedness; meaningful for Int only. */
    bool isSigned() const { return isSigned_; }

    /** Pointee type; Pointer only. */
    const Type *pointee() const { return pointee_; }
    /** Address space; Pointer only. */
    AddrSpace addrSpace() const { return addrSpace_; }

    /** Element type; Array only. */
    const Type *element() const { return element_; }
    /** Element count; Array only. */
    uint64_t count() const { return count_; }

    /** Storage size in bytes (pointers are 8 bytes). */
    uint64_t sizeBytes() const;

    /** Human-readable spelling, e.g. "i32", "global f32*". */
    std::string str() const;

  private:
    friend class TypeContext;
    Type() = default;

    TypeKind kind_ = TypeKind::Void;
    int bits_ = 0;
    bool isSigned_ = true;
    const Type *pointee_ = nullptr;
    AddrSpace addrSpace_ = AddrSpace::Private;
    const Type *element_ = nullptr;
    uint64_t count_ = 0;
};

/**
 * Owns and interns all Type instances for a Module.
 */
class TypeContext
{
  public:
    TypeContext();
    TypeContext(const TypeContext &) = delete;
    TypeContext &operator=(const TypeContext &) = delete;

    const Type *voidTy() const { return voidTy_; }
    const Type *boolTy() const { return boolTy_; }
    const Type *intTy(int bits, bool is_signed);
    const Type *i8() { return intTy(8, true); }
    const Type *i16() { return intTy(16, true); }
    const Type *i32() { return intTy(32, true); }
    const Type *i64() { return intTy(64, true); }
    const Type *u8() { return intTy(8, false); }
    const Type *u16() { return intTy(16, false); }
    const Type *u32() { return intTy(32, false); }
    const Type *u64() { return intTy(64, false); }
    const Type *floatTy(int bits);
    const Type *f32() { return floatTy(32); }
    const Type *f64() { return floatTy(64); }
    const Type *ptrTy(const Type *pointee, AddrSpace as);
    const Type *arrayTy(const Type *element, uint64_t count);

  private:
    Type *make();

    std::vector<std::unique_ptr<Type>> types_;
    const Type *voidTy_;
    const Type *boolTy_;
};

} // namespace soff::ir
