#include "ir/builder.hpp"

#include "support/error.hpp"

namespace soff::ir
{

Instruction *
IRBuilder::emit(std::unique_ptr<Instruction> inst)
{
    SOFF_ASSERT(bb_ != nullptr, "IRBuilder has no insertion point");
    SOFF_ASSERT(bb_->terminator() == nullptr,
                "appending to a terminated block");
    inst->setId(kernel_->nextValueId());
    return bb_->append(std::move(inst));
}

Instruction *
IRBuilder::createBinOp(Opcode op, Value *a, Value *b)
{
    SOFF_ASSERT(a->type() == b->type(), "binop operand type mismatch");
    auto inst = std::make_unique<Instruction>(op, a->type());
    inst->addOperand(a);
    inst->addOperand(b);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createNeg(Value *a)
{
    auto inst = std::make_unique<Instruction>(Opcode::Neg, a->type());
    inst->addOperand(a);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createNot(Value *a)
{
    auto inst = std::make_unique<Instruction>(Opcode::Not, a->type());
    inst->addOperand(a);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createFNeg(Value *a)
{
    auto inst = std::make_unique<Instruction>(Opcode::FNeg, a->type());
    inst->addOperand(a);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createICmp(ICmpPred pred, Value *a, Value *b)
{
    SOFF_ASSERT(a->type() == b->type(), "icmp operand type mismatch");
    auto inst = std::make_unique<Instruction>(Opcode::ICmp,
                                              types().boolTy());
    inst->setIcmpPred(pred);
    inst->addOperand(a);
    inst->addOperand(b);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createFCmp(FCmpPred pred, Value *a, Value *b)
{
    SOFF_ASSERT(a->type() == b->type(), "fcmp operand type mismatch");
    auto inst = std::make_unique<Instruction>(Opcode::FCmp,
                                              types().boolTy());
    inst->setFcmpPred(pred);
    inst->addOperand(a);
    inst->addOperand(b);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createSelect(Value *cond, Value *a, Value *b)
{
    SOFF_ASSERT(a->type() == b->type(), "select arm type mismatch");
    auto inst = std::make_unique<Instruction>(Opcode::Select, a->type());
    inst->addOperand(cond);
    inst->addOperand(a);
    inst->addOperand(b);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createCast(Opcode op, Value *v, const Type *to)
{
    auto inst = std::make_unique<Instruction>(op, to);
    inst->addOperand(v);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createPtrAdd(Value *ptr, Value *byte_offset)
{
    SOFF_ASSERT(ptr->type()->isPointer(), "ptradd needs pointer");
    auto inst = std::make_unique<Instruction>(Opcode::PtrAdd, ptr->type());
    inst->addOperand(ptr);
    inst->addOperand(byte_offset);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createLocalAddr(const LocalVar *lv)
{
    const Type *elem =
        lv->type()->isArray() ? lv->type()->element() : lv->type();
    auto inst = std::make_unique<Instruction>(
        Opcode::LocalAddr, types().ptrTy(elem, AddrSpace::Local));
    inst->setLocalVar(lv);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createLoad(Value *ptr)
{
    SOFF_ASSERT(ptr->type()->isPointer(), "load needs pointer");
    auto inst = std::make_unique<Instruction>(Opcode::Load,
                                              ptr->type()->pointee());
    inst->addOperand(ptr);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createStore(Value *ptr, Value *value)
{
    SOFF_ASSERT(ptr->type()->isPointer(), "store needs pointer");
    SOFF_ASSERT(ptr->type()->pointee() == value->type(),
                "store value type mismatch");
    auto inst = std::make_unique<Instruction>(Opcode::Store,
                                              types().voidTy());
    inst->addOperand(ptr);
    inst->addOperand(value);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createAtomicRMW(AtomicOp op, Value *ptr, Value *operand)
{
    SOFF_ASSERT(ptr->type()->isPointer(), "atomicrmw needs pointer");
    auto inst = std::make_unique<Instruction>(Opcode::AtomicRMW,
                                              ptr->type()->pointee());
    inst->setAtomicOp(op);
    inst->addOperand(ptr);
    inst->addOperand(operand);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createAtomicCmpXchg(Value *ptr, Value *expected, Value *desired)
{
    SOFF_ASSERT(ptr->type()->isPointer(), "atomiccmpxchg needs pointer");
    auto inst = std::make_unique<Instruction>(Opcode::AtomicCmpXchg,
                                              ptr->type()->pointee());
    inst->addOperand(ptr);
    inst->addOperand(expected);
    inst->addOperand(desired);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createArrayExtract(Value *array, Value *index)
{
    SOFF_ASSERT(array->type()->isArray(), "arrayextract needs array");
    auto inst = std::make_unique<Instruction>(Opcode::ArrayExtract,
                                              array->type()->element());
    inst->addOperand(array);
    inst->addOperand(index);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createArrayInsert(Value *array, Value *index, Value *element)
{
    SOFF_ASSERT(array->type()->isArray(), "arrayinsert needs array");
    SOFF_ASSERT(array->type()->element() == element->type(),
                "arrayinsert element type mismatch");
    auto inst = std::make_unique<Instruction>(Opcode::ArrayInsert,
                                              array->type());
    inst->addOperand(array);
    inst->addOperand(index);
    inst->addOperand(element);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createArraySplat(const Type *array_ty, Value *element)
{
    SOFF_ASSERT(array_ty->isArray(), "arraysplat needs array type");
    auto inst = std::make_unique<Instruction>(Opcode::ArraySplat, array_ty);
    inst->addOperand(element);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createSlotLoad(const PrivateSlot *slot)
{
    auto inst = std::make_unique<Instruction>(Opcode::SlotLoad,
                                              slot->type());
    inst->setSlot(slot);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createSlotStore(const PrivateSlot *slot, Value *value)
{
    SOFF_ASSERT(slot->type() == value->type(),
                "slotstore value type mismatch");
    auto inst = std::make_unique<Instruction>(Opcode::SlotStore,
                                              types().voidTy());
    inst->setSlot(slot);
    inst->addOperand(value);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createWorkItemInfo(WorkItemQuery q, Value *dim)
{
    auto inst = std::make_unique<Instruction>(Opcode::WorkItemInfo,
                                              types().u64());
    inst->setWiQuery(q);
    if (dim != nullptr)
        inst->addOperand(dim);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createMathCall(MathFunc f, const Type *result_ty,
                          const std::vector<Value *> &args)
{
    SOFF_ASSERT(static_cast<int>(args.size()) == mathFuncArity(f),
                "mathcall arity mismatch");
    auto inst = std::make_unique<Instruction>(Opcode::MathCall, result_ty);
    inst->setMathFunc(f);
    for (Value *a : args)
        inst->addOperand(a);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createBarrier()
{
    auto inst = std::make_unique<Instruction>(Opcode::Barrier,
                                              types().voidTy());
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createCall(Kernel *callee, const std::vector<Value *> &args)
{
    auto inst = std::make_unique<Instruction>(Opcode::Call,
                                              callee->returnType());
    inst->setCallee(callee);
    for (Value *a : args)
        inst->addOperand(a);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createPhi(const Type *ty)
{
    SOFF_ASSERT(bb_ != nullptr, "IRBuilder has no insertion point");
    auto inst = std::make_unique<Instruction>(Opcode::Phi, ty);
    inst->setId(kernel_->nextValueId());
    return bb_->insert(bb_->firstNonPhi(), std::move(inst));
}

Instruction *
IRBuilder::createBr(BasicBlock *dest)
{
    auto inst = std::make_unique<Instruction>(Opcode::Br, types().voidTy());
    inst->addSucc(dest);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createCondBr(Value *cond, BasicBlock *t, BasicBlock *f)
{
    auto inst = std::make_unique<Instruction>(Opcode::CondBr,
                                              types().voidTy());
    inst->addOperand(cond);
    inst->addSucc(t);
    inst->addSucc(f);
    return emit(std::move(inst));
}

Instruction *
IRBuilder::createRet(Value *v)
{
    auto inst = std::make_unique<Instruction>(Opcode::Ret, types().voidTy());
    if (v != nullptr)
        inst->addOperand(v);
    return emit(std::move(inst));
}

} // namespace soff::ir
