#include "ir/kernel.hpp"

#include <set>

#include "support/error.hpp"

namespace soff::ir
{

void
Kernel::removeUnreachableBlocks()
{
    if (blocks_.empty())
        return;
    std::set<const BasicBlock *> reachable;
    std::vector<BasicBlock *> stack{entry()};
    while (!stack.empty()) {
        BasicBlock *bb = stack.back();
        stack.pop_back();
        if (!reachable.insert(bb).second)
            continue;
        for (BasicBlock *s : bb->successors())
            stack.push_back(s);
    }
    // Drop phi incomings from unreachable predecessors first.
    for (auto &bb : blocks_) {
        if (!reachable.count(bb.get()))
            continue;
        for (Instruction *phi : bb->phis()) {
            for (size_t i = phi->numOperands(); i-- > 0;) {
                if (!reachable.count(phi->phiBlocks()[i]))
                    phi->removePhiIncoming(i);
            }
        }
    }
    std::vector<std::unique_ptr<BasicBlock>> kept;
    for (auto &bb : blocks_) {
        if (reachable.count(bb.get()))
            kept.push_back(std::move(bb));
    }
    blocks_ = std::move(kept);
}

std::map<const BasicBlock *, std::vector<BasicBlock *>>
Kernel::predecessorMap() const
{
    std::map<const BasicBlock *, std::vector<BasicBlock *>> preds;
    for (const auto &bb : blocks_) {
        preds[bb.get()]; // ensure entry exists
        for (BasicBlock *s : bb->successors())
            preds[s].push_back(bb.get());
    }
    return preds;
}

void
Kernel::renumber()
{
    nextValueId_ = 0;
    for (auto &arg : args_)
        arg->setId(nextValueId());
    for (auto &bb : blocks_) {
        for (const auto &inst : bb->instructions())
            inst->setId(nextValueId());
    }
}

Kernel *
Module::findKernel(const std::string &name) const
{
    for (const auto &k : kernels_) {
        if (k->name() == name)
            return k.get();
    }
    return nullptr;
}

void
Module::dropFunctions()
{
    std::vector<std::unique_ptr<Kernel>> kept;
    for (auto &k : kernels_) {
        if (k->isKernel())
            kept.push_back(std::move(k));
    }
    kernels_ = std::move(kept);
}

Constant *
Module::constantInt(const Type *type, uint64_t bits)
{
    SOFF_ASSERT(type->isIntOrBool() || type->isPointer(),
                "constantInt needs int/bool/pointer type");
    // Normalize to the type's width so interning is canonical.
    if (type->isBool())
        bits &= 1;
    else if (type->isInt() && type->bits() < 64)
        bits &= (1ULL << type->bits()) - 1;
    auto key = std::make_pair(type, bits);
    auto it = intConstants_.find(key);
    if (it != intConstants_.end())
        return it->second.get();
    auto c = std::make_unique<Constant>(type, bits, 0.0);
    Constant *raw = c.get();
    intConstants_.emplace(key, std::move(c));
    return raw;
}

Constant *
Module::constantFloat(const Type *type, double value)
{
    SOFF_ASSERT(type->isFloat(), "constantFloat needs float type");
    auto key = std::make_pair(type, value);
    auto it = fpConstants_.find(key);
    if (it != fpConstants_.end())
        return it->second.get();
    auto c = std::make_unique<Constant>(type, 0, value);
    Constant *raw = c.get();
    fpConstants_.emplace(key, std::move(c));
    return raw;
}

} // namespace soff::ir
