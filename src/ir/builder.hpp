/**
 * @file
 * Convenience builder for constructing IR with light type checking.
 */
#pragma once

#include "ir/kernel.hpp"

namespace soff::ir
{

/** Builds instructions at the end of a current basic block. */
class IRBuilder
{
  public:
    explicit IRBuilder(Module &module) : module_(module) {}

    Module &module() { return module_; }
    TypeContext &types() { return module_.types(); }

    void
    setInsertPoint(BasicBlock *bb)
    {
        bb_ = bb;
        kernel_ = bb ? bb->parent() : nullptr;
    }
    BasicBlock *insertBlock() const { return bb_; }

    /** True if the current block already has a terminator. */
    bool
    terminated() const
    {
        return bb_ != nullptr && bb_->terminator() != nullptr;
    }

    // --- Constants ---
    Constant *constInt(const Type *ty, uint64_t v)
    {
        return module_.constantInt(ty, v);
    }
    Constant *constI32(int32_t v)
    {
        return module_.constantInt(types().i32(),
                                   static_cast<uint64_t>(static_cast<int64_t>(v)));
    }
    Constant *constI64(int64_t v)
    {
        return module_.constantInt(types().i64(), static_cast<uint64_t>(v));
    }
    Constant *constBool(bool v)
    {
        return module_.constantInt(types().boolTy(), v ? 1 : 0);
    }
    Constant *constFloat(const Type *ty, double v)
    {
        return module_.constantFloat(ty, v);
    }

    // --- Instructions ---
    Instruction *createBinOp(Opcode op, Value *a, Value *b);
    Instruction *createNeg(Value *a);
    Instruction *createNot(Value *a);
    Instruction *createFNeg(Value *a);
    Instruction *createICmp(ICmpPred pred, Value *a, Value *b);
    Instruction *createFCmp(FCmpPred pred, Value *a, Value *b);
    Instruction *createSelect(Value *cond, Value *a, Value *b);
    Instruction *createCast(Opcode op, Value *v, const Type *to);
    Instruction *createPtrAdd(Value *ptr, Value *byte_offset);
    Instruction *createLocalAddr(const LocalVar *lv);
    Instruction *createLoad(Value *ptr);
    Instruction *createStore(Value *ptr, Value *value);
    Instruction *createAtomicRMW(AtomicOp op, Value *ptr, Value *operand);
    Instruction *createAtomicCmpXchg(Value *ptr, Value *expected,
                                     Value *desired);
    Instruction *createArrayExtract(Value *array, Value *index);
    Instruction *createArrayInsert(Value *array, Value *index,
                                   Value *element);
    Instruction *createArraySplat(const Type *array_ty, Value *element);
    Instruction *createSlotLoad(const PrivateSlot *slot);
    Instruction *createSlotStore(const PrivateSlot *slot, Value *value);
    Instruction *createWorkItemInfo(WorkItemQuery q, Value *dim);
    Instruction *createMathCall(MathFunc f, const Type *result_ty,
                                const std::vector<Value *> &args);
    Instruction *createBarrier();
    Instruction *createCall(Kernel *callee,
                            const std::vector<Value *> &args);
    Instruction *createPhi(const Type *ty);
    Instruction *createBr(BasicBlock *dest);
    Instruction *createCondBr(Value *cond, BasicBlock *t, BasicBlock *f);
    Instruction *createRet(Value *v); // v may be nullptr for void

  private:
    Instruction *emit(std::unique_ptr<Instruction> inst);

    Module &module_;
    Kernel *kernel_ = nullptr;
    BasicBlock *bb_ = nullptr;
};

} // namespace soff::ir
