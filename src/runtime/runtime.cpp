#include "runtime/runtime.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>

#include "baseline/interpreter.hpp"
#include "runtime/launch_internal.hpp"
#include "sim/forensics.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace soff::rt
{

// ----------------------------------------------------------------------
// Device
// ----------------------------------------------------------------------
Device::Device(datapath::FpgaSpec fpga, uint64_t global_mem_bytes)
    : fpga_(std::move(fpga)), memory_(global_mem_bytes)
{
    // Address 0 is reserved (null); carve the rest as one free block.
    blocks_.push_back({64, global_mem_bytes - 64, false});
}

uint64_t
Device::allocate(uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    // 64-byte alignment keeps every scalar access within one cache line.
    uint64_t aligned = (bytes + 63) & ~63ull;
    for (size_t i = 0; i < blocks_.size(); ++i) {
        if (blocks_[i].used || blocks_[i].size < aligned)
            continue;
        uint64_t addr = blocks_[i].addr;
        uint64_t remaining = blocks_[i].size - aligned;
        blocks_[i].size = aligned;
        blocks_[i].used = true;
        if (remaining > 0) {
            // Note: insert first invalidates references into blocks_.
            blocks_.insert(blocks_.begin() + static_cast<ptrdiff_t>(i) + 1,
                           {addr + aligned, remaining, false});
        }
        return addr;
    }
    throw OpenClError(ClStatus::MemObjectAllocationFailure,
                      "device global memory exhausted");
}

void
Device::release(uint64_t addr)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t i = 0; i < blocks_.size(); ++i) {
        if (blocks_[i].addr != addr || !blocks_[i].used)
            continue;
        blocks_[i].used = false;
        // Coalesce with free neighbors.
        if (i + 1 < blocks_.size() && !blocks_[i + 1].used) {
            blocks_[i].size += blocks_[i + 1].size;
            blocks_.erase(blocks_.begin() + static_cast<ptrdiff_t>(i) + 1);
        }
        if (i > 0 && !blocks_[i - 1].used) {
            blocks_[i - 1].size += blocks_[i].size;
            blocks_.erase(blocks_.begin() + static_cast<ptrdiff_t>(i));
        }
        return;
    }
    throw OpenClError(ClStatus::InvalidValue,
                      "release of unknown device address");
}

namespace
{

/** GlobalMemory's block API takes a uint32_t size; reject transfers
 *  that would silently truncate instead of wrapping the length. */
void
checkDmaSize(uint64_t size)
{
    if (size > UINT32_MAX) {
        throw OpenClError(ClStatus::InvalidValue, strFormat(
            "DMA transfer of %llu bytes exceeds the 4 GiB block limit",
            static_cast<unsigned long long>(size)));
    }
}

} // namespace

void
Device::dmaWrite(uint64_t addr, uint64_t size, const void *src)
{
    checkDmaSize(size);
    std::lock_guard<std::mutex> lock(mutex_);
    memory_.writeBlock(addr, static_cast<uint32_t>(size),
                       static_cast<const uint8_t *>(src));
}

void
Device::dmaRead(uint64_t addr, uint64_t size, void *dst) const
{
    checkDmaSize(size);
    std::lock_guard<std::mutex> lock(mutex_);
    memory_.readBlock(addr, static_cast<uint32_t>(size),
                      static_cast<uint8_t *>(dst));
}

int
Device::reconfigurations() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return reconfigurations_;
}

bool
Device::ensureResident(const std::string &kernel, bool all_fit)
{
    if (all_fit)
        return false;
    std::lock_guard<std::mutex> lock(mutex_);
    if (resident_ == kernel)
        return false;
    ++reconfigurations_;
    resident_ = kernel;
    return true;
}

// ----------------------------------------------------------------------
// KernelHandle
// ----------------------------------------------------------------------
const std::string &
KernelHandle::name() const
{
    return compiled_->kernel->name();
}

size_t
KernelHandle::numArgs() const
{
    return compiled_->kernel->numArguments();
}

void
KernelHandle::checkIndex(size_t index, bool is_buffer) const
{
    if (index >= numArgs()) {
        throw OpenClError(ClStatus::InvalidArgIndex, strFormat(
            "kernel '%s' has %zu argument(s); index %zu out of range",
            name().c_str(), numArgs(), index));
    }
    const ir::Argument *arg = compiled_->kernel->argument(index);
    if (is_buffer != arg->type()->isPointer()) {
        throw OpenClError(ClStatus::InvalidArgValue, strFormat(
            "kernel '%s' argument %zu: %s expected", name().c_str(),
            index, arg->type()->isPointer() ? "a buffer" : "a scalar"));
    }
}

void
KernelHandle::setArg(size_t index, const Buffer &buffer)
{
    checkIndex(index, true);
    args_[index] = ir::RtValue::makeInt(buffer.deviceAddress());
    bufferArgs_[index] = {buffer.deviceAddress(), buffer.size()};
}

std::vector<std::pair<uint64_t, uint64_t>>
KernelHandle::bufferSpans() const
{
    std::vector<std::pair<uint64_t, uint64_t>> spans;
    spans.reserve(bufferArgs_.size());
    for (const auto &kv : bufferArgs_)
        spans.push_back(kv.second);
    return spans;
}

namespace
{

ir::RtValue
scalarArg(const ir::Argument *arg, double fp, uint64_t bits)
{
    if (arg->type()->isFloat())
        return ir::RtValue::makeFloat(
            arg->type()->bits() == 32
                ? static_cast<double>(static_cast<float>(fp)) : fp);
    return ir::RtValue::makeInt(ir::normalizeInt(arg->type(), bits));
}

} // namespace

void
KernelHandle::setArg(size_t index, int32_t v)
{
    checkIndex(index, false);
    args_[index] = scalarArg(compiled_->kernel->argument(index),
                             static_cast<double>(v),
                             static_cast<uint64_t>(static_cast<int64_t>(v)));
}

void
KernelHandle::setArg(size_t index, uint32_t v)
{
    checkIndex(index, false);
    args_[index] = scalarArg(compiled_->kernel->argument(index),
                             static_cast<double>(v), v);
}

void
KernelHandle::setArg(size_t index, int64_t v)
{
    checkIndex(index, false);
    args_[index] = scalarArg(compiled_->kernel->argument(index),
                             static_cast<double>(v),
                             static_cast<uint64_t>(v));
}

void
KernelHandle::setArg(size_t index, uint64_t v)
{
    checkIndex(index, false);
    args_[index] = scalarArg(compiled_->kernel->argument(index),
                             static_cast<double>(v), v);
}

void
KernelHandle::setArg(size_t index, float v)
{
    checkIndex(index, false);
    args_[index] = scalarArg(compiled_->kernel->argument(index),
                             static_cast<double>(v),
                             static_cast<uint64_t>(v));
}

void
KernelHandle::setArg(size_t index, double v)
{
    checkIndex(index, false);
    args_[index] = scalarArg(compiled_->kernel->argument(index), v,
                             static_cast<uint64_t>(v));
}

std::map<const ir::Argument *, ir::RtValue>
KernelHandle::argValues() const
{
    std::map<const ir::Argument *, ir::RtValue> values;
    for (size_t i = 0; i < numArgs(); ++i) {
        auto it = args_.find(i);
        if (it == args_.end()) {
            throw OpenClError(ClStatus::InvalidKernelArgs, strFormat(
                "kernel '%s' argument %zu was never set",
                name().c_str(), i));
        }
        values[compiled_->kernel->argument(i)] = it->second;
    }
    return values;
}

// ----------------------------------------------------------------------
// Program
// ----------------------------------------------------------------------
KernelHandle
Program::createKernel(const std::string &name)
{
    const core::CompiledKernel *ck = compiled_->findKernel(name);
    if (ck == nullptr) {
        throw OpenClError(ClStatus::InvalidKernelName,
                          "no kernel named '" + name + "' in program");
    }
    return KernelHandle(this, ck);
}

int
Program::instancesFor(const core::CompiledKernel &kernel) const
{
    // §III-B: all kernels resident together when they fit; otherwise
    // the region is reconfigured per kernel and each kernel gets the
    // whole device.
    bool all_fit = true;
    for (int n : compiled_->sharedInstanceCounts)
        all_fit &= n > 0;
    if (all_fit && compiled_->kernels.size() > 1) {
        for (size_t i = 0; i < compiled_->kernels.size(); ++i) {
            if (&compiled_->kernels[i] == &kernel)
                return compiled_->sharedInstanceCounts[i];
        }
    }
    return kernel.maxInstancesAlone;
}

bool
Program::needsReconfiguration(const core::CompiledKernel &kernel) const
{
    bool all_fit = true;
    for (int n : compiled_->sharedInstanceCounts)
        all_fit &= n > 0;
    if (all_fit)
        return false;
    return device_->residentKernel() != kernel.kernel->name();
}

// ----------------------------------------------------------------------
// Context
// ----------------------------------------------------------------------
namespace
{

/**
 * Strict SOFF_THREADS parser: a bare positive decimal integer in
 * [1, 1024]. Anything else — non-numeric text, trailing garbage,
 * zero, negatives, overflow — is rejected with CL_INVALID_VALUE
 * rather than silently becoming atoi()'s 0 (= "auto").
 */
int
parseThreadCount(const char *text)
{
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(text, &end, 10);
    bool bare_digits = *text >= '0' && *text <= '9'; // no ws/sign
    if (!bare_digits || end == text || *end != '\0' || errno == ERANGE ||
        v < 1 || v > 1024) {
        throw OpenClError(ClStatus::InvalidValue, strFormat(
            "invalid SOFF_THREADS '%s': expected an integer between 1 "
            "and 1024 (unset or 0-valued config means "
            "hardware_concurrency)", text));
    }
    return static_cast<int>(v);
}

/**
 * Strict cycle-bound parser for the SOFF_TRACE window: a bare decimal
 * uint64 (no sign, no whitespace, no trailing text). `what` and `spec`
 * feed the error message.
 */
uint64_t
parseCycleBound(const char *what, const std::string &text,
                const char *spec)
{
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    bool bare_digits =
        !text.empty() && text[0] >= '0' && text[0] <= '9';
    if (!bare_digits || end == text.c_str() || *end != '\0' ||
        errno == ERANGE) {
        throw OpenClError(ClStatus::InvalidValue, strFormat(
            "invalid SOFF_TRACE '%s': %s cycle '%s' is not a bare "
            "decimal integer (expected file.json or "
            "file.json:start:end)", spec, what, text.c_str()));
    }
    return v;
}

/**
 * Strict SOFF_TRACE parser. Grammar: "file.json" (trace the whole run)
 * or "file.json:start:end" (trace the half-open cycle window
 * [start, end)). A value containing any colon must carry a complete,
 * well-formed window — a lone ":start", non-numeric bounds, or
 * start >= end are rejected with CL_INVALID_VALUE rather than silently
 * tracing the wrong cycles.
 */
void
parseTraceSpec(const char *text, sim::PlatformConfig &plat)
{
    std::string spec(text);
    size_t last = spec.rfind(':');
    if (last == std::string::npos) {
        plat.tracePath = spec;
        return;
    }
    size_t first = last == 0 ? std::string::npos
                             : spec.rfind(':', last - 1);
    if (first == std::string::npos || first == 0) {
        throw OpenClError(ClStatus::InvalidValue, strFormat(
            "invalid SOFF_TRACE '%s': expected file.json or "
            "file.json:start:end (both window bounds required)", text));
    }
    uint64_t start = parseCycleBound(
        "start", spec.substr(first + 1, last - first - 1), text);
    uint64_t end = parseCycleBound("end", spec.substr(last + 1), text);
    if (start >= end) {
        throw OpenClError(ClStatus::InvalidValue, strFormat(
            "invalid SOFF_TRACE '%s': window start %llu must be below "
            "end %llu", text, static_cast<unsigned long long>(start),
            static_cast<unsigned long long>(end)));
    }
    plat.tracePath = spec.substr(0, first);
    plat.traceStart = start;
    plat.traceEnd = end;
}

/**
 * Environment overrides. SOFF_SCHEDULER selects the simulation kernel
 * by name ("reference", "event-driven", "parallel", "compiled",
 * "cross-check") — applied only when the caller left the default
 * (Compiled), so code that explicitly pins a mode (tests, benchmark
 * baselines, the cross-check itself) is not affected. SOFF_SPECIALIZE=0
 * turns the default Compiled scheduler back into plain EventDriven
 * (and clears PlatformConfig::specialize, a circuit-cache key field).
 * SOFF_BATCH_STEP=0 keeps the compiled plan but steps awake replicas
 * one at a time instead of batching whole (level, thunk) buckets
 * (PlatformConfig::batchStep, also a cache-key field).
 * SOFF_THREADS sets the parallel worker count when the
 * caller left it at 0 (auto). SOFF_FAULTS installs a delay-only
 * fault-injection plan (sim/fault.hpp grammar) when the caller did
 * not already configure one. SOFF_TRACE enables the Chrome trace
 * exporter and SOFF_STATS the structured StatsReport export, each only
 * when the caller did not already set a path.
 */
void
applyEnvOverrides(sim::PlatformConfig &plat)
{
    // SOFF_SPECIALIZE=0 disables the compiled-circuit specialization
    // pass: a default Compiled scheduler is demoted below.
    {
        const char *spec = std::getenv("SOFF_SPECIALIZE");
        if (spec != nullptr && std::string(spec) == "0")
            plat.specialize = false;
    }
    // SOFF_BATCH_STEP=0 turns off the batched replica stepping inside
    // the compiled sweep (the plan itself stays on; the sweep steps
    // one replica at a time — the ablation baseline). Strict parse
    // like the other knobs: only "0" and "1" are meaningful.
    {
        const char *batch = std::getenv("SOFF_BATCH_STEP");
        if (batch != nullptr && *batch != '\0') {
            const std::string v(batch);
            if (v == "0")
                plat.batchStep = false;
            else if (v != "1")
                throw OpenClError(ClStatus::InvalidValue, strFormat(
                    "invalid SOFF_BATCH_STEP '%s': expected 0 or 1",
                    batch));
        }
    }
    if (plat.scheduler == sim::SchedulerMode::Compiled) {
        const char *name = std::getenv("SOFF_SCHEDULER");
        if (name != nullptr && *name != '\0') {
            sim::SchedulerMode mode;
            if (!sim::schedulerModeFromName(name, &mode)) {
                throw OpenClError(ClStatus::InvalidValue, strFormat(
                    "unknown SOFF_SCHEDULER '%s': valid values are "
                    "reference, event-driven, parallel, compiled, "
                    "cross-check",
                    name));
            }
            plat.scheduler = mode;
        }
        if (plat.scheduler == sim::SchedulerMode::Compiled &&
            !plat.specialize)
            plat.scheduler = sim::SchedulerMode::EventDriven;
    }
    if (plat.threads == 0) {
        const char *threads = std::getenv("SOFF_THREADS");
        if (threads != nullptr && *threads != '\0')
            plat.threads = parseThreadCount(threads);
    }
    if (!plat.faults.enabled() && !plat.faults.checkInvariants) {
        const char *faults = std::getenv("SOFF_FAULTS");
        if (faults != nullptr && *faults != '\0') {
            try {
                plat.faults = sim::FaultConfig::parse(faults);
            } catch (const RuntimeError &e) {
                throw OpenClError(ClStatus::InvalidValue,
                                  std::string("invalid SOFF_FAULTS: ") +
                                  e.what());
            }
        }
    }
    if (plat.tracePath.empty()) {
        const char *trace = std::getenv("SOFF_TRACE");
        if (trace != nullptr && *trace != '\0')
            parseTraceSpec(trace, plat);
    }
    if (plat.statsPath.empty()) {
        const char *stats = std::getenv("SOFF_STATS");
        if (stats != nullptr && *stats != '\0')
            plat.statsPath = stats;
    }
}

/** One scheduler's complete outcome, for cross-check comparison. */
struct ModeRun
{
    sim::Simulator::RunResult run;
    sim::CircuitStats stats;
    sim::SchedulerStats sched;
    uint64_t retired = 0;
    std::vector<uint8_t> mem; ///< Final global memory contents.
};

/**
 * CrossCheck verdict: every scheduler must be bit- and cycle-identical
 * to the synchronous reference. Cycle counts and stats are compared
 * for completed runs only — on deadlock the reference reports the
 * heuristic idle-window cycle while the event-driven schedulers report
 * the exact quiescence cycle, by design.
 */
void
crossCheckCompare(const std::string &kernel, const char *mode,
                  const ModeRun &ref, const ModeRun &alt)
{
    auto fail = [&](const std::string &what) {
        throw RuntimeError("scheduler cross-check mismatch for kernel '" +
                           kernel + "' (reference vs " + mode +
                           "): " + what);
    };
    auto check = [&](const char *name, uint64_t a, uint64_t b) {
        if (a != b) {
            fail(strFormat("%s: reference=%llu %s=%llu", name,
                           static_cast<unsigned long long>(a), mode,
                           static_cast<unsigned long long>(b)));
        }
    };
    check("completed", ref.run.completed ? 1 : 0,
          alt.run.completed ? 1 : 0);
    check("deadlock", ref.run.deadlock ? 1 : 0, alt.run.deadlock ? 1 : 0);
    if (!ref.run.completed)
        return;
    check("cycles", ref.run.cycles, alt.run.cycles);
    check("retiredWorkItems", ref.retired, alt.retired);
    check("stats.cycles", ref.stats.cycles, alt.stats.cycles);
    check("stats.cacheHits", ref.stats.cacheHits, alt.stats.cacheHits);
    check("stats.cacheMisses", ref.stats.cacheMisses,
          alt.stats.cacheMisses);
    check("stats.cacheWritebacks", ref.stats.cacheWritebacks,
          alt.stats.cacheWritebacks);
    check("stats.dramTransfers", ref.stats.dramTransfers,
          alt.stats.dramTransfers);
    check("stats.localAccesses", ref.stats.localAccesses,
          alt.stats.localAccesses);
    check("stats.localBankConflicts", ref.stats.localBankConflicts,
          alt.stats.localBankConflicts);
    check("stats.numComponents", ref.stats.numComponents,
          alt.stats.numComponents);
    check("stats.cacheEvictions", ref.stats.cacheEvictions,
          alt.stats.cacheEvictions);
    check("stats.dramBytes", ref.stats.dramBytes, alt.stats.dramBytes);
    // The full architectural counter fabric — per-component busy/stall
    // cycles, token counts, channel high-water marks, datapath
    // retirement timing — must be bit-identical too, not just the
    // coarse rollup above.
    if (ref.run.stats != nullptr && alt.run.stats != nullptr) {
        std::string diff =
            sim::diffStatsReports(*ref.run.stats, *alt.run.stats);
        if (!diff.empty())
            fail("StatsReport: " + diff);
    }
    if (ref.mem != alt.mem)
        fail("final global memory contents differ");
}

/**
 * Structural equality of platform configs: the fields that shape the
 * built circuit (timing parameters, scheduler/thread layout, FIFO
 * sizing overrides). Trace/stats export paths are observational and
 * deliberately excluded; fault configs never reach the pool (faulted
 * launches bypass it).
 */
bool
samePlatformStructure(const sim::PlatformConfig &a,
                      const sim::PlatformConfig &b)
{
    return a.dramLatency == b.dramLatency &&
           a.dramCyclesPerLine == b.dramCyclesPerLine &&
           a.scheduler == b.scheduler && a.threads == b.threads &&
           a.specialize == b.specialize &&
           a.batchStep == b.batchStep &&
           a.memRespWindowOverride == b.memRespWindowOverride &&
           a.balanceFifoCap == b.balanceFifoCap;
}

/** SOFF_CIRCUIT_CACHE env knob: on unless explicitly set to "0". */
bool
circuitCacheEnabled()
{
    const char *v = std::getenv("SOFF_CIRCUIT_CACHE");
    return v == nullptr || std::string(v) != "0";
}

/** SOFF_TEMPLATE_POOL env knob: per-key parked-template capacity. */
size_t
templatePoolCapacity()
{
    const char *v = std::getenv("SOFF_TEMPLATE_POOL");
    if (v == nullptr || *v == '\0')
        return 4; // Default: a few concurrent tenants per kernel.
    return static_cast<size_t>(
        detail::parseEnvInt("SOFF_TEMPLATE_POOL", v, 1, 256));
}

} // namespace

std::unique_ptr<sim::KernelCircuit>
Program::takeCachedCircuit(const datapath::KernelPlan *plan,
                           int instances,
                           const sim::PlatformConfig &platform)
{
    std::lock_guard<std::mutex> lock(poolMutex_);
    for (PoolKey &key : circuitPool_) {
        if (key.plan != plan || key.instances != instances ||
            !samePlatformStructure(key.platform, platform))
            continue;
        if (key.parked.empty()) {
            // The key is known but every template is checked out by a
            // concurrent launch: the caller builds a duplicate.
            ++poolStats_.steals;
            return nullptr;
        }
        ++poolStats_.hits;
        // LIFO checkout: the most recently returned template.
        std::unique_ptr<sim::KernelCircuit> circuit =
            std::move(key.parked.back());
        key.parked.pop_back();
        return circuit;
    }
    ++poolStats_.misses;
    PoolKey key;
    key.plan = plan;
    key.instances = instances;
    key.platform = platform;
    circuitPool_.push_back(std::move(key));
    return nullptr;
}

void
Program::storeCachedCircuit(const datapath::KernelPlan *plan,
                            int instances,
                            const sim::PlatformConfig &platform,
                            std::unique_ptr<sim::KernelCircuit> circuit,
                            size_t capacity)
{
    std::lock_guard<std::mutex> lock(poolMutex_);
    for (PoolKey &key : circuitPool_) {
        if (key.plan != plan || key.instances != instances ||
            !samePlatformStructure(key.platform, platform))
            continue;
        while (key.parked.size() >= capacity && !key.parked.empty()) {
            key.parked.pop_front(); // Evict least recently parked.
            ++poolStats_.evictions;
        }
        if (capacity > 0) {
            key.parked.push_back(std::move(circuit));
            ++poolStats_.returns;
        }
        return;
    }
    PoolKey key;
    key.plan = plan;
    key.instances = instances;
    key.platform = platform;
    if (capacity > 0) {
        key.parked.push_back(std::move(circuit));
        ++poolStats_.returns;
    }
    circuitPool_.push_back(std::move(key));
}

size_t
Program::circuitCacheSize() const
{
    std::lock_guard<std::mutex> lock(poolMutex_);
    size_t parked = 0;
    for (const PoolKey &key : circuitPool_)
        parked += key.parked.size();
    return parked;
}

TemplatePoolStats
Program::templatePoolStats() const
{
    std::lock_guard<std::mutex> lock(poolMutex_);
    return poolStats_;
}

Buffer
Context::createBuffer(uint64_t size)
{
    return Buffer(device_.allocate(size), size);
}

void
Context::releaseBuffer(Buffer &buffer)
{
    if (buffer.valid()) {
        device_.release(buffer.deviceAddress());
        buffer = Buffer();
    }
}

void
Context::writeBuffer(const Buffer &buffer, const void *src, uint64_t size)
{
    SOFF_ASSERT(size <= buffer.size(), "write exceeds buffer size");
    device_.dmaWrite(buffer.deviceAddress(), size, src);
}

void
Context::readBuffer(const Buffer &buffer, void *dst, uint64_t size)
{
    SOFF_ASSERT(size <= buffer.size(), "read exceeds buffer size");
    device_.dmaRead(buffer.deviceAddress(), size, dst);
}

Program
Context::buildProgram(const std::string &source,
                      const core::CompilerOptions &options)
{
    core::CompilerOptions opts = options;
    opts.fpga = device_.fpga();
    core::Compiler compiler(opts);
    return Program(device_, compiler.compile(source));
}

detail::CorePlan
Context::resolveLaunch(KernelHandle &kernel, const sim::NDRange &ndrange,
                       ExecutionMode mode,
                       const sim::PlatformConfig &platform,
                       int instance_override, bool allow_degradation)
{
    const core::CompiledKernel &ck = kernel.compiled();
    for (int d = 0; d < 3; ++d) {
        if (ndrange.localSize[d] == 0 ||
            ndrange.globalSize[d] % ndrange.localSize[d] != 0) {
            throw OpenClError(ClStatus::InvalidWorkGroupSize,
                              "NDRange global size must be a multiple "
                              "of the work-group size");
        }
    }
    detail::CorePlan plan;
    plan.program = kernel.program();
    plan.ck = &ck;
    plan.launch.ndrange = ndrange;
    plan.launch.args = kernel.argValues();
    plan.mode = mode;
    if (mode == ExecutionMode::Reference)
        return plan;

    plan.instances = instance_override > 0
                         ? instance_override
                         : kernel.program()->instancesFor(ck);
    if (instance_override <= 0 && plan.instances <= 0) {
        throw OpenClError(
            ClStatus::OutOfResources,
            "kernel '" + ck.kernel->name() + "' does not fit the "
            "target FPGA (insufficient resources)");
    }
    plan.allFit = true;
    for (int n : kernel.program()->compiled().sharedInstanceCounts)
        plan.allFit &= n > 0;

    uint64_t total_work = ndrange.totalWorkItems();
    plan.maxCycles = 1000000ull + total_work * 50000ull;

    plan.plat = platform;
    applyEnvOverrides(plan.plat);
    plan.crosscheck =
        plan.plat.scheduler == sim::SchedulerMode::CrossCheck;
    // Launch-visible-only fault plans (abortevery/dmaevery/poolevery
    // with the timing classes off) keep the circuit clean, so they
    // stay pool-eligible — the retry path depends on that ("re-run via
    // the template pool"), and the pool-checkout fault class needs a
    // pool to be injectable at all.
    plan.cacheable = circuitCacheEnabled() && !plan.crosscheck &&
                     plan.plat.tracePath.empty() &&
                     !plan.plat.faults.perturbsTiming() &&
                     !plan.plat.faults.checkInvariants;
    plan.poolCapacity = plan.cacheable ? templatePoolCapacity() : 0;
    plan.allowDegradation = allow_degradation;
    // Reliability layer: the watchdog budget (queue options override
    // this after return), the deterministic fault ordinal, and the
    // buffer spans the retry path snapshots/restores.
    const char *wd = std::getenv("SOFF_LAUNCH_TIMEOUT");
    if (wd != nullptr && *wd != '\0') {
        plan.timeoutCycles = detail::parseEnvU64(
            "SOFF_LAUNCH_TIMEOUT", wd, 1, 1000000000000ull);
    }
    plan.ordinal = nextCommandOrdinal();
    plan.bufferSpans = kernel.bufferSpans();
    return plan;
}

LaunchResult
Context::runLaunchCore(const detail::CorePlan &cp, uint64_t *duration_ns,
                       const std::atomic<bool> *cancel)
{
    *duration_ns = 0;
    LaunchResult result;
    if (cp.mode == ExecutionMode::Reference) {
        baseline::Interpreter interp(device_.globalMemory());
        interp.run(*cp.ck->kernel, cp.launch);
        result.instances = 1;
        return result;
    }
    const core::CompiledKernel &ck = *cp.ck;
    const sim::LaunchContext &launch = cp.launch;
    int instances = cp.instances;
    // Watchdog: an explicit cycle budget (queue option / env knob)
    // replaces the generous NDRange-derived heuristic cap and makes a
    // trip a distinct, forensics-carrying failure class.
    bool watchdog = cp.timeoutCycles > 0;
    uint64_t max_cycles = watchdog ? cp.timeoutCycles : cp.maxCycles;
    sim::PlatformConfig plat = cp.plat;

    // Injected launch abort: run only up to the seeded abort cycle; a
    // launch that would have completed before it never observes the
    // fault. Skipped under cross-check (the side runs would diverge).
    sim::FaultPlan rt_faults(plat.faults);
    uint64_t abort_at = 0;
    bool abort_armed =
        !cp.crosscheck &&
        rt_faults.launchAborts(cp.ordinal, cp.attempt, &abort_at) &&
        abort_at < max_cycles;
    uint64_t run_cap = abort_armed ? abort_at : max_cycles;

    device_.ensureResident(ck.kernel->name(), cp.allFit);

    bool crosscheck = cp.crosscheck;
    ModeRun ref_side, par_side, comp_side;
    std::unique_ptr<memsys::GlobalMemory> ref_memory, par_memory,
        comp_memory;
    std::vector<std::thread> checkers;
    std::exception_ptr ref_error, par_error, comp_error;
    if (crosscheck) {
        // The four schedulers run concurrently: the reference,
        // parallel, and compiled circuits each on a private copy of
        // global memory (atomics and stores must not be applied
        // twice), the event-driven circuit below on device memory —
        // its effects are the ones the caller keeps.
        ref_memory = std::make_unique<memsys::GlobalMemory>(
            device_.globalMemory());
        par_memory = std::make_unique<memsys::GlobalMemory>(
            device_.globalMemory());
        comp_memory = std::make_unique<memsys::GlobalMemory>(
            device_.globalMemory());
        auto side_run = [&](sim::SchedulerMode mode,
                            memsys::GlobalMemory &memory, ModeRun &out,
                            std::exception_ptr &error) {
            try {
                sim::PlatformConfig p = plat;
                p.scheduler = mode;
                // Only the primary circuit exports trace/stats files;
                // the side runs exist to be compared, not observed.
                p.tracePath.clear();
                p.statsPath.clear();
                sim::KernelCircuit c(*ck.plan, launch, memory,
                                     instances, p);
                out.run = c.run(max_cycles);
                out.stats = c.stats();
                out.sched = c.simulator().schedulerStats();
                out.retired = c.retired();
                out.mem.assign(memory.data(),
                               memory.data() + memory.size());
            } catch (...) {
                error = std::current_exception();
            }
        };
        checkers.emplace_back(side_run, sim::SchedulerMode::Reference,
                              std::ref(*ref_memory), std::ref(ref_side),
                              std::ref(ref_error));
        checkers.emplace_back(side_run, sim::SchedulerMode::Parallel,
                              std::ref(*par_memory), std::ref(par_side),
                              std::ref(par_error));
        checkers.emplace_back(side_run, sim::SchedulerMode::Compiled,
                              std::ref(*comp_memory),
                              std::ref(comp_side), std::ref(comp_error));
        plat.scheduler = sim::SchedulerMode::EventDriven;
    }

    // Graceful degradation (robustness over speed): if the parallel
    // scheduler itself fails with an internal error — not a deadlock
    // or timeout, which are properties of the circuit, and not a
    // SimInternalError, which is a circuit-level bug the reference
    // scheduler would reproduce — fall back to the reference
    // scheduler once, on pristine memory, with a logged warning.
    // Queued launches disable this: the whole-memory snapshot would
    // race with concurrent launches touching their own buffers.
    std::vector<uint8_t> pristine;
    bool degradable = cp.allowDegradation && !crosscheck &&
                      plat.scheduler == sim::SchedulerMode::Parallel;
    if (degradable) {
        const memsys::GlobalMemory &m = device_.globalMemory();
        pristine.assign(m.data(), m.data() + m.size());
    }

    // Circuit-template pool: reuse a previously built circuit for the
    // same (plan, instances, structural platform) via relaunch()
    // instead of rebuilding. Observational or perturbing modes
    // (cross-check, fault injection, tracing) bypass the pool; the
    // template is checked out on hit and only returned after a fully
    // successful run, so a throwing or degraded launch never parks a
    // half-run circuit.
    std::unique_ptr<sim::KernelCircuit> circuit;
    if (cp.cacheable) {
        if (rt_faults.poolCheckoutFails(cp.ordinal, cp.attempt)) {
            injPoolFaults_.fetch_add(1);
            throw TransientFault(
                TransientFaultKind::PoolCheckout,
                strFormat("injected template-pool checkout fault for "
                          "kernel '%s'",
                          ck.kernel->name().c_str()));
        }
        circuit = cp.program->takeCachedCircuit(ck.plan.get(),
                                                instances, plat);
    }
    bool fellBack = false;
    sim::Simulator::RunResult run;
    try {
        if (circuit != nullptr) {
            circuit->relaunch(launch);
        } else {
            circuit = std::make_unique<sim::KernelCircuit>(
                *ck.plan, launch, device_.globalMemory(), instances,
                plat);
        }
        circuit->setStopFlag(cancel);
        run = circuit->run(run_cap);
        circuit->setStopFlag(nullptr);
    } catch (const sim::SimInternalError &e) {
        throw OpenClError(ClStatus::OutOfResources, e.what(),
                          e.report());
    } catch (const OpenClError &) {
        throw;
    } catch (const RuntimeError &e) {
        if (!degradable) {
            if (cp.retryEligible && !cp.crosscheck &&
                plat.scheduler == sim::SchedulerMode::Parallel) {
                // The queue path's generalized degradation: surface
                // the scheduler blowup as a transient fault so the
                // retry layer re-runs the launch on the Reference
                // scheduler (pristine memory, same results) instead of
                // failing it — the in-place snapshot trick below is
                // serial-path-only.
                injSchedTrips_.fetch_add(1);
                throw TransientFault(
                    TransientFaultKind::SchedulerInternal, e.what());
            }
            throw;
        }
        std::fprintf(stderr,
                     "SOFF warning: parallel scheduler failed for "
                     "kernel '%s' (%s); retrying once on the "
                     "reference scheduler\n",
                     ck.kernel->name().c_str(), e.what());
        memsys::GlobalMemory &m = device_.globalMemory();
        std::copy(pristine.begin(), pristine.end(), m.data());
        sim::PlatformConfig fallback = plat;
        fallback.scheduler = sim::SchedulerMode::Reference;
        circuit = std::make_unique<sim::KernelCircuit>(
            *ck.plan, launch, device_.globalMemory(), instances,
            fallback);
        circuit->setStopFlag(cancel);
        run = circuit->run(run_cap);
        circuit->setStopFlag(nullptr);
        fellBack = true;
    }
    if (crosscheck) {
        for (std::thread &t : checkers)
            t.join();
        if (ref_error)
            std::rethrow_exception(ref_error);
        if (par_error)
            std::rethrow_exception(par_error);
        if (comp_error)
            std::rethrow_exception(comp_error);
        ModeRun evt_side;
        evt_side.run = run;
        evt_side.stats = circuit->stats();
        evt_side.sched = circuit->simulator().schedulerStats();
        evt_side.retired = circuit->retired();
        const memsys::GlobalMemory &mem = device_.globalMemory();
        evt_side.mem.assign(mem.data(), mem.data() + mem.size());
        crossCheckCompare(ck.kernel->name(), "event-driven", ref_side,
                          evt_side);
        crossCheckCompare(ck.kernel->name(), "parallel", ref_side,
                          par_side);
        crossCheckCompare(ck.kernel->name(), "compiled", ref_side,
                          comp_side);
        // The sharded scheduler must not just produce the same
        // results but do the same amount of work: its union of
        // per-shard wake lists is cycle-for-cycle the event-driven
        // wake list.
        if (evt_side.run.completed &&
            evt_side.sched.componentSteps !=
                par_side.sched.componentSteps) {
            throw RuntimeError(strFormat(
                "scheduler cross-check mismatch for kernel '%s': "
                "componentSteps: event-driven=%llu parallel=%llu",
                ck.kernel->name().c_str(),
                static_cast<unsigned long long>(
                    evt_side.sched.componentSteps),
                static_cast<unsigned long long>(
                    par_side.sched.componentSteps)));
        }
    }
    // Export trace/stats before the deadlock/timeout throw — stuck
    // runs are exactly when a cycle-level trace is most useful.
    if (!plat.tracePath.empty())
        circuit->writeTrace(plat.tracePath);
    if (!plat.statsPath.empty() && run.stats != nullptr)
        sim::writeStatsJson(*run.stats, plat.statsPath);
    if (run.deadlock) {
        std::string msg = strFormat(
            "kernel '%s' deadlocked after %llu cycles",
            ck.kernel->name().c_str(),
            static_cast<unsigned long long>(run.cycles));
        if (run.report != nullptr)
            msg += "\n" + run.report->render();
        throw OpenClError(ClStatus::OutOfResources, msg, run.report);
    }
    if (!run.completed) {
        // Cancellation wins over a coinciding injected abort; an
        // injected abort wins over the cycle budget (its cap is
        // strictly smaller).
        if (run.stopped) {
            throw OpenClError(
                ClStatus::SoffCommandCancelled,
                strFormat("kernel '%s' cancelled after %llu cycles",
                          ck.kernel->name().c_str(),
                          static_cast<unsigned long long>(run.cycles)));
        }
        if (abort_armed) {
            injLaunchAborts_.fetch_add(1);
            throw TransientFault(
                TransientFaultKind::LaunchAbort,
                strFormat("injected launch abort for kernel '%s' at "
                          "cycle %llu",
                          ck.kernel->name().c_str(),
                          static_cast<unsigned long long>(abort_at)));
        }
        std::string msg = strFormat(
            "kernel '%s' %s after %llu cycles",
            ck.kernel->name().c_str(),
            watchdog ? "hit the launch watchdog (cycle budget)"
                     : "timed out",
            static_cast<unsigned long long>(run.cycles));
        if (run.report != nullptr)
            msg += "\n" + run.report->render();
        throw OpenClError(watchdog ? ClStatus::SoffLaunchTimeout
                                   : ClStatus::OutOfResources,
                          msg, run.report);
    }
    result.cycles = run.cycles;
    result.instances = instances;
    result.stats = circuit->stats();
    result.sched = circuit->simulator().schedulerStats();
    result.statsReport = run.stats;
    // Park the circuit for the next matching launch. A degraded run
    // holds a Reference-mode circuit that does not match the requested
    // platform; it is dropped rather than pooled under the wrong key.
    if (cp.cacheable && !fellBack)
        cp.program->storeCachedCircuit(ck.plan.get(), instances, plat,
                                       std::move(circuit),
                                       cp.poolCapacity);
    datapath::Resources used =
        ck.resourcesPerInstance.scaled(instances);
    result.fmaxMhz = datapath::estimateFmaxMhz(device_.fpga(), used);
    result.timeMs = static_cast<double>(run.cycles) /
                    (result.fmaxMhz * 1e3);
    // The command's occupancy on the profiling timeline: the simulated
    // cycle count converted through the fmax estimate.
    *duration_ns = static_cast<uint64_t>(std::ceil(
        static_cast<double>(run.cycles) * 1000.0 / result.fmaxMhz));
    return result;
}

LaunchResult
Context::enqueueNDRange(KernelHandle &kernel, const sim::NDRange &ndrange,
                        ExecutionMode mode,
                        const sim::PlatformConfig &platform,
                        int instance_override, Event *event)
{
    detail::CorePlan plan =
        resolveLaunch(kernel, ndrange, mode, platform, instance_override,
                      /*allow_degradation=*/true);
    uint64_t duration_ns = 0;
    LaunchResult result = runLaunchCore(plan, &duration_ns);
    if (mode == ExecutionMode::Reference)
        return result;

    // Advance the in-order device timeline and stamp the profiling
    // event: the launch occupies [START, END) where END - START is the
    // simulated cycle count converted through the fmax estimate, and
    // QUEUED -> SUBMIT models a fixed host-to-board doorbell cost.
    uint64_t queued_ns = clockNs_;
    uint64_t submit_ns = queued_ns + detail::kSubmitOverheadNs;
    clockNs_ = submit_ns + duration_ns;
    if (event != nullptr) {
        auto state = std::make_shared<detail::EventState>();
        state->status = CommandStatus::Complete;
        state->profiled = true;
        state->queuedNs = queued_ns;
        state->submitNs = submit_ns;
        state->startNs = submit_ns;
        state->endNs = clockNs_;
        state->stats = result.statsReport;
        *event = Event(std::move(state));
    }
    return result;
}

} // namespace soff::rt
