/**
 * @file
 * The SOFF runtime (paper §III-C1): an OpenCL-style host API over the
 * simulated target platform of Fig. 2.
 *
 * "The runtime is a user-level library that implements OpenCL API
 * functions invoked by the host program. It configures the
 * reconfigurable region with the pre-built bitstream, requests data
 * transfers between the main memory and the FPGA's global memory, and
 * executes kernels on the FPGA" — here against the cycle-level circuit
 * simulator. The Device models the board (global memory + allocator +
 * the argument/trigger/completion/kernel-pointer registers' behavior);
 * Context/Buffer/Program/KernelHandle/CommandQueue mirror the OpenCL
 * host object model.
 *
 * Multi-tenant launch engine (DESIGN.md "Launch concurrency"): a
 * CommandQueue is a real queue object — in-order or out-of-order —
 * whose commands carry event wait lists forming a dependency DAG. A
 * per-context worker pool executes *independent* launches concurrently,
 * each on its own Simulator rearmed from the Program's circuit-template
 * pool; commands retire (complete their events, stamp profiling) in
 * enqueue order per queue, so results, StatsReports, and profiling
 * timestamps are bit-identical to serial in-order execution.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "memsys/global_memory.hpp"
#include "sim/circuit.hpp"
#include "support/error.hpp"

namespace soff::sim
{
struct DeadlockReport;
} // namespace soff::sim

namespace soff::rt
{

/**
 * A RuntimeError carrying the OpenCL status code a real clXxx() call
 * would have returned, plus — for deadlocks and timeouts — the
 * structured DeadlockReport describing who waits on whom.
 */
class OpenClError : public RuntimeError
{
  public:
    OpenClError(ClStatus status, const std::string &message,
                std::shared_ptr<const sim::DeadlockReport> report = nullptr)
        : RuntimeError(message), status_(status), report_(std::move(report))
    {}

    ClStatus status() const { return status_; }
    const char *statusName() const { return clStatusName(status_); }
    /** Non-null only for deadlock/timeout errors. */
    const std::shared_ptr<const sim::DeadlockReport> &report() const
    {
        return report_;
    }

  private:
    ClStatus status_;
    std::shared_ptr<const sim::DeadlockReport> report_;
};

/** Classes of transient runtime faults (injectable via the launch-
 *  visible SOFF_FAULTS knobs; see sim/fault.hpp). */
enum class TransientFaultKind
{
    LaunchAbort,  ///< Injected mid-run launch abort (abortevery).
    DmaTransfer,  ///< Injected DMA transfer failure (dmaevery).
    PoolCheckout, ///< Injected template-pool checkout failure (poolevery).
    /** A scheduler blew up mid-run (e.g. the trip= error-path knob);
     *  a retry demotes the launch to the Reference scheduler — the
     *  generalized graceful-degradation path. */
    SchedulerInternal,
};

/**
 * A transiently failed command attempt: retry-eligible under the
 * queue's RetryPolicy. Surfaces as SOFF_TRANSIENT_FAULT when the retry
 * budget is exhausted (or no policy is configured).
 */
class TransientFault : public OpenClError
{
  public:
    TransientFault(TransientFaultKind kind, const std::string &message)
        : OpenClError(ClStatus::SoffTransientFault, message), kind_(kind)
    {}

    TransientFaultKind kind() const { return kind_; }

  private:
    TransientFaultKind kind_;
};

/**
 * The simulated accelerator board. Thread-safe: the allocator, DMA
 * engine, and reconfiguration registers are guarded by one board mutex
 * so concurrent launches and transfers never corrupt the block list.
 * (Kernel-side accesses during simulation are *not* serialized against
 * DMA — as on a real board, host transfers overlapping a running
 * kernel's buffers must be ordered through events.)
 */
class Device
{
  public:
    explicit Device(datapath::FpgaSpec fpga = datapath::FpgaSpec::arria10(),
                    uint64_t global_mem_bytes = 256ull << 20);

    memsys::GlobalMemory &globalMemory() { return memory_; }
    const datapath::FpgaSpec &fpga() const { return fpga_; }

    /** Global-memory allocator (§III-C1: "a simple memory allocator"). */
    uint64_t allocate(uint64_t bytes);
    void release(uint64_t addr);

    /** Host->device DMA (serialized against other DMA and alloc). */
    void dmaWrite(uint64_t addr, uint64_t size, const void *src);
    /** Device->host DMA. */
    void dmaRead(uint64_t addr, uint64_t size, void *dst) const;

    /** Partial reconfigurations performed so far (§III-B). */
    int reconfigurations() const;

    /**
     * Atomically makes `kernel` the resident bitstream if it is not
     * already (check-then-reconfigure under the board mutex). A no-op
     * when `all_fit` — every kernel of the program shares the region.
     * Returns true if a partial reconfiguration was performed.
     */
    bool ensureResident(const std::string &kernel, bool all_fit);

    const std::string &residentKernel() const { return resident_; }

  private:
    datapath::FpgaSpec fpga_;
    memsys::GlobalMemory memory_;
    struct Block
    {
        uint64_t addr;
        uint64_t size;
        bool used;
    };
    std::vector<Block> blocks_;
    int reconfigurations_ = 0;
    std::string resident_;
    /** Guards blocks_, reconfigurations_, resident_, and DMA. */
    mutable std::mutex mutex_;
};

/** A device global-memory buffer (cl_mem). */
class Buffer
{
  public:
    Buffer() = default;
    Buffer(uint64_t addr, uint64_t size) : addr_(addr), size_(size) {}

    uint64_t deviceAddress() const { return addr_; }
    uint64_t size() const { return size_; }
    bool valid() const { return addr_ != 0; }

  private:
    uint64_t addr_ = 0;
    uint64_t size_ = 0;
};

/** How enqueueNDRange executes the kernel. */
enum class ExecutionMode
{
    Simulate,  ///< Cycle-level circuit simulation (the real thing).
    Reference, ///< Reference interpreter (fast functional check).
};

/** Result of one kernel execution. */
struct LaunchResult
{
    uint64_t cycles = 0;
    double timeMs = 0.0;
    double fmaxMhz = 0.0;
    int instances = 0;
    bool deadlock = false;
    sim::CircuitStats stats;
    /** Scheduler-side counters (mode-dependent; not cross-checked). */
    sim::SchedulerStats sched;
    /** Full architectural counter report (null for Reference mode). */
    std::shared_ptr<const sim::StatsReport> statsReport;
};

/** clGetEventProfilingInfo parameter names (values match cl.h). */
enum class ClProfilingInfo : int
{
    CommandQueued = 0x1280, ///< CL_PROFILING_COMMAND_QUEUED
    CommandSubmit = 0x1281, ///< CL_PROFILING_COMMAND_SUBMIT
    CommandStart = 0x1282,  ///< CL_PROFILING_COMMAND_START
    CommandEnd = 0x1283,    ///< CL_PROFILING_COMMAND_END
};

/** clGetEventInfo(CL_EVENT_COMMAND_EXECUTION_STATUS) values (cl.h). */
enum class CommandStatus : int
{
    Complete = 0x0,  ///< CL_COMPLETE
    Running = 0x1,   ///< CL_RUNNING
    Submitted = 0x2, ///< CL_SUBMITTED
    Queued = 0x3,    ///< CL_QUEUED
};

namespace detail
{
struct EventState;
struct Command;
struct CorePlan;
class LaunchEngine;
} // namespace detail

/**
 * An event attached to an enqueued command (cl_event).
 *
 * An Event is a shared handle: copies observe the same underlying
 * command. Queue commands move Queued -> Submitted -> Running ->
 * Complete; completion is observable via status()/wait()/onComplete()
 * and releases every command whose wait list contains the event.
 * User events (Context::createUserEvent) start Submitted and complete
 * only when setComplete() is called — the host-side join primitive.
 *
 * Profiling timestamps are nanoseconds on the simulated device
 * timeline: each queue advances a device clock by every command's
 * simulated duration (cycles through the resource model's fmax
 * estimate) *in enqueue order*, so QUEUED <= SUBMIT <= START <= END
 * always holds, commands tile the per-queue timeline without overlap,
 * and the stamps are bit-identical to serial in-order execution no
 * matter how many launch workers ran the commands.
 */
class Event
{
  public:
    Event() = default;

    /** True once profiling timestamps are available (launch retired). */
    bool valid() const;

    /** clGetEventProfilingInfo: one timestamp in nanoseconds. */
    uint64_t profilingInfo(ClProfilingInfo info) const;

    uint64_t queuedNs() const;
    uint64_t submitNs() const;
    uint64_t startNs() const;
    uint64_t endNs() const;

    /** The launch's StatsReport (null for Reference-mode launches). */
    std::shared_ptr<const sim::StatsReport> stats() const;

    /** clGetEventInfo: the command's execution status. */
    CommandStatus status() const;
    /**
     * The raw cl.h execution-status value: CommandStatus while the
     * command progresses, and the *negative error code* once it has
     * completed with a failure (CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_
     * WAIT_LIST for dependency-skipped commands, the SOFF extension
     * codes for transient faults / cancellation / watchdog trips).
     */
    int executionStatus() const;
    /** True iff the command (or user event) has completed. */
    bool isComplete() const;

    /**
     * clWaitForEvents: blocks until the command completes. Rethrows
     * the command's failure, if any (a failed launch completes its
     * event with the error attached).
     */
    void wait() const;

    /**
     * clSetEventCallback(CL_COMPLETE): runs `fn` when the event
     * completes (immediately, on the calling thread, if it already
     * has). Queue callbacks run on the retiring worker thread, in
     * retirement order — i.e. enqueue order per queue.
     */
    void onComplete(std::function<void()> fn) const;

    /** User events only: marks the event complete, releasing waiters. */
    void setComplete() const;

    /**
     * Best-effort cancellation. An unstarted command is failed without
     * executing; a running launch is stopped cooperatively at the next
     * cycle boundary; an already-complete event is left untouched (no
     * error). A cancelled command completes its event with
     * SOFF_COMMAND_CANCELLED and fails dependents the same way any
     * failed command does (containment, not silent skipping). On a
     * user event, cancel() completes it with the same error.
     */
    void cancel() const;

    /** True if this handle is attached to any command or user event. */
    bool attached() const { return state_ != nullptr; }

  private:
    friend class Context;
    friend class CommandQueue;
    friend std::shared_ptr<const sim::StatsReport>
    soffGetKernelStats(const Event &event);

    explicit Event(std::shared_ptr<detail::EventState> state)
        : state_(std::move(state))
    {}

    std::shared_ptr<detail::EventState> state_;
};

/**
 * SOFF extension ("soff_kernel_stats"): the per-launch architectural
 * counter report behind an event. Null when the launch ran on the
 * reference interpreter (no circuit, no counters).
 */
std::shared_ptr<const sim::StatsReport>
soffGetKernelStats(const Event &event);

class Program;

/** A kernel object with bound arguments (cl_kernel). */
class KernelHandle
{
  public:
    KernelHandle(Program *program, const core::CompiledKernel *compiled)
        : program_(program), compiled_(compiled)
    {}

    const std::string &name() const;
    size_t numArgs() const;

    void setArg(size_t index, const Buffer &buffer);
    void setArg(size_t index, int32_t v);
    void setArg(size_t index, uint32_t v);
    void setArg(size_t index, int64_t v);
    void setArg(size_t index, uint64_t v);
    void setArg(size_t index, float v);
    void setArg(size_t index, double v);

    const core::CompiledKernel &compiled() const { return *compiled_; }
    Program *program() const { return program_; }
    /** Builds the launch-time argument map; throws if any arg unset. */
    std::map<const ir::Argument *, ir::RtValue> argValues() const;
    /** Device spans of the currently bound buffer arguments (captured
     *  at enqueue time for the retry layer's pristine-memory rerun). */
    std::vector<std::pair<uint64_t, uint64_t>> bufferSpans() const;

  private:
    void checkIndex(size_t index, bool is_buffer) const;

    Program *program_;
    const core::CompiledKernel *compiled_;
    std::map<size_t, ir::RtValue> args_;
    /** (device address, size) of each bound buffer argument. */
    std::map<size_t, std::pair<uint64_t, uint64_t>> bufferArgs_;
};

/** Cross-launch circuit-template pool counters (per Program). */
struct TemplatePoolStats
{
    uint64_t hits = 0;      ///< Checkout served from a parked template.
    uint64_t misses = 0;    ///< Cold: the key had never been built.
    uint64_t steals = 0;    ///< Key known but every template checked out
                            ///< by a concurrent launch (duplicate built).
    uint64_t evictions = 0; ///< Return to a full key dropped the LRU.
    uint64_t returns = 0;   ///< Templates parked back after a run.
};

/** A built OpenCL program (cl_program; offline compilation §III-C). */
class Program
{
  public:
    Program(Device &device, std::unique_ptr<core::CompiledProgram> compiled)
        : device_(&device), compiled_(std::move(compiled))
    {}
    // Movable (fresh mutex): moving a Program under concurrent launch
    // is a user error, as for every cl_ handle type.
    Program(Program &&other) noexcept
        : device_(other.device_), compiled_(std::move(other.compiled_)),
          circuitPool_(std::move(other.circuitPool_)),
          poolStats_(other.poolStats_)
    {}
    Program &operator=(Program &&other) noexcept
    {
        device_ = other.device_;
        compiled_ = std::move(other.compiled_);
        circuitPool_ = std::move(other.circuitPool_);
        poolStats_ = other.poolStats_;
        return *this;
    }

    KernelHandle createKernel(const std::string &name);
    const core::CompiledProgram &compiled() const { return *compiled_; }
    Device &device() { return *device_; }

    /** Instance count used when launching this kernel (§III-B/C). */
    int instancesFor(const core::CompiledKernel &kernel) const;
    /** True if launching this kernel requires partial reconfiguration. */
    bool needsReconfiguration(const core::CompiledKernel &kernel) const;

    /** Parked circuit templates (tests observe pool behavior). */
    size_t circuitCacheSize() const;
    /** Cross-launch template-pool counters. */
    TemplatePoolStats templatePoolStats() const;

  private:
    friend class Context;
    friend struct detail::Command;

    /**
     * Circuit-template pool. Building a KernelCircuit walks the whole
     * plan tree and allocates the component/channel arena; in a launch
     * loop (the common host pattern) that dominates small-kernel
     * runtimes. A circuit whose structure is fully determined by
     * (plan, instance count, structural platform knobs) is parked here
     * after a successful run and rearmed via KernelCircuit::relaunch()
     * on the next matching launch — bit-identical to a cold build.
     *
     * Concurrent launches of the same kernel each need a template of
     * their own, so every key holds up to SOFF_TEMPLATE_POOL parked
     * circuits (checkout/return under the pool mutex): checkout pops
     * the most recently returned template (warm caches of the host's
     * working set), return to a full key evicts the least recently
     * parked one. A checkout that finds a known key empty because all
     * of its templates are out with concurrent launches counts as a
     * *steal* — the launch builds a duplicate that grows the pool when
     * returned.
     *
     * The pool lives in the Program — not the Context — because a
     * parked circuit holds raw pointers into the plan's IR, which this
     * Program owns: parking it anywhere that can outlive the Program
     * would dangle. Launches with fault injection, tracing, or
     * cross-check bypass the pool, as does SOFF_CIRCUIT_CACHE=0.
     */
    struct PoolKey
    {
        PoolKey() = default;
        PoolKey(PoolKey &&) = default;
        PoolKey &operator=(PoolKey &&) = default;

        const datapath::KernelPlan *plan = nullptr;
        int instances = 0;
        sim::PlatformConfig platform;
        /** Parked templates, oldest first (LRU at the front). */
        std::deque<std::unique_ptr<sim::KernelCircuit>> parked;
    };

    /** Checks a matching template out of the pool (null on miss/steal). */
    std::unique_ptr<sim::KernelCircuit>
    takeCachedCircuit(const datapath::KernelPlan *plan, int instances,
                      const sim::PlatformConfig &platform);
    /** Returns a template to the pool (evicts LRU when over capacity). */
    void storeCachedCircuit(const datapath::KernelPlan *plan,
                            int instances,
                            const sim::PlatformConfig &platform,
                            std::unique_ptr<sim::KernelCircuit> circuit,
                            size_t capacity);

    Device *device_;
    std::unique_ptr<core::CompiledProgram> compiled_;
    std::vector<PoolKey> circuitPool_;
    TemplatePoolStats poolStats_;
    mutable std::mutex poolMutex_;
};

/**
 * Per-queue retry policy for *transiently* failed commands (injected
 * launch aborts, DMA faults, pool-checkout faults, scheduler-internal
 * errors). Deadlocks, watchdog timeouts, and validation errors are
 * permanent and never retried. Retries re-run the command on pristine
 * memory: an NDRange launch snapshots its buffer-argument spans before
 * the first attempt and restores them before each retry, then rebuilds
 * or re-checks-out a circuit from the template pool. Backoff is
 * *simulated* time — attempt k adds backoffNs << (k-1) to the
 * command's device-timeline duration; no wall-clock sleeping — so
 * profiling stamps stay deterministic for a fixed fault seed.
 */
struct RetryPolicy
{
    /** Max re-execution attempts after the first failure; -1 = resolve
     *  from SOFF_LAUNCH_RETRY (0 when unset too). */
    int attempts = -1;
    /** Simulated backoff before retry k (1-based): backoffNs << (k-1). */
    uint64_t backoffNs = 4000;
};

/** Per-queue reliability counters (CommandQueue::reliabilityStats). */
struct ReliabilityStats
{
    uint64_t retired = 0;         ///< Commands retired, any outcome.
    uint64_t failed = 0;          ///< Retired with an error attached.
    uint64_t depSkipped = 0;      ///< Failed: wait-list dependency failed.
    uint64_t cancelled = 0;       ///< Failed: cancel() / cancelAll().
    uint64_t watchdogTrips = 0;   ///< Failed: watchdog budget expired.
    uint64_t retries = 0;         ///< Re-execution attempts performed.
    uint64_t faultsInjected = 0;  ///< Transient faults observed.
    uint64_t faultsRetriedAway = 0; ///< ... on ultimately-successful cmds.
    uint64_t faultsSurfaced = 0;  ///< ... on commands that retired failed.
    uint64_t callbackExceptions = 0; ///< User callbacks that threw.
};

/** Context-wide injected-fault counters (Context::injectedFaults):
 *  ground truth for the soak harness's accounting invariant —
 *  total() must equal faultsRetriedAway + faultsSurfaced summed over
 *  every queue of the context. */
struct InjectedFaultCounters
{
    uint64_t launchAborts = 0;
    uint64_t dmaTransfers = 0;
    uint64_t poolCheckouts = 0;
    uint64_t schedulerTrips = 0;

    uint64_t total() const
    {
        return launchAborts + dmaTransfers + poolCheckouts +
               schedulerTrips;
    }
};

/** CommandQueue creation options (clCreateCommandQueue properties). */
struct QueueOptions
{
    /**
     * CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE: commands run as soon as
     * their wait lists resolve, on any launch worker. In-order queues
     * chain every command onto its predecessor instead. Either way
     * commands *retire* in enqueue order (deterministic completion and
     * profiling).
     */
    bool outOfOrder = false;
    /**
     * Launch workers for this context's engine (first queue wins; 0 =
     * SOFF_QUEUE_WORKERS, or hardware_concurrency when unset).
     */
    int workers = 0;
    /**
     * Admission bound: enqueue blocks while this many commands of the
     * whole context are in flight (0 = 4x workers, min 16).
     */
    int maxInFlight = 0;
    /**
     * Watchdog: per-launch cycle budget. A launch still running after
     * this many simulated cycles is aborted cooperatively at a cycle
     * boundary and fails with SOFF_LAUNCH_TIMEOUT plus DeadlockReport
     * forensics naming the stalled components. 0 = resolve from
     * SOFF_LAUNCH_TIMEOUT (when that is unset too, the generous
     * NDRange-derived heuristic cap applies and a trip surfaces as
     * CL_OUT_OF_RESOURCES, as before).
     */
    uint64_t launchTimeoutCycles = 0;
    /** Retry policy for transiently failed commands. */
    RetryPolicy retry;
    /**
     * Runtime-level fault injection for this queue's commands: DMA
     * commands consult it directly, and NDRange launches whose
     * PlatformConfig carries no fault config inherit it. Unset (the
     * default) falls back to SOFF_FAULTS.
     */
    sim::FaultConfig faults;
};

class Context;

/**
 * A real command queue (cl_command_queue). Enqueue entry points
 * validate eagerly (NDRange shape, unset args, wait-list attachment)
 * on the calling thread, then hand the command to the context's launch
 * engine; execution is asynchronous. `finish()` (or Event::wait) joins.
 */
class CommandQueue
{
  public:
    CommandQueue(Context &context, QueueOptions options = {});
    ~CommandQueue();
    CommandQueue(const CommandQueue &) = delete;
    CommandQueue &operator=(const CommandQueue &) = delete;

    /**
     * Enqueues a kernel launch. The wait list may contain events from
     * any queue of the process plus user events; every entry must be
     * attached (CL_INVALID_EVENT_WAIT_LIST otherwise — the only way a
     * dependency cycle could be expressed is waiting on an event no
     * enqueued command produces, and that is exactly an unattached
     * event). Arguments are captured at enqueue time; the handle may
     * be re-bound immediately after.
     */
    void enqueueNDRange(KernelHandle &kernel, const sim::NDRange &ndrange,
                        const std::vector<Event> &wait_list = {},
                        Event *event = nullptr,
                        ExecutionMode mode = ExecutionMode::Simulate,
                        const sim::PlatformConfig &platform = {},
                        int instance_override = 0);

    /** Host->device DMA as a queued command (`src` must stay alive). */
    void enqueueWrite(const Buffer &buffer, const void *src,
                      uint64_t size,
                      const std::vector<Event> &wait_list = {},
                      Event *event = nullptr);
    /** Device->host DMA as a queued command (`dst` must stay alive). */
    void enqueueRead(const Buffer &buffer, void *dst, uint64_t size,
                     const std::vector<Event> &wait_list = {},
                     Event *event = nullptr);

    /** clFinish: blocks until every enqueued command has retired.
     *  Rethrows the first failed command's error, if any. */
    void finish();

    /**
     * Cancels every enqueued-but-unretired command of this queue
     * (best-effort, see Event::cancel) and waits for the queue to
     * drain. Unlike finish() it does not rethrow — teardown wants
     * "stop everything" to succeed even on a queue full of failures.
     */
    void cancelAll();

    /** Per-queue reliability counters (snapshot). */
    ReliabilityStats reliabilityStats() const;

    bool outOfOrder() const { return options_.outOfOrder; }
    Context &context() { return context_; }

  private:
    friend struct detail::Command;
    friend class detail::LaunchEngine;

    void enqueueCommand(std::shared_ptr<detail::Command> cmd,
                        const std::vector<Event> &wait_list,
                        Event *event);
    /** Resolves the queue's retry/fault knobs on the enqueue thread
     *  (strict SOFF_LAUNCH_RETRY / SOFF_FAULTS parsing). */
    void resolveReliability(detail::Command &cmd);
    /** Marks `cmd` executed; retires every consecutive executed
     *  command in enqueue order (profiling stamp + event completion). */
    void retire(detail::Command *cmd);

    Context &context_;
    QueueOptions options_;
    detail::LaunchEngine *engine_;

    mutable std::mutex mutex_;
    std::condition_variable drained_;
    /** Enqueued-but-unretired commands, in enqueue order. */
    std::deque<std::shared_ptr<detail::Command>> pending_;
    /** A worker is inside the retirement loop (its commands may be
     *  popped from pending_ but not yet completed/released); finish()
     *  treats the queue as drained only when this is false too. */
    bool retiring_ = false;
    /** Implicit in-order chaining: the previous command's event. */
    std::shared_ptr<detail::EventState> lastEvent_;
    uint64_t nextSeq_ = 0;
    /** In-order device timeline for event profiling (ns). */
    uint64_t clockNs_ = 0;
    std::exception_ptr firstError_;
    /** Reliability counters, folded in at retirement (under mutex_). */
    ReliabilityStats rstats_;
    /** Swallowed user-callback exceptions (completeEvent, any thread). */
    std::atomic<uint64_t> callbackExceptions_{0};
};

/** The context (simplified cl_context) plus a serial in-order enqueue
 *  path kept for single-launch hosts (Context::enqueueNDRange). */
class Context
{
  public:
    explicit Context(datapath::FpgaSpec fpga = datapath::FpgaSpec::arria10(),
                     uint64_t global_mem_bytes = 256ull << 20);
    ~Context();

    Device &device() { return device_; }

    Buffer createBuffer(uint64_t size);
    void releaseBuffer(Buffer &buffer);
    /** Host->device DMA (paper §III-A); immediate, not queued. */
    void writeBuffer(const Buffer &buffer, const void *src, uint64_t size);
    /** Device->host DMA; immediate, not queued. */
    void readBuffer(const Buffer &buffer, void *dst, uint64_t size);

    /** Compiles a program for this device (offline compilation). */
    Program buildProgram(const std::string &source,
                         const core::CompilerOptions &options = {});

    /** clCreateUserEvent: host-completed event (see Event). */
    Event createUserEvent();

    /**
     * Executes a kernel over an NDRange, synchronously, on the calling
     * thread (the legacy in-order path — CommandQueue is the
     * multi-tenant one). `instance_override` forces a specific
     * datapath instance count (0 = the resource model's maximum, the
     * paper's default behavior) — used by the instance-scaling
     * ablation bench. When `event` is non-null it is filled with the
     * launch's profiling timestamps and StatsReport.
     */
    LaunchResult enqueueNDRange(
        KernelHandle &kernel, const sim::NDRange &ndrange,
        ExecutionMode mode = ExecutionMode::Simulate,
        const sim::PlatformConfig &platform = {},
        int instance_override = 0, Event *event = nullptr);

    /** Context-wide injected-fault ground truth (see the struct). */
    InjectedFaultCounters injectedFaults() const;

  private:
    friend class CommandQueue;
    friend struct detail::Command;
    friend class detail::LaunchEngine;

    /**
     * The scheduler-independent core of a launch: env resolution has
     * already happened (enqueue thread); this runs the circuit (or
     * interpreter), consults the template pool, and returns the result
     * plus the command's duration on the device timeline. Thread-safe;
     * called concurrently by launch workers.
     */
    LaunchResult runLaunchCore(const detail::CorePlan &plan,
                               uint64_t *duration_ns,
                               const std::atomic<bool> *cancel = nullptr);
    /** Resolves env/platform/instances on the enqueue thread. */
    detail::CorePlan resolveLaunch(KernelHandle &kernel,
                                   const sim::NDRange &ndrange,
                                   ExecutionMode mode,
                                   const sim::PlatformConfig &platform,
                                   int instance_override,
                                   bool allow_degradation);

    /** Lazily created launch worker pool shared by all queues. */
    detail::LaunchEngine &engine(const QueueOptions &options);

    /** Next command enqueue ordinal: the deterministic key for the
     *  launch-visible fault classes (assigned on the enqueue thread,
     *  so independent of worker count and execution interleaving). */
    uint64_t nextCommandOrdinal() { return cmdOrdinal_.fetch_add(1); }

    Device device_;
    /** In-order device timeline of the legacy serial path (ns). */
    uint64_t clockNs_ = 0;
    std::unique_ptr<detail::LaunchEngine> engine_;
    std::mutex engineMutex_;
    std::atomic<uint64_t> cmdOrdinal_{0};
    // Injected-fault ground truth, bumped at the injection sites.
    std::atomic<uint64_t> injLaunchAborts_{0};
    std::atomic<uint64_t> injDmaFaults_{0};
    std::atomic<uint64_t> injPoolFaults_{0};
    std::atomic<uint64_t> injSchedTrips_{0};
};

} // namespace soff::rt
