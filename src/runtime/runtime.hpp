/**
 * @file
 * The SOFF runtime (paper §III-C1): an OpenCL-style host API over the
 * simulated target platform of Fig. 2.
 *
 * "The runtime is a user-level library that implements OpenCL API
 * functions invoked by the host program. It configures the
 * reconfigurable region with the pre-built bitstream, requests data
 * transfers between the main memory and the FPGA's global memory, and
 * executes kernels on the FPGA" — here against the cycle-level circuit
 * simulator. The Device models the board (global memory + allocator +
 * the argument/trigger/completion/kernel-pointer registers' behavior);
 * Context/Buffer/Program/KernelHandle/CommandQueue mirror the OpenCL
 * host object model.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "memsys/global_memory.hpp"
#include "sim/circuit.hpp"
#include "support/error.hpp"

namespace soff::sim
{
struct DeadlockReport;
} // namespace soff::sim

namespace soff::rt
{

/**
 * A RuntimeError carrying the OpenCL status code a real clXxx() call
 * would have returned, plus — for deadlocks and timeouts — the
 * structured DeadlockReport describing who waits on whom.
 */
class OpenClError : public RuntimeError
{
  public:
    OpenClError(ClStatus status, const std::string &message,
                std::shared_ptr<const sim::DeadlockReport> report = nullptr)
        : RuntimeError(message), status_(status), report_(std::move(report))
    {}

    ClStatus status() const { return status_; }
    const char *statusName() const { return clStatusName(status_); }
    /** Non-null only for deadlock/timeout errors. */
    const std::shared_ptr<const sim::DeadlockReport> &report() const
    {
        return report_;
    }

  private:
    ClStatus status_;
    std::shared_ptr<const sim::DeadlockReport> report_;
};

/** The simulated accelerator board. */
class Device
{
  public:
    explicit Device(datapath::FpgaSpec fpga = datapath::FpgaSpec::arria10(),
                    uint64_t global_mem_bytes = 256ull << 20);

    memsys::GlobalMemory &globalMemory() { return memory_; }
    const datapath::FpgaSpec &fpga() const { return fpga_; }

    /** Global-memory allocator (§III-C1: "a simple memory allocator"). */
    uint64_t allocate(uint64_t bytes);
    void release(uint64_t addr);

    /** Partial reconfigurations performed so far (§III-B). */
    int reconfigurations() const { return reconfigurations_; }
    void noteReconfiguration() { ++reconfigurations_; }
    const std::string &residentKernel() const { return resident_; }
    void setResidentKernel(const std::string &name) { resident_ = name; }

  private:
    datapath::FpgaSpec fpga_;
    memsys::GlobalMemory memory_;
    struct Block
    {
        uint64_t addr;
        uint64_t size;
        bool used;
    };
    std::vector<Block> blocks_;
    int reconfigurations_ = 0;
    std::string resident_;
};

/** A device global-memory buffer (cl_mem). */
class Buffer
{
  public:
    Buffer() = default;
    Buffer(uint64_t addr, uint64_t size) : addr_(addr), size_(size) {}

    uint64_t deviceAddress() const { return addr_; }
    uint64_t size() const { return size_; }
    bool valid() const { return addr_ != 0; }

  private:
    uint64_t addr_ = 0;
    uint64_t size_ = 0;
};

/** How enqueueNDRange executes the kernel. */
enum class ExecutionMode
{
    Simulate,  ///< Cycle-level circuit simulation (the real thing).
    Reference, ///< Reference interpreter (fast functional check).
};

/** Result of one kernel execution. */
struct LaunchResult
{
    uint64_t cycles = 0;
    double timeMs = 0.0;
    double fmaxMhz = 0.0;
    int instances = 0;
    bool deadlock = false;
    sim::CircuitStats stats;
    /** Scheduler-side counters (mode-dependent; not cross-checked). */
    sim::SchedulerStats sched;
    /** Full architectural counter report (null for Reference mode). */
    std::shared_ptr<const sim::StatsReport> statsReport;
};

/** clGetEventProfilingInfo parameter names (values match cl.h). */
enum class ClProfilingInfo : int
{
    CommandQueued = 0x1280, ///< CL_PROFILING_COMMAND_QUEUED
    CommandSubmit = 0x1281, ///< CL_PROFILING_COMMAND_SUBMIT
    CommandStart = 0x1282,  ///< CL_PROFILING_COMMAND_START
    CommandEnd = 0x1283,    ///< CL_PROFILING_COMMAND_END
};

/**
 * An event attached to an enqueued command (cl_event, profiling subset).
 *
 * Timestamps are nanoseconds on the simulated device timeline: the
 * in-order queue advances a device clock by each launch's simulated
 * cycle count converted through the resource model's fmax estimate, so
 * QUEUED <= SUBMIT <= START <= END always holds and back-to-back
 * launches tile the timeline without overlap.
 */
class Event
{
  public:
    Event() = default;

    bool valid() const { return valid_; }

    /** clGetEventProfilingInfo: one timestamp in nanoseconds. */
    uint64_t profilingInfo(ClProfilingInfo info) const;

    uint64_t queuedNs() const { return queuedNs_; }
    uint64_t submitNs() const { return submitNs_; }
    uint64_t startNs() const { return startNs_; }
    uint64_t endNs() const { return endNs_; }

    /** The launch's StatsReport (null for Reference-mode launches). */
    const std::shared_ptr<const sim::StatsReport> &stats() const
    {
        return stats_;
    }

  private:
    friend class Context;

    uint64_t queuedNs_ = 0;
    uint64_t submitNs_ = 0;
    uint64_t startNs_ = 0;
    uint64_t endNs_ = 0;
    bool valid_ = false;
    std::shared_ptr<const sim::StatsReport> stats_;
};

/**
 * SOFF extension ("soff_kernel_stats"): the per-launch architectural
 * counter report behind an event. Null when the launch ran on the
 * reference interpreter (no circuit, no counters).
 */
std::shared_ptr<const sim::StatsReport>
soffGetKernelStats(const Event &event);

class Program;

/** A kernel object with bound arguments (cl_kernel). */
class KernelHandle
{
  public:
    KernelHandle(Program *program, const core::CompiledKernel *compiled)
        : program_(program), compiled_(compiled)
    {}

    const std::string &name() const;
    size_t numArgs() const;

    void setArg(size_t index, const Buffer &buffer);
    void setArg(size_t index, int32_t v);
    void setArg(size_t index, uint32_t v);
    void setArg(size_t index, int64_t v);
    void setArg(size_t index, uint64_t v);
    void setArg(size_t index, float v);
    void setArg(size_t index, double v);

    const core::CompiledKernel &compiled() const { return *compiled_; }
    Program *program() const { return program_; }
    /** Builds the launch-time argument map; throws if any arg unset. */
    std::map<const ir::Argument *, ir::RtValue> argValues() const;

  private:
    void checkIndex(size_t index, bool is_buffer) const;

    Program *program_;
    const core::CompiledKernel *compiled_;
    std::map<size_t, ir::RtValue> args_;
};

/** A built OpenCL program (cl_program; offline compilation §III-C). */
class Program
{
  public:
    Program(Device &device, std::unique_ptr<core::CompiledProgram> compiled)
        : device_(&device), compiled_(std::move(compiled))
    {}

    KernelHandle createKernel(const std::string &name);
    const core::CompiledProgram &compiled() const { return *compiled_; }
    Device &device() { return *device_; }

    /** Instance count used when launching this kernel (§III-B/C). */
    int instancesFor(const core::CompiledKernel &kernel) const;
    /** True if launching this kernel requires partial reconfiguration. */
    bool needsReconfiguration(const core::CompiledKernel &kernel) const;

    /** Parked circuit templates (tests observe cache behavior). */
    size_t circuitCacheSize() const { return circuitCache_.size(); }

  private:
    friend class Context;

    /**
     * Circuit-template memoization. Building a KernelCircuit walks the
     * whole plan tree and allocates the component/channel arena; in a
     * launch loop (the common host pattern) that dominates small-kernel
     * runtimes. A circuit whose structure is fully determined by
     * (plan, instance count, structural platform knobs) is parked here
     * after a successful run and rearmed via KernelCircuit::relaunch()
     * on the next matching launch — bit-identical to a cold build.
     * The cache lives in the Program — not the Context — because a
     * cached circuit holds raw pointers into the plan's IR, which this
     * Program owns: parking it anywhere that can outlive the Program
     * would dangle. Launches with fault injection, tracing, or
     * cross-check bypass the cache, as does SOFF_CIRCUIT_CACHE=0.
     */
    struct CircuitCacheEntry
    {
        const datapath::KernelPlan *plan = nullptr;
        int instances = 0;
        sim::PlatformConfig platform;
        std::unique_ptr<sim::KernelCircuit> circuit;
    };

    /** Removes and returns a matching cached circuit (null if none). */
    std::unique_ptr<sim::KernelCircuit>
    takeCachedCircuit(const datapath::KernelPlan *plan, int instances,
                      const sim::PlatformConfig &platform);
    /** Parks a circuit for reuse (replaces any entry with the key). */
    void storeCachedCircuit(const datapath::KernelPlan *plan,
                            int instances,
                            const sim::PlatformConfig &platform,
                            std::unique_ptr<sim::KernelCircuit> circuit);

    Device *device_;
    std::unique_ptr<core::CompiledProgram> compiled_;
    std::vector<CircuitCacheEntry> circuitCache_;
};

/** The context + in-order command queue (simplified cl_context+queue). */
class Context
{
  public:
    explicit Context(datapath::FpgaSpec fpga = datapath::FpgaSpec::arria10(),
                     uint64_t global_mem_bytes = 256ull << 20)
        : device_(std::move(fpga), global_mem_bytes)
    {}

    Device &device() { return device_; }

    Buffer createBuffer(uint64_t size);
    void releaseBuffer(Buffer &buffer);
    /** Host->device DMA (paper §III-A). */
    void writeBuffer(const Buffer &buffer, const void *src, uint64_t size);
    /** Device->host DMA. */
    void readBuffer(const Buffer &buffer, void *dst, uint64_t size);

    /** Compiles a program for this device (offline compilation). */
    Program buildProgram(const std::string &source,
                         const core::CompilerOptions &options = {});

    /**
     * Executes a kernel over an NDRange. `instance_override` forces a
     * specific datapath instance count (0 = the resource model's
     * maximum, the paper's default behavior) — used by the instance-
     * scaling ablation bench. When `event` is non-null it is filled
     * with the launch's profiling timestamps and StatsReport.
     */
    LaunchResult enqueueNDRange(
        KernelHandle &kernel, const sim::NDRange &ndrange,
        ExecutionMode mode = ExecutionMode::Simulate,
        const sim::PlatformConfig &platform = {},
        int instance_override = 0, Event *event = nullptr);

  private:
    Device device_;
    /** In-order device timeline for event profiling (ns). */
    uint64_t clockNs_ = 0;
};

} // namespace soff::rt
