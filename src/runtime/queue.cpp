/**
 * @file
 * The queued half of the runtime: Event, CommandQueue, user events, and
 * the per-context LaunchEngine worker pool. See launch_internal.hpp for
 * the command lifecycle and DESIGN.md "Launch concurrency" for the
 * determinism argument.
 */
#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "runtime/launch_internal.hpp"
#include "runtime/runtime.hpp"
#include "support/strings.hpp"

namespace soff::rt
{

namespace detail
{

int
parseEnvInt(const char *knob, const char *text, long lo, long hi)
{
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(text, &end, 10);
    bool bare_digits = *text >= '0' && *text <= '9'; // no ws/sign
    if (!bare_digits || end == text || *end != '\0' || errno == ERANGE ||
        v < lo || v > hi) {
        throw OpenClError(ClStatus::InvalidValue, strFormat(
            "invalid %s '%s': expected an integer between %ld and %ld",
            knob, text, lo, hi));
    }
    return static_cast<int>(v);
}

// ----------------------------------------------------------------------
// Command
// ----------------------------------------------------------------------
void
Command::execute(Context &ctx)
{
    if (depFailed.load(std::memory_order_acquire)) {
        // OpenCL: a command whose wait list contains a failed event is
        // itself terminated without running.
        error = std::make_exception_ptr(OpenClError(
            ClStatus::InvalidEventWaitList,
            "command not executed: a wait-list dependency failed"));
    } else {
        try {
            switch (kind) {
              case Kind::NDRange: {
                uint64_t ns = 0;
                LaunchResult result = ctx.runLaunchCore(plan, &ns);
                durationNs = ns;
                profileable = plan.mode == ExecutionMode::Simulate;
                {
                    std::lock_guard<std::mutex> lock(event->m);
                    event->stats = result.statsReport;
                }
                break;
              }
              case Kind::Write:
                ctx.device().dmaWrite(addr, size, src);
                profileable = true;
                break;
              case Kind::Read:
                ctx.device().dmaRead(addr, size, dst);
                profileable = true;
                break;
            }
        } catch (...) {
            error = std::current_exception();
        }
    }
    queue->retire(this);
}

// ----------------------------------------------------------------------
// LaunchEngine
// ----------------------------------------------------------------------
LaunchEngine::LaunchEngine(Context &ctx, int workers, int max_in_flight)
    : ctx_(ctx), maxInFlight_(max_in_flight)
{
    workers_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerMain(); });
}

LaunchEngine::~LaunchEngine()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        stop_ = true;
    }
    readyCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
LaunchEngine::admitOne()
{
    std::unique_lock<std::mutex> lock(m_);
    admitCv_.wait(lock, [this] { return inFlight_ < maxInFlight_; });
    ++inFlight_;
}

void
LaunchEngine::releaseOne()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        --inFlight_;
    }
    admitCv_.notify_one();
}

void
LaunchEngine::submit(std::shared_ptr<Command> cmd)
{
    {
        std::lock_guard<std::mutex> lock(cmd->event->m);
        cmd->event->status = CommandStatus::Submitted;
    }
    {
        std::lock_guard<std::mutex> lock(m_);
        ready_.push_back(std::move(cmd));
    }
    readyCv_.notify_one();
}

void
LaunchEngine::workerMain()
{
    for (;;) {
        std::shared_ptr<Command> cmd;
        {
            std::unique_lock<std::mutex> lock(m_);
            readyCv_.wait(lock,
                          [this] { return stop_ || !ready_.empty(); });
            if (ready_.empty())
                return; // stop_ and drained.
            cmd = std::move(ready_.front());
            ready_.pop_front();
        }
        {
            std::lock_guard<std::mutex> lock(cmd->event->m);
            cmd->event->status = CommandStatus::Running;
        }
        cmd->execute(ctx_);
    }
}

bool
LaunchEngine::completeEvent(const std::shared_ptr<EventState> &state,
                            std::exception_ptr error)
{
    std::vector<std::function<void()>> callbacks;
    std::vector<std::shared_ptr<Command>> dependents;
    {
        std::lock_guard<std::mutex> lock(state->m);
        // The already-complete check and the Complete transition are
        // one critical section, so two racing completers (e.g. two
        // setComplete() calls on one user event) cannot both win.
        if (state->status == CommandStatus::Complete)
            return true;
        state->status = CommandStatus::Complete;
        state->failed = error != nullptr;
        state->error = error;
        callbacks.swap(state->callbacks);
        dependents.swap(state->dependents);
    }
    state->cv.notify_all();
    for (const std::function<void()> &fn : callbacks)
        fn();
    for (const std::shared_ptr<Command> &d : dependents) {
        if (error != nullptr)
            d->depFailed.store(true, std::memory_order_release);
        if (d->remainingDeps.fetch_sub(1, std::memory_order_acq_rel) ==
            1)
            d->queue->engine_->submit(d);
    }
    return false;
}

void
LaunchEngine::resolveDependencies(
    const std::shared_ptr<Command> &cmd,
    const std::vector<std::shared_ptr<EventState>> &waits)
{
    for (const std::shared_ptr<EventState> &w : waits) {
        std::lock_guard<std::mutex> lock(w->m);
        if (w->status == CommandStatus::Complete) {
            if (w->failed)
                cmd->depFailed.store(true, std::memory_order_release);
            continue;
        }
        cmd->remainingDeps.fetch_add(1, std::memory_order_acq_rel);
        w->dependents.push_back(cmd);
    }
    // Release the enqueue guard; if every dependency already resolved
    // (or there were none), this submits.
    if (cmd->remainingDeps.fetch_sub(1, std::memory_order_acq_rel) == 1)
        cmd->queue->engine_->submit(cmd);
}

} // namespace detail

// ----------------------------------------------------------------------
// Event
// ----------------------------------------------------------------------
bool
Event::valid() const
{
    if (state_ == nullptr)
        return false;
    std::lock_guard<std::mutex> lock(state_->m);
    return state_->profiled;
}

uint64_t
Event::profilingInfo(ClProfilingInfo info) const
{
    if (state_ == nullptr) {
        throw OpenClError(ClStatus::ProfilingInfoNotAvailable,
                          "event is not attached to any command");
    }
    std::lock_guard<std::mutex> lock(state_->m);
    if (!state_->profiled) {
        throw OpenClError(
            ClStatus::ProfilingInfoNotAvailable,
            state_->status == CommandStatus::Complete
                ? "profiling info not available for this command"
                : "profiling info not available: command has not "
                  "completed");
    }
    switch (info) {
      case ClProfilingInfo::CommandQueued: return state_->queuedNs;
      case ClProfilingInfo::CommandSubmit: return state_->submitNs;
      case ClProfilingInfo::CommandStart: return state_->startNs;
      case ClProfilingInfo::CommandEnd: return state_->endNs;
    }
    throw OpenClError(ClStatus::InvalidValue,
                      "unknown profiling info parameter");
}

uint64_t
Event::queuedNs() const
{
    return profilingInfo(ClProfilingInfo::CommandQueued);
}

uint64_t
Event::submitNs() const
{
    return profilingInfo(ClProfilingInfo::CommandSubmit);
}

uint64_t
Event::startNs() const
{
    return profilingInfo(ClProfilingInfo::CommandStart);
}

uint64_t
Event::endNs() const
{
    return profilingInfo(ClProfilingInfo::CommandEnd);
}

std::shared_ptr<const sim::StatsReport>
Event::stats() const
{
    if (state_ == nullptr)
        return nullptr;
    std::lock_guard<std::mutex> lock(state_->m);
    return state_->stats;
}

CommandStatus
Event::status() const
{
    if (state_ == nullptr) {
        throw OpenClError(ClStatus::InvalidEvent,
                          "event is not attached to any command");
    }
    std::lock_guard<std::mutex> lock(state_->m);
    return state_->status;
}

bool
Event::isComplete() const
{
    return state_ != nullptr &&
           [this] {
               std::lock_guard<std::mutex> lock(state_->m);
               return state_->status == CommandStatus::Complete;
           }();
}

void
Event::wait() const
{
    if (state_ == nullptr) {
        throw OpenClError(ClStatus::InvalidEvent,
                          "event is not attached to any command");
    }
    std::unique_lock<std::mutex> lock(state_->m);
    state_->cv.wait(lock, [this] {
        return state_->status == CommandStatus::Complete;
    });
    if (state_->error != nullptr)
        std::rethrow_exception(state_->error);
}

void
Event::onComplete(std::function<void()> fn) const
{
    if (state_ == nullptr) {
        throw OpenClError(ClStatus::InvalidEvent,
                          "event is not attached to any command");
    }
    {
        std::lock_guard<std::mutex> lock(state_->m);
        if (state_->status != CommandStatus::Complete) {
            state_->callbacks.push_back(std::move(fn));
            return;
        }
    }
    fn(); // Already complete: run on the calling thread.
}

void
Event::setComplete() const
{
    if (state_ == nullptr || !state_->userEvent) {
        throw OpenClError(ClStatus::InvalidEvent,
                          "setComplete() requires a user event");
    }
    // completeEvent performs the already-complete check atomically with
    // the transition; a concurrent double-complete loses the race and
    // gets the CL_INVALID_OPERATION, never a second completion.
    if (detail::LaunchEngine::completeEvent(state_, nullptr)) {
        throw OpenClError(ClStatus::InvalidOperation,
                          "user event execution status was already set");
    }
}

std::shared_ptr<const sim::StatsReport>
soffGetKernelStats(const Event &event)
{
    if (event.state_ == nullptr) {
        throw OpenClError(ClStatus::ProfilingInfoNotAvailable,
                          "event is not attached to any command");
    }
    return event.stats();
}

// ----------------------------------------------------------------------
// Context: user events + engine
// ----------------------------------------------------------------------
Context::Context(datapath::FpgaSpec fpga, uint64_t global_mem_bytes)
    : device_(std::move(fpga), global_mem_bytes)
{
}

Context::~Context() = default;

Event
Context::createUserEvent()
{
    auto state = std::make_shared<detail::EventState>();
    state->userEvent = true;
    // cl.h: user events start CL_SUBMITTED, not CL_QUEUED.
    state->status = CommandStatus::Submitted;
    return Event(std::move(state));
}

detail::LaunchEngine &
Context::engine(const QueueOptions &options)
{
    std::lock_guard<std::mutex> lock(engineMutex_);
    if (engine_ == nullptr) {
        int workers = options.workers;
        if (workers <= 0) {
            const char *env = std::getenv("SOFF_QUEUE_WORKERS");
            if (env != nullptr && *env != '\0') {
                workers =
                    detail::parseEnvInt("SOFF_QUEUE_WORKERS", env, 1,
                                        1024);
            } else {
                workers = static_cast<int>(
                    std::thread::hardware_concurrency());
                workers = std::max(workers, 1);
            }
        }
        int max_in_flight = options.maxInFlight;
        if (max_in_flight <= 0)
            max_in_flight = std::max(4 * workers, 16);
        engine_ = std::make_unique<detail::LaunchEngine>(*this, workers,
                                                         max_in_flight);
    }
    return *engine_;
}

// ----------------------------------------------------------------------
// CommandQueue
// ----------------------------------------------------------------------
CommandQueue::CommandQueue(Context &context, QueueOptions options)
    : context_(context), options_(options),
      engine_(&context.engine(options))
{
}

CommandQueue::~CommandQueue()
{
    try {
        finish();
    } catch (...) {
        // A failed command's error was already delivered through its
        // event (or a finish() the user called); destruction only
        // needs the drain.
    }
}

void
CommandQueue::enqueueNDRange(KernelHandle &kernel,
                             const sim::NDRange &ndrange,
                             const std::vector<Event> &wait_list,
                             Event *event, ExecutionMode mode,
                             const sim::PlatformConfig &platform,
                             int instance_override)
{
    auto cmd = std::make_shared<detail::Command>();
    cmd->kind = detail::Command::Kind::NDRange;
    // Validation and every getenv() happen here, on the calling
    // thread, synchronously.
    cmd->plan = context_.resolveLaunch(kernel, ndrange, mode, platform,
                                       instance_override,
                                       /*allow_degradation=*/false);
    enqueueCommand(std::move(cmd), wait_list, event);
}

void
CommandQueue::enqueueWrite(const Buffer &buffer, const void *src,
                           uint64_t size,
                           const std::vector<Event> &wait_list,
                           Event *event)
{
    if (!buffer.valid() || size > buffer.size()) {
        throw OpenClError(ClStatus::InvalidValue,
                          "enqueueWrite: invalid buffer or size");
    }
    auto cmd = std::make_shared<detail::Command>();
    cmd->kind = detail::Command::Kind::Write;
    cmd->addr = buffer.deviceAddress();
    cmd->size = size;
    cmd->src = src;
    enqueueCommand(std::move(cmd), wait_list, event);
}

void
CommandQueue::enqueueRead(const Buffer &buffer, void *dst, uint64_t size,
                          const std::vector<Event> &wait_list,
                          Event *event)
{
    if (!buffer.valid() || size > buffer.size()) {
        throw OpenClError(ClStatus::InvalidValue,
                          "enqueueRead: invalid buffer or size");
    }
    auto cmd = std::make_shared<detail::Command>();
    cmd->kind = detail::Command::Kind::Read;
    cmd->addr = buffer.deviceAddress();
    cmd->size = size;
    cmd->dst = dst;
    enqueueCommand(std::move(cmd), wait_list, event);
}

void
CommandQueue::enqueueCommand(std::shared_ptr<detail::Command> cmd,
                             const std::vector<Event> &wait_list,
                             Event *event)
{
    std::vector<std::shared_ptr<detail::EventState>> waits;
    waits.reserve(wait_list.size() + 1);
    for (const Event &e : wait_list) {
        if (!e.attached()) {
            throw OpenClError(
                ClStatus::InvalidEventWaitList,
                "wait list contains an event not attached to any "
                "command (no enqueued command can ever complete it — "
                "the one expressible dependency cycle)");
        }
        waits.push_back(e.state_);
    }
    // Backpressure: block the enqueuing thread while the context has
    // maxInFlight commands enqueued-but-unretired.
    engine_->admitOne();

    cmd->queue = this;
    cmd->event = std::make_shared<detail::EventState>();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        cmd->seq = nextSeq_++;
        if (!options_.outOfOrder && lastEvent_ != nullptr)
            waits.push_back(lastEvent_); // Implicit in-order chain.
        lastEvent_ = cmd->event;
        pending_.push_back(cmd);
    }
    if (event != nullptr)
        *event = Event(cmd->event);
    detail::LaunchEngine::resolveDependencies(cmd, waits);
}

void
CommandQueue::retire(detail::Command *cmd)
{
    std::unique_lock<std::mutex> lock(mutex_);
    cmd->executed = true;
    // Single-retirer protocol: one worker at a time walks the
    // retirement loop; any other worker just marks its command
    // executed and leaves — the active retirer picks it up when it
    // re-locks. This serializes event completion strictly in enqueue
    // order even across workers, and `retiring_` keeps the queue
    // observably un-drained until completeEvent/releaseOne have run
    // for every popped command — finish() (and therefore
    // ~CommandQueue) cannot return while a retirer still dereferences
    // this queue.
    if (retiring_)
        return;
    retiring_ = true;
    while (!pending_.empty() && pending_.front()->executed) {
        std::shared_ptr<detail::Command> c = pending_.front();
        pending_.pop_front();
        // Stamp profiling off the per-queue device clock, in
        // enqueue order — identical to the serial path's tiling.
        if (c->error == nullptr && c->profileable) {
            std::lock_guard<std::mutex> elock(c->event->m);
            c->event->queuedNs = clockNs_;
            c->event->submitNs = clockNs_ + detail::kSubmitOverheadNs;
            c->event->startNs = c->event->submitNs;
            c->event->endNs = c->event->startNs + c->durationNs;
            c->event->profiled = true;
            clockNs_ = c->event->endNs;
        }
        if (c->error != nullptr && firstError_ == nullptr)
            firstError_ = c->error;
        // Event completion (callbacks + DAG release) and the admission
        // release run outside the queue mutex — callbacks may enqueue
        // into this very queue — but under `retiring_`, so the queue
        // stays un-drained across the unlock window.
        lock.unlock();
        detail::LaunchEngine::completeEvent(c->event, c->error);
        engine_->releaseOne();
        lock.lock();
    }
    retiring_ = false;
    if (pending_.empty())
        drained_.notify_all();
    // The notify happens while still holding mutex_, and nothing of
    // `this` is touched after the unlock below: once a finish()er
    // observes the drained predicate, destroying the queue is safe.
}

void
CommandQueue::finish()
{
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        drained_.wait(lock,
                      [this] { return pending_.empty() && !retiring_; });
        error = firstError_;
        firstError_ = nullptr;
    }
    if (error != nullptr)
        std::rethrow_exception(error);
}

} // namespace soff::rt
