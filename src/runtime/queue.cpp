/**
 * @file
 * The queued half of the runtime: Event, CommandQueue, user events, and
 * the per-context LaunchEngine worker pool. See launch_internal.hpp for
 * the command lifecycle and DESIGN.md "Launch concurrency" for the
 * determinism argument.
 */
#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "runtime/launch_internal.hpp"
#include "runtime/runtime.hpp"
#include "support/strings.hpp"

namespace soff::rt
{

namespace detail
{

int
parseEnvInt(const char *knob, const char *text, long lo, long hi)
{
    errno = 0;
    char *end = nullptr;
    long v = std::strtol(text, &end, 10);
    bool bare_digits = *text >= '0' && *text <= '9'; // no ws/sign
    if (!bare_digits || end == text || *end != '\0' || errno == ERANGE ||
        v < lo || v > hi) {
        throw OpenClError(ClStatus::InvalidValue, strFormat(
            "invalid %s '%s': expected an integer between %ld and %ld",
            knob, text, lo, hi));
    }
    return static_cast<int>(v);
}

uint64_t
parseEnvU64(const char *knob, const char *text, uint64_t lo, uint64_t hi)
{
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text, &end, 10);
    bool bare_digits = *text >= '0' && *text <= '9'; // no ws/sign
    if (!bare_digits || end == text || *end != '\0' || errno == ERANGE ||
        v < lo || v > hi) {
        throw OpenClError(ClStatus::InvalidValue, strFormat(
            "invalid %s '%s': expected an integer between %llu and %llu",
            knob, text, static_cast<unsigned long long>(lo),
            static_cast<unsigned long long>(hi)));
    }
    return static_cast<uint64_t>(v);
}

namespace
{

/** The ClStatus behind an exception_ptr (CL_OUT_OF_RESOURCES for
 *  non-OpenCL errors — something still went wrong at runtime). */
ClStatus
statusOf(const std::exception_ptr &error)
{
    if (error == nullptr)
        return ClStatus::Success;
    try {
        std::rethrow_exception(error);
    } catch (const OpenClError &e) {
        return e.status();
    } catch (...) {
        return ClStatus::OutOfResources;
    }
}

} // namespace

// ----------------------------------------------------------------------
// Command
// ----------------------------------------------------------------------
void
Command::execute(Context &ctx)
{
    if (cancel->load(std::memory_order_acquire)) {
        // Cancelled before (or while) being gated: terminated without
        // running, like any failed command — dependents observe the
        // failure (containment, not silent skipping).
        error = std::make_exception_ptr(OpenClError(
            ClStatus::SoffCommandCancelled,
            "command cancelled before execution"));
    } else if (depFailed.load(std::memory_order_acquire)) {
        // OpenCL: a command whose wait list contains a failed event is
        // itself terminated without running.
        error = std::make_exception_ptr(OpenClError(
            ClStatus::ExecStatusErrorForEventsInWaitList,
            "command not executed: a wait-list dependency failed"));
    } else {
        // Pristine-memory guarantee for launch retries: device memory
        // an NDRange may have half-written on a failed attempt is
        // restored from a snapshot of its buffer-argument spans taken
        // before the first attempt. Only the spans this launch can
        // touch are saved, so concurrent launches are never disturbed
        // (which is why the PR 3 whole-memory snapshot had to stay
        // serial-path-only).
        std::vector<std::vector<uint8_t>> pristine;
        bool snapshotted = false;
        if (kind == Kind::NDRange && retryAttempts > 0 &&
            plan.mode == ExecutionMode::Simulate) {
            pristine.reserve(plan.bufferSpans.size());
            for (const auto &span : plan.bufferSpans) {
                pristine.emplace_back(span.second);
                ctx.device().dmaRead(span.first, span.second,
                                     pristine.back().data());
            }
            snapshotted = true;
        }
        uint64_t backoff_total = 0;
        for (int att = 0;; ++att) {
            try {
                switch (kind) {
                  case Kind::NDRange: {
                    plan.attempt = att;
                    uint64_t ns = 0;
                    LaunchResult result =
                        ctx.runLaunchCore(plan, &ns, cancel.get());
                    // Simulated-time backoff: retries push the stamp
                    // window out deterministically; no wall sleeping.
                    durationNs = ns + backoff_total;
                    profileable = plan.mode == ExecutionMode::Simulate;
                    {
                        std::lock_guard<std::mutex> lock(event->m);
                        event->stats = result.statsReport;
                    }
                    break;
                  }
                  case Kind::Write:
                    if (dmaFaults.dmaFails(ordinal, att)) {
                        ctx.injDmaFaults_.fetch_add(1);
                        throw TransientFault(
                            TransientFaultKind::DmaTransfer,
                            "injected transient DMA write fault");
                    }
                    ctx.device().dmaWrite(addr, size, src);
                    durationNs = backoff_total;
                    profileable = true;
                    break;
                  case Kind::Read:
                    if (dmaFaults.dmaFails(ordinal, att)) {
                        ctx.injDmaFaults_.fetch_add(1);
                        throw TransientFault(
                            TransientFaultKind::DmaTransfer,
                            "injected transient DMA read fault");
                    }
                    ctx.device().dmaRead(addr, size, dst);
                    durationNs = backoff_total;
                    profileable = true;
                    break;
                }
                break; // Attempt succeeded.
            } catch (const TransientFault &tf) {
                ++transientFaults;
                if (att >= retryAttempts ||
                    cancel->load(std::memory_order_acquire)) {
                    error = std::current_exception();
                    break; // Retry budget exhausted (or cancelled).
                }
                ++retriesUsed;
                backoff_total += backoffNs << (retriesUsed - 1);
                if (tf.kind() == TransientFaultKind::SchedulerInternal) {
                    // Generalized PR 3 degradation: a scheduler blowup
                    // retries on the always-correct Reference
                    // scheduler instead of failing the launch.
                    plan.plat.scheduler = sim::SchedulerMode::Reference;
                }
                if (snapshotted) {
                    for (size_t i = 0; i < plan.bufferSpans.size(); ++i) {
                        ctx.device().dmaWrite(plan.bufferSpans[i].first,
                                              plan.bufferSpans[i].second,
                                              pristine[i].data());
                    }
                }
            } catch (...) {
                error = std::current_exception(); // Permanent failure.
                break;
            }
        }
    }
    errStatus = statusOf(error);
    queue->retire(this);
}

// ----------------------------------------------------------------------
// LaunchEngine
// ----------------------------------------------------------------------
LaunchEngine::LaunchEngine(Context &ctx, int workers, int max_in_flight)
    : ctx_(ctx), maxInFlight_(max_in_flight)
{
    workers_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerMain(); });
}

LaunchEngine::~LaunchEngine()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        stop_ = true;
    }
    readyCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
LaunchEngine::admitOne()
{
    std::unique_lock<std::mutex> lock(m_);
    admitCv_.wait(lock, [this] { return inFlight_ < maxInFlight_; });
    ++inFlight_;
}

void
LaunchEngine::releaseOne()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        --inFlight_;
    }
    admitCv_.notify_one();
}

void
LaunchEngine::submit(std::shared_ptr<Command> cmd)
{
    {
        std::lock_guard<std::mutex> lock(cmd->event->m);
        cmd->event->status = CommandStatus::Submitted;
    }
    {
        std::lock_guard<std::mutex> lock(m_);
        ready_.push_back(std::move(cmd));
    }
    readyCv_.notify_one();
}

void
LaunchEngine::workerMain()
{
    for (;;) {
        std::shared_ptr<Command> cmd;
        {
            std::unique_lock<std::mutex> lock(m_);
            readyCv_.wait(lock,
                          [this] { return stop_ || !ready_.empty(); });
            if (ready_.empty())
                return; // stop_ and drained.
            cmd = std::move(ready_.front());
            ready_.pop_front();
        }
        {
            std::lock_guard<std::mutex> lock(cmd->event->m);
            cmd->event->status = CommandStatus::Running;
        }
        cmd->execute(ctx_);
    }
}

bool
LaunchEngine::completeEvent(const std::shared_ptr<EventState> &state,
                            std::exception_ptr error)
{
    std::vector<std::function<void()>> callbacks;
    std::vector<std::shared_ptr<Command>> dependents;
    CommandQueue *owner = nullptr;
    {
        std::lock_guard<std::mutex> lock(state->m);
        // The already-complete check and the Complete transition are
        // one critical section, so two racing completers (e.g. two
        // setComplete() calls on one user event) cannot both win.
        if (state->status == CommandStatus::Complete)
            return true;
        state->status = CommandStatus::Complete;
        state->failed = error != nullptr;
        state->error = error;
        state->errStatus = statusOf(error);
        callbacks.swap(state->callbacks);
        dependents.swap(state->dependents);
        owner = state->ownerQueue;
    }
    state->cv.notify_all();
    for (const std::function<void()> &fn : callbacks) {
        // Exception safety: a throwing user callback must not wedge
        // the single-retirer drain loop (the retirer would die with
        // `retiring_` latched and finish() would hang forever) —
        // swallow and record.
        try {
            fn();
        } catch (...) {
            if (owner != nullptr)
                owner->callbackExceptions_.fetch_add(1);
        }
    }
    for (const std::shared_ptr<Command> &d : dependents) {
        if (error != nullptr)
            d->depFailed.store(true, std::memory_order_release);
        if (d->remainingDeps.fetch_sub(1, std::memory_order_acq_rel) ==
                1 &&
            !d->submitted.exchange(true, std::memory_order_acq_rel))
            d->queue->engine_->submit(d);
    }
    return false;
}

void
LaunchEngine::resolveDependencies(
    const std::shared_ptr<Command> &cmd,
    const std::vector<std::shared_ptr<EventState>> &waits)
{
    for (const std::shared_ptr<EventState> &w : waits) {
        std::lock_guard<std::mutex> lock(w->m);
        if (w->status == CommandStatus::Complete) {
            if (w->failed)
                cmd->depFailed.store(true, std::memory_order_release);
            continue;
        }
        cmd->remainingDeps.fetch_add(1, std::memory_order_acq_rel);
        w->dependents.push_back(cmd);
    }
    // Release the enqueue guard; if every dependency already resolved
    // (or there were none), this submits. The `submitted` exchange
    // keeps the submit exactly-once against a concurrent cancel()
    // force-submitting the same command.
    if (cmd->remainingDeps.fetch_sub(1, std::memory_order_acq_rel) ==
            1 &&
        !cmd->submitted.exchange(true, std::memory_order_acq_rel))
        cmd->queue->engine_->submit(cmd);
}

void
LaunchEngine::cancelCommand(const std::shared_ptr<Command> &cmd)
{
    cmd->cancel->store(true, std::memory_order_release);
    // Force-submit a still-gated command so it drains (as a failure)
    // even if its dependencies never resolve — cancellation must free
    // a queue wedged on an abandoned user event. Later dependency
    // completions still decrement remainingDeps but the exchange above
    // keeps the submit exactly-once; a command already executed (or
    // executing) just observes a latched flag it no longer reads.
    if (!cmd->submitted.exchange(true, std::memory_order_acq_rel))
        cmd->queue->engine_->submit(cmd);
}

} // namespace detail

// ----------------------------------------------------------------------
// Event
// ----------------------------------------------------------------------
bool
Event::valid() const
{
    if (state_ == nullptr)
        return false;
    std::lock_guard<std::mutex> lock(state_->m);
    return state_->profiled;
}

uint64_t
Event::profilingInfo(ClProfilingInfo info) const
{
    if (state_ == nullptr) {
        throw OpenClError(ClStatus::ProfilingInfoNotAvailable,
                          "event is not attached to any command");
    }
    std::lock_guard<std::mutex> lock(state_->m);
    if (!state_->profiled) {
        throw OpenClError(
            ClStatus::ProfilingInfoNotAvailable,
            state_->status == CommandStatus::Complete
                ? "profiling info not available for this command"
                : "profiling info not available: command has not "
                  "completed");
    }
    switch (info) {
      case ClProfilingInfo::CommandQueued: return state_->queuedNs;
      case ClProfilingInfo::CommandSubmit: return state_->submitNs;
      case ClProfilingInfo::CommandStart: return state_->startNs;
      case ClProfilingInfo::CommandEnd: return state_->endNs;
    }
    throw OpenClError(ClStatus::InvalidValue,
                      "unknown profiling info parameter");
}

uint64_t
Event::queuedNs() const
{
    return profilingInfo(ClProfilingInfo::CommandQueued);
}

uint64_t
Event::submitNs() const
{
    return profilingInfo(ClProfilingInfo::CommandSubmit);
}

uint64_t
Event::startNs() const
{
    return profilingInfo(ClProfilingInfo::CommandStart);
}

uint64_t
Event::endNs() const
{
    return profilingInfo(ClProfilingInfo::CommandEnd);
}

std::shared_ptr<const sim::StatsReport>
Event::stats() const
{
    if (state_ == nullptr)
        return nullptr;
    std::lock_guard<std::mutex> lock(state_->m);
    return state_->stats;
}

CommandStatus
Event::status() const
{
    if (state_ == nullptr) {
        throw OpenClError(ClStatus::InvalidEvent,
                          "event is not attached to any command");
    }
    std::lock_guard<std::mutex> lock(state_->m);
    return state_->status;
}

int
Event::executionStatus() const
{
    if (state_ == nullptr) {
        throw OpenClError(ClStatus::InvalidEvent,
                          "event is not attached to any command");
    }
    std::lock_guard<std::mutex> lock(state_->m);
    if (state_->status == CommandStatus::Complete && state_->failed)
        return static_cast<int>(state_->errStatus);
    return static_cast<int>(state_->status);
}

bool
Event::isComplete() const
{
    return state_ != nullptr &&
           [this] {
               std::lock_guard<std::mutex> lock(state_->m);
               return state_->status == CommandStatus::Complete;
           }();
}

void
Event::wait() const
{
    if (state_ == nullptr) {
        throw OpenClError(ClStatus::InvalidEvent,
                          "event is not attached to any command");
    }
    std::unique_lock<std::mutex> lock(state_->m);
    state_->cv.wait(lock, [this] {
        return state_->status == CommandStatus::Complete;
    });
    if (state_->error != nullptr)
        std::rethrow_exception(state_->error);
}

void
Event::onComplete(std::function<void()> fn) const
{
    if (state_ == nullptr) {
        throw OpenClError(ClStatus::InvalidEvent,
                          "event is not attached to any command");
    }
    {
        std::lock_guard<std::mutex> lock(state_->m);
        if (state_->status != CommandStatus::Complete) {
            state_->callbacks.push_back(std::move(fn));
            return;
        }
    }
    fn(); // Already complete: run on the calling thread.
}

void
Event::setComplete() const
{
    if (state_ == nullptr || !state_->userEvent) {
        throw OpenClError(ClStatus::InvalidEvent,
                          "setComplete() requires a user event");
    }
    // completeEvent performs the already-complete check atomically with
    // the transition; a concurrent double-complete loses the race and
    // gets the CL_INVALID_OPERATION, never a second completion.
    if (detail::LaunchEngine::completeEvent(state_, nullptr)) {
        throw OpenClError(ClStatus::InvalidOperation,
                          "user event execution status was already set");
    }
}

void
Event::cancel() const
{
    if (state_ == nullptr) {
        throw OpenClError(ClStatus::InvalidEvent,
                          "event is not attached to any command");
    }
    bool user = false;
    std::shared_ptr<detail::Command> cmd;
    {
        std::lock_guard<std::mutex> lock(state_->m);
        if (state_->status == CommandStatus::Complete)
            return; // Nothing left to cancel; not an error.
        user = state_->userEvent;
        cmd = state_->command.lock();
    }
    if (user) {
        // Cancelling a user event completes it with the cancellation
        // error: waiters unblock and dependents are contained exactly
        // like dependents of a failed command.
        detail::LaunchEngine::completeEvent(
            state_, std::make_exception_ptr(OpenClError(
                        ClStatus::SoffCommandCancelled,
                        "user event cancelled")));
        return;
    }
    if (cmd != nullptr)
        detail::LaunchEngine::cancelCommand(cmd);
}

std::shared_ptr<const sim::StatsReport>
soffGetKernelStats(const Event &event)
{
    if (event.state_ == nullptr) {
        throw OpenClError(ClStatus::ProfilingInfoNotAvailable,
                          "event is not attached to any command");
    }
    return event.stats();
}

// ----------------------------------------------------------------------
// Context: user events + engine
// ----------------------------------------------------------------------
Context::Context(datapath::FpgaSpec fpga, uint64_t global_mem_bytes)
    : device_(std::move(fpga), global_mem_bytes)
{
}

Context::~Context() = default;

Event
Context::createUserEvent()
{
    auto state = std::make_shared<detail::EventState>();
    state->userEvent = true;
    // cl.h: user events start CL_SUBMITTED, not CL_QUEUED.
    state->status = CommandStatus::Submitted;
    return Event(std::move(state));
}

InjectedFaultCounters
Context::injectedFaults() const
{
    InjectedFaultCounters c;
    c.launchAborts = injLaunchAborts_.load();
    c.dmaTransfers = injDmaFaults_.load();
    c.poolCheckouts = injPoolFaults_.load();
    c.schedulerTrips = injSchedTrips_.load();
    return c;
}

detail::LaunchEngine &
Context::engine(const QueueOptions &options)
{
    std::lock_guard<std::mutex> lock(engineMutex_);
    if (engine_ == nullptr) {
        int workers = options.workers;
        if (workers <= 0) {
            const char *env = std::getenv("SOFF_QUEUE_WORKERS");
            if (env != nullptr && *env != '\0') {
                workers =
                    detail::parseEnvInt("SOFF_QUEUE_WORKERS", env, 1,
                                        1024);
            } else {
                workers = static_cast<int>(
                    std::thread::hardware_concurrency());
                workers = std::max(workers, 1);
            }
        }
        int max_in_flight = options.maxInFlight;
        if (max_in_flight <= 0)
            max_in_flight = std::max(4 * workers, 16);
        engine_ = std::make_unique<detail::LaunchEngine>(*this, workers,
                                                         max_in_flight);
    }
    return *engine_;
}

// ----------------------------------------------------------------------
// CommandQueue
// ----------------------------------------------------------------------
CommandQueue::CommandQueue(Context &context, QueueOptions options)
    : context_(context), options_(options),
      engine_(&context.engine(options))
{
}

CommandQueue::~CommandQueue()
{
    try {
        finish();
    } catch (...) {
        // A failed command's error was already delivered through its
        // event (or a finish() the user called); destruction only
        // needs the drain.
    }
}

void
CommandQueue::enqueueNDRange(KernelHandle &kernel,
                             const sim::NDRange &ndrange,
                             const std::vector<Event> &wait_list,
                             Event *event, ExecutionMode mode,
                             const sim::PlatformConfig &platform,
                             int instance_override)
{
    auto cmd = std::make_shared<detail::Command>();
    cmd->kind = detail::Command::Kind::NDRange;
    // Validation and every getenv() happen here, on the calling
    // thread, synchronously.
    sim::PlatformConfig plat = platform;
    if (!plat.faults.enabled() && !plat.faults.checkInvariants &&
        options_.faults.enabled()) {
        // Queue-level fault injection: launches whose platform carries
        // no fault config inherit the queue's.
        plat.faults = options_.faults;
    }
    cmd->plan = context_.resolveLaunch(kernel, ndrange, mode, plat,
                                       instance_override,
                                       /*allow_degradation=*/false);
    if (options_.launchTimeoutCycles > 0)
        cmd->plan.timeoutCycles = options_.launchTimeoutCycles;
    resolveReliability(*cmd);
    cmd->plan.retryEligible = cmd->retryAttempts > 0;
    enqueueCommand(std::move(cmd), wait_list, event);
}

void
CommandQueue::enqueueWrite(const Buffer &buffer, const void *src,
                           uint64_t size,
                           const std::vector<Event> &wait_list,
                           Event *event)
{
    if (!buffer.valid() || size > buffer.size()) {
        throw OpenClError(ClStatus::InvalidValue,
                          "enqueueWrite: invalid buffer or size");
    }
    auto cmd = std::make_shared<detail::Command>();
    cmd->kind = detail::Command::Kind::Write;
    cmd->addr = buffer.deviceAddress();
    cmd->size = size;
    cmd->src = src;
    resolveReliability(*cmd);
    enqueueCommand(std::move(cmd), wait_list, event);
}

void
CommandQueue::enqueueRead(const Buffer &buffer, void *dst, uint64_t size,
                          const std::vector<Event> &wait_list,
                          Event *event)
{
    if (!buffer.valid() || size > buffer.size()) {
        throw OpenClError(ClStatus::InvalidValue,
                          "enqueueRead: invalid buffer or size");
    }
    auto cmd = std::make_shared<detail::Command>();
    cmd->kind = detail::Command::Kind::Read;
    cmd->addr = buffer.deviceAddress();
    cmd->size = size;
    cmd->dst = dst;
    resolveReliability(*cmd);
    enqueueCommand(std::move(cmd), wait_list, event);
}

void
CommandQueue::resolveReliability(detail::Command &cmd)
{
    int attempts = options_.retry.attempts;
    if (attempts < 0) {
        const char *env = std::getenv("SOFF_LAUNCH_RETRY");
        attempts = (env != nullptr && *env != '\0')
                       ? detail::parseEnvInt("SOFF_LAUNCH_RETRY", env, 0,
                                             16)
                       : 0;
    }
    cmd.retryAttempts = attempts;
    cmd.backoffNs = options_.retry.backoffNs;
    if (cmd.kind != detail::Command::Kind::NDRange) {
        // DMA commands consult the launch-visible fault plan directly
        // (launches carry theirs inside plan.plat.faults).
        sim::FaultConfig fc = options_.faults;
        if (!fc.enabled()) {
            const char *env = std::getenv("SOFF_FAULTS");
            if (env != nullptr && *env != '\0') {
                try {
                    fc = sim::FaultConfig::parse(env);
                } catch (const RuntimeError &e) {
                    throw OpenClError(ClStatus::InvalidValue, e.what());
                }
            }
        }
        cmd.dmaFaults = sim::FaultPlan(fc);
        cmd.ordinal = context_.nextCommandOrdinal();
    }
}

void
CommandQueue::enqueueCommand(std::shared_ptr<detail::Command> cmd,
                             const std::vector<Event> &wait_list,
                             Event *event)
{
    std::vector<std::shared_ptr<detail::EventState>> waits;
    waits.reserve(wait_list.size() + 1);
    for (const Event &e : wait_list) {
        if (!e.attached()) {
            throw OpenClError(
                ClStatus::InvalidEventWaitList,
                "wait list contains an event not attached to any "
                "command (no enqueued command can ever complete it — "
                "the one expressible dependency cycle)");
        }
        waits.push_back(e.state_);
    }
    // Backpressure: block the enqueuing thread while the context has
    // maxInFlight commands enqueued-but-unretired.
    engine_->admitOne();

    cmd->queue = this;
    cmd->event = std::make_shared<detail::EventState>();
    cmd->event->command = cmd;     // Cancellation back-pointer.
    cmd->event->ownerQueue = this; // Swallowed-callback accounting.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        cmd->seq = nextSeq_++;
        if (!options_.outOfOrder && lastEvent_ != nullptr)
            waits.push_back(lastEvent_); // Implicit in-order chain.
        lastEvent_ = cmd->event;
        pending_.push_back(cmd);
    }
    if (event != nullptr)
        *event = Event(cmd->event);
    detail::LaunchEngine::resolveDependencies(cmd, waits);
}

void
CommandQueue::retire(detail::Command *cmd)
{
    std::unique_lock<std::mutex> lock(mutex_);
    cmd->executed = true;
    // Single-retirer protocol: one worker at a time walks the
    // retirement loop; any other worker just marks its command
    // executed and leaves — the active retirer picks it up when it
    // re-locks. This serializes event completion strictly in enqueue
    // order even across workers, and `retiring_` keeps the queue
    // observably un-drained until completeEvent/releaseOne have run
    // for every popped command — finish() (and therefore
    // ~CommandQueue) cannot return while a retirer still dereferences
    // this queue.
    if (retiring_)
        return;
    retiring_ = true;
    while (!pending_.empty() && pending_.front()->executed) {
        std::shared_ptr<detail::Command> c = pending_.front();
        pending_.pop_front();
        // Stamp profiling off the per-queue device clock, in
        // enqueue order — identical to the serial path's tiling.
        if (c->error == nullptr && c->profileable) {
            std::lock_guard<std::mutex> elock(c->event->m);
            c->event->queuedNs = clockNs_;
            c->event->submitNs = clockNs_ + detail::kSubmitOverheadNs;
            c->event->startNs = c->event->submitNs;
            c->event->endNs = c->event->startNs + c->durationNs;
            c->event->profiled = true;
            clockNs_ = c->event->endNs;
        }
        if (c->error != nullptr && firstError_ == nullptr)
            firstError_ = c->error;
        // Fold the command's reliability outcome into the per-queue
        // counters (under mutex_, like the device clock).
        ++rstats_.retired;
        rstats_.retries += static_cast<uint64_t>(c->retriesUsed);
        rstats_.faultsInjected += c->transientFaults;
        if (c->error != nullptr) {
            ++rstats_.failed;
            rstats_.faultsSurfaced += c->transientFaults;
            switch (c->errStatus) {
              case ClStatus::ExecStatusErrorForEventsInWaitList:
                ++rstats_.depSkipped;
                break;
              case ClStatus::SoffCommandCancelled:
                ++rstats_.cancelled;
                break;
              case ClStatus::SoffLaunchTimeout:
                ++rstats_.watchdogTrips;
                break;
              default:
                break;
            }
        } else {
            rstats_.faultsRetriedAway += c->transientFaults;
        }
        // Event completion (callbacks + DAG release) and the admission
        // release run outside the queue mutex — callbacks may enqueue
        // into this very queue — but under `retiring_`, so the queue
        // stays un-drained across the unlock window.
        lock.unlock();
        detail::LaunchEngine::completeEvent(c->event, c->error);
        engine_->releaseOne();
        lock.lock();
    }
    retiring_ = false;
    if (pending_.empty())
        drained_.notify_all();
    // The notify happens while still holding mutex_, and nothing of
    // `this` is touched after the unlock below: once a finish()er
    // observes the drained predicate, destroying the queue is safe.
}

void
CommandQueue::finish()
{
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        drained_.wait(lock,
                      [this] { return pending_.empty() && !retiring_; });
        error = firstError_;
        firstError_ = nullptr;
    }
    if (error != nullptr)
        std::rethrow_exception(error);
}

void
CommandQueue::cancelAll()
{
    std::vector<std::shared_ptr<detail::Command>> snapshot;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        snapshot.assign(pending_.begin(), pending_.end());
    }
    for (const std::shared_ptr<detail::Command> &c : snapshot)
        detail::LaunchEngine::cancelCommand(c);
    // Drain without rethrowing: teardown wants "stop everything" to
    // succeed on a queue full of failures. The per-command errors were
    // delivered through the events; the queue-level first error (which
    // the cancellations themselves would now populate) is dropped.
    std::unique_lock<std::mutex> lock(mutex_);
    drained_.wait(lock,
                  [this] { return pending_.empty() && !retiring_; });
    firstError_ = nullptr;
}

ReliabilityStats
CommandQueue::reliabilityStats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ReliabilityStats s = rstats_;
    s.callbackExceptions = callbackExceptions_.load();
    return s;
}

} // namespace soff::rt
