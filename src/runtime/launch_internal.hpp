/**
 * @file
 * Internals of the multi-tenant launch engine, shared by runtime.cpp
 * (the launch core and the legacy serial path) and queue.cpp (command
 * queues, events, the worker pool). Not installed; everything here is
 * an implementation detail behind the runtime.hpp API.
 *
 * Lifecycle of a queued command:
 *
 *   enqueue (user thread)   validate + resolve env -> CorePlan; admit
 *                           against the in-flight bound; append to the
 *                           queue's pending deque; register on every
 *                           wait-list event (the dependency DAG).
 *   release                 the last wait-list event completing (or an
 *                           empty wait list) submits the command to the
 *                           engine's ready queue.          [Submitted]
 *   execute (worker)        run the simulation / DMA.        [Running]
 *   retire (worker)         the command's queue retires every leading
 *                           executed command *in enqueue order*:
 *                           profiling is stamped off the per-queue
 *                           device clock, the event completes,
 *                           callbacks fire, dependents are released.
 *                                                           [Complete]
 *
 * Retiring in enqueue order makes completion order — and therefore
 * profiling timestamps, callback order, and admission releases —
 * deterministic and identical to serial in-order execution, while the
 * *execution* of independent commands overlaps freely across workers.
 */
#pragma once

#include <atomic>
#include <thread>

#include "runtime/runtime.hpp"

namespace soff::rt::detail
{

/** Fixed queued->submit latency on the profiling timeline (ns). */
constexpr uint64_t kSubmitOverheadNs = 500;

/**
 * Strict parser shared by the launch-engine env knobs
 * (SOFF_QUEUE_WORKERS, SOFF_TEMPLATE_POOL): a bare positive decimal
 * integer in [lo, hi]; anything else is CL_INVALID_VALUE.
 */
int parseEnvInt(const char *knob, const char *text, long lo, long hi);

/** 64-bit variant for cycle-count knobs (SOFF_LAUNCH_TIMEOUT). */
uint64_t parseEnvU64(const char *knob, const char *text, uint64_t lo,
                     uint64_t hi);

/**
 * A fully resolved launch: everything Context::runLaunchCore needs,
 * with every getenv() and validation already performed on the enqueue
 * thread (workers must not observe env mutations, and enqueue-time
 * errors must throw synchronously).
 */
struct CorePlan
{
    Program *program = nullptr;
    const core::CompiledKernel *ck = nullptr;
    sim::LaunchContext launch;
    ExecutionMode mode = ExecutionMode::Simulate;
    sim::PlatformConfig plat;
    int instances = 0;
    uint64_t maxCycles = 0;
    bool crosscheck = false;
    bool cacheable = false;
    /** Per-key template-pool capacity (SOFF_TEMPLATE_POOL). */
    size_t poolCapacity = 1;
    /** Every kernel of the program fits the region together (§III-B). */
    bool allFit = false;
    /** Parallel->Reference graceful degradation (serial path only: the
     *  pristine-memory snapshot races with concurrent launches). */
    bool allowDegradation = false;

    // -- Reliability layer ------------------------------------------
    /** Watchdog cycle budget; 0 = heuristic maxCycles cap only. */
    uint64_t timeoutCycles = 0;
    /** Enqueue ordinal: the launch-visible fault key (deterministic
     *  across worker counts — assigned on the enqueue thread). */
    uint64_t ordinal = 0;
    /** 0 on the first execution, k on the k-th retry; part of the
     *  fault key so retries re-roll. */
    int attempt = 0;
    /** Launch was enqueued with a retry budget: transient scheduler
     *  blowups should surface as TransientFault instead of degrading
     *  in place (the queue path's generalized degradation). */
    bool retryEligible = false;
    /** Device spans of the buffer arguments (pristine-memory rerun). */
    std::vector<std::pair<uint64_t, uint64_t>> bufferSpans;
};

/** Shared state behind an Event handle (and a user event). */
struct EventState
{
    mutable std::mutex m;
    std::condition_variable cv;
    CommandStatus status = CommandStatus::Queued;
    bool userEvent = false;
    bool failed = false;
    /** Profiling timestamps stamped (command retired + profileable). */
    bool profiled = false;
    uint64_t queuedNs = 0;
    uint64_t submitNs = 0;
    uint64_t startNs = 0;
    uint64_t endNs = 0;
    std::shared_ptr<const sim::StatsReport> stats;
    std::exception_ptr error;
    /** The error's ClStatus, captured at completion so
     *  Event::executionStatus() needs no rethrow. */
    ClStatus errStatus = ClStatus::Success;
    std::vector<std::function<void()>> callbacks;
    /** Commands whose wait lists contain this event (DAG out-edges). */
    std::vector<std::shared_ptr<Command>> dependents;
    /** The producing command (cancellation reaches it through the
     *  event handle); empty for user events. */
    std::weak_ptr<Command> command;
    /** The producing queue — for the swallowed-callback counter; null
     *  for user events. Valid while the command is unretired (the
     *  queue outlives its pending commands' retirement). */
    CommandQueue *ownerQueue = nullptr;
};

/** One enqueued command (launch or DMA transfer). */
struct Command
{
    enum class Kind
    {
        NDRange,
        Write,
        Read,
    };

    Kind kind = Kind::NDRange;
    CommandQueue *queue = nullptr;
    uint64_t seq = 0;

    /** NDRange payload. */
    CorePlan plan;
    /** DMA payload. */
    uint64_t addr = 0;
    uint64_t size = 0;
    const void *src = nullptr;
    void *dst = nullptr;

    std::shared_ptr<EventState> event;
    /**
     * Unresolved wait-list entries plus one enqueue guard; the
     * decrement that reaches zero submits the command to the engine.
     */
    std::atomic<int> remainingDeps{1};
    /** A wait-list dependency completed with an error. */
    std::atomic<bool> depFailed{false};
    /** Exactly-once submission guard: set by the dependency release
     *  that wins, or by a cancel() force-submitting a gated command so
     *  it drains (as a failure) instead of waiting forever. */
    std::atomic<bool> submitted{false};

    // -- Reliability ------------------------------------------------
    /** Retry/fault knobs resolved on the enqueue thread. */
    int retryAttempts = 0;
    uint64_t backoffNs = 0;
    /** Launch-visible fault plan for DMA commands (NDRange launches
     *  carry theirs inside plan.plat.faults). */
    sim::FaultPlan dmaFaults;
    /** Enqueue ordinal for DMA fault keying (launches use plan.ordinal). */
    uint64_t ordinal = 0;
    /** Cancellation: flag polled by the simulator at cycle boundaries
     *  (heap-allocated so Event::cancel can latch it race-free). */
    std::shared_ptr<std::atomic<bool>> cancel =
        std::make_shared<std::atomic<bool>>(false);

    // Execution outcome (written by the worker, read at retirement
    // under the queue mutex; the executed flag orders the hand-off).
    bool executed = false;
    bool profileable = false;
    uint64_t durationNs = 0;
    std::exception_ptr error;
    /** The error's status (mirrors EventState::errStatus). */
    ClStatus errStatus = ClStatus::Success;
    /** Re-execution attempts actually performed. */
    int retriesUsed = 0;
    /** Transient faults observed across all attempts. */
    uint64_t transientFaults = 0;

    /** Runs the payload and retires through the owning queue. */
    void execute(Context &ctx);
};

/**
 * The per-context launch worker pool plus the admission valve: a plain
 * bounded task pool (contrast with the Simulator's phase-barrier shard
 * pool, which synchronizes *within* one cycle of one circuit — this
 * one schedules whole independent launches and never barriers).
 */
class LaunchEngine
{
  public:
    LaunchEngine(Context &ctx, int workers, int max_in_flight);
    ~LaunchEngine();
    LaunchEngine(const LaunchEngine &) = delete;
    LaunchEngine &operator=(const LaunchEngine &) = delete;

    int workers() const { return static_cast<int>(workers_.size()); }
    int maxInFlight() const { return maxInFlight_; }

    /**
     * Admission/backpressure: blocks the enqueuing thread until the
     * in-flight count (enqueued, not yet retired) is under the bound,
     * then claims a slot. Workers never block here, so admission can
     * not deadlock the pool itself (it can, as in OpenCL, deadlock a
     * host that gates earlier commands on later host actions).
     */
    void admitOne();
    /** Releases an admission slot (command retired). */
    void releaseOne();

    /** Hands a dependency-free command to the workers.  [Submitted] */
    void submit(std::shared_ptr<Command> cmd);

    /**
     * Completes an event: status, error, callbacks, cv broadcast, and
     * the DAG release — every dependent whose remaining-dependency
     * count reaches zero is submitted to its own queue's engine.
     * The already-complete check happens atomically with the
     * transition; returns true (and does nothing else) when the event
     * was already Complete, so racing completers resolve to exactly
     * one winner. Static so user events (which belong to no engine)
     * share it.
     */
    static bool completeEvent(const std::shared_ptr<EventState> &state,
                              std::exception_ptr error);

    /**
     * Registers `cmd` on its wait list and releases the enqueue guard;
     * submits immediately when every dependency is already complete.
     */
    static void resolveDependencies(
        const std::shared_ptr<Command> &cmd,
        const std::vector<std::shared_ptr<EventState>> &waits);

    /**
     * Best-effort cancellation of one command (Event::cancel,
     * CommandQueue::cancelAll): latches the cancel flag (a running
     * launch stops at the next cycle boundary) and force-submits a
     * still-gated command so it drains as a failure instead of
     * waiting on dependencies that may never resolve.
     */
    static void cancelCommand(const std::shared_ptr<Command> &cmd);

  private:
    void workerMain();

    Context &ctx_;
    int maxInFlight_;
    std::mutex m_;
    std::condition_variable readyCv_;
    std::condition_variable admitCv_;
    std::deque<std::shared_ptr<Command>> ready_;
    int inFlight_ = 0;
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

} // namespace soff::rt::detail
