/**
 * @file
 * Abstract syntax tree for the OpenCL C subset.
 *
 * The AST is deliberately a thin, parser-internal representation: tagged
 * structs with the union of fields each kind needs. Semantic analysis and
 * typing happen during IR generation (one-pass C compiler style).
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "frontend/token.hpp"
#include "ir/type.hpp"

namespace soff::fe
{

/** A parsed (unresolved) type: base scalar plus pointer levels. */
struct ASTType
{
    enum class Base
    {
        Void, Bool, Char, UChar, Short, UShort, Int, UInt, Long, ULong,
        Float, Double,
    };

    Base base = Base::Int;
    /**
     * Pointer levels, innermost first; each entry is the address space
     * of the memory that level points into.
     */
    std::vector<ir::AddrSpace> ptrs;

    bool isPointer() const { return !ptrs.empty(); }
    bool isVoid() const { return base == Base::Void && ptrs.empty(); }
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** Unary operators. */
enum class UnOp
{
    Neg, Plus, Not, BitNot, Deref, AddrOf, PreInc, PreDec, PostInc, PostDec,
};

/** An expression node. */
struct Expr
{
    enum class Kind
    {
        IntLit, FloatLit, Ident, Unary, Binary, Assign, Cond, Call,
        Index, Cast,
    };

    Kind kind;
    SourceLoc loc;

    // IntLit
    uint64_t intValue = 0;
    bool intIsUnsigned = false;
    bool intIsLong = false;
    // FloatLit
    double floatValue = 0;
    bool floatIsDouble = false;
    // Ident name / Call callee name
    std::string name;
    // Unary
    UnOp unOp = UnOp::Neg;
    // Binary operator / compound-assignment operator token kind
    TokKind op = TokKind::Plus;
    // Children: Unary/Cast use lhs; Binary/Assign/Index use lhs+rhs;
    // Cond uses cond+lhs+rhs.
    ExprPtr lhs, rhs, cond;
    // Call arguments
    std::vector<ExprPtr> args;
    // Cast target
    ASTType castType;

    explicit Expr(Kind k, SourceLoc l) : kind(k), loc(l) {}
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/** One declarator in a declaration statement. */
struct Declarator
{
    std::string name;
    std::vector<uint64_t> arrayDims; ///< Empty for scalars.
    ExprPtr init;                    ///< May be null.
    SourceLoc loc;
};

/** A statement node. */
struct Stmt
{
    enum class Kind
    {
        Compound, Decl, Expr, If, While, DoWhile, For, Break, Continue,
        Return, Empty,
    };

    Kind kind;
    SourceLoc loc;

    std::vector<StmtPtr> body;           ///< Compound children.
    // Decl
    ASTType declType;
    ir::AddrSpace declAddrSpace = ir::AddrSpace::Private;
    std::vector<Declarator> declarators;
    // Expr payload / If-While-For condition / Return value.
    ExprPtr expr;
    // If: thenStmt/elseStmt. Loops: thenStmt is the body.
    StmtPtr thenStmt, elseStmt;
    // For
    StmtPtr initStmt;
    ExprPtr incExpr;

    explicit Stmt(Kind k, SourceLoc l) : kind(k), loc(l) {}
};

/** A function parameter. */
struct ParamDecl
{
    ASTType type;
    std::string name;
    SourceLoc loc;
};

/** A parsed function (kernel or helper). */
struct FunctionDecl
{
    bool isKernel = false;
    ASTType returnType;
    std::string name;
    std::vector<ParamDecl> params;
    StmtPtr body;
    SourceLoc loc;
};

/** A whole OpenCL C program. */
struct TranslationUnit
{
    std::vector<std::unique_ptr<FunctionDecl>> functions;
};

} // namespace soff::fe
