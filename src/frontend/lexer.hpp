/**
 * @file
 * OpenCL C lexer with a built-in miniature preprocessor.
 *
 * The preprocessor supports object-like #define/#undef (enough for the
 * benchmark kernels' constant definitions and OpenCL's CLK_*_MEM_FENCE
 * macros) and ignores #pragma. Function-like macros, #include, and
 * conditionals are diagnosed as unsupported.
 */
#pragma once

#include <map>
#include <vector>

#include "frontend/token.hpp"
#include "support/diagnostics.hpp"

namespace soff::fe
{

/** Lexes a full source string into a token vector (macros expanded). */
class Lexer
{
  public:
    Lexer(const std::string &source, DiagnosticEngine &diags);

    /** Runs the lexer; the result always ends with an EndOfFile token. */
    std::vector<Token> lex();

  private:
    // Raw character access.
    bool atEnd() const { return pos_ >= src_.size(); }
    char peek(size_t ahead = 0) const;
    char advance();
    bool match(char c);
    SourceLoc here() const { return {line_, column_}; }

    void skipWhitespaceAndComments(bool &at_line_start);
    Token lexToken();
    Token lexNumber();
    Token lexIdentifier();
    void handleDirective();

    /** Expands macros in a raw token stream (with a recursion cap). */
    void expandInto(const Token &tok, std::vector<Token> &out, int depth);

    std::string src_;
    DiagnosticEngine &diags_;
    size_t pos_ = 0;
    int line_ = 1;
    int column_ = 1;
    std::map<std::string, std::vector<Token>> macros_;
};

/** True if the given spelling is an OpenCL C keyword in our subset. */
bool isKeywordSpelling(const std::string &text);

} // namespace soff::fe
