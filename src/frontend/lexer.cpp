#include "frontend/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <set>

namespace soff::fe
{

namespace
{

const std::set<std::string> &
keywords()
{
    static const std::set<std::string> kws = {
        "void", "bool", "char", "uchar", "short", "ushort", "int", "uint",
        "long", "ulong", "float", "double", "half", "size_t", "ptrdiff_t",
        "signed", "unsigned",
        "if", "else", "for", "while", "do", "break", "continue", "return",
        "switch", "case", "default", "goto",
        "const", "restrict", "volatile", "static", "inline", "typedef",
        "struct", "union", "enum", "sizeof",
        "__kernel", "kernel", "__global", "global", "__local", "local",
        "__constant", "constant", "__private", "private",
        "true", "false",
    };
    return kws;
}

} // namespace

bool
isKeywordSpelling(const std::string &text)
{
    return keywords().count(text) > 0;
}

std::string
Token::str() const
{
    switch (kind) {
      case TokKind::EndOfFile: return "<eof>";
      case TokKind::Identifier:
      case TokKind::Keyword:
        return text;
      case TokKind::IntLiteral: return std::to_string(intValue);
      case TokKind::FloatLiteral: return std::to_string(floatValue);
      default: return text.empty() ? "<op>" : text;
    }
}

Lexer::Lexer(const std::string &source, DiagnosticEngine &diags)
    : src_(source), diags_(diags)
{
    // Built-in macros (OpenCL barrier flags).
    Token one;
    one.kind = TokKind::IntLiteral;
    one.intValue = 1;
    Token two = one;
    two.intValue = 2;
    macros_["CLK_LOCAL_MEM_FENCE"] = {one};
    macros_["CLK_GLOBAL_MEM_FENCE"] = {two};
}

char
Lexer::peek(size_t ahead) const
{
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
}

char
Lexer::advance()
{
    char c = src_[pos_++];
    if (c == '\n') {
        ++line_;
        column_ = 1;
    } else {
        ++column_;
    }
    return c;
}

bool
Lexer::match(char c)
{
    if (!atEnd() && peek() == c) {
        advance();
        return true;
    }
    return false;
}

void
Lexer::skipWhitespaceAndComments(bool &at_line_start)
{
    while (!atEnd()) {
        char c = peek();
        if (c == '\n') {
            at_line_start = true;
            advance();
        } else if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
        } else if (c == '/' && peek(1) == '/') {
            while (!atEnd() && peek() != '\n')
                advance();
        } else if (c == '/' && peek(1) == '*') {
            advance();
            advance();
            while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
                advance();
            if (!atEnd()) {
                advance();
                advance();
            }
        } else if (c == '\\' && peek(1) == '\n') {
            advance();
            advance();
        } else {
            break;
        }
    }
}

void
Lexer::handleDirective()
{
    SourceLoc loc = here();
    advance(); // '#'
    // Read directive name.
    while (!atEnd() && (peek() == ' ' || peek() == '\t'))
        advance();
    std::string name;
    while (!atEnd() && (std::isalpha(static_cast<unsigned char>(peek())) ||
                        peek() == '_')) {
        name += advance();
    }
    auto restOfLine = [&]() {
        std::string rest;
        while (!atEnd() && peek() != '\n') {
            if (peek() == '\\' && peek(1) == '\n') {
                advance();
                advance();
                continue;
            }
            rest += advance();
        }
        return rest;
    };
    if (name == "define") {
        while (!atEnd() && (peek() == ' ' || peek() == '\t'))
            advance();
        std::string macro;
        while (!atEnd() &&
               (std::isalnum(static_cast<unsigned char>(peek())) ||
                peek() == '_')) {
            macro += advance();
        }
        if (macro.empty()) {
            diags_.error(loc, "malformed #define");
            restOfLine();
            return;
        }
        if (peek() == '(') {
            diags_.error(loc, "function-like macros are not supported");
            restOfLine();
            return;
        }
        std::string body = restOfLine();
        Lexer sub(body, diags_);
        std::vector<Token> toks = sub.lex();
        toks.pop_back(); // drop EOF
        macros_[macro] = toks;
    } else if (name == "undef") {
        std::string rest = restOfLine();
        std::string macro;
        for (char c : rest) {
            if (std::isalnum(static_cast<unsigned char>(c)) || c == '_')
                macro += c;
            else if (!macro.empty())
                break;
        }
        macros_.erase(macro);
    } else if (name == "pragma") {
        restOfLine();
    } else {
        diags_.error(loc, "unsupported preprocessor directive #" + name);
        restOfLine();
    }
}

Token
Lexer::lexNumber()
{
    Token tok;
    tok.loc = here();
    std::string text;
    bool is_float = false;
    bool is_hex = false;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        is_hex = true;
        text += advance();
        text += advance();
        while (std::isxdigit(static_cast<unsigned char>(peek())))
            text += advance();
    } else {
        while (std::isdigit(static_cast<unsigned char>(peek())))
            text += advance();
        if (peek() == '.' &&
            std::isdigit(static_cast<unsigned char>(peek(1)))) {
            is_float = true;
            text += advance();
            while (std::isdigit(static_cast<unsigned char>(peek())))
                text += advance();
        } else if (peek() == '.') {
            is_float = true;
            text += advance();
        }
        if (peek() == 'e' || peek() == 'E') {
            is_float = true;
            text += advance();
            if (peek() == '+' || peek() == '-')
                text += advance();
            while (std::isdigit(static_cast<unsigned char>(peek())))
                text += advance();
        }
    }
    if (is_float) {
        tok.kind = TokKind::FloatLiteral;
        tok.floatValue = std::strtod(text.c_str(), nullptr);
        tok.floatIsDouble = true;
        if (peek() == 'f' || peek() == 'F') {
            advance();
            tok.floatIsDouble = false;
            tok.floatValue =
                static_cast<double>(static_cast<float>(tok.floatValue));
        }
        return tok;
    }
    tok.kind = TokKind::IntLiteral;
    tok.intValue = std::strtoull(text.c_str(), nullptr, is_hex ? 16 : 10);
    // Suffixes: u/U, l/L in any order.
    for (int i = 0; i < 2; ++i) {
        if (peek() == 'u' || peek() == 'U') {
            advance();
            tok.intIsUnsigned = true;
        } else if (peek() == 'l' || peek() == 'L') {
            advance();
            tok.intIsLong = true;
        }
    }
    return tok;
}

Token
Lexer::lexIdentifier()
{
    Token tok;
    tok.loc = here();
    std::string text;
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_')) {
        text += advance();
    }
    tok.text = text;
    tok.kind = isKeywordSpelling(text) ? TokKind::Keyword
                                       : TokKind::Identifier;
    if (tok.isKeyword("true") || tok.isKeyword("false")) {
        tok.kind = TokKind::IntLiteral;
        tok.intValue = tok.text == "true" ? 1 : 0;
    }
    return tok;
}

Token
Lexer::lexToken()
{
    Token tok;
    tok.loc = here();
    char c = peek();
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
        return lexNumber();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
        return lexIdentifier();
    advance();
    auto set = [&](TokKind k, const char *text) {
        tok.kind = k;
        tok.text = text;
        return tok;
    };
    switch (c) {
      case '(': return set(TokKind::LParen, "(");
      case ')': return set(TokKind::RParen, ")");
      case '{': return set(TokKind::LBrace, "{");
      case '}': return set(TokKind::RBrace, "}");
      case '[': return set(TokKind::LBracket, "[");
      case ']': return set(TokKind::RBracket, "]");
      case ',': return set(TokKind::Comma, ",");
      case ';': return set(TokKind::Semicolon, ";");
      case '?': return set(TokKind::Question, "?");
      case ':': return set(TokKind::Colon, ":");
      case '~': return set(TokKind::Tilde, "~");
      case '.':
        if (match('.')) {
            // "..." unsupported; report as '.'
            match('.');
        }
        return set(TokKind::Dot, ".");
      case '+':
        if (match('+')) return set(TokKind::PlusPlus, "++");
        if (match('=')) return set(TokKind::PlusAssign, "+=");
        return set(TokKind::Plus, "+");
      case '-':
        if (match('-')) return set(TokKind::MinusMinus, "--");
        if (match('=')) return set(TokKind::MinusAssign, "-=");
        if (match('>')) return set(TokKind::Arrow, "->");
        return set(TokKind::Minus, "-");
      case '*':
        if (match('=')) return set(TokKind::StarAssign, "*=");
        return set(TokKind::Star, "*");
      case '/':
        if (match('=')) return set(TokKind::SlashAssign, "/=");
        return set(TokKind::Slash, "/");
      case '%':
        if (match('=')) return set(TokKind::PercentAssign, "%=");
        return set(TokKind::Percent, "%");
      case '&':
        if (match('&')) return set(TokKind::AmpAmp, "&&");
        if (match('=')) return set(TokKind::AmpAssign, "&=");
        return set(TokKind::Amp, "&");
      case '|':
        if (match('|')) return set(TokKind::PipePipe, "||");
        if (match('=')) return set(TokKind::PipeAssign, "|=");
        return set(TokKind::Pipe, "|");
      case '^':
        if (match('=')) return set(TokKind::CaretAssign, "^=");
        return set(TokKind::Caret, "^");
      case '!':
        if (match('=')) return set(TokKind::BangEq, "!=");
        return set(TokKind::Bang, "!");
      case '=':
        if (match('=')) return set(TokKind::EqEq, "==");
        return set(TokKind::Assign, "=");
      case '<':
        if (match('<')) {
            if (match('=')) return set(TokKind::ShlAssign, "<<=");
            return set(TokKind::Shl, "<<");
        }
        if (match('=')) return set(TokKind::LessEq, "<=");
        return set(TokKind::Less, "<");
      case '>':
        if (match('>')) {
            if (match('=')) return set(TokKind::ShrAssign, ">>=");
            return set(TokKind::Shr, ">>");
        }
        if (match('=')) return set(TokKind::GreaterEq, ">=");
        return set(TokKind::Greater, ">");
      default:
        diags_.error(tok.loc,
                     std::string("unexpected character '") + c + "'");
        return set(TokKind::EndOfFile, "");
    }
}

void
Lexer::expandInto(const Token &tok, std::vector<Token> &out, int depth)
{
    if (tok.kind == TokKind::Identifier && depth < 16) {
        auto it = macros_.find(tok.text);
        if (it != macros_.end()) {
            for (const Token &t : it->second) {
                Token copy = t;
                copy.loc = tok.loc;
                expandInto(copy, out, depth + 1);
            }
            return;
        }
    }
    out.push_back(tok);
}

std::vector<Token>
Lexer::lex()
{
    std::vector<Token> out;
    bool at_line_start = true;
    while (true) {
        skipWhitespaceAndComments(at_line_start);
        if (atEnd())
            break;
        if (peek() == '#' && at_line_start) {
            handleDirective();
            continue;
        }
        at_line_start = false;
        Token tok = lexToken();
        if (tok.kind == TokKind::EndOfFile)
            continue; // lex error already reported
        expandInto(tok, out, 0);
    }
    Token eof;
    eof.kind = TokKind::EndOfFile;
    eof.loc = here();
    out.push_back(eof);
    return out;
}

} // namespace soff::fe
