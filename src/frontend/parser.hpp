/**
 * @file
 * Recursive-descent parser for the OpenCL C subset.
 */
#pragma once

#include "frontend/ast.hpp"
#include "frontend/lexer.hpp"

namespace soff::fe
{

/** Parses a token stream into a TranslationUnit. */
class Parser
{
  public:
    Parser(std::vector<Token> tokens, DiagnosticEngine &diags);

    /** Parses the whole input. Diagnostics go to the engine. */
    TranslationUnit parse();

  private:
    // --- Token cursor ---
    const Token &peek(size_t ahead = 0) const;
    const Token &cur() const { return peek(0); }
    Token advance();
    bool check(TokKind k) const { return cur().is(k); }
    bool checkKeyword(const char *kw) const { return cur().isKeyword(kw); }
    bool match(TokKind k);
    bool matchKeyword(const char *kw);
    Token expect(TokKind k, const std::string &what);
    void error(const std::string &msg);
    void synchronizeTo(TokKind k);

    // --- Types ---
    /** True if the cursor looks at the start of a type. */
    bool atTypeStart(size_t ahead = 0) const;
    /** Parses qualifiers+base+stars. addr_space receives a leading
     *  __local/__global/... qualifier (declaration context). */
    ASTType parseType(ir::AddrSpace *addr_space);

    // --- Declarations ---
    std::unique_ptr<FunctionDecl> parseFunction();
    StmtPtr parseDeclStmt();

    // --- Statements ---
    StmtPtr parseStmt();
    StmtPtr parseCompound();

    // --- Expressions (precedence climbing) ---
    ExprPtr parseExpr();           // comma
    ExprPtr parseAssignment();
    ExprPtr parseConditional();
    ExprPtr parseBinary(int min_prec);
    ExprPtr parseUnary();
    ExprPtr parsePostfix();
    ExprPtr parsePrimary();

    /** Evaluates an integer constant expression (for array sizes). */
    bool evalConstInt(const Expr &e, int64_t *out) const;

    std::vector<Token> toks_;
    size_t pos_ = 0;
    DiagnosticEngine &diags_;
};

/** Convenience: lex + parse a source string. */
TranslationUnit parseSource(const std::string &source,
                            DiagnosticEngine &diags);

} // namespace soff::fe
