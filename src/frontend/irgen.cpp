#include "frontend/irgen.hpp"

#include <map>
#include <optional>

#include "frontend/parser.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace soff::fe
{

using ir::AddrSpace;
using ir::IRBuilder;
using ir::Opcode;
using ir::Type;
using ir::Value;

namespace
{

/**
 * The result of evaluating an expression: either a plain rvalue or one
 * of the lvalue designators (slot variable, private-array element,
 * memory reference, or a partially indexed array).
 */
struct EValue
{
    enum class Kind
    {
        Invalid,
        RValue,   ///< v holds the SSA value.
        SlotVar,  ///< Whole slot (scalar variable or whole array).
        SlotElem, ///< Private array element: slot + linear index.
        MemRef,   ///< v holds a pointer; load/store through memory.
        ArrayRef, ///< Partially indexed array (slot or local var).
    };

    Kind kind = Kind::Invalid;
    Value *v = nullptr;
    ir::PrivateSlot *slot = nullptr;
    const ir::LocalVar *localVar = nullptr;
    Value *index = nullptr;       ///< Linear element index (i64).
    size_t depth = 0;             ///< Indices applied so far (ArrayRef).
    const Type *type = nullptr;   ///< Designated value type.
};

/** A named entity in scope. */
struct Symbol
{
    enum class Kind { Var, LocalVar, Function };
    Kind kind = Kind::Var;
    ir::PrivateSlot *slot = nullptr;
    const ir::LocalVar *localVar = nullptr;
    ir::Kernel *function = nullptr;
    std::vector<uint64_t> arrayDims; ///< For array variables.
};

class IRGenerator
{
  public:
    IRGenerator(const TranslationUnit &tu, const std::string &module_name,
                DiagnosticEngine &diags)
        : tu_(tu), diags_(diags),
          module_(std::make_unique<ir::Module>(module_name)),
          builder_(*module_)
    {}

    std::unique_ptr<ir::Module>
    run()
    {
        for (const auto &fn : tu_.functions)
            genFunction(*fn);
        return std::move(module_);
    }

  private:
    // ------------------------------------------------------------------
    // Types
    // ------------------------------------------------------------------
    const Type *
    scalarType(ASTType::Base base)
    {
        auto &t = module_->types();
        switch (base) {
          case ASTType::Base::Void: return t.voidTy();
          case ASTType::Base::Bool: return t.intTy(8, false);
          case ASTType::Base::Char: return t.i8();
          case ASTType::Base::UChar: return t.u8();
          case ASTType::Base::Short: return t.i16();
          case ASTType::Base::UShort: return t.u16();
          case ASTType::Base::Int: return t.i32();
          case ASTType::Base::UInt: return t.u32();
          case ASTType::Base::Long: return t.i64();
          case ASTType::Base::ULong: return t.u64();
          case ASTType::Base::Float: return t.f32();
          case ASTType::Base::Double: return t.f64();
        }
        return t.voidTy();
    }

    const Type *
    resolveType(const ASTType &ast)
    {
        const Type *t = scalarType(ast.base);
        for (AddrSpace as : ast.ptrs)
            t = module_->types().ptrTy(t, as);
        return t;
    }

    // ------------------------------------------------------------------
    // Scopes
    // ------------------------------------------------------------------
    void pushScope() { scopes_.emplace_back(); }
    void popScope() { scopes_.pop_back(); }

    Symbol *
    lookup(const std::string &name)
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto found = it->find(name);
            if (found != it->end())
                return &found->second;
        }
        auto found = functions_.find(name);
        if (found != functions_.end())
            return &found->second;
        return nullptr;
    }

    void
    declare(SourceLoc loc, const std::string &name, Symbol sym)
    {
        if (scopes_.back().count(name))
            diags_.error(loc, "redeclaration of '" + name + "'");
        scopes_.back()[name] = std::move(sym);
    }

    // ------------------------------------------------------------------
    // Conversions
    // ------------------------------------------------------------------
    Value *
    convert(SourceLoc loc, Value *v, const Type *to)
    {
        const Type *from = v->type();
        if (from == to)
            return v;
        auto &t = module_->types();
        if (from->isBool()) {
            if (to->isIntOrBool())
                return builder_.createCast(Opcode::ZExt, v, to);
            if (to->isFloat()) {
                Value *i = builder_.createCast(Opcode::ZExt, v, t.i32());
                return builder_.createCast(Opcode::SIToFP, i, to);
            }
        }
        if (from->isInt()) {
            if (to->isBool()) {
                return builder_.createICmp(
                    ir::ICmpPred::NE, v, builder_.constInt(from, 0));
            }
            if (to->isInt()) {
                if (to->bits() == from->bits())
                    return builder_.createCast(Opcode::Bitcast, v, to);
                if (to->bits() < from->bits())
                    return builder_.createCast(Opcode::Trunc, v, to);
                return builder_.createCast(
                    from->isSigned() ? Opcode::SExt : Opcode::ZExt, v, to);
            }
            if (to->isFloat()) {
                return builder_.createCast(
                    from->isSigned() ? Opcode::SIToFP : Opcode::UIToFP,
                    v, to);
            }
            if (to->isPointer())
                return builder_.createCast(Opcode::IntToPtr, v, to);
        }
        if (from->isFloat()) {
            if (to->isFloat()) {
                return builder_.createCast(
                    to->bits() < from->bits() ? Opcode::FPTrunc
                                              : Opcode::FPExt, v, to);
            }
            if (to->isInt()) {
                return builder_.createCast(
                    to->isSigned() ? Opcode::FPToSI : Opcode::FPToUI,
                    v, to);
            }
            if (to->isBool()) {
                return builder_.createFCmp(
                    ir::FCmpPred::ONE, v, builder_.constFloat(from, 0.0));
            }
        }
        if (from->isPointer()) {
            if (to->isPointer())
                return builder_.createCast(Opcode::Bitcast, v, to);
            if (to->isInt() || to->isBool()) {
                Value *i =
                    builder_.createCast(Opcode::PtrToInt, v, t.u64());
                return convert(loc, i, to);
            }
        }
        diags_.error(loc, "cannot convert " + from->str() + " to " +
                     to->str());
        return builder_.constInt(t.i32(), 0);
    }

    /** C usual arithmetic conversions; returns the common type. */
    const Type *
    commonType(const Type *a, const Type *b)
    {
        auto &t = module_->types();
        if (a->isFloat() || b->isFloat()) {
            int bits = 32;
            if (a->isFloat())
                bits = std::max(bits, a->bits());
            if (b->isFloat())
                bits = std::max(bits, b->bits());
            return t.floatTy(bits);
        }
        // Integer promotion to at least 32 bits.
        auto promoted = [&](const Type *x) {
            if (x->isBool() || x->bits() < 32)
                return t.i32();
            return x;
        };
        const Type *pa = promoted(a);
        const Type *pb = promoted(b);
        if (pa == pb)
            return pa;
        if (pa->bits() != pb->bits()) {
            const Type *wide = pa->bits() > pb->bits() ? pa : pb;
            return wide;
        }
        // Same width, different signedness: unsigned wins.
        return t.intTy(pa->bits(), false);
    }

    // ------------------------------------------------------------------
    // EValue load/store
    // ------------------------------------------------------------------
    Value *
    loadValue(SourceLoc loc, const EValue &e)
    {
        switch (e.kind) {
          case EValue::Kind::RValue:
            return e.v;
          case EValue::Kind::SlotVar:
            if (e.slot->type()->isArray()) {
                diags_.error(loc, "array used as a value; private arrays "
                             "do not decay to pointers in SOFF");
                return builder_.constI32(0);
            }
            return builder_.createSlotLoad(e.slot);
          case EValue::Kind::SlotElem: {
            Value *whole = builder_.createSlotLoad(e.slot);
            return builder_.createArrayExtract(whole, e.index);
          }
          case EValue::Kind::MemRef:
            return builder_.createLoad(e.v);
          case EValue::Kind::ArrayRef:
            diags_.error(loc, "array used with too few indices");
            return builder_.constI32(0);
          default:
            diags_.error(loc, "invalid expression");
            return builder_.constI32(0);
        }
    }

    void
    storeValue(SourceLoc loc, const EValue &e, Value *v)
    {
        switch (e.kind) {
          case EValue::Kind::SlotVar:
            builder_.createSlotStore(
                e.slot, convert(loc, v, e.slot->type()));
            return;
          case EValue::Kind::SlotElem: {
            Value *whole = builder_.createSlotLoad(e.slot);
            Value *elem =
                convert(loc, v, e.slot->type()->element());
            Value *updated =
                builder_.createArrayInsert(whole, e.index, elem);
            builder_.createSlotStore(e.slot, updated);
            return;
          }
          case EValue::Kind::MemRef:
            builder_.createStore(
                e.v, convert(loc, v, e.v->type()->pointee()));
            return;
          default:
            diags_.error(loc, "expression is not assignable");
        }
    }

    /** Converts a value to an i1 condition (C truthiness). */
    Value *
    toCondition(SourceLoc loc, Value *v)
    {
        if (v->type()->isBool())
            return v;
        return convert(loc, v, module_->types().boolTy());
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------
    EValue
    rvalue(const Expr &e)
    {
        EValue ev = genExpr(e);
        EValue out;
        out.kind = EValue::Kind::RValue;
        out.v = loadValue(e.loc, ev);
        out.type = out.v->type();
        return out;
    }

    Value *genRValue(const Expr &e) { return rvalue(e).v; }

    EValue
    makeRValue(Value *v)
    {
        EValue out;
        out.kind = EValue::Kind::RValue;
        out.v = v;
        out.type = v->type();
        return out;
    }

    EValue
    genExpr(const Expr &e)
    {
        switch (e.kind) {
          case Expr::Kind::IntLit: {
            auto &t = module_->types();
            const Type *ty;
            if (e.intIsLong || e.intValue > 0x7fffffffULL) {
                ty = e.intIsUnsigned ? t.u64() : t.i64();
                if (!e.intIsLong && !e.intIsUnsigned &&
                    e.intValue <= 0xffffffffULL) {
                    ty = t.u32(); // fits unsigned int
                }
            } else {
                ty = e.intIsUnsigned ? t.u32() : t.i32();
            }
            return makeRValue(builder_.constInt(ty, e.intValue));
          }
          case Expr::Kind::FloatLit: {
            const Type *ty = e.floatIsDouble ? module_->types().f64()
                                             : module_->types().f32();
            return makeRValue(builder_.constFloat(ty, e.floatValue));
          }
          case Expr::Kind::Ident:
            return genIdent(e);
          case Expr::Kind::Unary:
            return genUnary(e);
          case Expr::Kind::Binary:
            return genBinary(e);
          case Expr::Kind::Assign:
            return genAssign(e);
          case Expr::Kind::Cond:
            return genConditional(e);
          case Expr::Kind::Call:
            return genCall(e);
          case Expr::Kind::Index:
            return genIndex(e);
          case Expr::Kind::Cast: {
            Value *v = genRValue(*e.lhs);
            const Type *to = resolveType(e.castType);
            return makeRValue(convert(e.loc, v, to));
          }
        }
        return EValue();
    }

    EValue
    genIdent(const Expr &e)
    {
        Symbol *sym = lookup(e.name);
        if (sym == nullptr) {
            diags_.error(e.loc, "use of undeclared identifier '" +
                         e.name + "'");
            return makeRValue(builder_.constI32(0));
        }
        EValue out;
        if (sym->kind == Symbol::Kind::Var) {
            if (sym->slot->type()->isArray()) {
                out.kind = EValue::Kind::ArrayRef;
                out.slot = sym->slot;
                out.depth = 0;
                out.index = nullptr;
                out.type = sym->slot->type();
            } else {
                out.kind = EValue::Kind::SlotVar;
                out.slot = sym->slot;
                out.type = sym->slot->type();
            }
        } else if (sym->kind == Symbol::Kind::LocalVar) {
            if (sym->localVar->type()->isArray()) {
                out.kind = EValue::Kind::ArrayRef;
                out.localVar = sym->localVar;
                out.depth = 0;
                out.index = nullptr;
                out.type = sym->localVar->type();
            } else {
                // Scalar __local variable: a memory reference.
                out.kind = EValue::Kind::MemRef;
                out.v = builder_.createLocalAddr(sym->localVar);
                out.type = sym->localVar->type();
            }
        } else {
            diags_.error(e.loc, "function name used as a value");
            return makeRValue(builder_.constI32(0));
        }
        return out;
    }

    /** Dimensions of the array variable a symbol refers to. */
    const std::vector<uint64_t> &
    symbolDims(const EValue &arr)
    {
        static const std::vector<uint64_t> none;
        const void *key = arr.slot != nullptr
                              ? static_cast<const void *>(arr.slot)
                              : static_cast<const void *>(arr.localVar);
        auto it = arrayDims_.find(key);
        return it == arrayDims_.end() ? none : it->second;
    }

    EValue
    genIndex(const Expr &e)
    {
        EValue base = genExpr(*e.lhs);
        Value *idx64 = convert(e.rhs->loc, genRValue(*e.rhs),
                               module_->types().i64());
        auto &t = module_->types();
        if (base.kind == EValue::Kind::ArrayRef) {
            const auto &dims = symbolDims(base);
            Value *linear = base.index;
            if (linear == nullptr) {
                linear = idx64;
            } else {
                Value *scale = builder_.constI64(
                    static_cast<int64_t>(dims[base.depth]));
                Value *mul = builder_.createBinOp(Opcode::Mul, linear,
                                                  scale);
                linear = builder_.createBinOp(Opcode::Add, mul, idx64);
            }
            size_t depth = base.depth + 1;
            if (depth < dims.size()) {
                EValue out = base;
                out.index = linear;
                out.depth = depth;
                return out;
            }
            // Fully indexed.
            if (base.slot != nullptr) {
                EValue out;
                out.kind = EValue::Kind::SlotElem;
                out.slot = base.slot;
                out.index = linear;
                out.type = base.slot->type()->element();
                return out;
            }
            const Type *elem = base.localVar->type()->element();
            Value *addr = builder_.createLocalAddr(base.localVar);
            Value *bytes = builder_.createBinOp(
                Opcode::Mul, linear,
                builder_.constI64(
                    static_cast<int64_t>(elem->sizeBytes())));
            EValue out;
            out.kind = EValue::Kind::MemRef;
            out.v = builder_.createPtrAdd(addr, bytes);
            out.type = elem;
            return out;
        }
        // Pointer indexing.
        Value *ptr = loadValue(e.lhs->loc, base);
        if (!ptr->type()->isPointer()) {
            diags_.error(e.loc, "subscripted value is not a pointer or "
                         "array");
            return makeRValue(builder_.constI32(0));
        }
        const Type *elem = ptr->type()->pointee();
        Value *bytes = builder_.createBinOp(
            Opcode::Mul, idx64,
            builder_.constI64(static_cast<int64_t>(elem->sizeBytes())));
        EValue out;
        out.kind = EValue::Kind::MemRef;
        out.v = builder_.createPtrAdd(ptr, bytes);
        out.type = elem;
        (void)t;
        return out;
    }

    EValue
    genUnary(const Expr &e)
    {
        switch (e.unOp) {
          case UnOp::Plus:
            return makeRValue(genRValue(*e.lhs));
          case UnOp::Neg: {
            Value *v = genRValue(*e.lhs);
            if (v->type()->isFloat())
                return makeRValue(builder_.createFNeg(v));
            v = convert(e.loc, v, commonType(v->type(), v->type()));
            return makeRValue(builder_.createNeg(v));
          }
          case UnOp::Not: {
            Value *c = toCondition(e.loc, genRValue(*e.lhs));
            Value *inv = builder_.createICmp(
                ir::ICmpPred::EQ, c,
                builder_.constInt(module_->types().boolTy(), 0));
            return makeRValue(convert(e.loc, inv, module_->types().i32()));
          }
          case UnOp::BitNot: {
            Value *v = genRValue(*e.lhs);
            v = convert(e.loc, v, commonType(v->type(), v->type()));
            return makeRValue(builder_.createNot(v));
          }
          case UnOp::Deref: {
            Value *p = genRValue(*e.lhs);
            if (!p->type()->isPointer()) {
                diags_.error(e.loc, "cannot dereference non-pointer");
                return makeRValue(builder_.constI32(0));
            }
            EValue out;
            out.kind = EValue::Kind::MemRef;
            out.v = p;
            out.type = p->type()->pointee();
            return out;
          }
          case UnOp::AddrOf: {
            EValue sub = genExpr(*e.lhs);
            if (sub.kind == EValue::Kind::MemRef)
                return makeRValue(sub.v);
            diags_.error(e.loc, "taking the address of a private "
                         "variable is not supported (paper §III-C: "
                         "private variables are promoted to SSA form)");
            return makeRValue(builder_.constI32(0));
          }
          case UnOp::PreInc:
          case UnOp::PreDec:
          case UnOp::PostInc:
          case UnOp::PostDec: {
            EValue lv = genExpr(*e.lhs);
            Value *old_value = loadValue(e.loc, lv);
            bool inc = e.unOp == UnOp::PreInc || e.unOp == UnOp::PostInc;
            Value *next;
            if (old_value->type()->isPointer()) {
                uint64_t step =
                    old_value->type()->pointee()->sizeBytes();
                Value *delta = builder_.constI64(
                    inc ? static_cast<int64_t>(step)
                        : -static_cast<int64_t>(step));
                next = builder_.createPtrAdd(old_value, delta);
            } else if (old_value->type()->isFloat()) {
                Value *one =
                    builder_.constFloat(old_value->type(), 1.0);
                next = builder_.createBinOp(
                    inc ? Opcode::FAdd : Opcode::FSub, old_value, one);
            } else {
                Value *one = builder_.constInt(old_value->type(), 1);
                next = builder_.createBinOp(
                    inc ? Opcode::Add : Opcode::Sub, old_value, one);
            }
            storeValue(e.loc, lv, next);
            bool post = e.unOp == UnOp::PostInc || e.unOp == UnOp::PostDec;
            return makeRValue(post ? old_value : next);
          }
        }
        return EValue();
    }

    /** Arithmetic/bitwise/relational binary operation on rvalues. */
    Value *
    genArith(SourceLoc loc, TokKind op, Value *a, Value *b)
    {
        auto &t = module_->types();
        // Pointer arithmetic.
        if (a->type()->isPointer() || b->type()->isPointer()) {
            if (op == TokKind::Plus || op == TokKind::Minus) {
                if (a->type()->isPointer() && b->type()->isPointer() &&
                    op == TokKind::Minus) {
                    Value *ia =
                        builder_.createCast(Opcode::PtrToInt, a, t.i64());
                    Value *ib =
                        builder_.createCast(Opcode::PtrToInt, b, t.i64());
                    Value *diff =
                        builder_.createBinOp(Opcode::Sub, ia, ib);
                    Value *size = builder_.constI64(static_cast<int64_t>(
                        a->type()->pointee()->sizeBytes()));
                    return builder_.createBinOp(Opcode::SDiv, diff, size);
                }
                if (b->type()->isPointer())
                    std::swap(a, b);
                Value *idx = convert(loc, b, t.i64());
                Value *bytes = builder_.createBinOp(
                    Opcode::Mul, idx,
                    builder_.constI64(static_cast<int64_t>(
                        a->type()->pointee()->sizeBytes())));
                if (op == TokKind::Minus)
                    bytes = builder_.createNeg(bytes);
                return builder_.createPtrAdd(a, bytes);
            }
            if (op == TokKind::EqEq || op == TokKind::BangEq ||
                op == TokKind::Less || op == TokKind::LessEq ||
                op == TokKind::Greater || op == TokKind::GreaterEq) {
                Value *ia = builder_.createCast(Opcode::PtrToInt, a,
                                                t.u64());
                Value *ib = builder_.createCast(Opcode::PtrToInt, b,
                                                t.u64());
                return genArith(loc, op, ia, ib);
            }
            diags_.error(loc, "invalid pointer operation");
            return builder_.constI32(0);
        }

        const Type *ct = commonType(a->type(), b->type());
        a = convert(loc, a, ct);
        b = convert(loc, b, ct);
        bool flt = ct->isFloat();
        bool sgn = ct->isInt() && ct->isSigned();
        switch (op) {
          case TokKind::Plus:
            return builder_.createBinOp(flt ? Opcode::FAdd : Opcode::Add,
                                        a, b);
          case TokKind::Minus:
            return builder_.createBinOp(flt ? Opcode::FSub : Opcode::Sub,
                                        a, b);
          case TokKind::Star:
            return builder_.createBinOp(flt ? Opcode::FMul : Opcode::Mul,
                                        a, b);
          case TokKind::Slash:
            return builder_.createBinOp(
                flt ? Opcode::FDiv : (sgn ? Opcode::SDiv : Opcode::UDiv),
                a, b);
          case TokKind::Percent:
            if (flt)
                return builder_.createBinOp(Opcode::FRem, a, b);
            return builder_.createBinOp(sgn ? Opcode::SRem : Opcode::URem,
                                        a, b);
          case TokKind::Amp:
            return builder_.createBinOp(Opcode::And, a, b);
          case TokKind::Pipe:
            return builder_.createBinOp(Opcode::Or, a, b);
          case TokKind::Caret:
            return builder_.createBinOp(Opcode::Xor, a, b);
          case TokKind::Shl:
            return builder_.createBinOp(Opcode::Shl, a, b);
          case TokKind::Shr:
            return builder_.createBinOp(sgn ? Opcode::AShr : Opcode::LShr,
                                        a, b);
          case TokKind::Less: case TokKind::LessEq:
          case TokKind::Greater: case TokKind::GreaterEq:
          case TokKind::EqEq: case TokKind::BangEq: {
            Value *c;
            if (flt) {
                ir::FCmpPred p = ir::FCmpPred::OEQ;
                switch (op) {
                  case TokKind::Less: p = ir::FCmpPred::OLT; break;
                  case TokKind::LessEq: p = ir::FCmpPred::OLE; break;
                  case TokKind::Greater: p = ir::FCmpPred::OGT; break;
                  case TokKind::GreaterEq: p = ir::FCmpPred::OGE; break;
                  case TokKind::EqEq: p = ir::FCmpPred::OEQ; break;
                  default: p = ir::FCmpPred::ONE; break;
                }
                c = builder_.createFCmp(p, a, b);
            } else {
                ir::ICmpPred p = ir::ICmpPred::EQ;
                switch (op) {
                  case TokKind::Less:
                    p = sgn ? ir::ICmpPred::SLT : ir::ICmpPred::ULT; break;
                  case TokKind::LessEq:
                    p = sgn ? ir::ICmpPred::SLE : ir::ICmpPred::ULE; break;
                  case TokKind::Greater:
                    p = sgn ? ir::ICmpPred::SGT : ir::ICmpPred::UGT; break;
                  case TokKind::GreaterEq:
                    p = sgn ? ir::ICmpPred::SGE : ir::ICmpPred::UGE; break;
                  case TokKind::EqEq: p = ir::ICmpPred::EQ; break;
                  default: p = ir::ICmpPred::NE; break;
                }
                c = builder_.createICmp(p, a, b);
            }
            return convert(loc, c, t.i32());
          }
          default:
            diags_.error(loc, "unsupported binary operator");
            return builder_.constI32(0);
        }
    }

    EValue
    genBinary(const Expr &e)
    {
        if (e.op == TokKind::Comma) {
            genExpr(*e.lhs);
            return rvalue(*e.rhs);
        }
        if (e.op == TokKind::AmpAmp || e.op == TokKind::PipePipe)
            return genShortCircuit(e);
        Value *a = genRValue(*e.lhs);
        Value *b = genRValue(*e.rhs);
        return makeRValue(genArith(e.loc, e.op, a, b));
    }

    EValue
    genShortCircuit(const Expr &e)
    {
        bool is_and = e.op == TokKind::AmpAmp;
        Value *a = toCondition(e.lhs->loc, genRValue(*e.lhs));
        ir::BasicBlock *lhs_end = builder_.insertBlock();
        ir::BasicBlock *rhs_bb = newBlock("sc.rhs");
        ir::BasicBlock *join_bb = newBlock("sc.end");
        if (is_and)
            builder_.createCondBr(a, rhs_bb, join_bb);
        else
            builder_.createCondBr(a, join_bb, rhs_bb);
        builder_.setInsertPoint(rhs_bb);
        Value *b = toCondition(e.rhs->loc, genRValue(*e.rhs));
        ir::BasicBlock *rhs_end = builder_.insertBlock();
        builder_.createBr(join_bb);
        builder_.setInsertPoint(join_bb);
        ir::Instruction *phi =
            builder_.createPhi(module_->types().boolTy());
        phi->addPhiIncoming(
            builder_.constInt(module_->types().boolTy(), is_and ? 0 : 1),
            lhs_end);
        phi->addPhiIncoming(b, rhs_end);
        return makeRValue(convert(e.loc, phi, module_->types().i32()));
    }

    EValue
    genConditional(const Expr &e)
    {
        Value *c = toCondition(e.cond->loc, genRValue(*e.cond));
        ir::BasicBlock *then_bb = newBlock("sel.then");
        ir::BasicBlock *else_bb = newBlock("sel.else");
        ir::BasicBlock *join_bb = newBlock("sel.end");
        builder_.createCondBr(c, then_bb, else_bb);
        builder_.setInsertPoint(then_bb);
        Value *a = genRValue(*e.lhs);
        ir::BasicBlock *then_end = builder_.insertBlock();
        builder_.setInsertPoint(else_bb);
        Value *b = genRValue(*e.rhs);
        ir::BasicBlock *else_end = builder_.insertBlock();
        // Unify types.
        const Type *ct;
        if (a->type()->isPointer() && b->type()->isPointer()) {
            ct = a->type();
        } else {
            ct = commonType(a->type(), b->type());
        }
        builder_.setInsertPoint(then_end);
        a = convert(e.loc, a, ct);
        builder_.createBr(join_bb);
        then_end = builder_.insertBlock();
        builder_.setInsertPoint(else_end);
        b = convert(e.loc, b, ct);
        builder_.createBr(join_bb);
        else_end = builder_.insertBlock();
        builder_.setInsertPoint(join_bb);
        ir::Instruction *phi = builder_.createPhi(ct);
        phi->addPhiIncoming(a, then_end);
        phi->addPhiIncoming(b, else_end);
        return makeRValue(phi);
    }

    EValue
    genAssign(const Expr &e)
    {
        EValue lv = genExpr(*e.lhs);
        Value *rhs = genRValue(*e.rhs);
        if (e.op != TokKind::Assign) {
            Value *old_value = loadValue(e.loc, lv);
            TokKind arith = TokKind::Plus;
            switch (e.op) {
              case TokKind::PlusAssign: arith = TokKind::Plus; break;
              case TokKind::MinusAssign: arith = TokKind::Minus; break;
              case TokKind::StarAssign: arith = TokKind::Star; break;
              case TokKind::SlashAssign: arith = TokKind::Slash; break;
              case TokKind::PercentAssign: arith = TokKind::Percent; break;
              case TokKind::AmpAssign: arith = TokKind::Amp; break;
              case TokKind::PipeAssign: arith = TokKind::Pipe; break;
              case TokKind::CaretAssign: arith = TokKind::Caret; break;
              case TokKind::ShlAssign: arith = TokKind::Shl; break;
              case TokKind::ShrAssign: arith = TokKind::Shr; break;
              default: break;
            }
            rhs = genArith(e.loc, arith, old_value, rhs);
        }
        // The stored value, converted to the target type, is the result.
        const Type *target = lv.type;
        Value *converted = target != nullptr ? convert(e.loc, rhs, target)
                                             : rhs;
        storeValue(e.loc, lv, converted);
        return makeRValue(converted);
    }

    // Defined below the class (built-in dispatch is long).
    EValue genCall(const Expr &e);
    EValue genMathBuiltin(const Expr &e);

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------
    ir::BasicBlock *
    newBlock(const std::string &hint)
    {
        return kernel_->addBlock(
            "B" + std::to_string(kernel_->numBlocks() + 1) + "." + hint);
    }

    void
    genDecl(const Stmt &s)
    {
        for (const Declarator &d : s.declarators) {
            const Type *base = resolveType(s.declType);
            if (s.declAddrSpace == AddrSpace::Local) {
                if (!kernel_->isKernel()) {
                    diags_.error(d.loc, "__local variables are only "
                                 "supported inside kernels");
                }
                uint64_t total = 1;
                for (uint64_t dim : d.arrayDims)
                    total *= dim;
                const Type *vt = d.arrayDims.empty()
                    ? base
                    : module_->types().arrayTy(base, total);
                const ir::LocalVar *lv = kernel_->addLocalVar(vt, d.name);
                Symbol sym;
                sym.kind = Symbol::Kind::LocalVar;
                sym.localVar = lv;
                sym.arrayDims = d.arrayDims;
                arrayDims_[lv] = d.arrayDims;
                declare(d.loc, d.name, sym);
                if (d.init != nullptr) {
                    diags_.error(d.loc, "__local variables cannot have "
                                 "initializers");
                }
                continue;
            }
            if (s.declAddrSpace == AddrSpace::Constant ||
                s.declAddrSpace == AddrSpace::Global) {
                diags_.error(d.loc, "program-scope/global variables are "
                             "not supported");
                continue;
            }
            uint64_t total = 1;
            for (uint64_t dim : d.arrayDims)
                total *= dim;
            const Type *vt = d.arrayDims.empty()
                ? base
                : module_->types().arrayTy(base, total);
            ir::PrivateSlot *slot = kernel_->addSlot(vt, d.name);
            Symbol sym;
            sym.kind = Symbol::Kind::Var;
            sym.slot = slot;
            sym.arrayDims = d.arrayDims;
            arrayDims_[slot] = d.arrayDims;
            declare(d.loc, d.name, sym);
            if (d.init != nullptr) {
                Value *v = genRValue(*d.init);
                if (vt->isArray()) {
                    diags_.error(d.loc, "array initializers are not "
                                 "supported");
                } else {
                    builder_.createSlotStore(slot,
                                             convert(d.loc, v, vt));
                }
            } else if (vt->isArray()) {
                // Define the whole array value so SSA promotion has a
                // defined initial value on every path.
                Value *zero = vt->element()->isFloat()
                    ? static_cast<Value *>(
                          builder_.constFloat(vt->element(), 0.0))
                    : static_cast<Value *>(
                          builder_.constInt(vt->element(), 0));
                Value *splat = builder_.createArraySplat(vt, zero);
                builder_.createSlotStore(slot, splat);
            }
        }
    }

    void
    genStmt(const Stmt &s)
    {
        switch (s.kind) {
          case Stmt::Kind::Compound:
            pushScope();
            for (const StmtPtr &child : s.body) {
                genStmt(*child);
                if (builder_.terminated())
                    break; // rest of the block is unreachable
            }
            popScope();
            return;
          case Stmt::Kind::Decl:
            genDecl(s);
            return;
          case Stmt::Kind::Expr:
            genExpr(*s.expr);
            return;
          case Stmt::Kind::Empty:
            return;
          case Stmt::Kind::If: {
            Value *c = toCondition(s.loc, genRValue(*s.expr));
            ir::BasicBlock *then_bb = newBlock("then");
            ir::BasicBlock *join_bb = newBlock("endif");
            ir::BasicBlock *else_bb =
                s.elseStmt != nullptr ? newBlock("else") : join_bb;
            builder_.createCondBr(c, then_bb, else_bb);
            builder_.setInsertPoint(then_bb);
            genStmt(*s.thenStmt);
            if (!builder_.terminated())
                builder_.createBr(join_bb);
            if (s.elseStmt != nullptr) {
                builder_.setInsertPoint(else_bb);
                genStmt(*s.elseStmt);
                if (!builder_.terminated())
                    builder_.createBr(join_bb);
            }
            builder_.setInsertPoint(join_bb);
            return;
          }
          case Stmt::Kind::While: {
            ir::BasicBlock *cond_bb = newBlock("while.cond");
            ir::BasicBlock *body_bb = newBlock("while.body");
            ir::BasicBlock *exit_bb = newBlock("while.end");
            builder_.createBr(cond_bb);
            builder_.setInsertPoint(cond_bb);
            Value *c = toCondition(s.loc, genRValue(*s.expr));
            builder_.createCondBr(c, body_bb, exit_bb);
            loops_.push_back({cond_bb, exit_bb});
            builder_.setInsertPoint(body_bb);
            genStmt(*s.thenStmt);
            if (!builder_.terminated())
                builder_.createBr(cond_bb);
            loops_.pop_back();
            builder_.setInsertPoint(exit_bb);
            return;
          }
          case Stmt::Kind::DoWhile: {
            ir::BasicBlock *body_bb = newBlock("do.body");
            ir::BasicBlock *cond_bb = newBlock("do.cond");
            ir::BasicBlock *exit_bb = newBlock("do.end");
            builder_.createBr(body_bb);
            loops_.push_back({cond_bb, exit_bb});
            builder_.setInsertPoint(body_bb);
            genStmt(*s.thenStmt);
            if (!builder_.terminated())
                builder_.createBr(cond_bb);
            loops_.pop_back();
            builder_.setInsertPoint(cond_bb);
            Value *c = toCondition(s.loc, genRValue(*s.expr));
            builder_.createCondBr(c, body_bb, exit_bb);
            builder_.setInsertPoint(exit_bb);
            return;
          }
          case Stmt::Kind::For: {
            pushScope();
            if (s.initStmt != nullptr)
                genStmt(*s.initStmt);
            ir::BasicBlock *cond_bb = newBlock("for.cond");
            ir::BasicBlock *body_bb = newBlock("for.body");
            ir::BasicBlock *inc_bb = newBlock("for.inc");
            ir::BasicBlock *exit_bb = newBlock("for.end");
            builder_.createBr(cond_bb);
            builder_.setInsertPoint(cond_bb);
            if (s.expr != nullptr) {
                Value *c = toCondition(s.loc, genRValue(*s.expr));
                builder_.createCondBr(c, body_bb, exit_bb);
            } else {
                builder_.createBr(body_bb);
            }
            loops_.push_back({inc_bb, exit_bb});
            builder_.setInsertPoint(body_bb);
            genStmt(*s.thenStmt);
            if (!builder_.terminated())
                builder_.createBr(inc_bb);
            loops_.pop_back();
            builder_.setInsertPoint(inc_bb);
            if (s.incExpr != nullptr)
                genExpr(*s.incExpr);
            builder_.createBr(cond_bb);
            builder_.setInsertPoint(exit_bb);
            popScope();
            return;
          }
          case Stmt::Kind::Break:
            if (loops_.empty()) {
                diags_.error(s.loc, "'break' outside a loop");
                return;
            }
            builder_.createBr(loops_.back().breakTarget);
            builder_.setInsertPoint(newBlock("after.break"));
            return;
          case Stmt::Kind::Continue:
            if (loops_.empty()) {
                diags_.error(s.loc, "'continue' outside a loop");
                return;
            }
            builder_.createBr(loops_.back().continueTarget);
            builder_.setInsertPoint(newBlock("after.continue"));
            return;
          case Stmt::Kind::Return: {
            if (s.expr != nullptr) {
                Value *v = genRValue(*s.expr);
                if (kernel_->returnType()->isVoid()) {
                    diags_.error(s.loc, "returning a value from a void "
                                 "function");
                    builder_.createRet(nullptr);
                } else {
                    builder_.createRet(
                        convert(s.loc, v, kernel_->returnType()));
                }
            } else {
                if (!kernel_->returnType()->isVoid())
                    diags_.error(s.loc, "non-void function must return a "
                                 "value");
                builder_.createRet(nullptr);
            }
            builder_.setInsertPoint(newBlock("after.return"));
            return;
          }
        }
    }

    // ------------------------------------------------------------------
    // Functions
    // ------------------------------------------------------------------
    void
    genFunction(const FunctionDecl &fn)
    {
        if (fn.body == nullptr)
            return;
        if (functions_.count(fn.name)) {
            diags_.error(fn.loc, "redefinition of '" + fn.name + "'");
            return;
        }
        const Type *ret = resolveType(fn.returnType);
        kernel_ = module_->addKernel(fn.name, fn.isKernel, ret);
        if (fn.isKernel && !ret->isVoid())
            diags_.error(fn.loc, "kernels must return void");

        Symbol fsym;
        fsym.kind = Symbol::Kind::Function;
        fsym.function = kernel_;
        functions_[fn.name] = fsym;

        scopes_.clear();
        pushScope();
        loops_.clear();

        ir::BasicBlock *entry = kernel_->addBlock("B1.entry");
        builder_.setInsertPoint(entry);

        for (const ParamDecl &p : fn.params) {
            const Type *pt = resolveType(p.type);
            if (pt->isVoid()) {
                diags_.error(p.loc, "parameter cannot have void type");
                continue;
            }
            ir::Argument *arg = kernel_->addArgument(pt, p.name);
            // Parameters are mutable in C: shadow each with a slot.
            ir::PrivateSlot *slot = kernel_->addSlot(pt, p.name);
            builder_.createSlotStore(slot, arg);
            Symbol sym;
            sym.kind = Symbol::Kind::Var;
            sym.slot = slot;
            if (!p.name.empty())
                declare(p.loc, p.name, sym);
        }

        genStmt(*fn.body);
        if (!builder_.terminated()) {
            // The trailing block may be an unreachable continuation
            // created after return/break; only a *reachable* fall-off
            // of a non-void function is an error.
            ir::BasicBlock *bb = builder_.insertBlock();
            bool reachable = bb == kernel_->entry() ||
                             !kernel_->predecessorMap()[bb].empty();
            if (kernel_->returnType()->isVoid()) {
                builder_.createRet(nullptr);
            } else {
                if (reachable) {
                    diags_.error(fn.loc, "control reaches end of "
                                 "non-void function '" + fn.name + "'");
                }
                if (kernel_->returnType()->isIntOrBool()) {
                    builder_.createRet(
                        builder_.constInt(kernel_->returnType(), 0));
                } else if (kernel_->returnType()->isFloat()) {
                    builder_.createRet(
                        builder_.constFloat(kernel_->returnType(), 0.0));
                } else {
                    builder_.createRet(builder_.createCast(
                        ir::Opcode::IntToPtr, builder_.constI64(0),
                        kernel_->returnType()));
                }
            }
        }
        kernel_->removeUnreachableBlocks();
        popScope();
        kernel_ = nullptr;
    }

    struct LoopCtx
    {
        ir::BasicBlock *continueTarget;
        ir::BasicBlock *breakTarget;

        LoopCtx(ir::BasicBlock *c, ir::BasicBlock *b)
            : continueTarget(c), breakTarget(b)
        {}
    };

    const TranslationUnit &tu_;
    DiagnosticEngine &diags_;
    std::unique_ptr<ir::Module> module_;
    IRBuilder builder_;
    ir::Kernel *kernel_ = nullptr;
    std::vector<std::map<std::string, Symbol>> scopes_;
    std::map<std::string, Symbol> functions_;
    std::map<const void *, std::vector<uint64_t>> arrayDims_;
    std::vector<LoopCtx> loops_;
};

// ----------------------------------------------------------------------
// Built-in function calls
// ----------------------------------------------------------------------

EValue
IRGenerator::genCall(const Expr &e)
{
    auto &t = module_->types();
    const std::string &name = e.name;

    auto arg = [&](size_t i) { return genRValue(*e.args.at(i)); };
    auto argCount = [&](size_t n) {
        if (e.args.size() != n) {
            diags_.error(e.loc, name + " expects " + std::to_string(n) +
                         " argument(s)");
            return false;
        }
        return true;
    };

    // --- Work-item queries ---
    static const std::map<std::string, ir::WorkItemQuery> wi_queries = {
        {"get_global_id", ir::WorkItemQuery::GlobalId},
        {"get_local_id", ir::WorkItemQuery::LocalId},
        {"get_group_id", ir::WorkItemQuery::GroupId},
        {"get_global_size", ir::WorkItemQuery::GlobalSize},
        {"get_local_size", ir::WorkItemQuery::LocalSize},
        {"get_num_groups", ir::WorkItemQuery::NumGroups},
    };
    auto wq = wi_queries.find(name);
    if (wq != wi_queries.end()) {
        if (!argCount(1))
            return makeRValue(builder_.constI32(0));
        Value *dim = convert(e.loc, arg(0), t.u32());
        return makeRValue(builder_.createWorkItemInfo(wq->second, dim));
    }
    if (name == "get_work_dim") {
        return makeRValue(builder_.createWorkItemInfo(
            ir::WorkItemQuery::WorkDim, nullptr));
    }

    // --- Synchronization ---
    if (name == "barrier") {
        // The flag argument only selects which memories to fence; the
        // SOFF barrier always orders both (conservative).
        for (const ExprPtr &a : e.args)
            genRValue(*a);
        builder_.createBarrier();
        return makeRValue(builder_.constI32(0));
    }
    if (name == "mem_fence" || name == "read_mem_fence" ||
        name == "write_mem_fence") {
        for (const ExprPtr &a : e.args)
            genRValue(*a);
        return makeRValue(builder_.constI32(0));
    }

    // --- Atomics (both OpenCL 1.0 atom_* and 1.1 atomic_* names) ---
    std::string aname = name;
    if (strStartsWith(aname, "atom_"))
        aname = "atomic_" + aname.substr(5);
    if (strStartsWith(aname, "atomic_")) {
        std::string op = aname.substr(7);
        if (op == "inc" || op == "dec") {
            if (!argCount(1))
                return makeRValue(builder_.constI32(0));
            Value *p = arg(0);
            if (!p->type()->isPointer()) {
                diags_.error(e.loc, "atomic on non-pointer");
                return makeRValue(builder_.constI32(0));
            }
            Value *one = builder_.constInt(p->type()->pointee(), 1);
            return makeRValue(builder_.createAtomicRMW(
                op == "inc" ? ir::AtomicOp::Add : ir::AtomicOp::Sub,
                p, one));
        }
        if (op == "cmpxchg") {
            if (!argCount(3))
                return makeRValue(builder_.constI32(0));
            Value *p = arg(0);
            const Type *et = p->type()->isPointer() ? p->type()->pointee()
                                                    : t.i32();
            Value *cmp = convert(e.loc, arg(1), et);
            Value *val = convert(e.loc, arg(2), et);
            return makeRValue(builder_.createAtomicCmpXchg(p, cmp, val));
        }
        static const std::map<std::string, ir::AtomicOp> rmw_signed = {
            {"add", ir::AtomicOp::Add}, {"sub", ir::AtomicOp::Sub},
            {"and", ir::AtomicOp::And}, {"or", ir::AtomicOp::Or},
            {"xor", ir::AtomicOp::Xor}, {"min", ir::AtomicOp::SMin},
            {"max", ir::AtomicOp::SMax}, {"xchg", ir::AtomicOp::Xchg},
        };
        auto it = rmw_signed.find(op);
        if (it != rmw_signed.end()) {
            if (!argCount(2))
                return makeRValue(builder_.constI32(0));
            Value *p = arg(0);
            if (!p->type()->isPointer()) {
                diags_.error(e.loc, "atomic on non-pointer");
                return makeRValue(builder_.constI32(0));
            }
            const Type *et = p->type()->pointee();
            ir::AtomicOp aop = it->second;
            if (et->isInt() && !et->isSigned()) {
                if (aop == ir::AtomicOp::SMin)
                    aop = ir::AtomicOp::UMin;
                else if (aop == ir::AtomicOp::SMax)
                    aop = ir::AtomicOp::UMax;
            }
            Value *v = convert(e.loc, arg(1), et);
            return makeRValue(builder_.createAtomicRMW(aop, p, v));
        }
    }

    // --- Type conversion / reinterpretation builtins ---
    if (strStartsWith(name, "convert_")) {
        if (!argCount(1))
            return makeRValue(builder_.constI32(0));
        static const std::map<std::string, ASTType::Base> bases = {
            {"char", ASTType::Base::Char}, {"uchar", ASTType::Base::UChar},
            {"short", ASTType::Base::Short},
            {"ushort", ASTType::Base::UShort},
            {"int", ASTType::Base::Int}, {"uint", ASTType::Base::UInt},
            {"long", ASTType::Base::Long}, {"ulong", ASTType::Base::ULong},
            {"float", ASTType::Base::Float},
            {"double", ASTType::Base::Double},
        };
        std::string target = name.substr(8);
        // Strip saturation/rounding suffixes (e.g. convert_int_sat_rte).
        size_t us = target.find('_');
        if (us != std::string::npos)
            target = target.substr(0, us);
        auto it = bases.find(target);
        if (it == bases.end()) {
            diags_.error(e.loc, "unsupported conversion '" + name + "'");
            return makeRValue(builder_.constI32(0));
        }
        return makeRValue(convert(e.loc, arg(0), scalarType(it->second)));
    }
    if (name == "as_float" || name == "as_int" || name == "as_uint") {
        if (!argCount(1))
            return makeRValue(builder_.constI32(0));
        const Type *to = name == "as_float" ? t.f32()
                         : name == "as_int" ? t.i32() : t.u32();
        return makeRValue(builder_.createCast(Opcode::Bitcast, arg(0),
                                              to));
    }

    // --- Math builtins ---
    EValue math = genMathBuiltin(e);
    if (math.kind != EValue::Kind::Invalid)
        return math;

    // --- User functions ---
    Symbol *sym = lookup(name);
    if (sym != nullptr && sym->kind == Symbol::Kind::Function) {
        ir::Kernel *callee = sym->function;
        if (callee->isKernel()) {
            diags_.error(e.loc, "calling a kernel from a kernel is not "
                         "supported");
            return makeRValue(builder_.constI32(0));
        }
        if (e.args.size() != callee->numArguments()) {
            diags_.error(e.loc, "wrong number of arguments to '" + name +
                         "'");
            return makeRValue(builder_.constI32(0));
        }
        std::vector<Value *> args;
        for (size_t i = 0; i < e.args.size(); ++i) {
            Value *v = genRValue(*e.args[i]);
            args.push_back(convert(e.args[i]->loc, v,
                                   callee->argument(i)->type()));
        }
        return makeRValue(builder_.createCall(callee, args));
    }

    diags_.error(e.loc, "call to unknown function '" + name + "'");
    return makeRValue(builder_.constI32(0));
}

EValue
IRGenerator::genMathBuiltin(const Expr &e)
{
    auto &t = module_->types();
    const std::string &name = e.name;

    // Unary float functions (incl. native_/half_ approximations).
    static const std::map<std::string, ir::MathFunc> unary_float = {
        {"sqrt", ir::MathFunc::Sqrt}, {"rsqrt", ir::MathFunc::Rsqrt},
        {"fabs", ir::MathFunc::Fabs}, {"exp", ir::MathFunc::Exp},
        {"exp2", ir::MathFunc::Exp2}, {"log", ir::MathFunc::Log},
        {"log2", ir::MathFunc::Log2}, {"log10", ir::MathFunc::Log10},
        {"sin", ir::MathFunc::Sin}, {"cos", ir::MathFunc::Cos},
        {"tan", ir::MathFunc::Tan}, {"asin", ir::MathFunc::Asin},
        {"acos", ir::MathFunc::Acos}, {"atan", ir::MathFunc::Atan},
        {"floor", ir::MathFunc::Floor}, {"ceil", ir::MathFunc::Ceil},
        {"round", ir::MathFunc::Round},
    };
    static const std::map<std::string, ir::MathFunc> binary_float = {
        {"pow", ir::MathFunc::Pow}, {"powr", ir::MathFunc::Pow},
        {"fmin", ir::MathFunc::Fmin}, {"fmax", ir::MathFunc::Fmax},
        {"fmod", ir::MathFunc::Fmod}, {"hypot", ir::MathFunc::Hypot},
        {"atan2", ir::MathFunc::Atan2},
        {"copysign", ir::MathFunc::Copysign},
    };

    std::string base = name;
    if (strStartsWith(base, "native_"))
        base = base.substr(7);
    else if (strStartsWith(base, "half_"))
        base = base.substr(5);

    auto floatArg = [&](size_t i) {
        Value *v = genRValue(*e.args.at(i));
        if (v->type()->isFloat())
            return v;
        return convert(e.args[i]->loc, v, t.f32());
    };

    auto uf = unary_float.find(base);
    if (uf != unary_float.end() && e.args.size() == 1) {
        Value *a = floatArg(0);
        return makeRValue(builder_.createMathCall(uf->second, a->type(),
                                                  {a}));
    }
    auto bf = binary_float.find(base);
    if (bf != binary_float.end() && e.args.size() == 2) {
        Value *a = floatArg(0);
        Value *b = floatArg(1);
        const Type *ct = commonType(a->type(), b->type());
        a = convert(e.loc, a, ct);
        b = convert(e.loc, b, ct);
        return makeRValue(builder_.createMathCall(bf->second, ct, {a, b}));
    }
    if ((base == "mad" || base == "fma" || base == "mix") &&
        e.args.size() == 3) {
        Value *a = floatArg(0);
        Value *b = floatArg(1);
        Value *c = floatArg(2);
        const Type *ct = commonType(commonType(a->type(), b->type()),
                                    c->type());
        a = convert(e.loc, a, ct);
        b = convert(e.loc, b, ct);
        c = convert(e.loc, c, ct);
        if (base == "mix") {
            // mix(a,b,c) = a + (b - a) * c
            Value *d = builder_.createBinOp(Opcode::FSub, b, a);
            Value *m = builder_.createBinOp(Opcode::FMul, d, c);
            return makeRValue(builder_.createBinOp(Opcode::FAdd, a, m));
        }
        return makeRValue(builder_.createMathCall(
            base == "mad" ? ir::MathFunc::Mad : ir::MathFunc::Fma, ct,
            {a, b, c}));
    }

    // Polymorphic min/max/abs/clamp.
    if ((base == "min" || base == "max") && e.args.size() == 2) {
        Value *a = genRValue(*e.args[0]);
        Value *b = genRValue(*e.args[1]);
        const Type *ct = commonType(a->type(), b->type());
        a = convert(e.loc, a, ct);
        b = convert(e.loc, b, ct);
        ir::MathFunc f;
        if (ct->isFloat())
            f = base == "min" ? ir::MathFunc::Fmin : ir::MathFunc::Fmax;
        else if (ct->isSigned())
            f = base == "min" ? ir::MathFunc::SMin : ir::MathFunc::SMax;
        else
            f = base == "min" ? ir::MathFunc::UMin : ir::MathFunc::UMax;
        return makeRValue(builder_.createMathCall(f, ct, {a, b}));
    }
    if (base == "abs" && e.args.size() == 1) {
        Value *a = genRValue(*e.args[0]);
        if (a->type()->isFloat())
            return makeRValue(builder_.createMathCall(
                ir::MathFunc::Fabs, a->type(), {a}));
        const Type *ct = commonType(a->type(), a->type());
        a = convert(e.loc, a, ct);
        return makeRValue(builder_.createMathCall(ir::MathFunc::SAbs, ct,
                                                  {a}));
    }
    if (base == "clamp" && e.args.size() == 3) {
        Value *x = genRValue(*e.args[0]);
        Value *lo = genRValue(*e.args[1]);
        Value *hi = genRValue(*e.args[2]);
        const Type *ct = commonType(commonType(x->type(), lo->type()),
                                    hi->type());
        x = convert(e.loc, x, ct);
        lo = convert(e.loc, lo, ct);
        hi = convert(e.loc, hi, ct);
        ir::MathFunc f = ct->isFloat() ? ir::MathFunc::FClamp
                         : ct->isSigned() ? ir::MathFunc::SClamp
                                          : ir::MathFunc::UClamp;
        return makeRValue(builder_.createMathCall(f, ct, {x, lo, hi}));
    }
    if (base == "mul24" && e.args.size() == 2) {
        Value *a = genRValue(*e.args[0]);
        Value *b = genRValue(*e.args[1]);
        const Type *ct = commonType(a->type(), b->type());
        return makeRValue(builder_.createBinOp(
            Opcode::Mul, convert(e.loc, a, ct), convert(e.loc, b, ct)));
    }
    if (base == "mad24" && e.args.size() == 3) {
        Value *a = genRValue(*e.args[0]);
        Value *b = genRValue(*e.args[1]);
        Value *c = genRValue(*e.args[2]);
        const Type *ct = commonType(commonType(a->type(), b->type()),
                                    c->type());
        Value *m = builder_.createBinOp(Opcode::Mul,
                                        convert(e.loc, a, ct),
                                        convert(e.loc, b, ct));
        return makeRValue(builder_.createBinOp(Opcode::Add, m,
                                               convert(e.loc, c, ct)));
    }
    if (base == "select" && e.args.size() == 3) {
        // OpenCL scalar select(a, b, c): c ? b : a.
        Value *a = genRValue(*e.args[0]);
        Value *b = genRValue(*e.args[1]);
        Value *c = toCondition(e.loc, genRValue(*e.args[2]));
        const Type *ct = a->type() == b->type()
            ? a->type() : commonType(a->type(), b->type());
        a = convert(e.loc, a, ct);
        b = convert(e.loc, b, ct);
        return makeRValue(builder_.createSelect(c, b, a));
    }

    return EValue(); // Kind::Invalid -> not a math builtin
}

} // namespace

std::unique_ptr<ir::Module>
generateIR(const TranslationUnit &tu, const std::string &module_name,
           DiagnosticEngine &diags)
{
    IRGenerator gen(tu, module_name, diags);
    return gen.run();
}

std::unique_ptr<ir::Module>
compileToIR(const std::string &source, const std::string &module_name)
{
    DiagnosticEngine diags;
    TranslationUnit tu = parseSource(source, diags);
    diags.checkNoErrors();
    auto module = generateIR(tu, module_name, diags);
    diags.checkNoErrors();
    return module;
}

} // namespace soff::fe
