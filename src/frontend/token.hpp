/**
 * @file
 * Tokens of the OpenCL C language subset SOFF compiles.
 */
#pragma once

#include <cstdint>
#include <string>

#include "support/diagnostics.hpp"

namespace soff::fe
{

/** Token kinds. Keywords are distinguished from identifiers by the lexer. */
enum class TokKind
{
    EndOfFile,
    Identifier,
    Keyword,
    IntLiteral,
    FloatLiteral,
    // Punctuation / operators.
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Comma, Semicolon, Question, Colon,
    Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Tilde, Bang,
    Less, Greater, LessEq, GreaterEq, EqEq, BangEq,
    AmpAmp, PipePipe,
    Shl, Shr,
    Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign,
    PercentAssign, AmpAssign, PipeAssign, CaretAssign,
    ShlAssign, ShrAssign,
    PlusPlus, MinusMinus,
    Dot, Arrow,
};

/** A lexed token. */
struct Token
{
    TokKind kind = TokKind::EndOfFile;
    std::string text;       ///< Identifier/keyword spelling.
    uint64_t intValue = 0;  ///< IntLiteral payload.
    bool intIsUnsigned = false;
    bool intIsLong = false;
    double floatValue = 0;  ///< FloatLiteral payload.
    bool floatIsDouble = false;
    SourceLoc loc;

    bool is(TokKind k) const { return kind == k; }
    bool
    isKeyword(const char *kw) const
    {
        return kind == TokKind::Keyword && text == kw;
    }
    std::string str() const;
};

} // namespace soff::fe
