/**
 * @file
 * AST -> SSA-IR generation with on-the-fly semantic analysis.
 *
 * Mutable C variables (including whole private arrays, paper §III-C) are
 * generated as private slots accessed via SlotLoad/SlotStore; the
 * mem2reg pass in src/transform then promotes them to SSA form. __local
 * variables become kernel LocalVars accessed through real load/store
 * instructions (they are memory, backed by local memory blocks, §V-B).
 */
#pragma once

#include <memory>

#include "frontend/ast.hpp"
#include "ir/builder.hpp"

namespace soff::fe
{

/**
 * Generates a Module from a parsed translation unit. Reports semantic
 * errors to the diagnostic engine; returns a partially built module
 * (check diags.hasErrors() before using it).
 */
std::unique_ptr<ir::Module> generateIR(const TranslationUnit &tu,
                                       const std::string &module_name,
                                       DiagnosticEngine &diags);

/** Full pipeline: lex + parse + irgen; throws CompileError on failure. */
std::unique_ptr<ir::Module> compileToIR(const std::string &source,
                                        const std::string &module_name);

} // namespace soff::fe
