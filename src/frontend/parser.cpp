#include "frontend/parser.hpp"

#include <map>

namespace soff::fe
{

namespace
{

/** Binary operator precedence (C, higher binds tighter). */
int
binaryPrec(TokKind k)
{
    switch (k) {
      case TokKind::Star: case TokKind::Slash: case TokKind::Percent:
        return 10;
      case TokKind::Plus: case TokKind::Minus:
        return 9;
      case TokKind::Shl: case TokKind::Shr:
        return 8;
      case TokKind::Less: case TokKind::LessEq:
      case TokKind::Greater: case TokKind::GreaterEq:
        return 7;
      case TokKind::EqEq: case TokKind::BangEq:
        return 6;
      case TokKind::Amp:
        return 5;
      case TokKind::Caret:
        return 4;
      case TokKind::Pipe:
        return 3;
      case TokKind::AmpAmp:
        return 2;
      case TokKind::PipePipe:
        return 1;
      default:
        return -1;
    }
}

bool
isAssignOp(TokKind k)
{
    switch (k) {
      case TokKind::Assign: case TokKind::PlusAssign:
      case TokKind::MinusAssign: case TokKind::StarAssign:
      case TokKind::SlashAssign: case TokKind::PercentAssign:
      case TokKind::AmpAssign: case TokKind::PipeAssign:
      case TokKind::CaretAssign: case TokKind::ShlAssign:
      case TokKind::ShrAssign:
        return true;
      default:
        return false;
    }
}

bool
isBaseTypeKeyword(const std::string &text)
{
    static const std::map<std::string, int> bases = {
        {"void", 1}, {"bool", 1}, {"char", 1}, {"uchar", 1}, {"short", 1},
        {"ushort", 1}, {"int", 1}, {"uint", 1}, {"long", 1}, {"ulong", 1},
        {"float", 1}, {"double", 1}, {"size_t", 1}, {"ptrdiff_t", 1},
        {"signed", 1}, {"unsigned", 1},
    };
    return bases.count(text) > 0;
}

bool
isQualifierKeyword(const std::string &text)
{
    static const std::map<std::string, int> quals = {
        {"__global", 1}, {"global", 1}, {"__local", 1}, {"local", 1},
        {"__constant", 1}, {"constant", 1}, {"__private", 1},
        {"private", 1}, {"const", 1}, {"restrict", 1}, {"volatile", 1},
    };
    return quals.count(text) > 0;
}

} // namespace

Parser::Parser(std::vector<Token> tokens, DiagnosticEngine &diags)
    : toks_(std::move(tokens)), diags_(diags)
{}

const Token &
Parser::peek(size_t ahead) const
{
    size_t i = pos_ + ahead;
    if (i >= toks_.size())
        i = toks_.size() - 1; // EOF
    return toks_[i];
}

Token
Parser::advance()
{
    Token t = cur();
    if (pos_ + 1 < toks_.size())
        ++pos_;
    return t;
}

bool
Parser::match(TokKind k)
{
    if (check(k)) {
        advance();
        return true;
    }
    return false;
}

bool
Parser::matchKeyword(const char *kw)
{
    if (checkKeyword(kw)) {
        advance();
        return true;
    }
    return false;
}

Token
Parser::expect(TokKind k, const std::string &what)
{
    if (check(k))
        return advance();
    error("expected " + what + " but found '" + cur().str() + "'");
    return cur();
}

void
Parser::error(const std::string &msg)
{
    diags_.error(cur().loc, msg);
}

void
Parser::synchronizeTo(TokKind k)
{
    while (!check(TokKind::EndOfFile) && !check(k))
        advance();
    match(k);
}

bool
Parser::atTypeStart(size_t ahead) const
{
    const Token &t = peek(ahead);
    if (t.kind != TokKind::Keyword)
        return false;
    return isBaseTypeKeyword(t.text) || isQualifierKeyword(t.text);
}

ASTType
Parser::parseType(ir::AddrSpace *addr_space)
{
    ASTType type;
    ir::AddrSpace as = ir::AddrSpace::Private;
    bool saw_base = false;
    bool is_unsigned = false;
    bool saw_long = false;

    // Qualifiers and base-type keywords can interleave in C.
    while (cur().kind == TokKind::Keyword) {
        const std::string &kw = cur().text;
        if (kw == "__global" || kw == "global") {
            as = ir::AddrSpace::Global;
            advance();
        } else if (kw == "__local" || kw == "local") {
            as = ir::AddrSpace::Local;
            advance();
        } else if (kw == "__constant" || kw == "constant") {
            as = ir::AddrSpace::Constant;
            advance();
        } else if (kw == "__private" || kw == "private") {
            as = ir::AddrSpace::Private;
            advance();
        } else if (kw == "const" || kw == "restrict" || kw == "volatile" ||
                   kw == "static" || kw == "inline") {
            advance(); // parsed, no semantic effect in our subset
        } else if (kw == "unsigned") {
            is_unsigned = true;
            saw_base = true;
            advance();
        } else if (kw == "signed") {
            saw_base = true;
            advance();
        } else if (isBaseTypeKeyword(kw)) {
            saw_base = true;
            if (kw == "void") type.base = ASTType::Base::Void;
            else if (kw == "bool") type.base = ASTType::Base::Bool;
            else if (kw == "char") type.base = ASTType::Base::Char;
            else if (kw == "uchar") type.base = ASTType::Base::UChar;
            else if (kw == "short") type.base = ASTType::Base::Short;
            else if (kw == "ushort") type.base = ASTType::Base::UShort;
            else if (kw == "int") type.base = ASTType::Base::Int;
            else if (kw == "uint") type.base = ASTType::Base::UInt;
            else if (kw == "long") { type.base = ASTType::Base::Long;
                                     saw_long = true; }
            else if (kw == "ulong") type.base = ASTType::Base::ULong;
            else if (kw == "float") type.base = ASTType::Base::Float;
            else if (kw == "double") type.base = ASTType::Base::Double;
            else if (kw == "size_t") { type.base = ASTType::Base::ULong; }
            else if (kw == "ptrdiff_t") { type.base = ASTType::Base::Long; }
            advance();
        } else {
            break;
        }
    }
    if (!saw_base)
        error("expected a type");
    (void)saw_long;
    if (is_unsigned) {
        switch (type.base) {
          case ASTType::Base::Char: type.base = ASTType::Base::UChar; break;
          case ASTType::Base::Short: type.base = ASTType::Base::UShort;
            break;
          case ASTType::Base::Long: type.base = ASTType::Base::ULong; break;
          default: type.base = ASTType::Base::UInt; break;
        }
    }

    // Pointer levels. A qualifier after '*' re-targets the address space
    // of the *next outer* level; by default each level inherits.
    while (check(TokKind::Star)) {
        advance();
        type.ptrs.push_back(as);
        while (cur().kind == TokKind::Keyword &&
               isQualifierKeyword(cur().text)) {
            const std::string &kw = cur().text;
            if (kw == "__global" || kw == "global")
                as = ir::AddrSpace::Global;
            else if (kw == "__local" || kw == "local")
                as = ir::AddrSpace::Local;
            else if (kw == "__constant" || kw == "constant")
                as = ir::AddrSpace::Constant;
            else if (kw == "__private" || kw == "private")
                as = ir::AddrSpace::Private;
            advance();
        }
    }
    if (addr_space != nullptr)
        *addr_space = type.isPointer() ? ir::AddrSpace::Private : as;
    return type;
}

TranslationUnit
Parser::parse()
{
    TranslationUnit tu;
    while (!check(TokKind::EndOfFile)) {
        if (checkKeyword("typedef") || checkKeyword("struct") ||
            checkKeyword("union") || checkKeyword("enum")) {
            error("'" + cur().text + "' is not supported by SOFF");
            synchronizeTo(TokKind::Semicolon);
            continue;
        }
        auto fn = parseFunction();
        if (fn != nullptr)
            tu.functions.push_back(std::move(fn));
    }
    return tu;
}

std::unique_ptr<FunctionDecl>
Parser::parseFunction()
{
    auto fn = std::make_unique<FunctionDecl>();
    fn->loc = cur().loc;
    while (checkKeyword("__kernel") || checkKeyword("kernel")) {
        fn->isKernel = true;
        advance();
    }
    // "__attribute__((...))" is not in our keyword set; tolerate by name.
    if (check(TokKind::Identifier) && cur().text == "__attribute__") {
        advance();
        int depth = 0;
        do {
            if (check(TokKind::LParen))
                ++depth;
            else if (check(TokKind::RParen))
                --depth;
            advance();
        } while (depth > 0 && !check(TokKind::EndOfFile));
    }
    fn->returnType = parseType(nullptr);
    Token name = expect(TokKind::Identifier, "function name");
    fn->name = name.text;
    expect(TokKind::LParen, "'('");
    if (!check(TokKind::RParen)) {
        do {
            if (checkKeyword("void") && peek(1).is(TokKind::RParen)) {
                advance();
                break;
            }
            ParamDecl param;
            param.loc = cur().loc;
            param.type = parseType(nullptr);
            if (check(TokKind::Identifier))
                param.name = advance().text;
            fn->params.push_back(std::move(param));
        } while (match(TokKind::Comma));
    }
    expect(TokKind::RParen, "')'");
    if (match(TokKind::Semicolon)) {
        error("function prototypes are not supported; define '" +
              fn->name + "' before use");
        return nullptr;
    }
    if (!check(TokKind::LBrace)) {
        error("expected function body");
        synchronizeTo(TokKind::RBrace);
        return nullptr;
    }
    fn->body = parseCompound();
    return fn;
}

StmtPtr
Parser::parseDeclStmt()
{
    auto stmt = std::make_unique<Stmt>(Stmt::Kind::Decl, cur().loc);
    ir::AddrSpace as = ir::AddrSpace::Private;
    stmt->declType = parseType(&as);
    stmt->declAddrSpace = as;
    do {
        Declarator d;
        d.loc = cur().loc;
        Token name = expect(TokKind::Identifier, "variable name");
        d.name = name.text;
        while (match(TokKind::LBracket)) {
            ExprPtr dim = parseConditional();
            int64_t v = 0;
            if (dim == nullptr || !evalConstInt(*dim, &v) || v <= 0) {
                error("array size must be a positive integer constant");
                v = 1;
            }
            d.arrayDims.push_back(static_cast<uint64_t>(v));
            expect(TokKind::RBracket, "']'");
        }
        if (match(TokKind::Assign)) {
            if (check(TokKind::LBrace)) {
                error("initializer lists are not supported");
                synchronizeTo(TokKind::RBrace);
            } else {
                d.init = parseAssignment();
            }
        }
        stmt->declarators.push_back(std::move(d));
    } while (match(TokKind::Comma));
    expect(TokKind::Semicolon, "';'");
    return stmt;
}

StmtPtr
Parser::parseCompound()
{
    auto stmt = std::make_unique<Stmt>(Stmt::Kind::Compound, cur().loc);
    expect(TokKind::LBrace, "'{'");
    while (!check(TokKind::RBrace) && !check(TokKind::EndOfFile))
        stmt->body.push_back(parseStmt());
    expect(TokKind::RBrace, "'}'");
    return stmt;
}

StmtPtr
Parser::parseStmt()
{
    SourceLoc loc = cur().loc;
    if (check(TokKind::LBrace))
        return parseCompound();
    if (match(TokKind::Semicolon))
        return std::make_unique<Stmt>(Stmt::Kind::Empty, loc);
    if (atTypeStart())
        return parseDeclStmt();
    if (matchKeyword("if")) {
        auto stmt = std::make_unique<Stmt>(Stmt::Kind::If, loc);
        expect(TokKind::LParen, "'('");
        stmt->expr = parseExpr();
        expect(TokKind::RParen, "')'");
        stmt->thenStmt = parseStmt();
        if (matchKeyword("else"))
            stmt->elseStmt = parseStmt();
        return stmt;
    }
    if (matchKeyword("while")) {
        auto stmt = std::make_unique<Stmt>(Stmt::Kind::While, loc);
        expect(TokKind::LParen, "'('");
        stmt->expr = parseExpr();
        expect(TokKind::RParen, "')'");
        stmt->thenStmt = parseStmt();
        return stmt;
    }
    if (matchKeyword("do")) {
        auto stmt = std::make_unique<Stmt>(Stmt::Kind::DoWhile, loc);
        stmt->thenStmt = parseStmt();
        if (!matchKeyword("while"))
            error("expected 'while' after do-body");
        expect(TokKind::LParen, "'('");
        stmt->expr = parseExpr();
        expect(TokKind::RParen, "')'");
        expect(TokKind::Semicolon, "';'");
        return stmt;
    }
    if (matchKeyword("for")) {
        auto stmt = std::make_unique<Stmt>(Stmt::Kind::For, loc);
        expect(TokKind::LParen, "'('");
        if (match(TokKind::Semicolon)) {
            stmt->initStmt = std::make_unique<Stmt>(Stmt::Kind::Empty, loc);
        } else if (atTypeStart()) {
            stmt->initStmt = parseDeclStmt(); // consumes ';'
        } else {
            auto init = std::make_unique<Stmt>(Stmt::Kind::Expr, cur().loc);
            init->expr = parseExpr();
            stmt->initStmt = std::move(init);
            expect(TokKind::Semicolon, "';'");
        }
        if (!check(TokKind::Semicolon))
            stmt->expr = parseExpr();
        expect(TokKind::Semicolon, "';'");
        if (!check(TokKind::RParen))
            stmt->incExpr = parseExpr();
        expect(TokKind::RParen, "')'");
        stmt->thenStmt = parseStmt();
        return stmt;
    }
    if (matchKeyword("break")) {
        expect(TokKind::Semicolon, "';'");
        return std::make_unique<Stmt>(Stmt::Kind::Break, loc);
    }
    if (matchKeyword("continue")) {
        expect(TokKind::Semicolon, "';'");
        return std::make_unique<Stmt>(Stmt::Kind::Continue, loc);
    }
    if (matchKeyword("return")) {
        auto stmt = std::make_unique<Stmt>(Stmt::Kind::Return, loc);
        if (!check(TokKind::Semicolon))
            stmt->expr = parseExpr();
        expect(TokKind::Semicolon, "';'");
        return stmt;
    }
    if (checkKeyword("switch") || checkKeyword("goto")) {
        error("'" + cur().text + "' is not supported by SOFF");
        synchronizeTo(TokKind::Semicolon);
        return std::make_unique<Stmt>(Stmt::Kind::Empty, loc);
    }
    auto stmt = std::make_unique<Stmt>(Stmt::Kind::Expr, loc);
    stmt->expr = parseExpr();
    expect(TokKind::Semicolon, "';'");
    return stmt;
}

ExprPtr
Parser::parseExpr()
{
    ExprPtr e = parseAssignment();
    while (check(TokKind::Comma)) {
        SourceLoc loc = advance().loc;
        auto comma = std::make_unique<Expr>(Expr::Kind::Binary, loc);
        comma->op = TokKind::Comma;
        comma->lhs = std::move(e);
        comma->rhs = parseAssignment();
        e = std::move(comma);
    }
    return e;
}

ExprPtr
Parser::parseAssignment()
{
    ExprPtr lhs = parseConditional();
    if (isAssignOp(cur().kind)) {
        Token op = advance();
        auto e = std::make_unique<Expr>(Expr::Kind::Assign, op.loc);
        e->op = op.kind;
        e->lhs = std::move(lhs);
        e->rhs = parseAssignment();
        return e;
    }
    return lhs;
}

ExprPtr
Parser::parseConditional()
{
    ExprPtr c = parseBinary(1);
    if (check(TokKind::Question)) {
        SourceLoc loc = advance().loc;
        auto e = std::make_unique<Expr>(Expr::Kind::Cond, loc);
        e->cond = std::move(c);
        e->lhs = parseAssignment();
        expect(TokKind::Colon, "':'");
        e->rhs = parseConditional();
        return e;
    }
    return c;
}

ExprPtr
Parser::parseBinary(int min_prec)
{
    ExprPtr lhs = parseUnary();
    while (true) {
        int prec = binaryPrec(cur().kind);
        if (prec < min_prec)
            return lhs;
        Token op = advance();
        ExprPtr rhs = parseBinary(prec + 1);
        auto e = std::make_unique<Expr>(Expr::Kind::Binary, op.loc);
        e->op = op.kind;
        e->lhs = std::move(lhs);
        e->rhs = std::move(rhs);
        lhs = std::move(e);
    }
}

ExprPtr
Parser::parseUnary()
{
    SourceLoc loc = cur().loc;
    auto mk = [&](UnOp op, ExprPtr operand) {
        auto e = std::make_unique<Expr>(Expr::Kind::Unary, loc);
        e->unOp = op;
        e->lhs = std::move(operand);
        return e;
    };
    if (match(TokKind::Minus))
        return mk(UnOp::Neg, parseUnary());
    if (match(TokKind::Plus))
        return mk(UnOp::Plus, parseUnary());
    if (match(TokKind::Bang))
        return mk(UnOp::Not, parseUnary());
    if (match(TokKind::Tilde))
        return mk(UnOp::BitNot, parseUnary());
    if (match(TokKind::Star))
        return mk(UnOp::Deref, parseUnary());
    if (match(TokKind::Amp))
        return mk(UnOp::AddrOf, parseUnary());
    if (match(TokKind::PlusPlus))
        return mk(UnOp::PreInc, parseUnary());
    if (match(TokKind::MinusMinus))
        return mk(UnOp::PreDec, parseUnary());
    if (checkKeyword("sizeof")) {
        advance();
        expect(TokKind::LParen, "'('");
        ASTType ty = parseType(nullptr);
        expect(TokKind::RParen, "')'");
        auto e = std::make_unique<Expr>(Expr::Kind::IntLit, loc);
        // Scalar sizes; pointer = 8.
        uint64_t size = 4;
        if (ty.isPointer()) {
            size = 8;
        } else {
            switch (ty.base) {
              case ASTType::Base::Bool: case ASTType::Base::Char:
              case ASTType::Base::UChar: size = 1; break;
              case ASTType::Base::Short: case ASTType::Base::UShort:
                size = 2; break;
              case ASTType::Base::Long: case ASTType::Base::ULong:
              case ASTType::Base::Double: size = 8; break;
              default: size = 4; break;
            }
        }
        e->intValue = size;
        e->intIsUnsigned = true;
        e->intIsLong = true;
        return e;
    }
    // Cast: '(' type ')' unary
    if (check(TokKind::LParen) && atTypeStart(1)) {
        advance();
        auto e = std::make_unique<Expr>(Expr::Kind::Cast, loc);
        e->castType = parseType(nullptr);
        expect(TokKind::RParen, "')'");
        e->lhs = parseUnary();
        return e;
    }
    return parsePostfix();
}

ExprPtr
Parser::parsePostfix()
{
    ExprPtr e = parsePrimary();
    while (true) {
        SourceLoc loc = cur().loc;
        if (match(TokKind::LBracket)) {
            auto idx = std::make_unique<Expr>(Expr::Kind::Index, loc);
            idx->lhs = std::move(e);
            idx->rhs = parseExpr();
            expect(TokKind::RBracket, "']'");
            e = std::move(idx);
        } else if (match(TokKind::PlusPlus)) {
            auto u = std::make_unique<Expr>(Expr::Kind::Unary, loc);
            u->unOp = UnOp::PostInc;
            u->lhs = std::move(e);
            e = std::move(u);
        } else if (match(TokKind::MinusMinus)) {
            auto u = std::make_unique<Expr>(Expr::Kind::Unary, loc);
            u->unOp = UnOp::PostDec;
            u->lhs = std::move(e);
            e = std::move(u);
        } else if (check(TokKind::Dot) || check(TokKind::Arrow)) {
            error("member access is not supported (no struct types)");
            advance();
            if (check(TokKind::Identifier))
                advance();
        } else {
            break;
        }
    }
    return e;
}

ExprPtr
Parser::parsePrimary()
{
    SourceLoc loc = cur().loc;
    if (check(TokKind::IntLiteral)) {
        Token t = advance();
        auto e = std::make_unique<Expr>(Expr::Kind::IntLit, loc);
        e->intValue = t.intValue;
        e->intIsUnsigned = t.intIsUnsigned;
        e->intIsLong = t.intIsLong;
        return e;
    }
    if (check(TokKind::FloatLiteral)) {
        Token t = advance();
        auto e = std::make_unique<Expr>(Expr::Kind::FloatLit, loc);
        e->floatValue = t.floatValue;
        e->floatIsDouble = t.floatIsDouble;
        return e;
    }
    if (check(TokKind::Identifier)) {
        Token t = advance();
        if (check(TokKind::LParen)) {
            advance();
            auto e = std::make_unique<Expr>(Expr::Kind::Call, loc);
            e->name = t.text;
            if (!check(TokKind::RParen)) {
                do {
                    e->args.push_back(parseAssignment());
                } while (match(TokKind::Comma));
            }
            expect(TokKind::RParen, "')'");
            return e;
        }
        auto e = std::make_unique<Expr>(Expr::Kind::Ident, loc);
        e->name = t.text;
        return e;
    }
    if (match(TokKind::LParen)) {
        ExprPtr e = parseExpr();
        expect(TokKind::RParen, "')'");
        return e;
    }
    error("expected an expression, found '" + cur().str() + "'");
    advance();
    auto e = std::make_unique<Expr>(Expr::Kind::IntLit, loc);
    return e;
}

bool
Parser::evalConstInt(const Expr &e, int64_t *out) const
{
    switch (e.kind) {
      case Expr::Kind::IntLit:
        *out = static_cast<int64_t>(e.intValue);
        return true;
      case Expr::Kind::Unary: {
        int64_t v;
        if (e.lhs == nullptr || !evalConstInt(*e.lhs, &v))
            return false;
        switch (e.unOp) {
          case UnOp::Neg: *out = -v; return true;
          case UnOp::Plus: *out = v; return true;
          case UnOp::Not: *out = !v; return true;
          case UnOp::BitNot: *out = ~v; return true;
          default: return false;
        }
      }
      case Expr::Kind::Binary: {
        int64_t a, b;
        if (e.lhs == nullptr || e.rhs == nullptr ||
            !evalConstInt(*e.lhs, &a) || !evalConstInt(*e.rhs, &b)) {
            return false;
        }
        switch (e.op) {
          case TokKind::Plus: *out = a + b; return true;
          case TokKind::Minus: *out = a - b; return true;
          case TokKind::Star: *out = a * b; return true;
          case TokKind::Slash:
            if (b == 0) return false;
            *out = a / b;
            return true;
          case TokKind::Percent:
            if (b == 0) return false;
            *out = a % b;
            return true;
          case TokKind::Shl: *out = a << b; return true;
          case TokKind::Shr: *out = a >> b; return true;
          case TokKind::Amp: *out = a & b; return true;
          case TokKind::Pipe: *out = a | b; return true;
          case TokKind::Caret: *out = a ^ b; return true;
          default: return false;
        }
      }
      default:
        return false;
    }
}

TranslationUnit
parseSource(const std::string &source, DiagnosticEngine &diags)
{
    Lexer lexer(source, diags);
    Parser parser(lexer.lex(), diags);
    return parser.parse();
}

} // namespace soff::fe
