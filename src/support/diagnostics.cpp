#include "support/diagnostics.hpp"

#include "support/error.hpp"

namespace soff
{

std::string
SourceLoc::str() const
{
    if (!valid())
        return "<unknown>";
    return std::to_string(line) + ":" + std::to_string(column);
}

std::string
Diagnostic::str() const
{
    const char *tag = "error";
    if (kind == DiagKind::Warning)
        tag = "warning";
    else if (kind == DiagKind::Note)
        tag = "note";
    return loc.str() + ": " + tag + ": " + message;
}

void
DiagnosticEngine::error(SourceLoc loc, const std::string &message)
{
    diags_.push_back({DiagKind::Error, loc, message});
    ++numErrors_;
}

void
DiagnosticEngine::warning(SourceLoc loc, const std::string &message)
{
    diags_.push_back({DiagKind::Warning, loc, message});
}

void
DiagnosticEngine::note(SourceLoc loc, const std::string &message)
{
    diags_.push_back({DiagKind::Note, loc, message});
}

std::string
DiagnosticEngine::report() const
{
    std::string out;
    for (const Diagnostic &d : diags_) {
        out += d.str();
        out += '\n';
    }
    return out;
}

void
DiagnosticEngine::checkNoErrors() const
{
    if (hasErrors())
        throw CompileError(report());
}

} // namespace soff
