#include "support/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace soff
{

std::string
strFormat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(static_cast<size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

std::string
strJoin(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

bool
strStartsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

} // namespace soff
