/**
 * @file
 * Small string helpers shared across modules.
 */
#pragma once

#include <string>
#include <vector>

namespace soff
{

/** printf-style formatting into a std::string. */
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Joins elements with a separator. */
std::string strJoin(const std::vector<std::string> &parts,
                    const std::string &sep);

/** True if s starts with prefix. */
bool strStartsWith(const std::string &s, const std::string &prefix);

} // namespace soff
