#include "support/error.hpp"

#include <cstdio>

namespace soff::detail
{

void
assertFail(const char *cond, const char *file, int line,
           const std::string &message)
{
    std::fprintf(stderr, "SOFF internal error: %s\n  condition: %s\n"
                 "  at %s:%d\n", message.c_str(), cond, file, line);
    std::abort();
}

} // namespace soff::detail
