#include "support/error.hpp"

#include <cstdio>

namespace soff
{

const char *
clStatusName(ClStatus status)
{
    switch (status) {
      case ClStatus::Success: return "CL_SUCCESS";
      case ClStatus::MemObjectAllocationFailure:
        return "CL_MEM_OBJECT_ALLOCATION_FAILURE";
      case ClStatus::OutOfResources: return "CL_OUT_OF_RESOURCES";
      case ClStatus::ProfilingInfoNotAvailable:
        return "CL_PROFILING_INFO_NOT_AVAILABLE";
      case ClStatus::ExecStatusErrorForEventsInWaitList:
        return "CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST";
      case ClStatus::InvalidValue: return "CL_INVALID_VALUE";
      case ClStatus::InvalidKernelName: return "CL_INVALID_KERNEL_NAME";
      case ClStatus::InvalidArgIndex: return "CL_INVALID_ARG_INDEX";
      case ClStatus::InvalidArgValue: return "CL_INVALID_ARG_VALUE";
      case ClStatus::InvalidKernelArgs: return "CL_INVALID_KERNEL_ARGS";
      case ClStatus::InvalidWorkGroupSize:
        return "CL_INVALID_WORK_GROUP_SIZE";
      case ClStatus::InvalidEventWaitList:
        return "CL_INVALID_EVENT_WAIT_LIST";
      case ClStatus::InvalidEvent: return "CL_INVALID_EVENT";
      case ClStatus::InvalidOperation: return "CL_INVALID_OPERATION";
      case ClStatus::SoffTransientFault: return "SOFF_TRANSIENT_FAULT";
      case ClStatus::SoffCommandCancelled:
        return "SOFF_COMMAND_CANCELLED";
      case ClStatus::SoffLaunchTimeout: return "SOFF_LAUNCH_TIMEOUT";
    }
    return "CL_UNKNOWN_ERROR";
}

} // namespace soff

namespace soff::detail
{

void
assertFail(const char *cond, const char *file, int line,
           const std::string &message)
{
    std::fprintf(stderr, "SOFF internal error: %s\n  condition: %s\n"
                 "  at %s:%d\n", message.c_str(), cond, file, line);
    std::abort();
}

} // namespace soff::detail
