#include "support/json.hpp"

#include <cmath>
#include <cstdio>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace soff::support
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20)
                out += strFormat("\\u%04x", c);
            else
                out += static_cast<char>(c);
        }
    }
    return out;
}

void
JsonWriter::newlineIndent(size_t depth)
{
    out_ += '\n';
    out_.append(2 * depth, ' ');
}

void
JsonWriter::beforeValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // the key already positioned us
    }
    if (stack_.empty()) {
        SOFF_ASSERT(out_.empty(), "json: second root value");
        return;
    }
    SOFF_ASSERT(stack_.back() == Scope::Array,
                "json: value inside an object requires a key");
    if (hasElems_.back())
        out_ += ',';
    hasElems_.back() = true;
    newlineIndent(stack_.size());
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    SOFF_ASSERT(!stack_.empty() && stack_.back() == Scope::Object,
                "json: key outside an object");
    SOFF_ASSERT(!pendingKey_, "json: key after key");
    if (hasElems_.back())
        out_ += ',';
    hasElems_.back() = true;
    newlineIndent(stack_.size());
    out_ += '"';
    out_ += jsonEscape(k);
    out_ += "\": ";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out_ += '{';
    stack_.push_back(Scope::Object);
    hasElems_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    SOFF_ASSERT(!stack_.empty() && stack_.back() == Scope::Object,
                "json: endObject without beginObject");
    bool had = hasElems_.back();
    stack_.pop_back();
    hasElems_.pop_back();
    if (had)
        newlineIndent(stack_.size());
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out_ += '[';
    stack_.push_back(Scope::Array);
    hasElems_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    SOFF_ASSERT(!stack_.empty() && stack_.back() == Scope::Array,
                "json: endArray without beginArray");
    bool had = hasElems_.back();
    stack_.pop_back();
    hasElems_.pop_back();
    if (had)
        newlineIndent(stack_.size());
    out_ += ']';
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    beforeValue();
    out_ += '"';
    out_ += jsonEscape(v);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    if (!std::isfinite(v))
        out_ += "null"; // JSON has no NaN/Inf literal
    else
        out_ += strFormat("%.6g", v);
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    beforeValue();
    out_ += strFormat("%llu", static_cast<unsigned long long>(v));
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    beforeValue();
    out_ += strFormat("%lld", static_cast<long long>(v));
    return *this;
}

void
JsonWriter::writeFile(const std::string &path) const
{
    SOFF_ASSERT(closed(), "json: writeFile on an unterminated document");
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        throw RuntimeError("cannot write '" + path + "'");
    bool ok = std::fwrite(out_.data(), 1, out_.size(), f) == out_.size();
    ok = std::fputc('\n', f) != EOF && ok;
    ok = std::fclose(f) == 0 && ok;
    if (!ok)
        throw RuntimeError("short write to '" + path + "'");
}

} // namespace soff::support
