/**
 * @file
 * Error handling primitives shared by every SOFF module.
 *
 * Following the gem5 convention, we distinguish two failure classes:
 *  - CompileError / RuntimeError: the *user's* input (kernel source, API
 *    usage) is at fault. These are reported as exceptions so the runtime
 *    can surface them as OpenCL-style error codes.
 *  - internal assertion failures (soffAssert): a SOFF bug; aborts.
 */
#pragma once

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace soff
{

/** Error raised when kernel source code fails to compile. */
class CompileError : public std::runtime_error
{
  public:
    explicit CompileError(const std::string &message)
        : std::runtime_error(message)
    {}
};

/** Error raised when a host-API call or a kernel execution misbehaves. */
class RuntimeError : public std::runtime_error
{
  public:
    explicit RuntimeError(const std::string &message)
        : std::runtime_error(message)
    {}
};

/**
 * OpenCL-style status codes the runtime attaches to its errors (the
 * subset this reproduction can raise; numeric values match cl.h).
 */
enum class ClStatus : int
{
    Success = 0,
    MemObjectAllocationFailure = -4,
    OutOfResources = -5,
    ProfilingInfoNotAvailable = -7,
    /** Propagated to an event whose wait list contains a failed event
     *  (cl.h: CL_EXEC_STATUS_ERROR_FOR_EVENTS_IN_WAIT_LIST). */
    ExecStatusErrorForEventsInWaitList = -14,
    InvalidValue = -30,
    InvalidKernelName = -46,
    InvalidArgIndex = -49,
    InvalidArgValue = -50,
    InvalidKernelArgs = -52,
    InvalidWorkGroupSize = -54,
    InvalidEventWaitList = -57,
    InvalidEvent = -58,
    InvalidOperation = -59,

    // SOFF extension statuses (outside the cl.h range, like vendor
    // extensions): failure classes the reliability layer distinguishes
    // that core OpenCL folds into CL_OUT_OF_RESOURCES.
    /** An injected transient runtime fault exhausted its retry budget
     *  (or no retry policy was configured). */
    SoffTransientFault = -1100,
    /** The command was cancelled (Event::cancel / cancelAll). */
    SoffCommandCancelled = -1101,
    /** The per-launch watchdog cycle budget expired. */
    SoffLaunchTimeout = -1102,
};

/** The cl.h macro name for a status ("CL_OUT_OF_RESOURCES", ...). */
const char *clStatusName(ClStatus status);

namespace detail
{
[[noreturn]] void assertFail(const char *cond, const char *file, int line,
                             const std::string &message);
} // namespace detail

} // namespace soff

/**
 * Internal invariant check. Unlike standard assert(), this is always
 * compiled in: the simulator's correctness claims depend on these checks.
 */
#define SOFF_ASSERT(cond, msg)                                              \
    do {                                                                    \
        if (!(cond))                                                        \
            ::soff::detail::assertFail(#cond, __FILE__, __LINE__, (msg));   \
    } while (false)
