/**
 * @file
 * A small streaming JSON writer shared by every exporter in the tree
 * (bench result files, the SOFF_STATS structured export, the Chrome
 * trace-event exporter). Keys are emitted in insertion order — stable
 * across runs by construction — and every string goes through one
 * escaping routine, replacing the hand-rolled fprintf concatenation
 * the bench binaries used to carry.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace soff::support
{

/** Escapes `s` for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/**
 * Streaming writer with structural bookkeeping: commas and newlines
 * are inserted automatically and nesting is tracked, so misuse trips
 * an assertion instead of producing malformed output. The document
 * accumulates in memory (reports are small); writeFile() dumps it in
 * one call.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emits an object key; the next value()/begin*() is its value. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(bool v);
    JsonWriter &value(double v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int64_t v);
    JsonWriter &value(int v) { return value(static_cast<int64_t>(v)); }
    JsonWriter &value(unsigned v)
    {
        return value(static_cast<uint64_t>(v));
    }

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &k, T v)
    {
        key(k);
        return value(v);
    }

    bool closed() const { return depth() == 0 && !out_.empty(); }
    size_t depth() const { return stack_.size(); }

    /** The document so far (call after the root container is closed). */
    const std::string &str() const { return out_; }

    /** Writes the document to `path`; throws RuntimeError on failure. */
    void writeFile(const std::string &path) const;

  private:
    enum class Scope : uint8_t { Object, Array };

    void beforeValue();
    void newlineIndent(size_t depth);

    std::string out_;
    std::vector<Scope> stack_;
    std::vector<bool> hasElems_;
    bool pendingKey_ = false;
};

} // namespace soff::support
