/**
 * @file
 * Source locations and the diagnostic engine used by the OpenCL C frontend.
 */
#pragma once

#include <string>
#include <vector>

namespace soff
{

/** A position in an OpenCL C source string (1-based line/column). */
struct SourceLoc
{
    int line = 0;
    int column = 0;

    bool valid() const { return line > 0; }
    std::string str() const;
};

/** Severity of a reported diagnostic. */
enum class DiagKind
{
    Error,
    Warning,
    Note,
};

/** One reported diagnostic message. */
struct Diagnostic
{
    DiagKind kind = DiagKind::Error;
    SourceLoc loc;
    std::string message;

    std::string str() const;
};

/**
 * Collects diagnostics during compilation. The frontend reports here and
 * keeps going where possible; the driver checks hasErrors() at phase
 * boundaries and raises CompileError with the rendered report.
 */
class DiagnosticEngine
{
  public:
    void error(SourceLoc loc, const std::string &message);
    void warning(SourceLoc loc, const std::string &message);
    void note(SourceLoc loc, const std::string &message);

    bool hasErrors() const { return numErrors_ > 0; }
    int numErrors() const { return numErrors_; }
    const std::vector<Diagnostic> &diagnostics() const { return diags_; }

    /** Renders all diagnostics as a newline-separated report. */
    std::string report() const;

    /** Throws CompileError with the rendered report if any error exists. */
    void checkNoErrors() const;

  private:
    std::vector<Diagnostic> diags_;
    int numErrors_ = 0;
};

} // namespace soff
