/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * The benchmark suite and the property tests must be bit-reproducible
 * across platforms, so we use a fixed SplitMix64 generator rather than
 * std::mt19937 + distribution objects (whose outputs are not guaranteed
 * to be identical across standard library implementations).
 */
#pragma once

#include <cstdint>

namespace soff
{

/** SplitMix64: tiny, fast, high-quality 64-bit PRNG. */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    uint64_t nextBelow(uint64_t bound) { return next() % bound; }

    /** Uniform int32 in [lo, hi]. */
    int32_t
    nextInt(int32_t lo, int32_t hi)
    {
        return lo + static_cast<int32_t>(
            nextBelow(static_cast<uint64_t>(hi - lo) + 1));
    }

    /** Uniform float in [0, 1). */
    float
    nextFloat()
    {
        return static_cast<float>(next() >> 40) /
               static_cast<float>(1ULL << 24);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) /
               static_cast<double>(1ULL << 53);
    }

  private:
    uint64_t state_;
};

} // namespace soff
