/**
 * @file
 * The 19 SPEC-ACCEL-like applications (paper Table II, upper half).
 * "The applications in SPEC ACCEL have various complicated features of
 * OpenCL" (§VI-A): local memory, work-group barriers, atomics,
 * indirect pointers, divergent loops. Three of them (122.cfd,
 * 128.heartwall, 140.bplustree) are deliberately large enough to
 * exceed the Arria 10's resources, reproducing the paper's "IR" rows.
 */
#include "benchsuite/apps_common.hpp"

#include "support/strings.hpp"

namespace soff::benchsuite
{

namespace
{

// ----------------------------------------------------------------------
// 101.tpacf — angular correlation histogram: local memory + barrier +
// atomics (Table II: L, B, A).
// ----------------------------------------------------------------------
App
makeTpacf()
{
    App app;
    app.name = "101.tpacf";
    app.suite = "SPEC ACCEL";
    app.source = R"CL(
__kernel void tpacf(__global float* dots, __global int* hist, int bins,
                    int n) {
  __local int lhist[8];
  int l = get_local_id(0);
  int g = get_global_id(0);
  if (l < bins) lhist[l] = 0;
  barrier(CLK_LOCAL_MEM_FENCE);
  float d = dots[g % n];
  int bin = (int)(fabs(d) * (float)bins);
  if (bin >= bins) bin = bins - 1;
  atomic_add(&lhist[bin], 1);
  barrier(CLK_LOCAL_MEM_FENCE);
  if (l < bins) atomic_add(&hist[l], lhist[l]);
}
)CL";
    app.host = [](BenchContext &ctx) {
        const int n = 512, bins = 8;
        auto dots = randomFloats(201, n, -1.0f, 1.0f);
        rt::Buffer bd = upload(ctx, dots);
        rt::Buffer bh = uploadZeros<int32_t>(ctx, bins);
        ctx.launch("tpacf", range1d(n, 64), {bd, bh, bins, n});
        auto got = download<int32_t>(ctx, bh, bins);
        std::vector<int32_t> expect(bins, 0);
        for (int i = 0; i < n; ++i) {
            int bin = static_cast<int>(
                std::fabs(dots[i]) * static_cast<float>(bins));
            if (bin >= bins)
                bin = bins - 1;
            ++expect[bin];
        }
        return verifyInts(got, expect);
    };
    return app;
}

// ----------------------------------------------------------------------
// 103.stencil — 2D 5-point Jacobi iteration.
// ----------------------------------------------------------------------
App
makeStencil()
{
    App app;
    app.name = "103.stencil";
    app.suite = "SPEC ACCEL";
    app.source = R"CL(
__kernel void stencil(__global float* in, __global float* out, int w,
                      int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  if (x < 1 || x >= w - 1 || y < 1 || y >= h - 1) {
    out[y * w + x] = in[y * w + x];
    return;
  }
  out[y * w + x] = 0.2f * (in[y * w + x] + in[y * w + x - 1] +
                           in[y * w + x + 1] + in[(y - 1) * w + x] +
                           in[(y + 1) * w + x]);
}
)CL";
    app.host = [](BenchContext &ctx) {
        const int w = 64, h = 32;
        size_t total = static_cast<size_t>(w) * h;
        auto in = randomFloats(202, total);
        rt::Buffer bin = upload(ctx, in);
        rt::Buffer bout = uploadZeros<float>(ctx, total);
        ctx.launch("stencil", range2d(w, h, 16, 4), {bin, bout, w, h});
        auto got = download<float>(ctx, bout, total);
        std::vector<float> expect(total);
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                int i = y * w + x;
                if (x < 1 || x >= w - 1 || y < 1 || y >= h - 1) {
                    expect[i] = in[i];
                } else {
                    expect[i] = 0.2f * (in[i] + in[i - 1] + in[i + 1] +
                                        in[i - w] + in[i + w]);
                }
            }
        }
        return verifyFloats(got, expect);
    };
    return app;
}

// ----------------------------------------------------------------------
// 104.lbm — lattice-Boltzmann-style streaming with obstacle flags.
// ----------------------------------------------------------------------
App
makeLbm()
{
    App app;
    app.name = "104.lbm";
    app.suite = "SPEC ACCEL";
    app.source = R"CL(
__kernel void lbm(__global float* f0, __global float* f1,
                  __global int* obstacle, int n) {
  int i = get_global_id(0);
  int left = i == 0 ? n - 1 : i - 1;
  int right = i == n - 1 ? 0 : i + 1;
  float rho = f0[left] + f0[i] + f0[right];
  float u = (f0[right] - f0[left]) / (rho + 0.001f);
  if (obstacle[i] != 0) {
    f1[i] = f0[i];
  } else {
    float eq = rho * (0.333f + 0.5f * u);
    f1[i] = f0[i] + 0.6f * (eq - f0[i]);
  }
}
)CL";
    app.host = [](BenchContext &ctx) {
        const int n = 1024;
        auto f0 = randomFloats(203, n, 0.1f, 1.1f);
        auto obstacle = randomInts(204, n, 0, 4); // ~20% obstacles
        for (auto &o : obstacle)
            o = o == 0 ? 1 : 0;
        rt::Buffer b0 = upload(ctx, f0);
        rt::Buffer b1 = uploadZeros<float>(ctx, n);
        rt::Buffer bo = upload(ctx, obstacle);
        ctx.launch("lbm", range1d(n, 64), {b0, b1, bo, n});
        auto got = download<float>(ctx, b1, n);
        std::vector<float> expect(n);
        for (int i = 0; i < n; ++i) {
            int left = i == 0 ? n - 1 : i - 1;
            int right = i == n - 1 ? 0 : i + 1;
            float rho = f0[left] + f0[i] + f0[right];
            float u = (f0[right] - f0[left]) / (rho + 0.001f);
            if (obstacle[i] != 0) {
                expect[i] = f0[i];
            } else {
                float eq = rho * (0.333f + 0.5f * u);
                expect[i] = f0[i] + 0.6f * (eq - f0[i]);
            }
        }
        return verifyFloats(got, expect);
    };
    return app;
}

// ----------------------------------------------------------------------
// 110.fft — radix-2 butterfly stages, host-driven.
// ----------------------------------------------------------------------
App
makeFft()
{
    App app;
    app.name = "110.fft";
    app.suite = "SPEC ACCEL";
    app.source = R"CL(
__kernel void fft_stage(__global float* re, __global float* im, int n,
                        int hw) {
  int t = get_global_id(0);
  int pair = (t / hw) * (2 * hw) + (t % hw);
  int match = pair + hw;
  float angle = -3.14159265f * (float)(t % hw) / (float)hw;
  float wr = cos(angle);
  float wi = sin(angle);
  float tr = wr * re[match] - wi * im[match];
  float ti = wr * im[match] + wi * re[match];
  re[match] = re[pair] - tr;
  im[match] = im[pair] - ti;
  re[pair] = re[pair] + tr;
  im[pair] = im[pair] + ti;
}
)CL";
    app.host = [](BenchContext &ctx) {
        const int n = 256;
        auto re = randomFloats(205, n, -1.0f, 1.0f);
        auto im = randomFloats(206, n, -1.0f, 1.0f);
        std::vector<float> hre = re, him = im;
        rt::Buffer bre = upload(ctx, re);
        rt::Buffer bim = upload(ctx, im);
        for (int half = 1; half < n; half *= 2) {
            ctx.launch("fft_stage", range1d(n / 2, 32),
                       {bre, bim, n, half});
            // Host oracle stage.
            for (int t = 0; t < n / 2; ++t) {
                int pair = (t / half) * (2 * half) + (t % half);
                int match = pair + half;
                float angle = -3.14159265f *
                              static_cast<float>(t % half) /
                              static_cast<float>(half);
                float wr = std::cos(angle);
                float wi = std::sin(angle);
                float tr = wr * hre[match] - wi * him[match];
                float ti = wr * him[match] + wi * hre[match];
                hre[match] = hre[pair] - tr;
                him[match] = him[pair] - ti;
                hre[pair] += tr;
                him[pair] += ti;
            }
        }
        auto got_re = download<float>(ctx, bre, n);
        auto got_im = download<float>(ctx, bim, n);
        return verifyFloats(got_re, hre, 1e-2f) &&
               verifyFloats(got_im, him, 1e-2f);
    };
    return app;
}

// ----------------------------------------------------------------------
// 112.spmv — CSR sparse matrix-vector product (irregular gathers).
// ----------------------------------------------------------------------
App
makeSpmv()
{
    App app;
    app.name = "112.spmv";
    app.suite = "SPEC ACCEL";
    app.source = R"CL(
__kernel void spmv(__global int* rowptr, __global int* colidx,
                   __global float* val, __global float* x,
                   __global float* y) {
  int row = get_global_id(0);
  float acc = 0.0f;
  int start = rowptr[row];
  int end = rowptr[row + 1];
  for (int k = start; k < end; k++)
    acc += val[k] * x[colidx[k]];
  y[row] = acc;
}
)CL";
    app.host = [](BenchContext &ctx) {
        const int rows = 512, cols = 512;
        SplitMix64 rng(207);
        std::vector<int32_t> rowptr(rows + 1, 0);
        std::vector<int32_t> colidx;
        std::vector<float> val;
        for (int r = 0; r < rows; ++r) {
            int nnz = rng.nextInt(2, 10);
            for (int k = 0; k < nnz; ++k) {
                colidx.push_back(rng.nextInt(0, cols - 1));
                val.push_back(rng.nextFloat());
            }
            rowptr[r + 1] = static_cast<int32_t>(colidx.size());
        }
        auto x = randomFloats(208, cols);
        rt::Buffer brp = upload(ctx, rowptr);
        rt::Buffer bci = upload(ctx, colidx);
        rt::Buffer bv = upload(ctx, val);
        rt::Buffer bx = upload(ctx, x);
        rt::Buffer by = uploadZeros<float>(ctx, rows);
        ctx.launch("spmv", range1d(rows, 64), {brp, bci, bv, bx, by});
        auto got = download<float>(ctx, by, rows);
        std::vector<float> expect(rows, 0.0f);
        for (int r = 0; r < rows; ++r) {
            float acc = 0.0f;
            for (int k = rowptr[r]; k < rowptr[r + 1]; ++k)
                acc += val[k] * x[colidx[k]];
            expect[r] = acc;
        }
        return verifyFloats(got, expect);
    };
    return app;
}

// ----------------------------------------------------------------------
// 114.mriq — MRI Q computation (trigonometry-heavy inner loop).
// ----------------------------------------------------------------------
App
makeMriq()
{
    App app;
    app.name = "114.mriq";
    app.suite = "SPEC ACCEL";
    app.source = R"CL(
__kernel void mriq(__global float* x, __global float* kx,
                   __global float* phi, __global float* qr,
                   __global float* qi, int nk) {
  int i = get_global_id(0);
  float xi = x[i];
  float accr = 0.0f;
  float acci = 0.0f;
  for (int k = 0; k < nk; k++) {
    float arg = 6.2831853f * kx[k] * xi;
    accr += phi[k] * cos(arg);
    acci += phi[k] * sin(arg);
  }
  qr[i] = accr;
  qi[i] = acci;
}
)CL";
    app.host = [](BenchContext &ctx) {
        const int n = 256, nk = 32;
        auto x = randomFloats(209, n, -1.0f, 1.0f);
        auto kx = randomFloats(210, nk, -0.5f, 0.5f);
        auto phi = randomFloats(211, nk);
        rt::Buffer bx = upload(ctx, x);
        rt::Buffer bkx = upload(ctx, kx);
        rt::Buffer bphi = upload(ctx, phi);
        rt::Buffer bqr = uploadZeros<float>(ctx, n);
        rt::Buffer bqi = uploadZeros<float>(ctx, n);
        ctx.launch("mriq", range1d(n, 64), {bx, bkx, bphi, bqr, bqi, nk});
        auto got_r = download<float>(ctx, bqr, n);
        auto got_i = download<float>(ctx, bqi, n);
        std::vector<float> er(n), ei(n);
        for (int i = 0; i < n; ++i) {
            float accr = 0, acci = 0;
            for (int k = 0; k < nk; ++k) {
                float arg = 6.2831853f * kx[k] * x[i];
                accr += phi[k] * std::cos(arg);
                acci += phi[k] * std::sin(arg);
            }
            er[i] = accr;
            ei[i] = acci;
        }
        return verifyFloats(got_r, er, 1e-2f) &&
               verifyFloats(got_i, ei, 1e-2f);
    };
    return app;
}

// ----------------------------------------------------------------------
// 116.histo — global atomic histogram (Table II: L, B, A).
// ----------------------------------------------------------------------
App
makeHisto()
{
    App app;
    app.name = "116.histo";
    app.suite = "SPEC ACCEL";
    app.source = R"CL(
__kernel void histo(__global int* img, __global int* hist, int bins,
                    int n) {
  __local int lh[32];
  int l = get_local_id(0);
  if (l < bins) lh[l] = 0;
  barrier(CLK_LOCAL_MEM_FENCE);
  int i = get_global_id(0);
  if (i < n) atomic_add(&lh[img[i] % bins], 1);
  barrier(CLK_LOCAL_MEM_FENCE);
  if (l < bins) atomic_add(&hist[l], lh[l]);
}
)CL";
    app.host = [](BenchContext &ctx) {
        const int n = 1024, bins = 32;
        auto img = randomInts(212, n, 0, 4095);
        rt::Buffer bi = upload(ctx, img);
        rt::Buffer bh = uploadZeros<int32_t>(ctx, bins);
        ctx.launch("histo", range1d(n, 64), {bi, bh, bins, n});
        auto got = download<int32_t>(ctx, bh, bins);
        std::vector<int32_t> expect(bins, 0);
        for (int32_t v : img)
            ++expect[v % bins];
        return verifyInts(got, expect);
    };
    return app;
}

// ----------------------------------------------------------------------
// 117.bfs — one breadth-first relaxation step (atomics, irregular).
// ----------------------------------------------------------------------
App
makeBfs()
{
    App app;
    app.name = "117.bfs";
    app.suite = "SPEC ACCEL";
    app.source = R"CL(
__kernel void bfs_step(__global int* edges_off, __global int* edges_dst,
                       __global int* dist, __global int* changed,
                       int level) {
  int u = get_global_id(0);
  if (dist[u] != level) return;
  int start = edges_off[u];
  int end = edges_off[u + 1];
  for (int e = start; e < end; e++) {
    int v = edges_dst[e];
    int old = atomic_min(&dist[v], level + 1);
    if (old > level + 1) atomic_xchg(&changed[0], 1);
  }
}
)CL";
    app.host = [](BenchContext &ctx) {
        const int n = 256;
        SplitMix64 rng(213);
        std::vector<int32_t> off(n + 1, 0);
        std::vector<int32_t> dst;
        for (int u = 0; u < n; ++u) {
            int deg = rng.nextInt(1, 6);
            for (int e = 0; e < deg; ++e)
                dst.push_back(rng.nextInt(0, n - 1));
            off[u + 1] = static_cast<int32_t>(dst.size());
        }
        const int32_t inf = 1 << 20;
        std::vector<int32_t> dist(n, inf);
        dist[0] = 0;
        rt::Buffer boff = upload(ctx, off);
        rt::Buffer bdst = upload(ctx, dst);
        rt::Buffer bdist = upload(ctx, dist);
        rt::Buffer bch = uploadZeros<int32_t>(ctx, 16);
        for (int level = 0; level < 4; ++level) {
            ctx.launch("bfs_step", range1d(n, 32),
                       {boff, bdst, bdist, bch, level});
        }
        auto got = download<int32_t>(ctx, bdist, n);
        // Host oracle: same bounded-level BFS.
        std::vector<int32_t> expect(n, inf);
        expect[0] = 0;
        for (int level = 0; level < 4; ++level) {
            std::vector<int32_t> snapshot = expect;
            for (int u = 0; u < n; ++u) {
                if (snapshot[u] != level)
                    continue;
                for (int e = off[u]; e < off[u + 1]; ++e) {
                    int v = dst[e];
                    expect[v] = std::min(expect[v], level + 1);
                }
            }
        }
        return verifyInts(got, expect);
    };
    return app;
}

// ----------------------------------------------------------------------
// 118.cutcp — cutoff Coulomb potential (Table II: L, B).
// ----------------------------------------------------------------------
App
makeCutcp()
{
    App app;
    app.name = "118.cutcp";
    app.suite = "SPEC ACCEL";
    app.source = R"CL(
__kernel void cutcp(__global float* atoms, __global float* grid,
                    int natoms, float cutoff2) {
  __local float ax[64];
  __local float aq[64];
  int l = get_local_id(0);
  int g = get_global_id(0);
  // Stage atom data in local memory, one tile per group.
  if (l < natoms) {
    ax[l] = atoms[2 * l];
    aq[l] = atoms[2 * l + 1];
  }
  barrier(CLK_LOCAL_MEM_FENCE);
  float px = (float)g * 0.05f;
  float e = 0.0f;
  for (int a = 0; a < natoms; a++) {
    float dx = px - ax[a];
    float r2 = dx * dx;
    if (r2 < cutoff2)
      e += aq[a] * rsqrt(r2 + 0.01f);
  }
  grid[g] = e;
}
)CL";
    app.host = [](BenchContext &ctx) {
        const int n = 256, natoms = 48;
        auto atoms = randomFloats(214, 2 * natoms, 0.0f, 12.8f);
        const float cutoff2 = 4.0f;
        rt::Buffer ba = upload(ctx, atoms);
        rt::Buffer bg = uploadZeros<float>(ctx, n);
        ctx.launch("cutcp", range1d(n, 64), {ba, bg, natoms, cutoff2});
        auto got = download<float>(ctx, bg, n);
        std::vector<float> expect(n, 0.0f);
        for (int g = 0; g < n; ++g) {
            float px = static_cast<float>(g) * 0.05f;
            float e = 0.0f;
            for (int a = 0; a < natoms; ++a) {
                float dx = px - atoms[2 * a];
                float r2 = dx * dx;
                if (r2 < cutoff2)
                    e += atoms[2 * a + 1] / std::sqrt(r2 + 0.01f);
            }
            expect[g] = e;
        }
        return verifyFloats(got, expect, 1e-2f);
    };
    return app;
}

// ----------------------------------------------------------------------
// 120.kmeans — nearest-centroid assignment.
// ----------------------------------------------------------------------
App
makeKmeans()
{
    App app;
    app.name = "120.kmeans";
    app.suite = "SPEC ACCEL";
    app.source = R"CL(
__kernel void kmeans_assign(__global float* points,
                            __global float* centroids,
                            __global int* assign, int k, int dim) {
  int i = get_global_id(0);
  int best = 0;
  float best_d = 1e30f;
  for (int c = 0; c < k; c++) {
    float d = 0.0f;
    for (int j = 0; j < dim; j++) {
      float diff = points[i * dim + j] - centroids[c * dim + j];
      d += diff * diff;
    }
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  assign[i] = best;
}
)CL";
    app.host = [](BenchContext &ctx) {
        const int n = 512, k = 8, dim = 4;
        auto points = randomFloats(215, static_cast<size_t>(n) * dim);
        auto centroids = randomFloats(216, static_cast<size_t>(k) * dim);
        rt::Buffer bp = upload(ctx, points);
        rt::Buffer bc = upload(ctx, centroids);
        rt::Buffer basn = uploadZeros<int32_t>(ctx, n);
        ctx.launch("kmeans_assign", range1d(n, 64),
                   {bp, bc, basn, k, dim});
        auto got = download<int32_t>(ctx, basn, n);
        std::vector<int32_t> expect(n);
        for (int i = 0; i < n; ++i) {
            int best = 0;
            float best_d = 1e30f;
            for (int c = 0; c < k; ++c) {
                float d = 0.0f;
                for (int j = 0; j < dim; ++j) {
                    float diff = points[i * dim + j] -
                                 centroids[c * dim + j];
                    d += diff * diff;
                }
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            expect[i] = best;
        }
        return verifyInts(got, expect);
    };
    return app;
}

// ----------------------------------------------------------------------
// 121.lavamd — particle interactions within boxes (Table II: L, B).
// ----------------------------------------------------------------------
App
makeLavamd()
{
    App app;
    app.name = "121.lavamd";
    app.suite = "SPEC ACCEL";
    app.source = R"CL(
__kernel void lavamd(__global float* pos, __global float* force,
                     int per_box) {
  __local float lpos[32];
  int l = get_local_id(0);
  int g = get_global_id(0);
  lpos[l] = pos[g];
  barrier(CLK_LOCAL_MEM_FENCE);
  float p = lpos[l];
  float f = 0.0f;
  for (int j = 0; j < per_box; j++) {
    if (j == l) continue;
    float d = p - lpos[j];
    float r2 = d * d + 0.05f;
    f += d * exp(-r2) / r2;
  }
  force[g] = f;
}
)CL";
    app.host = [](BenchContext &ctx) {
        const int boxes = 8, per_box = 32;
        const int n = boxes * per_box;
        auto pos = randomFloats(217, n, 0.0f, 2.0f);
        rt::Buffer bp = upload(ctx, pos);
        rt::Buffer bf = uploadZeros<float>(ctx, n);
        ctx.launch("lavamd", range1d(n, per_box), {bp, bf, per_box});
        auto got = download<float>(ctx, bf, n);
        std::vector<float> expect(n, 0.0f);
        for (int b = 0; b < boxes; ++b) {
            for (int l = 0; l < per_box; ++l) {
                float p = pos[b * per_box + l];
                float f = 0.0f;
                for (int j = 0; j < per_box; ++j) {
                    if (j == l)
                        continue;
                    float d = p - pos[b * per_box + j];
                    float r2 = d * d + 0.05f;
                    f += d * std::exp(-r2) / r2;
                }
                expect[b * per_box + l] = f;
            }
        }
        return verifyFloats(got, expect, 1e-2f);
    };
    return app;
}

// ----------------------------------------------------------------------
// 122.cfd — unstructured-grid flux computation. Deliberately large
// (double-precision transcendental-heavy flux model across three
// kernels) so a single datapath instance exceeds the Arria 10
// (Table II: SOFF "IR"). Verified functionally with the oracle engine.
// ----------------------------------------------------------------------
App
makeCfd()
{
    App app;
    app.name = "122.cfd";
    app.suite = "SPEC ACCEL";
    app.expectInsufficientResources = true;
    std::string flux_terms;
    for (int t = 0; t < 40; ++t) {
        flux_terms += strFormat(
            "  acc += pow(v + %d.5, 1.0 + w * 0.00%d) + "
            "exp(w * 0.0%d) - log(v + %d.0) * sin(w + %d.0);\n",
            t + 1, t % 9 + 1, t % 9 + 1, t + 2, t);
    }
    app.source =
        "__kernel void cfd_flux(__global double* vin,\n"
        "                       __global double* win,\n"
        "                       __global double* out) {\n"
        "  int i = get_global_id(0);\n"
        "  double v = vin[i];\n"
        "  double w = win[i];\n"
        "  double acc = 0.0;\n" +
        flux_terms +
        "  out[i] = acc;\n"
        "}\n"
        "__kernel void cfd_update(__global double* out,\n"
        "                         __global double* state) {\n"
        "  int i = get_global_id(0);\n" +
        flux_terms.substr(0, 0) +
        "  double v = out[i];\n"
        "  double w = state[i];\n"
        "  double acc = 0.0;\n" +
        flux_terms +
        "  state[i] = acc * 0.0001 + w;\n"
        "}\n";
    app.host = [](BenchContext &ctx) {
        const int n = 64;
        std::vector<double> v(n), w(n);
        SplitMix64 rng(218);
        for (int i = 0; i < n; ++i) {
            v[i] = rng.nextDouble();
            w[i] = rng.nextDouble();
        }
        rt::Buffer bv = upload(ctx, v);
        rt::Buffer bw = upload(ctx, w);
        rt::Buffer bo = uploadZeros<double>(ctx, n);
        ctx.launch("cfd_flux", range1d(n, 16), {bv, bw, bo});
        ctx.launch("cfd_update", range1d(n, 16), {bo, bw});
        auto got = download<double>(ctx, bw, n);
        // Host oracle mirroring the generated flux expression.
        auto flux = [](double vv, double ww) {
            double acc = 0.0;
            for (int t = 0; t < 40; ++t) {
                double c1 = t + 1 + 0.5;
                int d = t % 9 + 1;
                acc += std::pow(vv + c1, 1.0 + ww * (d * 0.001)) +
                       std::exp(ww * (d * 0.01)) -
                       std::log(vv + t + 2.0) * std::sin(ww + t);
            }
            return acc;
        };
        bool ok = true;
        for (int i = 0; i < n; ++i) {
            double o = flux(v[i], w[i]);
            double expect = flux(o, w[i]) * 0.0001 + w[i];
            ok &= std::fabs(got[i] - expect) <
                  1e-6 * std::max(1.0, std::fabs(expect));
        }
        return ok;
    };
    return app;
}

// ----------------------------------------------------------------------
// 123.nw — Needleman-Wunsch wavefront with barriers in a loop
// (Table II: L, B).
// ----------------------------------------------------------------------
App
makeNw()
{
    App app;
    app.name = "123.nw";
    app.suite = "SPEC ACCEL";
    app.source = R"CL(
__kernel void nw(__global int* score, __global int* ref, int n,
                 int penalty) {
  // One work-group processes the matrix in anti-diagonal waves.
  __local int tile[17][17];
  int l = get_local_id(0);
  int g = get_group_id(0);
  int base = g * 16;
  // Load borders.
  tile[0][l + 1] = score[base + l + 1];
  tile[l + 1][0] = score[(n + 1) * (base + l + 1)];
  if (l == 0) tile[0][0] = score[0];
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int wave = 0; wave < 31; wave++) {
    int i = wave - l;
    if (i >= 0 && i < 16) {
      int r = l + 1;
      int c = i + 1;
      int m = tile[r - 1][c - 1] +
              ref[(base + r - 1) * n + (base + c - 1)];
      int del = tile[r - 1][c] - penalty;
      int ins = tile[r][c - 1] - penalty;
      int best = m > del ? m : del;
      if (ins > best) best = ins;
      tile[r][c] = best;
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  for (int c = 0; c < 16; c++)
    score[(base + l + 1) * (n + 1) + base + c + 1] = tile[l + 1][c + 1];
}
)CL";
    app.host = [](BenchContext &ctx) {
        const int n = 16, penalty = 2; // one 16x16 tile
        std::vector<int32_t> score((n + 1) * (n + 1), 0);
        auto ref = randomInts(219, static_cast<size_t>(n) * n, -4, 4);
        for (int i = 0; i <= n; ++i) {
            score[i] = -i * penalty;
            score[i * (n + 1)] = -i * penalty;
        }
        rt::Buffer bs = upload(ctx, score);
        rt::Buffer br = upload(ctx, ref);
        ctx.launch("nw", range1d(16, 16), {bs, br, n, penalty});
        auto got = download<int32_t>(ctx, bs, score.size());
        // Host oracle.
        std::vector<int32_t> expect = score;
        for (int r = 1; r <= n; ++r) {
            for (int c = 1; c <= n; ++c) {
                int m = expect[(r - 1) * (n + 1) + c - 1] +
                        ref[(r - 1) * n + (c - 1)];
                int del = expect[(r - 1) * (n + 1) + c] - penalty;
                int ins = expect[r * (n + 1) + c - 1] - penalty;
                expect[r * (n + 1) + c] =
                    std::max(m, std::max(del, ins));
            }
        }
        return verifyInts(got, expect);
    };
    return app;
}

// ----------------------------------------------------------------------
// 124.hotspot — thermal simulation tile with barrier in a loop
// (Table II: L, B).
// ----------------------------------------------------------------------
App
makeHotspot()
{
    App app;
    app.name = "124.hotspot";
    app.suite = "SPEC ACCEL";
    app.source = R"CL(
__kernel void hotspot(__global float* temp, __global float* power,
                      __global float* out, int w, int steps) {
  __local float t[32];
  int l = get_local_id(0);
  int g = get_global_id(0);
  t[l] = temp[g];
  barrier(CLK_LOCAL_MEM_FENCE);
  float cur = t[l];
  for (int s = 0; s < steps; s++) {
    float left = l == 0 ? cur : t[l - 1];
    float right = l == 31 ? cur : t[l + 1];
    barrier(CLK_LOCAL_MEM_FENCE);
    cur = cur + 0.1f * (left + right - 2.0f * cur) + 0.05f * power[g];
    t[l] = cur;
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  out[g] = cur;
}
)CL";
    app.host = [](BenchContext &ctx) {
        const int n = 128, w = 32, steps = 4;
        auto temp = randomFloats(220, n, 20.0f, 80.0f);
        auto power = randomFloats(221, n, 0.0f, 1.0f);
        rt::Buffer bt = upload(ctx, temp);
        rt::Buffer bp = upload(ctx, power);
        rt::Buffer bo = uploadZeros<float>(ctx, n);
        ctx.launch("hotspot", range1d(n, 32), {bt, bp, bo, w, steps});
        auto got = download<float>(ctx, bo, n);
        std::vector<float> expect(n);
        for (int grp = 0; grp < n / 32; ++grp) {
            std::vector<float> t(temp.begin() + grp * 32,
                                 temp.begin() + (grp + 1) * 32);
            std::vector<float> cur = t;
            for (int s = 0; s < steps; ++s) {
                std::vector<float> next(32);
                for (int l = 0; l < 32; ++l) {
                    float left = l == 0 ? cur[l] : t[l - 1];
                    float right = l == 31 ? cur[l] : t[l + 1];
                    next[l] = cur[l] +
                              0.1f * (left + right - 2.0f * cur[l]) +
                              0.05f * power[grp * 32 + l];
                }
                cur = next;
                t = cur;
            }
            for (int l = 0; l < 32; ++l)
                expect[grp * 32 + l] = cur[l];
        }
        return verifyFloats(got, expect, 1e-2f);
    };
    return app;
}

// ----------------------------------------------------------------------
// 125.lud — LU decomposition diagonal step (Table II: L, B).
// ----------------------------------------------------------------------
App
makeLud()
{
    App app;
    app.name = "125.lud";
    app.suite = "SPEC ACCEL";
    app.source = R"CL(
__kernel void lud_diag(__global float* M, int n) {
  __local float tile[16][16];
  int l = get_local_id(0);
  for (int r = 0; r < 16; r++)
    tile[r][l] = M[r * n + l];
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int k = 0; k < 15; k++) {
    if (l > k) {
      float f = tile[l][k] / tile[k][k];
      tile[l][k] = f;
      for (int j = k + 1; j < 16; j++)
        tile[l][j] -= f * tile[k][j];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  for (int r = 0; r < 16; r++)
    M[r * n + l] = tile[r][l];
}
)CL";
    app.host = [](BenchContext &ctx) {
        const int n = 16;
        auto m = randomFloats(222, static_cast<size_t>(n) * n, 1.0f,
                              2.0f);
        // Make it diagonally dominant for stability.
        for (int i = 0; i < n; ++i)
            m[i * n + i] += 8.0f;
        rt::Buffer bm = upload(ctx, m);
        ctx.launch("lud_diag", range1d(16, 16), {bm, n});
        auto got = download<float>(ctx, bm, static_cast<size_t>(n) * n);
        std::vector<float> expect = m;
        for (int k = 0; k < 15; ++k) {
            for (int l = k + 1; l < 16; ++l) {
                float f = expect[l * n + k] / expect[k * n + k];
                expect[l * n + k] = f;
                for (int j = k + 1; j < 16; ++j)
                    expect[l * n + j] -= f * expect[k * n + j];
            }
        }
        return verifyFloats(got, expect, 1e-2f);
    };
    return app;
}

// ----------------------------------------------------------------------
// 126.ge — Gaussian elimination row update (host drives pivots).
// ----------------------------------------------------------------------
App
makeGe()
{
    App app;
    app.name = "126.ge";
    app.suite = "SPEC ACCEL";
    app.source = R"CL(
__kernel void ge_row(__global float* M, int n, int pivot) {
  int gid = get_global_id(0);
  int r = gid / n;
  int c = gid % n;
  if (r <= pivot || c < pivot) return;
  float f = M[r * n + pivot] / M[pivot * n + pivot];
  if (c == pivot) return;
  M[r * n + c] -= f * M[pivot * n + c];
}
__kernel void ge_clear(__global float* M, int n, int pivot) {
  int r = get_global_id(0);
  if (r <= pivot) return;
  M[r * n + pivot] = 0.0f;
}
)CL";
    app.host = [](BenchContext &ctx) {
        const int n = 16;
        auto m = randomFloats(223, static_cast<size_t>(n) * n, 1.0f,
                              2.0f);
        for (int i = 0; i < n; ++i)
            m[i * n + i] += 8.0f;
        rt::Buffer bm = upload(ctx, m);
        for (int pivot = 0; pivot < n - 1; ++pivot) {
            ctx.launch("ge_row",
                       range1d(static_cast<size_t>(n) * n, 32),
                       {bm, n, pivot});
            ctx.launch("ge_clear", range1d(n, 16), {bm, n, pivot});
        }
        auto got = download<float>(ctx, bm, static_cast<size_t>(n) * n);
        std::vector<float> expect = m;
        for (int pivot = 0; pivot < n - 1; ++pivot) {
            for (int r = pivot + 1; r < n; ++r) {
                float f = expect[r * n + pivot] /
                          expect[pivot * n + pivot];
                for (int c = pivot + 1; c < n; ++c)
                    expect[r * n + c] -= f * expect[pivot * n + c];
                expect[r * n + pivot] = 0.0f;
            }
        }
        return verifyFloats(got, expect, 2e-2f);
    };
    return app;
}

// ----------------------------------------------------------------------
// 127.srad — speckle-reducing anisotropic diffusion (Table II: L, B).
// ----------------------------------------------------------------------
App
makeSrad()
{
    App app;
    app.name = "127.srad";
    app.suite = "SPEC ACCEL";
    app.source = R"CL(
__kernel void srad(__global float* img, __global float* out, int w,
                   int h, float lambda) {
  __local float tile[64];
  int l = get_local_id(0);
  int g = get_global_id(0);
  tile[l] = img[g];
  barrier(CLK_LOCAL_MEM_FENCE);
  int x = g % w;
  float center = tile[l];
  float left = (x == 0 || l == 0) ? center : tile[l - 1];
  float right = (x == w - 1 || l == 63) ? center : tile[l + 1];
  float dl = left - center;
  float dr = right - center;
  float g2 = (dl * dl + dr * dr) / (center * center + 0.01f);
  float c = 1.0f / (1.0f + g2);
  if (c < 0.0f) c = 0.0f;
  if (c > 1.0f) c = 1.0f;
  out[g] = center + lambda * c * (dl + dr);
}
)CL";
    app.host = [](BenchContext &ctx) {
        const int w = 64, h = 4;
        const float lambda = 0.25f;
        size_t total = static_cast<size_t>(w) * h;
        auto img = randomFloats(224, total, 0.5f, 1.5f);
        rt::Buffer bi = upload(ctx, img);
        rt::Buffer bo = uploadZeros<float>(ctx, total);
        ctx.launch("srad", range1d(total, 64), {bi, bo, w, h, lambda});
        auto got = download<float>(ctx, bo, total);
        std::vector<float> expect(total);
        for (size_t g = 0; g < total; ++g) {
            int l = static_cast<int>(g % 64);
            int x = static_cast<int>(g) % w;
            float center = img[g];
            float left = (x == 0 || l == 0) ? center : img[g - 1];
            float right = (x == w - 1 || l == 63) ? center : img[g + 1];
            float dl = left - center;
            float dr = right - center;
            float g2 = (dl * dl + dr * dr) / (center * center + 0.01f);
            float c = 1.0f / (1.0f + g2);
            c = std::min(1.0f, std::max(0.0f, c));
            expect[g] = center + lambda * c * (dl + dr);
        }
        return verifyFloats(got, expect);
    };
    return app;
}

// ----------------------------------------------------------------------
// 128.heartwall — tracking kernel; deliberately large (Table II: IR
// for SOFF on the Arria 10). Generated convolution/statistics body.
// ----------------------------------------------------------------------
App
makeHeartwall()
{
    App app;
    app.name = "128.heartwall";
    app.suite = "SPEC ACCEL";
    app.expectInsufficientResources = true;
    std::string body;
    for (int t = 0; t < 120; ++t) {
        body += strFormat(
            "  acc += exp(v * 0.0%d1f) * sin(v + %d.0f) - "
            "pow(v + 1.5f, 0.%d1f);\n",
            t % 9 + 1, t, t % 9 + 1);
    }
    app.source =
        "__kernel void heartwall(__global float* frame,\n"
        "                        __global float* out) {\n"
        "  __local float tile[32];\n"
        "  int l = get_local_id(0);\n"
        "  int g = get_global_id(0);\n"
        "  tile[l] = frame[g];\n"
        "  barrier(CLK_LOCAL_MEM_FENCE);\n"
        "  float v = tile[31 - l];\n"
        "  float acc = 0.0f;\n" +
        body +
        "  out[g] = acc;\n"
        "}\n";
    app.host = [](BenchContext &ctx) {
        const int n = 64;
        auto frame = randomFloats(225, n, 0.1f, 1.0f);
        rt::Buffer bf = upload(ctx, frame);
        rt::Buffer bo = uploadZeros<float>(ctx, n);
        ctx.launch("heartwall", range1d(n, 32), {bf, bo});
        auto got = download<float>(ctx, bo, n);
        std::vector<float> expect(n);
        for (int g = 0; g < n; ++g) {
            int grp = g / 32, l = g % 32;
            float v = frame[grp * 32 + (31 - l)];
            float acc = 0.0f;
            for (int t = 0; t < 120; ++t) {
                float c1 = (t % 9 + 1) * 0.01f; // 0.0d1f ~ d*0.01+0.001
                c1 = std::strtof(strFormat("0.0%d1", t % 9 + 1).c_str(),
                                 nullptr);
                float c3 = std::strtof(strFormat("0.%d1", t % 9 + 1).c_str(),
                                       nullptr);
                acc += std::exp(v * c1) * std::sin(v + t) -
                       std::pow(v + 1.5f, c3);
            }
            expect[g] = acc;
        }
        return verifyFloats(got, expect, 5e-2f);
    };
    return app;
}

// ----------------------------------------------------------------------
// 140.bplustree — B+-tree range queries through indirect pointers
// (Table II: IR for SOFF; Xilinx CE on indirect pointers).
// ----------------------------------------------------------------------
App
makeBplustree()
{
    App app;
    app.name = "140.bplustree";
    app.suite = "SPEC ACCEL";
    app.expectInsufficientResources = true;
    // The search kernel is replicated with generated per-level
    // comparator cascades to exceed the device capacity, preserving
    // the paper's insufficient-resources outcome.
    std::string cascade;
    for (int t = 0; t < 100; ++t) {
        cascade += strFormat(
            "  r += (float)(k %% %d) * exp((float)(k %% %d) * 0.0%df) "
            "+ pow((float)(k %% 7), 1.%df);\n",
            t + 2, t + 3, t % 9 + 1, t % 9);
    }
    app.source =
        "__kernel void bpt_search(__global int** nodes,\n"
        "                         __global int* keys,\n"
        "                         __global int* result, int levels,\n"
        "                         int fanout) {\n"
        "  int i = get_global_id(0);\n"
        "  int k = keys[i];\n"
        "  __global int* node = nodes[0];\n"
        "  int idx = 0;\n"
        "  for (int level = 0; level < levels; level++) {\n"
        "    int child = 0;\n"
        "    for (int j = 0; j < fanout - 1; j++) {\n"
        "      if (k >= node[idx * fanout + j]) child = j + 1;\n"
        "    }\n"
        "    idx = idx * fanout + child;\n"
        "    node = nodes[level + 1];\n"
        "  }\n"
        "  float r = 0.0f;\n" +
        cascade +
        "  result[i] = node[idx] + (int)(r * 0.0f);\n"
        "}\n";
    app.host = [](BenchContext &ctx) {
        const int levels = 2, fanout = 4, n = 64;
        // Level arrays: level L has fanout^L separator arrays of
        // (fanout-1) keys; the leaf level holds values.
        std::vector<int32_t> level0(fanout - 1);
        std::vector<int32_t> level1(
            static_cast<size_t>(fanout) * (fanout - 1));
        std::vector<int32_t> leaves(
            static_cast<size_t>(fanout) * fanout);
        for (int j = 0; j < fanout - 1; ++j)
            level0[j] = (j + 1) * 100;
        for (int b = 0; b < fanout; ++b) {
            for (int j = 0; j < fanout - 1; ++j)
                level1[b * (fanout - 1) + j] =
                    b * 100 + (j + 1) * 25;
        }
        for (size_t i = 0; i < leaves.size(); ++i)
            leaves[i] = static_cast<int32_t>(i) * 7;
        // Flatten: kernel indexes node[idx*fanout + j] on inner
        // levels; rebuild level1 with that layout.
        std::vector<int32_t> level1_flat(
            static_cast<size_t>(fanout) * fanout, 1 << 28);
        for (int b = 0; b < fanout; ++b) {
            for (int j = 0; j < fanout - 1; ++j)
                level1_flat[b * fanout + j] =
                    level1[b * (fanout - 1) + j];
        }
        std::vector<int32_t> level0_flat(fanout, 1 << 28);
        for (int j = 0; j < fanout - 1; ++j)
            level0_flat[j] = level0[j];

        rt::Buffer b0 = upload(ctx, level0_flat);
        rt::Buffer b1 = upload(ctx, level1_flat);
        rt::Buffer bl = upload(ctx, leaves);
        // The node-pointer table: device addresses stored in memory
        // (indirect pointers).
        std::vector<uint64_t> table = {b0.deviceAddress(),
                                       b1.deviceAddress(),
                                       bl.deviceAddress()};
        rt::Buffer btab = upload(ctx, table);
        auto keys = randomInts(226, n, 0, 399);
        rt::Buffer bk = upload(ctx, keys);
        rt::Buffer br = uploadZeros<int32_t>(ctx, n);
        ctx.launch("bpt_search", range1d(n, 16),
                   {btab, bk, br, levels, fanout});
        auto got = download<int32_t>(ctx, br, n);
        std::vector<int32_t> expect(n);
        for (int i = 0; i < n; ++i) {
            int k = keys[i];
            int idx = 0;
            const std::vector<int32_t> *node = &level0_flat;
            for (int level = 0; level < levels; ++level) {
                int child = 0;
                for (int j = 0; j < fanout - 1; ++j) {
                    if (k >= (*node)[idx * fanout + j])
                        child = j + 1;
                }
                idx = idx * fanout + child;
                node = level == 0 ? &level1_flat : nullptr;
                if (level == 0)
                    node = &level1_flat;
                else
                    node = &leaves;
            }
            expect[i] = leaves[idx];
        }
        return verifyInts(got, expect);
    };
    return app;
}

} // namespace

std::vector<App>
specApps()
{
    std::vector<App> apps;
    apps.push_back(makeTpacf());
    apps.push_back(makeStencil());
    apps.push_back(makeLbm());
    apps.push_back(makeFft());
    apps.push_back(makeSpmv());
    apps.push_back(makeMriq());
    apps.push_back(makeHisto());
    apps.push_back(makeBfs());
    apps.push_back(makeCutcp());
    apps.push_back(makeKmeans());
    apps.push_back(makeLavamd());
    apps.push_back(makeCfd());
    apps.push_back(makeNw());
    apps.push_back(makeHotspot());
    apps.push_back(makeLud());
    apps.push_back(makeGe());
    apps.push_back(makeSrad());
    apps.push_back(makeHeartwall());
    apps.push_back(makeBplustree());
    return apps;
}

} // namespace soff::benchsuite
