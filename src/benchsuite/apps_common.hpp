/**
 * @file
 * Shared helpers for the benchmark application definitions.
 */
#pragma once

#include <cmath>
#include <vector>

#include "benchsuite/suite.hpp"
#include "support/rng.hpp"

namespace soff::benchsuite
{

/** Uploads a host vector into a fresh device buffer. */
template <typename T>
rt::Buffer
upload(BenchContext &ctx, const std::vector<T> &host)
{
    rt::Buffer buffer = ctx.createBuffer(host.size() * sizeof(T));
    ctx.write(buffer, host.data(), host.size() * sizeof(T));
    return buffer;
}

/** Creates a zero-initialized device buffer of `count` T elements. */
template <typename T>
rt::Buffer
uploadZeros(BenchContext &ctx, size_t count)
{
    std::vector<T> zeros(count, T{});
    return upload(ctx, zeros);
}

/** Downloads a device buffer into a host vector of `count` elements. */
template <typename T>
std::vector<T>
download(BenchContext &ctx, const rt::Buffer &buffer, size_t count)
{
    std::vector<T> host(count);
    ctx.read(buffer, host.data(), count * sizeof(T));
    return host;
}

/** Deterministic random floats in [lo, hi). */
inline std::vector<float>
randomFloats(uint64_t seed, size_t count, float lo = 0.0f, float hi = 1.0f)
{
    SplitMix64 rng(seed);
    std::vector<float> out(count);
    for (float &v : out)
        v = lo + (hi - lo) * rng.nextFloat();
    return out;
}

/** Deterministic random int32s in [lo, hi]. */
inline std::vector<int32_t>
randomInts(uint64_t seed, size_t count, int32_t lo, int32_t hi)
{
    SplitMix64 rng(seed);
    std::vector<int32_t> out(count);
    for (int32_t &v : out)
        v = rng.nextInt(lo, hi);
    return out;
}

/** Element-wise comparison with tolerance; true when all match. */
inline bool
verifyFloats(const std::vector<float> &got,
             const std::vector<float> &expect, float tolerance = 2e-3f)
{
    if (got.size() != expect.size())
        return false;
    for (size_t i = 0; i < got.size(); ++i) {
        if (!nearlyEqual(got[i], expect[i], tolerance))
            return false;
    }
    return true;
}

inline bool
verifyInts(const std::vector<int32_t> &got,
           const std::vector<int32_t> &expect)
{
    return got == expect;
}

} // namespace soff::benchsuite
