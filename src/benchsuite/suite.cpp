#include "benchsuite/suite.hpp"

#include <cmath>

namespace soff::benchsuite
{

// Defined in apps_spec.cpp / apps_poly.cpp.
std::vector<App> specApps();
std::vector<App> polyApps();

const std::vector<App> &
allApps()
{
    static const std::vector<App> apps = [] {
        std::vector<App> all = specApps();
        std::vector<App> poly = polyApps();
        for (App &app : poly)
            all.push_back(std::move(app));
        return all;
    }();
    return apps;
}

const App *
findApp(const std::string &name)
{
    for (const App &app : allApps()) {
        if (app.name == name)
            return &app;
    }
    return nullptr;
}

bool
runApp(const App &app, BenchContext &ctx)
{
    ctx.build(app.source);
    return app.host(ctx);
}

bool
nearlyEqual(float a, float b, float tolerance)
{
    if (a == b)
        return true;
    float diff = std::fabs(a - b);
    float scale = std::max(std::fabs(a), std::fabs(b));
    return diff <= tolerance * std::max(1.0f, scale);
}

} // namespace soff::benchsuite
