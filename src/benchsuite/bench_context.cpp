#include "benchsuite/bench_context.hpp"

#include "support/error.hpp"

namespace soff::benchsuite
{

const char *
engineName(Engine engine)
{
    switch (engine) {
      case Engine::SoffSim: return "SOFF";
      case Engine::Reference: return "Reference";
      case Engine::IntelLike: return "Intel-like";
      case Engine::XilinxLike: return "Xilinx-like";
    }
    return "?";
}

sim::NDRange
range1d(uint64_t global, uint64_t local)
{
    sim::NDRange nd;
    nd.globalSize[0] = global;
    nd.localSize[0] = local;
    return nd;
}

sim::NDRange
range2d(uint64_t gx, uint64_t gy, uint64_t lx, uint64_t ly)
{
    sim::NDRange nd;
    nd.workDim = 2;
    nd.globalSize[0] = gx;
    nd.globalSize[1] = gy;
    nd.localSize[0] = lx;
    nd.localSize[1] = ly;
    return nd;
}

namespace
{

datapath::FpgaSpec
fpgaFor(Engine engine)
{
    // System A (Arria 10) for SOFF and Intel; System B (VU9P) for
    // Xilinx (paper Table I).
    if (engine == Engine::XilinxLike)
        return datapath::FpgaSpec::vu9p();
    return datapath::FpgaSpec::arria10();
}

} // namespace

BenchContext::BenchContext(Engine engine)
    : engine_(engine), ctx_(fpgaFor(engine))
{}

void
BenchContext::build(const std::string &source)
{
    program_.emplace(ctx_.buildProgram(source, options_));
}

rt::Buffer
BenchContext::createBuffer(uint64_t size)
{
    return ctx_.createBuffer(size);
}

void
BenchContext::write(const rt::Buffer &buffer, const void *src,
                    uint64_t size)
{
    ctx_.writeBuffer(buffer, src, size);
}

void
BenchContext::read(const rt::Buffer &buffer, void *dst, uint64_t size)
{
    ctx_.readBuffer(buffer, dst, size);
}

int
BenchContext::baselineInstances(const core::CompiledKernel &kernel) const
{
    // Fig. 11: "we manually insert the num_compute_units(N) attribute
    // in every application to also maximally replicate datapath
    // instances in Intel OpenCL" — the baseline gets the same
    // resource-model-derived replication as SOFF.
    return std::max(1, kernel.maxInstancesAlone);
}

void
BenchContext::launch(const std::string &kernel,
                     const sim::NDRange &ndrange,
                     const std::vector<Arg> &args)
{
    SOFF_ASSERT(program_.has_value(), "launch before build()");
    rt::KernelHandle handle = program_->createKernel(kernel);
    for (size_t i = 0; i < args.size(); ++i) {
        std::visit([&](auto &&v) { handle.setArg(i, v); }, args[i]);
    }
    ++metrics_.launches;

    switch (engine_) {
      case Engine::SoffSim: {
        rt::LaunchResult result = ctx_.enqueueNDRange(
            handle, ndrange, rt::ExecutionMode::Simulate, platform_,
            instanceOverride_);
        metrics_.timeMs += result.timeMs;
        metrics_.cycles += result.cycles;
        metrics_.instances = result.instances;
        metrics_.cacheHits += result.stats.cacheHits;
        metrics_.cacheMisses += result.stats.cacheMisses;
        metrics_.cacheEvictions += result.stats.cacheEvictions;
        metrics_.dramTransfers += result.stats.dramTransfers;
        metrics_.dramBytes += result.stats.dramBytes;
        metrics_.componentSteps += result.sched.componentSteps;
        metrics_.cyclesActive += result.sched.cyclesActive;
        metrics_.channelCommits += result.sched.channelCommits;
        if (result.statsReport != nullptr)
            metrics_.statsReports.push_back(result.statsReport);
        return;
      }
      case Engine::Reference: {
        ctx_.enqueueNDRange(handle, ndrange,
                            rt::ExecutionMode::Reference);
        return;
      }
      case Engine::IntelLike:
      case Engine::XilinxLike: {
        const core::CompiledKernel &ck = handle.compiled();
        baseline::StaticPipelineConfig cfg =
            engine_ == Engine::IntelLike
                ? baseline::StaticPipelineConfig::intelLike(
                      baselineInstances(ck))
                : baseline::StaticPipelineConfig::xilinxLike();
        if (engine_ == Engine::IntelLike) {
            // Maximal replication costs the baseline the same timing
            // closure the resource model charges SOFF for.
            cfg.fmaxMhz = datapath::estimateFmaxMhz(
                ctx_.device().fpga(),
                ck.resourcesPerInstance.scaled(cfg.numInstances));
        }
        sim::LaunchContext launch_ctx;
        launch_ctx.ndrange = ndrange;
        launch_ctx.args = handle.argValues();
        baseline::StaticPipelineResult result =
            baseline::runStaticPipeline(*ck.kernel, launch_ctx,
                                        ctx_.device().globalMemory(),
                                        cfg);
        metrics_.timeMs += result.timeMs;
        metrics_.cycles += result.cycles;
        metrics_.instances = cfg.numInstances;
        metrics_.cacheHits += result.cacheHits;
        metrics_.cacheMisses += result.cacheMisses;
        return;
      }
    }
}

} // namespace soff::benchsuite
