/**
 * @file
 * The 15 PolyBench-like applications (paper Table II, lower half).
 * "The applications in PolyBench are quite simple" (§VI-A): dense
 * linear-algebra and stencil kernels without barriers or atomics.
 */
#include "benchsuite/apps_common.hpp"

namespace soff::benchsuite
{

namespace
{

// Matrix sizes are miniature (paper inputs are GBs; shape, not size,
// is what Fig. 11 depends on — DESIGN.md).
constexpr int kN = 24;   // square matrix dimension
constexpr int kConv = 48; // convolution grid edge

std::vector<float>
hostMatmul(const std::vector<float> &a, const std::vector<float> &b,
           int n)
{
    std::vector<float> c(static_cast<size_t>(n) * n, 0.0f);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (int k = 0; k < n; ++k)
                acc += a[i * n + k] * b[k * n + j];
            c[i * n + j] = acc;
        }
    }
    return c;
}

const char *kGemmSource = R"CL(
__kernel void matmul(__global float* A, __global float* B,
                     __global float* C, int n) {
  int i = get_global_id(0) / n;
  int j = get_global_id(0) % n;
  float acc = 0.0f;
  for (int k = 0; k < n; k++)
    acc += A[i * n + k] * B[k * n + j];
  C[i * n + j] = acc;
}
__kernel void matmul_scaled(__global float* A, __global float* B,
                            __global float* C, int n, float alpha,
                            float beta) {
  int i = get_global_id(0) / n;
  int j = get_global_id(0) % n;
  float acc = 0.0f;
  for (int k = 0; k < n; k++)
    acc += A[i * n + k] * B[k * n + j];
  C[i * n + j] = alpha * acc + beta * C[i * n + j];
}
)CL";

const char *kMatvecSource = R"CL(
__kernel void matvec(__global float* A, __global float* x,
                     __global float* y, int n) {
  int i = get_global_id(0);
  float acc = 0.0f;
  for (int j = 0; j < n; j++)
    acc += A[i * n + j] * x[j];
  y[i] = acc;
}
__kernel void matvec_t(__global float* A, __global float* x,
                       __global float* y, int n) {
  int j = get_global_id(0);
  float acc = 0.0f;
  for (int i = 0; i < n; i++)
    acc += A[i * n + j] * x[i];
  y[j] = acc;
}
)CL";

std::vector<float>
hostMatvec(const std::vector<float> &a, const std::vector<float> &x,
           int n, bool transpose)
{
    std::vector<float> y(static_cast<size_t>(n), 0.0f);
    for (int i = 0; i < n; ++i) {
        float acc = 0.0f;
        for (int j = 0; j < n; ++j) {
            acc += transpose ? a[j * n + i] * x[j] : a[i * n + j] * x[j];
        }
        y[i] = acc;
    }
    return y;
}

App
make2dconv()
{
    App app;
    app.name = "2dconv";
    app.suite = "PolyBench";
    app.source = R"CL(
__kernel void conv2d(__global float* in, __global float* out, int w,
                     int h) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  if (x < 1 || x >= w - 1 || y < 1 || y >= h - 1) {
    out[y * w + x] = 0.0f;
    return;
  }
  float c11 = 0.2f, c12 = -0.3f, c13 = 0.4f;
  float c21 = -0.5f, c22 = 0.6f, c23 = -0.7f;
  float c31 = 0.8f, c32 = -0.9f, c33 = 0.1f;
  float s = c11 * in[(y - 1) * w + (x - 1)] + c12 * in[(y - 1) * w + x]
          + c13 * in[(y - 1) * w + (x + 1)] + c21 * in[y * w + (x - 1)]
          + c22 * in[y * w + x] + c23 * in[y * w + (x + 1)]
          + c31 * in[(y + 1) * w + (x - 1)] + c32 * in[(y + 1) * w + x]
          + c33 * in[(y + 1) * w + (x + 1)];
  out[y * w + x] = s;
}
)CL";
    app.host = [](BenchContext &ctx) {
        const int w = kConv, h = kConv / 2;
        auto in = randomFloats(11, static_cast<size_t>(w) * h);
        rt::Buffer bin = upload(ctx, in);
        rt::Buffer bout =
            uploadZeros<float>(ctx, static_cast<size_t>(w) * h);
        ctx.launch("conv2d", range2d(w, h, 8, 4),
                   {bin, bout, w, h});
        auto got = download<float>(ctx, bout,
                                   static_cast<size_t>(w) * h);
        std::vector<float> expect(static_cast<size_t>(w) * h, 0.0f);
        const float c[9] = {0.2f, -0.3f, 0.4f, -0.5f, 0.6f,
                            -0.7f, 0.8f, -0.9f, 0.1f};
        for (int y = 1; y < h - 1; ++y) {
            for (int x = 1; x < w - 1; ++x) {
                float s = 0.0f;
                int k = 0;
                for (int dy = -1; dy <= 1; ++dy) {
                    for (int dx = -1; dx <= 1; ++dx)
                        s += c[k++] * in[(y + dy) * w + (x + dx)];
                }
                expect[y * w + x] = s;
            }
        }
        return verifyFloats(got, expect);
    };
    return app;
}

App
make3dconv()
{
    App app;
    app.name = "3dconv";
    app.suite = "PolyBench";
    app.source = R"CL(
__kernel void conv3d(__global float* in, __global float* out, int n) {
  int gid = get_global_id(0);
  int x = gid % n;
  int y = (gid / n) % n;
  int z = gid / (n * n);
  if (x < 1 || x >= n - 1 || y < 1 || y >= n - 1 || z < 1 ||
      z >= n - 1) {
    out[gid] = 0.0f;
    return;
  }
  float acc = 0.0f;
  for (int dz = -1; dz <= 1; dz++) {
    for (int dy = -1; dy <= 1; dy++) {
      for (int dx = -1; dx <= 1; dx++) {
        float wgt = 0.1f * (float)(dx + dy + dz) + 0.2f;
        acc += wgt * in[(z + dz) * n * n + (y + dy) * n + (x + dx)];
      }
    }
  }
  out[gid] = acc;
}
)CL";
    app.host = [](BenchContext &ctx) {
        const int n = 12;
        size_t total = static_cast<size_t>(n) * n * n;
        auto in = randomFloats(12, total);
        rt::Buffer bin = upload(ctx, in);
        rt::Buffer bout = uploadZeros<float>(ctx, total);
        ctx.launch("conv3d", range1d(total, 48), {bin, bout, n});
        auto got = download<float>(ctx, bout, total);
        std::vector<float> expect(total, 0.0f);
        for (int z = 1; z < n - 1; ++z) {
            for (int y = 1; y < n - 1; ++y) {
                for (int x = 1; x < n - 1; ++x) {
                    float acc = 0.0f;
                    for (int dz = -1; dz <= 1; ++dz) {
                        for (int dy = -1; dy <= 1; ++dy) {
                            for (int dx = -1; dx <= 1; ++dx) {
                                float wgt =
                                    0.1f * static_cast<float>(
                                               dx + dy + dz) + 0.2f;
                                acc += wgt * in[(z + dz) * n * n +
                                                (y + dy) * n + (x + dx)];
                            }
                        }
                    }
                    expect[z * n * n + y * n + x] = acc;
                }
            }
        }
        return verifyFloats(got, expect);
    };
    return app;
}

App
makeGemm()
{
    App app;
    app.name = "gemm";
    app.suite = "PolyBench";
    app.source = kGemmSource;
    app.host = [](BenchContext &ctx) {
        const int n = kN;
        size_t total = static_cast<size_t>(n) * n;
        auto a = randomFloats(21, total);
        auto b = randomFloats(22, total);
        auto c = randomFloats(23, total);
        rt::Buffer ba = upload(ctx, a);
        rt::Buffer bb = upload(ctx, b);
        rt::Buffer bc = upload(ctx, c);
        ctx.launch("matmul_scaled", range1d(total, 32),
                   {ba, bb, bc, n, 1.5f, 0.5f});
        auto got = download<float>(ctx, bc, total);
        auto ab = hostMatmul(a, b, n);
        std::vector<float> expect(total);
        for (size_t i = 0; i < total; ++i)
            expect[i] = 1.5f * ab[i] + 0.5f * c[i];
        return verifyFloats(got, expect);
    };
    return app;
}

App
make2mm()
{
    App app;
    app.name = "2mm";
    app.suite = "PolyBench";
    app.source = kGemmSource;
    app.host = [](BenchContext &ctx) {
        const int n = kN;
        size_t total = static_cast<size_t>(n) * n;
        auto a = randomFloats(31, total);
        auto b = randomFloats(32, total);
        auto c = randomFloats(33, total);
        rt::Buffer ba = upload(ctx, a);
        rt::Buffer bb = upload(ctx, b);
        rt::Buffer bc = upload(ctx, c);
        rt::Buffer tmp = uploadZeros<float>(ctx, total);
        rt::Buffer out = uploadZeros<float>(ctx, total);
        ctx.launch("matmul", range1d(total, 32), {ba, bb, tmp, n});
        ctx.launch("matmul", range1d(total, 32), {tmp, bc, out, n});
        auto got = download<float>(ctx, out, total);
        auto expect = hostMatmul(hostMatmul(a, b, n), c, n);
        return verifyFloats(got, expect, 5e-3f);
    };
    return app;
}

App
make3mm()
{
    App app;
    app.name = "3mm";
    app.suite = "PolyBench";
    app.source = kGemmSource;
    app.host = [](BenchContext &ctx) {
        const int n = kN;
        size_t total = static_cast<size_t>(n) * n;
        auto a = randomFloats(41, total);
        auto b = randomFloats(42, total);
        auto c = randomFloats(43, total);
        auto d = randomFloats(44, total);
        rt::Buffer ba = upload(ctx, a);
        rt::Buffer bb = upload(ctx, b);
        rt::Buffer bc = upload(ctx, c);
        rt::Buffer bd = upload(ctx, d);
        rt::Buffer e = uploadZeros<float>(ctx, total);
        rt::Buffer f = uploadZeros<float>(ctx, total);
        rt::Buffer g = uploadZeros<float>(ctx, total);
        ctx.launch("matmul", range1d(total, 32), {ba, bb, e, n});
        ctx.launch("matmul", range1d(total, 32), {bc, bd, f, n});
        ctx.launch("matmul", range1d(total, 32), {e, f, g, n});
        auto got = download<float>(ctx, g, total);
        auto expect = hostMatmul(hostMatmul(a, b, n),
                                 hostMatmul(c, d, n), n);
        return verifyFloats(got, expect, 1e-2f);
    };
    return app;
}

App
makeAtax()
{
    App app;
    app.name = "atax";
    app.suite = "PolyBench";
    app.source = kMatvecSource;
    app.host = [](BenchContext &ctx) {
        const int n = 48;
        size_t total = static_cast<size_t>(n) * n;
        auto a = randomFloats(51, total);
        auto x = randomFloats(52, static_cast<size_t>(n));
        rt::Buffer ba = upload(ctx, a);
        rt::Buffer bx = upload(ctx, x);
        rt::Buffer tmp = uploadZeros<float>(ctx, static_cast<size_t>(n));
        rt::Buffer y = uploadZeros<float>(ctx, static_cast<size_t>(n));
        ctx.launch("matvec", range1d(n, 16), {ba, bx, tmp, n});
        ctx.launch("matvec_t", range1d(n, 16), {ba, tmp, y, n});
        auto got = download<float>(ctx, y, static_cast<size_t>(n));
        auto t = hostMatvec(a, x, n, false);
        auto expect = hostMatvec(a, t, n, true);
        return verifyFloats(got, expect, 5e-3f);
    };
    return app;
}

App
makeBicg()
{
    App app;
    app.name = "bicg";
    app.suite = "PolyBench";
    app.source = kMatvecSource;
    app.host = [](BenchContext &ctx) {
        const int n = 48;
        size_t total = static_cast<size_t>(n) * n;
        auto a = randomFloats(61, total);
        auto p = randomFloats(62, static_cast<size_t>(n));
        auto r = randomFloats(63, static_cast<size_t>(n));
        rt::Buffer ba = upload(ctx, a);
        rt::Buffer bp = upload(ctx, p);
        rt::Buffer br = upload(ctx, r);
        rt::Buffer q = uploadZeros<float>(ctx, static_cast<size_t>(n));
        rt::Buffer s = uploadZeros<float>(ctx, static_cast<size_t>(n));
        ctx.launch("matvec", range1d(n, 16), {ba, bp, q, n});
        ctx.launch("matvec_t", range1d(n, 16), {ba, br, s, n});
        auto got_q = download<float>(ctx, q, static_cast<size_t>(n));
        auto got_s = download<float>(ctx, s, static_cast<size_t>(n));
        return verifyFloats(got_q, hostMatvec(a, p, n, false)) &&
               verifyFloats(got_s, hostMatvec(a, r, n, true));
    };
    return app;
}

App
makeGesummv()
{
    App app;
    app.name = "gesummv";
    app.suite = "PolyBench";
    app.source = R"CL(
__kernel void gesummv(__global float* A, __global float* B,
                      __global float* x, __global float* y, int n,
                      float alpha, float beta) {
  int i = get_global_id(0);
  float ta = 0.0f;
  float tb = 0.0f;
  for (int j = 0; j < n; j++) {
    ta += A[i * n + j] * x[j];
    tb += B[i * n + j] * x[j];
  }
  y[i] = alpha * ta + beta * tb;
}
)CL";
    app.host = [](BenchContext &ctx) {
        const int n = 48;
        size_t total = static_cast<size_t>(n) * n;
        auto a = randomFloats(71, total);
        auto b = randomFloats(72, total);
        auto x = randomFloats(73, static_cast<size_t>(n));
        rt::Buffer ba = upload(ctx, a);
        rt::Buffer bb = upload(ctx, b);
        rt::Buffer bx = upload(ctx, x);
        rt::Buffer by = uploadZeros<float>(ctx, static_cast<size_t>(n));
        ctx.launch("gesummv", range1d(n, 16),
                   {ba, bb, bx, by, n, 1.25f, 0.75f});
        auto got = download<float>(ctx, by, static_cast<size_t>(n));
        auto ya = hostMatvec(a, x, n, false);
        auto yb = hostMatvec(b, x, n, false);
        std::vector<float> expect(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i)
            expect[i] = 1.25f * ya[i] + 0.75f * yb[i];
        return verifyFloats(got, expect);
    };
    return app;
}

App
makeMvt()
{
    App app;
    app.name = "mvt";
    app.suite = "PolyBench";
    app.source = kMatvecSource;
    app.host = [](BenchContext &ctx) {
        const int n = 48;
        size_t total = static_cast<size_t>(n) * n;
        auto a = randomFloats(81, total);
        auto y1 = randomFloats(82, static_cast<size_t>(n));
        auto y2 = randomFloats(83, static_cast<size_t>(n));
        rt::Buffer ba = upload(ctx, a);
        rt::Buffer by1 = upload(ctx, y1);
        rt::Buffer by2 = upload(ctx, y2);
        rt::Buffer x1 = uploadZeros<float>(ctx, static_cast<size_t>(n));
        rt::Buffer x2 = uploadZeros<float>(ctx, static_cast<size_t>(n));
        ctx.launch("matvec", range1d(n, 16), {ba, by1, x1, n});
        ctx.launch("matvec_t", range1d(n, 16), {ba, by2, x2, n});
        auto got1 = download<float>(ctx, x1, static_cast<size_t>(n));
        auto got2 = download<float>(ctx, x2, static_cast<size_t>(n));
        return verifyFloats(got1, hostMatvec(a, y1, n, false)) &&
               verifyFloats(got2, hostMatvec(a, y2, n, true));
    };
    return app;
}

const char *kSyrkSource = R"CL(
__kernel void syrk(__global float* A, __global float* C, int n,
                   float alpha, float beta) {
  int i = get_global_id(0) / n;
  int j = get_global_id(0) % n;
  float acc = 0.0f;
  for (int k = 0; k < n; k++)
    acc += A[i * n + k] * A[j * n + k];
  C[i * n + j] = alpha * acc + beta * C[i * n + j];
}
__kernel void syr2k(__global float* A, __global float* B,
                    __global float* C, int n, float alpha, float beta) {
  int i = get_global_id(0) / n;
  int j = get_global_id(0) % n;
  float acc = 0.0f;
  for (int k = 0; k < n; k++)
    acc += A[i * n + k] * B[j * n + k] + B[i * n + k] * A[j * n + k];
  C[i * n + j] = alpha * acc + beta * C[i * n + j];
}
)CL";

App
makeSyrk()
{
    App app;
    app.name = "syrk";
    app.suite = "PolyBench";
    app.source = kSyrkSource;
    app.host = [](BenchContext &ctx) {
        const int n = kN;
        size_t total = static_cast<size_t>(n) * n;
        auto a = randomFloats(91, total);
        auto c = randomFloats(92, total);
        rt::Buffer ba = upload(ctx, a);
        rt::Buffer bc = upload(ctx, c);
        ctx.launch("syrk", range1d(total, 32), {ba, bc, n, 2.0f, 0.5f});
        auto got = download<float>(ctx, bc, total);
        std::vector<float> expect(total);
        for (int i = 0; i < n; ++i) {
            for (int j = 0; j < n; ++j) {
                float acc = 0.0f;
                for (int k = 0; k < n; ++k)
                    acc += a[i * n + k] * a[j * n + k];
                expect[i * n + j] = 2.0f * acc + 0.5f * c[i * n + j];
            }
        }
        return verifyFloats(got, expect);
    };
    return app;
}

App
makeSyr2k()
{
    App app;
    app.name = "syr2k";
    app.suite = "PolyBench";
    app.source = kSyrkSource;
    app.host = [](BenchContext &ctx) {
        const int n = kN;
        size_t total = static_cast<size_t>(n) * n;
        auto a = randomFloats(101, total);
        auto b = randomFloats(102, total);
        auto c = randomFloats(103, total);
        rt::Buffer ba = upload(ctx, a);
        rt::Buffer bb = upload(ctx, b);
        rt::Buffer bc = upload(ctx, c);
        ctx.launch("syr2k", range1d(total, 32),
                   {ba, bb, bc, n, 1.0f, 1.0f});
        auto got = download<float>(ctx, bc, total);
        std::vector<float> expect(total);
        for (int i = 0; i < n; ++i) {
            for (int j = 0; j < n; ++j) {
                float acc = 0.0f;
                for (int k = 0; k < n; ++k) {
                    acc += a[i * n + k] * b[j * n + k] +
                           b[i * n + k] * a[j * n + k];
                }
                expect[i * n + j] = acc + c[i * n + j];
            }
        }
        return verifyFloats(got, expect);
    };
    return app;
}

const char *kStatsSource = R"CL(
__kernel void col_mean(__global float* D, __global float* mean, int n,
                       int m) {
  int j = get_global_id(0);
  float acc = 0.0f;
  for (int i = 0; i < n; i++)
    acc += D[i * m + j];
  mean[j] = acc / (float)n;
}
__kernel void col_std(__global float* D, __global float* mean,
                      __global float* stdev, int n, int m) {
  int j = get_global_id(0);
  float acc = 0.0f;
  for (int i = 0; i < n; i++) {
    float d = D[i * m + j] - mean[j];
    acc += d * d;
  }
  float s = sqrt(acc / (float)n);
  if (s < 0.005f) s = 1.0f;
  stdev[j] = s;
}
__kernel void correlate(__global float* D, __global float* mean,
                        __global float* stdev, __global float* R, int n,
                        int m) {
  int gid = get_global_id(0);
  int j1 = gid / m;
  int j2 = gid % m;
  float acc = 0.0f;
  for (int i = 0; i < n; i++) {
    acc += (D[i * m + j1] - mean[j1]) * (D[i * m + j2] - mean[j2]);
  }
  R[gid] = acc / ((float)n * stdev[j1] * stdev[j2]);
}
__kernel void covariance(__global float* D, __global float* mean,
                         __global float* R, int n, int m) {
  int gid = get_global_id(0);
  int j1 = gid / m;
  int j2 = gid % m;
  float acc = 0.0f;
  for (int i = 0; i < n; i++) {
    acc += (D[i * m + j1] - mean[j1]) * (D[i * m + j2] - mean[j2]);
  }
  R[gid] = acc / (float)(n - 1);
}
)CL";

App
makeCorr()
{
    App app;
    app.name = "corr";
    app.suite = "PolyBench";
    app.source = kStatsSource;
    app.host = [](BenchContext &ctx) {
        const int n = 32, m = 16;
        size_t total = static_cast<size_t>(n) * m;
        auto d = randomFloats(111, total);
        rt::Buffer bd = upload(ctx, d);
        rt::Buffer bmean = uploadZeros<float>(ctx, m);
        rt::Buffer bstd = uploadZeros<float>(ctx, m);
        rt::Buffer br =
            uploadZeros<float>(ctx, static_cast<size_t>(m) * m);
        ctx.launch("col_mean", range1d(m, 8), {bd, bmean, n, m});
        ctx.launch("col_std", range1d(m, 8), {bd, bmean, bstd, n, m});
        ctx.launch("correlate", range1d(static_cast<size_t>(m) * m, 16),
                   {bd, bmean, bstd, br, n, m});
        auto got = download<float>(ctx, br,
                                   static_cast<size_t>(m) * m);
        // Host oracle.
        std::vector<float> mean(m, 0.0f), stdev(m, 0.0f);
        for (int j = 0; j < m; ++j) {
            for (int i = 0; i < n; ++i)
                mean[j] += d[i * m + j];
            mean[j] /= static_cast<float>(n);
        }
        for (int j = 0; j < m; ++j) {
            float acc = 0.0f;
            for (int i = 0; i < n; ++i) {
                float dd = d[i * m + j] - mean[j];
                acc += dd * dd;
            }
            float s = std::sqrt(acc / static_cast<float>(n));
            stdev[j] = s < 0.005f ? 1.0f : s;
        }
        std::vector<float> expect(static_cast<size_t>(m) * m);
        for (int j1 = 0; j1 < m; ++j1) {
            for (int j2 = 0; j2 < m; ++j2) {
                float acc = 0.0f;
                for (int i = 0; i < n; ++i) {
                    acc += (d[i * m + j1] - mean[j1]) *
                           (d[i * m + j2] - mean[j2]);
                }
                expect[j1 * m + j2] =
                    acc / (static_cast<float>(n) * stdev[j1] * stdev[j2]);
            }
        }
        return verifyFloats(got, expect, 5e-3f);
    };
    return app;
}

App
makeCovar()
{
    App app;
    app.name = "covar";
    app.suite = "PolyBench";
    app.source = kStatsSource;
    app.host = [](BenchContext &ctx) {
        const int n = 32, m = 16;
        size_t total = static_cast<size_t>(n) * m;
        auto d = randomFloats(121, total);
        rt::Buffer bd = upload(ctx, d);
        rt::Buffer bmean = uploadZeros<float>(ctx, m);
        rt::Buffer br =
            uploadZeros<float>(ctx, static_cast<size_t>(m) * m);
        ctx.launch("col_mean", range1d(m, 8), {bd, bmean, n, m});
        ctx.launch("covariance", range1d(static_cast<size_t>(m) * m, 16),
                   {bd, bmean, br, n, m});
        auto got = download<float>(ctx, br,
                                   static_cast<size_t>(m) * m);
        std::vector<float> mean(m, 0.0f);
        for (int j = 0; j < m; ++j) {
            for (int i = 0; i < n; ++i)
                mean[j] += d[i * m + j];
            mean[j] /= static_cast<float>(n);
        }
        std::vector<float> expect(static_cast<size_t>(m) * m);
        for (int j1 = 0; j1 < m; ++j1) {
            for (int j2 = 0; j2 < m; ++j2) {
                float acc = 0.0f;
                for (int i = 0; i < n; ++i) {
                    acc += (d[i * m + j1] - mean[j1]) *
                           (d[i * m + j2] - mean[j2]);
                }
                expect[j1 * m + j2] = acc / static_cast<float>(n - 1);
            }
        }
        return verifyFloats(got, expect, 5e-3f);
    };
    return app;
}

App
makeGramschmidt()
{
    App app;
    app.name = "gramschm";
    app.suite = "PolyBench";
    app.source = R"CL(
__kernel void gs_norm(__global float* A, __global float* Rdiag, int n,
                      int k) {
  // Single work-item computes the column norm (sequential step).
  if (get_global_id(0) == 0) {
    float acc = 0.0f;
    for (int i = 0; i < n; i++)
      acc += A[i * n + k] * A[i * n + k];
    Rdiag[k] = sqrt(acc);
  }
}
__kernel void gs_scale(__global float* A, __global float* Rdiag, int n,
                       int k) {
  int i = get_global_id(0);
  float rkk = Rdiag[k];
  if (rkk < 1e-6f) rkk = 1.0f;
  A[i * n + k] = A[i * n + k] / rkk;
}
__kernel void gs_subtract(__global float* A, int n, int k) {
  int j = get_global_id(0);
  if (j <= k) return;
  float dot = 0.0f;
  for (int i = 0; i < n; i++)
    dot += A[i * n + k] * A[i * n + j];
  for (int i = 0; i < n; i++)
    A[i * n + j] -= A[i * n + k] * dot;
}
)CL";
    app.host = [](BenchContext &ctx) {
        const int n = 12;
        size_t total = static_cast<size_t>(n) * n;
        auto a = randomFloats(131, total, 0.1f, 1.1f);
        rt::Buffer ba = upload(ctx, a);
        rt::Buffer brd = uploadZeros<float>(ctx, static_cast<size_t>(n));
        for (int k = 0; k < n; ++k) {
            ctx.launch("gs_norm", range1d(4, 4), {ba, brd, n, k});
            ctx.launch("gs_scale", range1d(n, 4), {ba, brd, n, k});
            ctx.launch("gs_subtract", range1d(n, 4), {ba, n, k});
        }
        auto got = download<float>(ctx, ba, total);
        // Verify orthonormal columns: Q^T Q == I.
        bool ok = true;
        for (int j1 = 0; j1 < n && ok; ++j1) {
            for (int j2 = 0; j2 < n && ok; ++j2) {
                float dot = 0.0f;
                for (int i = 0; i < n; ++i)
                    dot += got[i * n + j1] * got[i * n + j2];
                float expect = j1 == j2 ? 1.0f : 0.0f;
                ok = std::fabs(dot - expect) < 2e-2f;
            }
        }
        return ok;
    };
    return app;
}

App
makeFdtd2d()
{
    App app;
    app.name = "fdtd-2d";
    app.suite = "PolyBench";
    app.source = R"CL(
__kernel void fdtd_ey(__global float* ey, __global float* hz, int w,
                      int h, float t) {
  int gid = get_global_id(0);
  int x = gid % w;
  int y = gid / w;
  if (y == 0) { ey[gid] = t; return; }
  ey[gid] = ey[gid] - 0.5f * (hz[gid] - hz[(y - 1) * w + x]);
}
__kernel void fdtd_ex(__global float* ex, __global float* hz, int w,
                      int h) {
  int gid = get_global_id(0);
  int x = gid % w;
  if (x == 0) return;
  ex[gid] = ex[gid] - 0.5f * (hz[gid] - hz[gid - 1]);
}
__kernel void fdtd_hz(__global float* ex, __global float* ey,
                      __global float* hz, int w, int h) {
  int gid = get_global_id(0);
  int x = gid % w;
  int y = gid / w;
  if (x >= w - 1 || y >= h - 1) return;
  hz[gid] = hz[gid] - 0.7f * (ex[(y + 1) * w + x] - ex[gid] +
                              ey[y * w + x + 1] - ey[gid]);
}
)CL";
    app.host = [](BenchContext &ctx) {
        const int w = 24, h = 16, steps = 3;
        size_t total = static_cast<size_t>(w) * h;
        auto ex = randomFloats(141, total);
        auto ey = randomFloats(142, total);
        auto hz = randomFloats(143, total);
        std::vector<float> hex = ex, hey = ey, hhz = hz;
        rt::Buffer bex = upload(ctx, ex);
        rt::Buffer bey = upload(ctx, ey);
        rt::Buffer bhz = upload(ctx, hz);
        for (int t = 0; t < steps; ++t) {
            float tv = static_cast<float>(t);
            ctx.launch("fdtd_ey", range1d(total, 24),
                       {bey, bhz, w, h, tv});
            ctx.launch("fdtd_ex", range1d(total, 24), {bex, bhz, w, h});
            ctx.launch("fdtd_hz", range1d(total, 24),
                       {bex, bey, bhz, w, h});
            // Host oracle step.
            for (int y = 0; y < h; ++y) {
                for (int x = 0; x < w; ++x) {
                    int i = y * w + x;
                    if (y == 0)
                        hey[i] = tv;
                    else
                        hey[i] -= 0.5f * (hhz[i] - hhz[i - w]);
                }
            }
            for (int y = 0; y < h; ++y) {
                for (int x = 1; x < w; ++x) {
                    int i = y * w + x;
                    hex[i] -= 0.5f * (hhz[i] - hhz[i - 1]);
                }
            }
            for (int y = 0; y < h - 1; ++y) {
                for (int x = 0; x < w - 1; ++x) {
                    int i = y * w + x;
                    hhz[i] -= 0.7f * (hex[i + w] - hex[i] +
                                      hey[i + 1] - hey[i]);
                }
            }
        }
        auto got = download<float>(ctx, bhz, total);
        return verifyFloats(got, hhz, 1e-2f);
    };
    return app;
}

} // namespace

std::vector<App>
polyApps()
{
    std::vector<App> apps;
    apps.push_back(make2dconv());
    apps.push_back(make3dconv());
    apps.push_back(make2mm());
    apps.push_back(make3mm());
    apps.push_back(makeAtax());
    apps.push_back(makeBicg());
    apps.push_back(makeGemm());
    apps.push_back(makeGesummv());
    apps.push_back(makeGramschmidt());
    apps.push_back(makeMvt());
    apps.push_back(makeSyr2k());
    apps.push_back(makeSyrk());
    apps.push_back(makeCorr());
    apps.push_back(makeCovar());
    apps.push_back(makeFdtd2d());
    return apps;
}

} // namespace soff::benchsuite
