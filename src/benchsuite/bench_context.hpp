/**
 * @file
 * The benchmark execution harness: one host-program API that can run an
 * application on any of the four engines the evaluation compares —
 * SOFF's cycle-level circuit simulation, the reference interpreter, and
 * the Intel-like / Xilinx-like compile-time-pipelining baselines
 * (paper §VI, Table I/II, Fig. 11/12).
 */
#pragma once

#include <optional>
#include <variant>

#include "baseline/static_pipeline.hpp"
#include "runtime/runtime.hpp"

namespace soff::benchsuite
{

/** Which execution engine a BenchContext drives. */
enum class Engine
{
    SoffSim,    ///< SOFF on the (simulated) Intel Arria 10 (System A).
    Reference,  ///< Functional oracle (no timing).
    IntelLike,  ///< Intel-FPGA-SDK-like baseline on System A.
    XilinxLike, ///< Xilinx-SDAccel-like baseline on System B (VU9P).
};

const char *engineName(Engine engine);

/** A kernel launch argument. */
using Arg = std::variant<rt::Buffer, int32_t, uint32_t, int64_t,
                         uint64_t, float, double>;

/** 1-D NDRange helper. */
sim::NDRange range1d(uint64_t global, uint64_t local);
/** 2-D NDRange helper. */
sim::NDRange range2d(uint64_t gx, uint64_t gy, uint64_t lx, uint64_t ly);

/** Per-run metrics accumulated over all launches of one application. */
struct RunMetrics
{
    double timeMs = 0.0;
    uint64_t cycles = 0;
    int instances = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t cacheEvictions = 0;
    uint64_t dramTransfers = 0;
    uint64_t dramBytes = 0;
    int launches = 0;
    /** Scheduler work (SoffSim engine only; see bench/sim_throughput). */
    uint64_t componentSteps = 0;
    uint64_t cyclesActive = 0;
    uint64_t channelCommits = 0;
    /** Per-launch architectural counter reports (SoffSim engine only). */
    std::vector<std::shared_ptr<const sim::StatsReport>> statsReports;
};

/** The engine-dispatching host context used by every application. */
class BenchContext
{
  public:
    explicit BenchContext(Engine engine);

    Engine engine() const { return engine_; }

    /** Compiler/planner knobs (ablation benches); set before build(). */
    void setCompilerOptions(const core::CompilerOptions &options)
    {
        options_ = options;
    }
    /** Forces a datapath instance count (0 = resource-model maximum). */
    void setInstanceOverride(int instances)
    {
        instanceOverride_ = instances;
    }
    /** Platform timing/scheduler knobs for the SoffSim engine. */
    void setPlatformConfig(const sim::PlatformConfig &platform)
    {
        platform_ = platform;
    }

    /** Compiles the application's OpenCL C program. */
    void build(const std::string &source);

    rt::Buffer createBuffer(uint64_t size);
    void write(const rt::Buffer &buffer, const void *src, uint64_t size);
    void read(const rt::Buffer &buffer, void *dst, uint64_t size);

    /** Launches a kernel; accumulates engine-dependent timing. */
    void launch(const std::string &kernel, const sim::NDRange &ndrange,
                const std::vector<Arg> &args);

    const RunMetrics &metrics() const { return metrics_; }
    const core::CompiledProgram &compiled() const
    {
        return program_->compiled();
    }
    rt::Context &context() { return ctx_; }

  private:
    int baselineInstances(const core::CompiledKernel &kernel) const;

    Engine engine_;
    rt::Context ctx_;
    core::CompilerOptions options_;
    sim::PlatformConfig platform_;
    int instanceOverride_ = 0;
    std::optional<rt::Program> program_;
    RunMetrics metrics_;
};

} // namespace soff::benchsuite
