/**
 * @file
 * The 34-application benchmark suite standing in for SPEC ACCEL (19
 * applications) and PolyBench (15 applications) of paper Table II.
 *
 * Each application is a miniature, self-contained workload with the
 * same kernel *structure* as the original (local memory use, barriers,
 * atomics, indirect pointers, loop and access patterns) at laptop
 * scale, plus a host driver and a host-computed verification oracle
 * (DESIGN.md substitution table).
 */
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "benchsuite/bench_context.hpp"

namespace soff::benchsuite
{

/** One benchmark application. */
struct App
{
    std::string name;   ///< e.g. "112.spmv".
    std::string suite;  ///< "SPEC ACCEL" or "PolyBench".
    std::string source; ///< OpenCL C program.
    /**
     * Host driver: sets up buffers, launches kernels, verifies the
     * results against a host oracle. Returns true if correct.
     */
    std::function<bool(BenchContext &)> host;
    /** Expected to exceed the Arria 10's resources (Table II "IR"). */
    bool expectInsufficientResources = false;
};

/** All 34 applications in Table II order. */
const std::vector<App> &allApps();

/** Finds one application by name (nullptr if unknown). */
const App *findApp(const std::string &name);

/** Runs one application on an engine; returns host verification. */
bool runApp(const App &app, BenchContext &ctx);

/** Approximate float comparison for host oracles. */
bool nearlyEqual(float a, float b, float tolerance = 2e-3f);

} // namespace soff::benchsuite
