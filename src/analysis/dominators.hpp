/**
 * @file
 * Dominator tree and dominance frontiers (Cooper-Harvey-Kennedy).
 */
#pragma once

#include <map>
#include <set>
#include <vector>

#include "analysis/cfg.hpp"

namespace soff::analysis
{

/** Dominator tree over a kernel CFG. */
class DomTree
{
  public:
    explicit DomTree(const CfgInfo &cfg);

    /** Immediate dominator; the entry's idom is itself. */
    const ir::BasicBlock *idom(const ir::BasicBlock *bb) const
    {
        return idom_.at(bb);
    }

    /** True if a dominates b (reflexive). */
    bool dominates(const ir::BasicBlock *a, const ir::BasicBlock *b) const;

    /** Dominator-tree children. */
    const std::vector<const ir::BasicBlock *> &
    children(const ir::BasicBlock *bb) const;

    /** Dominance frontier of a block. */
    const std::set<const ir::BasicBlock *> &
    frontier(const ir::BasicBlock *bb) const
    {
        return frontier_.at(bb);
    }

  private:
    const CfgInfo &cfg_;
    std::map<const ir::BasicBlock *, const ir::BasicBlock *> idom_;
    std::map<const ir::BasicBlock *, std::vector<const ir::BasicBlock *>>
        children_;
    std::map<const ir::BasicBlock *, std::set<const ir::BasicBlock *>>
        frontier_;
};

} // namespace soff::analysis
