#include "analysis/cfg.hpp"

#include <algorithm>
#include <set>

namespace soff::analysis
{

CfgInfo::CfgInfo(const ir::Kernel &kernel) : kernel_(kernel)
{
    for (const auto &bb : kernel.blocks()) {
        preds_[bb.get()];
        for (ir::BasicBlock *s : bb->successors())
            preds_[s].push_back(bb.get());
    }
    // Post-order DFS, then reverse.
    std::set<const ir::BasicBlock *> visited;
    std::vector<std::pair<ir::BasicBlock *, size_t>> stack;
    if (kernel.entry() != nullptr) {
        stack.push_back({kernel.entry(), 0});
        visited.insert(kernel.entry());
    }
    while (!stack.empty()) {
        auto &[bb, idx] = stack.back();
        auto succs = bb->successors();
        if (idx < succs.size()) {
            ir::BasicBlock *s = succs[idx++];
            if (visited.insert(s).second)
                stack.push_back({s, 0});
        } else {
            rpo_.push_back(bb);
            stack.pop_back();
        }
    }
    std::reverse(rpo_.begin(), rpo_.end());
    for (size_t i = 0; i < rpo_.size(); ++i)
        rpoIndex_[rpo_[i]] = i;
}

} // namespace soff::analysis
