/**
 * @file
 * Cached control-flow-graph views of a kernel.
 */
#pragma once

#include <map>
#include <vector>

#include "ir/kernel.hpp"

namespace soff::analysis
{

/** Predecessors/successors and orderings, computed once per kernel. */
class CfgInfo
{
  public:
    explicit CfgInfo(const ir::Kernel &kernel);

    const ir::Kernel &kernel() const { return kernel_; }

    const std::vector<ir::BasicBlock *> &
    preds(const ir::BasicBlock *bb) const
    {
        return preds_.at(bb);
    }
    std::vector<ir::BasicBlock *>
    succs(const ir::BasicBlock *bb) const
    {
        return bb->successors();
    }

    /** Blocks in reverse post-order from the entry. */
    const std::vector<ir::BasicBlock *> &rpo() const { return rpo_; }

    /** RPO index of a block. */
    size_t rpoIndex(const ir::BasicBlock *bb) const
    {
        return rpoIndex_.at(bb);
    }

    bool reachable(const ir::BasicBlock *bb) const
    {
        return rpoIndex_.count(bb) > 0;
    }

  private:
    const ir::Kernel &kernel_;
    std::map<const ir::BasicBlock *, std::vector<ir::BasicBlock *>> preds_;
    std::vector<ir::BasicBlock *> rpo_;
    std::map<const ir::BasicBlock *, size_t> rpoIndex_;
};

} // namespace soff::analysis
