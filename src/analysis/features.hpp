/**
 * @file
 * Kernel feature inventory (the L/B/A columns of paper Table II plus
 * the structural properties the per-framework compatibility checker
 * keys on).
 */
#pragma once

#include "ir/kernel.hpp"

namespace soff::analysis
{

/** Observable features of one kernel. */
struct KernelFeatures
{
    bool usesLocalMemory = false;      ///< Table II column "L".
    bool usesBarrier = false;          ///< Table II column "B".
    bool usesAtomics = false;          ///< Table II column "A".
    bool usesIndirectPointers = false; ///< Pointers loaded from memory.
    bool localAccessInBranch = false;  ///< Local access off the spine.
    bool barrierInDivergentLoop = false; ///< Barrier inside a loop.
    bool usesDouble = false;
    int numMemoryAccesses = 0;
    int numInstructions = 0;
    int numBlocks = 0;
    int numLoops = 0;
    /** Kernels in the program (module-level scans only). */
    int numKernels = 1;
};

/** Scans a kernel and summarizes its features. */
KernelFeatures scanKernelFeatures(const ir::Kernel &kernel);

/** Unions the features of every kernel in a module. */
KernelFeatures scanModuleFeatures(const ir::Module &module);

} // namespace soff::analysis
