#include "analysis/liveness.hpp"

#include <algorithm>

namespace soff::analysis
{

namespace
{

/** Only instruction results travel between pipelines; constants and
 *  kernel arguments are available everywhere (argument register). */
bool
tracked(const ir::Value *v)
{
    return v != nullptr && v->isInstruction() &&
           !v->type()->isVoid();
}

} // namespace

Liveness::Liveness(const CfgInfo &cfg)
{
    // Backward iterative data-flow on the reducible CFGs we generate.
    // use[b]: used before any (re)definition; SSA makes def unique.
    std::map<const ir::BasicBlock *, std::set<const ir::Value *>> use;
    std::map<const ir::BasicBlock *, std::set<const ir::Value *>> def;

    for (const ir::BasicBlock *bb : cfg.rpo()) {
        auto &u = use[bb];
        auto &d = def[bb];
        // Phi results are defined at the very top of the block, before
        // any other instruction can read them.
        for (const ir::Instruction *phi : bb->phis()) {
            if (tracked(phi))
                d.insert(phi);
        }
        for (const auto &inst : bb->instructions()) {
            if (inst->op() == ir::Opcode::Phi)
                continue; // operands handled as live-out of predecessors
            for (const ir::Value *op : inst->operands()) {
                if (tracked(op) && !d.count(op))
                    u.insert(op);
            }
            if (tracked(inst.get()))
                d.insert(inst.get());
        }
        liveIn_[bb];
        liveOut_[bb];
    }

    bool changed = true;
    while (changed) {
        changed = false;
        // Iterate in post-order (reverse of RPO) for fast convergence.
        for (auto it = cfg.rpo().rbegin(); it != cfg.rpo().rend(); ++it) {
            const ir::BasicBlock *bb = *it;
            std::set<const ir::Value *> out;
            for (const ir::BasicBlock *s : bb->successors()) {
                if (!cfg.reachable(s))
                    continue;
                // liveIn(s) plus the values s's phis read from bb.
                for (const ir::Value *v : liveIn_.at(s))
                    out.insert(v);
                for (const ir::Instruction *phi : s->phis()) {
                    for (size_t k = 0; k < phi->numOperands(); ++k) {
                        if (phi->phiBlocks()[k] == bb &&
                            tracked(phi->operand(k))) {
                            out.insert(phi->operand(k));
                        }
                    }
                }
                // Phi results of s are defined in s, not live-out of bb
                // ... but they ARE carried by the edge; the datapath
                // treats them as materializing in the select glue. For
                // liveness purposes they belong to liveIn(s) already.
            }
            std::set<const ir::Value *> in = use.at(bb);
            for (const ir::Value *v : out) {
                if (!def.at(bb).count(v))
                    in.insert(v);
            }
            if (out != liveOut_.at(bb)) {
                liveOut_[bb] = std::move(out);
                changed = true;
            }
            if (in != liveIn_.at(bb)) {
                liveIn_[bb] = std::move(in);
                changed = true;
            }
        }
    }

    // Phi results: live-in of their own block (they enter the pipeline
    // as inputs resolved by the select glue).
    bool changed2 = true;
    while (changed2) {
        changed2 = false;
        for (const ir::BasicBlock *bb : cfg.rpo()) {
            for (const ir::Instruction *phi : bb->phis()) {
                if (tracked(phi) && liveIn_[bb].insert(phi).second)
                    changed2 = true;
            }
        }
    }
}

std::vector<const ir::Value *>
Liveness::orderedLiveIn(const ir::BasicBlock *bb) const
{
    std::vector<const ir::Value *> out(liveIn_.at(bb).begin(),
                                       liveIn_.at(bb).end());
    std::sort(out.begin(), out.end(),
              [](const ir::Value *a, const ir::Value *b) {
                  return a->id() < b->id();
              });
    return out;
}

std::vector<const ir::Value *>
Liveness::orderedLiveOut(const ir::BasicBlock *bb) const
{
    std::vector<const ir::Value *> out(liveOut_.at(bb).begin(),
                                       liveOut_.at(bb).end());
    std::sort(out.begin(), out.end(),
              [](const ir::Value *a, const ir::Value *b) {
                  return a->id() < b->id();
              });
    return out;
}

} // namespace soff::analysis
