/**
 * @file
 * Buffer-level pointer analysis (paper §V-A, Fig. 3 "Pointer Analysis").
 *
 * "SOFF makes a separate cache for every OpenCL buffer. [...] SOFF
 * chooses a proper cache for each functional unit according to the
 * result of the pointer analysis." The analysis maps every pointer SSA
 * value to the set of memory objects it may reference: a global/constant
 * buffer argument, a __local variable, or "any global buffer" for
 * indirect pointers loaded from memory.
 */
#pragma once

#include <map>
#include <set>

#include "ir/kernel.hpp"

namespace soff::analysis
{

/** An abstract memory object a pointer may reference. */
struct MemObject
{
    enum class Kind
    {
        Buffer,     ///< A global/constant pointer kernel argument.
        LocalVar,   ///< A __local variable.
        AnyGlobal,  ///< Unknown global location (indirect pointer).
    };

    Kind kind = Kind::AnyGlobal;
    const ir::Argument *buffer = nullptr;
    const ir::LocalVar *localVar = nullptr;

    bool operator<(const MemObject &o) const;
    bool operator==(const MemObject &o) const;
};

/** Flow-insensitive may-points-to over a kernel's pointer values. */
class PointerAnalysis
{
  public:
    explicit PointerAnalysis(const ir::Kernel &kernel);

    /** Points-to set of a pointer-typed value. */
    const std::set<MemObject> &pointsTo(const ir::Value *v) const;

    /**
     * The single buffer argument the memory access references, or
     * nullptr if it may touch several buffers / unknown locations.
     */
    const ir::Argument *uniqueBuffer(const ir::Instruction *access) const;

    /** The single __local variable referenced, or nullptr. */
    const ir::LocalVar *uniqueLocalVar(const ir::Instruction *access) const;

    /** True if the two memory accesses may touch the same object. */
    bool mayAlias(const ir::Instruction *a, const ir::Instruction *b) const;

    /** True if the kernel contains any indirect (loaded) pointer. */
    bool hasIndirectPointers() const { return hasIndirect_; }

  private:
    std::map<const ir::Value *, std::set<MemObject>> pointsTo_;
    std::set<MemObject> empty_;
    bool hasIndirect_ = false;
};

} // namespace soff::analysis
