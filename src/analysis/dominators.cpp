#include "analysis/dominators.hpp"

#include "support/error.hpp"

namespace soff::analysis
{

DomTree::DomTree(const CfgInfo &cfg) : cfg_(cfg)
{
    const auto &rpo = cfg.rpo();
    if (rpo.empty())
        return;
    const ir::BasicBlock *entry = rpo[0];
    idom_[entry] = entry;

    auto intersect = [&](const ir::BasicBlock *a, const ir::BasicBlock *b) {
        while (a != b) {
            while (cfg_.rpoIndex(a) > cfg_.rpoIndex(b))
                a = idom_.at(a);
            while (cfg_.rpoIndex(b) > cfg_.rpoIndex(a))
                b = idom_.at(b);
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (const ir::BasicBlock *bb : rpo) {
            if (bb == entry)
                continue;
            const ir::BasicBlock *new_idom = nullptr;
            for (const ir::BasicBlock *p : cfg_.preds(bb)) {
                if (!cfg_.reachable(p) || !idom_.count(p))
                    continue;
                new_idom = new_idom == nullptr ? p : intersect(p, new_idom);
            }
            SOFF_ASSERT(new_idom != nullptr || !changed,
                        "unreachable block in dominator computation");
            if (new_idom != nullptr &&
                (!idom_.count(bb) || idom_.at(bb) != new_idom)) {
                idom_[bb] = new_idom;
                changed = true;
            }
        }
    }

    for (const auto &[bb, parent] : idom_) {
        if (bb != entry)
            children_[parent].push_back(bb);
        children_[bb]; // ensure present
    }

    // Dominance frontiers (Cooper et al.).
    for (const ir::BasicBlock *bb : rpo)
        frontier_[bb];
    for (const ir::BasicBlock *bb : rpo) {
        const auto &preds = cfg_.preds(bb);
        if (preds.size() < 2)
            continue;
        for (const ir::BasicBlock *p : preds) {
            if (!cfg_.reachable(p))
                continue;
            const ir::BasicBlock *runner = p;
            while (runner != idom_.at(bb)) {
                frontier_[runner].insert(bb);
                runner = idom_.at(runner);
            }
        }
    }
}

bool
DomTree::dominates(const ir::BasicBlock *a, const ir::BasicBlock *b) const
{
    const ir::BasicBlock *cur = b;
    while (true) {
        if (cur == a)
            return true;
        const ir::BasicBlock *up = idom_.at(cur);
        if (up == cur)
            return false;
        cur = up;
    }
}

const std::vector<const ir::BasicBlock *> &
DomTree::children(const ir::BasicBlock *bb) const
{
    static const std::vector<const ir::BasicBlock *> none;
    auto it = children_.find(bb);
    return it == children_.end() ? none : it->second;
}

} // namespace soff::analysis
