#include "analysis/control_tree.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "support/error.hpp"

namespace soff::analysis
{

const char *
ctKindName(CTKind kind)
{
    switch (kind) {
      case CTKind::Block: return "Block";
      case CTKind::Sequence: return "Sequence";
      case CTKind::IfThen: return "IfThen";
      case CTKind::IfThenElse: return "IfThenElse";
      case CTKind::SelfLoop: return "SelfLoop";
      case CTKind::WhileLoop: return "WhileLoop";
      case CTKind::ProperInterval: return "ProperInterval";
      case CTKind::NaturalLoop: return "NaturalLoop";
    }
    return "?";
}

size_t
CTNode::numOutPorts() const
{
    if (isLeaf()) {
        const ir::Instruction *term = block_->terminator();
        return term == nullptr ? 0 : term->numSuccs();
    }
    size_t max_port = 0;
    bool any = false;
    for (const CTEdge &e : exitEdges_) {
        any = true;
        max_port = std::max(max_port, e.regionPort);
    }
    return any ? max_port + 1 : 0;
}

const ir::BasicBlock *
CTNode::entryBlock() const
{
    const CTNode *cur = this;
    while (!cur->isLeaf())
        cur = cur->children_.at(cur->entryChild_).get();
    return cur->block();
}

size_t
CTNode::countLeaves() const
{
    if (isLeaf())
        return 1;
    size_t n = 0;
    for (const auto &c : children_)
        n += c->countLeaves();
    return n;
}

std::string
CTNode::str(int indent) const
{
    std::string pad(static_cast<size_t>(indent) * 2, ' ');
    if (isLeaf())
        return pad + "Block " + block_->name() + "\n";
    std::string out = pad + ctKindName(kind_) + "\n";
    for (const auto &c : children_)
        out += c->str(indent + 1);
    return out;
}

namespace
{

struct ANode;

/** An edge of the abstract (region) graph during reduction. */
struct AEdge
{
    ANode *from = nullptr;
    ANode *to = nullptr;
    size_t fromPort = 0;
    const ir::BasicBlock *srcBlock = nullptr; ///< nullptr when resolved.
    size_t succIdx = 0;
    const ir::BasicBlock *dstBlock = nullptr;
    bool alive = true;
};

/** An abstract node wrapping a (partially built) control-tree node. */
struct ANode
{
    std::unique_ptr<CTNode> ct;
    std::vector<AEdge *> ins;
    std::vector<AEdge *> outs;
    bool alive = true;
    int id = 0;
};

class Reducer
{
  public:
    explicit Reducer(const ir::Kernel &kernel) : kernel_(kernel) {}

    std::unique_ptr<CTNode>
    run()
    {
        buildInitialGraph();
        int guard = 0;
        while (liveNodeCount() > 1 || !liveOuts(entry_).empty()) {
            if (++guard > 100000) {
                throw CompileError("kernel '" + kernel_.name() +
                                   "': control-tree reduction diverged");
            }
            if (trySelfLoop() || trySequence() || tryBranch() ||
                tryWhileLoop() || tryParallelEdges() || tryNaturalLoop() ||
                tryProperInterval()) {
                continue;
            }
            throw CompileError(
                "kernel '" + kernel_.name() + "': unstructured "
                "(irreducible) control flow is not supported");
        }
        return std::move(entry_->ct);
    }

  private:
    // --- graph helpers ---
    std::vector<AEdge *>
    liveOuts(const ANode *n) const
    {
        std::vector<AEdge *> out;
        for (AEdge *e : n->outs) {
            if (e->alive)
                out.push_back(e);
        }
        return out;
    }

    std::vector<AEdge *>
    liveIns(const ANode *n) const
    {
        std::vector<AEdge *> out;
        for (AEdge *e : n->ins) {
            if (e->alive)
                out.push_back(e);
        }
        return out;
    }

    size_t
    liveNodeCount() const
    {
        size_t n = 0;
        for (const auto &node : nodes_) {
            if (node->alive)
                ++n;
        }
        return n;
    }

    std::vector<ANode *>
    liveNodes() const
    {
        std::vector<ANode *> out;
        for (const auto &node : nodes_) {
            if (node->alive)
                out.push_back(node.get());
        }
        return out;
    }

    AEdge *
    addEdge(ANode *from, ANode *to, size_t from_port,
            const ir::BasicBlock *src, size_t succ_idx,
            const ir::BasicBlock *dst)
    {
        edges_.push_back(std::make_unique<AEdge>());
        AEdge *e = edges_.back().get();
        e->from = from;
        e->to = to;
        e->fromPort = from_port;
        e->srcBlock = src;
        e->succIdx = succ_idx;
        e->dstBlock = dst;
        from->outs.push_back(e);
        to->ins.push_back(e);
        return e;
    }

    void
    buildInitialGraph()
    {
        std::map<const ir::BasicBlock *, ANode *> node_of;
        for (const auto &bb : kernel_.blocks()) {
            nodes_.push_back(std::make_unique<ANode>());
            ANode *n = nodes_.back().get();
            n->id = static_cast<int>(nodes_.size());
            n->ct = std::make_unique<CTNode>(CTKind::Block);
            n->ct->setBlock(bb.get());
            node_of[bb.get()] = n;
        }
        for (const auto &bb : kernel_.blocks()) {
            const ir::Instruction *term = bb->terminator();
            SOFF_ASSERT(term != nullptr, "unterminated block");
            for (size_t i = 0; i < term->numSuccs(); ++i) {
                addEdge(node_of.at(bb.get()), node_of.at(term->succ(i)),
                        i, bb.get(), i, term->succ(i));
            }
        }
        entry_ = node_of.at(kernel_.entry());
    }

    /**
     * Collapses `members` (entry first) into one region node of `kind`.
     * Internal edges targeting the entry member of a loop kind are
     * marked as back edges. Multiple external out edges with the same
     * (target node, target block) merge into one resolved edge.
     */
    ANode *
    collapse(const std::vector<ANode *> &members, CTKind kind)
    {
        bool is_loop = kind == CTKind::SelfLoop ||
                       kind == CTKind::WhileLoop ||
                       kind == CTKind::NaturalLoop;
        std::map<const ANode *, size_t> index_of;
        for (size_t i = 0; i < members.size(); ++i)
            index_of[members[i]] = i;

        auto region = std::make_unique<CTNode>(kind);
        for (ANode *m : members)
            region->addChild(std::move(m->ct));
        region->setEntryChild(0);

        nodes_.push_back(std::make_unique<ANode>());
        ANode *fresh = nodes_.back().get();
        fresh->id = static_cast<int>(nodes_.size());

        // Classify every live edge touching the region.
        std::vector<AEdge *> external_outs;
        for (ANode *m : members) {
            for (AEdge *e : liveOuts(m)) {
                if (index_of.count(e->to)) {
                    CTEdge ce;
                    ce.fromChild = index_of.at(e->from);
                    ce.fromPort = e->fromPort;
                    ce.toChild = index_of.at(e->to);
                    ce.srcBlock = e->srcBlock;
                    ce.succIdx = e->succIdx;
                    ce.dstBlock = e->dstBlock;
                    ce.isBackEdge = is_loop && e->to == members[0];
                    region->addEdge(ce);
                    e->alive = false;
                } else {
                    external_outs.push_back(e);
                }
            }
            for (AEdge *e : liveIns(m)) {
                if (!e->alive || index_of.count(e->from))
                    continue;
                if (m != members[0]) {
                    throw CompileError(
                        "kernel '" + kernel_.name() + "': irreducible "
                        "region (side entry into a collapsed region)");
                }
                // Retarget the in-edge to the fresh node.
                e->to = fresh;
                fresh->ins.push_back(e);
            }
        }

        // Group external outs by (target node, target block).
        std::vector<std::pair<ANode *, const ir::BasicBlock *>> groups;
        for (AEdge *e : external_outs) {
            auto key = std::make_pair(e->to, e->dstBlock);
            if (std::find(groups.begin(), groups.end(), key) ==
                groups.end()) {
                groups.push_back(key);
            }
        }
        for (size_t g = 0; g < groups.size(); ++g) {
            std::vector<AEdge *> in_group;
            for (AEdge *e : external_outs) {
                if (e->to == groups[g].first &&
                    e->dstBlock == groups[g].second) {
                    in_group.push_back(e);
                }
            }
            for (AEdge *e : in_group) {
                CTEdge ce;
                ce.fromChild = index_of.at(e->from);
                ce.fromPort = e->fromPort;
                ce.toChild = CTEdge::kExit;
                ce.srcBlock = e->srcBlock;
                ce.succIdx = e->succIdx;
                ce.dstBlock = e->dstBlock;
                ce.regionPort = g;
                region->addExitEdge(ce);
                e->alive = false;
            }
            // One abstract out edge per group; raw only when unique.
            AEdge *proto = in_group.front();
            addEdge(fresh, groups[g].first, g,
                    in_group.size() == 1 ? proto->srcBlock : nullptr,
                    in_group.size() == 1 ? proto->succIdx : 0,
                    groups[g].second);
        }
        for (ANode *m : members)
            m->alive = false;
        fresh->ct = std::move(region);
        if (std::find(members.begin(), members.end(), entry_) !=
            members.end()) {
            entry_ = fresh;
        }
        return fresh;
    }

    /** Region exit port for an exit CTEdge: its group index. */
    // (group index == port of the new abstract edge; the generator
    // re-groups exitEdges by dstBlock in the same deterministic order.)

    // --- patterns ---
    bool
    trySelfLoop()
    {
        for (ANode *n : liveNodes()) {
            for (AEdge *e : liveOuts(n)) {
                if (e->to == n) {
                    collapse({n}, CTKind::SelfLoop);
                    return true;
                }
            }
        }
        return false;
    }

    bool
    trySequence()
    {
        for (ANode *n : liveNodes()) {
            auto outs = liveOuts(n);
            if (outs.size() != 1)
                continue;
            ANode *m = outs[0]->to;
            if (m == n || liveIns(m).size() != 1)
                continue;
            collapse({n, m}, CTKind::Sequence);
            return true;
        }
        return false;
    }

    bool
    tryBranch()
    {
        for (ANode *n : liveNodes()) {
            auto outs = liveOuts(n);
            if (outs.size() != 2)
                continue;
            ANode *a = outs[0]->to;
            ANode *b = outs[1]->to;
            if (a == n || b == n || a == b)
                continue;
            auto single_in_out = [&](ANode *x, ANode *only_pred) {
                auto ins = liveIns(x);
                auto xout = liveOuts(x);
                return ins.size() == 1 && ins[0]->from == only_pred &&
                       xout.size() == 1;
            };
            // IfThenElse: n -> a, n -> b; a -> j; b -> j.
            if (single_in_out(a, n) && single_in_out(b, n)) {
                AEdge *aj = liveOuts(a)[0];
                AEdge *bj = liveOuts(b)[0];
                if (aj->to == bj->to && aj->dstBlock == bj->dstBlock &&
                    aj->to != n && aj->to != a && aj->to != b) {
                    collapse({n, a, b}, CTKind::IfThenElse);
                    return true;
                }
            }
            // IfThen: n -> a -> j and n -> j.
            for (int k = 0; k < 2; ++k) {
                ANode *then_node = k == 0 ? a : b;
                AEdge *skip_edge = outs[k == 0 ? 1 : 0];
                if (!single_in_out(then_node, n))
                    continue;
                AEdge *tj = liveOuts(then_node)[0];
                if (tj->to == skip_edge->to && tj->to != n &&
                    tj->to != then_node &&
                    tj->dstBlock == skip_edge->dstBlock) {
                    collapse({n, then_node}, CTKind::IfThen);
                    return true;
                }
            }
        }
        return false;
    }

    bool
    tryWhileLoop()
    {
        for (ANode *n : liveNodes()) {
            auto outs = liveOuts(n);
            if (outs.size() != 2)
                continue;
            for (int k = 0; k < 2; ++k) {
                ANode *body = outs[k]->to;
                ANode *exit = outs[1 - k]->to;
                if (body == n || body == exit)
                    continue;
                auto body_ins = liveIns(body);
                auto body_outs = liveOuts(body);
                if (body_ins.size() == 1 && body_ins[0]->from == n &&
                    body_outs.size() == 1 && body_outs[0]->to == n) {
                    collapse({n, body}, CTKind::WhileLoop);
                    return true;
                }
            }
        }
        return false;
    }

    /** Collapses a node whose multiple out edges share one target. */
    bool
    tryParallelEdges()
    {
        for (ANode *n : liveNodes()) {
            auto outs = liveOuts(n);
            if (outs.size() < 2)
                continue;
            bool same = true;
            for (AEdge *e : outs) {
                if (e->to != outs[0]->to ||
                    e->dstBlock != outs[0]->dstBlock || e->to == n) {
                    same = false;
                    break;
                }
            }
            if (same) {
                collapse({n}, CTKind::ProperInterval);
                return true;
            }
        }
        return false;
    }

    /** DFS back-edge discovery on the abstract graph. */
    std::vector<AEdge *>
    findBackEdges()
    {
        std::vector<AEdge *> back;
        std::set<const ANode *> visited;
        std::set<const ANode *> on_stack;
        std::vector<std::pair<ANode *, size_t>> stack;
        stack.push_back({entry_, 0});
        visited.insert(entry_);
        on_stack.insert(entry_);
        while (!stack.empty()) {
            auto &[n, idx] = stack.back();
            auto outs = liveOuts(n);
            if (idx < outs.size()) {
                AEdge *e = outs[idx++];
                if (on_stack.count(e->to)) {
                    back.push_back(e);
                } else if (visited.insert(e->to).second) {
                    stack.push_back({e->to, 0});
                    on_stack.insert(e->to);
                }
            } else {
                on_stack.erase(n);
                stack.pop_back();
            }
        }
        return back;
    }

    bool
    tryNaturalLoop()
    {
        auto back = findBackEdges();
        if (back.empty())
            return false;
        // Pick the smallest natural loop (innermost first).
        std::vector<ANode *> best;
        for (AEdge *be : back) {
            ANode *h = be->to;
            std::set<ANode *> loop{h};
            std::vector<ANode *> order{h};
            std::vector<ANode *> work;
            if (be->from != h) {
                loop.insert(be->from);
                order.push_back(be->from);
                work.push_back(be->from);
            }
            while (!work.empty()) {
                ANode *n = work.back();
                work.pop_back();
                for (AEdge *e : liveIns(n)) {
                    if (!loop.count(e->from)) {
                        loop.insert(e->from);
                        order.push_back(e->from);
                        work.push_back(e->from);
                    }
                }
            }
            if (best.empty() || order.size() < best.size())
                best = order;
        }
        collapse(best, CTKind::NaturalLoop);
        return true;
    }

    bool
    tryProperInterval()
    {
        // Only reached when the graph is acyclic and no simpler pattern
        // applies: collapse the smallest single-entry region whose
        // external successors agree, found via abstract dominators.
        auto order = rpoOrder();
        auto idom = computeIdom(order);
        // Dominator subtree membership.
        auto dominates = [&](ANode *a, ANode *b) {
            ANode *cur = b;
            while (true) {
                if (cur == a)
                    return true;
                ANode *up = idom.at(cur);
                if (up == cur)
                    return false;
                cur = up;
            }
        };
        std::vector<std::pair<size_t, ANode *>> candidates;
        for (ANode *d : order) {
            size_t size = 0;
            for (ANode *n : order) {
                if (dominates(d, n))
                    ++size;
            }
            if (size >= 2)
                candidates.push_back({size, d});
        }
        std::sort(candidates.begin(), candidates.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        for (auto &[size, d] : candidates) {
            std::vector<ANode *> members;
            for (ANode *n : order) {
                if (dominates(d, n))
                    members.push_back(n);
            }
            // Entry first.
            auto it = std::find(members.begin(), members.end(), d);
            std::iter_swap(members.begin(), it);
            std::set<ANode *> member_set(members.begin(), members.end());
            // All external out edges must share a single target pair.
            ANode *target = nullptr;
            const ir::BasicBlock *target_block = nullptr;
            bool ok = true;
            bool any_exit = false;
            for (ANode *m : members) {
                for (AEdge *e : liveOuts(m)) {
                    if (member_set.count(e->to))
                        continue;
                    if (!any_exit) {
                        any_exit = true;
                        target = e->to;
                        target_block = e->dstBlock;
                    } else if (e->to != target ||
                               e->dstBlock != target_block) {
                        ok = false;
                    }
                }
                if (!ok)
                    break;
            }
            if (!ok)
                continue;
            collapse(members, CTKind::ProperInterval);
            return true;
        }
        return false;
    }

    std::vector<ANode *>
    rpoOrder()
    {
        std::vector<ANode *> post;
        std::set<const ANode *> visited;
        std::vector<std::pair<ANode *, size_t>> stack;
        stack.push_back({entry_, 0});
        visited.insert(entry_);
        while (!stack.empty()) {
            auto &[n, idx] = stack.back();
            auto outs = liveOuts(n);
            if (idx < outs.size()) {
                AEdge *e = outs[idx++];
                if (visited.insert(e->to).second)
                    stack.push_back({e->to, 0});
            } else {
                post.push_back(n);
                stack.pop_back();
            }
        }
        std::reverse(post.begin(), post.end());
        return post;
    }

    std::map<ANode *, ANode *>
    computeIdom(const std::vector<ANode *> &rpo)
    {
        std::map<ANode *, size_t> rpo_index;
        for (size_t i = 0; i < rpo.size(); ++i)
            rpo_index[rpo[i]] = i;
        std::map<ANode *, ANode *> idom;
        idom[entry_] = entry_;
        auto intersect = [&](ANode *a, ANode *b) {
            while (a != b) {
                while (rpo_index.at(a) > rpo_index.at(b))
                    a = idom.at(a);
                while (rpo_index.at(b) > rpo_index.at(a))
                    b = idom.at(b);
            }
            return a;
        };
        bool changed = true;
        while (changed) {
            changed = false;
            for (ANode *n : rpo) {
                if (n == entry_)
                    continue;
                ANode *cand = nullptr;
                for (AEdge *e : liveIns(n)) {
                    if (!idom.count(e->from))
                        continue;
                    cand = cand == nullptr ? e->from
                                           : intersect(e->from, cand);
                }
                if (cand != nullptr &&
                    (!idom.count(n) || idom.at(n) != cand)) {
                    idom[n] = cand;
                    changed = true;
                }
            }
        }
        return idom;
    }

    const ir::Kernel &kernel_;
    std::vector<std::unique_ptr<ANode>> nodes_;
    std::vector<std::unique_ptr<AEdge>> edges_;
    ANode *entry_ = nullptr;
};

} // namespace

std::unique_ptr<CTNode>
buildControlTree(const ir::Kernel &kernel)
{
    SOFF_ASSERT(kernel.numBlocks() > 0, "empty kernel");
    return Reducer(kernel).run();
}

} // namespace soff::analysis
