/**
 * @file
 * Uniformity (divergence) analysis.
 *
 * Paper §IV-F1: a single-entry single-exit loop "preserves the
 * work-group order" without extra glue if "the loop bound is an
 * expression of kernel arguments and constant values (i.e., all
 * work-items iterate the loop the same number of times)". This analysis
 * classifies SSA values as Uniform (identical across *all* work-items),
 * and recognizes canonical induction variables whose trip counts are
 * work-item independent.
 */
#pragma once

#include <map>
#include <set>

#include "ir/kernel.hpp"

namespace soff::analysis
{

/** Classifies values of one kernel. */
class Uniformity
{
  public:
    explicit Uniformity(const ir::Kernel &kernel);

    /** True if the value is provably identical for every work-item. */
    bool isUniform(const ir::Value *v) const;

    /**
     * True if a loop whose header is `header` and whose exit condition
     * is `cond` iterates the same number of times for every work-item:
     * the condition must compare uniform values and/or induction
     * variables of this header with uniform start/step.
     */
    bool uniformTripCount(const ir::BasicBlock *header,
                          const ir::Value *cond) const;

  private:
    bool
    isInductionOf(const ir::Value *v, const ir::BasicBlock *header) const;

    const ir::Kernel &kernel_;
    std::set<const ir::Value *> uniform_;
    /** phi -> header block for phis shaped phi(uniform, phi +/- uniform). */
    std::map<const ir::Value *, const ir::BasicBlock *> induction_;
};

} // namespace soff::analysis
