#include "analysis/features.hpp"

#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"

namespace soff::analysis
{

KernelFeatures
scanKernelFeatures(const ir::Kernel &kernel)
{
    KernelFeatures f;
    f.numBlocks = static_cast<int>(kernel.numBlocks());
    f.usesLocalMemory = kernel.numLocalVars() > 0;

    CfgInfo cfg(kernel);
    DomTree dom(cfg);

    // The exit block (single Ret after return unification).
    const ir::BasicBlock *exit = nullptr;
    for (const auto &bb : kernel.blocks()) {
        if (bb->terminator() != nullptr &&
            bb->terminator()->op() == ir::Opcode::Ret) {
            exit = bb.get();
        }
    }

    // Back edges (loops).
    for (const ir::BasicBlock *bb : cfg.rpo()) {
        for (const ir::BasicBlock *succ : bb->successors()) {
            if (cfg.reachable(succ) && dom.dominates(succ, bb))
                ++f.numLoops;
        }
    }

    bool in_loop_or_branch_has_barrier = false;
    for (const auto &bb : kernel.blocks()) {
        // A block is "on the spine" if it dominates the exit: it runs
        // unconditionally for every work-item. Anything else is inside
        // a branch or loop body.
        bool on_spine = cfg.reachable(bb.get()) && exit != nullptr &&
                        dom.dominates(bb.get(), exit);
        for (const auto &inst : bb->instructions()) {
            ++f.numInstructions;
            if (inst->type()->isFloat() && inst->type()->bits() == 64)
                f.usesDouble = true;
            switch (inst->op()) {
              case ir::Opcode::Barrier:
                f.usesBarrier = true;
                if (!on_spine)
                    in_loop_or_branch_has_barrier = true;
                break;
              case ir::Opcode::AtomicRMW:
              case ir::Opcode::AtomicCmpXchg:
                f.usesAtomics = true;
                ++f.numMemoryAccesses;
                break;
              case ir::Opcode::Load:
              case ir::Opcode::Store: {
                ++f.numMemoryAccesses;
                const ir::Value *ptr = inst->pointerOperand();
                bool is_local = ptr != nullptr &&
                    ptr->type()->isPointer() &&
                    ptr->type()->addrSpace() == ir::AddrSpace::Local;
                if (is_local) {
                    f.usesLocalMemory = true;
                    if (!on_spine)
                        f.localAccessInBranch = true;
                }
                if (inst->op() == ir::Opcode::Load &&
                    inst->type()->isPointer()) {
                    f.usesIndirectPointers = true;
                }
                break;
              }
              default:
                break;
            }
        }
    }
    f.barrierInDivergentLoop = in_loop_or_branch_has_barrier &&
                               f.numLoops > 0;
    return f;
}

KernelFeatures
scanModuleFeatures(const ir::Module &module)
{
    KernelFeatures all;
    all.numKernels = 0;
    for (const auto &k : module.kernels()) {
        if (!k->isKernel())
            continue;
        ++all.numKernels;
        KernelFeatures f = scanKernelFeatures(*k);
        all.usesLocalMemory |= f.usesLocalMemory;
        all.usesBarrier |= f.usesBarrier;
        all.usesAtomics |= f.usesAtomics;
        all.usesIndirectPointers |= f.usesIndirectPointers;
        all.localAccessInBranch |= f.localAccessInBranch;
        all.barrierInDivergentLoop |= f.barrierInDivergentLoop;
        all.usesDouble |= f.usesDouble;
        all.numMemoryAccesses += f.numMemoryAccesses;
        all.numInstructions += f.numInstructions;
        all.numBlocks += f.numBlocks;
        all.numLoops += f.numLoops;
    }
    return all;
}

} // namespace soff::analysis
