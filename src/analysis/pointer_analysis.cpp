#include "analysis/pointer_analysis.hpp"

#include <tuple>

namespace soff::analysis
{

bool
MemObject::operator<(const MemObject &o) const
{
    return std::tie(kind, buffer, localVar) <
           std::tie(o.kind, o.buffer, o.localVar);
}

bool
MemObject::operator==(const MemObject &o) const
{
    return kind == o.kind && buffer == o.buffer && localVar == o.localVar;
}

PointerAnalysis::PointerAnalysis(const ir::Kernel &kernel)
{
    // Seed: pointer arguments and local-variable addresses.
    for (size_t i = 0; i < kernel.numArguments(); ++i) {
        const ir::Argument *arg = kernel.argument(i);
        if (!arg->type()->isPointer())
            continue;
        MemObject obj;
        if (arg->isBuffer()) {
            obj.kind = MemObject::Kind::Buffer;
            obj.buffer = arg;
        } else if (arg->type()->addrSpace() == ir::AddrSpace::Local) {
            // __local pointer arguments are not supported by the SOFF
            // runtime; treat conservatively as any-global.
            obj.kind = MemObject::Kind::AnyGlobal;
        } else {
            obj.kind = MemObject::Kind::AnyGlobal;
        }
        pointsTo_[arg].insert(obj);
    }

    // Fixpoint over pointer-producing instructions.
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto &bb : kernel.blocks()) {
            for (const auto &inst : bb->instructions()) {
                if (!inst->type()->isPointer())
                    continue;
                std::set<MemObject> next = pointsTo_[inst.get()];
                size_t before = next.size();
                switch (inst->op()) {
                  case ir::Opcode::LocalAddr: {
                    MemObject obj;
                    obj.kind = MemObject::Kind::LocalVar;
                    obj.localVar = inst->localVar();
                    next.insert(obj);
                    break;
                  }
                  case ir::Opcode::PtrAdd:
                  case ir::Opcode::Bitcast: {
                    const auto &src = pointsTo_[inst->operand(0)];
                    next.insert(src.begin(), src.end());
                    break;
                  }
                  case ir::Opcode::Select: {
                    for (size_t k = 1; k <= 2; ++k) {
                        const auto &src = pointsTo_[inst->operand(k)];
                        next.insert(src.begin(), src.end());
                    }
                    break;
                  }
                  case ir::Opcode::Phi:
                  case ir::Opcode::ArrayExtract: {
                    for (const ir::Value *op : inst->operands()) {
                        const auto &src = pointsTo_[op];
                        next.insert(src.begin(), src.end());
                    }
                    break;
                  }
                  case ir::Opcode::Load: {
                    // A pointer loaded from memory: indirect pointer.
                    MemObject obj;
                    obj.kind = MemObject::Kind::AnyGlobal;
                    next.insert(obj);
                    hasIndirect_ = true;
                    break;
                  }
                  case ir::Opcode::IntToPtr: {
                    MemObject obj;
                    obj.kind = MemObject::Kind::AnyGlobal;
                    next.insert(obj);
                    break;
                  }
                  default:
                    break;
                }
                if (next.size() != before ||
                    !pointsTo_.count(inst.get())) {
                    changed |= next != pointsTo_[inst.get()];
                    pointsTo_[inst.get()] = std::move(next);
                }
            }
        }
    }
}

const std::set<MemObject> &
PointerAnalysis::pointsTo(const ir::Value *v) const
{
    auto it = pointsTo_.find(v);
    return it == pointsTo_.end() ? empty_ : it->second;
}

const ir::Argument *
PointerAnalysis::uniqueBuffer(const ir::Instruction *access) const
{
    const ir::Value *ptr = access->pointerOperand();
    if (ptr == nullptr)
        return nullptr;
    const auto &set = pointsTo(ptr);
    if (set.size() != 1)
        return nullptr;
    const MemObject &obj = *set.begin();
    return obj.kind == MemObject::Kind::Buffer ? obj.buffer : nullptr;
}

const ir::LocalVar *
PointerAnalysis::uniqueLocalVar(const ir::Instruction *access) const
{
    const ir::Value *ptr = access->pointerOperand();
    if (ptr == nullptr)
        return nullptr;
    const auto &set = pointsTo(ptr);
    if (set.size() != 1)
        return nullptr;
    const MemObject &obj = *set.begin();
    return obj.kind == MemObject::Kind::LocalVar ? obj.localVar : nullptr;
}

bool
PointerAnalysis::mayAlias(const ir::Instruction *a,
                          const ir::Instruction *b) const
{
    const ir::Value *pa = a->pointerOperand();
    const ir::Value *pb = b->pointerOperand();
    if (pa == nullptr || pb == nullptr)
        return false;
    const auto &sa = pointsTo(pa);
    const auto &sb = pointsTo(pb);
    if (sa.empty() || sb.empty())
        return true; // unknown pointers: be conservative
    auto isAnyGlobal = [](const MemObject &o) {
        return o.kind == MemObject::Kind::AnyGlobal;
    };
    auto isGlobalish = [](const MemObject &o) {
        return o.kind != MemObject::Kind::LocalVar;
    };
    for (const MemObject &oa : sa) {
        for (const MemObject &ob : sb) {
            if (oa == ob)
                return true;
            if ((isAnyGlobal(oa) && isGlobalish(ob)) ||
                (isAnyGlobal(ob) && isGlobalish(oa))) {
                return true;
            }
        }
    }
    return false;
}

} // namespace soff::analysis
