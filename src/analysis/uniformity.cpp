#include "analysis/uniformity.hpp"

namespace soff::analysis
{

namespace
{

/** Opcodes whose result is uniform when all operands are. */
bool
uniformPropagating(ir::Opcode op)
{
    switch (op) {
      case ir::Opcode::Load:
      case ir::Opcode::Store:
      case ir::Opcode::AtomicRMW:
      case ir::Opcode::AtomicCmpXchg:
      case ir::Opcode::Phi:          // handled separately (induction)
      case ir::Opcode::Barrier:
      case ir::Opcode::Call:
      case ir::Opcode::Br:
      case ir::Opcode::CondBr:
      case ir::Opcode::Ret:
      case ir::Opcode::SlotLoad:
      case ir::Opcode::SlotStore:
        return false;
      default:
        return true;
    }
}

bool
uniformWorkItemQuery(ir::WorkItemQuery q)
{
    switch (q) {
      case ir::WorkItemQuery::GlobalSize:
      case ir::WorkItemQuery::LocalSize:
      case ir::WorkItemQuery::NumGroups:
      case ir::WorkItemQuery::WorkDim:
        return true;
      default:
        // Global/local/group IDs differ between work-items (group IDs
        // differ between work-groups, which matters for work-group
        // ordering, so they are NOT uniform here).
        return false;
    }
}

} // namespace

Uniformity::Uniformity(const ir::Kernel &kernel) : kernel_(kernel)
{
    // Fixpoint: start from arguments (uniform by the OpenCL execution
    // model, §II-B1: "All work-items receive the same argument values").
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto &bb : kernel.blocks()) {
            for (const auto &inst : bb->instructions()) {
                if (uniform_.count(inst.get()))
                    continue;
                bool u = false;
                if (inst->op() == ir::Opcode::WorkItemInfo) {
                    u = uniformWorkItemQuery(inst->wiQuery());
                } else if (uniformPropagating(inst->op())) {
                    u = true;
                    for (const ir::Value *op : inst->operands()) {
                        if (op->isConstant())
                            continue;
                        if (op->isArgument())
                            continue;
                        if (!uniform_.count(op)) {
                            u = false;
                            break;
                        }
                    }
                    if (inst->operands().empty() &&
                        inst->op() == ir::Opcode::LocalAddr) {
                        u = true; // same local block for all work-items
                    }
                }
                if (u) {
                    uniform_.insert(inst.get());
                    changed = true;
                }
            }
        }
    }

    // Induction variables: phi in a block H with exactly one incoming
    // uniform start and one incoming of the form phi +/- uniform step.
    for (const auto &bb : kernel.blocks()) {
        for (const ir::Instruction *phi : bb->phis()) {
            if (phi->numOperands() != 2)
                continue;
            for (int k = 0; k < 2; ++k) {
                const ir::Value *start = phi->operand(k);
                const ir::Value *step_val = phi->operand(1 - k);
                bool start_uniform = start->isConstant() ||
                    start->isArgument() || uniform_.count(start);
                if (!start_uniform || !step_val->isInstruction())
                    continue;
                const auto *step =
                    static_cast<const ir::Instruction *>(step_val);
                if (step->op() != ir::Opcode::Add &&
                    step->op() != ir::Opcode::Sub) {
                    continue;
                }
                const ir::Value *base = step->operand(0);
                const ir::Value *delta = step->operand(1);
                if (step->op() == ir::Opcode::Add && base != phi)
                    std::swap(base, delta);
                bool delta_uniform = delta->isConstant() ||
                    delta->isArgument() || uniform_.count(delta);
                if (base == phi && delta_uniform) {
                    induction_[phi] = bb.get();
                    break;
                }
            }
        }
    }
}

bool
Uniformity::isUniform(const ir::Value *v) const
{
    if (v == nullptr)
        return false;
    if (v->isConstant() || v->isArgument())
        return true;
    return uniform_.count(v) > 0;
}

bool
Uniformity::isInductionOf(const ir::Value *v,
                          const ir::BasicBlock *header) const
{
    auto it = induction_.find(v);
    return it != induction_.end() && it->second == header;
}

bool
Uniformity::uniformTripCount(const ir::BasicBlock *header,
                             const ir::Value *cond) const
{
    if (isUniform(cond))
        return true;
    if (!cond->isInstruction())
        return false;
    const auto *cmp = static_cast<const ir::Instruction *>(cond);
    if (cmp->op() != ir::Opcode::ICmp && cmp->op() != ir::Opcode::FCmp)
        return false;
    for (size_t i = 0; i < 2; ++i) {
        const ir::Value *op = cmp->operand(i);
        if (isUniform(op))
            continue;
        if (isInductionOf(op, header))
            continue;
        // One indirection: "i + c" where i is an induction variable.
        if (op->isInstruction()) {
            const auto *inst = static_cast<const ir::Instruction *>(op);
            if ((inst->op() == ir::Opcode::Add ||
                 inst->op() == ir::Opcode::Sub) &&
                ((isInductionOf(inst->operand(0), header) &&
                  isUniform(inst->operand(1))) ||
                 (isInductionOf(inst->operand(1), header) &&
                  isUniform(inst->operand(0))))) {
                continue;
            }
        }
        return false;
    }
    return true;
}

} // namespace soff::analysis
