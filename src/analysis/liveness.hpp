/**
 * @file
 * Live-variable analysis (paper Fig. 3: "Live Variable Analysis").
 *
 * Liveness determines which SSA values flow between basic pipelines in
 * the datapath: the live-ins of a basic block are exactly the values its
 * pipeline's source functional unit distributes, and the live-outs are
 * what its sink aggregates (paper §IV-B).
 */
#pragma once

#include <map>
#include <set>
#include <vector>

#include "analysis/cfg.hpp"

namespace soff::analysis
{

/** Per-block live-in/live-out SSA value sets. */
class Liveness
{
  public:
    explicit Liveness(const CfgInfo &cfg);

    /** Values live at the entry of bb (excluding constants/arguments). */
    const std::set<const ir::Value *> &
    liveIn(const ir::BasicBlock *bb) const
    {
        return liveIn_.at(bb);
    }

    /** Values live at the exit of bb. */
    const std::set<const ir::Value *> &
    liveOut(const ir::BasicBlock *bb) const
    {
        return liveOut_.at(bb);
    }

    /**
     * Live-ins in a deterministic order (by value id) — the canonical
     * variable ordering used for pipeline live-set layouts.
     */
    std::vector<const ir::Value *>
    orderedLiveIn(const ir::BasicBlock *bb) const;
    std::vector<const ir::Value *>
    orderedLiveOut(const ir::BasicBlock *bb) const;

  private:
    std::map<const ir::BasicBlock *, std::set<const ir::Value *>> liveIn_;
    std::map<const ir::BasicBlock *, std::set<const ir::Value *>> liveOut_;
};

} // namespace soff::analysis
