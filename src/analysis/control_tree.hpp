/**
 * @file
 * Control-tree construction (paper §III-C, Fig. 4(c)).
 *
 * "All basic blocks are hierarchically grouped as a control tree. The
 * root of the tree is the entire kernel and the leaves are individual
 * basic blocks. Every node between represents a control-flow construct
 * of a structured program: one of Sequence, IfThen, IfThenElse,
 * SelfLoop, WhileLoop, ProperInterval, and NaturalLoop."
 *
 * The tree is produced by iterative structural reduction of the CFG.
 * Each internal node records its children, the (original CFG) edges
 * between them, and its exit edges, so the datapath generator (§IV-D)
 * can place branch/select glue without re-deriving the shape.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/kernel.hpp"

namespace soff::analysis
{

/** Control-tree node kinds (paper §III-C). */
enum class CTKind
{
    Block,          ///< Leaf: one basic block.
    Sequence,
    IfThen,
    IfThenElse,
    SelfLoop,
    WhileLoop,
    ProperInterval, ///< General single-entry acyclic region.
    NaturalLoop,    ///< General (possibly multi-exit) natural loop.
};

const char *ctKindName(CTKind kind);

class CTNode;

/**
 * An edge of the region graph. Edges always correspond to one or more
 * original CFG edges. A *raw* edge maps to exactly one CFG edge and
 * keeps (srcBlock, succIdx) so the datapath generator can derive the
 * live-set projection (including phi resolution at dstBlock). A
 * *resolved* edge is the merger of several CFG edges with the same
 * target; the merging select glue inside the source region already
 * produced the liveIn(dstBlock) layout (srcBlock == nullptr).
 */
struct CTEdge
{
    /** Index of the source child; kInvalidChild for the region entry. */
    size_t fromChild = 0;
    /** Output port on the source child (branch direction ordering). */
    size_t fromPort = 0;
    /** Index of the target child; kExit for a region exit edge. */
    size_t toChild = 0;
    /** Source CFG block, or nullptr for resolved (merged) edges. */
    const ir::BasicBlock *srcBlock = nullptr;
    /** Successor index in srcBlock's terminator (raw edges). */
    size_t succIdx = 0;
    /** Target CFG block (the entry block of the target child/exit). */
    const ir::BasicBlock *dstBlock = nullptr;
    /** True for loop back edges. */
    bool isBackEdge = false;
    /**
     * For exit edges: the output port of the *region* this exit feeds.
     * Exit edges with the same regionPort share a target and are merged
     * by a select glue inside the region.
     */
    size_t regionPort = 0;

    static constexpr size_t kExit = static_cast<size_t>(-1);
};

/** A node of the control tree. */
class CTNode
{
  public:
    explicit CTNode(CTKind kind) : kind_(kind) {}
    CTNode(const CTNode &) = delete;
    CTNode &operator=(const CTNode &) = delete;

    CTKind kind() const { return kind_; }

    /** Leaf accessors. */
    const ir::BasicBlock *block() const { return block_; }
    void setBlock(const ir::BasicBlock *bb) { block_ = bb; }
    bool isLeaf() const { return kind_ == CTKind::Block; }

    /** Children; children[entryChild()] contains the region entry. */
    const std::vector<std::unique_ptr<CTNode>> &children() const
    {
        return children_;
    }
    CTNode *child(size_t i) const { return children_.at(i).get(); }
    size_t numChildren() const { return children_.size(); }
    void
    addChild(std::unique_ptr<CTNode> child)
    {
        children_.push_back(std::move(child));
    }
    size_t entryChild() const { return entryChild_; }
    void setEntryChild(size_t i) { entryChild_ = i; }

    /** Internal edges between children (includes back edges). */
    const std::vector<CTEdge> &edges() const { return edges_; }
    void addEdge(const CTEdge &e) { edges_.push_back(e); }

    /**
     * Exit edges: toChild == CTEdge::kExit; fromPort on the *region*
     * numbers its output ports (one per distinct exit target group).
     */
    const std::vector<CTEdge> &exitEdges() const { return exitEdges_; }
    void addExitEdge(const CTEdge &e) { exitEdges_.push_back(e); }
    /** Number of output ports of this node when seen from its parent. */
    size_t numOutPorts() const;

    /** The CFG block where control enters this region. */
    const ir::BasicBlock *entryBlock() const;

    /** Indented multi-line rendering (tests, debugging). */
    std::string str(int indent = 0) const;

    /** Total number of leaf blocks under this node. */
    size_t countLeaves() const;

  private:
    CTKind kind_;
    const ir::BasicBlock *block_ = nullptr;
    std::vector<std::unique_ptr<CTNode>> children_;
    std::vector<CTEdge> edges_;
    std::vector<CTEdge> exitEdges_;
    size_t entryChild_ = 0;
};

/**
 * Builds the control tree of a kernel. Requires a reducible, structured
 * CFG (paper assumption: "an OpenCL kernel is a structured program");
 * throws CompileError otherwise.
 */
std::unique_ptr<CTNode> buildControlTree(const ir::Kernel &kernel);

} // namespace soff::analysis
