#include "baseline/interpreter.hpp"

#include <map>

#include "ir/eval.hpp"
#include "support/error.hpp"

namespace soff::baseline
{

namespace
{

using ir::RtValue;

/** Per-work-item execution state. */
struct WiState
{
    uint64_t gid = 0;
    ir::WorkItemCtx ctx;
    const ir::BasicBlock *block = nullptr;
    const ir::BasicBlock *prev = nullptr;
    size_t index = 0;
    std::map<const ir::Value *, RtValue> values;
    bool done = false;
    const ir::Instruction *atBarrier = nullptr;
};

class GroupExecutor
{
  public:
    GroupExecutor(const ir::Kernel &kernel,
                  const sim::LaunchContext &launch,
                  memsys::GlobalMemory &memory,
                  Interpreter::TraceHook &trace,
                  Interpreter::BlockHook &block_hook, InterpStats &stats)
        : kernel_(kernel), launch_(launch), memory_(memory),
          trace_(trace), blockHook_(block_hook), stats_(stats)
    {
        for (size_t i = 0; i < kernel.numLocalVars(); ++i) {
            localMem_.emplace_back(
                kernel.localVar(i)->type()->sizeBytes(), 0);
        }
    }

    void
    runGroup(uint64_t group)
    {
        const sim::NDRange &nd = launch_.ndrange;
        std::vector<WiState> items(nd.groupSize());
        for (uint64_t l = 0; l < nd.groupSize(); ++l) {
            WiState &wi = items[l];
            wi.gid = nd.gidOf(group, l);
            wi.ctx = nd.ctxOf(wi.gid);
            wi.block = kernel_.entry();
            if (blockHook_)
                blockHook_(wi.gid, wi.block);
        }
        // Phase execution: run every work-item to the next barrier (or
        // completion); all must stop at the same barrier (§II-B3).
        while (true) {
            const ir::Instruction *barrier = nullptr;
            bool any_done = false;
            for (WiState &wi : items) {
                if (wi.done)
                    continue;
                runUntilStop(wi);
                if (wi.done) {
                    any_done = true;
                } else if (barrier == nullptr) {
                    barrier = wi.atBarrier;
                } else if (barrier != wi.atBarrier) {
                    throw RuntimeError(
                        "work-items of one group reached different "
                        "barriers: kernel behavior is undefined");
                }
            }
            if (barrier == nullptr)
                break; // everyone finished
            if (any_done) {
                throw RuntimeError(
                    "some work-items exited while others wait at a "
                    "barrier: kernel behavior is undefined");
            }
            ++stats_.barriersCrossed;
            for (WiState &wi : items) {
                wi.atBarrier = nullptr;
                ++wi.index; // step past the barrier
            }
        }
    }

  private:
    RtValue
    operandValue(WiState &wi, const ir::Value *v)
    {
        if (v->isConstant())
            return ir::constantValue(static_cast<const ir::Constant *>(v));
        if (v->isArgument())
            return launch_.argValue(static_cast<const ir::Argument *>(v));
        auto it = wi.values.find(v);
        SOFF_ASSERT(it != wi.values.end(),
                    "interpreter: use of undefined value");
        return it->second;
    }

    void
    enterBlock(WiState &wi, const ir::BasicBlock *next)
    {
        if (blockHook_)
            blockHook_(wi.gid, next);
        wi.prev = wi.block;
        wi.block = next;
        wi.index = 0;
        // Evaluate all phis against the predecessor atomically.
        std::vector<std::pair<const ir::Instruction *, RtValue>> updates;
        for (const ir::Instruction *phi : next->phis()) {
            bool found = false;
            for (size_t k = 0; k < phi->numOperands(); ++k) {
                if (phi->phiBlocks()[k] == wi.prev) {
                    updates.push_back(
                        {phi, operandValue(wi, phi->operand(k))});
                    found = true;
                    break;
                }
            }
            SOFF_ASSERT(found, "phi has no incoming for edge");
        }
        for (auto &[phi, value] : updates)
            wi.values[phi] = std::move(value);
        wi.index = next->firstNonPhi();
    }

    void
    doMemoryAccess(WiState &wi, const ir::Instruction *inst)
    {
        std::vector<RtValue> ops;
        for (const ir::Value *op : inst->operands())
            ops.push_back(operandValue(wi, op));
        uint64_t addr = ops.at(0).i;
        const ir::Type *elem = inst->op() == ir::Opcode::Store
                                   ? inst->operand(1)->type()
                                   : inst->type();
        uint32_t size = static_cast<uint32_t>(elem->sizeBytes());
        bool is_local = ir::isLocalPtr(addr);

        auto bitsOf = [&](const RtValue &v) {
            if (!v.isFloat())
                return v.i;
            if (elem->bits() == 32) {
                float f = static_cast<float>(v.f);
                uint32_t b;
                __builtin_memcpy(&b, &f, sizeof(b));
                return static_cast<uint64_t>(b);
            }
            uint64_t b;
            double d = v.f;
            __builtin_memcpy(&b, &d, sizeof(b));
            return b;
        };
        auto rawRead = [&]() -> uint64_t {
            if (!is_local)
                return memory_.readScalar(addr, size);
            int var = ir::localPtrVar(addr);
            uint64_t off = ir::localPtrOffset(addr);
            auto &mem = localMem_.at(static_cast<size_t>(var));
            SOFF_ASSERT(off + size <= mem.size(),
                        "local access out of bounds");
            uint64_t v = 0;
            for (uint32_t i = 0; i < size; ++i)
                v |= static_cast<uint64_t>(mem[off + i]) << (8 * i);
            return v;
        };
        auto rawWrite = [&](uint64_t v) {
            if (!is_local) {
                memory_.writeScalar(addr, size, v);
                return;
            }
            int var = ir::localPtrVar(addr);
            uint64_t off = ir::localPtrOffset(addr);
            auto &mem = localMem_.at(static_cast<size_t>(var));
            SOFF_ASSERT(off + size <= mem.size(),
                        "local access out of bounds");
            for (uint32_t i = 0; i < size; ++i)
                mem[off + i] = static_cast<uint8_t>(v >> (8 * i));
        };

        uint64_t result_bits = 0;
        switch (inst->op()) {
          case ir::Opcode::Load:
            result_bits = rawRead();
            break;
          case ir::Opcode::Store:
            rawWrite(bitsOf(ops.at(1)));
            break;
          case ir::Opcode::AtomicRMW: {
            uint64_t old_value = rawRead();
            rawWrite(ir::evalAtomicOp(inst->atomicOp(), elem, old_value,
                                      bitsOf(ops.at(1))));
            result_bits = old_value;
            break;
          }
          case ir::Opcode::AtomicCmpXchg: {
            uint64_t old_value = rawRead();
            if (old_value == bitsOf(ops.at(1)))
                rawWrite(bitsOf(ops.at(2)));
            result_bits = old_value;
            break;
          }
          default:
            break;
        }
        if (!inst->type()->isVoid()) {
            RtValue result;
            if (inst->type()->isFloat()) {
                if (inst->type()->bits() == 32) {
                    float f;
                    uint32_t b = static_cast<uint32_t>(result_bits);
                    __builtin_memcpy(&f, &b, sizeof(f));
                    result = RtValue::makeFloat(f);
                } else {
                    double d;
                    __builtin_memcpy(&d, &result_bits, sizeof(d));
                    result = RtValue::makeFloat(d);
                }
            } else {
                result = RtValue::makeInt(
                    ir::normalizeInt(inst->type(), result_bits));
            }
            wi.values[inst] = result;
        }
        ++stats_.memoryAccesses;
        if (trace_) {
            MemAccessEvent event;
            event.inst = inst;
            event.wi = wi.gid;
            event.addr = addr;
            event.size = size;
            event.isGlobal = !is_local;
            event.isWrite = inst->isMemoryWrite();
            event.isAtomic = inst->isAtomic();
            trace_(event);
        }
    }

    /** Executes until a barrier, or Ret (sets done). */
    void
    runUntilStop(WiState &wi)
    {
        uint64_t budget = 500000000ULL;
        while (true) {
            SOFF_ASSERT(budget-- > 0, "interpreter: runaway work-item");
            const ir::Instruction *inst = wi.block->inst(wi.index);
            ++stats_.instructionsExecuted;
            switch (inst->op()) {
              case ir::Opcode::Barrier:
                wi.atBarrier = inst;
                return;
              case ir::Opcode::Ret:
                wi.done = true;
                return;
              case ir::Opcode::Br:
                enterBlock(wi, inst->succ(0));
                continue;
              case ir::Opcode::CondBr: {
                bool taken = operandValue(wi, inst->operand(0)).i != 0;
                enterBlock(wi, inst->succ(taken ? 0 : 1));
                continue;
              }
              case ir::Opcode::Load:
              case ir::Opcode::Store:
              case ir::Opcode::AtomicRMW:
              case ir::Opcode::AtomicCmpXchg:
                doMemoryAccess(wi, inst);
                ++wi.index;
                continue;
              case ir::Opcode::Phi:
                SOFF_ASSERT(false, "phi outside block entry");
                continue;
              default: {
                std::vector<RtValue> ops;
                ops.reserve(inst->numOperands());
                for (const ir::Value *op : inst->operands())
                    ops.push_back(operandValue(wi, op));
                wi.values[inst] = ir::evalPure(inst, ops, wi.ctx);
                ++wi.index;
                continue;
              }
            }
        }
    }

    const ir::Kernel &kernel_;
    const sim::LaunchContext &launch_;
    memsys::GlobalMemory &memory_;
    Interpreter::TraceHook &trace_;
    Interpreter::BlockHook &blockHook_;
    InterpStats &stats_;
    std::vector<std::vector<uint8_t>> localMem_;
};

} // namespace

void
Interpreter::run(const ir::Kernel &kernel,
                 const sim::LaunchContext &launch)
{
    SOFF_ASSERT(kernel.numSlots() == 0,
                "interpreter requires SSA-promoted kernels");
    const sim::NDRange &nd = launch.ndrange;
    for (int d = 0; d < 3; ++d) {
        if (nd.localSize[d] == 0 ||
            nd.globalSize[d] % nd.localSize[d] != 0) {
            throw RuntimeError("NDRange global size must be a multiple "
                               "of the work-group size");
        }
    }
    for (uint64_t g = 0; g < nd.totalGroups(); ++g) {
        GroupExecutor executor(kernel, launch, memory_, trace_,
                               blockHook_, stats_);
        executor.runGroup(g);
    }
}

} // namespace soff::baseline
