/**
 * @file
 * Per-framework compatibility checker (paper Table II).
 *
 * Table II classifies how each framework handles every application:
 * OK, CE (compile error), IA (incorrect answer), RE (run-time error),
 * H (hangs), IR (insufficient FPGA resources). For SOFF the outcome is
 * *measured* (compile + simulate + compare against the oracle, and the
 * resource model decides IR). For the commercial baselines we cannot
 * run the closed-source toolchains; their outcomes are reproduced by
 * rules over the kernels' feature inventory that encode the failure
 * classes the paper reports (e.g. "Xilinx SDAccel yields compile
 * errors ... because it does not support atomic operations, local
 * memory accesses inside branches, and indirect pointers", §VI-B) —
 * see the DESIGN.md substitution table.
 */
#pragma once

#include <string>

#include "analysis/features.hpp"

namespace soff::baseline
{

/** Table II outcome classes. */
enum class Outcome
{
    OK,
    CompileError,    ///< "CE"
    IncorrectAnswer, ///< "IA"
    RuntimeError,    ///< "RE"
    Hang,            ///< "H"
    InsufficientResources, ///< "IR"
};

const char *outcomeCode(Outcome outcome);

/** Intel-FPGA-SDK-like outcome from the kernel feature inventory. */
Outcome intelLikeOutcome(const analysis::KernelFeatures &features);

/** Xilinx-SDAccel-like outcome from the kernel feature inventory. */
Outcome xilinxLikeOutcome(const analysis::KernelFeatures &features);

} // namespace soff::baseline
