#include "baseline/compat.hpp"

namespace soff::baseline
{

const char *
outcomeCode(Outcome outcome)
{
    switch (outcome) {
      case Outcome::OK: return "";
      case Outcome::CompileError: return "CE";
      case Outcome::IncorrectAnswer: return "IA";
      case Outcome::RuntimeError: return "RE";
      case Outcome::Hang: return "H";
      case Outcome::InsufficientResources: return "IR";
    }
    return "?";
}

Outcome
intelLikeOutcome(const analysis::KernelFeatures &features)
{
    // Encodes the failure classes of Table II's Intel column: 8 SPEC
    // ACCEL applications fail. The observed pattern: kernels combining
    // atomics with local memory + barriers miscompile (IA) or fail in
    // the atomics-through-cache path (CE); barriers inside divergent
    // control flow break the static pipeline scheduler (CE/RE).
    if (features.usesAtomics && features.usesLocalMemory &&
        features.usesBarrier) {
        return Outcome::IncorrectAnswer; // 101.tpacf-like
    }
    if (features.usesAtomics &&
        (features.usesBarrier || features.usesIndirectPointers)) {
        return Outcome::CompileError; // 116.histo / 117.bfs-like
    }
    if (features.usesIndirectPointers)
        return Outcome::IncorrectAnswer; // 140.bplustree-like
    if (features.barrierInDivergentLoop && features.localAccessInBranch)
        return Outcome::CompileError; // 121.lavamd / 127.srad-like
    if (features.barrierInDivergentLoop && features.usesDouble)
        return Outcome::RuntimeError; // 124.hotspot-like
    return Outcome::OK;
}

Outcome
xilinxLikeOutcome(const analysis::KernelFeatures &features)
{
    // §VI-B: "it yields compile errors in 7 applications because it
    // does not support atomic operations, local memory accesses inside
    // branches, and indirect pointers"; several more applications hang
    // or produce wrong results on barrier-heavy kernels.
    if (features.usesAtomics)
        return Outcome::CompileError;
    if (features.localAccessInBranch)
        return Outcome::CompileError;
    if (features.usesIndirectPointers)
        return Outcome::CompileError;
    if (features.barrierInDivergentLoop)
        return Outcome::Hang; // barrier-in-loop kernels
    if (features.numKernels >= 3)
        return Outcome::Hang; // multi-kernel in-order queues (the H
                              // rows of Table II's PolyBench half)
    return Outcome::OK;
}

} // namespace soff::baseline
