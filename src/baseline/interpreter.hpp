/**
 * @file
 * The reference IR interpreter: SOFF's correctness oracle.
 *
 * Executes a kernel functionally — work-group by work-group, with
 * proper barrier phase semantics — against the same device global
 * memory the circuit simulator uses, through the same evalPure()
 * instruction semantics. It doubles as the functional engine of the
 * Intel-like / Xilinx-like compile-time-pipelining baselines, which
 * consume its memory-access trace for their timing models.
 */
#pragma once

#include <functional>

#include "ir/kernel.hpp"
#include "memsys/global_memory.hpp"
#include "sim/token.hpp"

namespace soff::baseline
{

/** One traced memory access (addresses as seen by the device). */
struct MemAccessEvent
{
    const ir::Instruction *inst = nullptr;
    uint64_t wi = 0;
    uint64_t addr = 0;
    uint32_t size = 0;
    bool isGlobal = false;
    bool isWrite = false;
    bool isAtomic = false;
};

/** Interpreter statistics. */
struct InterpStats
{
    uint64_t instructionsExecuted = 0;
    uint64_t memoryAccesses = 0;
    uint64_t barriersCrossed = 0;
};

/** The reference executor. */
class Interpreter
{
  public:
    using TraceHook = std::function<void(const MemAccessEvent &)>;
    using BlockHook =
        std::function<void(uint64_t wi, const ir::BasicBlock *)>;

    explicit Interpreter(memsys::GlobalMemory &memory) : memory_(memory)
    {}

    /** Optional streaming trace of every memory access. */
    void setTraceHook(TraceHook hook) { trace_ = std::move(hook); }
    /** Optional hook fired on every basic-block entry. */
    void setBlockHook(BlockHook hook) { blockHook_ = std::move(hook); }

    /**
     * Runs the kernel over the launch NDRange. Throws RuntimeError on
     * malformed execution (e.g. inconsistent barriers, §II-B3 undefined
     * behavior that the oracle refuses to guess about).
     */
    void run(const ir::Kernel &kernel, const sim::LaunchContext &launch);

    const InterpStats &stats() const { return stats_; }

  private:
    memsys::GlobalMemory &memory_;
    TraceHook trace_;
    BlockHook blockHook_;
    InterpStats stats_;
};

} // namespace soff::baseline
