/**
 * @file
 * Compile-time-pipelining baseline simulators (paper §II-A2, §VI).
 *
 * These stand in for the Intel FPGA SDK for OpenCL and Xilinx SDAccel
 * baselines of the evaluation (see DESIGN.md's substitution table).
 * They embody the design point the paper contrasts SOFF against: a
 * statically scheduled pipeline that assumes fixed memory latencies, so
 * every cache miss stalls the *whole* datapath (no run-time slip), and
 * work-group barriers drain the pipeline. Functional results come from
 * the reference interpreter; the timing model consumes its trace.
 */
#pragma once

#include "baseline/interpreter.hpp"
#include "datapath/latency.hpp"
#include "memsys/global_memory.hpp"

namespace soff::baseline
{

/** Baseline flavor. */
enum class Vendor
{
    IntelLike,  ///< Multi-instance capable (num_compute_units).
    XilinxLike, ///< One instance by default; slower generated circuits.
};

/** Static-pipeline timing parameters. */
struct StaticPipelineConfig
{
    Vendor vendor = Vendor::IntelLike;
    int numInstances = 1;
    /** Initiation interval of the scheduled pipeline. */
    int ii = 1;
    /** Cycles the whole pipeline stalls per cache miss. */
    int missPenalty = 44;
    /** Serialization cost per atomic operation. */
    int atomicPenalty = 4;
    int cacheSizeBytes = 64 * 1024;
    int cacheLineBytes = 64;
    /** DRAM bandwidth: cycles per 64B line (shared bound). */
    int dramCyclesPerLine = 4;
    double fmaxMhz = 240.0;

    static StaticPipelineConfig intelLike(int num_instances);
    static StaticPipelineConfig xilinxLike();
};

/** Result of one baseline kernel execution. */
struct StaticPipelineResult
{
    uint64_t cycles = 0;
    uint64_t iterations = 0;     ///< Pipeline initiations (slots).
    uint64_t cacheMisses = 0;
    uint64_t cacheHits = 0;
    uint64_t barrierDrains = 0;
    double timeMs = 0.0;
};

/**
 * Executes the kernel functionally (mutating `memory` like a real run)
 * and models the execution time of a compile-time-pipelined circuit.
 */
StaticPipelineResult runStaticPipeline(const ir::Kernel &kernel,
                                       const sim::LaunchContext &launch,
                                       memsys::GlobalMemory &memory,
                                       const StaticPipelineConfig &config);

} // namespace soff::baseline
