#include "baseline/static_pipeline.hpp"

#include <algorithm>

#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"

namespace soff::baseline
{

StaticPipelineConfig
StaticPipelineConfig::intelLike(int num_instances)
{
    StaticPipelineConfig cfg;
    cfg.vendor = Vendor::IntelLike;
    cfg.numInstances = std::max(1, num_instances);
    cfg.ii = 1;
    cfg.fmaxMhz = 240.0;
    return cfg;
}

StaticPipelineConfig
StaticPipelineConfig::xilinxLike()
{
    StaticPipelineConfig cfg;
    cfg.vendor = Vendor::XilinxLike;
    // "Xilinx SDAccel uses only one datapath instance by default"
    // (§VI-C). The paper measures SDAccel ~25x slower than SOFF even
    // on the better FPGA; our model charges the generated circuits a
    // lower initiation rate, a smaller/less effective memory interface,
    // and a lower clock, standing in for that observed inefficiency.
    cfg.numInstances = 1;
    cfg.ii = 3;
    cfg.missPenalty = 100;
    cfg.cacheSizeBytes = 16 * 1024;
    cfg.fmaxMhz = 150.0;
    return cfg;
}

namespace
{

/** Tag-only direct-mapped cache model for the global-stall baseline. */
class TagArray
{
  public:
    TagArray(int size_bytes, int line_bytes)
        : lineBytes_(line_bytes),
          tags_(static_cast<size_t>(size_bytes / line_bytes), ~0ULL)
    {}

    bool
    access(uint64_t addr)
    {
        uint64_t line = addr / static_cast<uint64_t>(lineBytes_);
        size_t index = static_cast<size_t>(line % tags_.size());
        if (tags_[index] == line)
            return true;
        tags_[index] = line;
        return false;
    }

  private:
    int lineBytes_;
    std::vector<uint64_t> tags_;
};

/** Pipeline depth estimate for drain costs (fixed-latency schedule). */
uint64_t
estimateDepth(const ir::Kernel &kernel)
{
    datapath::LatencyModel latency;
    uint64_t depth = 20; // interface stages
    for (const auto &bb : kernel.blocks()) {
        uint64_t block_depth = 0;
        for (const auto &inst : bb->instructions()) {
            if (inst->isTerminator() ||
                inst->op() == ir::Opcode::Phi ||
                inst->op() == ir::Opcode::Barrier) {
                continue;
            }
            if (inst->isMemoryAccess())
                block_depth += 4; // scheduled assuming a cache hit
            else
                block_depth +=
                    static_cast<uint64_t>(latency.computeLatency(*inst));
        }
        // Roughly half of the operations sit on the critical path.
        depth += block_depth / 2 + 1;
    }
    return depth;
}

} // namespace

StaticPipelineResult
runStaticPipeline(const ir::Kernel &kernel,
                  const sim::LaunchContext &launch,
                  memsys::GlobalMemory &memory,
                  const StaticPipelineConfig &config)
{
    StaticPipelineResult result;
    const sim::NDRange &nd = launch.ndrange;
    int instances = config.numInstances;

    // Loop headers: targets of back edges. Each header entry is one
    // pipeline initiation (compile-time pipelining issues one loop
    // iteration per II).
    analysis::CfgInfo cfg(kernel);
    analysis::DomTree dom(cfg);
    std::set<const ir::BasicBlock *> headers;
    for (const ir::BasicBlock *bb : cfg.rpo()) {
        for (const ir::BasicBlock *succ : bb->successors()) {
            if (cfg.reachable(succ) && dom.dominates(succ, bb))
                headers.insert(succ);
        }
    }

    // Loop-carried recurrences bound the initiation interval of a
    // compile-time pipeline (§II-A2: "modulo scheduling"): a float
    // accumulator phi forces II >= the FP adder latency, because the
    // next iteration of the *same* thread needs the previous result.
    // (Run-time pipelining sidesteps this by interleaving other
    // work-items into those slots — the core of the paper's argument.)
    datapath::LatencyModel latency_model;
    std::map<const ir::BasicBlock *, int> header_ii;
    for (const ir::BasicBlock *h : headers) {
        int ii = config.ii;
        for (const ir::Instruction *phi : h->phis()) {
            for (const ir::Value *incoming : phi->operands()) {
                if (!incoming->isInstruction())
                    continue;
                const auto *def =
                    static_cast<const ir::Instruction *>(incoming);
                if (def->isTerminator() || def->isMemoryAccess() ||
                    def->op() == ir::Opcode::Phi ||
                    def->op() == ir::Opcode::Barrier) {
                    continue;
                }
                ii = std::max(ii,
                              latency_model.computeLatency(*def));
            }
        }
        header_ii[h] = std::min(ii, 8);
    }

    // Per-instance accumulators: pipeline initiations (II-bound),
    // memory-port occupancy (the single LSU/cache port of the
    // statically scheduled pipeline — contrast with SOFF's per-buffer
    // caches, §V-A), and whole-pipeline miss stalls.
    std::vector<uint64_t> iter_cycles(static_cast<size_t>(instances), 0);
    std::vector<uint64_t> port_cycles(static_cast<size_t>(instances), 0);
    std::vector<uint64_t> stall_cycles(static_cast<size_t>(instances), 0);
    std::vector<TagArray> caches;
    for (int i = 0; i < instances; ++i)
        caches.emplace_back(config.cacheSizeBytes, config.cacheLineBytes);

    uint64_t line_transfers = 0;
    Interpreter interp(memory);
    interp.setTraceHook([&](const MemAccessEvent &event) {
        size_t inst = static_cast<size_t>(
            nd.groupOf(event.wi) % static_cast<uint64_t>(instances));
        if (event.isGlobal) {
            ++port_cycles[inst]; // one LSU port, one access per cycle
            if (caches[inst].access(event.addr)) {
                ++result.cacheHits;
            } else {
                ++result.cacheMisses;
                ++line_transfers;
                stall_cycles[inst] +=
                    static_cast<uint64_t>(config.missPenalty);
            }
        }
        if (event.isAtomic) {
            stall_cycles[inst] +=
                static_cast<uint64_t>(config.atomicPenalty);
        }
    });
    interp.setBlockHook([&](uint64_t wi, const ir::BasicBlock *bb) {
        if (bb != kernel.entry() && !headers.count(bb))
            return;
        size_t inst = static_cast<size_t>(
            nd.groupOf(wi) % static_cast<uint64_t>(instances));
        auto it = header_ii.find(bb);
        iter_cycles[inst] += static_cast<uint64_t>(
            it != header_ii.end() ? it->second : config.ii);
        ++result.iterations;
    });
    interp.run(kernel, launch);

    // Combine: initiation and port occupancy overlap (take the max);
    // global miss stalls and barrier drains do not.
    uint64_t depth = estimateDepth(kernel);
    uint64_t drains = interp.stats().barriersCrossed;
    result.barrierDrains = drains;
    std::vector<uint64_t> cycles(static_cast<size_t>(instances), 0);
    for (size_t i = 0; i < cycles.size(); ++i) {
        cycles[i] = std::max(iter_cycles[i], port_cycles[i]) +
                    stall_cycles[i];
        cycles[i] += depth; // initial fill + final drain
    }
    if (instances > 0 && drains > 0) {
        uint64_t per_instance = drains / static_cast<uint64_t>(instances);
        for (auto &c : cycles)
            c += (per_instance + 1) * depth;
    }

    uint64_t busiest = *std::max_element(cycles.begin(), cycles.end());
    // Shared DRAM bandwidth bound across all instances.
    uint64_t bandwidth_bound =
        line_transfers * static_cast<uint64_t>(config.dramCyclesPerLine);
    result.cycles = std::max(busiest, bandwidth_bound);
    result.timeMs = static_cast<double>(result.cycles) /
                    (config.fmaxMhz * 1e3);
    return result;
}

} // namespace soff::baseline
