#include "datapath/balance.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace soff::datapath
{

namespace
{

/** Longest-path (ASAP) depths over the DAG. */
std::vector<long>
asapDepths(int num_nodes, const std::vector<int> &lat,
           const std::vector<BalanceEdge> &edges)
{
    // Topological order via Kahn.
    std::vector<int> indeg(static_cast<size_t>(num_nodes), 0);
    for (const BalanceEdge &e : edges)
        ++indeg[static_cast<size_t>(e.to)];
    std::vector<int> ready;
    for (int i = 0; i < num_nodes; ++i) {
        if (indeg[static_cast<size_t>(i)] == 0)
            ready.push_back(i);
    }
    std::vector<long> d(static_cast<size_t>(num_nodes), 0);
    std::vector<int> order;
    while (!ready.empty()) {
        int n = ready.back();
        ready.pop_back();
        order.push_back(n);
        for (const BalanceEdge &e : edges) {
            if (e.from != n)
                continue;
            d[static_cast<size_t>(e.to)] = std::max(
                d[static_cast<size_t>(e.to)],
                d[static_cast<size_t>(n)] + lat[static_cast<size_t>(e.to)]);
            if (--indeg[static_cast<size_t>(e.to)] == 0)
                ready.push_back(e.to);
        }
    }
    SOFF_ASSERT(order.size() == static_cast<size_t>(num_nodes),
                "balanceFifos: graph has a cycle");
    return d;
}

} // namespace

std::vector<int>
balanceFifos(int num_nodes, const std::vector<int> &node_latency,
             const std::vector<BalanceEdge> &edges)
{
    SOFF_ASSERT(static_cast<size_t>(num_nodes) == node_latency.size(),
                "latency vector size mismatch");
    // Work with L_v + 1 (a busy unit holds L_v + 1 work-items, §IV-E).
    std::vector<int> lat(node_latency.size());
    for (size_t i = 0; i < lat.size(); ++i)
        lat[i] = node_latency[i] + 1;

    std::vector<long> d = asapDepths(num_nodes, lat, edges);

    // Iterated optimal single-node moves. The local objective of node v
    // is sum over in-edges of (d_v - d_u - L_v) plus sum over out-edges
    // of (d_w - d_v - L_w): piecewise linear in d_v with slope
    // indeg - outdeg, so the optimum is at the lower bound when
    // indeg >= outdeg and at the upper bound otherwise.
    bool changed = true;
    int guard = 0;
    while (changed && ++guard < 10000) {
        changed = false;
        for (int v = 0; v < num_nodes; ++v) {
            long lb = 0;
            long ub = -1; // -1: unconstrained above
            int indeg = 0;
            int outdeg = 0;
            for (const BalanceEdge &e : edges) {
                if (e.to == v) {
                    ++indeg;
                    lb = std::max(lb, d[static_cast<size_t>(e.from)] +
                                          lat[static_cast<size_t>(v)]);
                }
                if (e.from == v) {
                    ++outdeg;
                    long limit = d[static_cast<size_t>(e.to)] -
                                 lat[static_cast<size_t>(e.to)];
                    ub = ub < 0 ? limit : std::min(ub, limit);
                }
            }
            if (indeg == 0)
                lb = d[static_cast<size_t>(v)]; // source stays put
            long target;
            if (outdeg == 0) {
                target = lb; // the sink pulls down to its bound
            } else if (indeg >= outdeg || ub < 0) {
                target = lb;
            } else {
                target = std::max(lb, ub);
            }
            if (target != d[static_cast<size_t>(v)] && target >= lb &&
                (ub < 0 || target <= ub)) {
                d[static_cast<size_t>(v)] = target;
                changed = true;
            }
        }
    }

    std::vector<int> fifo(edges.size(), 0);
    for (size_t i = 0; i < edges.size(); ++i) {
        long slack = d[static_cast<size_t>(edges[i].to)] -
                     d[static_cast<size_t>(edges[i].from)] -
                     lat[static_cast<size_t>(edges[i].to)];
        SOFF_ASSERT(slack >= 0, "negative slack after balancing");
        fifo[i] = static_cast<int>(slack);
    }
    return fifo;
}

int
balancedDepth(int num_nodes, const std::vector<int> &node_latency,
              const std::vector<BalanceEdge> &edges)
{
    std::vector<int> lat(node_latency.size());
    for (size_t i = 0; i < lat.size(); ++i)
        lat[i] = node_latency[i] + 1;
    std::vector<long> d = asapDepths(num_nodes, lat, edges);
    long best = 0;
    for (long v : d)
        best = std::max(best, v);
    return static_cast<int>(best);
}

} // namespace soff::datapath
