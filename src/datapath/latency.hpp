/**
 * @file
 * Functional-unit latency model (paper §IV-A).
 *
 * "SOFF defines a near-maximum latency L_F for each functional unit F.
 * If F has a fixed latency, L_F simply indicates that. Otherwise, the
 * value of L_F is properly (empirically) determined so that most of the
 * work-items can complete the corresponding instruction in less than
 * L_F clock cycles."
 *
 * The fixed latencies below model fully pipelined FPGA operator cores
 * (DSP-based multipliers, multi-stage FP adders, etc.). The variable-
 * latency units (global memory, atomics, local memory with bank
 * conflicts) get the empirical near-maximum values of §VI-A ("e.g., 64
 * for global memory load/stores").
 */
#pragma once

#include "ir/instruction.hpp"

namespace soff::datapath
{

/** Tunable latency parameters (ablation bench: near-max latency sweep). */
struct LatencyModel
{
    /** Near-maximum latency of global-memory loads/stores (§VI-A). */
    int globalMemNearMax = 64;
    /** Near-maximum latency of local-memory accesses (bank conflicts). */
    int localMemNearMax = 6;
    /** Near-maximum latency of atomic operations (lock + RMW). */
    int atomicNearMax = 80;

    /** Latency of a fixed-latency compute instruction. */
    int computeLatency(const ir::Instruction &inst) const;

    /**
     * Near-maximum latency L_F for any instruction's functional unit.
     */
    int nearMaxLatency(const ir::Instruction &inst) const;
};

} // namespace soff::datapath
