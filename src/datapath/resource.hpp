/**
 * @file
 * FPGA resource model (paper §III-C instance-count selection, Table I).
 *
 * The original SOFF discovers the largest feasible number of datapath
 * copies by synthesizing several RTL variants and keeping the biggest
 * one that fits. Without a logic synthesis tool we estimate per-FU
 * LUT/DSP/BRAM costs and divide into the device capacity; the estimate
 * is deliberately coarse but monotone, which is all the selection loop
 * needs (DESIGN.md, hardware substitution table).
 */
#pragma once

#include <string>

#include "datapath/plan.hpp"

namespace soff::datapath
{

/** Aggregate FPGA resources. */
struct Resources
{
    long luts = 0;
    long dsps = 0;
    long bramBits = 0;

    Resources &
    operator+=(const Resources &o)
    {
        luts += o.luts;
        dsps += o.dsps;
        bramBits += o.bramBits;
        return *this;
    }
    Resources
    scaled(int n) const
    {
        return {luts * n, dsps * n, bramBits * n};
    }
    bool
    fitsIn(const Resources &cap) const
    {
        return luts <= cap.luts && dsps <= cap.dsps &&
               bramBits <= cap.bramBits;
    }
};

/** A target FPGA device (paper Table I). */
struct FpgaSpec
{
    std::string name;
    Resources capacity;
    /** Fraction reserved for the static region (PCIe/DMA/controller). */
    double staticRegionFraction = 0.15;
    double fmaxMhz = 240.0;

    Resources usable() const;

    /** Intel Arria 10 GX 10AX115N2F40E2LG (System A). */
    static FpgaSpec arria10();
    /** Xilinx XCVU9P (System B). */
    static FpgaSpec vu9p();
};

/** Estimated cost of one datapath instance + its memory subsystem. */
Resources estimateInstance(const KernelPlan &plan);

/** Cost of the per-kernel shared logic (dispatcher, counter, regs). */
Resources estimateShared(const KernelPlan &plan);

/**
 * The largest number of datapath copies of this kernel that fits the
 * device (0 = even one instance does not fit -> "IR" in Table II).
 * Mirrors the paper's generate-and-test loop over instance counts.
 */
int maxInstances(const KernelPlan &plan, const FpgaSpec &fpga);

/**
 * Instance count when several kernels must share the reconfigurable
 * region (paper §III-B: one circuit per kernel resident at once);
 * returns per-kernel instance counts, or all zeros if the combined
 * mandatory logic does not fit.
 */
std::vector<int> partitionInstances(
    const std::vector<const KernelPlan *> &plans, const FpgaSpec &fpga);

/**
 * Estimated achievable clock frequency for a given utilization level:
 * heavily utilized devices close timing at lower fmax.
 */
double estimateFmaxMhz(const FpgaSpec &fpga, const Resources &used);

} // namespace soff::datapath
