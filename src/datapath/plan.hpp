/**
 * @file
 * Datapath plans: the structural description of the synthesized circuit.
 *
 * The planner (paper §IV: "Datapath Generation") turns a kernel's
 * control tree + per-block DFGs into a hierarchical plan of functional
 * units, handshake channels, FIFO depths, and glue logic. The plan is a
 * pure compile-time artifact consumed by two backends: the cycle-level
 * simulator (src/sim) and the Verilog emitter (src/verilog) — mirroring
 * the paper's flow where the compiler emits an RTL description built
 * from SOFF IP cores.
 */
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "analysis/control_tree.hpp"
#include "datapath/latency.hpp"
#include "ir/eval.hpp"

namespace soff::datapath
{

/**
 * Maps a producer token layout onto a consumer layout, resolving phi
 * values and injecting constants/arguments (the argument register,
 * §III-B). Applied by the glue on the producing side of every
 * inter-pipeline channel.
 */
struct Projection
{
    struct Slot
    {
        enum class Kind { FromInput, Constant, Argument };
        Kind kind = Kind::FromInput;
        int fromIndex = -1;                   ///< FromInput.
        const ir::Constant *constant = nullptr;
        const ir::Argument *argument = nullptr;
    };
    std::vector<Slot> slots;
};

/** One functional unit of a basic pipeline (paper §IV-A). */
struct FuSpec
{
    enum class Kind { Source, Sink, Compute, Load, Store, Atomic };

    int id = 0;
    Kind kind = Kind::Compute;
    const ir::Instruction *inst = nullptr; ///< Null for source/sink.
    int latency = 0;                       ///< Near-maximum latency L_F.
};

/** A value/ordering channel between two functional units. */
struct FuEdgeSpec
{
    int from = 0;
    int to = 0;
    const ir::Value *value = nullptr; ///< Null for ordering edges.
    /** Extra FIFO slots from the balancing ILP (base capacity is 2). */
    int fifoDepth = 0;
};

/** The plan of one basic pipeline (paper §IV-B). */
struct BasicPipelinePlan
{
    const ir::BasicBlock *bb = nullptr;
    std::vector<FuSpec> fus;      ///< fus[0] is the source; last is sink.
    std::vector<FuEdgeSpec> edges;
    std::vector<const ir::Value *> inLayout;   ///< liveIn(bb), ordered.
    std::vector<const ir::Value *> sinkLayout; ///< liveOut + condition.
    /** Minimum work-items this pipeline holds when it strongly stalls:
     *  min over source-sink paths of Σ (L_F + 1)  (paper §IV-E). */
    int lmin = 1;
    /** Pipeline depth: max over source-sink paths of Σ (L_F + 1). */
    int depth = 1;

    int sourceFu() const { return 0; }
    int sinkFu() const { return static_cast<int>(fus.size()) - 1; }
};

/** An output port of a node: target block and layout projection. */
struct PortPlan
{
    const ir::BasicBlock *dstBlock = nullptr;
    Projection projection; ///< producer layout -> liveIn(dstBlock).
};

/**
 * One node of the hierarchical datapath (paper §IV-D, Fig. 5): a basic
 * pipeline, a work-group barrier unit (§IV-F1), or a compound region
 * with glue logic.
 */
struct NodePlan
{
    enum class Kind { BasicPipeline, Barrier, Region };
    static constexpr size_t kEntry = static_cast<size_t>(-2);
    static constexpr size_t kExit = static_cast<size_t>(-1);

    Kind kind = Kind::Region;
    const analysis::CTNode *ct = nullptr;

    // --- BasicPipeline ---
    std::unique_ptr<BasicPipelinePlan> pipeline;
    /** Branch condition's index in sinkLayout; -1 for single-successor
     *  blocks (or when the condition is a constant/argument). */
    int condIndex = -1;
    const ir::Value *condValue = nullptr;

    // --- Barrier ---
    std::vector<const ir::Value *> barrierLayout; ///< liveIn(bb).

    // --- Both leaf kinds ---
    std::vector<PortPlan> outPorts;

    // --- Region ---
    struct Wire
    {
        size_t fromChild = 0; ///< kEntry for the region input.
        size_t fromPort = 0;
        size_t toChild = 0;   ///< kExit for a region output.
        size_t toPort = 0;    ///< Region out port when toChild == kExit.
        bool isBackEdge = false;
    };
    std::vector<std::unique_ptr<NodePlan>> children;
    std::vector<Wire> wires;
    size_t entryChild = 0;

    bool isLoop = false;
    /** Max work-items admitted into the loop (§IV-E); 0 = uncapped. */
    int nmax = 0;
    /** FIFO inserted at the loop back edge: N_max − N_min (§IV-E). */
    int backEdgeFifo = 0;
    /** Single-work-group-region glues instead of loop glues (§IV-F1). */
    bool swgr = false;
    /** Work-group-order-preserving selects (branch-gid FIFO, §IV-F1). */
    bool orderedSelects = false;

    /** liveIn(entry block): the layout of the node's input channel. */
    std::vector<const ir::Value *> inLayout;
    /** Per out port: liveIn(target block). */
    std::vector<std::vector<const ir::Value *>> outLayouts;

    /** Capacity floor (work-items held at strong stall), §IV-E:
     *  minimum over entry-exit paths of Σ lmin(B). */
    int lmin = 1;
    /** Maximum over entry-exit paths of Σ lmin(B) — the N_max side of
     *  §IV-E's cycle-capacity range. */
    int lminMax = 1;
    /** Max accumulated L_F+1 from node entry to exit (for §V-B). */
    int depth = 1;

    size_t numOutPorts() const { return outLayouts.size(); }
};

/** Per-local-variable memory block parameters (paper §V-B). */
struct LocalBlockPlan
{
    const ir::LocalVar *var = nullptr;
    int numBanks = 1;    ///< 2^ceil(log2 #connected FUs).
    int numSlots = 1;    ///< Concurrent work-group copies.
    int numPorts = 1;    ///< Connected functional units.
};

/** Planner knobs (ablation benches flip these). */
struct PlanConfig
{
    LatencyModel latency;
    int maxWorkGroupSize = 256;
    /** §IV-C FIFO balancing (ablation: Case-2 stalls when off). */
    bool balanceFifos = true;
    /** §IV-E: cap loops at N_max (true) or at N_min (false). */
    bool capLoopsAtNmax = true;
    /** §V-A: one cache per buffer (true) or one shared cache (false). */
    bool perBufferCaches = true;
    int cacheSizeBytes = 64 * 1024; ///< §VI-A: 64 KB per cache.
    int cacheLineBytes = 64;
};

/** The complete plan for one kernel's reconfigurable-region circuit. */
struct KernelPlan
{
    const ir::Kernel *kernel = nullptr;
    PlanConfig config;
    std::unique_ptr<analysis::CTNode> controlTree;
    std::unique_ptr<NodePlan> root;

    /** Cache count and which buffer arguments each cache serves. */
    int numCaches = 0;
    std::vector<std::vector<const ir::Argument *>> cacheBuffers;
    /** Global-memory access instruction -> cache index. */
    std::map<const ir::Instruction *, int> cacheOf;

    std::vector<LocalBlockPlan> localBlocks;
    /** Local-memory access instruction -> local block index. */
    std::map<const ir::Instruction *, int> localBlockOf;

    bool usesBarrier = false;
    bool usesAtomics = false;
    bool usesLocalMemory = false;

    /** L_Datapath (§V-B) and the concurrent work-group cap derived
     *  from it: ceil(L_Datapath / 256). */
    int lDatapath = 1;
    int maxConcurrentGroups = 1;

    /** Total functional units (for the resource model / stats). */
    int numFus = 0;
};

/** Builds the full datapath plan of one kernel. */
std::unique_ptr<KernelPlan> planKernel(const ir::Kernel &kernel,
                                       const PlanConfig &config);

} // namespace soff::datapath
