#include "datapath/resource.hpp"

#include <algorithm>

namespace soff::datapath
{

Resources
FpgaSpec::usable() const
{
    Resources u = capacity;
    u.luts = static_cast<long>(u.luts * (1.0 - staticRegionFraction));
    u.dsps = static_cast<long>(u.dsps * (1.0 - staticRegionFraction));
    u.bramBits =
        static_cast<long>(u.bramBits * (1.0 - staticRegionFraction));
    return u;
}

FpgaSpec
FpgaSpec::arria10()
{
    FpgaSpec spec;
    spec.name = "Intel Arria 10 GX 10AX115N2F40E2LG";
    spec.capacity.luts = 1150000;              // 1,150K logic elements
    spec.capacity.dsps = 3036;                 // DSP blocks
    spec.capacity.bramBits = 65700000L;        // 65.7 Mb embedded memory
    spec.fmaxMhz = 240.0;
    return spec;
}

FpgaSpec
FpgaSpec::vu9p()
{
    FpgaSpec spec;
    spec.name = "Xilinx XCVU9P-L2FSGD2104E";
    spec.capacity.luts = 2586000;              // 2,586K logic cells
    spec.capacity.dsps = 6840;                 // DSP slices
    spec.capacity.bramBits = 345900000L;       // 345.9 Mb
    spec.fmaxMhz = 250.0;
    return spec;
}

namespace
{

/** Rough per-FU cost table (64-bit datapaths on modern FPGAs). */
Resources
fuCost(const FuSpec &fu)
{
    Resources r;
    switch (fu.kind) {
      case FuSpec::Kind::Source:
      case FuSpec::Kind::Sink:
        r.luts = 150;
        return r;
      case FuSpec::Kind::Load:
      case FuSpec::Kind::Store:
        r.luts = 2200; // request/response queues + address path
        r.bramBits = 64 * (fu.latency + 1) * 2;
        return r;
      case FuSpec::Kind::Atomic:
        r.luts = 3500; // lock handshake + RMW path
        r.bramBits = 64 * (fu.latency + 1) * 2;
        return r;
      case FuSpec::Kind::Compute:
        break;
    }
    const ir::Instruction *inst = fu.inst;
    int bits = inst->type()->isVoid() ? 32
               : static_cast<int>(std::max(inst->type()->sizeBytes() * 8,
                                           uint64_t{8}));
    switch (inst->op()) {
      case ir::Opcode::Mul:
        r.luts = 120;
        r.dsps = bits > 32 ? 4 : 1;
        break;
      case ir::Opcode::SDiv: case ir::Opcode::UDiv:
      case ir::Opcode::SRem: case ir::Opcode::URem:
        r.luts = 28 * bits; // iterative divider array
        break;
      case ir::Opcode::FAdd: case ir::Opcode::FSub:
        r.luts = 700;
        r.dsps = bits > 32 ? 3 : 1;
        break;
      case ir::Opcode::FMul:
        r.luts = 300;
        r.dsps = bits > 32 ? 4 : 1;
        break;
      case ir::Opcode::FDiv:
        r.luts = 2500;
        r.dsps = bits > 32 ? 8 : 4;
        break;
      case ir::Opcode::FRem:
        r.luts = 4500;
        r.dsps = 8;
        break;
      case ir::Opcode::MathCall:
        switch (inst->mathFunc()) {
          case ir::MathFunc::Fmin: case ir::MathFunc::Fmax:
          case ir::MathFunc::Fabs: case ir::MathFunc::SMin:
          case ir::MathFunc::SMax: case ir::MathFunc::UMin:
          case ir::MathFunc::UMax: case ir::MathFunc::SAbs:
          case ir::MathFunc::SClamp: case ir::MathFunc::UClamp:
          case ir::MathFunc::FClamp:
            r.luts = 2 * bits;
            break;
          case ir::MathFunc::Sqrt: case ir::MathFunc::Rsqrt:
            r.luts = 2000;
            r.dsps = 4;
            break;
          case ir::MathFunc::Mad: case ir::MathFunc::Fma:
            r.luts = 800;
            r.dsps = bits > 32 ? 6 : 2;
            break;
          default: // transcendental cores
            r.luts = 4000;
            r.dsps = 10;
            break;
        }
        break;
      case ir::Opcode::ArrayExtract:
      case ir::Opcode::ArrayInsert:
      case ir::Opcode::ArraySplat: {
        // A per-work-item array register file: wide MUX trees plus
        // pipeline registers for the whole array value.
        uint64_t arr_bits = 0;
        if (inst->type()->isArray())
            arr_bits = inst->type()->sizeBytes() * 8;
        else if (inst->operand(0)->type()->isArray())
            arr_bits = inst->operand(0)->type()->sizeBytes() * 8;
        r.luts = 200 + static_cast<long>(arr_bits / 2);
        break;
      }
      default:
        r.luts = 2 * bits + 40; // adders, logic, compares, casts
        break;
    }
    return r;
}

/** Channel/FIFO cost: registers (small) or BRAM (deep). */
Resources
edgeCost(const FuEdgeSpec &edge)
{
    Resources r;
    int width = 64 + 32; // value + token header
    int depth = 2 + edge.fifoDepth;
    if (depth <= 4)
        r.luts = width * depth / 8;
    else
        r.bramBits = static_cast<long>(width) * depth;
    return r;
}

Resources
nodeCost(const NodePlan &node, const KernelPlan &plan)
{
    Resources r;
    switch (node.kind) {
      case NodePlan::Kind::BasicPipeline: {
        for (const FuSpec &fu : node.pipeline->fus)
            r += fuCost(fu);
        for (const FuEdgeSpec &e : node.pipeline->edges)
            r += edgeCost(e);
        break;
      }
      case NodePlan::Kind::Barrier: {
        // Live-variable FIFO sized for concurrent work-groups.
        long width = 64 * std::max<size_t>(node.barrierLayout.size(), 1);
        long depth = plan.config.maxWorkGroupSize *
                     (plan.maxConcurrentGroups + 1);
        r.bramBits = width * depth;
        r.luts = 800;
        break;
      }
      case NodePlan::Kind::Region: {
        for (const auto &child : node.children)
            r += nodeCost(*child, plan);
        // Glue logic: per wire a channel; selects/branches ~ LUTs.
        long live_width = 64 *
            std::max<size_t>(node.inLayout.size(), 1) + 32;
        for (const NodePlan::Wire &w : node.wires) {
            long depth = 2;
            if (w.isBackEdge)
                depth += node.backEdgeFifo;
            if (depth <= 4)
                r.luts += live_width * depth / 8;
            else
                r.bramBits += live_width * depth;
            r.luts += 120; // glue control
        }
        if (node.isLoop || node.swgr)
            r.luts += 300; // entrance/exit counters
        if (node.orderedSelects)
            r.bramBits += 16 * 64; // work-group id FIFO
        break;
      }
    }
    return r;
}

} // namespace

Resources
estimateInstance(const KernelPlan &plan)
{
    Resources r = nodeCost(*plan.root, plan);
    // Memory subsystem: per-datapath caches (§V-A) ...
    for (int c = 0; c < plan.numCaches; ++c) {
        Resources cache;
        cache.bramBits = static_cast<long>(plan.config.cacheSizeBytes) * 8;
        cache.bramBits += (plan.config.cacheSizeBytes /
                           plan.config.cacheLineBytes) * 32; // tags
        cache.luts = 4000;
        r += cache;
    }
    // ... and local memory blocks (§V-B).
    for (const LocalBlockPlan &lb : plan.localBlocks) {
        Resources block;
        block.bramBits = static_cast<long>(lb.var->sizeBytes()) * 8 *
                         std::max(1, lb.numSlots);
        block.luts = 500 + 300 * lb.numBanks;
        r += block;
    }
    return r;
}

Resources
estimateShared(const KernelPlan &plan)
{
    Resources r;
    r.luts = 5000; // dispatcher, work-item counter, registers
    (void)plan;
    return r;
}

int
maxInstances(const KernelPlan &plan, const FpgaSpec &fpga)
{
    Resources usable = fpga.usable();
    Resources shared = estimateShared(plan);
    Resources per = estimateInstance(plan);
    int n = 0;
    // Mirrors the paper's flow: try increasing instance counts and keep
    // the largest that fits (capped to keep simulation tractable).
    while (n < 64) {
        Resources total = shared;
        total += per.scaled(n + 1);
        if (!total.fitsIn(usable))
            break;
        ++n;
    }
    return n;
}

std::vector<int>
partitionInstances(const std::vector<const KernelPlan *> &plans,
                   const FpgaSpec &fpga)
{
    std::vector<int> counts(plans.size(), 0);
    Resources usable = fpga.usable();
    Resources mandatory;
    for (const KernelPlan *plan : plans) {
        mandatory += estimateShared(*plan);
        mandatory += estimateInstance(*plan);
    }
    if (!mandatory.fitsIn(usable))
        return counts; // not even one instance of each kernel fits
    std::fill(counts.begin(), counts.end(), 1);
    // Round-robin growth until nothing more fits.
    bool grew = true;
    while (grew) {
        grew = false;
        for (size_t i = 0; i < plans.size(); ++i) {
            if (counts[i] >= 64)
                continue;
            Resources total;
            for (size_t j = 0; j < plans.size(); ++j) {
                total += estimateShared(*plans[j]);
                total += estimateInstance(*plans[j])
                             .scaled(counts[j] + (j == i ? 1 : 0));
            }
            if (total.fitsIn(usable)) {
                ++counts[i];
                grew = true;
            }
        }
    }
    return counts;
}

double
estimateFmaxMhz(const FpgaSpec &fpga, const Resources &used)
{
    double lut_util = static_cast<double>(used.luts) /
                      static_cast<double>(fpga.capacity.luts);
    double derate = 1.0 - 0.25 * std::min(1.0, std::max(0.0, lut_util));
    return fpga.fmaxMhz * derate;
}

} // namespace soff::datapath
