#include "datapath/latency.hpp"

#include "support/error.hpp"

namespace soff::datapath
{

namespace
{

int
mathLatency(ir::MathFunc f)
{
    switch (f) {
      case ir::MathFunc::Fabs:
      case ir::MathFunc::Fmin:
      case ir::MathFunc::Fmax:
      case ir::MathFunc::Copysign:
      case ir::MathFunc::SMin:
      case ir::MathFunc::SMax:
      case ir::MathFunc::UMin:
      case ir::MathFunc::UMax:
      case ir::MathFunc::SAbs:
      case ir::MathFunc::SClamp:
      case ir::MathFunc::UClamp:
      case ir::MathFunc::FClamp:
        return 1;
      case ir::MathFunc::Floor:
      case ir::MathFunc::Ceil:
      case ir::MathFunc::Round:
        return 2;
      case ir::MathFunc::Mad:
      case ir::MathFunc::Fma:
        return 5;
      case ir::MathFunc::Sqrt:
      case ir::MathFunc::Rsqrt:
        return 12;
      case ir::MathFunc::Fmod:
        return 16;
      case ir::MathFunc::Exp:
      case ir::MathFunc::Exp2:
      case ir::MathFunc::Log:
      case ir::MathFunc::Log2:
      case ir::MathFunc::Log10:
      case ir::MathFunc::Sin:
      case ir::MathFunc::Cos:
      case ir::MathFunc::Tan:
        return 20;
      case ir::MathFunc::Asin:
      case ir::MathFunc::Acos:
      case ir::MathFunc::Atan:
      case ir::MathFunc::Atan2:
      case ir::MathFunc::Hypot:
        return 25;
      case ir::MathFunc::Pow:
        return 30;
    }
    return 8;
}

} // namespace

int
LatencyModel::computeLatency(const ir::Instruction &inst) const
{
    switch (inst.op()) {
      // Cheap integer / select / address logic: one stage.
      case ir::Opcode::Add: case ir::Opcode::Sub:
      case ir::Opcode::And: case ir::Opcode::Or: case ir::Opcode::Xor:
      case ir::Opcode::Shl: case ir::Opcode::LShr: case ir::Opcode::AShr:
      case ir::Opcode::Neg: case ir::Opcode::Not:
      case ir::Opcode::ICmp: case ir::Opcode::Select:
      case ir::Opcode::PtrAdd: case ir::Opcode::LocalAddr:
      case ir::Opcode::WorkItemInfo:
      case ir::Opcode::Trunc: case ir::Opcode::ZExt: case ir::Opcode::SExt:
      case ir::Opcode::Bitcast:
      case ir::Opcode::PtrToInt: case ir::Opcode::IntToPtr:
      case ir::Opcode::FNeg:
        return 1;
      // DSP-block integer multiply.
      case ir::Opcode::Mul:
        return 3;
      // Iterative (but pipelined) dividers.
      case ir::Opcode::SDiv: case ir::Opcode::UDiv:
      case ir::Opcode::SRem: case ir::Opcode::URem:
        return 16;
      // Floating point.
      case ir::Opcode::FAdd: case ir::Opcode::FSub:
        return 3;
      case ir::Opcode::FMul:
        return 4;
      case ir::Opcode::FDiv:
        return 14;
      case ir::Opcode::FRem:
        return 20;
      case ir::Opcode::FCmp:
        return 2;
      case ir::Opcode::FPTrunc: case ir::Opcode::FPExt:
      case ir::Opcode::FPToSI: case ir::Opcode::FPToUI:
      case ir::Opcode::SIToFP: case ir::Opcode::UIToFP:
        return 2;
      // Promoted-array register file access (wide MUX trees).
      case ir::Opcode::ArrayExtract:
      case ir::Opcode::ArrayInsert:
      case ir::Opcode::ArraySplat:
        return 2;
      case ir::Opcode::MathCall:
        return mathLatency(inst.mathFunc());
      default:
        SOFF_ASSERT(false, std::string("no fixed latency for opcode ") +
                    ir::opcodeName(inst.op()));
        return 1;
    }
}

int
LatencyModel::nearMaxLatency(const ir::Instruction &inst) const
{
    switch (inst.op()) {
      case ir::Opcode::Load:
      case ir::Opcode::Store: {
        const ir::Value *ptr = inst.pointerOperand();
        bool is_local = ptr != nullptr && ptr->type()->isPointer() &&
                        ptr->type()->addrSpace() == ir::AddrSpace::Local;
        return is_local ? localMemNearMax : globalMemNearMax;
      }
      case ir::Opcode::AtomicRMW:
      case ir::Opcode::AtomicCmpXchg:
        return atomicNearMax;
      default:
        return computeLatency(inst);
    }
}

} // namespace soff::datapath
