/**
 * @file
 * FIFO sizing for Case-2 stall elimination (paper §IV-C).
 *
 * "SOFF inserts some FIFO queues between functional units to make the
 * sum of near-maximum latencies the same on every source-sink path in
 * the basic pipeline. The problem of adding a minimal amount of FIFO
 * queues is formulated and solved by integer linear programming. Each
 * variable represents the size of the FIFO queue between a pair of
 * functional units."
 *
 * The ILP is:   min Σ_e q_e
 *               q_(u,v) = d_v − d_u − L_v ≥ 0   for every edge (u,v)
 * where d_v is the accumulated near-maximum depth at node v. Because
 * the constraint matrix is a network (difference) matrix, the LP
 * relaxation is integral; we solve it by longest-path initialization
 * followed by iterated optimal single-node moves (each node is placed
 * at the weighted-median point of its neighbor constraints). Tests
 * verify optimality against brute force on small graphs.
 */
#pragma once

#include <vector>

namespace soff::datapath
{

/** One directed edge of the balancing problem. */
struct BalanceEdge
{
    int from = 0;
    int to = 0;
};

/**
 * Computes FIFO depths (slack, in work-item slots) for every edge.
 *
 * @param num_nodes    Node count; node 0 must be the unique source.
 * @param node_latency L_v (+1 is applied internally: a unit holding a
 *                     work-item contributes L_v + 1 slots, §IV-E).
 * @param edges        DAG edges.
 * @return Per-edge FIFO depth; all source-sink paths end up with equal
 *         total depth and the total queue size is minimized.
 */
std::vector<int> balanceFifos(int num_nodes,
                              const std::vector<int> &node_latency,
                              const std::vector<BalanceEdge> &edges);

/** Total depth of the (now balanced) pipeline: d_sink. */
int balancedDepth(int num_nodes, const std::vector<int> &node_latency,
                  const std::vector<BalanceEdge> &edges);

} // namespace soff::datapath
