/**
 * @file
 * The datapath planner: control tree + DFGs -> hierarchical circuit
 * plan (paper §IV "Datapaths" and §V memory-port assignment).
 */
#include "datapath/plan.hpp"

#include <algorithm>
#include <map>
#include <functional>
#include <numeric>
#include <set>

#include "analysis/cfg.hpp"
#include "analysis/liveness.hpp"
#include "analysis/pointer_analysis.hpp"
#include "analysis/uniformity.hpp"
#include "datapath/balance.hpp"
#include "dfg/dfg.hpp"
#include "support/error.hpp"

namespace soff::datapath
{

namespace
{

using analysis::CTEdge;
using analysis::CTKind;
using analysis::CTNode;

bool
isBarrierBlock(const ir::BasicBlock *bb)
{
    return bb->size() > 0 && bb->inst(0)->op() == ir::Opcode::Barrier;
}

bool
subtreeHasBarrier(const CTNode *ct)
{
    if (ct->isLeaf())
        return isBarrierBlock(ct->block());
    for (const auto &c : ct->children()) {
        if (subtreeHasBarrier(c.get()))
            return true;
    }
    return false;
}

class Planner
{
  public:
    Planner(const ir::Kernel &kernel, const PlanConfig &config)
        : kernel_(kernel), config_(config), cfg_(kernel), live_(cfg_),
          pa_(kernel), uniform_(kernel)
    {}

    std::unique_ptr<KernelPlan>
    run()
    {
        auto plan = std::make_unique<KernelPlan>();
        plan_ = plan.get();
        plan->kernel = &kernel_;
        plan->config = config_;
        plan->controlTree = analysis::buildControlTree(kernel_);

        scanFeatures();
        assignCaches();
        planLocalBlocks();

        bool needs_order = plan->usesBarrier;
        plan->root = planNode(plan->controlTree.get(), needs_order);

        plan->lDatapath = plan->root->depth;
        plan->maxConcurrentGroups = std::max(
            1, (plan->lDatapath + 255) / 256);
        // The work-group cap applies when the datapath owns per-group
        // state (local memory blocks or barrier buffering), §V-B.
        for (LocalBlockPlan &lb : plan->localBlocks)
            lb.numSlots = plan->maxConcurrentGroups;
        return plan;
    }

  private:
    void
    scanFeatures()
    {
        for (const auto &bb : kernel_.blocks()) {
            for (const auto &inst : bb->instructions()) {
                switch (inst->op()) {
                  case ir::Opcode::Barrier:
                    plan_->usesBarrier = true;
                    break;
                  case ir::Opcode::AtomicRMW:
                  case ir::Opcode::AtomicCmpXchg:
                    plan_->usesAtomics = true;
                    break;
                  default:
                    break;
                }
            }
        }
        plan_->usesLocalMemory = kernel_.numLocalVars() > 0;
    }

    static bool
    isGlobalAccess(const ir::Instruction &inst)
    {
        const ir::Value *ptr = inst.pointerOperand();
        if (ptr == nullptr || !ptr->type()->isPointer())
            return false;
        ir::AddrSpace as = ptr->type()->addrSpace();
        return as == ir::AddrSpace::Global || as == ir::AddrSpace::Constant;
    }

    static bool
    isLocalAccess(const ir::Instruction &inst)
    {
        const ir::Value *ptr = inst.pointerOperand();
        return ptr != nullptr && ptr->type()->isPointer() &&
               ptr->type()->addrSpace() == ir::AddrSpace::Local;
    }

    /**
     * One cache per buffer (§V-A), with buffers merged when a single
     * access may touch several of them (or an unknown global location),
     * so every address has exactly one home cache.
     */
    void
    assignCaches()
    {
        std::vector<const ir::Argument *> buffers;
        for (size_t i = 0; i < kernel_.numArguments(); ++i) {
            if (kernel_.argument(i)->isBuffer())
                buffers.push_back(kernel_.argument(i));
        }
        // Union-find over buffer indices; `any` is an extra node that
        // represents "some unknown global location".
        size_t n = buffers.size() + 1;
        size_t any = buffers.size();
        std::vector<size_t> parent(n);
        std::iota(parent.begin(), parent.end(), 0);
        std::function<size_t(size_t)> find = [&](size_t x) {
            while (parent[x] != x) {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            return x;
        };
        auto unite = [&](size_t a, size_t b) {
            parent[find(a)] = find(b);
        };
        auto bufferIndex = [&](const ir::Argument *arg) {
            for (size_t i = 0; i < buffers.size(); ++i) {
                if (buffers[i] == arg)
                    return i;
            }
            SOFF_ASSERT(false, "unknown buffer argument");
            return size_t{0};
        };

        std::vector<const ir::Instruction *> accesses;
        bool any_used = false;
        for (const auto &bb : kernel_.blocks()) {
            for (const auto &inst : bb->instructions()) {
                if (!inst->isMemoryAccess() || !isGlobalAccess(*inst))
                    continue;
                accesses.push_back(inst.get());
                const auto &objs = pa_.pointsTo(inst->pointerOperand());
                size_t first = SIZE_MAX;
                bool touches_any = objs.empty();
                for (const analysis::MemObject &o : objs) {
                    size_t idx;
                    if (o.kind == analysis::MemObject::Kind::Buffer) {
                        idx = bufferIndex(o.buffer);
                    } else {
                        idx = any;
                        touches_any = true;
                    }
                    if (first == SIZE_MAX)
                        first = idx;
                    else
                        unite(first, idx);
                }
                if (touches_any && first != SIZE_MAX)
                    unite(first, any);
                else if (touches_any)
                    any_used = true;
            }
        }
        if (any_used) {
            // An access with an empty points-to set may touch anything.
        }
        if (!config_.perBufferCaches) {
            // Ablation: a single shared cache.
            for (size_t i = 0; i + 1 < n; ++i)
                unite(i, any);
        }

        // Number only the cache classes something actually uses (the
        // `any` class stays unnumbered unless an indirect access or a
        // merged buffer lands in it).
        std::map<size_t, int> cache_of_root;
        auto cacheIdOf = [&](size_t node) {
            size_t r = find(node);
            auto it = cache_of_root.find(r);
            if (it != cache_of_root.end())
                return it->second;
            int id = static_cast<int>(cache_of_root.size());
            cache_of_root[r] = id;
            return id;
        };
        for (const ir::Instruction *inst : accesses) {
            const auto &objs = pa_.pointsTo(inst->pointerOperand());
            size_t idx = any;
            for (const analysis::MemObject &o : objs) {
                idx = o.kind == analysis::MemObject::Kind::Buffer
                          ? bufferIndex(o.buffer) : any;
                break;
            }
            plan_->cacheOf[inst] = cacheIdOf(idx);
        }
        for (size_t i = 0; i < buffers.size(); ++i)
            cacheIdOf(i);
        plan_->numCaches = static_cast<int>(cache_of_root.size());
        plan_->cacheBuffers.resize(
            static_cast<size_t>(plan_->numCaches));
        for (size_t i = 0; i < buffers.size(); ++i) {
            plan_->cacheBuffers[static_cast<size_t>(cacheIdOf(i))]
                .push_back(buffers[i]);
        }
    }

    void
    planLocalBlocks()
    {
        std::map<const ir::LocalVar *, int> ports;
        for (const auto &bb : kernel_.blocks()) {
            for (const auto &inst : bb->instructions()) {
                if (!inst->isMemoryAccess() || !isLocalAccess(*inst))
                    continue;
                const ir::LocalVar *lv = pa_.uniqueLocalVar(inst.get());
                if (lv == nullptr) {
                    throw CompileError(
                        "kernel '" + kernel_.name() + "': a __local "
                        "access may touch several local variables; "
                        "SOFF requires one local memory block per "
                        "access (paper §V-B)");
                }
                ++ports[lv];
                // Block index == LocalVar index.
                plan_->localBlockOf[inst.get()] = lv->index();
            }
        }
        for (size_t i = 0; i < kernel_.numLocalVars(); ++i) {
            const ir::LocalVar *lv = kernel_.localVar(i);
            LocalBlockPlan lb;
            lb.var = lv;
            lb.numPorts = std::max(1, ports.count(lv) ? ports[lv] : 0);
            int banks = 1;
            while (banks < lb.numPorts)
                banks *= 2;
            lb.numBanks = banks; // 2^ceil(log2 N), §V-B
            lb.numSlots = 1;     // finalized in run()
            plan_->localBlocks.push_back(lb);
        }
    }

    // ------------------------------------------------------------------
    // Layouts and projections
    // ------------------------------------------------------------------
    std::vector<const ir::Value *>
    layoutOf(const ir::BasicBlock *bb)
    {
        return live_.orderedLiveIn(bb);
    }

    static int
    indexIn(const std::vector<const ir::Value *> &layout,
            const ir::Value *v)
    {
        for (size_t i = 0; i < layout.size(); ++i) {
            if (layout[i] == v)
                return static_cast<int>(i);
        }
        return -1;
    }

    Projection::Slot
    slotFor(const std::vector<const ir::Value *> &producer_layout,
            const ir::Value *v)
    {
        Projection::Slot slot;
        if (v->isConstant()) {
            slot.kind = Projection::Slot::Kind::Constant;
            slot.constant = static_cast<const ir::Constant *>(v);
            return slot;
        }
        if (v->isArgument()) {
            slot.kind = Projection::Slot::Kind::Argument;
            slot.argument = static_cast<const ir::Argument *>(v);
            return slot;
        }
        slot.kind = Projection::Slot::Kind::FromInput;
        slot.fromIndex = indexIn(producer_layout, v);
        SOFF_ASSERT(slot.fromIndex >= 0,
                    "projection source value not in producer layout");
        return slot;
    }

    /** Projection for the CFG edge src -> dst over producer_layout. */
    Projection
    makeProjection(const std::vector<const ir::Value *> &producer_layout,
                   const ir::BasicBlock *src, const ir::BasicBlock *dst)
    {
        Projection proj;
        for (const ir::Value *v : layoutOf(dst)) {
            const ir::Value *resolved = v;
            if (v->isInstruction()) {
                const auto *inst = static_cast<const ir::Instruction *>(v);
                if (inst->op() == ir::Opcode::Phi &&
                    inst->parent() == dst) {
                    // Resolve the phi along this edge.
                    resolved = nullptr;
                    for (size_t k = 0; k < inst->numOperands(); ++k) {
                        if (inst->phiBlocks()[k] == src) {
                            resolved = inst->operand(k);
                            break;
                        }
                    }
                    SOFF_ASSERT(resolved != nullptr,
                                "phi lacks incoming for edge");
                }
            }
            proj.slots.push_back(slotFor(producer_layout, resolved));
        }
        return proj;
    }

    // ------------------------------------------------------------------
    // Leaf planning
    // ------------------------------------------------------------------
    std::unique_ptr<NodePlan>
    planLeaf(const CTNode *ct)
    {
        const ir::BasicBlock *bb = ct->block();
        auto node = std::make_unique<NodePlan>();
        node->ct = ct;
        node->inLayout = layoutOf(bb);

        const ir::Instruction *term = bb->terminator();
        if (isBarrierBlock(bb)) {
            node->kind = NodePlan::Kind::Barrier;
            node->barrierLayout = node->inLayout;
            node->lmin = 1;
            node->lminMax = 1;
            node->depth = 2;
            // Out ports: project liveIn(bb) -> liveIn(succ).
            for (size_t p = 0; p < term->numSuccs(); ++p) {
                PortPlan port;
                port.dstBlock = term->succ(p);
                port.projection =
                    makeProjection(node->inLayout, bb, port.dstBlock);
                node->outPorts.push_back(std::move(port));
                node->outLayouts.push_back(layoutOf(term->succ(p)));
            }
            return node;
        }

        node->kind = NodePlan::Kind::BasicPipeline;
        auto bp = std::make_unique<BasicPipelinePlan>();
        bp->bb = bb;
        bp->inLayout = node->inLayout;

        // Sink layout: live-outs plus the branch condition.
        bp->sinkLayout = live_.orderedLiveOut(bb);
        if (term->op() == ir::Opcode::CondBr) {
            node->condValue = term->operand(0);
            if (node->condValue->isInstruction() &&
                indexIn(bp->sinkLayout, node->condValue) < 0) {
                bp->sinkLayout.push_back(node->condValue);
            }
            node->condIndex = indexIn(bp->sinkLayout, node->condValue);
        }

        dfg::Dfg graph(bb, bp->inLayout, bp->sinkLayout, pa_);

        // Functional units, one per DFG node.
        std::vector<int> latencies;
        for (const dfg::DfgNode &dn : graph.nodes()) {
            FuSpec fu;
            fu.id = dn.id;
            switch (dn.kind) {
              case dfg::DfgNode::Kind::Source:
                fu.kind = FuSpec::Kind::Source;
                fu.latency = 0;
                break;
              case dfg::DfgNode::Kind::Sink:
                fu.kind = FuSpec::Kind::Sink;
                fu.latency = 0;
                break;
              case dfg::DfgNode::Kind::Instruction: {
                fu.inst = dn.inst;
                fu.latency = config_.latency.nearMaxLatency(*dn.inst);
                if (dn.inst->isAtomic())
                    fu.kind = FuSpec::Kind::Atomic;
                else if (dn.inst->op() == ir::Opcode::Load)
                    fu.kind = FuSpec::Kind::Load;
                else if (dn.inst->op() == ir::Opcode::Store)
                    fu.kind = FuSpec::Kind::Store;
                else
                    fu.kind = FuSpec::Kind::Compute;
                break;
              }
            }
            latencies.push_back(fu.latency);
            bp->fus.push_back(fu);
        }
        plan_->numFus += static_cast<int>(bp->fus.size());

        // Edges with balancing FIFOs (§IV-C).
        std::vector<BalanceEdge> bedges;
        for (const dfg::DfgEdge &e : graph.edges())
            bedges.push_back({e.from, e.to});
        std::vector<int> depths(bedges.size(), 0);
        if (config_.balanceFifos) {
            depths = balanceFifos(static_cast<int>(graph.nodes().size()),
                                  latencies, bedges);
        }
        for (size_t i = 0; i < graph.edges().size(); ++i) {
            const dfg::DfgEdge &e = graph.edges()[i];
            bp->edges.push_back({e.from, e.to, e.value, depths[i]});
        }

        // lmin / depth: min/max source-sink path of Σ (L_F + 1). With
        // §IV-C balancing, every source-sink path carries the same
        // total near-maximum latency (FIFO slack fills the gap), so
        // the pipeline's strong-stall capacity equals its full depth —
        // this is what lets N_max admit enough work-items to keep a
        // loop's long-latency units busy (§IV-E).
        computePathStats(graph, latencies, &bp->lmin, &bp->depth);
        if (config_.balanceFifos)
            bp->lmin = bp->depth;
        node->lmin = bp->lmin;
        node->lminMax = bp->lmin;
        node->depth = bp->depth;

        // Out ports.
        for (size_t p = 0; p < term->numSuccs(); ++p) {
            PortPlan port;
            port.dstBlock = term->succ(p);
            port.projection =
                makeProjection(bp->sinkLayout, bb, port.dstBlock);
            node->outPorts.push_back(std::move(port));
            node->outLayouts.push_back(layoutOf(term->succ(p)));
        }
        node->pipeline = std::move(bp);
        return node;
    }

    void
    computePathStats(const dfg::Dfg &graph,
                     const std::vector<int> &latencies, int *lmin,
                     int *depth)
    {
        auto order = graph.topoOrder();
        std::map<int, int> min_to;
        std::map<int, int> max_to;
        min_to[graph.sourceId()] = latencies[0] + 1;
        max_to[graph.sourceId()] = latencies[0] + 1;
        for (int n : order) {
            if (!min_to.count(n))
                continue;
            for (const dfg::DfgEdge *e : graph.outEdges(n)) {
                int w = latencies[static_cast<size_t>(e->to)] + 1;
                int mn = min_to[n] + w;
                int mx = max_to[n] + w;
                if (!min_to.count(e->to) || mn < min_to[e->to])
                    min_to[e->to] = mn;
                if (!max_to.count(e->to) || mx > max_to[e->to])
                    max_to[e->to] = mx;
            }
        }
        *lmin = std::max(1, min_to.count(graph.sinkId())
                                ? min_to[graph.sinkId()] : 1);
        *depth = std::max(1, max_to.count(graph.sinkId())
                                 ? max_to[graph.sinkId()] : 1);
    }

    // ------------------------------------------------------------------
    // Region planning
    // ------------------------------------------------------------------
    std::unique_ptr<NodePlan>
    planNode(const CTNode *ct, bool needs_order)
    {
        if (ct->isLeaf())
            return planLeaf(ct);

        auto node = std::make_unique<NodePlan>();
        node->ct = ct;
        node->kind = NodePlan::Kind::Region;
        node->entryChild = ct->entryChild();
        node->inLayout = layoutOf(ct->entryBlock());

        bool is_loop = ct->kind() == CTKind::SelfLoop ||
                       ct->kind() == CTKind::WhileLoop ||
                       ct->kind() == CTKind::NaturalLoop;
        node->isLoop = is_loop;
        bool barrier_inside = subtreeHasBarrier(ct);

        // Work-group order strategy (§IV-F1).
        bool children_order = needs_order;
        if (needs_order) {
            switch (ct->kind()) {
              case CTKind::IfThen:
              case CTKind::IfThenElse:
                node->orderedSelects = true;
                break;
              case CTKind::SelfLoop:
              case CTKind::WhileLoop: {
                if (!loopTripCountUniform(ct) || barrier_inside) {
                    node->swgr = true;
                    children_order = false; // SWGR covers descendants
                }
                break;
              }
              case CTKind::NaturalLoop:
              case CTKind::ProperInterval:
                node->swgr = true;
                children_order = false;
                break;
              case CTKind::Sequence:
                break;
              default:
                break;
            }
        } else if (is_loop && barrier_inside) {
            node->swgr = true;
        }

        for (const auto &child : ct->children())
            node->children.push_back(planNode(child.get(),
                                              children_order));

        // Wires.
        node->wires.push_back({NodePlan::kEntry, 0, ct->entryChild(), 0,
                               false});
        for (const CTEdge &e : ct->edges()) {
            node->wires.push_back({e.fromChild, e.fromPort, e.toChild, 0,
                                   e.isBackEdge});
        }
        size_t num_ports = ct->numOutPorts();
        node->outLayouts.resize(num_ports);
        for (const CTEdge &e : ct->exitEdges()) {
            node->wires.push_back({e.fromChild, e.fromPort,
                                   NodePlan::kExit, e.regionPort, false});
            node->outLayouts[e.regionPort] = layoutOf(e.dstBlock);
        }

        computeRegionStats(node.get());

        if (is_loop) {
            computeLoopCaps(node.get());
            if (node->swgr) {
                node->backEdgeFifo = std::max(
                    node->backEdgeFifo, config_.maxWorkGroupSize);
                node->nmax = 0; // group-at-a-time gating instead
            }
        } else if (node->swgr) {
            node->nmax = 0;
        }
        return node;
    }

    bool
    loopTripCountUniform(const CTNode *ct)
    {
        // Find the exit condition: the terminator of the exit edge's
        // source block.
        for (const CTEdge &e : ct->exitEdges()) {
            if (e.srcBlock == nullptr)
                return false;
            const ir::Instruction *term = e.srcBlock->terminator();
            if (term->op() != ir::Opcode::CondBr)
                return false;
            if (!uniform_.uniformTripCount(ct->entryBlock(),
                                           term->operand(0))) {
                return false;
            }
        }
        return !ct->exitEdges().empty();
    }

    /** DAG min/max path sums of child lmin/depth from entry to exits. */
    void
    computeRegionStats(NodePlan *node)
    {
        size_t n = node->children.size();
        std::vector<int> min_to(n, -1);
        std::vector<int> max_to(n, -1);
        std::vector<int> lmax_to(n, -1);
        min_to[node->entryChild] = node->children[node->entryChild]->lmin;
        max_to[node->entryChild] =
            node->children[node->entryChild]->depth;
        lmax_to[node->entryChild] =
            node->children[node->entryChild]->lminMax;
        // Relax in rounds (children DAG is tiny).
        for (size_t round = 0; round < n + 1; ++round) {
            for (const NodePlan::Wire &w : node->wires) {
                if (w.isBackEdge || w.fromChild == NodePlan::kEntry ||
                    w.toChild == NodePlan::kExit) {
                    continue;
                }
                if (min_to[w.fromChild] < 0)
                    continue;
                int mn = min_to[w.fromChild] +
                         node->children[w.toChild]->lmin;
                int mx = max_to[w.fromChild] +
                         node->children[w.toChild]->depth;
                int lx = lmax_to[w.fromChild] +
                         node->children[w.toChild]->lminMax;
                if (min_to[w.toChild] < 0 || mn < min_to[w.toChild])
                    min_to[w.toChild] = mn;
                if (mx > max_to[w.toChild])
                    max_to[w.toChild] = mx;
                if (lx > lmax_to[w.toChild])
                    lmax_to[w.toChild] = lx;
            }
        }
        int lmin = -1;
        int lmax = -1;
        int depth = 1;
        for (const NodePlan::Wire &w : node->wires) {
            if (w.toChild != NodePlan::kExit ||
                w.fromChild == NodePlan::kEntry) {
                continue;
            }
            if (min_to[w.fromChild] < 0)
                continue;
            if (lmin < 0 || min_to[w.fromChild] < lmin)
                lmin = min_to[w.fromChild];
            lmax = std::max(lmax, lmax_to[w.fromChild]);
            depth = std::max(depth, max_to[w.fromChild]);
        }
        if (lmin < 0) {
            // No exits (root region): use the entry-reachable extremes.
            for (size_t i = 0; i < n; ++i) {
                if (min_to[i] >= 0) {
                    lmin = lmin < 0 ? min_to[i] : std::min(lmin,
                                                           min_to[i]);
                    lmax = std::max(lmax, lmax_to[i]);
                    depth = std::max(depth, max_to[i]);
                }
            }
        }
        node->lmin = std::max(1, lmin);
        node->lminMax = std::max(node->lmin, lmax);
        node->depth = std::max(node->lmin, depth);
    }

    /**
     * §IV-E: N_max / N_min over the loop's cycles. Every cycle consists
     * of a DAG path from the header to a latch plus the back edge; the
     * capacity of a cycle is Σ lmin(B) − 1 over its members.
     */
    void
    computeLoopCaps(NodePlan *node)
    {
        size_t n = node->children.size();
        std::vector<int> min_to(n, -1);
        std::vector<int> max_to(n, -1);
        min_to[node->entryChild] = node->children[node->entryChild]->lmin;
        max_to[node->entryChild] =
            node->children[node->entryChild]->lminMax;
        for (size_t round = 0; round < n + 1; ++round) {
            for (const NodePlan::Wire &w : node->wires) {
                if (w.isBackEdge || w.fromChild == NodePlan::kEntry ||
                    w.toChild == NodePlan::kExit) {
                    continue;
                }
                if (min_to[w.fromChild] < 0)
                    continue;
                int mn = min_to[w.fromChild] +
                         node->children[w.toChild]->lmin;
                int mx = max_to[w.fromChild] +
                         node->children[w.toChild]->lminMax;
                if (min_to[w.toChild] < 0 || mn < min_to[w.toChild])
                    min_to[w.toChild] = mn;
                if (mx > max_to[w.toChild])
                    max_to[w.toChild] = mx;
            }
        }
        int nmax = -1;
        int nmin = -1;
        for (const NodePlan::Wire &w : node->wires) {
            if (!w.isBackEdge || min_to[w.fromChild] < 0)
                continue;
            int lo = min_to[w.fromChild] - 1;
            int hi = max_to[w.fromChild] - 1;
            nmin = nmin < 0 ? lo : std::min(nmin, lo);
            nmax = nmax < 0 ? hi : std::max(nmax, hi);
        }
        if (nmax < 0) {
            nmax = std::max(1, node->lmin - 1);
            nmin = nmax;
        }
        nmax = std::max(1, nmax);
        nmin = std::max(1, nmin);
        node->nmax = config_.capLoopsAtNmax ? nmax : nmin;
        node->backEdgeFifo = std::max(1, nmax - nmin);
    }

    const ir::Kernel &kernel_;
    PlanConfig config_;
    analysis::CfgInfo cfg_;
    analysis::Liveness live_;
    analysis::PointerAnalysis pa_;
    analysis::Uniformity uniform_;
    KernelPlan *plan_ = nullptr;
};

} // namespace

std::unique_ptr<KernelPlan>
planKernel(const ir::Kernel &kernel, const PlanConfig &config)
{
    return Planner(kernel, config).run();
}

} // namespace soff::datapath
