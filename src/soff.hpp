/**
 * @file
 * Umbrella header: everything a downstream user of SOFF needs.
 *
 *  - soff::rt::Context / Program / KernelHandle — the OpenCL-style
 *    host API over the simulated platform (src/runtime).
 *  - soff::core::Compiler — source -> IR -> datapath plans, for tools
 *    that want the compiler without the runtime (src/core).
 *  - soff::verilog::emitTop — RTL emission of a compiled kernel.
 *  - soff::baseline::* — the reference interpreter and the
 *    compile-time-pipelining baselines used in the evaluation.
 */
#pragma once

#include "baseline/compat.hpp"
#include "baseline/interpreter.hpp"
#include "baseline/static_pipeline.hpp"
#include "core/compiler.hpp"
#include "runtime/runtime.hpp"
#include "verilog/emit.hpp"
