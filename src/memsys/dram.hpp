/**
 * @file
 * External-memory (DRAM) timing model.
 *
 * The memory controller in the static region (paper Fig. 2) serializes
 * line transfers from every cache: each 64-byte line transfer occupies
 * the channel for `cyclesPerLine` cycles and completes `latency` cycles
 * after it starts. Functional data movement happens in GlobalMemory at
 * scheduling time; only the timing is modeled here (the cache delays
 * its response until the scheduled completion cycle).
 */
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/fault.hpp"

namespace soff::memsys
{

/** Shared DRAM channel timing: bandwidth plus fixed latency. */
class DramTiming
{
  public:
    DramTiming(int latency, int cycles_per_line)
        : latency_(latency), cyclesPerLine_(cycles_per_line)
    {}

    /** Fault injection: latency spikes and burst jitter per transfer. */
    void setFaultPlan(const sim::FaultPlan *plan) { faults_ = plan; }

    /**
     * Schedules one line transfer issued at `now`; returns the cycle
     * when the data is available (or the write has drained). Transfers
     * are scheduled in cycle order across schedulers, so keying the
     * fault perturbation on the transfer ordinal is deterministic.
     */
    uint64_t
    schedule(uint64_t now)
    {
        uint64_t extra_latency = 0;
        uint64_t extra_occupancy = 0;
        if (faults_ != nullptr)
            faults_->dramPerturb(transfers_, &extra_latency,
                                 &extra_occupancy);
        uint64_t start = std::max(now, nextFree_);
        nextFree_ = start + static_cast<uint64_t>(cyclesPerLine_) +
                    extra_occupancy;
        ++transfers_;
        return start + static_cast<uint64_t>(latency_) + extra_latency;
    }

    int latency() const { return latency_; }
    uint64_t transfers() const { return transfers_; }

    /** Fresh-launch reset (relaunch path): clears the timeline. */
    void
    reset()
    {
        nextFree_ = 0;
        transfers_ = 0;
    }

    /** Line size in bytes, for bandwidth reporting. */
    void setLineBytes(int bytes) { lineBytes_ = bytes; }
    /** Bytes moved over the channel (transfers x line size). */
    uint64_t
    bytes() const
    {
        return transfers_ * static_cast<uint64_t>(lineBytes_);
    }

  private:
    int latency_;
    int cyclesPerLine_;
    int lineBytes_ = 64;
    uint64_t nextFree_ = 0;
    uint64_t transfers_ = 0;
    const sim::FaultPlan *faults_ = nullptr;
};

} // namespace soff::memsys
