#include "memsys/cache.hpp"

#include "sim/forensics.hpp"
#include "support/strings.hpp"

namespace soff::memsys
{

Cache::Cache(const std::string &name, GlobalMemory &memory,
             DramTiming &dram, int size_bytes, int line_bytes,
             sim::Channel<sim::MemReq> *in,
             sim::Channel<sim::MemResp> *out)
    : Component(name), memory_(memory), dram_(dram),
      sizeBytes_(size_bytes), lineBytes_(line_bytes),
      numLines_(size_bytes / line_bytes), in_(in), out_(out)
{
    watch(in_);
    watch(out_);
    lines_.resize(static_cast<size_t>(numLines_));
    for (Line &line : lines_) {
        line.data.resize(static_cast<size_t>(lineBytes_), 0);
        line.dirty.resize(static_cast<size_t>(lineBytes_), false);
    }
}

void
Cache::writebackLine(Line &line, uint64_t index)
{
    uint64_t base = lineBase(line, index);
    for (int i = 0; i < lineBytes_; ++i) {
        if (line.dirty[static_cast<size_t>(i)]) {
            memory_.writeBlock(base + static_cast<uint64_t>(i), 1,
                               &line.data[static_cast<size_t>(i)]);
            line.dirty[static_cast<size_t>(i)] = false;
        }
    }
    ++stats_.writebacks;
}

sim::Cycle
Cache::ensureLine(uint64_t addr, sim::Cycle now)
{
    uint64_t index = lineIndex(addr);
    Line &line = lines_[index];
    if (line.valid && line.tag == lineTag(addr)) {
        ++stats_.hits;
        return now + static_cast<sim::Cycle>(hitLatency_);
    }
    ++stats_.misses;
    sim::Cycle ready = now;
    if (line.valid) {
        ++stats_.evictions;
        bool dirty = false;
        for (bool d : line.dirty)
            dirty |= d;
        if (dirty) {
            writebackLine(line, index);
            ready = dram_.schedule(now); // writeback occupies the bus
        }
    }
    // Fill.
    line.valid = true;
    line.tag = lineTag(addr);
    uint64_t base = lineBase(line, index);
    memory_.readBlock(base, static_cast<uint32_t>(lineBytes_),
                      line.data.data());
    std::fill(line.dirty.begin(), line.dirty.end(), false);
    ready = std::max(ready, dram_.schedule(now));
    return ready + static_cast<sim::Cycle>(hitLatency_);
}

uint64_t
Cache::performAccess(const sim::MemReq &req)
{
    uint64_t index = lineIndex(req.addr);
    Line &line = lines_[index];
    SOFF_ASSERT(line.valid && line.tag == lineTag(req.addr),
                "performAccess on non-resident line");
    uint64_t offset = req.addr % static_cast<uint64_t>(lineBytes_);
    SOFF_ASSERT(offset + req.size <= static_cast<uint64_t>(lineBytes_),
                "access straddles a cache line");
    auto read = [&]() {
        uint64_t v = 0;
        for (uint32_t i = 0; i < req.size; ++i)
            v |= static_cast<uint64_t>(line.data[offset + i]) << (8 * i);
        return v;
    };
    auto write = [&](uint64_t v) {
        for (uint32_t i = 0; i < req.size; ++i) {
            line.data[offset + i] = static_cast<uint8_t>(v >> (8 * i));
            line.dirty[offset + i] = true;
        }
    };
    switch (req.op) {
      case sim::MemReq::Op::Load:
        return read();
      case sim::MemReq::Op::Store:
        write(req.data);
        return 0;
      case sim::MemReq::Op::AtomicRMW: {
        ++stats_.atomics;
        uint64_t old_value = read();
        write(ir::evalAtomicOp(req.aop, req.type, old_value, req.data));
        return old_value;
      }
      case sim::MemReq::Op::AtomicCmpXchg: {
        ++stats_.atomics;
        uint64_t old_value = read();
        if (old_value == req.data)
            write(req.data2);
        return old_value;
      }
    }
    return 0;
}

void
Cache::step(sim::Cycle now)
{
    // Flush mode: walk the lines, one write-back slot per cycle. Flush
    // only starts once in-flight transactions have drained (the
    // work-item counter raises the flush signal after every work-item
    // has retired, so the queue is normally already empty).
    if (flushRequested_ && !flushComplete_ && txq_.empty()) {
        noteActivity();
        // The walk makes progress without channel traffic; it is
        // stepped every cycle in all modes (wakeAt below), so marking
        // the cycle busy here is deterministic.
        perfBusy(now);
        int budget = 1;
        while (budget > 0 && flushCursor_ < numLines_) {
            Line &line = lines_[static_cast<size_t>(flushCursor_)];
            bool dirty = false;
            for (bool d : line.dirty)
                dirty |= d;
            if (dirty) {
                writebackLine(line, static_cast<uint64_t>(flushCursor_));
                dram_.schedule(now);
                --budget;
            }
            ++flushCursor_;
        }
        if (flushCursor_ >= numLines_) {
            flushComplete_ = true;
            // Same-cycle for the counter (created after every cache),
            // exactly as its poll would observe in the reference sweep.
            wakeOther(flushListener_);
        } else {
            wakeAt(now + 1); // the walk continues next cycle
        }
        return;
    }

    // Respond strictly in order.
    if (!txq_.empty() && txq_.front().readyAt <= now && out_->canPush()) {
        out_->push({txq_.front().result});
        txq_.pop_front();
    }
    // Only a transaction still waiting on its (timed) memory latency
    // counts as activity; a response blocked on a full channel must
    // not mask a downstream deadlock from the watchdog.
    if (!txq_.empty() && txq_.front().readyAt > now) {
        noteActivity();
        wakeAt(txq_.front().readyAt);
    }

    // Single port: accept one request per cycle.
    if (in_->canPop() && txq_.size() < txqCap_) {
        Tx tx;
        tx.req = in_->pop();
        tx.readyAt = ensureLine(tx.req.addr, now);
        // Younger requests never complete before older ones.
        if (!txq_.empty())
            tx.readyAt = std::max(tx.readyAt, txq_.back().readyAt);
        tx.result = performAccess(tx.req);
        txq_.push_back(tx);
    }
}

void
Cache::requestFlush(sim::Component *listener)
{
    flushRequested_ = true;
    flushListener_ = listener;
}

void
Cache::describeBlockage(sim::BlockageProbe &probe) const
{
    std::string held = strFormat("%zu/%zu transaction(s) queued",
                                 txq_.size(), txqCap_);
    if (!txq_.empty()) {
        held += strFormat(", oldest ready at cycle %llu",
                          static_cast<unsigned long long>(
                              txq_.front().readyAt));
        probe.waitPush(out_, held);
    }
    if (txq_.size() < txqCap_)
        probe.waitPop(in_, held);
    if (flushRequested_ && !flushComplete_) {
        probe.note(strFormat("flushing dirty lines (%d/%d walked)",
                             flushCursor_, numLines_));
    }
}

} // namespace soff::memsys
