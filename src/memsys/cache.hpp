/**
 * @file
 * Direct-mapped, single-port, non-blocking in-order caches (paper §V-A).
 *
 * "The caches are non-blocking in-order caches and thus can cooperate
 * with (fully-pipelined) functional units well. SOFF uses simple
 * direct-mapped, single-port caches." One request is accepted per cycle
 * (single port); responses are delivered strictly in request order;
 * misses overlap with younger requests in the transaction queue.
 *
 * Lines carry per-byte dirty masks, so concurrent unsynchronized caches
 * of the same buffer (one per datapath instance, §V-A) merge disjoint
 * writes correctly at write-back/flush time — the hardware equivalent
 * of byte-enable writes.
 */
#pragma once

#include <vector>

#include "ir/eval.hpp"
#include "memsys/dram.hpp"
#include "memsys/global_memory.hpp"
#include "sim/ring.hpp"
#include "sim/simulator.hpp"

namespace soff::memsys
{

/** Cache statistics (benchmark reporting). */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0; ///< Valid lines replaced by a fill.
    uint64_t writebacks = 0;
    uint64_t atomics = 0;
};

/** One direct-mapped write-back cache for the OpenCL global memory. */
class Cache : public sim::Component
{
  public:
    Cache(const std::string &name, GlobalMemory &memory,
          DramTiming &dram, int size_bytes, int line_bytes,
          sim::Channel<sim::MemReq> *in,
          sim::Channel<sim::MemResp> *out);

    void step(sim::Cycle now) override;
    void describeBlockage(sim::BlockageProbe &probe) const override;
    sim::ComponentKind kind() const override
    {
        return sim::ComponentKind::Cache;
    }
    bool
    holdsWork() const override
    {
        return in_->occupancy() > 0 || !txq_.empty() ||
               (flushRequested_ && !flushComplete_);
    }

    /**
     * Begins writing all dirty lines back (kernel completion, §III-B).
     * `listener` (if any) is woken when the flush completes — the
     * flush-done flag is not channel traffic the work-item counter
     * could otherwise observe.
     */
    void requestFlush(sim::Component *listener = nullptr);
    bool flushDone() const { return flushRequested_ && flushComplete_; }

    const CacheStats &stats() const { return stats_; }

    /** Fresh-launch reset: invalidates every line (keeping the line
     *  buffers allocated), drops queued transactions and flush state. */
    void
    reset() override
    {
        for (Line &line : lines_) {
            line.valid = false;
            line.tag = 0;
            std::fill(line.dirty.begin(), line.dirty.end(), false);
        }
        txq_.clear();
        stats_ = CacheStats{};
        flushRequested_ = false;
        flushComplete_ = false;
        flushCursor_ = 0;
        flushListener_ = nullptr;
    }

  private:
    struct Line
    {
        bool valid = false;
        uint64_t tag = 0;
        std::vector<uint8_t> data;
        std::vector<bool> dirty;
    };

    struct Tx
    {
        sim::MemReq req;
        sim::Cycle readyAt = 0;
        uint64_t result = 0;
    };

    uint64_t lineIndex(uint64_t addr) const
    {
        return (addr / static_cast<uint64_t>(lineBytes_)) %
               static_cast<uint64_t>(numLines_);
    }
    uint64_t lineTag(uint64_t addr) const
    {
        return addr / static_cast<uint64_t>(lineBytes_) /
               static_cast<uint64_t>(numLines_);
    }
    uint64_t
    lineBase(const Line &line, uint64_t index) const
    {
        return (line.tag * static_cast<uint64_t>(numLines_) + index) *
               static_cast<uint64_t>(lineBytes_);
    }

    /** Ensures the line holding addr is resident; returns ready cycle. */
    sim::Cycle ensureLine(uint64_t addr, sim::Cycle now);
    void writebackLine(Line &line, uint64_t index);
    uint64_t performAccess(const sim::MemReq &req);

    GlobalMemory &memory_;
    DramTiming &dram_;
    int sizeBytes_;
    int lineBytes_;
    int numLines_;
    int hitLatency_ = 2;
    sim::Channel<sim::MemReq> *in_;
    sim::Channel<sim::MemResp> *out_;
    std::vector<Line> lines_;
    sim::RingQueue<Tx> txq_;
    size_t txqCap_ = 16;
    CacheStats stats_;

    bool flushRequested_ = false;
    bool flushComplete_ = false;
    int flushCursor_ = 0;
    sim::Component *flushListener_ = nullptr;
};

} // namespace soff::memsys
