/**
 * @file
 * Atomic-operation lock tables (paper §IV-F2).
 *
 * "All atomic operations that may access the same cache or the same
 * local memory share a set of 16 locks. At the beginning of the
 * execution, a functional unit acquires the lock corresponding to the
 * last four bits of its cache line address (lock[(addr >> 6) % 16]);
 * at the end of the execution, it releases the lock."
 */
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace soff::sim
{
class Component;
}

namespace soff::memsys
{

/** 16 locks shared by the atomic units of one cache / local block. */
class LockTable
{
  public:
    static constexpr int kNumLocks = 16;

    static int
    lockIndex(uint64_t addr)
    {
        return static_cast<int>((addr >> 6) % kNumLocks);
    }

    /** Attempts to acquire for an owner token; true on success. */
    bool
    tryAcquire(int index, const void *owner)
    {
        if (owner_[static_cast<size_t>(index)] != nullptr)
            return false;
        owner_[static_cast<size_t>(index)] = owner;
        ++acquisitions_;
        return true;
    }

    void
    release(int index, const void *owner)
    {
        if (owner_[static_cast<size_t>(index)] == owner)
            owner_[static_cast<size_t>(index)] = nullptr;
    }

    uint64_t acquisitions() const { return acquisitions_; }

    /** Current owner token of `index` (null if free); forensics. */
    const void *
    holder(int index) const
    {
        return owner_[static_cast<size_t>(index)];
    }

    /**
     * Parks a component on a contended lock. A lock handoff is not
     * channel traffic, so the event-driven scheduler relies on the
     * releasing unit draining this list (takeWaiters) and waking each
     * entry; a spuriously woken waiter just re-parks itself.
     */
    void
    await(int index, sim::Component *c)
    {
        auto &list = waiters_[static_cast<size_t>(index)];
        for (sim::Component *w : list) {
            if (w == c)
                return;
        }
        list.push_back(c);
    }

    /** Removes and returns the components parked on `index`. */
    std::vector<sim::Component *>
    takeWaiters(int index)
    {
        std::vector<sim::Component *> out;
        out.swap(waiters_[static_cast<size_t>(index)]);
        return out;
    }

    /**
     * Visits every component parked on `index`, then clears the list in
     * place. The per-cycle release path uses this instead of
     * takeWaiters so a lock handoff never allocates (the list's
     * capacity is retained for the next contention burst).
     */
    template <typename F>
    void
    drainWaiters(int index, F &&visit)
    {
        auto &list = waiters_[static_cast<size_t>(index)];
        for (sim::Component *w : list)
            visit(w);
        list.clear();
    }

    /** Fresh-launch reset (relaunch path): drops owners and waiters. */
    void
    reset()
    {
        owner_ = {};
        for (auto &list : waiters_)
            list.clear();
        acquisitions_ = 0;
    }

  private:
    std::array<const void *, kNumLocks> owner_ = {};
    std::array<std::vector<sim::Component *>, kNumLocks> waiters_;
    uint64_t acquisitions_ = 0;
};

} // namespace soff::memsys
