/**
 * @file
 * Round-robin memory arbiters (paper §V-A: "a round-robin arbiter
 * called a datapath-cache arbiter is inserted between the functional
 * units and the cache"; Fig. 9 also shows the cache-memory arbiter).
 *
 * Because the downstream device (cache or controller) responds strictly
 * in request order, the arbiter routes responses back by replaying its
 * grant order from a FIFO.
 */
#pragma once

#include "sim/forensics.hpp"
#include "sim/ring.hpp"
#include "sim/simulator.hpp"
#include "support/strings.hpp"

namespace soff::memsys
{

/** N request/response port pairs multiplexed onto one downstream pair. */
class RRArbiter : public sim::Component
{
  public:
    RRArbiter(const std::string &name,
              sim::Channel<sim::MemReq> *down_req,
              sim::Channel<sim::MemResp> *down_resp)
        : Component(name), downReq_(down_req), downResp_(down_resp)
    {
        watch(downReq_);
        watch(downResp_);
    }

    /** Registers one upstream port; returns its index. */
    size_t
    addPort(sim::Channel<sim::MemReq> *req,
            sim::Channel<sim::MemResp> *resp)
    {
        watch(req);
        watch(resp);
        ports_.push_back({req, resp});
        return ports_.size() - 1;
    }

    void
    step(sim::Cycle) override
    {
        // Route the oldest response back to its originating port.
        if (downResp_->canPop() && !origins_.empty()) {
            Port &port = ports_[origins_.front()];
            if (port.resp->canPush()) {
                port.resp->push(downResp_->pop());
                origins_.pop_front();
            }
        }
        // Grant one request per cycle, round-robin.
        if (downReq_->canPush()) {
            for (size_t k = 0; k < ports_.size(); ++k) {
                size_t p = (rr_ + k) % ports_.size();
                if (ports_[p].req->canPop()) {
                    downReq_->push(ports_[p].req->pop());
                    origins_.push_back(p);
                    rr_ = (p + 1) % ports_.size();
                    break;
                }
            }
        }
    }

    sim::ComponentKind kind() const override
    {
        return sim::ComponentKind::Arbiter;
    }

    bool
    holdsWork() const override
    {
        if (!origins_.empty() || downResp_->occupancy() > 0)
            return true;
        for (const Port &port : ports_) {
            if (port.req->occupancy() > 0)
                return true;
        }
        return false;
    }

    void
    reset() override
    {
        origins_.clear();
        rr_ = 0;
    }

    void
    describeBlockage(sim::BlockageProbe &probe) const override
    {
        if (!origins_.empty()) {
            // In-order response routing: the oldest response must go
            // back to its origin before any younger one can move.
            std::string held = strFormat(
                "%zu response(s) owed, oldest to port %zu",
                origins_.size(), origins_.front());
            probe.waitPop(downResp_, held);
            probe.waitPush(ports_[origins_.front()].resp, held);
        }
        probe.waitPush(downReq_);
        for (const Port &port : ports_)
            probe.waitPop(port.req);
    }

  private:
    struct Port
    {
        sim::Channel<sim::MemReq> *req;
        sim::Channel<sim::MemResp> *resp;
    };

    sim::Channel<sim::MemReq> *downReq_;
    sim::Channel<sim::MemResp> *downResp_;
    std::vector<Port> ports_;
    sim::RingQueue<size_t> origins_;
    size_t rr_ = 0;
};

} // namespace soff::memsys
