/**
 * @file
 * The FPGA's external memory (the OpenCL global memory, paper §III-A).
 *
 * A flat little-endian byte array. The runtime's allocator hands out
 * buffer base addresses inside it; caches fill from and write back to
 * it. Address 0 is reserved so null pointers trap.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace soff::memsys
{

/** Byte-addressable device global memory. */
class GlobalMemory
{
  public:
    explicit GlobalMemory(uint64_t size_bytes) : bytes_(size_bytes, 0) {}

    uint64_t size() const { return bytes_.size(); }

    uint8_t *data() { return bytes_.data(); }
    const uint8_t *data() const { return bytes_.data(); }

    /** Reads a little-endian scalar of 1..8 bytes. */
    uint64_t
    readScalar(uint64_t addr, uint32_t size) const
    {
        SOFF_ASSERT(addr + size <= bytes_.size() && addr != 0,
                    "global memory read out of bounds");
        uint64_t v = 0;
        for (uint32_t i = 0; i < size; ++i)
            v |= static_cast<uint64_t>(bytes_[addr + i]) << (8 * i);
        return v;
    }

    /** Writes a little-endian scalar of 1..8 bytes. */
    void
    writeScalar(uint64_t addr, uint32_t size, uint64_t value)
    {
        SOFF_ASSERT(addr + size <= bytes_.size() && addr != 0,
                    "global memory write out of bounds");
        for (uint32_t i = 0; i < size; ++i)
            bytes_[addr + i] = static_cast<uint8_t>(value >> (8 * i));
    }

    void
    readBlock(uint64_t addr, uint32_t size, uint8_t *out) const
    {
        SOFF_ASSERT(addr + size <= bytes_.size(),
                    "global memory block read out of bounds");
        for (uint32_t i = 0; i < size; ++i)
            out[i] = bytes_[addr + i];
    }

    void
    writeBlock(uint64_t addr, uint32_t size, const uint8_t *in)
    {
        SOFF_ASSERT(addr + size <= bytes_.size(),
                    "global memory block write out of bounds");
        for (uint32_t i = 0; i < size; ++i)
            bytes_[addr + i] = in[i];
    }

  private:
    std::vector<uint8_t> bytes_;
};

} // namespace soff::memsys
