/**
 * @file
 * Local memory blocks (paper §V-B, Fig. 10).
 *
 * One block per __local variable. A block has 2^ceil(log2 N) banks for
 * its N connected functional units; the low bits of the word address
 * select the bank, and bank conflicts serialize. The block stores the
 * variable for several concurrent work-groups ("SOFF makes every local
 * memory block store the variable of ceil(L_Datapath/256) different
 * work-groups at the same time"); the request's slot field selects the
 * copy.
 */
#pragma once

#include <vector>

#include "ir/eval.hpp"
#include "sim/forensics.hpp"
#include "sim/ring.hpp"
#include "sim/simulator.hpp"

namespace soff::memsys
{

/** Statistics for one local memory block. */
struct LocalBlockStats
{
    uint64_t accesses = 0;
    uint64_t bankConflicts = 0;
};

/** Banked on-chip memory for one __local variable. */
class LocalMemoryBlock : public sim::Component
{
  public:
    LocalMemoryBlock(const std::string &name, uint64_t var_bytes,
                     int num_banks, int num_slots)
        : Component(name), varBytes_(var_bytes), numBanks_(num_banks),
          storage_(static_cast<size_t>(num_slots),
                   std::vector<uint8_t>(var_bytes, 0))
    {}

    /** Registers one functional-unit port; returns its index. */
    size_t
    addPort(sim::Channel<sim::MemReq> *req,
            sim::Channel<sim::MemResp> *resp)
    {
        watch(req);
        watch(resp);
        ports_.push_back({req, resp, {}});
        return ports_.size() - 1;
    }

    void
    step(sim::Cycle now) override
    {
        // Deliver ready responses, per port, in port order.
        for (Port &port : ports_) {
            if (!port.pending.empty() &&
                port.pending.front().first <= now &&
                port.resp->canPush()) {
                port.resp->push(port.pending.front().second);
                port.pending.pop_front();
            }
        }
        // Bank arbitration: each bank serves at most one port per
        // cycle. The round-robin start is derived from the cycle
        // number (not a per-step counter) so skipped idle cycles
        // cannot shift the rotation.
        bankBusy_.assign(static_cast<size_t>(numBanks_), 0);
        portServed_.assign(ports_.size(), 0);
        size_t rr = ports_.empty()
                        ? 0
                        : static_cast<size_t>(
                              now % static_cast<sim::Cycle>(
                                        ports_.size()));
        for (size_t k = 0; k < ports_.size(); ++k) {
            size_t p = (rr + k) % ports_.size();
            Port &port = ports_[p];
            if (!port.req->canPop() || portServed_[p] != 0)
                continue;
            const sim::MemReq &req = port.req->peek();
            size_t bank = static_cast<size_t>(
                (req.addr / 4) % static_cast<uint64_t>(numBanks_));
            if (bankBusy_[bank] != 0) {
                ++stats_.bankConflicts;
                continue;
            }
            bankBusy_[bank] = 1;
            portServed_[p] = 1;
            sim::MemReq r = port.req->pop();
            uint64_t result = access(r);
            port.pending.push_back(
                {now + static_cast<sim::Cycle>(latency_), {result}});
            ++stats_.accesses;
        }
        // Pending responses maturing later are purely internal time.
        bool timed = false;
        sim::Cycle nearest = 0;
        for (Port &port : ports_) {
            if (!port.pending.empty() &&
                port.pending.front().first > now) {
                if (!timed || port.pending.front().first < nearest)
                    nearest = port.pending.front().first;
                timed = true;
            }
        }
        if (timed) {
            noteActivity();
            wakeAt(nearest);
        }
    }

    void
    describeBlockage(sim::BlockageProbe &probe) const override
    {
        for (const Port &port : ports_) {
            if (!port.pending.empty())
                probe.waitPush(port.resp, "matured response waiting");
            probe.waitPop(port.req);
        }
    }

    sim::ComponentKind kind() const override
    {
        return sim::ComponentKind::LocalMemory;
    }

    bool
    holdsWork() const override
    {
        for (const Port &port : ports_) {
            if (!port.pending.empty() || port.req->occupancy() > 0)
                return true;
        }
        return false;
    }

    const LocalBlockStats &stats() const { return stats_; }

    /** Fresh-launch reset: zeroes every slot copy and drops pendings. */
    void
    reset() override
    {
        for (std::vector<uint8_t> &slot : storage_)
            std::fill(slot.begin(), slot.end(), 0);
        for (Port &port : ports_)
            port.pending.clear();
        stats_ = LocalBlockStats{};
    }

  private:
    uint64_t
    access(const sim::MemReq &req)
    {
        std::vector<uint8_t> &mem =
            storage_[req.slot % storage_.size()];
        uint64_t addr = ir::localPtrOffset(req.addr);
        SOFF_ASSERT(addr + req.size <= varBytes_,
                    "local memory access out of bounds: " + name());
        auto read = [&]() {
            uint64_t v = 0;
            for (uint32_t i = 0; i < req.size; ++i)
                v |= static_cast<uint64_t>(mem[addr + i]) << (8 * i);
            return v;
        };
        auto write = [&](uint64_t v) {
            for (uint32_t i = 0; i < req.size; ++i)
                mem[addr + i] = static_cast<uint8_t>(v >> (8 * i));
        };
        switch (req.op) {
          case sim::MemReq::Op::Load:
            return read();
          case sim::MemReq::Op::Store:
            write(req.data);
            return 0;
          case sim::MemReq::Op::AtomicRMW: {
            uint64_t old_value = read();
            write(ir::evalAtomicOp(req.aop, req.type, old_value,
                                   req.data));
            return old_value;
          }
          case sim::MemReq::Op::AtomicCmpXchg: {
            uint64_t old_value = read();
            if (old_value == req.data)
                write(req.data2);
            return old_value;
          }
        }
        return 0;
    }

    struct Port
    {
        sim::Channel<sim::MemReq> *req;
        sim::Channel<sim::MemResp> *resp;
        sim::RingQueue<std::pair<sim::Cycle, sim::MemResp>> pending;
    };

    uint64_t varBytes_;
    int numBanks_;
    int latency_ = 2;
    std::vector<std::vector<uint8_t>> storage_;
    std::vector<Port> ports_;
    LocalBlockStats stats_;
    /** Per-step scratch (members so steady-state steps never allocate). */
    std::vector<uint8_t> bankBusy_;
    std::vector<uint8_t> portServed_;
};

} // namespace soff::memsys
