/**
 * @file
 * A small-size-optimized vector for per-token payloads.
 *
 * WiToken live sets are short (the live-variable layout of a datapath
 * edge, typically 1-6 slots), but they flow through every channel in
 * the circuit every cycle. std::vector puts each one on the heap,
 * which made token movement the dominant allocation source in the
 * per-cycle path. SmallVec keeps up to N elements inline in the token
 * itself and only spills to the heap for the rare wide layouts, so the
 * steady-state step/commit loop allocates nothing.
 *
 * Deliberately minimal: exactly the surface the simulator uses
 * (push_back/emplace_back/resize/reserve/index/iterate/copy/move).
 */
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "support/error.hpp"

namespace soff::sim
{

template <typename T, size_t N> class SmallVec
{
  public:
    SmallVec() = default;

    SmallVec(const SmallVec &other) { appendAll(other); }

    SmallVec(SmallVec &&other) noexcept { moveFrom(std::move(other)); }

    SmallVec &operator=(const SmallVec &other)
    {
        if (this != &other) {
            clear();
            appendAll(other);
        }
        return *this;
    }

    SmallVec &operator=(SmallVec &&other) noexcept
    {
        if (this != &other) {
            destroyAll();
            moveFrom(std::move(other));
        }
        return *this;
    }

    ~SmallVec() { destroyAll(); }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    size_t capacity() const { return cap_; }

    T *data() { return ptr_(); }
    const T *data() const { return ptr_(); }

    T *begin() { return ptr_(); }
    T *end() { return ptr_() + size_; }
    const T *begin() const { return ptr_(); }
    const T *end() const { return ptr_() + size_; }

    T &operator[](size_t i) { return ptr_()[i]; }
    const T &operator[](size_t i) const { return ptr_()[i]; }

    T &at(size_t i)
    {
        SOFF_ASSERT(i < size_, "SmallVec index out of range");
        return ptr_()[i];
    }
    const T &at(size_t i) const
    {
        SOFF_ASSERT(i < size_, "SmallVec index out of range");
        return ptr_()[i];
    }

    T &front() { return ptr_()[0]; }
    const T &front() const { return ptr_()[0]; }
    T &back() { return ptr_()[size_ - 1]; }
    const T &back() const { return ptr_()[size_ - 1]; }

    void reserve(size_t n)
    {
        if (n > cap_)
            grow(n);
    }

    void push_back(const T &v)
    {
        if (size_ == cap_)
            grow(cap_ * 2);
        new (ptr_() + size_) T(v);
        ++size_;
    }

    void push_back(T &&v)
    {
        if (size_ == cap_)
            grow(cap_ * 2);
        new (ptr_() + size_) T(std::move(v));
        ++size_;
    }

    template <typename... Args> T &emplace_back(Args &&...args)
    {
        if (size_ == cap_)
            grow(cap_ * 2);
        T *slot = new (ptr_() + size_) T(std::forward<Args>(args)...);
        ++size_;
        return *slot;
    }

    void resize(size_t n)
    {
        if (n < size_) {
            T *p = ptr_();
            for (size_t i = n; i < size_; ++i)
                p[i].~T();
            size_ = n;
            return;
        }
        if (n > cap_)
            grow(n);
        T *p = ptr_();
        for (size_t i = size_; i < n; ++i)
            new (p + i) T();
        size_ = n;
    }

    void clear()
    {
        T *p = ptr_();
        for (size_t i = 0; i < size_; ++i)
            p[i].~T();
        size_ = 0;
    }

    friend bool operator==(const SmallVec &a, const SmallVec &b)
    {
        return a.size_ == b.size_ &&
               std::equal(a.begin(), a.end(), b.begin());
    }
    friend bool operator!=(const SmallVec &a, const SmallVec &b)
    {
        return !(a == b);
    }

  private:
    T *ptr_() { return heap_ != nullptr ? heap_ : inlinePtr_(); }
    const T *ptr_() const
    {
        return heap_ != nullptr ? heap_ : inlinePtr_();
    }

    T *inlinePtr_() { return reinterpret_cast<T *>(inline_); }
    const T *inlinePtr_() const
    {
        return reinterpret_cast<const T *>(inline_);
    }

    void grow(size_t want)
    {
        size_t cap = std::max(want, cap_ * 2);
        T *fresh = static_cast<T *>(
            ::operator new(cap * sizeof(T), std::align_val_t(alignof(T))));
        T *old = ptr_();
        for (size_t i = 0; i < size_; ++i) {
            new (fresh + i) T(std::move(old[i]));
            old[i].~T();
        }
        releaseHeap();
        heap_ = fresh;
        cap_ = cap;
    }

    void destroyAll()
    {
        clear();
        releaseHeap();
        heap_ = nullptr;
        cap_ = N;
    }

    void releaseHeap()
    {
        if (heap_ != nullptr)
            ::operator delete(heap_, std::align_val_t(alignof(T)));
    }

    void appendAll(const SmallVec &other)
    {
        reserve(other.size_);
        T *p = ptr_();
        for (size_t i = 0; i < other.size_; ++i)
            new (p + i) T(other.ptr_()[i]);
        size_ = other.size_;
    }

    /** Steal other's heap buffer, or move-construct inline elements. */
    void moveFrom(SmallVec &&other) noexcept
    {
        if (other.heap_ != nullptr) {
            heap_ = other.heap_;
            cap_ = other.cap_;
            size_ = other.size_;
            other.heap_ = nullptr;
            other.cap_ = N;
            other.size_ = 0;
            return;
        }
        heap_ = nullptr;
        cap_ = N;
        size_ = other.size_;
        T *p = inlinePtr_();
        T *q = other.inlinePtr_();
        for (size_t i = 0; i < size_; ++i) {
            new (p + i) T(std::move(q[i]));
            q[i].~T();
        }
        other.size_ = 0;
    }

    alignas(alignof(T)) unsigned char inline_[N * sizeof(T)];
    T *heap_ = nullptr;
    size_t size_ = 0;
    size_t cap_ = N;
};

} // namespace soff::sim
