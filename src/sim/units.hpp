/**
 * @file
 * Functional units of a basic pipeline (paper §IV-A/B).
 *
 * Every unit is fully pipelined (initiation interval 1), communicates
 * with neighbors through handshake channels, and never stalls while
 * holding fewer than L_F + 1 work-items (the precondition of §IV-E
 * Lemma 1 — the internal pipeline has exactly L_F + 1 slots).
 */
#pragma once

#include "datapath/plan.hpp"
#include "memsys/locks.hpp"
#include "sim/ring.hpp"
#include "sim/simulator.hpp"

namespace soff::sim
{

/**
 * A pre-resolved instruction operand source. Built once per unit from
 * the immutable wiring (ComputeUnit/MemUnit), so the per-issue hot
 * path reads either a cached value or an input-flit index instead of
 * re-classifying the operand (constant? argument?) and linearly
 * scanning the input list every cycle. Constants are pre-evaluated;
 * argument values are cached by value and re-fetched from the launch
 * context after every reset() (a relaunch of a pooled circuit rebinds
 * buffer addresses, and the launch map's node addresses are not
 * stable across that copy).
 */
struct OperandSlot
{
    enum class Src : uint8_t
    {
        Value, ///< Use `value` (pre-evaluated constant / cached arg).
        Input, ///< Use the issuing cycle's input flit `input`.
    };
    Src src = Src::Value;
    uint32_t input = 0;
    const ir::Argument *arg = nullptr; ///< Refresh source, or null.
    ir::RtValue value;
};

/** Distributes live-in values of a basic block to consumers (§IV-B). */
class SourceUnit : public Component
{
  public:
    SourceUnit(const std::string &name, Channel<WiToken> *in)
        : Component(name), in_(in)
    {
        watch(in_, PortDir::Pop);
    }

    /** live_index: slot in the input layout; -1 for trigger edges. */
    void
    addOutput(Channel<Flit> *ch, int live_index)
    {
        watch(ch, PortDir::Push);
        outs_.push_back({ch, live_index});
    }

    void step(Cycle now) override;
    void describeBlockage(BlockageProbe &probe) const override;
    ComponentKind kind() const override { return ComponentKind::Source; }
    bool holdsWork() const override { return in_->occupancy() > 0; }

  private:
    struct Out
    {
        Channel<Flit> *ch;
        int liveIndex;
    };

    Channel<WiToken> *in_;
    std::vector<Out> outs_;
};

/** Aggregates live-out values into the pipeline's output (§IV-B). */
class SinkUnit : public Component
{
  public:
    SinkUnit(const std::string &name, Channel<WiToken> *out,
             size_t layout_size)
        : Component(name), out_(out), layoutSize_(layout_size)
    {
        watch(out_, PortDir::Push);
    }

    /** sink_index: slot in the sink layout; -1 for ordering edges. */
    void
    addInput(Channel<Flit> *ch, int sink_index)
    {
        watch(ch, PortDir::Pop);
        ins_.push_back({ch, sink_index});
    }

    void step(Cycle now) override;
    void describeBlockage(BlockageProbe &probe) const override;
    ComponentKind kind() const override { return ComponentKind::Sink; }
    bool
    holdsWork() const override
    {
        for (const In &in : ins_) {
            if (in.ch->occupancy() > 0)
                return true;
        }
        return false;
    }

  private:
    struct In
    {
        Channel<Flit> *ch;
        int sinkIndex;
    };

    Channel<WiToken> *out_;
    size_t layoutSize_;
    std::vector<In> ins_;
};

/** A fixed-latency compute unit executing one instruction (§IV-A). */
class ComputeUnit : public Component
{
  public:
    ComputeUnit(const std::string &name, const ir::Instruction *inst,
                int latency, const LaunchContext *launch);

    void addInput(Channel<Flit> *ch, const ir::Value *value);
    void
    addOutput(Channel<Flit> *ch)
    {
        watch(ch, PortDir::Push);
        outs_.push_back(ch);
    }

    void step(Cycle now) override;
    void describeBlockage(BlockageProbe &probe) const override;
    ComponentKind kind() const override { return ComponentKind::Compute; }
    bool
    holdsWork() const override
    {
        if (!pipe_.empty())
            return true;
        for (const In &in : ins_) {
            if (in.ch->occupancy() > 0)
                return true;
        }
        return false;
    }
    void reset() override
    {
        pipe_.clear();
        opPlanFresh_ = false; // re-fetch cached argument values
    }

  private:
    void stepBody(Cycle now);
    void refreshOperandPlan();

    const ir::Instruction *inst_;
    int latency_;
    const LaunchContext *launch_;
    struct In
    {
        Channel<Flit> *ch;
        const ir::Value *value;
    };
    std::vector<In> ins_;
    std::vector<Channel<Flit> *> outs_;
    struct Stage
    {
        Cycle ready;
        Flit flit;
    };
    RingQueue<Stage> pipe_;
    size_t capacity_;
    /** Pre-resolved operand sources (structure built once; argument
     *  values refreshed after reset — storage is retained, so the
     *  steady state and every relaunch stay allocation-free). */
    std::vector<OperandSlot> opPlan_;
    bool opPlanBuilt_ = false;
    bool opPlanFresh_ = false;
    /** Per-step scratch (members so steady-state steps never allocate). */
    std::vector<Flit> flitScratch_;
    std::vector<ir::RtValue> opScratch_;
};

/**
 * A memory-access unit (loads, stores, atomics): issues requests to the
 * memory subsystem and forwards in-order responses (§IV-A, §V).
 * Variable latency; the near-maximum latency L_F sizes the in-flight
 * window so the unit never stalls while holding <= L_F requests.
 */
class MemUnit : public Component
{
  public:
    MemUnit(const std::string &name, const ir::Instruction *inst,
            int near_max_latency, const LaunchContext *launch);

    void addInput(Channel<Flit> *ch, const ir::Value *value);
    void
    addOutput(Channel<Flit> *ch)
    {
        watch(ch);
        outs_.push_back(ch);
    }
    void
    setMemPort(Channel<MemReq> *req, Channel<MemResp> *resp)
    {
        req_ = req;
        resp_ = resp;
        watch(req_);
        watch(resp_);
    }
    /** Atomics: the 16-lock table shared with the target cache/block. */
    void setLockTable(memsys::LockTable *locks) { locks_ = locks; }
    /** Local-memory accesses: slot count for work-group slotting. */
    void setNumSlots(int n) { numSlots_ = n; }

    /**
     * Opt-in §V-A L_F guard: record a violation whenever the in-flight
     * request count exceeds the response window capacity — i.e. the
     * unit could stall while holding more than L_F requests, voiding
     * the deadlock-freedom precondition.
     */
    void enableInvariantCheck() { checkInvariants_ = true; }
    /** Non-empty once the §V-A guard has tripped. */
    const std::string &invariantViolation() const { return violation_; }

    void step(Cycle now) override;
    void describeBlockage(BlockageProbe &probe) const override;
    ComponentKind kind() const override { return ComponentKind::Mem; }
    bool
    holdsWork() const override
    {
        if (!inflight_.empty())
            return true;
        if (resp_ != nullptr && resp_->occupancy() > 0)
            return true;
        for (const In &in : ins_) {
            if (in.ch->occupancy() > 0)
                return true;
        }
        return false;
    }
    void reset() override
    {
        inflight_.clear();
        violation_.clear();
        blockedOnLock_ = -1;
        opPlanFresh_ = false; // re-fetch cached argument values
    }

  private:
    void refreshOperandPlan();
    ir::RtValue convertResponse(uint64_t bits) const;

    const ir::Instruction *inst_;
    const LaunchContext *launch_;
    struct In
    {
        Channel<Flit> *ch;
        const ir::Value *value;
    };
    std::vector<In> ins_;
    std::vector<Channel<Flit> *> outs_;
    Channel<MemReq> *req_ = nullptr;
    Channel<MemResp> *resp_ = nullptr;
    memsys::LockTable *locks_ = nullptr;
    int numSlots_ = 1;
    struct Pending
    {
        uint64_t wi;
        int lockIndex; // -1 if none held
    };
    RingQueue<Pending> inflight_;
    size_t capacity_;
    bool checkInvariants_ = false;
    std::string violation_;
    int blockedOnLock_ = -1; ///< Lock index stalled on, -1 if none.
    /** Pre-resolved operand sources (see ComputeUnit). */
    std::vector<OperandSlot> opPlan_;
    bool opPlanBuilt_ = false;
    bool opPlanFresh_ = false;
    /** Per-step scratch (members so steady-state steps never allocate). */
    std::vector<Flit> flitScratch_;
    std::vector<ir::RtValue> opScratch_;
};

/**
 * The work-group barrier unit (§IV-F1): a FIFO over live-variable
 * bundles that releases a work-group once all of its work-items have
 * arrived. Tolerates a bounded number of simultaneously waiting
 * work-groups (the dispatcher's concurrent-group cap bounds this).
 */
class BarrierUnit : public Component
{
  public:
    BarrierUnit(const std::string &name, Channel<WiToken> *in,
                Channel<WiToken> *out, const LaunchContext *launch,
                int max_waiting_groups);

    void step(Cycle now) override;
    void describeBlockage(BlockageProbe &probe) const override;
    ComponentKind kind() const override { return ComponentKind::Barrier; }
    bool
    holdsWork() const override
    {
        return waitingGroups_ > 0 || !releasing_.empty() ||
               in_->occupancy() > 0;
    }
    void reset() override
    {
        for (Bucket &b : buckets_) {
            b.used = false;
            b.items.clear();
        }
        waitingGroups_ = 0;
        releasing_.clear();
        overflow_ = false;
    }

    bool overflowed() const { return overflow_; }

  private:
    /**
     * A partially arrived work-group. The bucket pool is sized to the
     * concurrent-group cap at construction (it used to be a std::map),
     * so admission and release in the steady state are a linear scan
     * over a handful of preallocated slots with no allocation.
     */
    struct Bucket
    {
        uint64_t group = 0;
        bool used = false;
        std::vector<WiToken> items;
    };

    Channel<WiToken> *in_;
    Channel<WiToken> *out_;
    const LaunchContext *launch_;
    size_t maxGroups_;
    std::vector<Bucket> buckets_;
    size_t waitingGroups_ = 0;
    RingQueue<WiToken> releasing_;
    bool overflow_ = false;
};

/** Applies a plan Projection to a token. */
WiToken applyProjection(const datapath::Projection &projection,
                        const WiToken &token,
                        const LaunchContext &launch);

} // namespace soff::sim
