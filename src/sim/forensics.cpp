#include "sim/forensics.hpp"

#include <map>

#include "support/diagnostics.hpp"
#include "support/strings.hpp"

namespace soff::sim
{

namespace
{

const char *
reasonVerb(DeadlockReport::Wait::Reason r)
{
    switch (r) {
      case DeadlockReport::Wait::Reason::PopEmpty:
        return "waits for a token on";
      case DeadlockReport::Wait::Reason::PushFull:
        return "waits for space on";
      case DeadlockReport::Wait::Reason::Lock:
        return "waits for";
    }
    return "waits on";
}

/**
 * Finds one cycle in the wait-for graph by DFS and renders it into
 * report->waitCycle. Edges were appended in component-index order and
 * adjacency lists preserve that order, so the cycle found is
 * deterministic for a given circuit state.
 */
void
extractWaitCycle(const std::vector<BlockageProbe::Edge> &edges,
                 DeadlockReport *report)
{
    std::vector<const Component *> nodes;
    std::map<const Component *, std::vector<size_t>> adj;
    for (size_t i = 0; i < edges.size(); ++i) {
        auto [it, fresh] = adj.try_emplace(edges[i].from);
        if (fresh)
            nodes.push_back(edges[i].from);
        it->second.push_back(i);
    }
    std::map<const Component *, int> color; // 0 new, 1 on path, 2 done
    struct Frame
    {
        const Component *node;
        size_t next;   ///< Next adjacency position to explore.
        size_t inEdge; ///< Edge used to enter this node.
    };
    for (const Component *start : nodes) {
        if (color[start] != 0)
            continue;
        std::vector<Frame> stack{{start, 0, SIZE_MAX}};
        color[start] = 1;
        while (!stack.empty()) {
            Frame &f = stack.back();
            auto it = adj.find(f.node);
            if (it == adj.end() || f.next >= it->second.size()) {
                color[f.node] = 2;
                stack.pop_back();
                continue;
            }
            size_t ei = it->second[f.next++];
            const Component *to = edges[ei].to;
            int c = color[to];
            if (c == 0) {
                color[to] = 1;
                stack.push_back({to, 0, ei});
            } else if (c == 1) {
                // Back edge: the path from `to` to the stack top plus
                // this edge is a wait cycle.
                size_t base = stack.size();
                while (base > 0 && stack[base - 1].node != to)
                    --base;
                for (size_t j = base - 1; j < stack.size(); ++j) {
                    size_t e = j + 1 < stack.size()
                                   ? stack[j + 1].inEdge
                                   : ei;
                    report->waitCycle.push_back(
                        stack[j].node->name() + " --[" +
                        edges[e].label + "]--> " +
                        edges[e].to->name());
                }
                return;
            }
        }
    }
}

} // namespace

// ----------------------------------------------------------------------
// BlockageProbe
// ----------------------------------------------------------------------
void
BlockageProbe::record(const ChannelBase *ch,
                      DeadlockReport::Wait::Reason r, std::string detail)
{
    DeadlockReport::Wait w;
    w.component = current_->name();
    w.reason = r;
    w.channel = strFormat("ch%u [%zu/%zu]", ch->id(), ch->occupancy(),
                          ch->capacityTokens());
    w.detail = std::move(detail);
    std::string label = std::string(reasonVerb(r)) + " " + w.channel;
    for (Component *peer : ch->watchers()) {
        if (peer == current_)
            continue;
        w.blockers.push_back(peer->name());
        edges_.push_back({current_, peer, label});
    }
    report_->waits.push_back(std::move(w));
}

void
BlockageProbe::waitPop(const ChannelBase *ch, std::string detail)
{
    if (ch == nullptr || current_ == nullptr || ch->occupancy() > 0)
        return;
    record(ch, DeadlockReport::Wait::Reason::PopEmpty,
           std::move(detail));
}

void
BlockageProbe::waitPush(const ChannelBase *ch, std::string detail)
{
    if (ch == nullptr || current_ == nullptr ||
        ch->occupancy() < ch->capacityTokens())
        return;
    record(ch, DeadlockReport::Wait::Reason::PushFull,
           std::move(detail));
}

void
BlockageProbe::waitLock(int lock_index, const void *holder,
                        std::string detail)
{
    if (current_ == nullptr)
        return;
    const Component *h = resolve(holder);
    DeadlockReport::Wait w;
    w.component = current_->name();
    w.reason = DeadlockReport::Wait::Reason::Lock;
    w.channel = strFormat("lock[%d]", lock_index);
    w.detail = std::move(detail);
    w.blockers.push_back(h != nullptr ? h->name() : "<unknown holder>");
    if (h != nullptr && h != current_) {
        edges_.push_back(
            {current_, h, strFormat("waits for lock[%d]", lock_index)});
    }
    report_->waits.push_back(std::move(w));
}

void
BlockageProbe::note(const std::string &text)
{
    report_->notes.push_back(
        current_ != nullptr ? current_->name() + ": " + text : text);
}

void
BlockageProbe::invariant(const std::string &text)
{
    report_->invariants.push_back(
        current_ != nullptr ? current_->name() + ": " + text : text);
}

const Component *
BlockageProbe::resolve(const void *addr) const
{
    for (const Component *c : all_) {
        if (static_cast<const void *>(c) == addr)
            return c;
    }
    return nullptr;
}

// ----------------------------------------------------------------------
// DeadlockReport
// ----------------------------------------------------------------------
std::string
DeadlockReport::render() const
{
    DiagnosticEngine diags;
    SourceLoc no_loc;
    const char *what = "deadlock";
    const char *why = "no component can ever make progress again";
    if (kind == HangKind::Timeout) {
        what = "timeout";
        why = "the cycle budget elapsed with work still pending";
    } else if (kind == HangKind::InvariantViolation) {
        what = "invariant violation";
        why = "an internal simulator/compiler invariant was broken";
    }
    diags.error(no_loc, strFormat("%s at cycle %llu: %s", what,
                                  static_cast<unsigned long long>(cycle),
                                  why));
    for (const std::string &inv : invariants)
        diags.error(no_loc, "invariant violated: " + inv);
    if (!waitCycle.empty()) {
        diags.note(no_loc,
                   strFormat("wait-for cycle (%zu edge(s)):",
                             waitCycle.size()));
        for (const std::string &hop : waitCycle)
            diags.note(no_loc, "  " + hop);
    }
    size_t shown = 0;
    for (const Wait &w : waits) {
        if (++shown > 32) {
            diags.note(no_loc,
                       strFormat("... and %zu more stalled component(s)",
                                 waits.size() - 32));
            break;
        }
        std::string line = "stalled: " + w.component + " " +
                           reasonVerb(w.reason) + " " + w.channel;
        if (!w.detail.empty())
            line += " (" + w.detail + ")";
        if (!w.blockers.empty())
            line += "; blocked on: " + strJoin(w.blockers, ", ");
        diags.note(no_loc, line);
    }
    for (const std::string &n : notes)
        diags.note(no_loc, n);
    return diags.report();
}

// ----------------------------------------------------------------------
// Simulator::diagnose (declared in simulator.hpp; lives here so the
// simulator core stays forensics-free on the hot path)
// ----------------------------------------------------------------------
std::shared_ptr<DeadlockReport>
Simulator::diagnose(HangKind kind) const
{
    auto report = std::make_shared<DeadlockReport>();
    report->kind = kind;
    report->cycle = now_;
    std::vector<const Component *> all;
    all.reserve(components_.size());
    for (const Component *c : components_)
        all.push_back(c);
    BlockageProbe probe(report.get(), std::move(all));
    for (const Component *c : components_) {
        probe.setCurrent(c);
        c->describeBlockage(probe);
    }
    extractWaitCycle(probe.edges(), report.get());
    return report;
}

} // namespace soff::sim
