/**
 * @file
 * The cycle-level simulation kernel.
 *
 * Three schedulers produce bit- and cycle-identical results:
 *
 *  - Reference (synchronous): all components are stepped once per
 *    clock cycle in creation order, then all channels commit their
 *    staged transfers. Communication is exclusively through channels,
 *    so intra-cycle ordering between components is unobservable and
 *    the simulation is deterministic.
 *
 *  - EventDriven (quiescence-aware): a component is stepped only when
 *    it is on the current cycle's wake list. It gets there via channel
 *    activity (a committed push/pop wakes both endpoints for the next
 *    cycle), a self-scheduled timer (`wakeAt`, for DRAM latency and
 *    similar purely internal timed state), a cross-component wake
 *    (`wakeOther`, for non-channel couplings such as lock tables and
 *    loop gates), or the always-awake opt-out. Only channels touched
 *    this cycle commit (dirty list), and idle gaps are skipped by
 *    jumping the clock to the next wake. Because the reference steps
 *    every component every cycle, a spurious wake can never diverge
 *    from it — equivalence only requires that no *needed* wake is
 *    missed, and that per-step state in components is either guarded
 *    by channel/timer conditions or derived from the cycle number.
 *
 *  - Parallel (sharded): the event-driven kernel, but the wake list is
 *    partitioned into shards (one per datapath instance plus one for
 *    the shared dispatch/memory-subsystem/counter components) driven
 *    by a persistent worker pool. Each cycle runs in two phases:
 *    (1) every shard steps its own wake list concurrently — safe
 *    because components only stage channel pushes/pops intra-cycle and
 *    never observe another shard's staged state; (2) after a barrier,
 *    dirty channels commit on their home shard in channel-index order.
 *    Per-shard wake lists, dirty lists, and timer heaps keep phase 1
 *    contention-free; cross-shard wakes (channel-watcher wakes raised
 *    while committing a channel whose endpoint lives elsewhere) go
 *    through per-shard outboxes drained at the barrier. The clock
 *    jumps to the minimum next wake across shards. Results are
 *    deterministic and identical to EventDriven regardless of thread
 *    interleaving: each shard sweeps in component-index order, staged
 *    channel state is invisible across shards until the commit
 *    barrier, commits are ordered by channel index, and every
 *    non-channel coupling (lock tables, loop gates, the completion
 *    board) is contained within a single shard — circuits where that
 *    does not hold (atomics on a cache shared across instances)
 *    collapse to a single shard and run serially.
 *
 * Data-oriented core. The per-cycle path never goes through a vtable:
 * `add<T>` records a monomorphic step/holdsWork thunk pair per
 * component in a flat table (`steps_`), so a wake-list sweep is an
 * index walk over contiguous entries making direct calls; channel
 * commits are non-virtual (see channel.hpp). All scheduler bookkeeping
 * that used to live per-object (shard tag, pending timer, wake-list
 * flags) lives in SoA arrays indexed by component index, and watcher
 * wake-up walks a flat index-span table instead of per-channel pointer
 * vectors. Components and channels themselves — including every token
 * ring — are placement-constructed into a per-circuit slab arena in
 * build order, so one datapath instance occupies one contiguous region
 * (replica batching: N instances share the structure, their state is
 * N adjacent spans, and Parallel shards are index ranges over them).
 * The `Component` virtual interface survives for construction-time
 * wiring, forensics (describeBlockage), and stats (kind()) — none of
 * which are on the per-cycle path.
 *
 * In the event-driven schedulers the deadlock watchdog is exact: an
 * empty wake queue with the completion flag unset *is* a deadlock
 * (nothing can ever happen again), replacing the reference scheduler's
 * idle-window heuristic.
 */
#pragma once

#include <atomic>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "sim/arena.hpp"
#include "sim/channel.hpp"
#include "sim/specialize.hpp"
#include "sim/stats.hpp"
#include "sim/token.hpp"

namespace soff::sim
{

class Simulator;
class BlockageProbe;
struct DeadlockReport;
class FaultPlan;
class TraceSink;
struct CompiledPlan;

/** Why a run failed to complete (forensics report classification). */
enum class HangKind
{
    Deadlock,           ///< No component can ever make progress again.
    Timeout,            ///< Cycle budget elapsed with work in flight.
    InvariantViolation, ///< An internal checker flagged a bug.
};

/** Which simulation kernel drives the circuit. */
enum class SchedulerMode
{
    Reference,   ///< Synchronous: step everything, commit everything.
    EventDriven, ///< Wake lists + dirty-channel commits + clock jumps.
    Parallel,    ///< Sharded event-driven kernel on a worker pool.
    Compiled,    ///< Event-driven + per-circuit specialized step plan.
    CrossCheck,  ///< Run all modes, assert identical (runtime level).
};

const char *schedulerModeName(SchedulerMode mode);
/** Parses a mode name (e.g. the SOFF_SCHEDULER environment knob). */
bool schedulerModeFromName(const std::string &name, SchedulerMode *out);

/** Counters for the scheduler itself (bench/sim_throughput). */
struct SchedulerStats
{
    uint64_t componentSteps = 0; ///< step() invocations performed.
    uint64_t cyclesActive = 0;   ///< Cycles actually processed.
    uint64_t channelCommits = 0; ///< Channel commits applied.
};

/** A clocked circuit component. */
class Component
{
  public:
    explicit Component(std::string name) : name_(std::move(name)) {}
    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;
    virtual ~Component() = default;

    /**
     * One clock cycle of behavior. Virtual only for hand-driven unit
     * tests and forensics; the schedulers call the concrete override
     * directly through the thunk `Simulator::add<T>` records.
     */
    virtual void step(Cycle now) = 0;

    /**
     * Hang forensics: declare the channel/lock conditions step() is
     * currently gated on (BlockageProbe::waitPop/waitPush/waitLock).
     * Called only after a run has deadlocked or timed out; the default
     * reports nothing.
     */
    virtual void describeBlockage(BlockageProbe &probe) const
    {
        (void)probe;
    }

    /** Coarse taxonomy for stats aggregation and trace labels. */
    virtual ComponentKind kind() const { return ComponentKind::Other; }

    /**
     * Stall classification, evaluated right after each step(): does
     * this component still hold work it could not finish this cycle?
     * A cycle where the component held work but moved no token counts
     * as stalled; held-work cycles with movement are busy.
     *
     * Determinism contract: the answer may depend only on *committed*
     * channel state (occupancy()) and the component's own internal
     * state. In particular it must never call canPop()/canPush() —
     * their fault gates arm retry wakes, which would change scheduling
     * — and it must not read another component's members. Under those
     * rules every transition of (holdsWork && !moved) coincides with a
     * cycle the event-driven scheduler steps the component anyway, so
     * span-based stall accounting is bit-identical across modes.
     */
    virtual bool holdsWork() const { return false; }

    /**
     * Restores post-construction dynamic state for a fresh launch of
     * the same circuit (KernelCircuit::relaunch). Structural wiring —
     * channel pointers, latencies, projections — is immutable and must
     * be left alone; everything a cold-built twin would start without
     * (queues, counters, cached progress) must be cleared so a relaunch
     * is bit-identical to a cold build. The default is for stateless
     * components.
     */
    virtual void reset() {}

    const std::string &name() const { return name_; }
    /** Global creation index (dispatch-table/plan position). */
    uint32_t index() const { return index_; }

  protected:
    /** Registers this component as an endpoint of `ch`. */
    void
    watch(ChannelBase *ch)
    {
        if (ch != nullptr)
            ch->addWatcher(this);
    }
    /**
     * Same, with the handshake side declared (PortDir). Components that
     * want to be eligible for the compiled-circuit specialization tag
     * their ports so the levelizer can orient producer->consumer edges;
     * the untagged overload keeps working everywhere else.
     */
    void
    watch(ChannelBase *ch, PortDir dir)
    {
        if (ch != nullptr)
            ch->addWatcher(this, dir);
    }

    /** Schedules a timer wake for this component at `cycle`. */
    void wakeAt(Cycle cycle);
    /** Requests a wake for this component as soon as legal. */
    void requestWake();
    /** Wakes another component (non-channel coupling). */
    void wakeOther(Component *c);
    /** Opts into unconditional per-cycle stepping. */
    void setAlwaysAwake() { alwaysAwake_ = true; }
    /** Reference-mode watchdog hint: busy despite quiet channels. */
    void noteActivity();

    /**
     * Marks this cycle busy without a channel movement — for progress
     * that is purely internal (the cache flush walk). Only legal when
     * the component is deterministically stepped on that cycle in
     * every scheduler mode (e.g. it armed wakeAt for it).
     */
    void perfBusy(Cycle now);

  private:
    friend class Simulator;
    friend class ChannelBase;

    std::string name_;
    Simulator *sim_ = nullptr;
    uint32_t index_ = 0;
    bool alwaysAwake_ = false;
    PerfCounters perf_; ///< Architectural counters (sim/stats.hpp).
};

/** Owns components and channels; advances the global clock. */
class Simulator
{
  public:
    /**
     * `threads` is the Parallel-mode worker count, capped by the shard
     * count; 0 means std::thread::hardware_concurrency(). The other
     * modes ignore it. Out-of-line (like the destructor) so the
     * header can hold a unique_ptr to the incomplete CompiledPlan.
     */
    explicit Simulator(SchedulerMode mode = SchedulerMode::Reference,
                       int threads = 0);
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;
    ~Simulator();

    /**
     * Creates and owns a component: placement-constructed in the
     * circuit arena, with a monomorphic step/holdsWork thunk pair
     * recorded in the flat dispatch table. The qualified `T::step`
     * call compiles to a direct (inlinable) call — no vtable load in
     * the sweep.
     */
    template <typename T, typename... Args>
    T *
    add(Args &&...args)
    {
        void *mem = arena_.allocate(sizeof(T), alignof(T));
        T *raw = new (mem) T(std::forward<Args>(args)...);
        raw->sim_ = this;
        raw->index_ = static_cast<uint32_t>(components_.size());
        components_.push_back(raw);
        compShard_.push_back(buildShard_);
        pendingWake_.push_back(kNoWake);
        schedFlags_.push_back(0);
        steps_.push_back(StepEntry{
            raw,
            [](Component *c, Cycle now) {
                static_cast<T *>(c)->T::step(now);
            },
            [](const Component *c) {
                return static_cast<const T *>(c)->T::holdsWork();
            }});
        stepMany_.push_back(&Simulator::stepManyBody<T>);
        return raw;
    }

    /**
     * Creates and owns a channel. Object and token ring both live in
     * the arena (adjacent to the components built around them);
     * destruction is a per-type thunk recorded here.
     */
    template <typename T>
    Channel<T> *
    channel(size_t capacity)
    {
        void *mem =
            arena_.allocate(sizeof(Channel<T>), alignof(Channel<T>));
        T *storage = arena_.allocateArray<T>(capacity);
        for (size_t i = 0; i < capacity; ++i)
            new (storage + i) T();
        auto *raw = new (mem) Channel<T>(capacity, storage);
        raw->index_ = static_cast<uint32_t>(channels_.size());
        raw->shard_ = buildShard_;
        raw->sim_ = this;
        raw->nowPtr_ = &now_;
        raw->faults_ = faultPlan_;
        raw->bindDirtyList(&dirtyChannels_);
        channels_.push_back(raw);
        channelDtors_.push_back([](ChannelBase *ch) {
            static_cast<Channel<T> *>(ch)->~Channel<T>();
        });
        return raw;
    }

    /**
     * Installs the fault plan consulted by channels created *after*
     * this call (the circuit builder installs it before wiring) and by
     * the scheduler itself. Pass nullptr (or never call) for a clean
     * run; injection costs nothing when off.
     */
    void setFaultPlan(const FaultPlan *plan) { faultPlan_ = plan; }

    /**
     * Installs a cooperative stop flag, polled at cycle boundaries
     * alongside the completion register: a true load makes run()
     * return early with stopped=true (no forensics — the run was
     * abandoned, not hung). Pass nullptr to clear; the runtime clears
     * it before a circuit is parked in the template pool.
     */
    void setStopFlag(const std::atomic<bool> *stop) { stopFlag_ = stop; }

    /**
     * Tags components and channels created from now on with a shard
     * (Parallel mode partitioning; the circuit builder brackets each
     * datapath instance). Shard 0 is the shared shard. The serial
     * schedulers ignore the tags.
     */
    void
    setBuildShard(uint32_t shard)
    {
        buildShard_ = shard;
        maxShard_ = std::max(maxShard_, shard);
    }
    /**
     * Declares the circuit unshardable (a non-channel coupling spans
     * shards, e.g. a lock table shared across datapath instances):
     * Parallel mode then runs everything as one shard, serially.
     */
    void collapseShards() { collapsed_ = true; }

    /**
     * Components with purely internal timed state (DRAM in flight,
     * cache flush walks) call this so quiet-but-busy cycles do not
     * count toward the reference scheduler's deadlock window. (The
     * event-driven scheduler ignores it; such components arm explicit
     * `wakeAt` timers instead.)
     */
    void noteActivity() { activity_ = true; }

    struct RunResult
    {
        bool completed = false;
        bool deadlock = false;
        /** Run ended early because the stop flag was raised. */
        bool stopped = false;
        Cycle cycles = 0;
        /** Forensics attached when the run deadlocked or timed out. */
        std::shared_ptr<DeadlockReport> report;
        /** Architectural counters (KernelCircuit::run attaches it). */
        std::shared_ptr<StatsReport> stats;
    };

    /**
     * Runs until `*done` becomes true (checked at cycle boundaries —
     * completion is a circuit-level register, not a per-cycle
     * callback), deadlock is detected, or `max_cycles` elapse.
     * `deadlock_window` applies to the reference scheduler's idle
     * heuristic only; the event-driven schedulers detect the exact
     * quiescence cycle.
     */
    RunResult run(const bool *done, Cycle max_cycles,
                  Cycle deadlock_window = 100000);

    /**
     * Rewinds the simulator to its pre-first-run state for a fresh
     * launch of the same circuit: clock, scheduler/perf counters, SoA
     * scheduling state, shard queues. Component/channel *structure*
     * (and the worker pool, once spawned) is retained; the caller is
     * responsible for having reset component and channel state
     * (KernelCircuit::relaunch does both).
     */
    void resetForRerun();

    SchedulerMode mode() const { return mode_; }
    Cycle now() const { return now_; }
    size_t numComponents() const { return components_.size(); }
    const Component &component(size_t i) const { return *components_[i]; }
    size_t numChannels() const { return channels_.size(); }
    /** Aggregated over shards; exact and mode-independent counters. */
    SchedulerStats schedulerStats() const;
    /** Shard count resolved at the first run (1 before that). */
    size_t numShards() const { return shards_.empty() ? 1 : shards_.size(); }
    /** Worker threads (including the coordinator) after the first run. */
    int parallelWorkers() const { return numWorkers_; }
    /** Bytes the circuit arena has handed out (diagnostics). */
    size_t arenaBytes() const { return arena_.bytesAllocated(); }

    /** Installs (or clears) the trace sink; not owned. */
    void setTraceSink(TraceSink *sink) { traceSink_ = sink; }
    TraceSink *traceSink() const { return traceSink_; }

    /**
     * Enables/disables the batched replica stepping path of the
     * compiled plan (SOFF_BATCH_STEP; on by default). Off, the sweep
     * steps awake members one position at a time through the hoisted
     * bucket thunks — observably identical, kept as the ablation
     * baseline and the knob's escape hatch. Must be set before the
     * first run; it only affects how buckets are swept, not what the
     * plan contains.
     */
    void setBatchStep(bool on) { batchStep_ = on; }
    bool batchStep() const { return batchStep_; }

    /**
     * The specialized execution plan SchedulerMode::Compiled built for
     * this circuit at its first run, or null — before the first run,
     * under every other mode, when a fault plan or trace sink forces
     * the generic-sweep fallback, or when the circuit offered nothing
     * to specialize. Exposed for tests and benchmarks; the plan is
     * owned by the simulator and immutable between runs.
     */
    const CompiledPlan *compiledPlan() const { return plan_.get(); }

    /**
     * Closes still-open stall spans at the final cycle. Call once
     * after run() before reading counters; for completed runs the
     * close cycle is the completion cycle in every mode.
     */
    void finalizePerfSpans();
    /** Appends per-component/per-channel counters and busy/stall
     *  totals to `report` (the circuit layer adds its own sections). */
    void appendPerfStats(StatsReport &report) const;

    /**
     * Builds the structured hang report: every component describes its
     * blockage, the wait-for graph is assembled from channel watcher
     * lists, and one wait cycle is extracted (sim/forensics.cpp).
     */
    std::shared_ptr<DeadlockReport> diagnose(HangKind kind) const;

    /** Schedules `c` at `cycle` (>= the current cycle). */
    void scheduleAt(Component *c, Cycle cycle);
    /**
     * Called by a channel whose fault gate blocked a query: arms a
     * timer wake at the window's clear cycle for the component being
     * swept right now (the querier — always same-shard, so this never
     * trips the cross-shard timer assertion). A no-op outside a step
     * sweep: the reference scheduler steps everything anyway.
     */
    void faultRetryAt(Cycle clear);
    /**
     * Wakes `c` with same-cycle visibility semantics: if the current
     * cycle's in-order sweep of c's shard has not yet passed `c`, it
     * is stepped this cycle (as the synchronous reference would),
     * otherwise next cycle. A wake that crosses shards is delivered at
     * the cycle barrier for the next cycle; the circuit builder keeps
     * every same-cycle coupling inside one shard.
     */
    void wakeComponent(Component *c);

  private:
    /** One flat dispatch-table row: the sweep reads (c, step) and the
     *  stall accounting reads (c, holds) — no vtable loads. */
    struct StepEntry
    {
        Component *c;
        void (*step)(Component *, Cycle);
        bool (*holds)(const Component *);
    };

    struct HeapEntry
    {
        Cycle cycle;
        uint32_t index;
        bool operator>(const HeapEntry &o) const
        {
            return cycle > o.cycle ||
                   (cycle == o.cycle && index > o.index);
        }
    };

    /** Per-shard scheduler state. Only the shard's owning thread of
     *  the current phase touches it; the cycle barriers order the
     *  hand-offs. Padded against false sharing. */
    struct alignas(64) Shard
    {
        std::vector<uint32_t> currentList; ///< This cycle's wake list.
        std::vector<uint32_t> nextList;    ///< Next cycle's wake list.
        std::vector<ChannelBase *> dirtyChannels; ///< Shard-local dirty.
        std::vector<ChannelBase *> crossDirty; ///< Cross-shard, claimed here.
        std::vector<ChannelBase *> commitList; ///< Phase-2 scratch.
        std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                            std::greater<HeapEntry>>
            timerHeap;
        /** outbox[t]: components of shard t to wake next cycle. */
        std::vector<std::vector<uint32_t>> outbox;
        uint32_t id = 0;
        size_t sweepPos = 0;
        bool sweeping = false;
        uint64_t componentSteps = 0;
        uint64_t channelCommits = 0;
    };

    enum PhaseKind { kPhaseStep = 1, kPhaseCommit = 2, kPhaseExit = 3 };

    static constexpr Cycle kNoWake = ~Cycle{0};

    /** SoA wake-list membership flags (schedFlags_). */
    static constexpr uint8_t kInWakeList = 1; ///< Current cycle.
    static constexpr uint8_t kInNextList = 2; ///< Next cycle.

    /** Index-based core of scheduleAt (hot: commit wake sweeps). */
    void scheduleIndexAt(uint32_t index, Cycle cycle);

    /** Post-step stall-span accounting (both scheduler families). */
    void finishStep(const StepEntry &e);

    /**
     * Batched replica stepping: steps every component in `batch` —
     * all of concrete type T, all awake replicas of one (level, thunk)
     * bucket — through the directly inlinable qualified call, with the
     * channel perf attribution redirected per replica (one TLS store)
     * and the stall-span accounting fused in. The loop body is
     * branch-light and monomorphic: the compiler sees T::step and
     * T::holdsWork at their single call sites and can vectorize or
     * software-pipeline across replicas. Equivalent to the per-entry
     * sweep + finishStep sequence by construction (same statements,
     * same order per replica).
     */
    template <typename T>
    static void
    stepManyBody(Component *const *batch, uint32_t n, Cycle now)
    {
        for (uint32_t i = 0; i < n; ++i) {
            T *c = static_cast<T *>(batch[i]);
            ChannelBase::tlsStepPerf = &c->perf_;
            c->T::step(now);
            PerfCounters &p = c->perf_;
            const bool moved = p.lastMoveCycle == now;
            if (!moved && c->T::holdsWork()) {
                if (!p.stallOpen) {
                    p.stallOpen = true;
                    p.stallStart = now;
                }
            } else if (p.stallOpen) {
                p.stallOpen = false;
                p.stalledCycles += now - p.stallStart;
            }
        }
    }

    RunResult runReference(const bool *done, Cycle max_cycles,
                           Cycle deadlock_window);
    RunResult runSharded(const bool *done, Cycle max_cycles);
    void finalizeShards();
    void gatherWakes(Shard &sh);
    void stepShard(Shard &sh);
    void commitShard(Shard &sh);
    void drainOutboxes();
    void runPhase(PhaseKind kind);
    void shardLoop(PhaseKind kind);
    void workerMain();

    // Compiled-mode specialization (sim/specialize.cpp). The plan is
    // built once at finalizeShards; the per-cycle entry points replace
    // gatherWakes and extend the commit phase for fused channels.
    void buildCompiledPlan();
    void gatherCompiled(Shard &sh);
    void sweepActiveSegments(Shard &sh);
    void commitSegmentChannels(Shard &sh);
    void resetCompiledState();

    SchedulerMode mode_;
    int threadsRequested_;

    /** Slab storage behind every component, channel, and token ring. */
    Arena arena_;
    std::vector<Component *> components_;   ///< Arena-owned.
    std::vector<ChannelBase *> channels_;   ///< Arena-owned.
    /** Typed destructor thunk per channel (parallel to channels_). */
    std::vector<void (*)(ChannelBase *)> channelDtors_;
    /** Flat dispatch table, parallel to components_. */
    std::vector<StepEntry> steps_;
    /** Batched step thunks, parallel to steps_ (compiled plan only;
     *  every component of one thunk shares one stepManyBody<T>). */
    std::vector<StepManyFn> stepMany_;

    // SoA scheduler state, indexed by component index. Lives here (not
    // in Component) so sweeps and wake delivery touch dense arrays.
    std::vector<uint32_t> compShard_;  ///< Owning shard per component.
    std::vector<Cycle> pendingWake_;   ///< Earliest heap-scheduled wake.
    std::vector<uint8_t> schedFlags_;  ///< kInWakeList | kInNextList.

    /** Flat channel-watcher index spans (see ChannelBase::watchOff_). */
    std::vector<uint32_t> watcherIndices_;

    Cycle now_ = 0;
    bool activity_ = false;
    SchedulerStats stats_;
    const FaultPlan *faultPlan_ = nullptr;
    const std::atomic<bool> *stopFlag_ = nullptr;
    TraceSink *traceSink_ = nullptr;
    bool batchStep_ = true; ///< Batched bucket sweeps (setBatchStep).

    /** Specialized step plan (Compiled mode only; null = generic). */
    std::unique_ptr<CompiledPlan> plan_;

    // Reference-mode dirty tracking (channels bind to this list until
    // the sharded schedulers re-bind them at finalizeShards()).
    std::vector<ChannelBase *> dirtyChannels_;

    // Sharded (event-driven / parallel) machinery.
    uint32_t buildShard_ = 0;
    uint32_t maxShard_ = 0;
    bool collapsed_ = false;
    bool shardsReady_ = false;
    std::vector<std::unique_ptr<Shard>> shards_;
    static thread_local Shard *tlsShard_;

    // Worker pool (Parallel mode with more than one worker).
    int numWorkers_ = 1;
    std::vector<std::thread> workers_;
    std::atomic<uint64_t> phaseGo_{0};
    std::atomic<uint32_t> phaseArrived_{0};
    std::atomic<uint32_t> shardCursor_{0};
    std::atomic<int> phaseKind_{0};
    std::atomic<bool> workerFailed_{false};
    std::string workerError_;
};

} // namespace soff::sim
