/**
 * @file
 * The synchronous cycle-level simulation kernel.
 *
 * All components are stepped once per clock cycle in creation order,
 * then all channels commit their staged transfers. Communication is
 * exclusively through channels, so intra-cycle ordering between
 * components is unobservable and the simulation is deterministic.
 */
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/channel.hpp"
#include "sim/token.hpp"

namespace soff::sim
{

class Simulator;

/** A clocked circuit component. */
class Component
{
  public:
    explicit Component(std::string name) : name_(std::move(name)) {}
    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;
    virtual ~Component() = default;

    /** One clock cycle of behavior. */
    virtual void step(Cycle now) = 0;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

/** Owns components and channels; advances the global clock. */
class Simulator
{
  public:
    Simulator() = default;
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Creates and owns a component. */
    template <typename T, typename... Args>
    T *
    add(Args &&...args)
    {
        auto c = std::make_unique<T>(std::forward<Args>(args)...);
        T *raw = c.get();
        components_.push_back(std::move(c));
        return raw;
    }

    /** Creates and owns a channel. */
    template <typename T>
    Channel<T> *
    channel(size_t capacity)
    {
        auto ch = std::make_unique<Channel<T>>(capacity);
        Channel<T> *raw = ch.get();
        channels_.push_back(std::move(ch));
        return raw;
    }

    /**
     * Components with purely internal timed state (DRAM in flight,
     * cache flush walks) call this so quiet-but-busy cycles do not
     * count toward the deadlock window.
     */
    void noteActivity() { activity_ = true; }

    struct RunResult
    {
        bool completed = false;
        bool deadlock = false;
        Cycle cycles = 0;
    };

    /**
     * Runs until done() returns true, the deadlock watchdog fires (no
     * channel transfer and no reported activity for `deadlock_window`
     * consecutive cycles), or `max_cycles` elapse.
     */
    RunResult run(const std::function<bool()> &done, Cycle max_cycles,
                  Cycle deadlock_window = 100000);

    Cycle now() const { return now_; }
    size_t numComponents() const { return components_.size(); }
    size_t numChannels() const { return channels_.size(); }

  private:
    std::vector<std::unique_ptr<Component>> components_;
    std::vector<std::unique_ptr<ChannelBase>> channels_;
    Cycle now_ = 0;
    bool activity_ = false;
};

} // namespace soff::sim
