/**
 * @file
 * The cycle-level simulation kernel.
 *
 * Two schedulers produce bit- and cycle-identical results:
 *
 *  - Reference (synchronous): all components are stepped once per
 *    clock cycle in creation order, then all channels commit their
 *    staged transfers. Communication is exclusively through channels,
 *    so intra-cycle ordering between components is unobservable and
 *    the simulation is deterministic.
 *
 *  - EventDriven (quiescence-aware): a component is stepped only when
 *    it is on the current cycle's wake list. It gets there via channel
 *    activity (a committed push/pop wakes both endpoints for the next
 *    cycle), a self-scheduled timer (`wakeAt`, for DRAM latency and
 *    similar purely internal timed state), a cross-component wake
 *    (`wakeOther`, for non-channel couplings such as lock tables and
 *    loop gates), or the always-awake opt-out. Only channels touched
 *    this cycle commit (dirty list), and idle gaps are skipped by
 *    jumping the clock to the next wake. Because the reference steps
 *    every component every cycle, a spurious wake can never diverge
 *    from it — equivalence only requires that no *needed* wake is
 *    missed, and that per-step state in components is either guarded
 *    by channel/timer conditions or derived from the cycle number.
 *
 * In EventDriven mode the deadlock watchdog is exact: an empty wake
 * queue with the completion flag unset *is* a deadlock (nothing can
 * ever happen again), replacing the reference scheduler's
 * idle-window heuristic.
 */
#pragma once

#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/channel.hpp"
#include "sim/token.hpp"

namespace soff::sim
{

class Simulator;

/** Which simulation kernel drives the circuit. */
enum class SchedulerMode
{
    Reference,   ///< Synchronous: step everything, commit everything.
    EventDriven, ///< Wake lists + dirty-channel commits + clock jumps.
    CrossCheck,  ///< Run both, assert identical results (runtime level).
};

const char *schedulerModeName(SchedulerMode mode);

/** Counters for the scheduler itself (bench/sim_throughput). */
struct SchedulerStats
{
    uint64_t componentSteps = 0; ///< step() invocations performed.
    uint64_t cyclesActive = 0;   ///< Cycles actually processed.
    uint64_t channelCommits = 0; ///< Channel commits applied.
};

/** A clocked circuit component. */
class Component
{
  public:
    explicit Component(std::string name) : name_(std::move(name)) {}
    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;
    virtual ~Component() = default;

    /** One clock cycle of behavior. */
    virtual void step(Cycle now) = 0;

    const std::string &name() const { return name_; }

  protected:
    /** Registers this component as an endpoint of `ch`. */
    void
    watch(ChannelBase *ch)
    {
        if (ch != nullptr)
            ch->addWatcher(this);
    }

    /** Schedules a timer wake for this component at `cycle`. */
    void wakeAt(Cycle cycle);
    /** Requests a wake for this component as soon as legal. */
    void requestWake();
    /** Wakes another component (non-channel coupling). */
    void wakeOther(Component *c);
    /** Opts into unconditional per-cycle stepping. */
    void setAlwaysAwake() { alwaysAwake_ = true; }
    /** Reference-mode watchdog hint: busy despite quiet channels. */
    void noteActivity();

  private:
    friend class Simulator;

    static constexpr Cycle kNoWake = ~Cycle{0};

    std::string name_;
    Simulator *sim_ = nullptr;
    uint32_t index_ = 0;
    Cycle pendingWake_ = kNoWake; ///< Earliest heap-scheduled wake.
    bool inWakeList_ = false;     ///< Queued for the current cycle.
    bool inNextList_ = false;     ///< Queued for the next cycle.
    bool alwaysAwake_ = false;
};

/** Owns components and channels; advances the global clock. */
class Simulator
{
  public:
    explicit Simulator(SchedulerMode mode = SchedulerMode::Reference)
        : mode_(mode)
    {
        SOFF_ASSERT(mode != SchedulerMode::CrossCheck,
                    "CrossCheck is resolved above the simulator");
    }
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Creates and owns a component. */
    template <typename T, typename... Args>
    T *
    add(Args &&...args)
    {
        auto c = std::make_unique<T>(std::forward<Args>(args)...);
        T *raw = c.get();
        raw->sim_ = this;
        raw->index_ = static_cast<uint32_t>(components_.size());
        components_.push_back(std::move(c));
        return raw;
    }

    /** Creates and owns a channel. */
    template <typename T>
    Channel<T> *
    channel(size_t capacity)
    {
        auto ch = std::make_unique<Channel<T>>(capacity);
        Channel<T> *raw = ch.get();
        raw->bindDirtyList(&dirtyChannels_);
        channels_.push_back(std::move(ch));
        return raw;
    }

    /**
     * Components with purely internal timed state (DRAM in flight,
     * cache flush walks) call this so quiet-but-busy cycles do not
     * count toward the reference scheduler's deadlock window. (The
     * event-driven scheduler ignores it; such components arm explicit
     * `wakeAt` timers instead.)
     */
    void noteActivity() { activity_ = true; }

    struct RunResult
    {
        bool completed = false;
        bool deadlock = false;
        Cycle cycles = 0;
    };

    /**
     * Runs until `*done` becomes true (checked at cycle boundaries —
     * completion is a circuit-level register, not a per-cycle
     * callback), deadlock is detected, or `max_cycles` elapse.
     * `deadlock_window` applies to the reference scheduler's idle
     * heuristic only; the event-driven scheduler detects the exact
     * quiescence cycle.
     */
    RunResult run(const bool *done, Cycle max_cycles,
                  Cycle deadlock_window = 100000);

    SchedulerMode mode() const { return mode_; }
    Cycle now() const { return now_; }
    size_t numComponents() const { return components_.size(); }
    size_t numChannels() const { return channels_.size(); }
    const SchedulerStats &schedulerStats() const { return stats_; }

    /** Schedules `c` at `cycle` (>= the current cycle). */
    void scheduleAt(Component *c, Cycle cycle);
    /**
     * Wakes `c` with same-cycle visibility semantics: if the current
     * cycle's in-order sweep has not yet passed `c`, it is stepped
     * this cycle (as the synchronous reference would), otherwise next
     * cycle.
     */
    void wakeComponent(Component *c);

  private:
    RunResult runReference(const bool *done, Cycle max_cycles,
                           Cycle deadlock_window);
    RunResult runEventDriven(const bool *done, Cycle max_cycles);
    void gatherWakes();

    struct HeapEntry
    {
        Cycle cycle;
        uint32_t index;
        bool operator>(const HeapEntry &o) const
        {
            return cycle > o.cycle ||
                   (cycle == o.cycle && index > o.index);
        }
    };

    SchedulerMode mode_;
    std::vector<std::unique_ptr<Component>> components_;
    std::vector<std::unique_ptr<ChannelBase>> channels_;
    Cycle now_ = 0;
    bool activity_ = false;
    SchedulerStats stats_;

    // Event-driven machinery.
    std::vector<ChannelBase *> dirtyChannels_;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>>
        timerHeap_;
    std::vector<uint32_t> currentList_; ///< This cycle's wake list.
    std::vector<uint32_t> nextList_;    ///< Next cycle's wake list.
    size_t sweepPos_ = 0;
    bool sweeping_ = false;
    bool seeded_ = false;
};

} // namespace soff::sim
