#include "sim/trace.hpp"

#include "support/error.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace soff::sim
{

using support::JsonWriter;

TraceSink::TraceSink(size_t numComponents, size_t numChannels,
                     uint64_t windowStart, uint64_t windowEnd)
    : windowStart_(windowStart), windowEnd_(windowEnd),
      components_(numComponents), channels_(numChannels)
{
}

void
TraceSink::componentActive(uint32_t index, uint64_t cycle)
{
    ComponentTrack &t = components_[index];
    if (t.open && cycle == t.lastActive + 1) {
        t.lastActive = cycle;
        return;
    }
    if (t.open)
        t.spans.push_back({t.openStart, t.lastActive + 1});
    t.open = true;
    t.openStart = cycle;
    t.lastActive = cycle;
}

void
TraceSink::channelSample(uint32_t index, uint64_t cycle, uint64_t occupancy)
{
    channels_[index].samples.push_back({cycle, occupancy});
}

void
TraceSink::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;
    for (ComponentTrack &t : components_) {
        if (t.open) {
            t.spans.push_back({t.openStart, t.lastActive + 1});
            t.open = false;
        }
    }
}

void
TraceSink::write(const std::string &path,
                 const std::vector<TrackInfo> &tracks) const
{
    SOFF_ASSERT(finalized_, "trace: write before finalize");
    SOFF_ASSERT(tracks.size() == components_.size(),
                "trace: track metadata size mismatch");

    JsonWriter w;
    w.beginObject();
    w.field("displayTimeUnit", "ms");
    w.key("traceEvents").beginArray();

    // pid 0 carries the component activity tracks; each component with
    // at least one span inside the window gets a tid plus a metadata
    // record naming it. pid 1 carries the channel occupancy counters.
    for (size_t i = 0; i < components_.size(); ++i) {
        const ComponentTrack &t = components_[i];
        if (t.spans.empty())
            continue;
        w.beginObject();
        w.field("ph", "M");
        w.field("pid", 0);
        w.field("tid", static_cast<uint64_t>(i));
        w.field("name", "thread_name");
        w.key("args").beginObject();
        w.field("name",
                strFormat("%s [%s]", tracks[i].name.c_str(),
                          componentKindName(tracks[i].kind)));
        w.endObject();
        w.endObject();
        for (const Span &s : t.spans) {
            w.beginObject();
            w.field("ph", "X");
            w.field("pid", 0);
            w.field("tid", static_cast<uint64_t>(i));
            w.field("name", "active");
            w.field("cat", "component");
            w.field("ts", s.start);
            w.field("dur", s.end - s.start);
            w.endObject();
        }
    }

    for (size_t i = 0; i < channels_.size(); ++i) {
        const ChannelTrack &t = channels_[i];
        if (t.samples.empty())
            continue;
        std::string name = strFormat("ch%zu", i);
        for (const CounterSample &s : t.samples) {
            w.beginObject();
            w.field("ph", "C");
            w.field("pid", 1);
            w.field("name", name);
            w.field("ts", s.cycle);
            w.key("args").beginObject();
            w.field("occupancy", s.occupancy);
            w.endObject();
            w.endObject();
        }
    }

    w.endArray();
    w.endObject();
    w.writeFile(path);
}

} // namespace soff::sim
