/**
 * @file
 * A vector-backed FIFO replacing std::deque in component state.
 *
 * std::deque allocates its map + chunk blocks lazily, which means the
 * first push in a component's steady state hits the heap, and libstdc++
 * never returns chunks once a queue drains below a block boundary —
 * making per-cycle allocation behavior dependent on occupancy history.
 * RingQueue keeps a single power-of-two buffer that grows only when
 * occupancy exceeds every previous high-water mark, so the steady-state
 * step path performs zero allocations once warmed up.
 */
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace soff::sim
{

template <typename T> class RingQueue
{
  public:
    RingQueue() = default;

    bool empty() const { return size_ == 0; }
    size_t size() const { return size_; }

    void push_back(const T &v)
    {
        ensureRoom();
        buf_[wrap(head_ + size_)] = v;
        ++size_;
    }

    void push_back(T &&v)
    {
        ensureRoom();
        buf_[wrap(head_ + size_)] = std::move(v);
        ++size_;
    }

    template <typename... Args> void emplace_back(Args &&...args)
    {
        ensureRoom();
        buf_[wrap(head_ + size_)] = T{std::forward<Args>(args)...};
        ++size_;
    }

    T &front()
    {
        SOFF_ASSERT(size_ > 0, "RingQueue::front on empty queue");
        return buf_[head_];
    }
    const T &front() const
    {
        SOFF_ASSERT(size_ > 0, "RingQueue::front on empty queue");
        return buf_[head_];
    }

    T &back()
    {
        SOFF_ASSERT(size_ > 0, "RingQueue::back on empty queue");
        return buf_[wrap(head_ + size_ - 1)];
    }
    const T &back() const
    {
        SOFF_ASSERT(size_ > 0, "RingQueue::back on empty queue");
        return buf_[wrap(head_ + size_ - 1)];
    }

    /** FIFO-order access: 0 == front. */
    T &operator[](size_t i) { return buf_[wrap(head_ + i)]; }
    const T &operator[](size_t i) const { return buf_[wrap(head_ + i)]; }

    void pop_front()
    {
        SOFF_ASSERT(size_ > 0, "RingQueue::pop_front on empty queue");
        buf_[head_] = T{}; // release payload resources eagerly
        head_ = wrap(head_ + 1);
        --size_;
    }

    void clear()
    {
        for (size_t i = 0; i < size_; ++i)
            buf_[wrap(head_ + i)] = T{};
        head_ = 0;
        size_ = 0;
    }

    void reserve(size_t n)
    {
        if (n > buf_.size())
            regrow(n);
    }

  private:
    size_t wrap(size_t i) const { return i & (buf_.size() - 1); }

    void ensureRoom()
    {
        if (size_ == buf_.size())
            regrow(size_ + 1);
    }

    void regrow(size_t want)
    {
        size_t cap = buf_.empty() ? 8 : buf_.size();
        while (cap < want)
            cap *= 2;
        std::vector<T> fresh(cap);
        for (size_t i = 0; i < size_; ++i)
            fresh[i] = std::move(buf_[wrap(head_ + i)]);
        buf_ = std::move(fresh);
        head_ = 0;
    }

    std::vector<T> buf_;
    size_t head_ = 0;
    size_t size_ = 0;
};

} // namespace soff::sim
