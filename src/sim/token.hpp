/**
 * @file
 * Tokens that flow through the simulated circuit, and the NDRange /
 * launch context they are interpreted against.
 */
#pragma once

#include <cstdint>
#include <map>

#include "ir/eval.hpp"
#include "ir/kernel.hpp"
#include "sim/smallvec.hpp"

namespace soff::sim
{

using Cycle = uint64_t;

/** An OpenCL NDRange (paper §II-B1). */
struct NDRange
{
    uint64_t globalSize[3] = {1, 1, 1};
    uint64_t localSize[3] = {1, 1, 1};
    int workDim = 1;

    uint64_t
    totalWorkItems() const
    {
        return globalSize[0] * globalSize[1] * globalSize[2];
    }
    uint64_t
    groupSize() const
    {
        return localSize[0] * localSize[1] * localSize[2];
    }
    uint64_t numGroups(int d) const { return globalSize[d] / localSize[d]; }
    uint64_t
    totalGroups() const
    {
        return numGroups(0) * numGroups(1) * numGroups(2);
    }

    /** Full work-item context of a linear global id (row-major). */
    ir::WorkItemCtx
    ctxOf(uint64_t gid) const
    {
        ir::WorkItemCtx wi;
        wi.workDim = workDim;
        uint64_t rest = gid;
        for (int d = 0; d < 3; ++d) {
            wi.globalId[d] = rest % globalSize[d];
            rest /= globalSize[d];
            wi.globalSize[d] = globalSize[d];
            wi.localSize[d] = localSize[d];
            wi.numGroups[d] = numGroups(d);
            wi.localId[d] = wi.globalId[d] % localSize[d];
            wi.groupId[d] = wi.globalId[d] / localSize[d];
        }
        return wi;
    }

    /** Linear work-group id of a linear global id. */
    uint64_t
    groupOf(uint64_t gid) const
    {
        uint64_t gx = gid % globalSize[0];
        uint64_t rest = gid / globalSize[0];
        uint64_t gy = rest % globalSize[1];
        uint64_t gz = rest / globalSize[1];
        return (gx / localSize[0]) +
               numGroups(0) * ((gy / localSize[1]) +
                               numGroups(1) * (gz / localSize[2]));
    }

    /** Linear global id of (linear group, linear local) coordinates. */
    uint64_t
    gidOf(uint64_t group, uint64_t local) const
    {
        uint64_t wgx = group % numGroups(0);
        uint64_t rest_g = group / numGroups(0);
        uint64_t wgy = rest_g % numGroups(1);
        uint64_t wgz = rest_g / numGroups(1);
        uint64_t lx = local % localSize[0];
        uint64_t rest_l = local / localSize[0];
        uint64_t ly = rest_l % localSize[1];
        uint64_t lz = rest_l / localSize[1];
        uint64_t x = wgx * localSize[0] + lx;
        uint64_t y = wgy * localSize[1] + ly;
        uint64_t z = wgz * localSize[2] + lz;
        return x + globalSize[0] * (y + globalSize[1] * z);
    }
};

/** Kernel launch parameters shared by every functional unit. */
struct LaunchContext
{
    NDRange ndrange;
    /** Argument values (buffer base addresses / scalars). */
    std::map<const ir::Argument *, ir::RtValue> args;

    const ir::RtValue &
    argValue(const ir::Argument *arg) const
    {
        auto it = args.find(arg);
        return it->second;
    }
};

/** A value token on a basic-pipeline edge. */
struct Flit
{
    uint64_t wi = 0; ///< Linear global work-item id.
    ir::RtValue val;
};

/**
 * A live-variable bundle on an inter-pipeline channel. Live sets are
 * short (§IV-B live-variable layouts), so the common widths stay inline
 * in the token — moving a WiToken through a channel does not allocate.
 */
struct WiToken
{
    uint64_t wi = 0;
    SmallVec<ir::RtValue, 4> live;
};

/** A memory request from a functional unit / cache. */
struct MemReq
{
    enum class Op { Load, Store, AtomicRMW, AtomicCmpXchg };

    Op op = Op::Load;
    uint64_t addr = 0;
    uint32_t size = 4;       ///< Access width in bytes (1..8).
    uint64_t data = 0;       ///< Store data / atomic operand.
    uint64_t data2 = 0;      ///< Cmpxchg desired value.
    ir::AtomicOp aop = ir::AtomicOp::Add;
    const ir::Type *type = nullptr; ///< Element type (atomics).
    uint32_t slot = 0;       ///< Work-group slot (local memory).
};

/** A memory response (loads return data; stores return an ack). */
struct MemResp
{
    uint64_t data = 0;
};

} // namespace soff::sim
