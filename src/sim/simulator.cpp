#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/fault.hpp"
#include "sim/forensics.hpp"
#include "sim/specialize.hpp"
#include "sim/trace.hpp"
#include "support/strings.hpp"

namespace soff::sim
{

void
ChannelBase::faultRetry(uint64_t clear) const
{
    sim_->faultRetryAt(clear);
}

thread_local std::vector<ChannelBase *> *ChannelBase::tlsCrossDirty =
    nullptr;
thread_local Component *ChannelBase::tlsStepping = nullptr;
thread_local PerfCounters *ChannelBase::tlsStepPerf = nullptr;
thread_local bool ChannelBase::tlsTraceOn = false;
thread_local Simulator::Shard *Simulator::tlsShard_ = nullptr;

void
ChannelBase::notePerfTrace()
{
    // Slow path of notePerfMove: only reached with a trace sink
    // installed, which forces the generic sweeps — they set
    // tlsStepping alongside tlsStepPerf, so the stepping component is
    // always identified here.
    Component *c = tlsStepping;
    if (c == nullptr || c->sim_ == nullptr)
        return;
    TraceSink *sink = c->sim_->traceSink();
    if (sink != nullptr && sink->inWindow(*nowPtr_))
        sink->componentActive(c->index_, *nowPtr_);
}

void
ChannelBase::noteCommit(size_t pushes)
{
    // Runs on the home shard's committing thread (phase 2), which is
    // the only writer of this channel's counters in a cycle.
    tokens_ += pushes;
    uint64_t occ = occupancy();
    if (occ > maxOcc_)
        maxOcc_ = occ;
    if (sim_ != nullptr) {
        TraceSink *sink = sim_->traceSink();
        if (sink != nullptr && sink->inWindow(*nowPtr_))
            sink->channelSample(index_, *nowPtr_, occ);
    }
}

void
Component::perfBusy(Cycle now)
{
    if (perf_.lastMoveCycle == now)
        return;
    perf_.lastMoveCycle = now;
    ++perf_.busyCycles;
    if (sim_ != nullptr) {
        TraceSink *sink = sim_->traceSink();
        if (sink != nullptr && sink->inWindow(now))
            sink->componentActive(index_, now);
    }
}

const char *
schedulerModeName(SchedulerMode mode)
{
    switch (mode) {
      case SchedulerMode::Reference: return "reference";
      case SchedulerMode::EventDriven: return "event-driven";
      case SchedulerMode::Parallel: return "parallel";
      case SchedulerMode::Compiled: return "compiled";
      case SchedulerMode::CrossCheck: return "cross-check";
    }
    return "?";
}

bool
schedulerModeFromName(const std::string &name, SchedulerMode *out)
{
    if (name == "reference")
        *out = SchedulerMode::Reference;
    else if (name == "event-driven" || name == "eventdriven" ||
             name == "event")
        *out = SchedulerMode::EventDriven;
    else if (name == "parallel")
        *out = SchedulerMode::Parallel;
    else if (name == "compiled")
        *out = SchedulerMode::Compiled;
    else if (name == "cross-check" || name == "crosscheck")
        *out = SchedulerMode::CrossCheck;
    else
        return false;
    return true;
}

void
Component::wakeAt(Cycle cycle)
{
    if (sim_ != nullptr)
        sim_->scheduleAt(this, cycle);
}

void
Component::requestWake()
{
    if (sim_ != nullptr)
        sim_->wakeComponent(this);
}

void
Component::noteActivity()
{
    if (sim_ != nullptr)
        sim_->noteActivity();
}

void
Component::wakeOther(Component *c)
{
    if (sim_ != nullptr && c != nullptr)
        sim_->wakeComponent(c);
}

Simulator::Simulator(SchedulerMode mode, int threads)
    : mode_(mode), threadsRequested_(threads)
{
    SOFF_ASSERT(mode != SchedulerMode::CrossCheck,
                "CrossCheck is resolved above the simulator");
}

Simulator::~Simulator()
{
    if (!workers_.empty()) {
        phaseKind_.store(kPhaseExit, std::memory_order_relaxed);
        phaseGo_.fetch_add(1, std::memory_order_release);
        for (std::thread &w : workers_)
            w.join();
    }
    // Arena-owned objects: run destructors in reverse build order
    // (channels first, matching the old member-order teardown), then
    // the arena releases the slabs.
    for (size_t i = channels_.size(); i-- > 0;)
        channelDtors_[i](channels_[i]);
    for (size_t i = components_.size(); i-- > 0;)
        components_[i]->~Component();
}

void
Simulator::scheduleAt(Component *c, Cycle cycle)
{
    scheduleIndexAt(c->index_, cycle);
}

void
Simulator::scheduleIndexAt(uint32_t index, Cycle cycle)
{
    Shard *sh = tlsShard_;
    if (sh == nullptr)
        return; // Reference mode, or outside a scheduling phase.
    if (cycle <= now_ + 1) {
        if (compShard_[index] != sh->id) {
            // Cross-shard wake: delivered at the cycle barrier, for
            // the next cycle. Deduplicated at drain (the target's
            // next-list flag belongs to the target's thread).
            sh->outbox[compShard_[index]].push_back(index);
            return;
        }
        uint8_t &flags = schedFlags_[index];
        if (flags & kInNextList)
            return;
        flags |= kInNextList;
        sh->nextList.push_back(index);
        return;
    }
    // Timer wake. Only the earliest pending timer is tracked: every
    // step re-arms its timers from current state, so a component woken
    // early simply re-registers any still-needed later deadline.
    // Timers are always self-armed (wakeAt from the component's own
    // step), so they never cross shards.
    SOFF_ASSERT(compShard_[index] == sh->id, "cross-shard timer wake");
    if (pendingWake_[index] <= cycle)
        return;
    pendingWake_[index] = cycle;
    sh->timerHeap.push({cycle, index});
}

void
Simulator::faultRetryAt(Cycle clear)
{
    Shard *sh = tlsShard_;
    if (sh == nullptr || !sh->sweeping)
        return; // Reference mode steps everything every cycle anyway.
    // The querier is the component the sweep is on right now; it lives
    // on this shard by definition, so the timer never crosses shards.
    scheduleIndexAt(sh->currentList[sh->sweepPos], clear);
}

void
Simulator::wakeComponent(Component *c)
{
    Shard *sh = tlsShard_;
    if (sh == nullptr)
        return; // Reference mode steps everything anyway.
    uint32_t index = c->index_;
    if (compShard_[index] == sh->id && sh->sweeping &&
        index > sh->currentList[sh->sweepPos]) {
        // The current cycle's in-order sweep of this shard has not
        // reached c yet, so the synchronous reference would have it
        // observe this wake's cause within the same cycle. Insert it
        // into the in-flight wake list (kept sorted; the insert point
        // is past the cursor). Same-cycle couplings never cross
        // shards: the circuit builder collapses to one shard when a
        // coupling would (see collapseShards()).
        uint8_t &flags = schedFlags_[index];
        if (flags & kInWakeList)
            return;
        flags |= kInWakeList;
        auto it = std::lower_bound(
            sh->currentList.begin() +
                static_cast<ptrdiff_t>(sh->sweepPos) + 1,
            sh->currentList.end(), index);
        sh->currentList.insert(it, index);
        return;
    }
    scheduleIndexAt(index, now_ + 1);
}

SchedulerStats
Simulator::schedulerStats() const
{
    SchedulerStats s = stats_;
    for (const auto &sh : shards_) {
        s.componentSteps += sh->componentSteps;
        s.channelCommits += sh->channelCommits;
    }
    return s;
}

void
Simulator::finishStep(const StepEntry &e)
{
    // Span-based stall accounting. Both transitions of the predicate
    // (holdsWork && !moved) coincide with cycles the event-driven
    // schedulers step the component — holdsWork reads only committed
    // channel state and the component's own members, both of which
    // change only at commits that wake it or at its own steps — so the
    // accumulated spans are bit-identical to stepping every cycle.
    PerfCounters &p = e.c->perf_;
    bool moved = p.lastMoveCycle == now_;
    if (!moved && e.holds(e.c)) {
        if (!p.stallOpen) {
            p.stallOpen = true;
            p.stallStart = now_;
        }
    } else if (p.stallOpen) {
        p.stallOpen = false;
        p.stalledCycles += now_ - p.stallStart;
    }
}

void
Simulator::finalizePerfSpans()
{
    for (Component *c : components_) {
        PerfCounters &p = c->perf_;
        if (p.stallOpen) {
            p.stallOpen = false;
            p.stalledCycles += now_ - p.stallStart;
        }
    }
    if (traceSink_ != nullptr)
        traceSink_->finalize();
}

void
Simulator::appendPerfStats(StatsReport &report) const
{
    report.components.reserve(components_.size());
    for (const Component *c : components_) {
        ComponentStats cs;
        cs.name = c->name_;
        cs.kind = c->kind();
        cs.busy = c->perf_.busyCycles;
        cs.stalled = c->perf_.stalledCycles;
        cs.tokensIn = c->perf_.tokensIn;
        cs.tokensOut = c->perf_.tokensOut;
        report.busyCycles += cs.busy;
        report.stalledCycles += cs.stalled;
        report.components.push_back(std::move(cs));
    }
    report.channels.reserve(channels_.size());
    for (const ChannelBase *ch : channels_) {
        ChannelStatsEntry e;
        e.id = ch->index_;
        e.capacity = static_cast<uint32_t>(ch->capacityTokens());
        e.tokens = ch->tokens_;
        e.maxOccupancy = ch->maxOcc_;
        report.channels.push_back(e);
    }
}

Simulator::RunResult
Simulator::run(const bool *done, Cycle max_cycles, Cycle deadlock_window)
{
    if (mode_ == SchedulerMode::Reference)
        return runReference(done, max_cycles, deadlock_window);
    return runSharded(done, max_cycles);
}

void
Simulator::resetForRerun()
{
    now_ = 0;
    activity_ = false;
    stats_ = SchedulerStats{};
    std::fill(pendingWake_.begin(), pendingWake_.end(), kNoWake);
    std::fill(schedFlags_.begin(), schedFlags_.end(), uint8_t{0});
    dirtyChannels_.clear();
    // Dynamic state only: component structure (ports, watchers, wiring)
    // is immutable after finalizeShards, so a rerun starts from the
    // same circuit a cold build would produce.
    for (ChannelBase *ch : channels_)
        ch->reset();
    for (Component *c : components_) {
        c->reset();
        c->perf_ = PerfCounters{};
    }
    if (!shardsReady_)
        return;
    for (auto &shp : shards_) {
        Shard &sh = *shp;
        sh.currentList.clear();
        sh.nextList.clear();
        sh.dirtyChannels.clear();
        sh.crossDirty.clear();
        sh.commitList.clear();
        while (!sh.timerHeap.empty())
            sh.timerHeap.pop();
        for (auto &box : sh.outbox)
            box.clear();
        sh.sweepPos = 0;
        sh.sweeping = false;
        sh.componentSteps = 0;
        sh.channelCommits = 0;
    }
    resetCompiledState();
    // Re-seed exactly as finalizeShards() does for the first run: every
    // component steps at cycle 0. The worker pool stays alive.
    for (uint32_t i = 0; i < components_.size(); ++i) {
        schedFlags_[i] |= kInNextList;
        shards_[compShard_[i]]->nextList.push_back(i);
    }
}

Simulator::RunResult
Simulator::runReference(const bool *done, Cycle max_cycles,
                        Cycle deadlock_window)
{
    RunResult result;
    Cycle idle = 0;
    ChannelBase::tlsTraceOn = traceSink_ != nullptr;
    while (now_ < max_cycles) {
        if (done != nullptr && *done) {
            result.completed = true;
            result.cycles = now_;
            return result;
        }
        if (stopFlag_ != nullptr &&
            stopFlag_->load(std::memory_order_relaxed)) {
            result.stopped = true;
            result.cycles = now_;
            return result;
        }
        activity_ = false;
        for (const StepEntry &e : steps_) {
            ChannelBase::tlsStepping = e.c;
            ChannelBase::tlsStepPerf = &e.c->perf_;
            e.step(e.c, now_);
            finishStep(e);
        }
        ChannelBase::tlsStepping = nullptr;
        ChannelBase::tlsStepPerf = nullptr;
        stats_.componentSteps += steps_.size();
        for (ChannelBase *ch : channels_) {
            if (ch->commit()) {
                activity_ = true;
                ++stats_.channelCommits;
            }
        }
        dirtyChannels_.clear();
        ++stats_.cyclesActive;
        ++now_;
        if (activity_) {
            idle = 0;
        } else if (++idle >= deadlock_window) {
            result.deadlock = true;
            result.cycles = now_;
            result.report = diagnose(HangKind::Deadlock);
            return result;
        }
    }
    result.cycles = now_;
    if (done != nullptr)
        result.report = diagnose(HangKind::Timeout);
    return result;
}

void
Simulator::finalizeShards()
{
    shardsReady_ = true;
    size_t n = 1;
    if (mode_ == SchedulerMode::Parallel && !collapsed_)
        n = static_cast<size_t>(maxShard_) + 1;
    if (n == 1) {
        std::fill(compShard_.begin(), compShard_.end(), 0u);
        for (ChannelBase *ch : channels_)
            ch->shard_ = 0;
    }
    shards_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        auto sh = std::make_unique<Shard>();
        sh->id = static_cast<uint32_t>(i);
        sh->outbox.resize(n);
        shards_.push_back(std::move(sh));
    }
    // Home each channel and decide which are cross-shard. A channel is
    // staged on only by its watchers (every endpoint registers itself
    // in its constructor), but we conservatively include the creation
    // shard too: a channel whose creation shard and watcher shards all
    // agree stays on the cheap non-atomic dirty path; anything else is
    // cross-shard and pays one atomic exchange per dirty mark.
    // The watcher wake sweep the commit phase runs uses a flat index-
    // span table built here (one simulator-wide index array, a
    // [watchOff, watchOff+watchCount) slice per channel), replacing the
    // per-channel pointer vectors in the hot path.
    watcherIndices_.clear();
    for (ChannelBase *ch : channels_) {
        uint32_t lo = ch->shard_;
        uint32_t hi = ch->shard_;
        ch->watchOff_ = static_cast<uint32_t>(watcherIndices_.size());
        ch->watchCount_ = static_cast<uint32_t>(ch->watchers_.size());
        for (Component *w : ch->watchers_) {
            lo = std::min(lo, compShard_[w->index_]);
            hi = std::max(hi, compShard_[w->index_]);
            watcherIndices_.push_back(w->index_);
        }
        ch->shard_ = lo; // home shard: commits run here
        ch->crossShard_ = lo != hi;
        ch->dirty_ = false;
        ch->crossDirty_.store(false, std::memory_order_relaxed);
        ch->dirtyList_ = ch->crossShard_
                             ? nullptr
                             : &shards_[ch->shard_]->dirtyChannels;
    }
    // Seed: every component steps at the first cycle, exactly as the
    // synchronous reference does; quiescence takes over from there.
    for (uint32_t i = 0; i < components_.size(); ++i) {
        schedFlags_[i] |= kInNextList;
        shards_[compShard_[i]]->nextList.push_back(i);
    }
    // Worker pool. The calling thread is worker 0 (the coordinator);
    // extra threads are spawned only when Parallel mode has both more
    // than one shard and a thread budget above one.
    numWorkers_ = 1;
    if (mode_ == SchedulerMode::Parallel && n > 1) {
        int t = threadsRequested_;
        if (t <= 0)
            t = static_cast<int>(std::thread::hardware_concurrency());
        t = std::max(t, 1);
        numWorkers_ = static_cast<int>(
            std::min<size_t>(static_cast<size_t>(t), n));
    }
    for (int i = 1; i < numWorkers_; ++i)
        workers_.emplace_back(&Simulator::workerMain, this);
    // Compiled mode: lower the circuit into a specialized step plan.
    // Fault injection needs the generic sweep cursor for retry wakes,
    // and tracing relies on generic per-channel commit ordering, so
    // either forces a full fallback to the plain event-driven loop
    // (plan_ stays null and Compiled == EventDriven).
    if (mode_ == SchedulerMode::Compiled && faultPlan_ == nullptr &&
        traceSink_ == nullptr)
        buildCompiledPlan();
}

Simulator::RunResult
Simulator::runSharded(const bool *done, Cycle max_cycles)
{
    if (!shardsReady_)
        finalizeShards();
    constexpr Cycle kNone = ~Cycle{0};
    ChannelBase::tlsTraceOn = traceSink_ != nullptr;
    RunResult result;
    while (now_ < max_cycles) {
        if (done != nullptr && *done) {
            result.completed = true;
            result.cycles = now_;
            return result;
        }
        if (stopFlag_ != nullptr &&
            stopFlag_->load(std::memory_order_relaxed)) {
            result.stopped = true;
            result.cycles = now_;
            return result;
        }
        if (faultPlan_ != nullptr && faultPlan_->tripCycle() != 0 &&
            mode_ == SchedulerMode::Parallel &&
            now_ >= faultPlan_->tripCycle()) {
            // Error-path testing knob (FaultConfig::tripCycle): fail
            // the Parallel run with an internal error so the runtime's
            // graceful-degradation retry path can be exercised.
            throw RuntimeError(strFormat(
                "injected parallel-scheduler fault at cycle %llu "
                "(SOFF_FAULTS trip=)",
                static_cast<unsigned long long>(now_)));
        }
        // Single-threaded window between phases: drop stale timer
        // entries (superseded by an earlier wake) and find the next
        // cycle with any work.
        bool any_next = false;
        Cycle min_timer = kNone;
        for (auto &shp : shards_) {
            Shard &sh = *shp;
            while (!sh.timerHeap.empty() &&
                   pendingWake_[sh.timerHeap.top().index] !=
                       sh.timerHeap.top().cycle) {
                sh.timerHeap.pop();
            }
            if (!sh.nextList.empty())
                any_next = true;
            else if (!sh.timerHeap.empty())
                min_timer = std::min(min_timer, sh.timerHeap.top().cycle);
        }
        if (plan_ != nullptr && !plan_->touched.empty())
            any_next = true;
        if (!any_next) {
            if (min_timer == kNone) {
                // Exact deadlock: nothing is scheduled on any shard
                // and channels are quiet, so no component can ever
                // act again.
                result.deadlock = true;
                result.cycles = now_;
                result.report = diagnose(HangKind::Deadlock);
                return result;
            }
            SOFF_ASSERT(min_timer >= now_, "timer wake in the past");
            if (min_timer >= max_cycles) {
                now_ = max_cycles;
                break;
            }
            now_ = min_timer; // jump the clock over the idle gap
        }
        if (plan_ != nullptr) {
            // Compiled mode (always single-shard): segment-member
            // wakes are swept in levelized order, everything else goes
            // through the generic wake machinery, and fused-channel
            // commits fold commit + watcher scheduling into one pass.
            Shard &sh = *shards_[0];
            tlsShard_ = &sh;
            ChannelBase::tlsCrossDirty = &sh.crossDirty;
            gatherCompiled(sh);
            sweepActiveSegments(sh);
            stepShard(sh);
            commitShard(sh);
            commitSegmentChannels(sh);
            tlsShard_ = nullptr;
            ChannelBase::tlsCrossDirty = nullptr;
        } else {
            // Phase 1: each shard sweeps its wake list in
            // component-index order. Components only stage channel
            // pushes/pops, so shards never observe each other's
            // intra-cycle state.
            runPhase(kPhaseStep);
            // Phase 2: each shard commits the dirty channels homed on
            // it in channel-index order; commits wake the endpoints
            // for the next cycle.
            runPhase(kPhaseCommit);
            // Single-threaded again: deliver cross-shard wakes.
            drainOutboxes();
        }
        ++stats_.cyclesActive;
        ++now_;
    }
    result.cycles = now_;
    if (done != nullptr)
        result.report = diagnose(HangKind::Timeout);
    return result;
}

void
Simulator::runPhase(PhaseKind kind)
{
    shardCursor_.store(0, std::memory_order_relaxed);
    if (numWorkers_ <= 1) {
        shardLoop(kind);
        return;
    }
    phaseArrived_.store(0, std::memory_order_relaxed);
    phaseKind_.store(kind, std::memory_order_relaxed);
    phaseGo_.fetch_add(1, std::memory_order_release);
    std::exception_ptr local_error;
    try {
        shardLoop(kind);
    } catch (...) {
        local_error = std::current_exception();
    }
    // Wait for every worker even on error: they touch simulator state.
    while (phaseArrived_.load(std::memory_order_acquire) <
           static_cast<uint32_t>(numWorkers_ - 1))
        std::this_thread::yield();
    if (local_error)
        std::rethrow_exception(local_error);
    if (workerFailed_.load(std::memory_order_acquire))
        throw RuntimeError("simulation worker failed: " + workerError_);
}

void
Simulator::shardLoop(PhaseKind kind)
{
    for (;;) {
        uint32_t i = shardCursor_.fetch_add(1, std::memory_order_relaxed);
        if (i >= shards_.size())
            break;
        Shard &sh = *shards_[i];
        tlsShard_ = &sh;
        ChannelBase::tlsCrossDirty = &sh.crossDirty;
        if (kind == kPhaseStep) {
            gatherWakes(sh);
            stepShard(sh);
        } else {
            commitShard(sh);
        }
        tlsShard_ = nullptr;
        ChannelBase::tlsCrossDirty = nullptr;
    }
}

void
Simulator::workerMain()
{
    uint64_t gen = 0;
    ChannelBase::tlsTraceOn = traceSink_ != nullptr;
    for (;;) {
        uint64_t g;
        // Yield-based spin: civil when threads outnumber cores, and
        // the coordinator never leaves workers parked across cycles.
        while ((g = phaseGo_.load(std::memory_order_acquire)) == gen)
            std::this_thread::yield();
        gen = g;
        int kind = phaseKind_.load(std::memory_order_relaxed);
        if (kind == kPhaseExit)
            return;
        try {
            shardLoop(static_cast<PhaseKind>(kind));
        } catch (const std::exception &e) {
            if (!workerFailed_.exchange(true, std::memory_order_relaxed))
                workerError_ = e.what(); // published by the arrival below
        } catch (...) {
            workerFailed_.exchange(true, std::memory_order_relaxed);
        }
        phaseArrived_.fetch_add(1, std::memory_order_release);
    }
}

void
Simulator::gatherWakes(Shard &sh)
{
    sh.currentList.swap(sh.nextList);
    for (uint32_t index : sh.currentList) {
        uint8_t &flags = schedFlags_[index];
        flags = static_cast<uint8_t>((flags & ~kInNextList) |
                                     kInWakeList);
    }
    while (!sh.timerHeap.empty() && sh.timerHeap.top().cycle == now_) {
        HeapEntry e = sh.timerHeap.top();
        sh.timerHeap.pop();
        if (pendingWake_[e.index] != e.cycle)
            continue; // stale
        pendingWake_[e.index] = kNoWake;
        uint8_t &flags = schedFlags_[e.index];
        if (!(flags & kInWakeList)) {
            flags |= kInWakeList;
            sh.currentList.push_back(e.index);
        }
    }
    std::sort(sh.currentList.begin(), sh.currentList.end());
}

void
Simulator::stepShard(Shard &sh)
{
    // The hot loop: an index walk over the flat dispatch table. No
    // vtable loads — e.step/e.holds are the monomorphic thunks add<T>
    // recorded — and no allocation (list storage is retained across
    // cycles; component steps reuse member scratch buffers).
    sh.sweeping = true;
    for (sh.sweepPos = 0; sh.sweepPos < sh.currentList.size();
         ++sh.sweepPos) {
        uint32_t index = sh.currentList[sh.sweepPos];
        const StepEntry &e = steps_[index];
        schedFlags_[index] &= static_cast<uint8_t>(~kInWakeList);
        ++sh.componentSteps;
        ChannelBase::tlsStepping = e.c;
        ChannelBase::tlsStepPerf = &e.c->perf_;
        e.step(e.c, now_);
        ChannelBase::tlsStepping = nullptr;
        ChannelBase::tlsStepPerf = nullptr;
        finishStep(e);
        if (e.c->alwaysAwake_)
            scheduleIndexAt(index, now_ + 1);
    }
    sh.sweeping = false;
    sh.currentList.clear();
}

void
Simulator::commitShard(Shard &sh)
{
    // Channels homed here: the shard-local dirty list plus the
    // cross-shard channels claimed by any shard this cycle. Other
    // shards' crossDirty vectors are read-only during this phase
    // (they were filled in phase 1 and are cleared at the drain), so
    // scanning them is race-free. Each channel was claimed exactly
    // once (atomic exchange), so nothing commits or counts twice.
    sh.commitList.clear();
    sh.commitList.insert(sh.commitList.end(), sh.dirtyChannels.begin(),
                         sh.dirtyChannels.end());
    sh.dirtyChannels.clear();
    if (shards_.size() > 1) {
        for (const auto &other : shards_) {
            for (ChannelBase *ch : other->crossDirty) {
                if (ch->shard_ == sh.id)
                    sh.commitList.push_back(ch);
            }
        }
    }
    // Fixed global order so results never depend on thread timing.
    std::sort(sh.commitList.begin(), sh.commitList.end(),
              [](const ChannelBase *a, const ChannelBase *b) {
                  return a->index_ < b->index_;
              });
    const uint32_t *watchers = watcherIndices_.data();
    if (plan_ != nullptr) {
        // Compiled mode (single shard): boundary-channel commits are
        // the main wake source for segment members in memory-heavy
        // circuits. Route those wakes straight into the plan's buckets
        // instead of bouncing them through scheduleIndexAt, the next
        // list, and the gather-time reroute. Within-bucket order is
        // unobservable (same level, no edges), so arriving in commit
        // order instead of gather order cannot change results.
        CompiledPlan &p = *plan_;
        for (ChannelBase *ch : sh.commitList) {
            if (ch->commit())
                ++sh.channelCommits;
            const uint32_t *w = watchers + ch->watchOff_;
            for (uint32_t k = 0; k < ch->watchCount_; ++k) {
                uint32_t pos = p.compOrderPos[w[k]];
                if (pos != CompiledPlan::kNoSegment)
                    p.wake(pos);
                else
                    scheduleIndexAt(w[k], now_ + 1);
            }
        }
        sh.commitList.clear();
        return;
    }
    for (ChannelBase *ch : sh.commitList) {
        if (ch->commit())
            ++sh.channelCommits;
        const uint32_t *w = watchers + ch->watchOff_;
        for (uint32_t k = 0; k < ch->watchCount_; ++k)
            scheduleIndexAt(w[k], now_ + 1);
    }
    sh.commitList.clear();
}

void
Simulator::drainOutboxes()
{
    // Coordinator-only, between barriers. Deterministic: shards and
    // their boxes are visited in fixed order, and membership in the
    // next list is a set (next-list flag dedup), so insertion order
    // cannot change behavior.
    for (auto &src : shards_) {
        for (size_t t = 0; t < shards_.size(); ++t) {
            std::vector<uint32_t> &box = src->outbox[t];
            if (box.empty())
                continue;
            Shard &target = *shards_[t];
            for (uint32_t index : box) {
                uint8_t &flags = schedFlags_[index];
                if (!(flags & kInNextList)) {
                    flags |= kInNextList;
                    target.nextList.push_back(index);
                }
            }
            box.clear();
        }
        src->crossDirty.clear();
    }
}

} // namespace soff::sim
