#include "sim/simulator.hpp"

namespace soff::sim
{

Simulator::RunResult
Simulator::run(const std::function<bool()> &done, Cycle max_cycles,
               Cycle deadlock_window)
{
    RunResult result;
    Cycle idle = 0;
    while (now_ < max_cycles) {
        if (done()) {
            result.completed = true;
            result.cycles = now_;
            return result;
        }
        activity_ = false;
        for (auto &c : components_)
            c->step(now_);
        for (auto &ch : channels_) {
            if (ch->commit())
                activity_ = true;
        }
        ++now_;
        if (activity_) {
            idle = 0;
        } else if (++idle >= deadlock_window) {
            result.deadlock = true;
            result.cycles = now_;
            return result;
        }
    }
    result.cycles = now_;
    return result;
}

} // namespace soff::sim
