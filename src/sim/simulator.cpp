#include "sim/simulator.hpp"

#include <algorithm>

namespace soff::sim
{

const char *
schedulerModeName(SchedulerMode mode)
{
    switch (mode) {
      case SchedulerMode::Reference: return "reference";
      case SchedulerMode::EventDriven: return "event-driven";
      case SchedulerMode::CrossCheck: return "cross-check";
    }
    return "?";
}

void
Component::wakeAt(Cycle cycle)
{
    if (sim_ != nullptr)
        sim_->scheduleAt(this, cycle);
}

void
Component::requestWake()
{
    if (sim_ != nullptr)
        sim_->wakeComponent(this);
}

void
Component::noteActivity()
{
    if (sim_ != nullptr)
        sim_->noteActivity();
}

void
Component::wakeOther(Component *c)
{
    if (sim_ != nullptr && c != nullptr)
        sim_->wakeComponent(c);
}

void
Simulator::scheduleAt(Component *c, Cycle cycle)
{
    if (mode_ != SchedulerMode::EventDriven)
        return;
    if (cycle <= now_ + 1) {
        if (c->inNextList_)
            return;
        c->inNextList_ = true;
        nextList_.push_back(c->index_);
        return;
    }
    // Timer wake. Only the earliest pending timer is tracked: every
    // step re-arms its timers from current state, so a component woken
    // early simply re-registers any still-needed later deadline.
    if (c->pendingWake_ <= cycle)
        return;
    c->pendingWake_ = cycle;
    timerHeap_.push({cycle, c->index_});
}

void
Simulator::wakeComponent(Component *c)
{
    if (mode_ != SchedulerMode::EventDriven)
        return;
    if (sweeping_ && c->index_ > currentList_[sweepPos_]) {
        // The current cycle's in-order sweep has not reached c yet, so
        // the synchronous reference would have it observe this wake's
        // cause within the same cycle. Insert it into the in-flight
        // wake list (kept sorted; the insert point is past the cursor).
        if (c->inWakeList_)
            return;
        c->inWakeList_ = true;
        auto it = std::lower_bound(
            currentList_.begin() +
                static_cast<ptrdiff_t>(sweepPos_) + 1,
            currentList_.end(), c->index_);
        currentList_.insert(it, c->index_);
        return;
    }
    scheduleAt(c, now_ + 1);
}

Simulator::RunResult
Simulator::run(const bool *done, Cycle max_cycles, Cycle deadlock_window)
{
    if (mode_ == SchedulerMode::EventDriven)
        return runEventDriven(done, max_cycles);
    return runReference(done, max_cycles, deadlock_window);
}

Simulator::RunResult
Simulator::runReference(const bool *done, Cycle max_cycles,
                        Cycle deadlock_window)
{
    RunResult result;
    Cycle idle = 0;
    while (now_ < max_cycles) {
        if (done != nullptr && *done) {
            result.completed = true;
            result.cycles = now_;
            return result;
        }
        activity_ = false;
        for (auto &c : components_)
            c->step(now_);
        stats_.componentSteps += components_.size();
        for (auto &ch : channels_) {
            if (ch->commit()) {
                activity_ = true;
                ++stats_.channelCommits;
            }
        }
        dirtyChannels_.clear();
        ++stats_.cyclesActive;
        ++now_;
        if (activity_) {
            idle = 0;
        } else if (++idle >= deadlock_window) {
            result.deadlock = true;
            result.cycles = now_;
            return result;
        }
    }
    result.cycles = now_;
    return result;
}

Simulator::RunResult
Simulator::runEventDriven(const bool *done, Cycle max_cycles)
{
    RunResult result;
    if (!seeded_) {
        // Every component steps at the first cycle, exactly as the
        // synchronous reference does; quiescence takes over from there.
        seeded_ = true;
        for (auto &c : components_) {
            c->inNextList_ = true;
            nextList_.push_back(c->index_);
        }
    }
    while (now_ < max_cycles) {
        if (done != nullptr && *done) {
            result.completed = true;
            result.cycles = now_;
            return result;
        }
        // Drop stale timer entries (superseded by an earlier wake).
        while (!timerHeap_.empty() &&
               components_[timerHeap_.top().index]->pendingWake_ !=
                   timerHeap_.top().cycle) {
            timerHeap_.pop();
        }
        if (nextList_.empty()) {
            if (timerHeap_.empty()) {
                // Exact deadlock: nothing is scheduled and channels
                // are quiet, so no component can ever act again.
                result.deadlock = true;
                result.cycles = now_;
                return result;
            }
            Cycle next = timerHeap_.top().cycle;
            SOFF_ASSERT(next >= now_, "timer wake in the past");
            if (next >= max_cycles) {
                now_ = max_cycles;
                break;
            }
            now_ = next; // jump the clock over the idle gap
        }
        gatherWakes();
        sweeping_ = true;
        for (sweepPos_ = 0; sweepPos_ < currentList_.size();
             ++sweepPos_) {
            Component *c = components_[currentList_[sweepPos_]].get();
            c->inWakeList_ = false;
            ++stats_.componentSteps;
            c->step(now_);
            if (c->alwaysAwake_)
                scheduleAt(c, now_ + 1);
        }
        sweeping_ = false;
        currentList_.clear();
        // Commit only the channels touched this cycle; each commit
        // wakes the channel's endpoints for the next cycle.
        for (ChannelBase *ch : dirtyChannels_) {
            if (ch->commit())
                ++stats_.channelCommits;
            for (Component *w : ch->watchers())
                scheduleAt(w, now_ + 1);
        }
        dirtyChannels_.clear();
        ++stats_.cyclesActive;
        ++now_;
    }
    result.cycles = now_;
    return result;
}

void
Simulator::gatherWakes()
{
    currentList_.swap(nextList_);
    for (uint32_t index : currentList_) {
        components_[index]->inNextList_ = false;
        components_[index]->inWakeList_ = true;
    }
    while (!timerHeap_.empty() && timerHeap_.top().cycle == now_) {
        HeapEntry e = timerHeap_.top();
        timerHeap_.pop();
        Component *c = components_[e.index].get();
        if (c->pendingWake_ != e.cycle)
            continue; // stale
        c->pendingWake_ = Component::kNoWake;
        if (!c->inWakeList_) {
            c->inWakeList_ = true;
            currentList_.push_back(e.index);
        }
    }
    std::sort(currentList_.begin(), currentList_.end());
}

} // namespace soff::sim
